// Cluster serving benchmark: throughput-vs-device-count scaling curves for
// a Zipfian SSB mix served by serve::ClusterScheduler over a sim::Cluster —
// 1/2/4/8 devices x {replicate, range-shard, hybrid} placement x
// {NVLink-class, PCIe-class} interconnect.
//
// What the curves show: range sharding cuts per-query scan work ~N-fold, so
// on an NVLink-class fabric throughput scales near-linearly and the cluster
// stays compute/HBM-bound; on a PCIe-class fabric the dense partial-
// aggregate merges (QueryGroupSlots x 8 bytes per non-root shard, up to
// ~3.4 MB for the city x city flight-3 queries) saturate the root's inbound
// link engine and the limiter classification flips to the interconnect.
// Replication has no merge traffic at all but also no per-query speedup —
// it scales only through batch parallelism.
//
// Every merged query result is validated bit-exactly against the host
// reference executor, and the binary enforces its own acceptance bars
// (exit 1): >= 3.0x throughput at 4 devices on range-sharded NVLink, and
// limiter == interconnect for range-sharded PCIe at >= 4 devices.
//
// --json <path> emits BENCH_cluster.json (schema tilecomp.bench_cluster.v1);
// --trace/--chrome export a merged v8 trace of the showcase configuration
// (range-shard x NVLink x max devices) with per-device lanes and link spans.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "serve/cluster_scheduler.h"
#include "ssb/generator.h"
#include "ssb/layout.h"
#include "ssb/queries.h"
#include "telemetry/export.h"

namespace tilecomp {
namespace {

codec::System ParseSystem(const std::string& name) {
  if (name == "nvcomp") return codec::System::kNvcomp;
  if (name == "planner") return codec::System::kPlanner;
  if (name == "gpubp") return codec::System::kGpuBp;
  if (name == "gpustar") return codec::System::kGpuStar;
  if (name == "none") return codec::System::kNone;
  std::fprintf(stderr,
               "unknown --system '%s' (want nvcomp|planner|gpubp|gpustar|"
               "none)\n",
               name.c_str());
  std::exit(1);
}

struct ConfigResult {
  const char* link = "";
  serve::placement::PolicyKind policy =
      serve::placement::PolicyKind::kRangeShard;
  int devices = 1;
  double makespan_ms = 0.0;
  double throughput_qps = 0.0;  // modeled queries per second
  double speedup = 1.0;         // vs the same link+policy at 1 device
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t link_bytes = 0;
  uint64_t link_transfers = 0;
  double merge_ms = 0.0;
  sim::ClusterBreakdown breakdown;
};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  // Default sized so per-shard grids at 4-8 devices stay past the
  // occupancy knee (shards of ~200+ tiles): the generator clamps 2M to
  // ~1.5M rows (scale divisor 4). Smaller --rows runs finish fast but
  // understate scaling — the acceptance bars are calibrated at the default.
  const uint32_t rows = static_cast<uint32_t>(flags.GetInt("rows", 2000000));
  const size_t batch_size = static_cast<size_t>(flags.GetInt("queries", 96));
  const double alpha = flags.GetDouble("alpha", 1.2);
  const int max_devices = static_cast<int>(flags.GetInt("devices", 8));
  const std::string system_name = flags.GetString("system", "gpustar");
  const codec::System system = ParseSystem(system_name);
  const bench::CommonOptions common =
      bench::ParseCommonOptions(flags, "BENCH_cluster.json");

  ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  // Date-clustered layout: range shards then cover contiguous date ranges,
  // so each shard's zone maps keep pruning (PR 6) under the knife.
  ssb::ClusterByOrderdate(&data.lineorder);

  const std::vector<ssb::QueryId> all = ssb::AllQueries();
  const std::vector<uint32_t> ranks =
      GenZipf(batch_size, all.size(), alpha, common.seed);
  std::vector<ssb::QueryId> batch(batch_size);
  for (size_t i = 0; i < batch_size; ++i) batch[i] = all[ranks[i]];

  bench::PrintTitle("Cluster serving: SSB throughput scaling (" +
                    system_name + ")");
  bench::PrintNote("rows=" + std::to_string(data.lineorder.size()) +
                   " batch=" + std::to_string(batch_size) +
                   " alpha=" + std::to_string(alpha));

  std::vector<ssb::QueryResult> expected;
  {
    ssb::QueryRunner reference(data);
    for (ssb::QueryId q : batch) {
      expected.push_back(reference.RunHostReference(q));
    }
  }

  serve::ServeOptions serve_opts;
  serve_opts.num_streams = 4;
  serve_opts.use_cache = true;
  serve_opts.cache_budget_bytes = 256ull << 20;  // whole working set resident
  serve_opts.pushdown = true;
  // Serving deployments keep the immutable build side resident: each device
  // builds a query's dimension hash tables once and reuses them across the
  // batch. Applied uniformly (including the 1-device baseline), so the
  // scaling curves compare identical per-device work.
  serve_opts.reuse_hash_tables = true;

  std::vector<int> device_counts;
  for (int d = 1; d <= max_devices; d *= 2) device_counts.push_back(d);
  const sim::LinkSpec links[] = {sim::LinkSpec::NvLink(),
                                 sim::LinkSpec::Pcie()};
  const serve::placement::PolicyKind policies[] = {
      serve::placement::PolicyKind::kReplicate,
      serve::placement::PolicyKind::kRangeShard,
      serve::placement::PolicyKind::kHybrid};

  std::vector<ConfigResult> results;
  std::vector<telemetry::Span> showcase_spans;
  std::printf("%-8s %-12s %4s %12s %12s %8s %9s %12s %-12s\n", "link",
              "policy", "dev", "makespan_ms", "qps", "speedup", "p95_ms",
              "link_MB", "limiter");

  for (const sim::LinkSpec& link : links) {
    for (serve::placement::PolicyKind policy : policies) {
      double base_makespan = 0.0;
      for (int n : device_counts) {
        sim::Cluster cluster(n, sim::DeviceSpec::V100(), link);
        // Showcase config gets the full v8 trace: per-device tracers plus
        // the cluster's link spans, merged into one timeline.
        const bool showcase = std::strcmp(link.name, "nvlink") == 0 &&
                              policy ==
                                  serve::placement::PolicyKind::kRangeShard &&
                              n == device_counts.back();
        std::vector<std::unique_ptr<telemetry::Tracer>> tracers;
        telemetry::Tracer link_tracer;
        if (showcase) {
          for (int d = 0; d < n; ++d) {
            tracers.push_back(std::make_unique<telemetry::Tracer>());
            tracers.back()->set_device_id(d);
            cluster.device(d).AttachTracer(tracers.back().get());
          }
          cluster.AttachLinkSink(&link_tracer);
        }

        serve::ClusterOptions opts;
        opts.policy = policy;
        opts.placement_seed = common.seed;
        opts.serve = serve_opts;
        serve::ClusterScheduler scheduler(cluster, data, system, opts);
        const serve::ClusterServeReport report = scheduler.Serve(batch);

        for (size_t i = 0; i < report.queries.size(); ++i) {
          if (report.queries[i].status != serve::QueryStatus::kOk ||
              report.queries[i].result.groups != expected[i].groups) {
            std::fprintf(stderr,
                         "%s/%s/%d-dev: query %zu (%s) diverges from host "
                         "reference\n",
                         link.name, serve::placement::PolicyName(policy), n,
                         i, ssb::QueryName(batch[i]));
            return 1;
          }
        }

        ConfigResult r;
        r.link = link.name;
        r.policy = policy;
        r.devices = n;
        r.makespan_ms = report.makespan_ms;
        r.throughput_qps =
            static_cast<double>(batch_size) / (report.makespan_ms * 1e-3);
        if (n == 1) base_makespan = report.makespan_ms;
        r.speedup = base_makespan / report.makespan_ms;
        r.p50_ms = report.p50_latency_ms;
        r.p95_ms = report.p95_latency_ms;
        r.p99_ms = report.p99_latency_ms;
        r.link_bytes = report.link_bytes_total;
        r.link_transfers = report.link_transfers;
        r.merge_ms = report.merge_ms_total;
        r.breakdown = report.breakdown;
        std::printf("%-8s %-12s %4d %12.4f %12.0f %7.2fx %9.4f %12.3f %-12s\n",
                    r.link, serve::placement::PolicyName(policy), n,
                    r.makespan_ms, r.throughput_qps, r.speedup, r.p95_ms,
                    static_cast<double>(r.link_bytes) / 1e6,
                    sim::ClusterLimiterName(r.breakdown.limiter()));
        results.push_back(r);

        if (showcase) {
          std::vector<const telemetry::Tracer*> merged;
          for (const auto& t : tracers) merged.push_back(t.get());
          merged.push_back(&link_tracer);
          showcase_spans = telemetry::MergeSpans(merged);
        }
      }
    }
  }

  // --- Acceptance bars (also validated by CI on the emitted JSON).
  bool ok = true;
  for (const ConfigResult& r : results) {
    const bool range_shard =
        r.policy == serve::placement::PolicyKind::kRangeShard;
    if (range_shard && std::strcmp(r.link, "nvlink") == 0 && r.devices == 4 &&
        r.speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: range-shard/nvlink at 4 devices scales %.2fx "
                   "(bar: >= 3.0x)\n",
                   r.speedup);
      ok = false;
    }
    if (range_shard && std::strcmp(r.link, "pcie") == 0 && r.devices >= 4 &&
        r.breakdown.limiter() != sim::ClusterLimiter::kInterconnect) {
      std::fprintf(stderr,
                   "FAIL: range-shard/pcie at %d devices is %s-limited "
                   "(bar: interconnect)\n",
                   r.devices,
                   sim::ClusterLimiterName(r.breakdown.limiter()));
      ok = false;
    }
  }
  if (ok) {
    bench::PrintNote(
        "all results bit-exact vs host reference; NVLink range sharding "
        "scales near-linearly while PCIe goes interconnect-bound at >= 4 "
        "devices");
  }

  if (!showcase_spans.empty() && !bench::ExportTraces(common, showcase_spans)) {
    return 1;
  }

  if (common.emit_json) {
    std::string json;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"schema\":\"tilecomp.bench_cluster.v1\","
                  "\"rows\":%u,\"queries\":%zu,\"alpha\":%.3f,"
                  "\"system\":\"%s\",\"seed\":%llu,\"configs\":[",
                  data.lineorder.size(), batch_size, alpha,
                  system_name.c_str(),
                  static_cast<unsigned long long>(common.seed));
    json += buf;
    for (size_t i = 0; i < results.size(); ++i) {
      const ConfigResult& r = results[i];
      std::snprintf(
          buf, sizeof(buf),
          "%s\n{\"link\":\"%s\",\"policy\":\"%s\",\"devices\":%d,"
          "\"makespan_ms\":%.6f,\"throughput_qps\":%.2f,\"speedup\":%.4f,"
          "\"p50_ms\":%.6f,\"p95_ms\":%.6f,\"p99_ms\":%.6f,"
          "\"link_bytes\":%" PRIu64 ",\"link_transfers\":%" PRIu64
          ",\"merge_ms\":%.6f,\"compute_ms\":%.6f,\"hbm_ms\":%.6f,"
          "\"interconnect_ms\":%.6f,\"limiter\":\"%s\"}",
          i == 0 ? "" : ",", r.link, serve::placement::PolicyName(r.policy),
          r.devices, r.makespan_ms, r.throughput_qps, r.speedup, r.p50_ms,
          r.p95_ms, r.p99_ms, r.link_bytes, r.link_transfers, r.merge_ms,
          r.breakdown.compute_ms, r.breakdown.hbm_ms,
          r.breakdown.interconnect_ms,
          sim::ClusterLimiterName(r.breakdown.limiter()));
      json += buf;
    }
    json += "\n]}\n";
    if (!bench::ExportJson(common, json)) return 1;
  }

  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
