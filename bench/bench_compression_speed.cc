// Section 8, "Compression Speed": wall-clock time to compress 250M random
// entries on the multi-core host CPU (compression is a host-side, one-time
// activity; on updates the column is recompressed and re-shipped).
//
// Paper reference (6-core Xeon): GPU-FOR ~1.2 s, GPU-DFOR ~1.3 s,
// GPU-RFOR ~2.2 s (random data is RLE-hostile, so RFOR does extra work).
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "codec/parallel_encode.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace tilecomp {
namespace {

constexpr size_t kPaperN = 250'000'000;

template <typename F>
double TimeSeconds(F&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 32 << 20));
  auto values = GenUniformBits(n, 16, 99);

  bench::PrintTitle("Section 8: host compression speed (wall clock)");
  bench::PrintNote("threads: " +
                   std::to_string(ThreadPool::Global().num_threads()) +
                   "; n = " + std::to_string(n) +
                   "; projected to 250M entries");
  std::printf("%-10s %12s %14s %12s\n", "scheme", "measured_s", "proj_250M_s",
              "paper_s");

  const double t_for = TimeSeconds(
      [&] { codec::ParallelGpuForEncode(values); });
  std::printf("%-10s %12.3f %14.2f %12.1f\n", "GPU-FOR", t_for,
              bench::Project(t_for, n, kPaperN), 1.2);

  const double t_dfor = TimeSeconds(
      [&] { codec::ParallelGpuDForEncode(values); });
  std::printf("%-10s %12.3f %14.2f %12.1f\n", "GPU-DFOR", t_dfor,
              bench::Project(t_dfor, n, kPaperN), 1.3);

  const double t_rfor = TimeSeconds(
      [&] { codec::ParallelGpuRForEncode(values); });
  std::printf("%-10s %12.3f %14.2f %12.1f\n", "GPU-RFOR", t_rfor,
              bench::Project(t_rfor, n, kPaperN), 2.2);
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
