// Section 2.2 claim check: "most of the compression gains can be achieved
// with just lightweight techniques". For every SSB column, compare GPU-*'s
// achieved bits/int against the order-0 Shannon entropy of the column — the
// lower bound any (heavyweight) entropy coder could reach without modeling
// inter-value correlation. Lightweight bit-packing should land close to the
// bound on the incompressible columns and *beat* it on columns with
// run-length / sortedness structure (which order-0 coders cannot see).
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "bench/bench_util.h"
#include "codec/stats.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

namespace tilecomp {
namespace {

double Order0EntropyBits(const std::vector<uint32_t>& values) {
  std::unordered_map<uint32_t, uint64_t> histogram;
  histogram.reserve(1 << 16);
  for (uint32_t v : values) ++histogram[v];
  const double n = static_cast<double>(values.size());
  double bits = 0;
  for (const auto& [value, count] : histogram) {
    const double p = count / n;
    bits -= p * std::log2(p);
  }
  return bits;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t rows =
      static_cast<uint32_t>(flags.GetInt("rows", 2'000'000));
  ssb::SsbData data = ssb::GenerateSsbSmall(rows);

  bench::PrintTitle(
      "Section 2.2: lightweight GPU-* vs the order-0 entropy bound");
  std::printf("%-15s %10s %12s %12s %10s\n", "column", "scheme",
              "entropy_bpi", "gpustar_bpi", "ratio");

  double sum_entropy = 0, sum_star = 0;
  for (int c = 0; c < ssb::kNumLoCols; ++c) {
    const auto col = static_cast<ssb::LoCol>(c);
    const auto& values = data.lineorder.column(col);
    const double entropy = Order0EntropyBits(values);
    auto star = codec::EncodeGpuStar(values);
    sum_entropy += entropy;
    sum_star += star.bits_per_int();
    std::printf("%-15s %10s %12.2f %12.2f %9.2fx\n", ssb::LoColName(col),
                codec::SchemeName(star.scheme()), entropy,
                star.bits_per_int(), star.bits_per_int() / entropy);
  }
  std::printf("%-15s %10s %12.2f %12.2f %9.2fx\n", "total", "",
              sum_entropy, sum_star, sum_star / sum_entropy);
  bench::PrintNote(
      "ratio ~1 = lightweight coding already extracts what a heavyweight "
      "entropy coder could; <1 = run/sort structure beats order-0 coding "
      "(the paper's justification for skipping Huffman/LZ)");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
