// Fault-injection sweep: a Zipfian SSB query mix served under seeded faults
// at every site (device alloc, transfer, kernel launch, tile decode, cache
// insert), with the per-site rate swept from 0 to 10%.
//
// The acceptance bar is correctness, not speed: at EVERY rate, every query
// either returns results bit-exact against the host reference executor or
// carries a clean per-query error status (transfer_failed / launch_failed /
// decode_failed). A query that reports kOk with wrong groups fails the run
// with exit 1 — the harness exists to prove injected faults degrade to
// retries and clean errors, never to silent corruption.
//
// Per rate the table reports what the plan injected per site, how much
// recovery cost (retries, terminal failures), how many queries failed
// cleanly, and the makespan inflation from backoff + re-issues. --json
// <path> emits machine-readable BENCH_faults.json (schema
// tilecomp.bench_faults.v1) for cross-PR tracking.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "fault/fault.h"
#include "serve/server.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "telemetry/export.h"

namespace tilecomp {
namespace {

codec::System ParseSystem(const std::string& name) {
  if (name == "nvcomp") return codec::System::kNvcomp;
  if (name == "planner") return codec::System::kPlanner;
  if (name == "gpubp") return codec::System::kGpuBp;
  if (name == "gpustar") return codec::System::kGpuStar;
  if (name == "none") return codec::System::kNone;
  std::fprintf(stderr,
               "unknown --system '%s' (want nvcomp|planner|gpubp|gpustar|"
               "none)\n",
               name.c_str());
  std::exit(1);
}

struct Row {
  double rate = 0.0;
  fault::FaultStats faults;
  uint64_t ok_queries = 0;
  uint64_t failed_queries = 0;
  uint64_t invalidations = 0;
  double p95_ms = 0.0;
  double makespan_ms = 0.0;
};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t rows = static_cast<uint32_t>(flags.GetInt("rows", 60000));
  const size_t batch_size = static_cast<size_t>(flags.GetInt("queries", 48));
  const double alpha = flags.GetDouble("alpha", 1.2);
  const bench::CommonOptions common =
      bench::ParseCommonOptions(flags, "BENCH_faults.json");
  const uint64_t seed = common.seed;
  const int streams = static_cast<int>(flags.GetInt("streams", 4));
  const std::string system_name = flags.GetString("system", "gpubp");
  const codec::System system = ParseSystem(system_name);

  const ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  const ssb::EncodedLineorder lineorder = ssb::EncodeLineorder(data, system);

  // Zipfian query mix, same construction as bench_serve.
  const std::vector<ssb::QueryId> all = ssb::AllQueries();
  const std::vector<uint32_t> ranks =
      GenZipf(batch_size, all.size(), alpha, seed);
  std::vector<ssb::QueryId> batch(batch_size);
  for (size_t i = 0; i < batch_size; ++i) batch[i] = all[ranks[i]];

  bench::PrintTitle("Fault injection: Zipfian SSB mix under seeded faults (" +
                    std::string(codec::SystemName(system)) + ")");
  bench::PrintNote("rows=" + std::to_string(data.lineorder.size()) +
                   " batch=" + std::to_string(batch_size) +
                   " alpha=" + std::to_string(alpha) +
                   " seed=" + std::to_string(seed) +
                   "; every kOk query is checked bit-exact vs host reference");

  std::vector<ssb::QueryResult> expected;
  {
    ssb::QueryRunner reference(data);
    for (ssb::QueryId q : batch) {
      expected.push_back(reference.RunHostReference(q));
    }
  }

  std::printf("%-7s %9s %9s %9s %9s %6s %6s %9s %10s\n", "rate", "injected",
              "retries", "terminal", "invalid", "ok", "failed", "p95_ms",
              "makespan");

  std::vector<Row> rows_out;
  const double rates[] = {0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.10};
  for (double rate : rates) {
    fault::FaultPlan plan(fault::FaultPlanOptions::Uniform(rate, seed));
    serve::ServeOptions options;
    options.num_streams = streams;
    options.fault_plan = &plan;
    options.model_transfers = true;
    sim::Device dev;
    serve::Server server(dev, data, lineorder, options);
    const serve::ServeReport report = server.Serve(batch);

    Row row;
    row.rate = rate;
    row.faults = report.faults;
    row.invalidations = report.cache.invalidations;
    row.p95_ms = report.p95_latency_ms;
    row.makespan_ms = report.makespan_ms;
    for (size_t i = 0; i < report.queries.size(); ++i) {
      const serve::ServedQuery& sq = report.queries[i];
      if (sq.status != serve::QueryStatus::kOk) {
        ++row.failed_queries;
        continue;
      }
      ++row.ok_queries;
      if (sq.result.groups != expected[i].groups) {
        std::fprintf(stderr,
                     "WRONG ANSWER: %s reported ok but diverges from the "
                     "host reference at rate %.3f (seed %" PRIu64 ")\n",
                     ssb::QueryName(sq.query), rate, seed);
        return 1;
      }
    }
    if (row.failed_queries != report.failed_queries) {
      std::fprintf(stderr, "failed_queries miscount at rate %.3f\n", rate);
      return 1;
    }
    if (rate == 0.0 &&
        (row.failed_queries != 0 || row.faults.total_injected() != 0)) {
      std::fprintf(stderr, "rate 0 must inject nothing and fail nothing\n");
      return 1;
    }
    rows_out.push_back(row);

    std::printf("%-7.3f %9" PRIu64 " %9" PRIu64 " %9" PRIu64 " %9" PRIu64
                " %6" PRIu64 " %6" PRIu64 " %9.4f %10.4f\n",
                rate, row.faults.total_injected(), row.faults.retries,
                row.faults.terminal_failures, row.invalidations,
                row.ok_queries, row.failed_queries, row.p95_ms,
                row.makespan_ms);
  }
  bench::PrintNote(
      "every ok query above was verified bit-exact; failed queries carry a "
      "clean status (transfer/launch/decode) — no wrong answers at any rate");

  if (common.emit_json) {
    std::string out;
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"schema\":\"tilecomp.bench_faults.v1\","
                  "\"system\":\"%s\",\"rows\":%u,\"batch\":%zu,"
                  "\"alpha\":%.3f,\"seed\":%" PRIu64 ",\"results\":[",
                  codec::SystemName(system), data.lineorder.size(), batch_size,
                  alpha, seed);
    out.append(head);
    for (size_t i = 0; i < rows_out.size(); ++i) {
      const Row& r = rows_out[i];
      char site_buf[256];
      std::string sites = "{";
      for (int s = 0; s < fault::kNumFaultSites; ++s) {
        std::snprintf(site_buf, sizeof(site_buf), "%s\"%s\":%" PRIu64,
                      s == 0 ? "" : ",",
                      fault::FaultSiteName(static_cast<fault::FaultSite>(s)),
                      r.faults.injected[static_cast<size_t>(s)]);
        sites.append(site_buf);
      }
      sites.append("}");
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "%s\n  {\"rate\":%.4f,\"injected\":%" PRIu64
          ",\"injected_by_site\":%s,\"retries\":%" PRIu64
          ",\"terminal_failures\":%" PRIu64 ",\"invalidations\":%" PRIu64
          ",\"ok_queries\":%" PRIu64 ",\"failed_queries\":%" PRIu64
          ",\"p95_ms\":%.6f,\"makespan_ms\":%.6f}",
          i == 0 ? "" : ",", r.rate, r.faults.total_injected(), sites.c_str(),
          r.faults.retries, r.faults.terminal_failures, r.invalidations,
          r.ok_queries, r.failed_queries, r.p95_ms, r.makespan_ms);
      out.append(buf);
    }
    out.append("\n]}\n");
    if (!bench::ExportJson(common, out)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
