// Figure 10: decompression performance on SSB columns.
//  (a) one-on-one cascade comparison, nvCOMP vs GPU-* (per cascade family):
//      paper: GPU-FOR 2.4x faster than nvCOMP FOR+BitPack, GPU-DFOR 3.5x
//      faster than nvCOMP Delta+FOR+BitPack, GPU-RFOR 2x faster than nvCOMP
//      RLE+FOR+BitPack.
//  (b) geomean decompression time across all SSB columns per system:
//      paper: GPU-* beats Planner 5.5x, GPU-BP 2x, nvCOMP 2.2x.
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "kernels/dispatch.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "telemetry/export.h"
#include "telemetry/tracer.h"

namespace tilecomp {
namespace {

constexpr uint64_t kPaperRows = 120'000'000;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t rows =
      static_cast<uint32_t>(flags.GetInt("rows", 3'000'000));
  ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  const uint32_t n = data.lineorder.size();

  // --- (a) per-cascade one-on-one, averaged over the SSB columns whose
  // GPU-* choice matches the cascade family ---
  bench::PrintTitle(
      "Figure 10a: decompression time per cascade, nvCOMP vs GPU-* "
      "(proj. ms, avg over matching SSB columns)");
  std::printf("%-22s %10s %10s %8s\n", "cascade", "nvCOMP", "GPU-*",
              "speedup");

  struct Accum {
    double nv = 0, star = 0;
    int count = 0;
  };
  std::map<int, Accum> per_family;  // keyed by GPU-* scheme
  std::map<int, Accum> per_system_geo;

  double geo[4] = {0, 0, 0, 0};  // Planner, GPU-BP, nvCOMP, GPU-*
  const codec::System systems[] = {codec::System::kPlanner,
                                   codec::System::kGpuBp,
                                   codec::System::kNvcomp,
                                   codec::System::kGpuStar};

  for (int c = 0; c < ssb::kNumLoCols; ++c) {
    const auto& values =
        data.lineorder.column(static_cast<ssb::LoCol>(c));
    // Family comparison (a): encode with both systems, decompress.
    auto star_col = codec::SystemEncode(codec::System::kGpuStar, values);
    auto nv_col = codec::SystemEncode(codec::System::kNvcomp, values);
    sim::Device dev;
    const double star_ms = bench::Project(
        codec::SystemDecompress(dev, star_col).time_ms, n, kPaperRows);
    const double nv_ms = bench::Project(
        codec::SystemDecompress(dev, nv_col).time_ms, n, kPaperRows);
    Accum& a = per_family[static_cast<int>(star_col.column.scheme())];
    a.nv += nv_ms;
    a.star += star_ms;
    a.count++;

    // Geomean comparison (b).
    for (int s = 0; s < 4; ++s) {
      auto col = codec::SystemEncode(systems[s], values);
      sim::Device dev2;
      geo[s] += std::log(bench::Project(
          codec::SystemDecompress(dev2, col).time_ms, n, kPaperRows));
    }
  }

  const std::map<int, const char*> family_names = {
      {static_cast<int>(codec::Scheme::kGpuFor), "FOR+BitPack"},
      {static_cast<int>(codec::Scheme::kGpuDFor), "Delta+FOR+BitPack"},
      {static_cast<int>(codec::Scheme::kGpuRFor), "RLE+FOR+BitPack"},
  };
  for (const auto& [scheme, acc] : per_family) {
    if (acc.count == 0) continue;
    const double nv = acc.nv / acc.count;
    const double star = acc.star / acc.count;
    std::printf("%-22s %10.2f %10.2f %7.1fx\n", family_names.at(scheme), nv,
                star, nv / star);
  }
  bench::PrintNote("paper speedups: FOR 2.4x, Delta+FOR 3.5x, RLE+FOR 2x");

  bench::PrintTitle(
      "Figure 10b: geomean decompression across SSB columns (proj. ms)");
  std::printf("%-10s %10s %10s %10s\n", "Planner", "GPU-BP", "nvCOMP",
              "GPU-*");
  double g[4];
  for (int s = 0; s < 4; ++s) g[s] = std::exp(geo[s] / ssb::kNumLoCols);
  std::printf("%-10.2f %10.2f %10.2f %10.2f\n", g[0], g[1], g[2], g[3]);
  std::printf("vs GPU-*:  %8.1fx %9.1fx %9.1fx %9.1fx\n", g[0] / g[3],
              g[1] / g[3], g[2] / g[3], 1.0);
  bench::PrintNote("paper: Planner 5.5x, GPU-BP 2x, nvCOMP 2.2x slower");

  // --trace=<file>: re-run one RLE-family column under a telemetry tracer
  // so the launch-count asymmetry is visible span by span — the
  // RLE+FOR+BitPack cascade records one kernel span per layer pass (8 in
  // total; the nvCOMP-style variant 6) while GPU-RFOR records a single
  // fused span.
  const bench::CommonOptions common = bench::ParseCommonOptions(flags, "");
  if (!common.trace_path.empty() || !common.chrome_path.empty()) {
    int pick = 0;
    for (int c = 0; c < ssb::kNumLoCols; ++c) {
      const auto& values = data.lineorder.column(static_cast<ssb::LoCol>(c));
      auto star = codec::SystemEncode(codec::System::kGpuStar, values);
      if (star.column.scheme() == codec::Scheme::kGpuRFor) {
        pick = c;
        break;
      }
    }
    const auto& values =
        data.lineorder.column(static_cast<ssb::LoCol>(pick));
    auto star_col = codec::SystemEncode(codec::System::kGpuStar, values);
    auto nv_col = codec::SystemEncode(codec::System::kNvcomp, values);
    sim::Device tdev;
    telemetry::Tracer tracer;
    tdev.AttachTracer(&tracer);
    {
      telemetry::ScopedSpan span(tdev, "nvcomp");
      codec::SystemDecompress(tdev, nv_col);
    }
    {
      telemetry::ScopedSpan span(tdev, "cascaded");
      kernels::Decompress(tdev, star_col.column,
                          kernels::Pipeline::kCascaded);
    }
    {
      telemetry::ScopedSpan span(tdev, "gpu-star");
      codec::SystemDecompress(tdev, star_col);
    }
    tdev.AttachTracer(nullptr);
    if (!bench::ExportTraces(common, tracer)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
