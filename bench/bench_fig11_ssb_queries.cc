// Figure 11: end-to-end performance on the 13 Star Schema Benchmark queries
// for OmniSci, Planner, GPU-BP, nvCOMP, GPU-*, and None (Crystal on
// uncompressed data). Times projected to SF20 (120M rows).
//
// Paper shape: None 1.35x faster than GPU-*; GPU-* beats Planner 4x,
// GPU-BP 2.4x, nvCOMP 2.6x, OmniSci 12x (geomean).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

namespace tilecomp {
namespace {

constexpr uint64_t kPaperRows = 120'000'000;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t rows =
      static_cast<uint32_t>(flags.GetInt("rows", 3'000'000));
  ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  const uint32_t n = data.lineorder.size();
  ssb::QueryRunner runner(data);

  const codec::System systems[] = {
      codec::System::kOmnisci, codec::System::kPlanner, codec::System::kGpuBp,
      codec::System::kNvcomp,  codec::System::kGpuStar, codec::System::kNone};

  bench::PrintTitle("Figure 11: SSB query time (proj. ms at SF20)");
  std::printf("%-8s", "query");
  for (auto s : systems) std::printf(" %9s", codec::SystemName(s));
  std::printf("\n");

  std::vector<ssb::EncodedLineorder> encoded;
  for (auto s : systems) encoded.push_back(ssb::EncodeLineorder(data, s));

  double geo[6] = {0, 0, 0, 0, 0, 0};
  for (ssb::QueryId q : ssb::AllQueries()) {
    std::printf("%-8s", ssb::QueryName(q));
    for (int s = 0; s < 6; ++s) {
      sim::Device dev;
      auto result = runner.Run(dev, encoded[s], q);
      const double ms = bench::Project(result.time_ms, n, kPaperRows);
      geo[s] += std::log(ms);
      std::printf(" %9.2f", ms);
    }
    std::printf("\n");
  }
  std::printf("%-8s", "geomean");
  for (int s = 0; s < 6; ++s) std::printf(" %9.2f", std::exp(geo[s] / 13.0));
  std::printf("\n");
  const double star = std::exp(geo[4] / 13.0);
  std::printf("%-8s", "vs GPU-*");
  for (int s = 0; s < 6; ++s) {
    std::printf(" %8.2fx", std::exp(geo[s] / 13.0) / star);
  }
  std::printf("\n");
  bench::PrintNote(
      "paper geomeans vs GPU-*: OmniSci 12x, Planner 4x, GPU-BP 2.4x, "
      "nvCOMP 2.6x, None 0.74x (1.35x faster)");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
