// Figure 12: GPU-as-coprocessor model. Data starts on the CPU; the fact
// columns a query needs are shipped over PCIe (12.8 GB/s), then the query
// runs on the device. One query per flight (q1.1, q2.1, q3.1, q4.1),
// None vs GPU-*.
//
// Paper shape: query runtime is dominated by PCIe transfer; compression
// makes the end-to-end run 2.3x faster (geomean).
//
// Second table (beyond the paper's figure): the same PCIe-bound deployment
// with the overlap real systems use — the column is shipped in chunks on
// async streams, transferring chunk i+1 while chunk i decompresses
// (codec/pipeline.h). Serial vs overlapped end-to-end time for
// None / GPU-FOR / GPU-DFOR, plus the fraction of hideable time hidden.
//
// Flags: --rows (SSB part), --n --chunks --streams (pipeline part),
// --overlap (skip the SSB queries; pipeline table only),
// --trace/--chrome (export the overlapped GPU-FOR pipeline trace).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "codec/pipeline.h"
#include "common/random.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "telemetry/export.h"
#include "telemetry/tracer.h"

namespace tilecomp {
namespace {

constexpr uint64_t kPaperRows = 120'000'000;

void RunSsbQueries(uint32_t rows) {
  ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  const uint32_t n = data.lineorder.size();
  ssb::QueryRunner runner(data);

  auto none = ssb::EncodeLineorder(data, codec::System::kNone);
  auto star = ssb::EncodeLineorder(data, codec::System::kGpuStar);

  bench::PrintTitle(
      "Figure 12: coprocessor model, PCIe transfer + query (proj. ms)");
  std::printf("%-8s %12s %12s %10s\n", "query", "None", "GPU-*", "speedup");

  const ssb::QueryId queries[] = {ssb::QueryId::kQ11, ssb::QueryId::kQ21,
                                  ssb::QueryId::kQ31, ssb::QueryId::kQ41};
  double geo_none = 0, geo_star = 0;
  for (ssb::QueryId q : queries) {
    auto run_with = [&](const ssb::EncodedLineorder& enc) {
      sim::Device dev;
      // Ship every fact column the query touches over PCIe.
      uint64_t bytes = 0;
      for (ssb::LoCol col : ssb::QueryColumns(q)) {
        bytes += enc.col(col).compressed_bytes();
      }
      dev.Transfer(bytes);
      auto result = runner.Run(dev, enc, q);
      return bench::Project(dev.elapsed_ms(), n, kPaperRows);
    };
    const double t_none = run_with(none);
    const double t_star = run_with(star);
    geo_none += std::log(t_none);
    geo_star += std::log(t_star);
    std::printf("%-8s %12.1f %12.1f %9.2fx\n", ssb::QueryName(q), t_none,
                t_star, t_none / t_star);
  }
  std::printf("%-8s %12.1f %12.1f %9.2fx\n", "geomean",
              std::exp(geo_none / 4), std::exp(geo_star / 4),
              std::exp(geo_none / 4) / std::exp(geo_star / 4));
  bench::PrintNote("paper: compression makes co-processor queries 2.3x faster");
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool overlap_only = flags.Has("overlap");
  if (!overlap_only) {
    RunSsbQueries(static_cast<uint32_t>(flags.GetInt("rows", 3'000'000)));
  }

  // --- Overlapped decompression pipeline ---
  const size_t n = static_cast<size_t>(flags.GetInt("n", 4'194'304));
  const uint32_t chunks =
      static_cast<uint32_t>(flags.GetInt("chunks", 8));
  const int streams = static_cast<int>(flags.GetInt("streams", 2));
  auto values = GenSortedGaps(n, 40, 7);

  bench::PrintTitle(
      "Figure 12b: chunked transfer/decompress overlap (proj. ms, " +
      std::to_string(chunks) + " chunks, " + std::to_string(streams) +
      " streams)");
  std::printf("%-10s %8s %10s %10s %8s %9s\n", "scheme", "MB", "serial",
              "overlap", "hidden%", "speedup");

  const codec::Scheme schemes[] = {codec::Scheme::kNone,
                                   codec::Scheme::kGpuFor,
                                   codec::Scheme::kGpuDFor};
  codec::PipelineOptions opts;
  opts.num_streams = streams;
  double none_overlap_ms = 0.0;
  for (codec::Scheme scheme : schemes) {
    auto col = codec::ChunkEncode(scheme, values, chunks);
    sim::Device dev;
    auto result = codec::DecompressPipelined(dev, col, opts);
    if (result.output != values) {
      std::fprintf(stderr, "pipeline output mismatch for %s\n",
                   codec::SchemeName(scheme));
      return 1;
    }
    const double serial = bench::Project(result.serial_ms, n, kPaperRows);
    const double overlap = bench::Project(result.total_ms, n, kPaperRows);
    if (scheme == codec::Scheme::kNone) none_overlap_ms = overlap;
    std::printf("%-10s %8.1f %10.1f %10.1f %7.0f%% %8.2fx\n",
                codec::SchemeName(scheme),
                result.bytes_transferred / 1e6, serial, overlap,
                result.overlap_fraction * 100.0, none_overlap_ms / overlap);
  }
  bench::PrintNote(
      "overlap hides the decompress kernels behind PCIe: end-to-end time "
      "approaches the pure transfer time of the *compressed* bytes");

  // Trace export: the overlapped GPU-FOR pipeline, one lane per stream.
  const bench::CommonOptions common = bench::ParseCommonOptions(flags, "");
  if (!common.trace_path.empty() || !common.chrome_path.empty()) {
    sim::Device dev;
    telemetry::Tracer tracer;
    dev.AttachTracer(&tracer);
    auto col = codec::ChunkEncode(codec::Scheme::kGpuFor, values, chunks);
    {
      telemetry::ScopedSpan span(dev, "fig12/overlapped-gpufor");
      codec::DecompressPipelined(dev, col, opts);
    }
    dev.AttachTracer(nullptr);
    if (!bench::ExportTraces(common, tracer)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
