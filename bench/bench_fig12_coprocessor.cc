// Figure 12: GPU-as-coprocessor model. Data starts on the CPU; the fact
// columns a query needs are shipped over PCIe (12.8 GB/s), then the query
// runs on the device. One query per flight (q1.1, q2.1, q3.1, q4.1),
// None vs GPU-*.
//
// Paper shape: query runtime is dominated by PCIe transfer; compression
// makes the end-to-end run 2.3x faster (geomean).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

namespace tilecomp {
namespace {

constexpr uint64_t kPaperRows = 120'000'000;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t rows =
      static_cast<uint32_t>(flags.GetInt("rows", 3'000'000));
  ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  const uint32_t n = data.lineorder.size();
  ssb::QueryRunner runner(data);

  auto none = ssb::EncodeLineorder(data, codec::System::kNone);
  auto star = ssb::EncodeLineorder(data, codec::System::kGpuStar);

  bench::PrintTitle(
      "Figure 12: coprocessor model, PCIe transfer + query (proj. ms)");
  std::printf("%-8s %12s %12s %10s\n", "query", "None", "GPU-*", "speedup");

  const ssb::QueryId queries[] = {ssb::QueryId::kQ11, ssb::QueryId::kQ21,
                                  ssb::QueryId::kQ31, ssb::QueryId::kQ41};
  double geo_none = 0, geo_star = 0;
  for (ssb::QueryId q : queries) {
    auto run_with = [&](const ssb::EncodedLineorder& enc) {
      sim::Device dev;
      // Ship every fact column the query touches over PCIe.
      uint64_t bytes = 0;
      for (ssb::LoCol col : ssb::QueryColumns(q)) {
        bytes += enc.col(col).compressed_bytes();
      }
      dev.Transfer(bytes);
      auto result = runner.Run(dev, enc, q);
      return bench::Project(dev.elapsed_ms(), n, kPaperRows);
    };
    const double t_none = run_with(none);
    const double t_star = run_with(star);
    geo_none += std::log(t_none);
    geo_star += std::log(t_star);
    std::printf("%-8s %12.1f %12.1f %9.2fx\n", ssb::QueryName(q), t_none,
                t_star, t_none / t_star);
  }
  std::printf("%-8s %12.1f %12.1f %9.2fx\n", "geomean",
              std::exp(geo_none / 4), std::exp(geo_star / 4),
              std::exp(geo_none / 4) / std::exp(geo_star / 4));
  bench::PrintNote("paper: compression makes co-processor queries 2.3x faster");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
