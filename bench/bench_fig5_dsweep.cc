// Figure 5: decompression time with varying number of data blocks per
// thread block (D in {1, 2, 4, 8, 16, 32}), GPU-FOR vs None.
//
// Paper shape (V100, 500M ints U(0,2^16), decode to registers): largest
// drop from D=1 (~6.5 ms) to D=4 (~2.4 ms); marginal gains to D=16; D=32
// deteriorates sharply (occupancy loss + register spilling). None ~2.4 ms.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kernels/decompress.h"

namespace tilecomp {
namespace {

constexpr size_t kPaperN = 500'000'000;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 16 << 20));

  bench::PrintTitle("Figure 5: decompression time vs blocks per thread block");
  std::printf("%-10s %12s %12s\n", "D", "sim_ms", "proj_ms");

  auto values = GenUniformBits(n, 16, 42);
  auto enc = format::GpuForEncode(values.data(), n);
  sim::Device dev;

  for (int d : {1, 2, 4, 8, 16, 32}) {
    kernels::UnpackConfig cfg;
    cfg.d = d;
    auto run = kernels::DecompressGpuFor(dev, enc, cfg,
                                         /*write_output=*/false);
    std::printf("GPU-FOR/%-2d %12.4f %12.2f\n", d, run.time_ms,
                bench::Project(run.time_ms, n, kPaperN));
  }
  auto none = kernels::ReadUncompressed(dev, values);
  std::printf("%-10s %12.4f %12.2f\n", "None", none.time_ms,
              bench::Project(none.time_ms, n, kPaperN));
  bench::PrintNote(
      "paper: D=1 ~6.5ms, D=4 ~2.4ms, D=16 marginally better, D=32 much "
      "worse; None ~2.4ms");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
