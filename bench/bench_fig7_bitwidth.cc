// Figure 7: performance with varying bitwidths. 250M uniform ints with
// exactly i effective bits, i = 2,4,..,30.
//  (a) decompression time (read compressed -> decode -> write back) for
//      None, NSF, GPU-FOR, GPU-DFOR, GPU-RFOR and the three cascaded
//      variants (FOR+BitPack, Delta+FOR+BitPack, RLE+FOR+BitPack);
//  (b) compression rate (bits per int) for None, NSF, GPU-FOR, GPU-DFOR,
//      GPU-RFOR.
//
// Paper shape: bit-packed schemes track the bitwidth linearly (overheads
// 0.75 / 0.81 / ~0.7 bits per int); NSF is a 8/16/32 staircase; GPU-FOR is
// within 15% of None (worst at b=7); cascaded variants are 2.6x / 4x / 8x
// slower than their tile-based counterparts; RLE+FOR+BitPack ~20ms.
#include <array>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "codec/column.h"
#include "common/random.h"
#include "kernels/dispatch.h"

namespace tilecomp {
namespace {

constexpr size_t kPaperN = 250'000'000;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 16 << 20));

  bench::PrintTitle("Figure 7a: decompression time vs bitwidth (proj. ms)");
  std::printf("%-4s %9s %9s %9s %9s %9s %9s %9s %9s\n", "b", "None", "NSF",
              "GPU-FOR", "GPU-DFOR", "GPU-RFOR", "FOR+BP", "D+F+BP",
              "R+F+BP");

  std::vector<std::array<double, 6>> rates;
  std::vector<uint32_t> widths;
  using codec::CompressedColumn;
  using codec::Scheme;
  for (uint32_t b = 2; b <= 30; b += 2) {
    auto values = GenUniformBits(n, b, 1000 + b);
    sim::Device dev;

    const auto none = CompressedColumn::Encode(Scheme::kNone, values);
    const auto nsf = CompressedColumn::Encode(Scheme::kNsf, values);
    const auto ffor = CompressedColumn::Encode(Scheme::kGpuFor, values);
    const auto dfor = CompressedColumn::Encode(Scheme::kGpuDFor, values);
    const auto rfor = CompressedColumn::Encode(Scheme::kGpuRFor, values);

    // One generic dispatcher call per series: the scheme picks the kernel,
    // the pipeline picks fused vs. layer-at-a-time.
    auto t = [&](const CompressedColumn& col, kernels::Pipeline pipeline) {
      return bench::Project(kernels::Decompress(dev, col, pipeline).time_ms,
                            n, kPaperN);
    };
    using kernels::Pipeline;
    const double t_none = t(none, Pipeline::kFused);
    const double t_nsf = t(nsf, Pipeline::kFused);
    const double t_for = t(ffor, Pipeline::kFused);
    const double t_dfor = t(dfor, Pipeline::kFused);
    const double t_rfor = t(rfor, Pipeline::kFused);
    const double t_for_c = t(ffor, Pipeline::kCascaded);
    const double t_dfor_c = t(dfor, Pipeline::kCascaded);
    const double t_rfor_c = t(rfor, Pipeline::kCascaded);

    std::printf("%-4u %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n", b,
                t_none, t_nsf, t_for, t_dfor, t_rfor, t_for_c, t_dfor_c,
                t_rfor_c);
    widths.push_back(b);
    rates.push_back({32.0, nsf.bits_per_int(), ffor.bits_per_int(),
                     dfor.bits_per_int(), rfor.bits_per_int(), 0});
  }

  bench::PrintTitle("Figure 7b: compression rate vs bitwidth (bits per int)");
  std::printf("%-4s %9s %9s %9s %9s %9s\n", "b", "None", "NSF", "GPU-FOR",
              "GPU-DFOR", "GPU-RFOR");
  for (size_t i = 0; i < widths.size(); ++i) {
    std::printf("%-4u %9.2f %9.2f %9.2f %9.2f %9.2f\n", widths[i],
                rates[i][0], rates[i][1], rates[i][2], rates[i][3],
                rates[i][4]);
  }
  bench::PrintNote(
      "paper: GPU-FOR = b + 0.75, GPU-DFOR = b + ~1.8 (unsorted deltas need "
      "one extra bit), GPU-RFOR = b + ~0.7, NSF staircase 8/16/32");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
