// Figure 7: performance with varying bitwidths. 250M uniform ints with
// exactly i effective bits, i = 2,4,..,30.
//  (a) decompression time (read compressed -> decode -> write back) for
//      None, NSF, GPU-FOR, GPU-DFOR, GPU-RFOR and the three cascaded
//      variants (FOR+BitPack, Delta+FOR+BitPack, RLE+FOR+BitPack);
//  (b) compression rate (bits per int) for None, NSF, GPU-FOR, GPU-DFOR,
//      GPU-RFOR.
//
// Paper shape: bit-packed schemes track the bitwidth linearly (overheads
// 0.75 / 0.81 / ~0.7 bits per int); NSF is a 8/16/32 staircase; GPU-FOR is
// within 15% of None (worst at b=7); cascaded variants are 2.6x / 4x / 8x
// slower than their tile-based counterparts; RLE+FOR+BitPack ~20ms.
#include <array>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kernels/decompress.h"

namespace tilecomp {
namespace {

constexpr size_t kPaperN = 250'000'000;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 16 << 20));

  bench::PrintTitle("Figure 7a: decompression time vs bitwidth (proj. ms)");
  std::printf("%-4s %9s %9s %9s %9s %9s %9s %9s %9s\n", "b", "None", "NSF",
              "GPU-FOR", "GPU-DFOR", "GPU-RFOR", "FOR+BP", "D+F+BP",
              "R+F+BP");

  std::vector<std::array<double, 6>> rates;
  std::vector<uint32_t> widths;
  for (uint32_t b = 2; b <= 30; b += 2) {
    auto values = GenUniformBits(n, b, 1000 + b);
    sim::Device dev;

    auto ffor = format::GpuForEncode(values.data(), n);
    auto dfor = format::GpuDForEncode(values.data(), n);
    auto rfor = format::GpuRForEncode(values.data(), n);
    auto nsf = format::NsfEncode(values.data(), n);

    const double t_none =
        bench::Project(kernels::CopyUncompressed(dev, values).time_ms, n,
                       kPaperN);
    const double t_nsf =
        bench::Project(kernels::DecompressNsf(dev, nsf).time_ms, n, kPaperN);
    const double t_for = bench::Project(
        kernels::DecompressGpuFor(dev, ffor).time_ms, n, kPaperN);
    const double t_dfor = bench::Project(
        kernels::DecompressGpuDFor(dev, dfor).time_ms, n, kPaperN);
    const double t_rfor = bench::Project(
        kernels::DecompressGpuRFor(dev, rfor).time_ms, n, kPaperN);
    const double t_for_c = bench::Project(
        kernels::DecompressForBitPackCascaded(dev, ffor).time_ms, n, kPaperN);
    const double t_dfor_c = bench::Project(
        kernels::DecompressDeltaForBitPackCascaded(dev, dfor).time_ms, n,
        kPaperN);
    const double t_rfor_c = bench::Project(
        kernels::DecompressRleForBitPackCascaded(dev, rfor).time_ms, n,
        kPaperN);

    std::printf("%-4u %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n", b,
                t_none, t_nsf, t_for, t_dfor, t_rfor, t_for_c, t_dfor_c,
                t_rfor_c);
    widths.push_back(b);
    rates.push_back({32.0, nsf.bits_per_int(), ffor.bits_per_int(),
                     dfor.bits_per_int(), rfor.bits_per_int(), 0});
  }

  bench::PrintTitle("Figure 7b: compression rate vs bitwidth (bits per int)");
  std::printf("%-4s %9s %9s %9s %9s %9s\n", "b", "None", "NSF", "GPU-FOR",
              "GPU-DFOR", "GPU-RFOR");
  for (size_t i = 0; i < widths.size(); ++i) {
    std::printf("%-4u %9.2f %9.2f %9.2f %9.2f %9.2f\n", widths[i],
                rates[i][0], rates[i][1], rates[i][2], rates[i][3],
                rates[i][4]);
  }
  bench::PrintNote(
      "paper: GPU-FOR = b + 0.75, GPU-DFOR = b + ~1.8 (unsorted deltas need "
      "one extra bit), GPU-RFOR = b + ~0.7, NSF staircase 8/16/32");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
