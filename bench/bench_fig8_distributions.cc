// Figure 8: comparison of compression schemes on different data
// distributions (250M entries).
//   D1 (a-b): sorted array, unique count 2^2 .. 2^28
//   D2 (c-d): normal distribution, sigma=20, mean 2^8 .. 2^28
//   D3 (e-f): Zipf distribution, alpha 1 .. 5 (with NSV)
// For each: compression rate (bits/int) and decompression time.
//
// Paper shape: D1 — GPU-RFOR/RLE best below ~2^22 uniques, GPU-DFOR best
// above (1.8 bits/int at 2^28); GPU-RFOR 2.5x faster than RLE. D2 — the
// bit-aligned schemes get ~3x smaller footprints than NSF beyond mean 2^16.
// D3 — bit-aligned schemes adapt to skew; NSV compresses well but decodes
// far slower than everything else.
#include <array>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "codec/column.h"
#include "common/random.h"
#include "kernels/dispatch.h"

namespace tilecomp {
namespace {

constexpr size_t kPaperN = 250'000'000;

struct SchemeResult {
  double bits;
  double proj_ms;
};

codec::Scheme SchemeFromName(const std::string& name) {
  if (name == "None") return codec::Scheme::kNone;
  if (name == "NSF") return codec::Scheme::kNsf;
  if (name == "NSV") return codec::Scheme::kNsv;
  if (name == "GPU-FOR") return codec::Scheme::kGpuFor;
  if (name == "GPU-DFOR") return codec::Scheme::kGpuDFor;
  if (name == "GPU-RFOR") return codec::Scheme::kGpuRFor;
  return codec::Scheme::kRle;
}

SchemeResult RunScheme(const char* scheme, const std::vector<uint32_t>& v) {
  sim::Device dev;
  const size_t n = v.size();
  // Encode with the named scheme and let the generic dispatcher pick the
  // matching fused decompression kernel.
  const auto col = codec::CompressedColumn::Encode(SchemeFromName(scheme), v);
  auto run = kernels::Decompress(dev, col);
  return {col.bits_per_int(), bench::Project(run.time_ms, n, kPaperN)};
}

void RunSweep(const char* title, const std::vector<const char*>& schemes,
              const std::vector<std::string>& labels,
              const std::vector<std::vector<uint32_t>>& datasets) {
  bench::PrintTitle(title);
  std::printf("%-12s", "param");
  for (const char* s : schemes) std::printf(" %9s/%-7s", s, "ms|bpi");
  std::printf("\n");
  for (size_t i = 0; i < datasets.size(); ++i) {
    std::printf("%-12s", labels[i].c_str());
    for (const char* s : schemes) {
      SchemeResult r = RunScheme(s, datasets[i]);
      std::printf(" %9.2f/%-7.2f", r.proj_ms, r.bits);
    }
    std::printf("\n");
  }
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 8 << 20));

  // D1: sorted, varying unique count.
  {
    std::vector<std::vector<uint32_t>> datasets;
    std::vector<std::string> labels;
    for (uint32_t log_u : {2u, 5u, 10u, 15u, 20u, 22u, 25u, 28u}) {
      const uint64_t uniques = std::min<uint64_t>(1ull << log_u, n);
      datasets.push_back(GenSortedUnique(n, uniques, 7 + log_u));
      labels.push_back("2^" + std::to_string(log_u));
    }
    RunSweep("Figure 8 a-b: D1 sorted, varying unique count (proj ms | bits/int)",
             {"None", "NSF", "GPU-FOR", "GPU-DFOR", "GPU-RFOR", "RLE"},
             labels, datasets);
    bench::PrintNote(
        "paper: GPU-RFOR best <=2^22 uniques; GPU-DFOR best above (1.8 "
        "bits/int at 2^28); GPU-RFOR ~2.5x faster than RLE");
  }

  // D2: normal with varying mean.
  {
    std::vector<std::vector<uint32_t>> datasets;
    std::vector<std::string> labels;
    for (uint32_t log_m : {8u, 12u, 16u, 20u, 24u, 28u}) {
      datasets.push_back(
          GenNormal(n, static_cast<double>(1ull << log_m), 20.0, 100 + log_m));
      labels.push_back("2^" + std::to_string(log_m));
    }
    RunSweep("Figure 8 c-d: D2 normal (sigma=20), varying mean",
             {"None", "NSF", "GPU-FOR", "GPU-DFOR"}, labels, datasets);
    bench::PrintNote(
        "paper: bit-aligned schemes ~3x smaller than None/NSF beyond mean "
        "2^16 thanks to FOR");
  }

  // D3: Zipf with varying alpha.
  {
    std::vector<std::vector<uint32_t>> datasets;
    std::vector<std::string> labels;
    for (double alpha : {1.0, 2.0, 3.0, 4.0, 5.0}) {
      datasets.push_back(GenZipf(n, 1u << 24, alpha, 200 + (int)alpha));
      labels.push_back("alpha=" + std::to_string((int)alpha));
    }
    RunSweep("Figure 8 e-f: D3 Zipf, varying skew",
             {"None", "NSF", "NSV", "GPU-FOR", "GPU-DFOR"}, labels, datasets);
    bench::PrintNote(
        "paper: bit-aligned schemes adapt to skew (better rate AND faster); "
        "NSV adapts but decodes much slower than everything else");
  }
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
