// Figure 9: compression waterfall for the Star Schema Benchmark lineorder
// columns — per-column data size (MB, projected to SF20 = 120M rows) under
// None, Planner, GPU-BP, nvCOMP, GPU-*.
//
// Paper shape: GPU-* reduces the mean footprint 2.8x vs None, 50% better
// than GPU-BP, 40% better than Planner, ~2% better than nvCOMP. GPU-BP is
// poor on runs columns (orderkey/orderdate/ordtotalprice/custkey) and date
// columns; Planner is poor on large random ints (extendedprice, revenue,
// supplycost).
#include <cstdio>

#include "bench/bench_util.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

namespace tilecomp {
namespace {

constexpr uint64_t kPaperRows = 120'000'000;  // SF20

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t rows =
      static_cast<uint32_t>(flags.GetInt("rows", 3'000'000));
  ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  const uint32_t actual_rows = data.lineorder.size();

  bench::PrintTitle("Figure 9: SSB column sizes (MB at SF20 projection)");
  bench::PrintNote("generated " + std::to_string(actual_rows) +
                   " lineorder rows; sizes scaled to 120M rows");

  const codec::System systems[] = {
      codec::System::kNone, codec::System::kPlanner, codec::System::kGpuBp,
      codec::System::kNvcomp, codec::System::kGpuStar};

  std::printf("%-15s", "column");
  for (auto s : systems) std::printf(" %10s", codec::SystemName(s));
  std::printf("\n");

  double total[5] = {0, 0, 0, 0, 0};
  for (int c = 0; c < ssb::kNumLoCols; ++c) {
    const auto col = static_cast<ssb::LoCol>(c);
    const auto& values = data.lineorder.column(col);
    std::printf("%-15s", ssb::LoColName(col));
    for (int s = 0; s < 5; ++s) {
      auto enc = codec::SystemEncode(systems[s], values);
      const double mb = static_cast<double>(enc.compressed_bytes()) /
                        actual_rows * kPaperRows / 1e6;
      total[s] += mb;
      std::printf(" %10.1f", mb);
    }
    std::printf("\n");
  }
  std::printf("%-15s", "mean");
  for (int s = 0; s < 5; ++s) {
    std::printf(" %10.1f", total[s] / ssb::kNumLoCols);
  }
  std::printf("\n");
  std::printf("%-15s", "total-ratio");
  for (int s = 0; s < 5; ++s) std::printf(" %10.2f", total[0] / total[s]);
  std::printf("\n");
  bench::PrintNote(
      "paper: None mean 480MB/col; GPU-* 2.8x total reduction; GPU-* ~= "
      "nvCOMP, 40% better than Planner, 50% better than GPU-BP");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
