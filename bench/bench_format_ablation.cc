// Format-design ablations for the parameters DESIGN.md calls out (beyond
// the paper's own Section 4.2/4.3 studies):
//   (1) GPU-FOR block size: the 128-value block balances FOR adaptivity
//       (smaller = tighter references) against metadata (3 words/block).
//   (2) GPU-DFOR blocks-per-tile (D): larger tiles amortize the first-value
//       word and give the prefix sum more work per block, but reduce
//       decode parallelism for short columns.
//   (3) GPU-RFOR block size: 512 balances run-splitting losses at block
//       boundaries against the shared-memory footprint of the expansion.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kernels/decompress.h"

namespace tilecomp {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 8 << 20));

  // (1) GPU-FOR block size on skewed data (Zipf): small blocks adapt.
  {
    bench::PrintTitle("Ablation: GPU-FOR block size (Zipf alpha=2 data)");
    std::printf("%-12s %12s %12s\n", "block_size", "bits/int", "sim_ms");
    auto values = GenZipf(n, 1 << 24, 2.0, 31);
    for (uint32_t bs : {128u, 256u, 512u, 1024u}) {
      format::GpuForOptions opt;
      opt.block_size = bs;
      auto enc = format::GpuForEncode(values.data(), n, opt);
      sim::Device dev;
      kernels::UnpackConfig cfg;
      cfg.d = static_cast<int>(512 / bs);
      if (cfg.d < 1) cfg.d = 1;
      auto run = kernels::DecompressGpuFor(dev, enc, cfg);
      std::printf("%-12u %12.2f %12.4f\n", bs, enc.bits_per_int(),
                  run.time_ms);
    }
    bench::PrintNote("smaller blocks adapt the reference to skew; 128 is "
                     "the paper's sweet spot");
  }

  // (2) GPU-DFOR blocks per tile on sorted data.
  {
    bench::PrintTitle("Ablation: GPU-DFOR blocks per tile (sorted data)");
    std::printf("%-12s %12s %12s\n", "tile_blocks", "bits/int", "sim_ms");
    auto values = GenSortedGaps(n, 40, 32);
    for (uint32_t bpt : {1u, 2u, 4u, 8u, 16u}) {
      format::GpuDForOptions opt;
      opt.blocks_per_tile = bpt;
      auto enc = format::GpuDForEncode(values.data(), n, opt);
      sim::Device dev;
      auto run = kernels::DecompressGpuDFor(dev, enc);
      std::printf("%-12u %12.2f %12.4f\n", bpt, enc.bits_per_int(),
                  run.time_ms);
    }
    bench::PrintNote("the paper uses 4 (one 512-value tile per thread "
                     "block); 1 doubles first-value overhead, 16 cuts "
                     "parallelism");
  }

  // (3) GPU-RFOR block size on runs data.
  {
    bench::PrintTitle("Ablation: GPU-RFOR block size (runs data, avg 32)");
    std::printf("%-12s %12s %12s\n", "block_size", "bits/int", "sim_ms");
    auto values = GenRuns(n, 32, 14, 33);
    for (uint32_t bs : {128u, 256u, 512u, 1024u, 2048u}) {
      format::GpuRForOptions opt;
      opt.block_size = bs;
      auto enc = format::GpuRForEncode(values.data(), n, opt);
      sim::Device dev;
      auto run = kernels::DecompressGpuRFor(dev, enc);
      std::printf("%-12u %12.2f %12.4f\n", bs, enc.bits_per_int(),
                  run.time_ms);
    }
    bench::PrintNote("small blocks split runs at boundaries (worse rate); "
                     "large blocks inflate shared memory per thread block "
                     "(occupancy)");
  }
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
