// Section 8, "Hyperparameter Tuning": "As GPUs improve, it is likely they
// will have more shared memory and registers per thread, thereby allowing
// us to use higher values of D during query processing."
//
// We model an A100-class device (DeviceSpec::A100(): ~2 TB/s HBM2e, double
// the per-thread shared-memory and register budgets) and re-run the
// Figure 5 D sweep on both specs: the optimum shifts right exactly as the
// paper predicts. --json <path> emits machine-readable
// BENCH_gpu_scaling.json (schema tilecomp.bench_gpu_scaling.v1).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kernels/decompress.h"

namespace tilecomp {
namespace {

struct Row {
  int d = 0;
  double v100_ms = 0.0;
  double a100_ms = 0.0;
};

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 16 << 20));
  const bench::CommonOptions common =
      bench::ParseCommonOptions(flags, "BENCH_gpu_scaling.json");
  auto values = GenUniformBits(n, 16, common.seed);
  auto enc = format::GpuForEncode(values.data(), n);

  bench::PrintTitle(
      "Section 8: D sweep on V100 vs A100-class device (sim ms)");
  std::printf("%-6s %12s %12s\n", "D", "V100", "A100");

  std::vector<Row> rows;
  int best_v100 = 0, best_a100 = 0;
  double best_v100_ms = 1e30, best_a100_ms = 1e30;
  for (int d : {1, 2, 4, 8, 16, 32, 64}) {
    kernels::UnpackConfig cfg;
    cfg.d = d;
    sim::Device v100(sim::DeviceSpec::V100());
    sim::Device a100(sim::DeviceSpec::A100());
    Row row;
    row.d = d;
    row.v100_ms = kernels::DecompressGpuFor(v100, enc, cfg, false).time_ms;
    row.a100_ms = kernels::DecompressGpuFor(a100, enc, cfg, false).time_ms;
    if (row.v100_ms < best_v100_ms) {
      best_v100_ms = row.v100_ms;
      best_v100 = d;
    }
    if (row.a100_ms < best_a100_ms) {
      best_a100_ms = row.a100_ms;
      best_a100 = d;
    }
    std::printf("%-6d %12.4f %12.4f\n", d, row.v100_ms, row.a100_ms);
    rows.push_back(row);
  }
  std::printf("best D: V100 = %d, A100 = %d\n", best_v100, best_a100);
  bench::PrintNote(
      "bigger on-chip budgets push the occupancy cliff to higher D, so the "
      "newer device prefers a larger (or equal) D — the paper's prediction");

  if (common.emit_json) {
    std::string json;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"schema\":\"tilecomp.bench_gpu_scaling.v1\","
                  "\"n\":%zu,\"seed\":%llu,"
                  "\"best_d_v100\":%d,\"best_d_a100\":%d,\"rows\":[",
                  n, static_cast<unsigned long long>(common.seed), best_v100,
                  best_a100);
    json += buf;
    for (size_t i = 0; i < rows.size(); ++i) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n{\"d\":%d,\"v100_ms\":%.6f,\"a100_ms\":%.6f}",
                    i == 0 ? "" : ",", rows[i].d, rows[i].v100_ms,
                    rows[i].a100_ms);
      json += buf;
    }
    json += "\n]}\n";
    if (!bench::ExportJson(common, json)) return 1;
  }
  return best_a100 >= best_v100 ? 0 : 1;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
