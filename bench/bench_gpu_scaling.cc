// Section 8, "Hyperparameter Tuning": "As GPUs improve, it is likely they
// will have more shared memory and registers per thread, thereby allowing
// us to use higher values of D during query processing."
//
// We model an A100-class device (~2 TB/s HBM2e, double the per-thread
// shared-memory and register budgets) and re-run the Figure 5 D sweep on
// both specs: the optimum shifts right exactly as the paper predicts.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kernels/decompress.h"

namespace tilecomp {
namespace {

sim::DeviceSpec A100Spec() {
  sim::DeviceSpec spec;  // start from the V100 defaults
  spec.global_bw_gbps = 2000.0;
  spec.shared_bw_gbps = 19000.0;
  spec.sm_count = 108;
  spec.smem_bytes_per_thread_full_occupancy = 96;  // 164 KB/SM vs 96 KB
  spec.regs_per_thread_full_occupancy = 96;
  spec.regs_per_thread_limit = 192;
  spec.int_ops_per_sec = 19.0e12;
  spec.pcie_gbps = 25.0;  // PCIe 4
  return spec;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 16 << 20));
  auto values = GenUniformBits(n, 16, 42);
  auto enc = format::GpuForEncode(values.data(), n);

  bench::PrintTitle(
      "Section 8: D sweep on V100 vs A100-class device (sim ms)");
  std::printf("%-6s %12s %12s\n", "D", "V100", "A100");

  int best_v100 = 0, best_a100 = 0;
  double best_v100_ms = 1e30, best_a100_ms = 1e30;
  for (int d : {1, 2, 4, 8, 16, 32, 64}) {
    kernels::UnpackConfig cfg;
    cfg.d = d;
    sim::Device v100;
    sim::Device a100(A100Spec());
    const double tv =
        kernels::DecompressGpuFor(v100, enc, cfg, false).time_ms;
    const double ta =
        kernels::DecompressGpuFor(a100, enc, cfg, false).time_ms;
    if (tv < best_v100_ms) {
      best_v100_ms = tv;
      best_v100 = d;
    }
    if (ta < best_a100_ms) {
      best_a100_ms = ta;
      best_a100 = d;
    }
    std::printf("%-6d %12.4f %12.4f\n", d, tv, ta);
  }
  std::printf("best D: V100 = %d, A100 = %d\n", best_v100, best_a100);
  bench::PrintNote(
      "bigger on-chip budgets push the occupancy cliff to higher D, so the "
      "newer device prefers a larger (or equal) D — the paper's prediction");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
