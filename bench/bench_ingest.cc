// Mutable-column ingest: interleaved append / patch / query mix.
//
// The bench grows a codec::MutableColumn round by round — each round appends
// a batch (whose bit width drifts, so tiles land at different budgets),
// point-patches random rows (decode-and-free), hands the dirty set to a
// background ReencodeDirty on a ThreadPool, and immediately runs a wave of
// range-predicate count/sum queries through the serving path
// (serve::MutableColumnAccessor + TileCache, zone pruning from the live
// bounds) while the re-encode is still in flight. Every query is checked
// bit-exact against a host mirror of the column.
//
// Three acceptance gates, enforced in-binary (exit 1 on failure):
//   1. every query in every round bit-exact vs the host reference;
//   2. space amplification (arena words / live words) <= 1.25 after the
//      dirty set drains and Compact() runs;
//   3. p95 modeled query latency with a background re-encode racing the
//      wave within 15% of the same queries on a quiescent, fully
//      re-encoded copy of the final column.
//
// --json [path] emits machine-readable BENCH_ingest.json (schema
// tilecomp.bench_ingest.v1); --trace additionally carries the committed
// re-encodes as trace v10 reencode spans.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "codec/column.h"
#include "codec/column_id.h"
#include "codec/mutable_column.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "crystal/load_column.h"
#include "serve/mutable_loader.h"
#include "serve/server.h"
#include "serve/tile_cache.h"
#include "sim/device.h"

namespace tilecomp {
namespace {

struct QuerySpec {
  uint32_t lo = 0;
  uint32_t hi = 0;
};

struct RoundRow {
  int round = 0;
  int64_t rows = 0;
  uint64_t arena_words = 0;
  uint64_t dirty_tiles = 0;
  uint64_t reencodes = 0;
  uint64_t tiles_pruned = 0;
  uint64_t cache_hits = 0;
  double wave_ms = 0.0;
};

// One range-predicate count/sum scan over the first `rows` rows of the
// mutable column, served through `accessor` (cache + charged decode of the
// variable-rate extents, zone pruning from the live bounds). Returns the
// launch's modeled time; count/sum through out-params.
double Scan(sim::Device& dev, serve::MutableColumnAccessor& accessor,
            codec::ColumnId col_id, int64_t rows, const QuerySpec& q,
            uint64_t* out_count, uint64_t* out_sum) {
  // The accessor ignores the CompressedColumn& of the interface — the
  // mutable store is the source of truth; pass a placeholder.
  static const codec::CompressedColumn placeholder;
  const crystal::TilePredicate pred = crystal::TilePredicate::Range(q.lo, q.hi);
  const int64_t num_tiles =
      (rows + crystal::kTileSize - 1) / crystal::kTileSize;

  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  sim::LaunchConfig lc;
  lc.grid_dim = num_tiles;
  lc.block_threads = 128;
  lc.smem_bytes_per_block = crystal::kTileSize * 4;
  const sim::KernelResult r =
      dev.Launch("ingest.scan", lc, [&](sim::BlockContext& ctx) {
        const int64_t tile = ctx.block_id();
        crystal::TileMask mask = crystal::TileMask::AllSet();
        uint32_t n = accessor.EvaluateOnTile(ctx, placeholder, col_id, tile,
                                             pred, &mask);
        if (!mask.Any()) return;  // late materialization
        uint32_t vals[crystal::kTileSize];
        n = accessor.LoadTile(ctx, placeholder, col_id, tile, vals);
        // Clamp the tail to the caller's row-count snapshot: appends only
        // grow the column, so rows < the snapshot are stable positions.
        const int64_t first_row = tile * crystal::kTileSize;
        if (first_row + n > rows) n = static_cast<uint32_t>(rows - first_row);
        uint64_t local_sum = 0;
        uint32_t local_count = 0;
        for (uint32_t i = 0; i < n; ++i) {
          if (!mask.Test(i)) continue;
          local_sum += vals[i];
          ++local_count;
        }
        count.fetch_add(local_count, std::memory_order_relaxed);
        sum.fetch_add(local_sum, std::memory_order_relaxed);
      });
  *out_count = count.load();
  *out_sum = sum.load();
  return r.time_ms;
}

// Host reference over the mirror.
void HostScan(const std::vector<uint32_t>& host, int64_t rows,
              const QuerySpec& q, uint64_t* out_count, uint64_t* out_sum) {
  uint64_t count = 0, sum = 0;
  for (int64_t i = 0; i < rows; ++i) {
    if (host[static_cast<size_t>(i)] >= q.lo &&
        host[static_cast<size_t>(i)] <= q.hi) {
      ++count;
      sum += host[static_cast<size_t>(i)];
    }
  }
  *out_count = count;
  *out_sum = sum;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::CommonOptions common =
      bench::ParseCommonOptions(flags, "BENCH_ingest.json");
  const int rounds = static_cast<int>(flags.GetInt("rounds", 12));
  const int64_t batch = flags.GetInt("batch", 8192);
  const int patches = static_cast<int>(flags.GetInt("patches", 256));
  const int queries = static_cast<int>(flags.GetInt("queries", 6));

  Rng rng(common.seed);
  const codec::ColumnId col_id(1);
  codec::MutableColumn col(col_id);
  std::vector<uint32_t> host;
  serve::TileCache cache(4ull << 20);
  serve::MutableColumnAccessor accessor(&col, &cache);
  ThreadPool pool(2);

  telemetry::Tracer tracer;
  sim::Device dev;
  dev.AttachTracer(&tracer);

  bench::PrintTitle("Ingest: interleaved append / patch / query mix");
  std::printf("%-6s %10s %10s %8s %9s %8s %8s %10s\n", "round", "rows",
              "arena_w", "dirty", "reencode", "pruned", "hits", "wave_ms");

  std::vector<RoundRow> round_rows;
  std::vector<double> mixed_ms;
  uint64_t queries_checked = 0;
  for (int round = 0; round < rounds; ++round) {
    // Append a batch whose bit width drifts round to round, so tiles seal
    // at genuinely different budgets (the variable-rate case).
    const uint32_t bits = 6 + static_cast<uint32_t>((round * 5) % 18);
    std::vector<uint32_t> vals(static_cast<size_t>(batch));
    for (auto& v : vals) {
      v = static_cast<uint32_t>(rng.NextBounded(1ull << bits));
    }
    col.Append(U32Span(vals.data(), vals.size()));
    host.insert(host.end(), vals.begin(), vals.end());

    // Random point patches; a slice of them widen the value past the
    // tile's sealed bit budget so the re-encode actually changes widths.
    for (int p = 0; p < patches; ++p) {
      const int64_t row = static_cast<int64_t>(rng.NextBounded(host.size()));
      uint32_t value = static_cast<uint32_t>(rng.NextBounded(1u << bits));
      if (p % 4 == 0) value |= 1u << 24;  // width-widening patch
      col.Patch(row, value);
      host[static_cast<size_t>(row)] = value;
    }

    // Background re-encode races the query wave below. ReencodeDirty must
    // not be called from inside ParallelFor on the same pool, so the worker
    // runs it with pool = nullptr.
    pool.Submit([&col] { col.ReencodeDirty(nullptr); });

    const int64_t rows_snapshot = col.size();
    double wave_ms = 0.0;
    for (int qi = 0; qi < queries; ++qi) {
      const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(1u << 20));
      QuerySpec q;
      q.lo = lo;
      q.hi = lo + static_cast<uint32_t>(rng.NextBounded(1u << 22));
      uint64_t want_count = 0, want_sum = 0;
      HostScan(host, rows_snapshot, q, &want_count, &want_sum);
      uint64_t got_count = 0, got_sum = 0;
      const double ms = Scan(dev, accessor, col_id, rows_snapshot, q,
                             &got_count, &got_sum);
      if (got_count != want_count || got_sum != want_sum) {
        std::fprintf(stderr,
                     "round %d query %d diverges from host: got %" PRIu64
                     " rows sum %" PRIu64 ", want %" PRIu64 " sum %" PRIu64
                     "\n",
                     round, qi, got_count, got_sum, want_count, want_sum);
        return 1;
      }
      ++queries_checked;
      mixed_ms.push_back(ms);
      wave_ms += ms;
    }
    pool.Wait();

    const codec::MutableColumn::Stats st = col.GetStats();
    RoundRow row;
    row.round = round;
    row.rows = rows_snapshot;
    row.arena_words = st.arena_words;
    row.dirty_tiles = st.dirty_tiles;
    row.reencodes = st.reencodes;
    row.tiles_pruned = dev.total_stats().pushdown.tiles_pruned;
    row.cache_hits = cache.stats().hits;
    row.wave_ms = wave_ms;
    round_rows.push_back(row);
    std::printf("%-6d %10" PRId64 " %10" PRIu64 " %8" PRIu64 " %9" PRIu64
                " %8" PRIu64 " %8" PRIu64 " %10.4f\n",
                row.round, row.rows, row.arena_words, row.dirty_tiles,
                row.reencodes, row.tiles_pruned, row.cache_hits, row.wave_ms);
  }

  // ---------------------------------------------------------------
  // Gate 1 already enforced per query. Drain + compact for gate 2.
  // ---------------------------------------------------------------
  col.ReencodeDirty(&pool);
  const codec::MutableColumn::Stats before = col.GetStats();
  const uint64_t reclaimed = col.Compact(1.0);
  const codec::MutableColumn::Stats after = col.GetStats();

  // Full-column bit-exactness after drain + compact.
  const std::vector<uint32_t> decoded = col.DecodeHost();
  if (decoded != host) {
    std::fprintf(stderr, "final column diverges from the host mirror\n");
    return 1;
  }

  bench::PrintTitle("Space reclamation");
  std::printf("arena %" PRIu64 " -> %" PRIu64 " words (reclaimed %" PRIu64
              "), live %" PRIu64 ", amplification %.3f -> %.3f\n",
              before.arena_words, after.arena_words, reclaimed,
              after.live_words, before.space_amplification,
              after.space_amplification);
  const bool space_ok = after.space_amplification <= 1.25;
  if (!space_ok) {
    std::fprintf(stderr,
                 "space amplification %.3f exceeds the 1.25x bar\n",
                 after.space_amplification);
  }

  // ---------------------------------------------------------------
  // Gate 3: p95 with a background re-encode racing the wave, vs the
  // same queries on a quiescent fully re-encoded copy.
  // ---------------------------------------------------------------
  const int64_t final_rows = col.size();
  std::vector<QuerySpec> probe;
  for (int qi = 0; qi < queries * 4; ++qi) {
    QuerySpec q;
    q.lo = static_cast<uint32_t>(rng.NextBounded(1u << 20));
    q.hi = q.lo + static_cast<uint32_t>(rng.NextBounded(1u << 22));
    probe.push_back(q);
  }

  // Perturbed run: dirty a spread of tiles, then query while the
  // re-encode drains in the background.
  for (int p = 0; p < patches; ++p) {
    const int64_t row = static_cast<int64_t>(rng.NextBounded(host.size()));
    const uint32_t value = host[static_cast<size_t>(row)];  // content-preserving
    col.Patch(row, value);
  }
  pool.Submit([&col] { col.ReencodeDirty(nullptr); });
  std::vector<double> perturbed_ms;
  for (const QuerySpec& q : probe) {
    uint64_t want_count = 0, want_sum = 0;
    HostScan(host, final_rows, q, &want_count, &want_sum);
    uint64_t got_count = 0, got_sum = 0;
    perturbed_ms.push_back(
        Scan(dev, accessor, col_id, final_rows, q, &got_count, &got_sum));
    if (got_count != want_count || got_sum != want_sum) {
      std::fprintf(stderr, "perturbed probe diverges from host\n");
      return 1;
    }
    ++queries_checked;
  }
  pool.Wait();
  col.ReencodeDirty(nullptr);

  // Quiescent baseline: the same data rebuilt, fully re-encoded, with its
  // own cold cache, on a fresh device timeline.
  codec::MutableColumn base_col(col_id);
  base_col.Append(U32Span(host.data(), host.size()));
  base_col.ReencodeDirty(&pool);
  base_col.Compact(1.0);
  serve::TileCache base_cache(4ull << 20);
  serve::MutableColumnAccessor base_accessor(&base_col, &base_cache);
  sim::Device base_dev;
  std::vector<double> baseline_ms;
  for (const QuerySpec& q : probe) {
    uint64_t got_count = 0, got_sum = 0;
    baseline_ms.push_back(Scan(base_dev, base_accessor, col_id, final_rows, q,
                               &got_count, &got_sum));
  }

  const double p95_perturbed = serve::NearestRankPercentile(perturbed_ms, 95);
  const double p95_baseline = serve::NearestRankPercentile(baseline_ms, 95);
  const double ratio =
      p95_baseline > 0.0 ? p95_perturbed / p95_baseline : 1.0;
  bench::PrintTitle("Query p95 under background re-encode");
  std::printf("perturbed %.4f ms, quiescent baseline %.4f ms, ratio %.3f\n",
              p95_perturbed, p95_baseline, ratio);
  const bool p95_ok = ratio <= 1.15;
  if (!p95_ok) {
    std::fprintf(stderr, "p95 ratio %.3f exceeds the 1.15x bar\n", ratio);
  }

  // Carry the committed re-encodes into the trace as v10 reencode spans.
  const std::vector<codec::MutableColumn::ReencodeRecord> reencode_log =
      col.TakeReencodeLog();
  for (const auto& rec : reencode_log) {
    tracer.OnReencode(col_id.value(), rec.tile, rec.generation, rec.old_words,
                      rec.new_words, rec.start_us / 1000.0,
                      (rec.end_us - rec.start_us) / 1000.0);
  }

  const codec::MutableColumn::Stats final_st = col.GetStats();
  bench::PrintNote(
      "every query bit-exact vs the host mirror under interleaved "
      "append/patch/query with background re-encode");
  std::printf("queries %" PRIu64 ", reencodes %" PRIu64 " (retries %" PRIu64
              "), patches %" PRIu64 ", stale inserts refused %" PRIu64 "\n",
              queries_checked, final_st.reencodes, final_st.reencode_retries,
              final_st.patches, cache.stats().stale_refused);

  if (common.emit_json) {
    std::string out;
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\"schema\":\"tilecomp.bench_ingest.v1\",\"rounds\":%d,"
        "\"batch\":%" PRId64 ",\"patches_per_round\":%d,"
        "\"queries_per_round\":%d,\"seed\":%" PRIu64 ",\"final_rows\":%" PRId64
        ",\"queries_checked\":%" PRIu64 ",\"reencodes\":%" PRIu64
        ",\"reencode_retries\":%" PRIu64 ",\"stale_inserts_refused\":%" PRIu64
        ",\"space\":{\"arena_words\":%" PRIu64 ",\"live_words\":%" PRIu64
        ",\"reclaimed_words\":%" PRIu64
        ",\"amplification_before_compact\":%.4f,"
        "\"amplification_after_compact\":%.4f},"
        "\"p95\":{\"perturbed_ms\":%.6f,\"baseline_ms\":%.6f,"
        "\"ratio\":%.4f},"
        "\"gates\":{\"bit_exact\":true,\"space_amp_ok\":%s,\"p95_ok\":%s},"
        "\"rounds_detail\":[",
        rounds, batch, patches, queries, common.seed, final_rows,
        queries_checked, final_st.reencodes, final_st.reencode_retries,
        cache.stats().stale_refused, after.arena_words, after.live_words,
        reclaimed, before.space_amplification, after.space_amplification,
        p95_perturbed, p95_baseline, ratio, space_ok ? "true" : "false",
        p95_ok ? "true" : "false");
    out.append(buf);
    for (size_t i = 0; i < round_rows.size(); ++i) {
      const RoundRow& r = round_rows[i];
      char row_buf[320];
      std::snprintf(row_buf, sizeof(row_buf),
                    "%s\n  {\"round\":%d,\"rows\":%" PRId64
                    ",\"arena_words\":%" PRIu64 ",\"dirty_tiles\":%" PRIu64
                    ",\"reencodes\":%" PRIu64 ",\"tiles_pruned\":%" PRIu64
                    ",\"cache_hits\":%" PRIu64 ",\"wave_ms\":%.6f}",
                    i == 0 ? "" : ",", r.round, r.rows, r.arena_words,
                    r.dirty_tiles, r.reencodes, r.tiles_pruned, r.cache_hits,
                    r.wave_ms);
      out.append(row_buf);
    }
    out.append("\n]}\n");
    if (!bench::ExportJson(common, out)) return 1;
  }
  if (!bench::ExportTraces(common, tracer)) return 1;

  return (space_ok && p95_ok) ? 0 : 1;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
