// google-benchmark microbenchmarks of the host-side primitives: bit
// packing/unpacking throughput across widths, format encoders, and the
// block-decode routines that the simulated kernels execute functionally.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "format/bitpack.h"
#include "format/gpudfor.h"
#include "format/gpufor.h"
#include "format/gpurfor.h"

namespace tilecomp {
namespace {

void BM_PackArray(benchmark::State& state) {
  const uint32_t bits = static_cast<uint32_t>(state.range(0));
  const size_t n = 1 << 16;
  auto values = GenUniformBits(n, bits, bits);
  for (auto _ : state) {
    std::vector<uint32_t> out;
    out.reserve(n);
    format::PackArray(values.data(), n, bits, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PackArray)->Arg(1)->Arg(5)->Arg(13)->Arg(17)->Arg(27)->Arg(32);

void BM_UnpackArray(benchmark::State& state) {
  const uint32_t bits = static_cast<uint32_t>(state.range(0));
  const size_t n = 1 << 16;
  auto values = GenUniformBits(n, bits, bits);
  std::vector<uint32_t> packed;
  format::PackArray(values.data(), n, bits, &packed);
  packed.push_back(0);
  std::vector<uint32_t> out(n);
  for (auto _ : state) {
    format::UnpackArray(packed.data(), n, bits, out.data());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnpackArray)->Arg(1)->Arg(5)->Arg(13)->Arg(17)->Arg(27)->Arg(32);

void BM_GpuForEncode(benchmark::State& state) {
  const size_t n = 1 << 20;
  auto values = GenUniformBits(n, static_cast<uint32_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto enc = format::GpuForEncode(values.data(), n);
    benchmark::DoNotOptimize(enc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GpuForEncode)->Arg(8)->Arg(16)->Arg(24);

void BM_GpuForDecodeBlock(benchmark::State& state) {
  const size_t n = 1 << 20;
  auto values = GenUniformBits(n, 16, 4);
  auto enc = format::GpuForEncode(values.data(), n);
  std::vector<uint32_t> out(enc.header.block_size);
  uint32_t block = 0;
  for (auto _ : state) {
    format::GpuForDecodeBlock(
        enc.header, enc.data.data() + enc.block_starts[block], out.data());
    benchmark::DoNotOptimize(out);
    block = (block + 1) % enc.header.num_blocks();
  }
  state.SetItemsProcessed(state.iterations() * enc.header.block_size);
}
BENCHMARK(BM_GpuForDecodeBlock);

void BM_GpuDForDecodeTile(benchmark::State& state) {
  const size_t n = 1 << 20;
  auto values = GenSortedGaps(n, 50, 5);
  auto enc = format::GpuDForEncode(values.data(), n);
  std::vector<uint32_t> out(enc.header.values_per_tile());
  uint32_t tile = 0;
  for (auto _ : state) {
    format::GpuDForDecodeTile(enc.header, enc, tile, out.data());
    benchmark::DoNotOptimize(out);
    tile = (tile + 1) % enc.header.num_tiles();
  }
  state.SetItemsProcessed(state.iterations() * enc.header.values_per_tile());
}
BENCHMARK(BM_GpuDForDecodeTile);

void BM_GpuRForDecodeBlock(benchmark::State& state) {
  const size_t n = 1 << 20;
  auto values = GenRuns(n, 16, 12, 6);
  auto enc = format::GpuRForEncode(values.data(), n);
  std::vector<uint32_t> out(enc.header.block_size);
  uint32_t block = 0;
  for (auto _ : state) {
    format::GpuRForDecodeBlock(enc, block, out.data());
    benchmark::DoNotOptimize(out);
    block = (block + 1) % enc.header.num_blocks();
  }
  state.SetItemsProcessed(state.iterations() * enc.header.block_size);
}
BENCHMARK(BM_GpuRForDecodeBlock);

}  // namespace
}  // namespace tilecomp

BENCHMARK_MAIN();
