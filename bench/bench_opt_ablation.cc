// Section 4.2 optimization ablation: decode 500M uniform U(0, 2^16) ints
// (decode-to-registers, no output write), one row per optimization level.
//
// Paper reference (V100, 500M ints):
//   base algorithm        18 ms
//   + shared memory        7 ms
//   + multi-block (D=4)    2.39 ms
//   + precomputed offsets  2.1 ms
//   reading uncompressed   2.4 ms
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kernels/decompress.h"
#include "sim/stats.h"
#include "telemetry/export.h"
#include "telemetry/tracer.h"

namespace tilecomp {
namespace {

constexpr size_t kPaperN = 500'000'000;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 16 << 20));

  bench::PrintTitle("Section 4.2 ablation: fast bit unpacking optimizations");
  bench::PrintNote("dataset: " + std::to_string(n) + " ints U(0,2^16); " +
                   "times projected to paper scale (500M)");
  std::printf("%-28s %12s %12s %12s  %s\n", "variant", "sim_ms", "proj_ms",
              "paper_ms", "limiter");

  auto values = GenUniformBits(n, 16, 42);
  auto enc = format::GpuForEncode(values.data(), n);
  sim::Device dev;
  telemetry::Tracer tracer;
  dev.AttachTracer(&tracer);

  struct Row {
    const char* name;
    kernels::UnpackOpt opt;
    int d;
    double paper_ms;
  };
  const Row rows[] = {
      {"base algorithm", kernels::UnpackOpt::kBase, 1, 18.0},
      {"+ shared memory", kernels::UnpackOpt::kSharedMemory, 1, 7.0},
      {"+ multi-block (D=4)", kernels::UnpackOpt::kMultiBlock, 4, 2.39},
      {"+ precomputed offsets", kernels::UnpackOpt::kPrecomputeOffsets, 4,
       2.1},
  };
  for (const Row& row : rows) {
    kernels::UnpackConfig cfg;
    cfg.opt = row.opt;
    cfg.d = row.d;
    kernels::DecompressRun run;
    {
      telemetry::ScopedSpan span(dev, row.name);
      run = kernels::DecompressGpuFor(dev, enc, cfg,
                                      /*write_output=*/false);
    }
    const char* limiter =
        run.launches.empty()
            ? "-"
            : sim::LimiterName(run.launches.front().breakdown.limiter());
    std::printf("%-28s %12.4f %12.2f %12.2f  %s\n", row.name, run.time_ms,
                bench::Project(run.time_ms, n, kPaperN), row.paper_ms,
                limiter);
  }
  kernels::DecompressRun uncompressed;
  {
    telemetry::ScopedSpan span(dev, "reading uncompressed");
    uncompressed = kernels::ReadUncompressed(dev, values);
  }
  std::printf("%-28s %12.4f %12.2f %12.2f  %s\n", "reading uncompressed",
              uncompressed.time_ms,
              bench::Project(uncompressed.time_ms, n, kPaperN), 2.4,
              uncompressed.launches.empty()
                  ? "-"
                  : sim::LimiterName(
                        uncompressed.launches.front().breakdown.limiter()));
  dev.AttachTracer(nullptr);

  if (!bench::ExportTraces(bench::ParseCommonOptions(flags, ""), tracer)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
