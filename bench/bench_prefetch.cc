// Speculative-prefetch benchmark: the Zipfian SSB serving mix at a fixed
// cache budget, swept over eviction policy x prefetch depth x query-mix
// skew (alpha).
//
// The serve path for decompress-then-query systems (GPU-BP here) skips a
// column's whole decompress pipeline only when *every* reachable tile is
// resident — one evicted tile forces the full pipeline, cascade
// intermediates included. At a budget below the working set that
// all-or-nothing test keeps failing, so the cache under-delivers exactly
// where it should pay most. The prefetcher closes the gap: between queries
// it tops up the missing tiles of recently scanned columns with speculative
// tile-granular decodes on its own streams, converting partial residency
// into whole-pipeline skips. The speculation is modeled work (it shares the
// compute engine), so the bench answers whether the skipped pipelines buy
// more than the staged tiles cost — per policy, depth and skew.
//
// depth = 0 rows are the no-prefetch baseline at the same budget. The
// acceptance bar — enforced in-binary, exit 1 — is that for every alpha the
// best prefetch-enabled configuration is strictly better than the best
// no-prefetch configuration on BOTH p95 and p99 latency, with every query
// of every run validated bit-exactly against the host reference executor.
// --json <path> emits machine-readable BENCH_prefetch.json (schema
// tilecomp.bench_prefetch.v1) for cross-PR tracking.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "serve/prefetcher.h"
#include "serve/server.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

namespace tilecomp {
namespace {

// Decoded bytes of every lineorder column touched by any of the 13 queries.
uint64_t FullWorkingSetBytes(const ssb::EncodedLineorder& lineorder) {
  bool used[ssb::kNumLoCols] = {};
  for (ssb::QueryId q : ssb::AllQueries()) {
    for (ssb::LoCol c : ssb::QueryColumns(q)) used[static_cast<int>(c)] = true;
  }
  uint64_t bytes = 0;
  for (int c = 0; c < ssb::kNumLoCols; ++c) {
    if (used[c]) {
      bytes += uint64_t{lineorder.cols[static_cast<size_t>(c)].size()} *
               sizeof(uint32_t);
    }
  }
  return bytes;
}

struct Row {
  double alpha = 0.0;
  serve::EvictionPolicy policy = serve::EvictionPolicy::kLru;
  int depth = 0;  // 0 = prefetch disabled
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double makespan_ms = 0.0;
  double hit_rate = 0.0;
  uint64_t decompress_skips = 0;
  double skip_rate = 0.0;  // of all column materializations in the batch
  uint64_t issued = 0;
  uint64_t useful = 0;
  uint64_t wasted = 0;
  uint64_t late = 0;
  double wasted_rate = 0.0;
  uint64_t bytes_read = 0;
};

bool SameResults(const serve::ServeReport& report,
                 const std::vector<ssb::QueryResult>& expected) {
  for (size_t i = 0; i < report.queries.size(); ++i) {
    if (report.queries[i].result.groups != expected[i].groups) return false;
  }
  return true;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t rows = static_cast<uint32_t>(flags.GetInt("rows", 60000));
  // Defaults put the budget just below the working set (a ~100-tile
  // deficit): the regime where the all-or-nothing pipeline skip keeps
  // failing without help but speculative top-ups can finish columns. The
  // batch is long enough that the tail percentiles reflect the steady-state
  // serving mix rather than the first cold touch of each query class
  // (nearest-rank p99 of a sub-100 batch is just the slowest query).
  const size_t batch_size = static_cast<size_t>(flags.GetInt("queries", 192));
  const double budget_frac = flags.GetDouble("budget_frac", 0.91);
  const bench::CommonOptions common =
      bench::ParseCommonOptions(flags, "BENCH_prefetch.json");
  const uint64_t seed = common.seed;
  const int streams = static_cast<int>(flags.GetInt("streams", 4));
  const int idle_ttl = static_cast<int>(flags.GetInt("idle_ttl", 4));

  const ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  const ssb::EncodedLineorder lineorder =
      ssb::EncodeLineorder(data, codec::System::kGpuBp);
  const uint64_t working_set = FullWorkingSetBytes(lineorder);
  const uint64_t budget = static_cast<uint64_t>(
      budget_frac * static_cast<double>(working_set));

  const double alphas[] = {0.8, 1.2};
  const serve::EvictionPolicy policies[] = {serve::EvictionPolicy::kLru,
                                            serve::EvictionPolicy::kClock,
                                            serve::EvictionPolicy::kCostAware};
  const int depths[] = {0, 8, 32, 128};

  bench::PrintTitle(
      "Speculative prefetch: Zipfian SSB mix (gpubp) at a fixed budget");
  bench::PrintNote("rows=" + std::to_string(data.lineorder.size()) +
                   " batch=" + std::to_string(batch_size) + " budget=" +
                   std::to_string(budget) + "B (" +
                   std::to_string(budget_frac) + " of working set " +
                   std::to_string(working_set) + "B)");

  std::vector<Row> rows_out;
  bool bar_met = true;
  for (double alpha : alphas) {
    // The query mix for this skew, and its host-reference oracle.
    const std::vector<ssb::QueryId> all = ssb::AllQueries();
    const std::vector<uint32_t> ranks =
        GenZipf(batch_size, all.size(), alpha, seed);
    std::vector<ssb::QueryId> batch(batch_size);
    uint64_t column_fetches = 0;  // materializations a skip can avoid
    for (size_t i = 0; i < batch_size; ++i) {
      batch[i] = all[ranks[i]];
      column_fetches += ssb::QueryColumns(batch[i]).size();
    }
    std::vector<ssb::QueryResult> expected;
    {
      ssb::QueryRunner reference(data);
      for (ssb::QueryId q : batch) {
        expected.push_back(reference.RunHostReference(q));
      }
    }

    std::printf("\nalpha=%.1f\n", alpha);
    std::printf("%-6s %5s %9s %9s %9s %8s %6s %9s %7s %7s %7s\n", "policy",
                "depth", "p50_ms", "p95_ms", "p99_ms", "hit_rate", "skips",
                "skiprate", "issued", "useful", "wasted");

    double best_off_p95 = -1.0, best_off_p99 = -1.0;
    double best_on_p95 = -1.0, best_on_p99 = -1.0;
    for (serve::EvictionPolicy policy : policies) {
      for (int depth : depths) {
        serve::ServeOptions options;
        options.num_streams = streams;
        options.use_cache = true;
        // A demand miss re-uploads the column's compressed stream before
        // decompressing it, on the query's own stream — the coprocessor
        // reality the decompress skip avoids. The speculative decodes read
        // device-resident data and pay no transfer.
        options.model_transfers = true;
        options.policy = policy;
        options.cache_budget_bytes = budget;
        options.prefetch.enabled = depth > 0;
        options.prefetch.initial_depth = depth > 0 ? depth / 2 : 0;
        options.prefetch.max_depth = depth;
        // At low skew a heavy query recurs every 5-15 rounds; its columns'
        // patterns must survive that gap to be topped up before the rescan.
        options.prefetch.idle_ttl = idle_ttl;
        sim::Device dev;
        serve::Server server(dev, data, lineorder, options);
        const serve::ServeReport report = server.Serve(batch);
        if (!SameResults(report, expected)) {
          std::fprintf(stderr,
                       "results diverge from host reference (alpha=%.1f "
                       "policy=%s depth=%d)\n",
                       alpha, serve::EvictionPolicyName(policy), depth);
          return 1;
        }

        Row row;
        row.alpha = alpha;
        row.policy = policy;
        row.depth = depth;
        row.p50_ms = report.p50_latency_ms;
        row.p95_ms = report.p95_latency_ms;
        row.p99_ms = report.p99_latency_ms;
        row.makespan_ms = report.makespan_ms;
        row.hit_rate = report.cache.hit_rate();
        row.decompress_skips = report.decompress_skips;
        row.skip_rate = column_fetches == 0
                            ? 0.0
                            : static_cast<double>(report.decompress_skips) /
                                  static_cast<double>(column_fetches);
        row.issued = report.cache.prefetch_issued;
        row.useful = report.cache.prefetch_useful;
        row.wasted = report.cache.prefetch_wasted;
        row.late = report.cache.prefetch_late;
        row.wasted_rate = report.cache.prefetch_wasted_rate();
        row.bytes_read = report.global_bytes_read;
        rows_out.push_back(row);

        std::printf("%-6s %5d %9.4f %9.4f %9.4f %8.3f %6" PRIu64
                    " %8.1f%% %7" PRIu64 " %7" PRIu64 " %7" PRIu64 "\n",
                    serve::EvictionPolicyName(policy), depth, row.p50_ms,
                    row.p95_ms, row.p99_ms, row.hit_rate,
                    row.decompress_skips, 100.0 * row.skip_rate, row.issued,
                    row.useful, row.wasted);

        if (depth == 0) {
          if (best_off_p95 < 0.0 || row.p95_ms < best_off_p95) {
            best_off_p95 = row.p95_ms;
          }
          if (best_off_p99 < 0.0 || row.p99_ms < best_off_p99) {
            best_off_p99 = row.p99_ms;
          }
        } else {
          if (best_on_p95 < 0.0 || row.p95_ms < best_on_p95) {
            best_on_p95 = row.p95_ms;
          }
          if (best_on_p99 < 0.0 || row.p99_ms < best_on_p99) {
            best_on_p99 = row.p99_ms;
          }
        }
      }
    }
    std::printf("best no-prefetch p95/p99 = %.4f/%.4f, best prefetch = "
                "%.4f/%.4f\n",
                best_off_p95, best_off_p99, best_on_p95, best_on_p99);
    if (!(best_on_p95 < best_off_p95 && best_on_p99 < best_off_p99)) {
      std::fprintf(stderr,
                   "acceptance bar FAILED at alpha=%.1f: best prefetch "
                   "p95/p99 %.4f/%.4f not strictly better than no-prefetch "
                   "%.4f/%.4f\n",
                   alpha, best_on_p95, best_on_p99, best_off_p95,
                   best_off_p99);
      bar_met = false;
    }
  }
  bench::PrintNote(
      "skiprate = decompress pipelines skipped / column materializations; "
      "depth 0 = prefetch off. Bar: per alpha, best prefetch row must beat "
      "best no-prefetch row on p95 AND p99.");

  if (common.emit_json) {
    std::string out;
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"schema\":\"tilecomp.bench_prefetch.v1\","
                  "\"system\":\"gpubp\",\"rows\":%u,\"batch\":%zu,"
                  "\"budget_frac\":%.3f,\"budget_bytes\":%" PRIu64
                  ",\"working_set_bytes\":%" PRIu64
                  ",\"bar_met\":%s,\"results\":[",
                  data.lineorder.size(), batch_size, budget_frac, budget,
                  working_set, bar_met ? "true" : "false");
    out.append(head);
    for (size_t i = 0; i < rows_out.size(); ++i) {
      const Row& r = rows_out[i];
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "%s\n  {\"alpha\":%.2f,\"policy\":\"%s\",\"depth\":%d,"
          "\"p50_ms\":%.6f,\"p95_ms\":%.6f,\"p99_ms\":%.6f,"
          "\"makespan_ms\":%.6f,\"hit_rate\":%.4f,"
          "\"decompress_skips\":%" PRIu64 ",\"skip_rate\":%.4f,"
          "\"prefetch_issued\":%" PRIu64 ",\"prefetch_useful\":%" PRIu64
          ",\"prefetch_wasted\":%" PRIu64 ",\"prefetch_late\":%" PRIu64
          ",\"wasted_rate\":%.4f,\"bytes_read\":%" PRIu64 "}",
          i == 0 ? "" : ",", r.alpha, serve::EvictionPolicyName(r.policy),
          r.depth, r.p50_ms, r.p95_ms, r.p99_ms, r.makespan_ms, r.hit_rate,
          r.decompress_skips, r.skip_rate, r.issued, r.useful, r.wasted,
          r.late, r.wasted_rate, r.bytes_read);
      out.append(buf);
    }
    out.append("\n]}\n");
    if (!bench::ExportJson(common, out)) return 1;
  }

  if (!bar_met) return 1;
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
