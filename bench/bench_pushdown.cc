// Compressed-domain predicate pushdown vs decode-everything.
//
// Part A (correctness at system scale): every SSB query runs twice through
// the Crystal tile pipeline — pushdown on (predicates answered per tile from
// zone maps and the encoding's structure, surviving tiles late-materialized)
// and pushdown off (every predicate column decoded, rows tested one at a
// time) — and both results are checked bit-exact against the host reference
// executor. SSB's fact predicates are uniform, so Part A proves exactness
// and reports what the counters say, not a pruning win.
//
// Part B (the pruning win): a clustered column (sorted values, the shape
// zone maps exist for) swept over predicate selectivity 0 -> 100%. At each
// point the pushdown scan is compared with the decode-everything baseline on
// decoded tiles and modeled global-memory bytes, with the selected-row count
// and sum checked bit-exact against a host evaluation. The run fails (exit
// 1) if 1% selectivity does not cut decoded tiles by at least 30% and read
// fewer bytes — the PR's acceptance bar.
//
// --json [path] emits machine-readable BENCH_pushdown.json (schema
// tilecomp.bench_pushdown.v1) for cross-PR tracking.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "codec/column.h"
#include "codec/column_id.h"
#include "common/random.h"
#include "crystal/load_column.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

namespace tilecomp {
namespace {

struct SsbRow {
  const char* query = "";
  uint64_t on_bytes = 0;
  uint64_t off_bytes = 0;
  sim::PushdownCounters pushdown;
};

struct SweepRow {
  const char* scheme = "";
  double selectivity = 0.0;
  uint64_t rows_selected = 0;
  uint64_t tiles_decoded = 0;
  uint64_t base_tiles_decoded = 0;
  uint64_t bytes_read = 0;
  uint64_t base_bytes_read = 0;
  sim::PushdownCounters pushdown;
};

// One pass over `col` selecting rows in [lo, hi]. With pushdown the mask
// comes from EvaluateOnTile and only surviving tiles are materialized; the
// baseline decodes every tile and tests row-at-a-time. Returns selected-row
// count and sum through out-params (checked against the host below).
void Scan(sim::Device& dev, const codec::CompressedColumn& col, uint32_t lo,
          uint32_t hi, bool pushdown, uint64_t* out_count, uint64_t* out_sum) {
  crystal::DirectTileLoader loader;
  const codec::ColumnId col_id(0);
  const crystal::TilePredicate pred = crystal::TilePredicate::Range(lo, hi);
  const int64_t num_tiles = crystal::NumTiles(col.size());

  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  sim::LaunchConfig lc;
  lc.grid_dim = num_tiles;
  lc.block_threads = 128;
  lc.smem_bytes_per_block = crystal::ColumnSmemBytes(col);
  dev.Launch(pushdown ? "pushdown.scan" : "baseline.scan", lc,
             [&](sim::BlockContext& ctx) {
               const int64_t tile = ctx.block_id();
               uint32_t vals[crystal::kTileSize];
               uint32_t n = 0;
               crystal::TileMask mask;
               if (pushdown) {
                 mask = crystal::TileMask::AllSet();
                 n = loader.EvaluateOnTile(ctx, col, col_id, tile, pred, &mask);
                 if (!mask.Any()) return;  // late materialization
                 loader.LoadTile(ctx, col, col_id, tile, vals);
               } else {
                 n = loader.LoadTile(ctx, col, col_id, tile, vals);
                 mask = crystal::TileMask::AllSet(n);
                 ctx.Compute(static_cast<uint64_t>(n) * 2);
                 for (uint32_t i = 0; i < n; ++i) {
                   if (!pred.Matches(vals[i])) mask.Clear(i);
                 }
               }
               uint64_t local_sum = 0;
               uint32_t local_count = 0;
               for (uint32_t i = 0; i < n; ++i) {
                 if (!mask.Test(i)) continue;
                 local_sum += vals[i];
                 ++local_count;
               }
               count.fetch_add(local_count, std::memory_order_relaxed);
               sum.fetch_add(local_sum, std::memory_order_relaxed);
             });
  *out_count = count.load();
  *out_sum = sum.load();
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const bench::CommonOptions common =
      bench::ParseCommonOptions(flags, "BENCH_pushdown.json");
  const uint32_t rows = static_cast<uint32_t>(flags.GetInt("rows", 60000));
  const size_t n = static_cast<size_t>(flags.GetInt("n", 1 << 20));

  // -------------------------------------------------------------------
  // Part A: the 13 SSB queries, pushdown on vs off, bit-exact.
  // -------------------------------------------------------------------
  const ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  const ssb::EncodedLineorder lineorder =
      ssb::EncodeLineorder(data, codec::System::kGpuStar);
  const ssb::QueryRunner runner(data);

  bench::PrintTitle("Pushdown part A: SSB queries, on vs off, bit-exact");
  std::printf("%-8s %12s %12s %8s %8s %8s %8s\n", "query", "bytes_on",
              "bytes_off", "pruned", "decoded", "blk_sc", "run_sc");

  std::vector<SsbRow> ssb_rows;
  for (ssb::QueryId q : ssb::AllQueries()) {
    const ssb::QueryResult expected = runner.RunHostReference(q);
    sim::Device dev_on;
    const ssb::QueryResult on =
        runner.Run(dev_on, lineorder, q, nullptr, /*pushdown=*/true);
    sim::Device dev_off;
    const ssb::QueryResult off =
        runner.Run(dev_off, lineorder, q, nullptr, /*pushdown=*/false);
    if (on.groups != expected.groups || off.groups != expected.groups) {
      std::fprintf(stderr, "%s diverges from the host reference (%s)\n",
                   ssb::QueryName(q),
                   on.groups != expected.groups ? "pushdown" : "baseline");
      return 1;
    }
    SsbRow row;
    row.query = ssb::QueryName(q);
    row.on_bytes = dev_on.total_stats().global_bytes_read;
    row.off_bytes = dev_off.total_stats().global_bytes_read;
    row.pushdown = dev_on.total_stats().pushdown;
    ssb_rows.push_back(row);
    std::printf("%-8s %12" PRIu64 " %12" PRIu64 " %8" PRIu64 " %8" PRIu64
                " %8" PRIu64 " %8" PRIu64 "\n",
                row.query, row.on_bytes, row.off_bytes,
                row.pushdown.tiles_pruned, row.pushdown.tiles_decoded,
                row.pushdown.blocks_short_circuited,
                row.pushdown.runs_short_circuited);
  }
  bench::PrintNote(
      "all 13 queries bit-exact with pushdown on AND off; SSB predicates are "
      "uniform, so tile pruning needs clustered data (part B)");

  // -------------------------------------------------------------------
  // Part B: clustered column, selectivity sweep.
  // -------------------------------------------------------------------
  const std::vector<uint32_t> values = GenSortedGaps(n, 20, common.seed);

  bench::PrintTitle("Pushdown part B: clustered column selectivity sweep");
  std::printf("%-9s %6s %10s %10s %10s %12s %12s %8s\n", "scheme", "sel",
              "rows_sel", "tiles_dec", "base_dec", "bytes_read", "base_bytes",
              "pruned");

  const codec::Scheme schemes[] = {codec::Scheme::kNone, codec::Scheme::kGpuFor,
                                   codec::Scheme::kGpuDFor,
                                   codec::Scheme::kGpuRFor,
                                   codec::Scheme::kGpuBp};
  const double selectivities[] = {0.0, 0.01, 0.1, 0.5, 1.0};
  std::vector<SweepRow> sweep;
  bool bar_met = true;
  for (codec::Scheme scheme : schemes) {
    const codec::CompressedColumn col =
        codec::CompressedColumn::Encode(scheme, values);
    for (double sel : selectivities) {
      // A contiguous percentile window: [30%, 30% + sel) of the sorted
      // domain. sel = 0 asks for a value past the maximum — nothing
      // matches, every tile zone-prunes.
      uint32_t lo, hi;
      if (sel == 0.0) {
        lo = hi = values.back() + 1;
      } else {
        const size_t first = static_cast<size_t>(0.3 * (n - 1));
        const size_t last = std::min(
            n - 1, first + static_cast<size_t>(sel * (n - 1)));
        lo = values[first];
        hi = values[last];
      }

      // Host reference.
      uint64_t want_count = 0, want_sum = 0;
      for (uint32_t v : values) {
        if (v >= lo && v <= hi) {
          ++want_count;
          want_sum += v;
        }
      }

      uint64_t on_count = 0, on_sum = 0, off_count = 0, off_sum = 0;
      sim::Device dev_on;
      Scan(dev_on, col, lo, hi, /*pushdown=*/true, &on_count, &on_sum);
      sim::Device dev_off;
      Scan(dev_off, col, lo, hi, /*pushdown=*/false, &off_count, &off_sum);
      if (on_count != want_count || on_sum != want_sum ||
          off_count != want_count || off_sum != want_sum) {
        std::fprintf(stderr,
                     "%s sel=%.2f diverges from host (want %" PRIu64
                     " rows, pushdown %" PRIu64 ", baseline %" PRIu64 ")\n",
                     codec::SchemeName(scheme), sel, want_count, on_count,
                     off_count);
        return 1;
      }

      SweepRow row;
      row.scheme = codec::SchemeName(scheme);
      row.selectivity = sel;
      row.rows_selected = want_count;
      row.pushdown = dev_on.total_stats().pushdown;
      row.tiles_decoded = row.pushdown.tiles_decoded;
      row.base_tiles_decoded = dev_off.total_stats().pushdown.tiles_decoded;
      row.bytes_read = dev_on.total_stats().global_bytes_read;
      row.base_bytes_read = dev_off.total_stats().global_bytes_read;
      sweep.push_back(row);
      std::printf("%-9s %6.2f %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                  " %12" PRIu64 " %12" PRIu64 " %8" PRIu64 "\n",
                  row.scheme, sel, row.rows_selected, row.tiles_decoded,
                  row.base_tiles_decoded, row.bytes_read, row.base_bytes_read,
                  row.pushdown.tiles_pruned);

      // Acceptance bar: at 1% selectivity pushdown must decode >= 30% fewer
      // tiles and read fewer global bytes than decode-everything.
      if (sel == 0.01) {
        const bool tiles_ok =
            row.tiles_decoded * 10 <= row.base_tiles_decoded * 7;
        const bool bytes_ok = row.bytes_read < row.base_bytes_read;
        if (!tiles_ok || !bytes_ok) {
          std::fprintf(stderr,
                       "%s at 1%% selectivity misses the bar: %" PRIu64
                       "/%" PRIu64 " tiles, %" PRIu64 "/%" PRIu64 " bytes\n",
                       row.scheme, row.tiles_decoded, row.base_tiles_decoded,
                       row.bytes_read, row.base_bytes_read);
          bar_met = false;
        }
      }
    }
  }
  if (!bar_met) return 1;
  bench::PrintNote(
      "at 1% selectivity every scheme decodes >= 30% fewer tiles and reads "
      "fewer global bytes than decode-everything, bit-exact");

  if (common.emit_json) {
    std::string out;
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"schema\":\"tilecomp.bench_pushdown.v1\","
                  "\"rows\":%u,\"n\":%zu,\"seed\":%" PRIu64 ",\"ssb\":[",
                  data.lineorder.size(), n, common.seed);
    out.append(head);
    for (size_t i = 0; i < ssb_rows.size(); ++i) {
      const SsbRow& r = ssb_rows[i];
      char buf[320];
      std::snprintf(
          buf, sizeof(buf),
          "%s\n  {\"query\":\"%s\",\"bytes_on\":%" PRIu64
          ",\"bytes_off\":%" PRIu64 ",\"tiles_pruned\":%" PRIu64
          ",\"tiles_decoded\":%" PRIu64 ",\"blocks_short_circuited\":%" PRIu64
          ",\"runs_short_circuited\":%" PRIu64 "}",
          i == 0 ? "" : ",", r.query, r.on_bytes, r.off_bytes,
          r.pushdown.tiles_pruned, r.pushdown.tiles_decoded,
          r.pushdown.blocks_short_circuited, r.pushdown.runs_short_circuited);
      out.append(buf);
    }
    out.append("\n],\"sweep\":[");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepRow& r = sweep[i];
      char buf[400];
      std::snprintf(
          buf, sizeof(buf),
          "%s\n  {\"scheme\":\"%s\",\"selectivity\":%.4f,"
          "\"rows_selected\":%" PRIu64 ",\"tiles_decoded\":%" PRIu64
          ",\"baseline_tiles_decoded\":%" PRIu64 ",\"bytes_read\":%" PRIu64
          ",\"baseline_bytes_read\":%" PRIu64 ",\"tiles_pruned\":%" PRIu64
          ",\"blocks_short_circuited\":%" PRIu64
          ",\"runs_short_circuited\":%" PRIu64 "}",
          i == 0 ? "" : ",", r.scheme, r.selectivity, r.rows_selected,
          r.tiles_decoded, r.base_tiles_decoded, r.bytes_read,
          r.base_bytes_read, r.pushdown.tiles_pruned,
          r.pushdown.blocks_short_circuited, r.pushdown.runs_short_circuited);
      out.append(buf);
    }
    out.append("\n]}\n");
    if (!bench::ExportJson(common, out)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
