// Section 8, "Random Access Performance": a predicate bitvector selects a
// random subset of 250M entries; selectivity sweeps 0 -> 1.
//
// Compressed tiles lack random access: a tile with >= 1 selected entry must
// be fully loaded and decoded. Uncompressed columns are read at 128-byte
// cache-line granularity. Paper: GPU-FOR/GPU-DFOR plateau at ~2.1 ms once
// sigma > 1/TILE_SIZE; uncompressed plateaus at ~2.5 ms once sigma > 1/32;
// compressed is never materially worse.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kernels/decompress.h"
#include "kernels/load_tile.h"

namespace tilecomp {
namespace {

constexpr size_t kPaperN = 250'000'000;
constexpr uint32_t kTile = 512;
constexpr uint32_t kLineValues = 32;  // 128B cache line / 4B

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 16 << 20));
  auto values = GenUniformBits(n, 16, 5);
  auto enc = format::GpuForEncode(values.data(), n);

  bench::PrintTitle(
      "Section 8: random access under a selective predicate (proj. ms)");
  std::printf("%-12s %14s %14s\n", "selectivity", "uncompressed", "GPU-FOR");

  Rng rng(7);
  for (double sigma : {1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.3, 0.5, 1.0}) {
    // Build the predicate bitvector.
    std::vector<uint8_t> selected(n, 0);
    for (size_t i = 0; i < n; ++i) selected[i] = rng.NextDouble() < sigma;

    // Uncompressed: gather at 128B line granularity.
    sim::Device dev_u;
    {
      sim::LaunchConfig lc;
      lc.grid_dim = CeilDiv<int64_t>(n, kTile);
      lc.block_threads = 128;
      lc.regs_per_thread = 24;
      dev_u.Launch(lc, [&](sim::BlockContext& ctx) {
        const size_t begin = static_cast<size_t>(ctx.block_id()) * kTile;
        const size_t end = std::min(begin + kTile, n);
        // Bitvector read (1 bit per entry, coalesced).
        ctx.CoalescedRead((end - begin) / 8 + 1, true);
        uint32_t lines = 0;
        for (size_t line = begin; line < end; line += kLineValues) {
          bool any = false;
          for (size_t i = line; i < std::min(line + kLineValues, end); ++i) {
            any |= selected[i] != 0;
          }
          lines += any;
        }
        ctx.ScatteredRead(lines, 128);
        ctx.Compute(end - begin);
      });
    }

    // GPU-FOR: decode any tile with >= 1 selected entry; skip others.
    sim::Device dev_c;
    {
      kernels::UnpackConfig cfg;
      sim::LaunchConfig lc = kernels::GpuForLaunchConfig(enc, cfg);
      std::vector<uint32_t> tile(kTile);
      dev_c.Launch(lc, [&](sim::BlockContext& ctx) {
        const size_t begin = static_cast<size_t>(ctx.block_id()) * kTile;
        const size_t end = std::min(begin + kTile, n);
        ctx.CoalescedRead((end - begin) / 8 + 1, true);  // bitvector
        bool any = false;
        for (size_t i = begin; i < end; ++i) any |= selected[i] != 0;
        if (!any) return;
        uint32_t local[kTile];
        kernels::LoadBitPack(ctx, enc, ctx.block_id(), cfg, local);
      });
    }

    std::printf("%-12g %14.2f %14.2f\n", sigma,
                bench::Project(dev_u.elapsed_ms(), n, kPaperN),
                bench::Project(dev_c.elapsed_ms(), n, kPaperN));
  }
  bench::PrintNote(
      "paper: uncompressed plateaus ~2.5ms beyond sigma=1/32; GPU-FOR "
      "plateaus ~2.1ms beyond sigma=1/512 — random access does not hurt "
      "the compressed format");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
