// Static vs persistent (work-stealing) tile scheduling across workloads
// with different per-tile cost variance:
//   uniform-bitpack — GPU-FOR over uniform 16-bit data: every tile costs the
//       same, so static scheduling is already balanced and persistent
//       scheduling can only add atomic-counter overhead.
//   skewed-rle      — GPU-RFOR over block-skewed runs (every 8th 512-value
//       block is incompressible, the rest are one run): static waves stall
//       on the expensive tiles while persistent blocks steal past them.
//   cascaded-rle    — the same data through the 8-pass RLE+FOR+BitPack
//       cascade, showing the knob threads through multi-kernel pipelines.
//
// Prints per-workload modeled time (projected to the paper's 500M values),
// the wave-imbalance tail, the imbalance factor and the atomic-op count;
// --json <path> additionally emits machine-readable BENCH_scheduler.json
// for cross-PR tracking.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kernels/dispatch.h"
#include "telemetry/export.h"

namespace tilecomp {
namespace {

constexpr size_t kPaperN = 500'000'000;

struct Row {
  std::string workload;
  std::string scheme;
  std::string pipeline;
  sim::Scheduling scheduling = sim::Scheduling::kStatic;
  double time_ms = 0.0;       // projected to kPaperN
  double tail_ms = 0.0;       // projected, summed over launches
  double atomic_ms = 0.0;     // projected, summed over launches
  double imbalance = 1.0;     // worst launch of the run
  uint64_t atomic_ops = 0;
  int64_t slots = 0;          // of the worst-imbalance launch
  int64_t waves = 0;
};

Row Measure(const std::string& workload, const std::string& scheme,
            kernels::Pipeline pipeline, const codec::CompressedColumn& col,
            sim::Scheduling scheduling, size_t n,
            const std::vector<uint32_t>& expect) {
  sim::Device dev;
  kernels::DecompressRun run =
      kernels::Decompress(dev, col, pipeline, scheduling);
  TILECOMP_CHECK_MSG(run.output == expect,
                     "decoded output mismatch — scheduler bug");
  Row row;
  row.workload = workload;
  row.scheme = scheme;
  row.pipeline =
      pipeline == kernels::Pipeline::kFused ? "fused" : "cascaded";
  row.scheduling = scheduling;
  row.time_ms = bench::Project(run.time_ms, n, kPaperN);
  for (const sim::KernelResult& launch : run.launches) {
    row.tail_ms += bench::Project(launch.breakdown.wave.tail_ms, n, kPaperN);
    row.atomic_ms += bench::Project(launch.breakdown.atomic_ms, n, kPaperN);
    if (launch.breakdown.wave.imbalance >= row.imbalance) {
      row.imbalance = launch.breakdown.wave.imbalance;
      row.slots = launch.breakdown.wave.slots;
      row.waves = launch.breakdown.wave.waves;
    }
  }
  row.atomic_ops = run.stats.atomic_ops;
  return row;
}

void AppendJsonRow(std::string* out, const Row& r, bool first) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s\n  {\"workload\":\"%s\",\"scheme\":\"%s\",\"pipeline\":\"%s\","
      "\"scheduling\":\"%s\",\"time_ms\":%.6f,\"tail_ms\":%.6f,"
      "\"atomic_ms\":%.6f,\"imbalance\":%.4f,\"atomic_ops\":%" PRIu64
      ",\"slots\":%" PRId64 ",\"waves\":%" PRId64 "}",
      first ? "" : ",", r.workload.c_str(), r.scheme.c_str(),
      r.pipeline.c_str(), sim::SchedulingName(r.scheduling), r.time_ms,
      r.tail_ms, r.atomic_ms, r.imbalance, r.atomic_ops, r.slots, r.waves);
  out->append(buf);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 8 << 20));
  const uint32_t period = static_cast<uint32_t>(flags.GetInt("period", 8));

  const std::vector<uint32_t> uniform = GenUniformBits(n, 16, /*seed=*/1);
  const std::vector<uint32_t> skewed =
      GenSkewedRuns(n, /*block_size=*/512, period, /*value_bits=*/16,
                    /*seed=*/2);
  const auto col_uniform =
      codec::CompressedColumn::Encode(codec::Scheme::kGpuFor, uniform);
  const auto col_skewed =
      codec::CompressedColumn::Encode(codec::Scheme::kGpuRFor, skewed);

  struct Case {
    const char* workload;
    const char* scheme;
    kernels::Pipeline pipeline;
    const codec::CompressedColumn* col;
    const std::vector<uint32_t>* expect;
  };
  const Case cases[] = {
      {"uniform-bitpack", "GPU-FOR", kernels::Pipeline::kFused, &col_uniform,
       &uniform},
      {"skewed-rle", "GPU-RFOR", kernels::Pipeline::kFused, &col_skewed,
       &skewed},
      {"cascaded-rle", "RLE+FOR+BP", kernels::Pipeline::kCascaded,
       &col_skewed, &skewed},
  };

  bench::PrintTitle(
      "Scheduler: static vs persistent tile scheduling (proj. ms at 500M)");
  bench::PrintNote(
      "static = one block per tile; persistent = machine-filling grid "
      "popping tiles off a device atomic counter");
  std::printf("%-16s %-11s %-10s %9s %9s %9s %6s %10s\n", "workload",
              "scheme", "scheduling", "time_ms", "tail_ms", "atomic_ms",
              "imbal", "atomic_ops");

  std::vector<Row> rows;
  for (const Case& c : cases) {
    for (sim::Scheduling scheduling :
         {sim::Scheduling::kStatic, sim::Scheduling::kPersistent}) {
      Row row = Measure(c.workload, c.scheme, c.pipeline, *c.col, scheduling,
                        n, *c.expect);
      std::printf("%-16s %-11s %-10s %9.3f %9.3f %9.3f %6.2f %10" PRIu64
                  "\n",
                  row.workload.c_str(), row.scheme.c_str(),
                  sim::SchedulingName(row.scheduling), row.time_ms,
                  row.tail_ms, row.atomic_ms, row.imbalance, row.atomic_ops);
      rows.push_back(row);
    }
    const Row& st = rows[rows.size() - 2];
    const Row& pe = rows[rows.size() - 1];
    std::printf("%-16s -> persistent/static = %.3fx\n", "", // crossover
                st.time_ms / pe.time_ms);
  }
  bench::PrintNote(
      "crossover: persistent wins on skewed tiles (steals past stragglers), "
      "ties on uniform tiles minus the atomic-counter overhead");

  const bench::CommonOptions common =
      bench::ParseCommonOptions(flags, "BENCH_scheduler.json");
  if (common.emit_json) {
    std::string out;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "{\"schema\":\"tilecomp.bench_scheduler.v1\",\"n\":%zu,"
                  "\"n_paper\":%zu,\"results\":[",
                  n, kPaperN);
    out.append(head);
    for (size_t i = 0; i < rows.size(); ++i) {
      AppendJsonRow(&out, rows[i], i == 0);
    }
    out.append("\n]}\n");
    if (!bench::ExportJson(common, out)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
