// Serving benchmark: a Zipfian query mix over the 13 SSB queries, served
// through the decompressed-tile cache at budgets swept from 0 to the full
// working set.
//
// The serving workload is where a tile cache earns its keep: the paper's
// decompress-then-query baselines (nvCOMP / Planner / GPU-BP) re-run the
// whole decompression pipeline for every query that touches a column, so a
// hot column's tiles are decoded over and over. Caching the decoded tiles
// skips those launches entirely once the column is resident — for cascaded
// formats that also skips re-reading every intermediate layer, which is why
// the traffic saving can exceed the encoded footprint itself.
//
// For each budget the same batch is replayed against a fresh server and
// compared with the cache-off baseline: hit rate, global-memory reads and
// the traffic saving, decompress launches skipped, p50/p95 latency and
// makespan. Every query result is validated bit-exactly against the host
// reference executor. --json <path> emits machine-readable
// BENCH_serve.json (schema tilecomp.bench_serve.v1) for cross-PR tracking.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "serve/server.h"
#include "ssb/generator.h"
#include "ssb/layout.h"
#include "ssb/queries.h"
#include "telemetry/export.h"

namespace tilecomp {
namespace {

codec::System ParseSystem(const std::string& name) {
  if (name == "nvcomp") return codec::System::kNvcomp;
  if (name == "planner") return codec::System::kPlanner;
  if (name == "gpubp") return codec::System::kGpuBp;
  if (name == "gpustar") return codec::System::kGpuStar;
  if (name == "none") return codec::System::kNone;
  std::fprintf(stderr,
               "unknown --system '%s' (want nvcomp|planner|gpubp|gpustar|"
               "none)\n",
               name.c_str());
  std::exit(1);
}

// Decoded bytes of every lineorder column touched by any of the 13 queries:
// the cache budget that makes the whole workload resident.
uint64_t FullWorkingSetBytes(const ssb::EncodedLineorder& lineorder) {
  bool used[ssb::kNumLoCols] = {};
  for (ssb::QueryId q : ssb::AllQueries()) {
    for (ssb::LoCol c : ssb::QueryColumns(q)) used[static_cast<int>(c)] = true;
  }
  uint64_t bytes = 0;
  for (int c = 0; c < ssb::kNumLoCols; ++c) {
    if (used[c]) {
      bytes += uint64_t{lineorder.cols[static_cast<size_t>(c)].size()} *
               sizeof(uint32_t);
    }
  }
  return bytes;
}

struct Row {
  uint64_t budget_bytes = 0;
  double budget_frac = 0.0;  // of the full working set
  double hit_rate = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t decompress_skips = 0;
  uint64_t bytes_read = 0;
  double read_saving = 0.0;  // vs the cache-off baseline
  uint64_t saved_bytes = 0;  // encoded bytes hits avoided re-reading
  uint64_t tiles_pruned = 0;  // tiles the pushdown masks kept out of decode
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double makespan_ms = 0.0;
};

bool SameResults(const serve::ServeReport& report,
                 const std::vector<ssb::QueryResult>& expected) {
  for (size_t i = 0; i < report.queries.size(); ++i) {
    if (report.queries[i].result.groups != expected[i].groups) return false;
  }
  return true;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t rows = static_cast<uint32_t>(flags.GetInt("rows", 60000));
  const size_t batch_size =
      static_cast<size_t>(flags.GetInt("queries", 48));
  const double alpha = flags.GetDouble("alpha", 1.2);
  const bench::CommonOptions common =
      bench::ParseCommonOptions(flags, "BENCH_serve.json");
  const uint64_t seed = common.seed;
  const int streams = static_cast<int>(flags.GetInt("streams", 4));
  // --pushdown 0 disables compressed-domain predicate evaluation on both the
  // kernel and the server side (ServeOptions::pushdown), for A/B comparisons.
  const bool pushdown = flags.GetInt("pushdown", 1) != 0;
  // --clustered 1 sorts lineorder by orderdate before encoding. dbgen's
  // insertion order gives every tile the full orderdate range, so zone maps
  // prune nothing (pushdown still wins inside bench_pushdown's clustered
  // sweep); the date-clustered layout is where serve-side pruning shows up.
  const bool clustered = flags.GetInt("clustered", 0) != 0;
  const std::string system_name = flags.GetString("system", "nvcomp");
  const codec::System system = ParseSystem(system_name);

  ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  if (clustered) ssb::ClusterByOrderdate(&data.lineorder);
  const ssb::EncodedLineorder lineorder = ssb::EncodeLineorder(data, system);
  const uint64_t working_set = FullWorkingSetBytes(lineorder);

  // Zipfian query mix: rank 0 (the hottest query) dominates at high alpha.
  const std::vector<ssb::QueryId> all = ssb::AllQueries();
  const std::vector<uint32_t> ranks =
      GenZipf(batch_size, all.size(), alpha, seed);
  std::vector<ssb::QueryId> batch(batch_size);
  for (size_t i = 0; i < batch_size; ++i) batch[i] = all[ranks[i]];

  bench::PrintTitle("Serving: Zipfian SSB mix through the tile cache (" +
                    std::string(codec::SystemName(system)) + ")");
  bench::PrintNote("rows=" + std::to_string(data.lineorder.size()) +
                   " batch=" + std::to_string(batch_size) + " alpha=" +
                   std::to_string(alpha) + " working_set=" +
                   std::to_string(working_set) + "B");

  // Cache-off baseline: what the system reads re-decompressing every query.
  std::vector<ssb::QueryResult> expected;
  {
    ssb::QueryRunner reference(data);
    for (ssb::QueryId q : batch) {
      expected.push_back(reference.RunHostReference(q));
    }
  }
  serve::ServeOptions off;
  off.num_streams = streams;
  off.use_cache = false;
  off.pushdown = pushdown;
  sim::Device dev_off;
  serve::Server server_off(dev_off, data, lineorder, off);
  const serve::ServeReport base = server_off.Serve(batch);
  if (!SameResults(base, expected)) {
    std::fprintf(stderr, "cache-off results diverge from host reference\n");
    return 1;
  }

  std::printf("%-10s %8s %8s %8s %6s %12s %8s %9s %9s %10s\n", "budget",
              "hit_rate", "hits", "misses", "skips", "bytes_read", "saving",
              "p50_ms", "p95_ms", "makespan");
  std::printf("%-10s %8s %8s %8s %6s %12" PRIu64 " %8s %9.4f %9.4f %10.4f\n",
              "off", "-", "-", "-", "-", base.global_bytes_read, "-",
              base.p50_latency_ms, base.p95_latency_ms, base.makespan_ms);

  std::vector<Row> rows_out;
  const double fractions[] = {0.0, 0.125, 0.25, 0.5, 0.75, 1.0};
  for (double frac : fractions) {
    serve::ServeOptions on;
    on.num_streams = streams;
    on.use_cache = true;
    on.pushdown = pushdown;
    on.cache_budget_bytes = static_cast<uint64_t>(
        frac * static_cast<double>(working_set));
    sim::Device dev;
    serve::Server server(dev, data, lineorder, on);
    const serve::ServeReport report = server.Serve(batch);
    if (!SameResults(report, expected)) {
      std::fprintf(stderr,
                   "cached results diverge from host reference at budget "
                   "%.3f\n",
                   frac);
      return 1;
    }

    Row row;
    row.budget_bytes = on.cache_budget_bytes;
    row.budget_frac = frac;
    row.hit_rate = report.cache.hit_rate();
    row.hits = report.cache.hits;
    row.misses = report.cache.misses;
    row.evictions = report.cache.evictions;
    row.decompress_skips = report.decompress_skips;
    row.bytes_read = report.global_bytes_read;
    row.read_saving =
        base.global_bytes_read == 0
            ? 0.0
            : 1.0 - static_cast<double>(report.global_bytes_read) /
                        static_cast<double>(base.global_bytes_read);
    row.saved_bytes = report.cache.saved_bytes;
    row.tiles_pruned = report.pushdown.tiles_pruned;
    row.p50_ms = report.p50_latency_ms;
    row.p95_ms = report.p95_latency_ms;
    row.makespan_ms = report.makespan_ms;
    rows_out.push_back(row);

    std::printf("%-10.3f %8.3f %8" PRIu64 " %8" PRIu64 " %6" PRIu64
                " %12" PRIu64 " %7.1f%% %9.4f %9.4f %10.4f\n",
                frac, row.hit_rate, row.hits, row.misses,
                row.decompress_skips, row.bytes_read, 100.0 * row.read_saving,
                row.p50_ms, row.p95_ms, row.makespan_ms);
  }
  bench::PrintNote(
      "saving = global reads avoided vs cache-off; at full budget the "
      "decompress pipeline (cascade intermediates included) runs once per "
      "column instead of once per query");

  // Fixed-budget pushdown A/B: a pruned tile needs no residency for a
  // decompress skip and never enters the cache, so at the same budget the
  // pushdown server skips more decompressions — provided the layout lets
  // the zone maps prune (clustered). On the uniform default layout nothing
  // prunes and the two columns must match exactly.
  const double ab_frac = 0.5;
  auto serve_at = [&](bool pd) {
    serve::ServeOptions o;
    o.num_streams = streams;
    o.use_cache = true;
    o.pushdown = pd;
    o.cache_budget_bytes =
        static_cast<uint64_t>(ab_frac * static_cast<double>(working_set));
    sim::Device d;
    serve::Server s(d, data, lineorder, o);
    return s.Serve(batch);
  };
  const serve::ServeReport ab_on = serve_at(true);
  const serve::ServeReport ab_off = serve_at(false);
  if (!SameResults(ab_on, expected) || !SameResults(ab_off, expected)) {
    std::fprintf(stderr, "pushdown A/B results diverge from host reference\n");
    return 1;
  }
  std::printf("\npushdown A/B at budget %.2f (%s layout):\n", ab_frac,
              clustered ? "date-clustered" : "uniform");
  std::printf("  %-12s %6s %12s %12s %9s\n", "", "skips", "bytes_read",
              "tiles_pruned", "p95_ms");
  std::printf("  %-12s %6" PRIu64 " %12" PRIu64 " %12" PRIu64 " %9.4f\n",
              "pushdown", ab_on.decompress_skips, ab_on.global_bytes_read,
              ab_on.pushdown.tiles_pruned, ab_on.p95_latency_ms);
  std::printf("  %-12s %6" PRIu64 " %12" PRIu64 " %12" PRIu64 " %9.4f\n",
              "decode-all", ab_off.decompress_skips, ab_off.global_bytes_read,
              ab_off.pushdown.tiles_pruned, ab_off.p95_latency_ms);
  if (clustered) {
    if (ab_on.pushdown.tiles_pruned == 0 ||
        ab_on.decompress_skips <= ab_off.decompress_skips ||
        ab_on.global_bytes_read >= ab_off.global_bytes_read) {
      std::fprintf(stderr,
                   "clustered layout: pushdown must prune tiles, skip more "
                   "decompressions, and read fewer bytes than decode-all\n");
      return 1;
    }
  }

  if (common.emit_json) {
    std::string out;
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"schema\":\"tilecomp.bench_serve.v1\","
                  "\"system\":\"%s\",\"rows\":%u,\"batch\":%zu,"
                  "\"alpha\":%.3f,\"pushdown\":%s,\"clustered\":%s,"
                  "\"working_set_bytes\":%" PRIu64
                  ",\"baseline_bytes_read\":%" PRIu64 ",\"results\":[",
                  codec::SystemName(system), data.lineorder.size(), batch_size,
                  alpha, pushdown ? "true" : "false",
                  clustered ? "true" : "false", working_set,
                  base.global_bytes_read);
    out.append(head);
    for (size_t i = 0; i < rows_out.size(); ++i) {
      const Row& r = rows_out[i];
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "%s\n  {\"budget_frac\":%.4f,\"budget_bytes\":%" PRIu64
          ",\"hit_rate\":%.4f,\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
          ",\"evictions\":%" PRIu64 ",\"decompress_skips\":%" PRIu64
          ",\"bytes_read\":%" PRIu64 ",\"read_saving\":%.4f,"
          "\"saved_bytes\":%" PRIu64 ",\"tiles_pruned\":%" PRIu64
          ",\"p50_ms\":%.6f,\"p95_ms\":%.6f,"
          "\"makespan_ms\":%.6f}",
          i == 0 ? "" : ",", r.budget_frac, r.budget_bytes, r.hit_rate,
          r.hits, r.misses, r.evictions, r.decompress_skips, r.bytes_read,
          r.read_saving, r.saved_bytes, r.tiles_pruned, r.p50_ms, r.p95_ms,
          r.makespan_ms);
      out.append(buf);
    }
    out.append("\n],");
    char ab[384];
    std::snprintf(ab, sizeof(ab),
                  "\"ab\":{\"budget_frac\":%.2f,\"skips_pushdown\":%" PRIu64
                  ",\"skips_baseline\":%" PRIu64
                  ",\"bytes_pushdown\":%" PRIu64 ",\"bytes_baseline\":%" PRIu64
                  ",\"tiles_pruned\":%" PRIu64
                  ",\"p95_pushdown\":%.6f,\"p95_baseline\":%.6f}}\n",
                  ab_frac, ab_on.decompress_skips, ab_off.decompress_skips,
                  ab_on.global_bytes_read, ab_off.global_bytes_read,
                  ab_on.pushdown.tiles_pruned, ab_on.p95_latency_ms,
                  ab_off.p95_latency_ms);
    out.append(ab);
    if (!bench::ExportJson(common, out)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
