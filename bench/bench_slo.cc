// SLO capacity benchmark: sweep offered load through the admission-controlled
// serving loop (serve::Server::ServeLoad) to find the maximum sustained
// throughput that still meets every priority class's p99 end-to-end SLO,
// under 0% and 1% injected fault rates.
//
// Calibration first runs the same Zipfian mix as a fixed batch (the
// bench_serve configuration at the same budget) to get the fixed-batch
// throughput and p99 service time; the per-class SLO targets are multiples
// of that p99 (interactive 4x, standard 6x, batch 12x — end-to-end, so
// admission-queue wait counts against them). The open-loop sweep offers
// Poisson and bursty (MMPP-2) arrivals at fractions of the fixed-batch
// rate; the closed-loop sweep scales concurrent users. Each point reports
// goodput (ok queries/sec over the makespan), the service vs end-to-end
// percentile split, shed/failed/deadline counters, and per-class SLO
// verdicts. The headline "sustained" number is the best goodput among
// points meeting every class SLO.
//
// Three properties are enforced (exit 1 on violation), making this bench a
// replayability gate as much as a capacity probe:
//   * bit-exactness: every ok query's groups equal the host reference;
//   * determinism: re-running a sweep point through a fresh device/server
//     reproduces the full report byte-identically;
//   * shed invariance: replaying a shedding point's schedule with its shed
//     requests removed reproduces every admitted query's timing, status,
//     result, and the cache/fault counters exactly — shed requests provably
//     never touched the device, the cache, or the fault-plan sequence.
//
// --json [path] emits machine-readable BENCH_slo.json (schema
// tilecomp.bench_slo.v1). --trace/--chrome re-run one loaded point with a
// tracer attached and export schema-v9 query spans (arrival/admit/start/
// finish), which Chrome renders as per-class queue+service lanes.
#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "codec/systems.h"
#include "common/random.h"
#include "fault/fault.h"
#include "load/load_gen.h"
#include "serve/server.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "telemetry/export.h"

namespace tilecomp {
namespace {

codec::System ParseSystem(const std::string& name) {
  if (name == "nvcomp") return codec::System::kNvcomp;
  if (name == "planner") return codec::System::kPlanner;
  if (name == "gpubp") return codec::System::kGpuBp;
  if (name == "gpustar") return codec::System::kGpuStar;
  if (name == "none") return codec::System::kNone;
  std::fprintf(stderr,
               "unknown --system '%s' (want nvcomp|planner|gpubp|gpustar|"
               "none)\n",
               name.c_str());
  std::exit(1);
}

void Append(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

// Canonical text form of a loaded-serving report: every per-query outcome
// at full precision plus the exact counters. Two runs are "deterministic"
// iff these strings are byte-identical.
std::string Canonical(const serve::ServeReport& r) {
  std::string s;
  for (const serve::ServedQuery& q : r.queries) {
    Append(&s, "%" PRIu64 " %s %s %d %.9f %.9f %.9f %.9f %zu %" PRId64 "\n",
           q.request_id, ssb::QueryName(q.query),
           serve::QueryStatusName(q.status), q.stream, q.arrival_ms,
           q.admit_ms, q.finish_ms, q.queue_ms, q.result.groups.size(),
           q.result.scalar());
  }
  Append(&s, "adm %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
             " %.9f\n",
         r.admission.offered, r.admission.admitted_immediately,
         r.admission.queued, r.admission.shed, r.admission.max_queue_depth,
         r.admission.queue_wait_ms_total);
  Append(&s, "cache %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
         r.cache.hits, r.cache.misses, r.cache.evictions, r.cache.inserts);
  Append(&s, "faults %" PRIu64 " %" PRIu64 " %.9f\n", r.faults.retries,
         r.faults.terminal_failures, r.makespan_ms);
  return s;
}

struct Point {
  std::string process;  // "poisson" | "bursty" | "closed"
  double fault_rate = 0.0;
  double offered_qps = 0.0;  // open loop
  double rate_frac = 0.0;    // of the fixed-batch rate (open loop)
  int users = 0;             // closed loop
  serve::ServeReport report;
  double goodput_qps = 0.0;
  bool slo_met = true;
};

struct Harness {
  const ssb::SsbData& data;
  const ssb::EncodedLineorder& enc;
  const std::map<ssb::QueryId, ssb::QueryResult>& expected;
  serve::ServeOptions base_options;
  uint64_t fault_seed = 0;
  bool ok = true;  // sticky: any bit-exactness violation clears it

  // Run `workload` through a fresh device/server (and a fresh fault plan
  // rebuilt from fault_seed, so every run at the same fault rate sees the
  // same injection sequence) and bit-exact-check every ok query.
  serve::ServeReport Run(load::Workload& workload, double fault_rate,
                         telemetry::Tracer* tracer = nullptr) {
    sim::Device dev;
    if (tracer != nullptr) dev.AttachTracer(tracer);
    fault::FaultPlan plan(
        fault::FaultPlanOptions::Uniform(fault_rate, fault_seed));
    serve::ServeOptions options = base_options;
    options.fault_plan = fault_rate > 0.0 ? &plan : nullptr;
    serve::Server server(dev, data, enc, options);
    serve::ServeReport report = server.ServeLoad(workload);
    for (const serve::ServedQuery& sq : report.queries) {
      if (sq.status != serve::QueryStatus::kOk) continue;
      if (sq.result.groups != expected.at(sq.query).groups) {
        std::fprintf(stderr,
                     "BIT-EXACTNESS VIOLATION: request %" PRIu64
                     " (%s) diverges from host reference\n",
                     sq.request_id, ssb::QueryName(sq.query));
        ok = false;
      }
    }
    return report;
  }
};

bool AllSloMet(const serve::ServeReport& r) {
  for (const serve::ClassReport& c : r.classes) {
    if (!c.slo_met) return false;
  }
  return true;
}

double Goodput(const serve::ServeReport& r) {
  uint64_t ok = 0;
  for (const serve::ClassReport& c : r.classes) ok += c.ok;
  return r.makespan_ms > 0.0 ? 1000.0 * static_cast<double>(ok) / r.makespan_ms
                             : 0.0;
}

// Shed-invariance gate: replay `schedule` minus the requests `first` shed
// and require every admitted query's outcome (timing, status, result) and
// the cache/fault counters to reproduce exactly.
bool CheckShedInvariance(Harness& harness, const load::Schedule& schedule,
                         const load::WorkloadSpec& spec,
                         const serve::ServeReport& first, double fault_rate) {
  load::Schedule pruned;
  for (const load::Request& r : schedule.requests) {
    if (first.queries[r.id].status != serve::QueryStatus::kShed) {
      pruned.requests.push_back(r);
    }
  }
  load::OpenLoopWorkload workload(pruned, spec);
  const serve::ServeReport second = harness.Run(workload, fault_rate);
  if (second.queries.size() != pruned.requests.size()) return false;
  size_t j = 0;
  for (const serve::ServedQuery& sq : first.queries) {
    if (sq.status == serve::QueryStatus::kShed) continue;
    const serve::ServedQuery& rq = second.queries[j++];
    if (rq.request_id != sq.request_id || rq.status != sq.status ||
        rq.admit_ms != sq.admit_ms || rq.finish_ms != sq.finish_ms ||
        rq.queue_ms != sq.queue_ms ||
        rq.result.groups != sq.result.groups) {
      std::fprintf(stderr,
                   "SHED-INVARIANCE VIOLATION: request %" PRIu64
                   " changed when the shed requests were removed\n",
                   sq.request_id);
      return false;
    }
  }
  if (second.cache.hits != first.cache.hits ||
      second.cache.misses != first.cache.misses ||
      second.cache.evictions != first.cache.evictions ||
      second.cache.inserts != first.cache.inserts) {
    std::fprintf(stderr,
                 "SHED-INVARIANCE VIOLATION: cache counters changed\n");
    return false;
  }
  if (second.faults.consults != first.faults.consults ||
      second.faults.injected != first.faults.injected ||
      second.faults.retries != first.faults.retries) {
    std::fprintf(stderr,
                 "SHED-INVARIANCE VIOLATION: fault-plan sequence changed\n");
    return false;
  }
  return true;
}

void AppendClasses(std::string* out, const serve::ServeReport& r) {
  out->append("\"classes\":[");
  for (size_t c = 0; c < load::kNumClasses; ++c) {
    const serve::ClassReport& cr = r.classes[c];
    Append(out,
           "%s{\"class\":\"%s\",\"offered\":%" PRIu64 ",\"ok\":%" PRIu64
           ",\"shed\":%" PRIu64 ",\"failed\":%" PRIu64
           ",\"deadline_missed\":%" PRIu64
           ",\"p50_e2e_ms\":%.6f,\"p99_e2e_ms\":%.6f,\"slo_p99_ms\":%.6f,"
           "\"slo_met\":%s}",
           c == 0 ? "" : ",",
           load::QueryClassName(static_cast<load::QueryClass>(c)), cr.offered,
           cr.ok, cr.shed, cr.failed, cr.deadline_missed, cr.p50_e2e_ms,
           cr.p99_e2e_ms, cr.slo_p99_ms, cr.slo_met ? "true" : "false");
  }
  out->append("]");
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t rows = static_cast<uint32_t>(flags.GetInt("rows", 30000));
  const size_t num_queries =
      static_cast<size_t>(flags.GetInt("queries", 48));
  const double alpha = flags.GetDouble("alpha", 1.2);
  const int streams = static_cast<int>(flags.GetInt("streams", 3));
  const size_t queue_capacity =
      static_cast<size_t>(flags.GetInt("queue", 4));
  const std::string system_name = flags.GetString("system", "gpustar");
  const codec::System system = ParseSystem(system_name);
  const bench::CommonOptions common =
      bench::ParseCommonOptions(flags, "BENCH_slo.json");

  const ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  const ssb::EncodedLineorder enc = ssb::EncodeLineorder(data, system);

  // Host-reference results, once per distinct query.
  std::map<ssb::QueryId, ssb::QueryResult> expected;
  {
    ssb::QueryRunner reference(data);
    for (ssb::QueryId q : ssb::AllQueries()) {
      expected.emplace(q, reference.RunHostReference(q));
    }
  }

  serve::ServeOptions base_options;
  base_options.num_streams = streams;
  base_options.cache_budget_bytes = 256ull << 20;  // holds the working set
  base_options.admission.policy = serve::AdmissionPolicy::kShedLowPriority;
  base_options.admission.queue_capacity = queue_capacity;

  bench::PrintTitle("SLO capacity: loaded serving under admission control (" +
                    std::string(codec::SystemName(system)) + ")");

  // --- Calibration: the same mix as a fixed batch, at the same budget ---
  const std::vector<ssb::QueryId> all = ssb::AllQueries();
  const std::vector<uint32_t> ranks =
      GenZipf(num_queries, all.size(), alpha, common.seed);
  std::vector<ssb::QueryId> batch(num_queries);
  for (size_t i = 0; i < num_queries; ++i) batch[i] = all[ranks[i]];

  double fixed_qps = 0.0;
  double fixed_p99_service = 0.0;
  double fixed_makespan = 0.0;
  {
    sim::Device dev;
    serve::Server server(dev, data, enc, base_options);
    const serve::ServeReport fixed = server.Serve(batch);
    for (const serve::ServedQuery& sq : fixed.queries) {
      if (sq.result.groups != expected.at(sq.query).groups) {
        std::fprintf(stderr, "fixed-batch results diverge from reference\n");
        return 1;
      }
    }
    fixed_makespan = fixed.makespan_ms;
    fixed_qps = 1000.0 * static_cast<double>(num_queries) / fixed.makespan_ms;
    fixed_p99_service = fixed.p99_latency_ms;
  }

  // Per-class end-to-end SLOs as multiples of the fixed-batch p99 service
  // time, deadlines at twice the SLO. Interactive gets the tightest target
  // but also the highest admission priority.
  load::WorkloadSpec spec;
  const double multipliers[load::kNumClasses] = {4.0, 6.0, 12.0};
  for (size_t c = 0; c < load::kNumClasses; ++c) {
    spec.classes[c].slo_p99_ms = multipliers[c] * fixed_p99_service;
    spec.classes[c].deadline_ms = 2.0 * spec.classes[c].slo_p99_ms;
  }

  bench::PrintNote(
      "rows=" + std::to_string(data.lineorder.size()) + " queries=" +
      std::to_string(num_queries) + " streams=" + std::to_string(streams) +
      " queue=" + std::to_string(queue_capacity));
  std::printf("fixed batch: %.1f qps, p99 service %.4f ms, makespan %.4f ms\n",
              fixed_qps, fixed_p99_service, fixed_makespan);
  std::printf("SLO p99 e2e: interactive %.4f / standard %.4f / batch %.4f ms\n",
              spec.classes[0].slo_p99_ms, spec.classes[1].slo_p99_ms,
              spec.classes[2].slo_p99_ms);

  Harness harness{data, enc, expected, base_options, common.seed ^ 0xFA57,
                  true};

  // --- Open-loop sweep: rate fractions x process x fault rate ---
  const double fractions[] = {0.6, 1.0, 1.5, 2.0};
  const double fault_rates[] = {0.0, 0.01};
  std::vector<Point> points;
  // Remember one shedding schedule per fault rate for the invariance gate.
  struct InvarianceCase {
    bool found = false;
    load::Schedule schedule;
    serve::ServeReport report;
  };
  InvarianceCase invariance[2];

  std::printf("\n%-8s %6s %6s %9s %9s %5s %5s %5s %9s %9s %4s\n", "process",
              "fault", "frac", "offered", "goodput", "ok", "shed", "fail",
              "p99_svc", "p99_e2e", "slo");
  for (const char* process : {"poisson", "bursty"}) {
    const bool bursty = std::strcmp(process, "bursty") == 0;
    for (double frac : fractions) {
      load::OpenLoopOptions gen;
      gen.rate_qps = frac * fixed_qps;
      gen.num_queries = num_queries;
      gen.zipf_alpha = alpha;
      gen.seed = common.seed + (bursty ? 1000 : 0);
      if (bursty) gen.burst_factor = 8.0;
      const load::Schedule schedule = load::GenOpenLoop(gen);
      for (size_t f = 0; f < 2; ++f) {
        load::OpenLoopWorkload workload(schedule, spec);
        Point p;
        p.process = process;
        p.fault_rate = fault_rates[f];
        p.offered_qps = gen.rate_qps;
        p.rate_frac = frac;
        p.report = harness.Run(workload, p.fault_rate);
        p.goodput_qps = Goodput(p.report);
        p.slo_met = AllSloMet(p.report);
        std::printf("%-8s %6.2f %6.2f %9.1f %9.1f %5" PRIu64 " %5" PRIu64
                    " %5" PRIu64 " %9.4f %9.4f %4s\n",
                    p.process.c_str(), p.fault_rate, frac, p.offered_qps,
                    p.goodput_qps, p.report.admission.started() -
                        p.report.failed_queries,
                    p.report.shed_queries, p.report.failed_queries,
                    p.report.p99_latency_ms, p.report.p99_e2e_ms,
                    p.slo_met ? "yes" : "NO");
        if (!invariance[f].found && p.report.shed_queries > 0) {
          invariance[f].found = true;
          invariance[f].schedule = schedule;
          invariance[f].report = p.report;
        }
        points.push_back(std::move(p));
      }
    }
  }

  // --- Closed-loop sweep: users x fault rate ---
  std::vector<Point> closed_points;
  for (int users : {2, 4, 8, 16}) {
    for (double fault_rate : fault_rates) {
      load::ClosedLoopOptions gen;
      gen.num_users = users;
      gen.num_queries = num_queries;
      gen.think_ms = 0.5;
      gen.zipf_alpha = alpha;
      gen.seed = common.seed + 2000;
      load::ClosedLoopWorkload workload(gen, spec);
      Point p;
      p.process = "closed";
      p.fault_rate = fault_rate;
      p.users = users;
      p.report = harness.Run(workload, fault_rate);
      p.goodput_qps = Goodput(p.report);
      p.slo_met = AllSloMet(p.report);
      std::printf("%-8s %6.2f u=%-4d %9s %9.1f %5" PRIu64 " %5" PRIu64
                  " %5" PRIu64 " %9.4f %9.4f %4s\n",
                  p.process.c_str(), p.fault_rate, users, "-", p.goodput_qps,
                  p.report.admission.started() - p.report.failed_queries,
                  p.report.shed_queries, p.report.failed_queries,
                  p.report.p99_latency_ms, p.report.p99_e2e_ms,
                  p.slo_met ? "yes" : "NO");
      closed_points.push_back(std::move(p));
    }
  }

  // --- Headline: max sustained goodput meeting every class SLO ---
  double sustained_open[2] = {0.0, 0.0};
  double sustained_closed[2] = {0.0, 0.0};
  for (const Point& p : points) {
    const size_t f = p.fault_rate > 0.0 ? 1 : 0;
    if (p.slo_met) {
      sustained_open[f] = std::max(sustained_open[f], p.goodput_qps);
    }
  }
  for (const Point& p : closed_points) {
    const size_t f = p.fault_rate > 0.0 ? 1 : 0;
    if (p.slo_met) {
      sustained_closed[f] = std::max(sustained_closed[f], p.goodput_qps);
    }
  }
  std::printf(
      "\nsustained (all-class SLO met): open %.1f qps @0%% faults, %.1f qps "
      "@1%%; closed %.1f qps @0%%, %.1f qps @1%%\n",
      sustained_open[0], sustained_open[1], sustained_closed[0],
      sustained_closed[1]);
  std::printf("fixed-batch bar: sustained %.1f >= fixed %.1f qps: %s\n",
              sustained_open[0], fixed_qps,
              sustained_open[0] >= fixed_qps ? "yes" : "NO");

  // --- Gates: determinism, shed invariance, bit-exactness ---
  bool deterministic = true;
  {
    load::OpenLoopOptions gen;
    gen.rate_qps = 2.0 * fixed_qps;
    gen.num_queries = num_queries;
    gen.zipf_alpha = alpha;
    gen.seed = common.seed;
    const load::Schedule schedule = load::GenOpenLoop(gen);
    load::OpenLoopWorkload w1(schedule, spec);
    load::OpenLoopWorkload w2(schedule, spec);
    const std::string a = Canonical(harness.Run(w1, 0.01));
    const std::string b = Canonical(harness.Run(w2, 0.01));
    deterministic = a == b;
    if (!deterministic) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: identical runs diverged\n");
    }
  }
  bool shed_invariant = true;
  for (size_t f = 0; f < 2; ++f) {
    if (!invariance[f].found) {
      std::fprintf(stderr,
                   "no shedding point found at fault rate %.2f — sweep "
                   "cannot verify shed invariance\n",
                   fault_rates[f]);
      shed_invariant = false;
      continue;
    }
    shed_invariant =
        CheckShedInvariance(harness, invariance[f].schedule, spec,
                            invariance[f].report, fault_rates[f]) &&
        shed_invariant;
  }
  std::printf("gates: bit_exact=%s deterministic=%s shed_invariant=%s\n",
              harness.ok ? "yes" : "NO", deterministic ? "yes" : "NO",
              shed_invariant ? "yes" : "NO");

  // --- Optional trace export: one loaded point with a tracer attached ---
  if (!common.trace_path.empty() || !common.chrome_path.empty()) {
    telemetry::Tracer tracer;
    load::OpenLoopOptions gen;
    gen.rate_qps = 1.5 * fixed_qps;
    gen.num_queries = num_queries;
    gen.zipf_alpha = alpha;
    gen.seed = common.seed;
    load::OpenLoopWorkload workload(load::GenOpenLoop(gen), spec);
    harness.Run(workload, 0.0, &tracer);
    if (!bench::ExportTraces(common, tracer)) return 1;
  }

  if (common.emit_json) {
    std::string out;
    Append(&out,
           "{\"schema\":\"tilecomp.bench_slo.v1\",\"system\":\"%s\","
           "\"rows\":%u,\"queries\":%zu,\"alpha\":%.3f,\"streams\":%d,"
           "\"queue_capacity\":%zu,\"seed\":%" PRIu64 ",",
           codec::SystemName(system), data.lineorder.size(), num_queries,
           alpha, streams, queue_capacity, common.seed);
    Append(&out,
           "\"fixed_batch\":{\"qps\":%.4f,\"p99_service_ms\":%.6f,"
           "\"makespan_ms\":%.6f},",
           fixed_qps, fixed_p99_service, fixed_makespan);
    Append(&out,
           "\"slo_p99_ms\":{\"interactive\":%.6f,\"standard\":%.6f,"
           "\"batch\":%.6f},\"open_loop\":[",
           spec.classes[0].slo_p99_ms, spec.classes[1].slo_p99_ms,
           spec.classes[2].slo_p99_ms);
    for (size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      Append(&out,
             "%s\n  {\"process\":\"%s\",\"fault_rate\":%.4f,"
             "\"rate_frac\":%.2f,\"offered_qps\":%.4f,\"goodput_qps\":%.4f,"
             "\"shed\":%" PRIu64 ",\"failed\":%" PRIu64
             ",\"deadline_missed\":%" PRIu64 ",\"max_queue_depth\":%" PRIu64
             ",\"p50_service_ms\":%.6f,\"p99_service_ms\":%.6f,"
             "\"p50_e2e_ms\":%.6f,\"p99_e2e_ms\":%.6f,\"slo_met\":%s,",
             i == 0 ? "" : ",", p.process.c_str(), p.fault_rate, p.rate_frac,
             p.offered_qps, p.goodput_qps, p.report.shed_queries,
             p.report.failed_queries, p.report.admission.deadline_missed,
             p.report.admission.max_queue_depth, p.report.p50_latency_ms,
             p.report.p99_latency_ms, p.report.p50_e2e_ms,
             p.report.p99_e2e_ms, p.slo_met ? "true" : "false");
      AppendClasses(&out, p.report);
      out.append("}");
    }
    out.append("\n],\"closed_loop\":[");
    for (size_t i = 0; i < closed_points.size(); ++i) {
      const Point& p = closed_points[i];
      Append(&out,
             "%s\n  {\"users\":%d,\"fault_rate\":%.4f,\"goodput_qps\":%.4f,"
             "\"shed\":%" PRIu64 ",\"failed\":%" PRIu64
             ",\"deadline_missed\":%" PRIu64
             ",\"p50_service_ms\":%.6f,\"p99_service_ms\":%.6f,"
             "\"p50_e2e_ms\":%.6f,\"p99_e2e_ms\":%.6f,\"slo_met\":%s,",
             i == 0 ? "" : ",", p.users, p.fault_rate, p.goodput_qps,
             p.report.shed_queries, p.report.failed_queries,
             p.report.admission.deadline_missed, p.report.p50_latency_ms,
             p.report.p99_latency_ms, p.report.p50_e2e_ms,
             p.report.p99_e2e_ms, p.slo_met ? "true" : "false");
      AppendClasses(&out, p.report);
      out.append("}");
    }
    Append(&out,
           "\n],\"sustained\":{\"open_qps_fault0\":%.4f,"
           "\"open_qps_fault1\":%.4f,\"closed_qps_fault0\":%.4f,"
           "\"closed_qps_fault1\":%.4f},",
           sustained_open[0], sustained_open[1], sustained_closed[0],
           sustained_closed[1]);
    Append(&out,
           "\"checks\":{\"bit_exact\":%s,\"deterministic\":%s,"
           "\"shed_invariant\":%s}}\n",
           harness.ok ? "true" : "false", deterministic ? "true" : "false",
           shed_invariant ? "true" : "false");
    if (!bench::ExportJson(common, out)) return 1;
  }

  if (!harness.ok || !deterministic || !shed_invariant) return 1;
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
