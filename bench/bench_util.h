// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one table/figure of the paper: it runs the
// *functional* simulation at a laptop-scale default N (override with --n or
// --sf), measures traffic exactly, and projects the modeled time to the
// paper's dataset size (traffic scales linearly in N; fixed overheads are a
// sub-percent error at paper scale). Paper-reported reference numbers are
// printed alongside for comparison in EXPERIMENTS.md.
#ifndef TILECOMP_BENCH_BENCH_UTIL_H_
#define TILECOMP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "common/flags.h"

namespace tilecomp::bench {

// Scale a time measured on an n_sim-sized input to the paper's n_paper.
inline double Project(double time_ms, size_t n_sim, size_t n_paper) {
  return time_ms * static_cast<double>(n_paper) /
         static_cast<double>(n_sim);
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("#  %s\n", note.c_str());
}

}  // namespace tilecomp::bench

#endif  // TILECOMP_BENCH_BENCH_UTIL_H_
