// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one table/figure of the paper: it runs the
// *functional* simulation at a laptop-scale default N (override with --n or
// --sf), measures traffic exactly, and projects the modeled time to the
// paper's dataset size (traffic scales linearly in N; fixed overheads are a
// sub-percent error at paper scale). Paper-reported reference numbers are
// printed alongside for comparison in EXPERIMENTS.md.
#ifndef TILECOMP_BENCH_BENCH_UTIL_H_
#define TILECOMP_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "telemetry/export.h"
#include "telemetry/tracer.h"

namespace tilecomp::bench {

// Flags every bench binary understands, parsed once by ParseCommonOptions:
//
//   --json [path]    emit a machine-readable result file (bare --json picks
//                    the bench's default path, e.g. BENCH_serve.json)
//   --trace <path>   write the telemetry trace (telemetry::kTraceSchema JSON)
//   --chrome <path>  write the chrome://tracing / Perfetto export
//   --seed <n>       PRNG seed for workload generation (default 7)
//
// Benches that predate this struct parsed these by hand with the same
// spellings; CI invocations (--trace/--chrome/--json <path>) keep working.
struct CommonOptions {
  bool emit_json = false;
  std::string json_path;
  std::string trace_path;
  std::string chrome_path;
  uint64_t seed = 7;
};

inline CommonOptions ParseCommonOptions(const Flags& flags,
                                        const std::string& default_json_path) {
  CommonOptions opts;
  opts.emit_json = flags.Has("json");
  opts.json_path = flags.GetString("json", default_json_path);
  // A bare "--json" parses as the literal value "true": use the default.
  if (opts.json_path == "true" || opts.json_path.empty()) {
    opts.json_path = default_json_path;
  }
  opts.trace_path = flags.GetString("trace", "");
  opts.chrome_path = flags.GetString("chrome", "");
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  return opts;
}

// Write the exports requested by --trace / --chrome from `tracer`. Returns
// false (after printing the failing path to stderr) on I/O error, true when
// nothing was requested or every write succeeded.
inline bool ExportTraces(const CommonOptions& opts,
                         const telemetry::Tracer& tracer) {
  if (!opts.trace_path.empty()) {
    if (!telemetry::WriteTextFile(opts.trace_path, telemetry::ToJson(tracer))) {
      std::fprintf(stderr, "cannot write %s\n", opts.trace_path.c_str());
      return false;
    }
    std::printf("wrote trace to %s\n", opts.trace_path.c_str());
  }
  if (!opts.chrome_path.empty()) {
    if (!telemetry::WriteTextFile(opts.chrome_path,
                                  telemetry::ToChromeTrace(tracer))) {
      std::fprintf(stderr, "cannot write %s\n", opts.chrome_path.c_str());
      return false;
    }
    std::printf("wrote chrome trace to %s\n", opts.chrome_path.c_str());
  }
  return true;
}

// Span-vector variant for multi-device benches: export a merged cluster
// timeline (per-device tracers + link spans, see telemetry::MergeSpans).
inline bool ExportTraces(const CommonOptions& opts,
                         const std::vector<telemetry::Span>& spans) {
  if (!opts.trace_path.empty()) {
    if (!telemetry::WriteTextFile(opts.trace_path, telemetry::ToJson(spans))) {
      std::fprintf(stderr, "cannot write %s\n", opts.trace_path.c_str());
      return false;
    }
    std::printf("wrote trace to %s\n", opts.trace_path.c_str());
  }
  if (!opts.chrome_path.empty()) {
    if (!telemetry::WriteTextFile(opts.chrome_path,
                                  telemetry::ToChromeTrace(spans))) {
      std::fprintf(stderr, "cannot write %s\n", opts.chrome_path.c_str());
      return false;
    }
    std::printf("wrote chrome trace to %s\n", opts.chrome_path.c_str());
  }
  return true;
}

// Write the --json result file. Returns false (after printing the failing
// path to stderr) on I/O error, true when --json was absent or the write
// succeeded.
inline bool ExportJson(const CommonOptions& opts, const std::string& content) {
  if (!opts.emit_json) return true;
  if (!telemetry::WriteTextFile(opts.json_path, content)) {
    std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
    return false;
  }
  std::printf("wrote %s\n", opts.json_path.c_str());
  return true;
}

// Scale a time measured on an n_sim-sized input to the paper's n_paper.
inline double Project(double time_ms, size_t n_sim, size_t n_paper) {
  return time_ms * static_cast<double>(n_paper) /
         static_cast<double>(n_sim);
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("#  %s\n", note.c_str());
}

}  // namespace tilecomp::bench

#endif  // TILECOMP_BENCH_BENCH_UTIL_H_
