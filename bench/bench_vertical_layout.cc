// Section 4.3 ablations:
//   (1) horizontal (GPU-FOR, D=16) vs vertical (GPU-SIMDBP128) layout on
//       500M ints U(0,2^16), decode to registers.
//       Paper: 1.55 ms vs 4.3 ms (vertical 2.7x slower: 4096-value blocks,
//       32 values per thread, register pressure + local-memory spills).
//   (2) bit-packing without miniblocks (one width per 128-value block).
//       Paper: 2.1 ms -> 2.0 ms (marginally better).
//   (3) SSB q1.1 with GPU-FOR vs GPU-SIMDBP128 columns. Paper: 14x slower.
//       Vertical blocks (4096) cannot be decoded inline with 512-value
//       query tiles, so the vertical variant decompresses to global memory
//       first — which is the structural reason for the paper's large gap.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kernels/decompress.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

namespace tilecomp {
namespace {

constexpr size_t kPaperN = 500'000'000;

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 16 << 20));
  auto values = GenUniformBits(n, 16, 11);

  bench::PrintTitle("Section 4.3: horizontal vs vertical layout (proj. ms)");
  sim::Device dev;
  kernels::UnpackConfig d16;
  d16.d = 16;
  auto ffor = format::GpuForEncode(values.data(), n);
  const double t_for =
      kernels::DecompressGpuFor(dev, ffor, d16, /*write_output=*/false)
          .time_ms;
  auto vert = format::SimdBp128Encode(values.data(), n);
  const double t_vert =
      kernels::DecompressSimdBp128(dev, vert, /*write_output=*/false).time_ms;
  std::printf("%-24s %10.2f   (paper 1.55)\n", "GPU-FOR (D=16)",
              bench::Project(t_for, n, kPaperN));
  std::printf("%-24s %10.2f   (paper 4.3, 2.7x)\n", "GPU-SIMDBP128",
              bench::Project(t_vert, n, kPaperN));
  std::printf("%-24s %9.1fx\n", "vertical slowdown", t_vert / t_for);

  bench::PrintTitle("Section 4.3: bit-packing without miniblocks (proj. ms)");
  format::GpuForOptions single;
  single.miniblock_count = 1;
  auto enc1 = format::GpuForEncode(values.data(), n, single);
  kernels::UnpackConfig d4;
  const double t_mb4 =
      kernels::DecompressGpuFor(dev, ffor, d4, false).time_ms;
  const double t_mb1 =
      kernels::DecompressGpuFor(dev, enc1, d4, false).time_ms;
  std::printf("%-24s %10.2f   (paper 2.1)\n", "4 miniblocks",
              bench::Project(t_mb4, n, kPaperN));
  std::printf("%-24s %10.2f   (paper 2.0)\n", "1 miniblock",
              bench::Project(t_mb1, n, kPaperN));

  bench::PrintTitle("Section 4.3: SSB q1.1, GPU-FOR vs vertical columns");
  ssb::SsbData data = ssb::GenerateSsbSmall(
      static_cast<uint32_t>(flags.GetInt("rows", 2'000'000)));
  ssb::QueryRunner runner(data);
  const uint32_t rows = data.lineorder.size();

  auto star = ssb::EncodeLineorder(data, codec::System::kGpuStar);
  sim::Device dev_q;
  const double q_for = runner.Run(dev_q, star, ssb::QueryId::kQ11).time_ms;

  // Vertical layout: decompress the four q1.1 columns to global memory
  // (4096-value blocks cannot feed 512-value query tiles), then query.
  sim::Device dev_v;
  ssb::EncodedLineorder raw;
  raw.system = codec::System::kNone;
  for (ssb::LoCol col : ssb::QueryColumns(ssb::QueryId::kQ11)) {
    const auto& column = data.lineorder.column(col);
    auto enc = format::SimdBp128Encode(column.data(), column.size());
    auto run = kernels::DecompressSimdBp128(dev_v, enc);
    raw.cols[static_cast<int>(col)] = codec::SystemEncode(
        codec::System::kNone, run.output);
  }
  const double q_vert =
      dev_v.elapsed_ms() -
      0.0;  // decompression time so far, query added below
  auto result = runner.Run(dev_v, raw, ssb::QueryId::kQ11);
  (void)result;
  const double q_vert_total = q_vert + result.time_ms;

  std::printf("%-24s %10.3f ms (sim scale, %u rows)\n", "q1.1 GPU-FOR", q_for,
              rows);
  std::printf("%-24s %10.3f ms\n", "q1.1 GPU-SIMDBP128", q_vert_total);
  std::printf("%-24s %9.1fx   (paper 14x)\n", "vertical slowdown",
              q_vert_total / q_for);
  bench::PrintNote(
      "the 14x of the paper includes severe register spilling when the "
      "vertical decode is forced inline; our vertical variant cannot inline "
      "at all and pays a full decompress-then-query round trip instead");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
