// Extension benchmark: zone-map tile skipping on a range selection.
//
// Generalizes the paper's Section 8 random-access discussion: a compressed
// tile is all-or-nothing, so min/max zone maps are the natural skipping
// structure. On a clustered column (sorted orderkeys, dates) a narrow range
// predicate touches a handful of tiles; the zone map turns a full-column
// scan into a few tile decodes.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "codec/zone_map.h"
#include "common/random.h"
#include "kernels/decompress.h"
#include "kernels/load_tile.h"

namespace tilecomp {
namespace {

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 16 << 20));
  auto values = GenSortedGaps(n, 20, 17);
  auto enc = format::GpuForEncode(values.data(), n);
  auto zm = codec::ZoneMap::Build(values.data(), n);

  bench::PrintTitle("Extension: range selection with zone-map tile skipping");
  std::printf("%-14s %12s %12s %12s\n", "range_frac", "tiles_kept",
              "skip_ms", "full_ms");

  for (double frac : {0.0001, 0.001, 0.01, 0.1, 0.5, 1.0}) {
    const uint32_t lo = values[static_cast<size_t>(n * 0.3)];
    const uint32_t hi =
        values[std::min(n - 1, static_cast<size_t>(n * (0.3 + 0.7 * frac)))];

    // With zone map: decode only tiles whose [min,max] intersects [lo,hi].
    sim::Device dev_skip;
    {
      kernels::UnpackConfig cfg;
      sim::LaunchConfig lc = kernels::GpuForLaunchConfig(enc, cfg);
      dev_skip.Launch(lc, [&](sim::BlockContext& ctx) {
        const size_t tile = static_cast<size_t>(ctx.block_id());
        if (tile >= zm.num_tiles() || !zm.TileCanMatch(tile, lo, hi)) return;
        uint32_t out[512];
        kernels::LoadBitPack(ctx, enc, ctx.block_id(), cfg, out);
        ctx.Compute(512 * 2);  // predicate + masked sum
      });
    }

    // Without: decode everything.
    sim::Device dev_full;
    {
      kernels::UnpackConfig cfg;
      sim::LaunchConfig lc = kernels::GpuForLaunchConfig(enc, cfg);
      dev_full.Launch(lc, [&](sim::BlockContext& ctx) {
        uint32_t out[512];
        kernels::LoadBitPack(ctx, enc, ctx.block_id(), cfg, out);
        ctx.Compute(512 * 2);
      });
    }

    std::printf("%-14g %12zu %12.4f %12.4f\n", frac,
                zm.CountMatchingTiles(lo, hi), dev_skip.elapsed_ms(),
                dev_full.elapsed_ms());
  }
  bench::PrintNote("zone map footprint: " + std::to_string(zm.bytes()) +
                   " bytes for " + std::to_string(n) + " values");
  return 0;
}

}  // namespace
}  // namespace tilecomp

int main(int argc, char** argv) { return tilecomp::Run(argc, argv); }
