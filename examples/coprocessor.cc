// GPU-as-coprocessor pipeline (Sections 8 and 9.5): the working set lives
// in host memory and must cross PCIe for every query. Compression shrinks
// the transfer — the dominant cost — so end-to-end latency drops even
// though the GPU does extra decode work.
//
//   $ ./examples/coprocessor [--rows 1000000]
#include <cstdio>

#include "common/flags.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

int main(int argc, char** argv) {
  using namespace tilecomp;
  Flags flags(argc, argv);
  const uint32_t rows =
      static_cast<uint32_t>(flags.GetInt("rows", 1'000'000));

  ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  ssb::QueryRunner runner(data);
  auto raw = ssb::EncodeLineorder(data, codec::System::kNone);
  auto star = ssb::EncodeLineorder(data, codec::System::kGpuStar);

  std::printf("co-processor model: PCIe %.1f GB/s, query q4.1\n",
              sim::DeviceSpec().pcie_gbps);

  for (const auto* enc : {&raw, &star}) {
    sim::Device dev;
    uint64_t shipped = 0;
    for (ssb::LoCol col : ssb::QueryColumns(ssb::QueryId::kQ41)) {
      shipped += enc->col(col).compressed_bytes();
    }
    const double transfer_ms = dev.Transfer(shipped);
    auto result = runner.Run(dev, *enc, ssb::QueryId::kQ41);
    std::printf(
        "%-8s ship %7.1f MB: transfer %8.3f ms + query %7.3f ms = %8.3f ms\n",
        codec::SystemName(enc->system), shipped / 1e6, transfer_ms,
        result.time_ms, dev.elapsed_ms());
  }

  std::printf("\ncompression pays for itself whenever the link, not the GPU, "
              "is the bottleneck (Section 9.5: 2.3x end-to-end)\n");
  return 0;
}
