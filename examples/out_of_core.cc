// Out-of-core streaming (Section 8, "Out-of-core Dataset"): when the
// compressed working set exceeds device memory, columns stream chunk by
// chunk over PCIe while the previous chunk is being decoded — a classic
// double-buffered pipeline. Steady-state throughput is governed by
// max(transfer, compute) per chunk, so compression (which shrinks only the
// transfer leg) translates almost 1:1 into end-to-end speedup on the
// link-bound side.
//
//   $ ./examples/out_of_core [--n 8000000] [--chunks 16]
#include <algorithm>
#include <cstdio>

#include "common/flags.h"
#include "common/random.h"
#include "kernels/decompress.h"

int main(int argc, char** argv) {
  using namespace tilecomp;
  Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 8 << 20));
  const int chunks = static_cast<int>(flags.GetInt("chunks", 16));
  const size_t chunk_values = n / chunks;

  auto values = GenUniformBits(n, 14, 3);

  struct Variant {
    const char* name;
    bool compressed;
  };
  for (Variant variant : {Variant{"uncompressed", false},
                          Variant{"GPU-FOR", true}}) {
    sim::Device dev;
    double transfer_total = 0;
    double compute_total = 0;
    double pipeline_ms = 0;
    double prev_compute = 0;

    for (int c = 0; c < chunks; ++c) {
      const size_t begin = c * chunk_values;
      const size_t len =
          std::min(chunk_values, values.size() - begin);
      double transfer_ms = 0;
      double compute_ms = 0;
      if (variant.compressed) {
        auto enc = format::GpuForEncode(values.data() + begin, len);
        transfer_ms =
            sim::EstimateTransferMs(dev.spec(), enc.compressed_bytes());
        const double t0 = dev.elapsed_ms();
        auto run = kernels::DecompressGpuFor(dev, enc, {},
                                             /*write_output=*/false);
        compute_ms = dev.elapsed_ms() - t0;
        (void)run;
      } else {
        transfer_ms = sim::EstimateTransferMs(dev.spec(), len * 4);
        const double t0 = dev.elapsed_ms();
        std::vector<uint32_t> chunk(values.begin() + begin,
                                    values.begin() + begin + len);
        kernels::ReadUncompressed(dev, chunk);
        compute_ms = dev.elapsed_ms() - t0;
      }
      // Double buffering: chunk c's transfer overlaps chunk c-1's decode.
      pipeline_ms += std::max(transfer_ms, prev_compute);
      prev_compute = compute_ms;
      transfer_total += transfer_ms;
      compute_total += compute_ms;
    }
    pipeline_ms += prev_compute;  // drain the last chunk's decode

    std::printf(
        "%-14s transfer %8.3f ms  decode %8.3f ms  pipelined %8.3f ms\n",
        variant.name, transfer_total, compute_total, pipeline_ms);
  }
  std::printf(
      "\nwith double buffering the PCIe leg dominates, so the compressed\n"
      "pipeline finishes ~(compression ratio)x sooner (Section 9.5)\n");
  return 0;
}
