// Sorted posting lists (the search-engine workload motivating GPU-DFOR,
// Section 5.1): document-id lists are strictly increasing, so deltas are
// tiny and delta + FOR + bit-packing compresses them to a few bits per id.
// Demonstrates per-list compression, the scheme chooser, and the fused
// single-pass decode, plus a simple list-intersection on decoded tiles.
//
//   $ ./examples/posting_lists
#include <algorithm>
#include <cstdio>
#include <vector>

#include "codec/column.h"
#include "codec/stats.h"
#include "common/random.h"
#include "kernels/decompress.h"

int main() {
  using namespace tilecomp;

  // Three posting lists over a 100M-document collection with different
  // densities (frequent term, medium term, rare term).
  struct List {
    const char* term;
    uint32_t avg_gap;
    size_t length;
  };
  const List lists[] = {
      {"the", 4, 2'000'000},
      {"compression", 300, 200'000},
      {"tilecomp", 40'000, 2'000},
  };

  std::vector<std::vector<uint32_t>> decoded;
  std::printf("%-12s %10s %10s %12s %12s\n", "term", "postings", "scheme",
              "bits/doc", "decode_ms");
  for (const List& list : lists) {
    auto ids = GenSortedGaps(list.length, 2 * list.avg_gap, list.avg_gap);
    auto compressed = codec::EncodeGpuStar(ids);

    sim::Device dev;
    kernels::DecompressRun run;
    if (compressed.scheme() == codec::Scheme::kGpuDFor) {
      run = kernels::DecompressGpuDFor(dev, *compressed.gpu_dfor());
    } else {
      run = kernels::DecompressGpuFor(dev, *compressed.gpu_for());
    }
    std::printf("%-12s %10zu %10s %12.2f %12.4f\n", list.term, ids.size(),
                codec::SchemeName(compressed.scheme()),
                compressed.bits_per_int(), run.time_ms);
    if (run.output != ids) {
      std::printf("round trip MISMATCH for %s\n", list.term);
      return 1;
    }
    decoded.push_back(std::move(run.output));
  }

  // Intersect "the" with "compression" on the decoded lists.
  std::vector<uint32_t> both;
  std::set_intersection(decoded[0].begin(), decoded[0].end(),
                        decoded[1].begin(), decoded[1].end(),
                        std::back_inserter(both));
  std::printf("\ndocuments containing both 'the' and 'compression': %zu\n",
              both.size());
  return 0;
}
