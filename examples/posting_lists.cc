// Sorted posting lists (the search-engine workload motivating GPU-DFOR,
// Section 5.1), grown incrementally through the mutable tile store: new
// documents arrive in batches, each term's list append-grows a
// codec::MutableColumn, and a background-style ReencodeDirty() pass seals
// the tail into variable-rate per-tile extents. Each tile is
// frame-of-reference coded against its own minimum, so a 512-id tile costs
// about log2(512 * gap) bits per id — dense lists land at roughly half the
// width of sparse ones, all inside one free-list arena. Ends with a host
// round-trip check and a list intersection.
//
//   $ ./examples/posting_lists
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "codec/mutable_column.h"
#include "common/random.h"
#include "common/span.h"

int main() {
  using namespace tilecomp;

  // Three posting lists over a 100M-document collection with different
  // densities (frequent term, medium term, rare term). Documents arrive in
  // ten batches; every batch appends to each list.
  struct List {
    const char* term;
    uint32_t avg_gap;
    size_t length;
  };
  const List lists[] = {
      {"the", 4, 2'000'000},
      {"compression", 300, 200'000},
      {"tilecomp", 40'000, 2'000},
  };
  constexpr int kBatches = 10;

  std::vector<std::vector<uint32_t>> decoded;
  std::printf("%-12s %10s %8s %12s %12s %10s\n", "term", "postings", "tiles",
              "bits/doc", "arena_words", "reencodes");
  for (size_t t = 0; t < 3; ++t) {
    const List& list = lists[t];
    const auto ids = GenSortedGaps(list.length, 2 * list.avg_gap, list.avg_gap);

    codec::MutableColumn column(codec::ColumnId(static_cast<uint32_t>(t)));
    const size_t per_batch = (ids.size() + kBatches - 1) / kBatches;
    for (size_t begin = 0; begin < ids.size(); begin += per_batch) {
      const size_t n = std::min(per_batch, ids.size() - begin);
      column.Append(U32Span(ids.data() + begin, n));
      // Seal and compress what this batch dirtied; in a serving deployment
      // this runs on a background ThreadPool (see bench/bench_ingest.cc).
      column.ReencodeDirty();
    }
    column.Compact();

    const codec::MutableColumn::Stats stats = column.GetStats();
    const double bits_per_doc =
        static_cast<double>(stats.arena_words) * 32.0 /
        static_cast<double>(ids.size());
    std::printf("%-12s %10zu %8" PRIu64 " %12.2f %12" PRIu64 " %10" PRIu64
                "\n",
                list.term, ids.size(), stats.tiles, bits_per_doc,
                stats.arena_words, stats.reencodes);

    const std::vector<uint32_t> roundtrip = column.DecodeHost();
    if (roundtrip != ids) {
      std::printf("round trip MISMATCH for %s\n", list.term);
      return 1;
    }
    decoded.push_back(roundtrip);
  }

  // Intersect "the" with "compression" on the decoded lists.
  std::vector<uint32_t> both;
  std::set_intersection(decoded[0].begin(), decoded[0].end(),
                        decoded[1].begin(), decoded[1].end(),
                        std::back_inserter(both));
  std::printf("\ndocuments containing both 'the' and 'compression': %zu\n",
              both.size());
  return 0;
}
