// Quickstart: compress an integer column, inspect the ratio, decompress it
// on the simulated GPU in a single fused kernel, and verify the round trip.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "codec/column.h"
#include "codec/stats.h"
#include "codec/systems.h"
#include "common/random.h"

int main() {
  using namespace tilecomp;

  // 1. Some data: a sorted column of timestamps with small gaps.
  std::vector<uint32_t> column = GenSortedGaps(1'000'000, /*max_gap=*/30,
                                               /*seed=*/1);

  // 2. Let the library pick the best GPU-* scheme (Section 8 rule: this
  //    column is sorted with high cardinality, so GPU-DFOR should win).
  codec::ColumnStats stats = codec::ComputeStats(column);
  std::printf("column: %zu values, sorted=%d, distinct~%llu, avg run %.2f\n",
              column.size(), stats.sorted,
              static_cast<unsigned long long>(stats.distinct),
              stats.avg_run_length);
  codec::CompressedColumn compressed =
      codec::EncodeGpuStar(column);
  std::printf("chosen scheme: %s\n", codec::SchemeName(compressed.scheme()));
  std::printf("compressed: %.2f bits/int (%.1fx smaller than raw int32)\n",
              compressed.bits_per_int(), compressed.compression_ratio());

  // 3. Decompress on the simulated GPU — one fused kernel, single pass over
  //    global memory (Section 3).
  sim::Device device;
  codec::SystemColumn system_column;
  system_column.system = codec::System::kGpuStar;
  system_column.column = compressed;
  auto run = codec::SystemDecompress(device, system_column);
  std::printf("decompressed in %.3f modeled ms, %llu kernel launch(es)\n",
              run.time_ms, static_cast<unsigned long long>(run.kernel_launches()));

  // 4. Verify.
  if (run.output == column) {
    std::printf("round trip OK\n");
    return 0;
  }
  std::printf("round trip MISMATCH\n");
  return 1;
}
