// End-to-end GPU analytics on compressed data: generate a Star Schema
// Benchmark instance, dictionary-encode its strings, compress every fact
// column with the best GPU-* scheme, and run an SSB query with the
// decompression inlined into the query kernel (Section 7's Crystal
// integration — the query code is identical for raw and compressed columns;
// only the tile loader changes).
//
//   $ ./examples/ssb_analytics [--rows 1000000]
#include <cstdio>

#include "common/flags.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

int main(int argc, char** argv) {
  using namespace tilecomp;
  Flags flags(argc, argv);
  const uint32_t rows =
      static_cast<uint32_t>(flags.GetInt("rows", 1'000'000));

  std::printf("generating SSB data (~%u lineorder rows)...\n", rows);
  ssb::SsbData data = ssb::GenerateSsbSmall(rows);
  std::printf("lineorder: %u rows x %d columns; dictionaries: %u cities, "
              "%u nations, %u brands\n",
              data.lineorder.size(), ssb::kNumLoCols, data.city_dict.size(),
              data.nation_dict.size(), data.brand_dict.size());

  // Compress the fact table with GPU-*.
  auto compressed = ssb::EncodeLineorder(data, codec::System::kGpuStar);
  auto raw = ssb::EncodeLineorder(data, codec::System::kNone);
  std::printf("fact table: %.1f MB raw -> %.1f MB compressed (%.2fx)\n",
              raw.compressed_bytes() / 1e6,
              compressed.compressed_bytes() / 1e6,
              static_cast<double>(raw.compressed_bytes()) /
                  compressed.compressed_bytes());
  for (int c = 0; c < ssb::kNumLoCols; ++c) {
    const auto col = static_cast<ssb::LoCol>(c);
    std::printf("  %-15s %-9s %6.2f bits/int\n", ssb::LoColName(col),
                codec::SchemeName(compressed.col(col).column.scheme()),
                compressed.col(col).bits_per_int());
  }

  // Run q2.1 twice: on raw and on compressed columns. The engine code path
  // is the same; LoadColumnTile dispatches per column scheme.
  ssb::QueryRunner runner(data);
  for (const auto* enc : {&raw, &compressed}) {
    sim::Device dev;
    auto result = runner.Run(dev, *enc, ssb::QueryId::kQ21);
    std::printf("\nq2.1 on %s columns: %.3f modeled ms, %llu kernels, "
                "%zu groups\n",
                codec::SystemName(enc->system), result.time_ms,
                static_cast<unsigned long long>(result.kernel_launches()),
                result.groups.size());
    // Print the first few (year, brand) revenue groups with decoded strings.
    int shown = 0;
    for (const auto& [key, revenue] : result.groups) {
      if (shown++ >= 5) break;
      std::printf("  d_year=%u p_brand1=%-10s sum(lo_revenue)=%lld\n", key[0],
                  data.brand_dict.Value(key[1]).c_str(),
                  static_cast<long long>(revenue));
    }
  }

  // Cross-check against the host reference executor.
  auto want = runner.RunHostReference(ssb::QueryId::kQ21);
  sim::Device dev;
  auto got = runner.Run(dev, compressed, ssb::QueryId::kQ21);
  std::printf("\nreference check: %s\n",
              got.groups == want.groups ? "OK" : "MISMATCH");
  return got.groups == want.groups ? 0 : 1;
}
