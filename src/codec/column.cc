#include "codec/column.h"

#include "common/macros.h"

namespace tilecomp::codec {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNone:
      return "None";
    case Scheme::kGpuFor:
      return "GPU-FOR";
    case Scheme::kGpuDFor:
      return "GPU-DFOR";
    case Scheme::kGpuRFor:
      return "GPU-RFOR";
    case Scheme::kNsf:
      return "NSF";
    case Scheme::kNsv:
      return "NSV";
    case Scheme::kRle:
      return "RLE";
    case Scheme::kGpuBp:
      return "GPU-BP";
    case Scheme::kSimdBp128:
      return "GPU-SIMDBP128";
  }
  return "?";
}

const char* SystemName(System system) {
  switch (system) {
    case System::kNone:
      return "None";
    case System::kGpuStar:
      return "GPU-*";
    case System::kNvcomp:
      return "nvCOMP";
    case System::kPlanner:
      return "Planner";
    case System::kGpuBp:
      return "GPU-BP";
    case System::kOmnisci:
      return "OmniSci";
  }
  return "?";
}

CompressedColumn CompressedColumn::Encode(Scheme scheme, U32Span span) {
  const uint32_t* values = span.data();
  const size_t count = span.size();
  TILECOMP_CHECK(count <= 0xFFFFFFFFull);
  CompressedColumn col;
  col.scheme_ = scheme;
  col.count_ = static_cast<uint32_t>(count);
  col.zone_map_ =
      std::make_shared<const ZoneMap>(ZoneMap::Build(values, count));
  switch (scheme) {
    case Scheme::kNone:
      col.raw_ = std::make_shared<std::vector<uint32_t>>(values,
                                                         values + count);
      break;
    case Scheme::kGpuFor:
      col.gpu_for_ = std::make_shared<format::GpuForEncoded>(
          format::GpuForEncode(values, count));
      break;
    case Scheme::kGpuDFor:
      col.gpu_dfor_ = std::make_shared<format::GpuDForEncoded>(
          format::GpuDForEncode(values, count));
      break;
    case Scheme::kGpuRFor:
      col.gpu_rfor_ = std::make_shared<format::GpuRForEncoded>(
          format::GpuRForEncode(values, count));
      break;
    case Scheme::kNsf:
      col.nsf_ =
          std::make_shared<format::NsfEncoded>(format::NsfEncode(values, count));
      break;
    case Scheme::kNsv:
      col.nsv_ =
          std::make_shared<format::NsvEncoded>(format::NsvEncode(values, count));
      break;
    case Scheme::kRle:
      col.rle_ =
          std::make_shared<format::RleEncoded>(format::RleEncode(values, count));
      break;
    case Scheme::kGpuBp: {
      format::GpuForOptions options;
      options.zero_reference = true;
      options.miniblock_count = 1;
      col.gpu_for_ = std::make_shared<format::GpuForEncoded>(
          format::GpuForEncode(values, count, options));
      break;
    }
    case Scheme::kSimdBp128:
      col.simdbp_ = std::make_shared<format::SimdBp128Encoded>(
          format::SimdBp128Encode(values, count));
      break;
  }
  return col;
}

CompressedColumn CompressedColumn::FromRaw(std::vector<uint32_t> values) {
  CompressedColumn col;
  col.scheme_ = Scheme::kNone;
  col.count_ = static_cast<uint32_t>(values.size());
  col.zone_map_ = std::make_shared<const ZoneMap>(
      ZoneMap::Build(values.data(), values.size()));
  col.raw_ = std::make_shared<std::vector<uint32_t>>(std::move(values));
  return col;
}

CompressedColumn CompressedColumn::FromGpuFor(format::GpuForEncoded encoded,
                                              Scheme scheme) {
  TILECOMP_CHECK(scheme == Scheme::kGpuFor || scheme == Scheme::kGpuBp);
  CompressedColumn col;
  col.scheme_ = scheme;
  col.count_ = encoded.header.total_count;
  col.gpu_for_ = std::make_shared<format::GpuForEncoded>(std::move(encoded));
  return col;
}

CompressedColumn CompressedColumn::FromGpuDFor(format::GpuDForEncoded encoded) {
  CompressedColumn col;
  col.scheme_ = Scheme::kGpuDFor;
  col.count_ = encoded.header.total_count;
  col.gpu_dfor_ =
      std::make_shared<format::GpuDForEncoded>(std::move(encoded));
  return col;
}

CompressedColumn CompressedColumn::FromGpuRFor(format::GpuRForEncoded encoded) {
  CompressedColumn col;
  col.scheme_ = Scheme::kGpuRFor;
  col.count_ = encoded.header.total_count;
  col.gpu_rfor_ =
      std::make_shared<format::GpuRForEncoded>(std::move(encoded));
  return col;
}

CompressedColumn CompressedColumn::FromNsf(format::NsfEncoded encoded) {
  CompressedColumn col;
  col.scheme_ = Scheme::kNsf;
  col.count_ = encoded.total_count;
  col.nsf_ = std::make_shared<format::NsfEncoded>(std::move(encoded));
  return col;
}

CompressedColumn CompressedColumn::FromNsv(format::NsvEncoded encoded) {
  CompressedColumn col;
  col.scheme_ = Scheme::kNsv;
  col.count_ = encoded.total_count;
  col.nsv_ = std::make_shared<format::NsvEncoded>(std::move(encoded));
  return col;
}

CompressedColumn CompressedColumn::FromRle(format::RleEncoded encoded) {
  CompressedColumn col;
  col.scheme_ = Scheme::kRle;
  col.count_ = encoded.total_count;
  col.rle_ = std::make_shared<format::RleEncoded>(std::move(encoded));
  return col;
}

CompressedColumn CompressedColumn::FromSimdBp128(
    format::SimdBp128Encoded encoded) {
  CompressedColumn col;
  col.scheme_ = Scheme::kSimdBp128;
  col.count_ = encoded.total_count;
  col.simdbp_ =
      std::make_shared<format::SimdBp128Encoded>(std::move(encoded));
  return col;
}

uint64_t CompressedColumn::compressed_bytes() const {
  switch (scheme_) {
    case Scheme::kNone:
      return static_cast<uint64_t>(count_) * 4;
    case Scheme::kGpuFor:
    case Scheme::kGpuBp:
      return gpu_for_->compressed_bytes();
    case Scheme::kGpuDFor:
      return gpu_dfor_->compressed_bytes();
    case Scheme::kGpuRFor:
      return gpu_rfor_->compressed_bytes();
    case Scheme::kNsf:
      return nsf_->compressed_bytes();
    case Scheme::kNsv:
      return nsv_->compressed_bytes();
    case Scheme::kRle:
      return rle_->compressed_bytes();
    case Scheme::kSimdBp128:
      return simdbp_->compressed_bytes();
  }
  return 0;
}

std::vector<uint32_t> CompressedColumn::DecodeHost() const {
  switch (scheme_) {
    case Scheme::kNone:
      return *raw_;
    case Scheme::kGpuFor:
    case Scheme::kGpuBp:
      return format::GpuForDecodeHost(*gpu_for_);
    case Scheme::kGpuDFor:
      return format::GpuDForDecodeHost(*gpu_dfor_);
    case Scheme::kGpuRFor:
      return format::GpuRForDecodeHost(*gpu_rfor_);
    case Scheme::kNsf:
      return format::NsfDecodeHost(*nsf_);
    case Scheme::kNsv:
      return format::NsvDecodeHost(*nsv_);
    case Scheme::kRle:
      return format::RleDecodeHost(*rle_);
    case Scheme::kSimdBp128:
      return format::SimdBp128DecodeHost(*simdbp_);
  }
  return {};
}

}  // namespace tilecomp::codec
