// CompressedColumn: the library's central value type. Holds one integer
// column (or dictionary-encoded string column) in one of the supported
// encodings, exposes size/ratio accessors, and hands the underlying encoded
// stream to the simulated kernels.
#ifndef TILECOMP_CODEC_COLUMN_H_
#define TILECOMP_CODEC_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "codec/scheme.h"
#include "common/span.h"
#include "format/gpudfor.h"
#include "format/gpufor.h"
#include "format/gpurfor.h"
#include "format/ns.h"
#include "format/rle.h"
#include "format/simdbp128.h"

namespace tilecomp::codec {

class CompressedColumn {
 public:
  CompressedColumn() = default;

  // Encode the viewed values with the given scheme. For kNone the values
  // are stored verbatim. A std::vector converts implicitly.
  static CompressedColumn Encode(Scheme scheme, U32Span values);
  // Thin forwarding shim for legacy pointer/length call sites.
  static CompressedColumn Encode(Scheme scheme, const uint32_t* values,
                                 size_t count) {
    return Encode(scheme, U32Span(values, count));
  }

  // Wrap already-encoded streams (deserialization, zero-copy adoption).
  // `scheme` for FromGpuFor may be kGpuFor or kGpuBp (same container).
  static CompressedColumn FromRaw(std::vector<uint32_t> values);
  static CompressedColumn FromGpuFor(format::GpuForEncoded encoded,
                                     Scheme scheme = Scheme::kGpuFor);
  static CompressedColumn FromGpuDFor(format::GpuDForEncoded encoded);
  static CompressedColumn FromGpuRFor(format::GpuRForEncoded encoded);
  static CompressedColumn FromNsf(format::NsfEncoded encoded);
  static CompressedColumn FromNsv(format::NsvEncoded encoded);
  static CompressedColumn FromRle(format::RleEncoded encoded);
  static CompressedColumn FromSimdBp128(format::SimdBp128Encoded encoded);

  Scheme scheme() const { return scheme_; }
  uint32_t size() const { return count_; }

  // Compressed footprint in bytes (uncompressed footprint for kNone).
  uint64_t compressed_bytes() const;
  double bits_per_int() const {
    return count_ == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) / count_;
  }
  double compression_ratio() const {
    const uint64_t raw = static_cast<uint64_t>(count_) * 4;
    return compressed_bytes() == 0
               ? 1.0
               : static_cast<double>(raw) / compressed_bytes();
  }

  // Host-side (reference) decode.
  std::vector<uint32_t> DecodeHost() const;

  // Accessors to the underlying encodings; non-null only for the matching
  // scheme. Used by the simulated kernels and the benchmarks.
  const std::vector<uint32_t>* raw() const { return raw_.get(); }
  const format::GpuForEncoded* gpu_for() const { return gpu_for_.get(); }
  const format::GpuDForEncoded* gpu_dfor() const { return gpu_dfor_.get(); }
  const format::GpuRForEncoded* gpu_rfor() const { return gpu_rfor_.get(); }
  const format::NsfEncoded* nsf() const { return nsf_.get(); }
  const format::NsvEncoded* nsv() const { return nsv_.get(); }
  const format::RleEncoded* rle() const { return rle_.get(); }
  const format::SimdBp128Encoded* simdbp() const { return simdbp_.get(); }

 private:
  Scheme scheme_ = Scheme::kNone;
  uint32_t count_ = 0;
  // Exactly one of these is set, matching scheme_. kGpuBp reuses the
  // GpuForEncoded container (zero reference, single miniblock).
  std::shared_ptr<std::vector<uint32_t>> raw_;
  std::shared_ptr<format::GpuForEncoded> gpu_for_;
  std::shared_ptr<format::GpuDForEncoded> gpu_dfor_;
  std::shared_ptr<format::GpuRForEncoded> gpu_rfor_;
  std::shared_ptr<format::NsfEncoded> nsf_;
  std::shared_ptr<format::NsvEncoded> nsv_;
  std::shared_ptr<format::RleEncoded> rle_;
  std::shared_ptr<format::SimdBp128Encoded> simdbp_;
};

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_COLUMN_H_
