// CompressedColumn: the library's central value type. Holds one integer
// column (or dictionary-encoded string column) in one of the supported
// encodings, exposes size/ratio accessors, and hands the underlying encoded
// stream to the simulated kernels.
#ifndef TILECOMP_CODEC_COLUMN_H_
#define TILECOMP_CODEC_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "codec/scheme.h"
#include "codec/zone_map.h"
#include "common/span.h"
#include "format/gpudfor.h"
#include "format/gpufor.h"
#include "format/gpurfor.h"
#include "format/ns.h"
#include "format/rle.h"
#include "format/simdbp128.h"

namespace tilecomp::codec {

class CompressedColumn {
 public:
  CompressedColumn() = default;

  // Encode the viewed values with the given scheme. For kNone the values
  // are stored verbatim. A std::vector converts implicitly. Also builds the
  // column's per-tile/per-block zone map for predicate pushdown.
  static CompressedColumn Encode(Scheme scheme, U32Span values);

  // Wrap already-encoded streams (deserialization, zero-copy adoption).
  // `scheme` for FromGpuFor may be kGpuFor or kGpuBp (same container).
  static CompressedColumn FromRaw(std::vector<uint32_t> values);
  static CompressedColumn FromGpuFor(format::GpuForEncoded encoded,
                                     Scheme scheme = Scheme::kGpuFor);
  static CompressedColumn FromGpuDFor(format::GpuDForEncoded encoded);
  static CompressedColumn FromGpuRFor(format::GpuRForEncoded encoded);
  static CompressedColumn FromNsf(format::NsfEncoded encoded);
  static CompressedColumn FromNsv(format::NsvEncoded encoded);
  static CompressedColumn FromRle(format::RleEncoded encoded);
  static CompressedColumn FromSimdBp128(format::SimdBp128Encoded encoded);

  Scheme scheme() const { return scheme_; }
  uint32_t size() const { return count_; }

  // Compressed footprint in bytes (uncompressed footprint for kNone).
  uint64_t compressed_bytes() const;
  double bits_per_int() const {
    return count_ == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) / count_;
  }
  double compression_ratio() const {
    const uint64_t raw = static_cast<uint64_t>(count_) * 4;
    const uint64_t comp = compressed_bytes();
    // A ratio is only meaningful when both sides are nonzero: an empty
    // column still carries encoding headers (raw == 0, comp > 0 would
    // otherwise report 0x), and a zero-byte encoding of real values would
    // otherwise divide by zero. Both degenerate cases report neutral 1.0.
    return (raw == 0 || comp == 0) ? 1.0
                                   : static_cast<double>(raw) / comp;
  }

  // Host-side (reference) decode.
  std::vector<uint32_t> DecodeHost() const;

  // Accessors to the underlying encodings; non-null only for the matching
  // scheme. Used by the simulated kernels and the benchmarks.
  const std::vector<uint32_t>* raw() const { return raw_.get(); }
  const format::GpuForEncoded* gpu_for() const { return gpu_for_.get(); }
  const format::GpuDForEncoded* gpu_dfor() const { return gpu_dfor_.get(); }
  const format::GpuRForEncoded* gpu_rfor() const { return gpu_rfor_.get(); }
  const format::NsfEncoded* nsf() const { return nsf_.get(); }
  const format::NsvEncoded* nsv() const { return nsv_.get(); }
  const format::RleEncoded* rle() const { return rle_.get(); }
  const format::SimdBp128Encoded* simdbp() const { return simdbp_.get(); }

  // Per-tile/per-block min-max index for predicate pushdown. Built by
  // Encode() and FromRaw(); null for columns adopted from already-encoded
  // streams (the other From* constructors) — those stay correct but cannot
  // prune. Serialized as an optional trailing section (format v2) so a
  // save/load round-trip keeps pruning; v1 files load with a null map.
  const ZoneMap* zone_map() const { return zone_map_.get(); }
  std::shared_ptr<const ZoneMap> shared_zone_map() const { return zone_map_; }
  // Attach an externally built zone map. The serving layer uses this to
  // propagate the stored column's map onto its materialized (kNone) copy so
  // kernel-side pruning decisions match the server's exactly.
  void set_zone_map(std::shared_ptr<const ZoneMap> zm) {
    zone_map_ = std::move(zm);
  }

 private:
  Scheme scheme_ = Scheme::kNone;
  uint32_t count_ = 0;
  // Exactly one of these is set, matching scheme_. kGpuBp reuses the
  // GpuForEncoded container (zero reference, single miniblock).
  std::shared_ptr<std::vector<uint32_t>> raw_;
  std::shared_ptr<format::GpuForEncoded> gpu_for_;
  std::shared_ptr<format::GpuDForEncoded> gpu_dfor_;
  std::shared_ptr<format::GpuRForEncoded> gpu_rfor_;
  std::shared_ptr<format::NsfEncoded> nsf_;
  std::shared_ptr<format::NsvEncoded> nsv_;
  std::shared_ptr<format::RleEncoded> rle_;
  std::shared_ptr<format::SimdBp128Encoded> simdbp_;
  std::shared_ptr<const ZoneMap> zone_map_;
};

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_COLUMN_H_
