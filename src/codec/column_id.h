// Strongly typed column identifier.
//
// Bare uint32_t column ids flowed through three unrelated layers — the
// crystal tile loaders, the serving layer's cache keys and the fault plan's
// per-tile draw keys — and were freely interchangeable with tile ids and
// other integers at every call site (the PR 5 tile-id-truncation bug lived
// exactly in that gap). ColumnId closes the class at the type level: it
// converts only explicitly, so a (column, tile) pair can never be swapped
// or narrowed silently.
#ifndef TILECOMP_CODEC_COLUMN_ID_H_
#define TILECOMP_CODEC_COLUMN_ID_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace tilecomp::codec {

class ColumnId {
 public:
  constexpr ColumnId() = default;
  constexpr explicit ColumnId(uint32_t value) : value_(value) {}

  constexpr uint32_t value() const { return value_; }

  friend constexpr bool operator==(ColumnId a, ColumnId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(ColumnId a, ColumnId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(ColumnId a, ColumnId b) {
    return a.value_ < b.value_;
  }

 private:
  uint32_t value_ = 0;
};

}  // namespace tilecomp::codec

template <>
struct std::hash<tilecomp::codec::ColumnId> {
  size_t operator()(tilecomp::codec::ColumnId id) const noexcept {
    return std::hash<uint32_t>()(id.value());
  }
};

#endif  // TILECOMP_CODEC_COLUMN_ID_H_
