#include "codec/mutable_column.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"
#include "format/packtile.h"

namespace tilecomp::codec {

static_assert(MutableColumn::kTileSize == format::kPackTileMaxValues);
static_assert(MutableColumn::kTileSize == ZoneMap::kTileSize);
static_assert(MutableColumn::kBlockSize == ZoneMap::kBlockSize);

int64_t MutableColumn::HostNowUs() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void MutableColumn::AddListener(Listener* listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.push_back(listener);
}

void MutableColumn::RemoveListener(Listener* listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

int64_t MutableColumn::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

int64_t MutableColumn::num_tiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(tiles_.size());
}

uint32_t MutableColumn::AllocLocked(uint32_t words) {
  TILECOMP_CHECK(words > 0);
  // Best fit: smallest free extent that holds `words`; ties go to the
  // lowest offset (the map iterates in offset order).
  auto best = free_.end();
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < words) continue;
    if (best == free_.end() || it->second < best->second) best = it;
  }
  if (best != free_.end()) {
    const uint32_t offset = best->first;
    const uint32_t len = best->second;
    free_.erase(best);
    if (len > words) free_.emplace(offset + words, len - words);
    return offset;
  }
  // No fit: grow the arena. If a free extent already touches the end, widen
  // it instead of stranding it behind the new allocation.
  uint32_t offset = static_cast<uint32_t>(arena_.size());
  if (!free_.empty()) {
    auto last = std::prev(free_.end());
    if (last->first + last->second == arena_.size()) {
      offset = last->first;
      free_.erase(last);
    }
  }
  TILECOMP_CHECK(static_cast<uint64_t>(offset) + words < kNoExtent);
  arena_.resize(offset + words);
  return offset;
}

void MutableColumn::FreeLocked(uint32_t offset, uint32_t words) {
  if (words == 0) return;
  auto [it, inserted] = free_.emplace(offset, words);
  TILECOMP_CHECK(inserted);
  // Coalesce with the successor, then the predecessor.
  auto next = std::next(it);
  if (next != free_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_.erase(next);
  }
  if (it != free_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_.erase(it);
    }
  }
}

void MutableColumn::BumpGenerationLocked(int64_t tile) {
  const uint64_t gen = ++tiles_[tile].generation;
  for (Listener* l : listeners_) l->OnTileInvalidated(id_, tile, gen);
}

void MutableColumn::AppendZonesLocked(int64_t row, uint32_t value) {
  const size_t t = static_cast<size_t>(row) / kTileSize;
  if (t == tile_mins_.size()) {
    tile_mins_.push_back(value);
    tile_maxs_.push_back(value);
  } else {
    tile_mins_[t] = std::min(tile_mins_[t], value);
    tile_maxs_[t] = std::max(tile_maxs_[t], value);
  }
  const size_t b = static_cast<size_t>(row) / kBlockSize;
  if (b == block_mins_.size()) {
    block_mins_.push_back(value);
    block_maxs_.push_back(value);
  } else {
    block_mins_[b] = std::min(block_mins_[b], value);
    block_maxs_[b] = std::max(block_maxs_[b], value);
  }
}

void MutableColumn::RecomputeTileZonesLocked(int64_t tile,
                                             const uint32_t* values,
                                             uint32_t count) {
  TILECOMP_CHECK(count > 0);
  uint32_t lo = values[0], hi = values[0];
  for (uint32_t i = 1; i < count; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  tile_mins_[tile] = lo;
  tile_maxs_[tile] = hi;
  const size_t first_block =
      static_cast<size_t>(tile) * (kTileSize / kBlockSize);
  for (uint32_t begin = 0; begin < count; begin += kBlockSize) {
    const uint32_t end = std::min(begin + kBlockSize, count);
    uint32_t blo = values[begin], bhi = values[begin];
    for (uint32_t i = begin + 1; i < end; ++i) {
      blo = std::min(blo, values[i]);
      bhi = std::max(bhi, values[i]);
    }
    block_mins_[first_block + begin / kBlockSize] = blo;
    block_maxs_[first_block + begin / kBlockSize] = bhi;
  }
}

void MutableColumn::SealTileLocked(int64_t tile) {
  TileMeta& meta = tiles_[tile];
  auto it = side_buffers_.find(tile);
  TILECOMP_CHECK(meta.dirty && it != side_buffers_.end());
  const std::vector<uint32_t>& values = it->second;
  TILECOMP_CHECK(values.size() == meta.count && meta.count > 0);
  const uint32_t width = format::PackTileWidth(values.data(), meta.count);
  const uint32_t words = format::PackTileWords(meta.count, width);
  const uint32_t offset = AllocLocked(words);
  const uint32_t written =
      format::PackTile(values.data(), meta.count, arena_.data() + offset);
  TILECOMP_CHECK(written == words);
  meta.offset = offset;
  meta.words = words;
  meta.freed_words = 0;
  meta.dirty = false;
  side_buffers_.erase(it);
}

void MutableColumn::Append(U32Span values) {
  if (values.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Tiles whose content changes in this batch; generations bump once per
  // tile at the end, after the batch is fully applied.
  std::vector<int64_t> touched;
  size_t i = 0;
  while (i < values.size()) {
    const int64_t tile = rows_ / kTileSize;
    const uint32_t in_tile = static_cast<uint32_t>(rows_ % kTileSize);
    if (tile == static_cast<int64_t>(tiles_.size())) {
      TILECOMP_CHECK(in_tile == 0);
      tiles_.emplace_back();
      tiles_.back().dirty = true;
      side_buffers_[tile].reserve(kTileSize);
    } else if (!tiles_[tile].dirty) {
      // A previously sealed partial tail (ReencodeDirty encodes the tail
      // too): decode-and-free it back into its side buffer before growing.
      TileMeta& meta = tiles_[tile];
      TILECOMP_CHECK(meta.count == in_tile && meta.offset != kNoExtent);
      std::vector<uint32_t>& buf = side_buffers_[tile];
      buf.resize(meta.count);
      const uint32_t n = format::UnpackPackTile(arena_.data() + meta.offset,
                                                meta.words, buf.data());
      TILECOMP_CHECK(n == meta.count);
      FreeLocked(meta.offset, meta.words);
      meta.freed_words = meta.words;
      meta.offset = kNoExtent;
      meta.words = 0;
      meta.dirty = true;
    }
    TileMeta& meta = tiles_[tile];
    std::vector<uint32_t>& buf = side_buffers_[tile];
    const size_t take =
        std::min<size_t>(values.size() - i, kTileSize - in_tile);
    for (size_t k = 0; k < take; ++k) {
      const uint32_t v = values[i + k];
      buf.push_back(v);
      AppendZonesLocked(rows_, v);
      ++rows_;
    }
    meta.count += static_cast<uint32_t>(take);
    appended_rows_ += take;
    if (touched.empty() || touched.back() != tile) touched.push_back(tile);
    if (meta.count == kTileSize) SealTileLocked(tile);
    i += take;
  }
  for (int64_t tile : touched) BumpGenerationLocked(tile);
}

void MutableColumn::Patch(int64_t row, uint32_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  TILECOMP_CHECK(row >= 0 && row < rows_);
  const int64_t tile = row / kTileSize;
  TileMeta& meta = tiles_[tile];
  if (!meta.dirty) {
    // Decode-and-free: the old extent's words return to the free list now;
    // the tile is served from the side buffer until ReencodeDirty lands.
    std::vector<uint32_t>& buf = side_buffers_[tile];
    buf.resize(meta.count);
    const uint32_t n = format::UnpackPackTile(arena_.data() + meta.offset,
                                              meta.words, buf.data());
    TILECOMP_CHECK(n == meta.count);
    FreeLocked(meta.offset, meta.words);
    meta.freed_words = meta.words;
    meta.offset = kNoExtent;
    meta.words = 0;
    meta.dirty = true;
  }
  std::vector<uint32_t>& buf = side_buffers_[tile];
  buf[static_cast<size_t>(row % kTileSize)] = value;
  RecomputeTileZonesLocked(tile, buf.data(), meta.count);
  ++patches_;
  BumpGenerationLocked(tile);
}

uint32_t MutableColumn::At(int64_t row) const {
  std::lock_guard<std::mutex> lock(mu_);
  TILECOMP_CHECK(row >= 0 && row < rows_);
  const int64_t tile = row / kTileSize;
  const uint32_t in_tile = static_cast<uint32_t>(row % kTileSize);
  const TileMeta& meta = tiles_[tile];
  if (meta.dirty) return side_buffers_.at(tile)[in_tile];
  format::PackTileHeader h;
  TILECOMP_CHECK(format::ParsePackTileHeader(arena_.data() + meta.offset,
                                             meta.words, &h));
  return format::PackTileValueAt(arena_.data() + meta.offset, h, in_tile);
}

size_t MutableColumn::ReencodeDirty(ThreadPool* pool) {
  struct Job {
    int64_t tile = 0;
    uint64_t generation = 0;
    uint32_t count = 0;
    uint32_t old_words = 0;
    int64_t start_us = 0;
    std::vector<uint32_t> values;
    std::vector<uint32_t> encoded;
  };
  std::vector<Job> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs.reserve(side_buffers_.size());
    for (const auto& [tile, values] : side_buffers_) {
      const TileMeta& meta = tiles_[tile];
      TILECOMP_CHECK(meta.dirty);
      Job job;
      job.tile = tile;
      job.generation = meta.generation;
      job.count = meta.count;
      job.old_words = meta.freed_words;
      job.start_us = HostNowUs();
      job.values = values;  // copy: encode runs outside the lock
      jobs.push_back(std::move(job));
    }
  }
  if (jobs.empty()) return 0;

  const auto encode = [&jobs](size_t i) {
    Job& job = jobs[i];
    const uint32_t width =
        format::PackTileWidth(job.values.data(), job.count);
    job.encoded.resize(format::PackTileWords(job.count, width));
    const uint32_t written = format::PackTile(job.values.data(), job.count,
                                              job.encoded.data());
    TILECOMP_CHECK(written == job.encoded.size());
  };
  if (pool != nullptr) {
    // Note: must not be the pool this call itself runs on — ParallelFor
    // waits, and a worker waiting on its own pool deadlocks. Background
    // callers Submit(ReencodeDirty(nullptr)) instead.
    pool->ParallelFor(jobs.size(), encode);
  } else {
    for (size_t i = 0; i < jobs.size(); ++i) encode(i);
  }

  size_t committed = 0;
  for (Job& job : jobs) {
    std::lock_guard<std::mutex> lock(mu_);
    TileMeta& meta = tiles_[job.tile];
    if (meta.generation != job.generation) {
      // Patched (or grown) again since the snapshot: this encode is stale.
      // The side buffer is still the truth; the next pass retries.
      ++reencode_retries_;
      continue;
    }
    const uint32_t words = static_cast<uint32_t>(job.encoded.size());
    const uint32_t offset = AllocLocked(words);
    std::memcpy(arena_.data() + offset, job.encoded.data(),
                static_cast<size_t>(words) * 4);
    meta.offset = offset;
    meta.words = words;
    meta.freed_words = 0;
    meta.dirty = false;
    side_buffers_.erase(job.tile);
    ++reencodes_;
    ++committed;
    // The encoding changed homes: invalidate so no cache entry keyed to the
    // pre-re-encode generation survives (content-identical, but a racing
    // demand-load of the freed extent must not be able to re-insert).
    BumpGenerationLocked(job.tile);
    ReencodeRecord rec;
    rec.tile = job.tile;
    rec.generation = meta.generation;
    rec.old_words = job.old_words;
    rec.new_words = words;
    rec.start_us = job.start_us;
    rec.end_us = HostNowUs();
    reencode_log_.push_back(rec);
  }
  return committed;
}

uint64_t MutableColumn::Compact(double threshold) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t live = LiveWordsLocked();
  const uint64_t arena = arena_.size();
  if (live > 0 && threshold > 1.0 &&
      static_cast<double>(arena) <= threshold * static_cast<double>(live)) {
    return 0;
  }
  if (arena == live) return 0;  // already tight (covers live == 0, empty)
  // Slide live extents down in offset order. Offsets only decrease, so a
  // plain forward pass never overwrites an unmoved extent.
  std::vector<int64_t> live_tiles;
  live_tiles.reserve(tiles_.size());
  for (size_t t = 0; t < tiles_.size(); ++t) {
    if (tiles_[t].offset != kNoExtent) live_tiles.push_back(t);
  }
  std::sort(live_tiles.begin(), live_tiles.end(), [&](int64_t a, int64_t b) {
    return tiles_[a].offset < tiles_[b].offset;
  });
  uint32_t write = 0;
  for (int64_t t : live_tiles) {
    TileMeta& meta = tiles_[t];
    if (meta.offset != write) {
      std::memmove(arena_.data() + write, arena_.data() + meta.offset,
                   static_cast<size_t>(meta.words) * 4);
      meta.offset = write;
    }
    write += meta.words;
  }
  TILECOMP_CHECK(write == live);
  arena_.resize(write);
  arena_.shrink_to_fit();
  free_.clear();
  ++compactions_;
  return arena - write;
}

uint32_t MutableColumn::DecodeTileLocked(int64_t tile, uint32_t* out) const {
  const TileMeta& meta = tiles_[tile];
  if (meta.dirty) {
    const std::vector<uint32_t>& buf = side_buffers_.at(tile);
    std::memcpy(out, buf.data(), buf.size() * 4);
    return meta.count;
  }
  const uint32_t n = format::UnpackPackTile(arena_.data() + meta.offset,
                                            meta.words, out);
  TILECOMP_CHECK(n == meta.count);
  return n;
}

bool MutableColumn::SnapshotTile(int64_t tile, TileSnapshot* snap) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tile < 0 || tile >= static_cast<int64_t>(tiles_.size())) return false;
  const TileMeta& meta = tiles_[tile];
  snap->generation = meta.generation;
  snap->count = meta.count;
  snap->from_side_buffer = meta.dirty;
  snap->extent.clear();
  snap->values.clear();
  if (meta.dirty) {
    snap->values = side_buffers_.at(tile);
  } else {
    snap->extent.assign(arena_.begin() + meta.offset,
                        arena_.begin() + meta.offset + meta.words);
  }
  return true;
}

uint32_t MutableColumn::ReadTile(int64_t tile, uint32_t* out,
                                 uint64_t* generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tile < 0 || tile >= static_cast<int64_t>(tiles_.size())) return 0;
  if (generation != nullptr) *generation = tiles_[tile].generation;
  return DecodeTileLocked(tile, out);
}

uint64_t MutableColumn::tile_generation(int64_t tile) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tile < 0 || tile >= static_cast<int64_t>(tiles_.size())) return 0;
  return tiles_[tile].generation;
}

bool MutableColumn::TileBounds(int64_t tile, uint32_t* lo,
                               uint32_t* hi) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tile < 0 || tile >= static_cast<int64_t>(tile_mins_.size())) {
    return false;
  }
  *lo = tile_mins_[tile];
  *hi = tile_maxs_[tile];
  return true;
}

std::shared_ptr<const ZoneMap> MutableColumn::SnapshotZoneMap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::make_shared<const ZoneMap>(
      ZoneMap::FromParts(tile_mins_, tile_maxs_, block_mins_, block_maxs_));
}

std::vector<uint32_t> MutableColumn::DecodeHost() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> out(static_cast<size_t>(rows_));
  uint32_t tile_buf[kTileSize];
  size_t pos = 0;
  for (size_t t = 0; t < tiles_.size(); ++t) {
    const uint32_t n = DecodeTileLocked(static_cast<int64_t>(t), tile_buf);
    std::memcpy(out.data() + pos, tile_buf, static_cast<size_t>(n) * 4);
    pos += n;
  }
  TILECOMP_CHECK(pos == out.size());
  return out;
}

uint64_t MutableColumn::LiveWordsLocked() const {
  uint64_t live = 0;
  for (const TileMeta& meta : tiles_) {
    if (meta.offset != kNoExtent) live += meta.words;
  }
  return live;
}

MutableColumn::Stats MutableColumn::StatsLocked() const {
  Stats s;
  s.rows = static_cast<uint64_t>(rows_);
  s.tiles = tiles_.size();
  s.arena_words = arena_.size();
  s.live_words = LiveWordsLocked();
  for (const auto& [offset, words] : free_) {
    (void)offset;
    s.free_words += words;
    ++s.free_extents;
  }
  s.dirty_tiles = side_buffers_.size();
  for (const auto& [tile, buf] : side_buffers_) {
    (void)tile;
    s.side_buffer_words += buf.size();
  }
  s.reencodes = reencodes_;
  s.reencode_retries = reencode_retries_;
  s.compactions = compactions_;
  s.patches = patches_;
  s.appended_rows = appended_rows_;
  s.space_amplification =
      s.live_words == 0 ? 1.0
                        : static_cast<double>(s.arena_words) /
                              static_cast<double>(s.live_words);
  return s;
}

MutableColumn::Stats MutableColumn::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StatsLocked();
}

std::vector<MutableColumn::ReencodeRecord> MutableColumn::TakeReencodeLog() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReencodeRecord> log;
  log.swap(reencode_log_);
  return log;
}

}  // namespace tilecomp::codec
