// MutableColumn: a variable-rate, mutable tile store for streaming ingest
// and in-place updates — the zfp tile2 idiom (per-tile bit budgets, a
// free-list allocator over compressed storage, decode-and-free) specialized
// to integer frame-of-reference tiles.
//
// Storage model. Every 512-value tile is an independently encoded
// format::PackTile extent living in one word arena managed by a best-fit
// free list. Append() stages the partial tail tile in a decoded side buffer
// and seals it into an extent when it fills; Patch() decodes the owning
// tile into a side buffer, frees its extent immediately (decode-and-free:
// the words are reusable before the re-encode lands), and marks the tile
// dirty. ReencodeDirty() re-encodes dirty tiles at their new bit width into
// best-fit free extents — off the caller's thread when given a ThreadPool —
// and Compact() rewrites all live extents contiguously when fragmentation
// exceeds a threshold.
//
// Consistency model. One mutex orders all mutations. Readers take per-tile
// snapshots (SnapshotTile) under the lock, so a reader never observes a
// half-applied mutation of a tile; cross-tile consistency is by row-count
// snapshot (appends only grow the tail, so rows < a snapshotted size() are
// stable positions). Every content or encoding change bumps the tile's
// generation counter and notifies listeners while the lock is held — the
// serving layer uses the generation to invalidate cached decodes and to
// refuse stale re-inserts from racing demand-loads (see
// serve::TileCache::InvalidateStale). Lock order is column → cache; no
// cache path calls back into the column.
//
// Zone maps. Per-tile and per-128-block min/max entries are maintained
// eagerly: extended on append, recomputed exactly for a tile on patch — so
// predicate pushdown never prunes against stale bounds. SnapshotZoneMap()
// materializes a codec::ZoneMap copy for immutable consumers.
#ifndef TILECOMP_CODEC_MUTABLE_COLUMN_H_
#define TILECOMP_CODEC_MUTABLE_COLUMN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "codec/column_id.h"
#include "codec/zone_map.h"
#include "common/span.h"
#include "common/thread_pool.h"

namespace tilecomp::codec {

class MutableColumn {
 public:
  static constexpr uint32_t kTileSize = 512;
  static constexpr uint32_t kBlockSize = 128;  // zone-map block granularity
  static constexpr uint32_t kNoExtent = 0xFFFFFFFFu;

  // Content-independent per-call storage snapshot.
  struct Stats {
    uint64_t rows = 0;
    uint64_t tiles = 0;
    uint64_t arena_words = 0;
    uint64_t live_words = 0;       // words inside live extents
    uint64_t free_words = 0;       // words on the free list
    uint64_t free_extents = 0;     // free-list fragments
    uint64_t dirty_tiles = 0;      // side-buffered, awaiting re-encode
    uint64_t side_buffer_words = 0;
    uint64_t reencodes = 0;        // lifetime committed re-encodes
    uint64_t reencode_retries = 0; // commits skipped: tile patched again
    uint64_t compactions = 0;
    uint64_t patches = 0;
    uint64_t appended_rows = 0;
    // arena_words / live_words; 1.0 while no extent is live. Dirty tiles
    // hold no extent, so a freshly patched store can legitimately dip
    // below 1.0 worth of live words — the bench measures after
    // ReencodeDirty() has drained.
    double space_amplification = 1.0;
  };

  // One committed background re-encode, for trace v10 reencode spans.
  // Timestamps are microseconds on the host steady clock, from the same
  // epoch as HostNowUs().
  struct ReencodeRecord {
    int64_t tile = 0;
    uint64_t generation = 0;  // tile generation after the commit
    uint32_t old_words = 0;   // extent size freed at Patch() time
    uint32_t new_words = 0;   // best-fit extent written
    int64_t start_us = 0;
    int64_t end_us = 0;
  };

  // Reader-side per-tile snapshot: either the encoded extent (clean tile)
  // or the decoded side buffer (dirty/tail tile). Taken under the column
  // lock; owns its storage so the reader touches no shared state after.
  struct TileSnapshot {
    uint64_t generation = 0;
    uint32_t count = 0;
    bool from_side_buffer = false;
    std::vector<uint32_t> extent;  // encoded words; empty iff side buffer
    std::vector<uint32_t> values;  // decoded; empty iff extent
  };

  // Invalidation hook, called with the column lock held immediately after a
  // tile's generation advances. Implementations must not call back into the
  // column and must not block (the TileCache's own mutex is fine — lock
  // order is column → cache, never the reverse).
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void OnTileInvalidated(ColumnId column, int64_t tile,
                                   uint64_t generation) = 0;
  };

  explicit MutableColumn(ColumnId id = ColumnId(0)) : id_(id) {}

  ColumnId id() const { return id_; }

  void AddListener(Listener* listener);
  void RemoveListener(Listener* listener);

  int64_t size() const;
  int64_t num_tiles() const;

  // Append values at the tail. Fills the staged tail tile, sealing full
  // tiles into encoded extents as they complete.
  void Append(U32Span values);

  // Point-update row (must be < size()). Decodes the owning tile into its
  // side buffer if needed, frees the old extent, applies the update,
  // recomputes the tile's zone entries, bumps the generation.
  void Patch(int64_t row, uint32_t value);

  // Random access (reference/host path; decodes nothing persistent).
  uint32_t At(int64_t row) const;

  // Re-encode dirty tiles into best-fit free extents. Encoding runs on
  // `pool` (nullptr: caller's thread). A tile patched again between the
  // snapshot and the commit keeps its side buffer and is retried on the
  // next call. Returns the number of tiles committed.
  size_t ReencodeDirty(ThreadPool* pool = nullptr);

  // Rewrite live extents contiguously if space amplification exceeds
  // `threshold` (always when threshold <= 1.0). Returns words reclaimed.
  // Moves bytes only — generations do not advance and cached decodes stay
  // valid.
  uint64_t Compact(double threshold = 1.0);

  // Per-tile consistent snapshot for the serving layer. Returns false for
  // an out-of-range tile.
  bool SnapshotTile(int64_t tile, TileSnapshot* snap) const;

  // Host decode of one tile into out[kTileSize]; returns the value count
  // (0 if out of range). Optionally reports the tile's generation.
  uint32_t ReadTile(int64_t tile, uint32_t* out,
                    uint64_t* generation = nullptr) const;

  uint64_t tile_generation(int64_t tile) const;

  // Current (never stale) bounds of one tile, for pushdown pruning.
  bool TileBounds(int64_t tile, uint32_t* lo, uint32_t* hi) const;

  // Immutable copy of the live zone map (tile + block granularity).
  std::shared_ptr<const ZoneMap> SnapshotZoneMap() const;

  // Full host-side decode (reference path for tests and benches).
  std::vector<uint32_t> DecodeHost() const;

  Stats GetStats() const;

  // Drain the committed-re-encode log (for trace emission).
  std::vector<ReencodeRecord> TakeReencodeLog();

  // Microseconds on the process-wide steady-clock epoch used by
  // ReencodeRecord timestamps.
  static int64_t HostNowUs();

 private:
  friend std::vector<uint8_t> SerializeMutable(const MutableColumn& column);
  friend bool DeserializeMutable(const uint8_t* data, size_t size,
                                 MutableColumn* column);

  struct TileMeta {
    uint32_t offset = kNoExtent;  // word offset into arena_, or kNoExtent
    uint32_t words = 0;           // extent size (0 iff offset == kNoExtent)
    uint32_t count = 0;           // values in the tile (512 except the tail)
    uint32_t freed_words = 0;     // extent freed at Patch() time (for logs)
    uint64_t generation = 1;
    bool dirty = false;  // decoded truth lives in side_buffers_[tile]
  };

  // All private helpers below require mu_ held.
  uint32_t AllocLocked(uint32_t words);
  void FreeLocked(uint32_t offset, uint32_t words);
  void SealTileLocked(int64_t tile);
  void BumpGenerationLocked(int64_t tile);
  void RecomputeTileZonesLocked(int64_t tile, const uint32_t* values,
                                uint32_t count);
  void AppendZonesLocked(int64_t row, uint32_t value);
  uint32_t DecodeTileLocked(int64_t tile, uint32_t* out) const;
  uint64_t LiveWordsLocked() const;
  Stats StatsLocked() const;

  ColumnId id_;  // reassigned only by DeserializeMutable

  mutable std::mutex mu_;
  std::vector<uint32_t> arena_;
  // Free extents, offset → words; coalesced on insertion. Invariant: live
  // extents and free extents exactly partition [0, arena_.size()).
  std::map<uint32_t, uint32_t> free_;
  std::vector<TileMeta> tiles_;
  // Decoded truth for dirty tiles and the staged partial tail.
  std::unordered_map<int64_t, std::vector<uint32_t>> side_buffers_;
  int64_t rows_ = 0;

  // Eagerly maintained zone entries (see header comment).
  std::vector<uint32_t> tile_mins_, tile_maxs_;
  std::vector<uint32_t> block_mins_, block_maxs_;

  std::vector<Listener*> listeners_;
  std::vector<ReencodeRecord> reencode_log_;

  uint64_t reencodes_ = 0;
  uint64_t reencode_retries_ = 0;
  uint64_t compactions_ = 0;
  uint64_t patches_ = 0;
  uint64_t appended_rows_ = 0;
};

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_MUTABLE_COLUMN_H_
