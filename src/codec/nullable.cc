#include "codec/nullable.h"

#include "common/macros.h"

namespace tilecomp::codec {

NullableColumn NullableColumn::Encode(const std::vector<uint32_t>& values,
                                      const std::vector<uint8_t>& validity) {
  TILECOMP_CHECK(values.size() == validity.size());
  NullableColumn col;

  // Forward-fill null slots so they compress as run extensions instead of
  // widening the miniblock; the validity column restores them as nulls.
  std::vector<uint32_t> filled(values.size());
  std::vector<uint32_t> valid_words(values.size());
  uint32_t last_valid = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (validity[i]) {
      last_valid = values[i];
    } else {
      ++col.null_count_;
    }
    filled[i] = last_valid;
    valid_words[i] = validity[i] ? 1 : 0;
  }

  col.values_ = EncodeGpuStar(filled);
  col.validity_ =
      CompressedColumn::Encode(Scheme::kGpuRFor, valid_words);
  return col;
}

std::vector<std::optional<uint32_t>> NullableColumn::DecodeHost() const {
  std::vector<uint32_t> values = values_.DecodeHost();
  std::vector<uint32_t> validity = validity_.DecodeHost();
  std::vector<std::optional<uint32_t>> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (validity[i]) out[i] = values[i];
  }
  return out;
}

}  // namespace tilecomp::codec
