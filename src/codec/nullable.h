// Nullable column support. Column stores ship a validity structure next to
// the values; here validity is a 0/1 integer column compressed with
// GPU-RFOR (null patterns are clustered in practice, so the run-length
// cascade collapses it), and null slots are filled with the previous valid
// value before value compression so they never widen a miniblock.
#ifndef TILECOMP_CODEC_NULLABLE_H_
#define TILECOMP_CODEC_NULLABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "codec/column.h"
#include "codec/stats.h"

namespace tilecomp::codec {

class NullableColumn {
 public:
  // validity[i] != 0 means values[i] is valid. values at null positions are
  // ignored.
  static NullableColumn Encode(const std::vector<uint32_t>& values,
                               const std::vector<uint8_t>& validity);

  uint32_t size() const { return values_.size(); }
  uint32_t null_count() const { return null_count_; }
  uint64_t compressed_bytes() const {
    return values_.compressed_bytes() + validity_.compressed_bytes();
  }

  const CompressedColumn& values() const { return values_; }
  const CompressedColumn& validity() const { return validity_; }

  // Decode to optionals (host reference path).
  std::vector<std::optional<uint32_t>> DecodeHost() const;

 private:
  CompressedColumn values_;
  CompressedColumn validity_;  // 0/1 per row
  uint32_t null_count_ = 0;
};

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_NULLABLE_H_
