#include "codec/nvcomp_like.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/macros.h"
#include "format/bitpack.h"

namespace tilecomp::codec {

namespace {

// Pack `seq` with a signed frame of reference and a single bit width.
// Returns (reference, bits); appends packed words to out.
std::pair<uint32_t, uint32_t> PackWithFor(const std::vector<uint32_t>& seq,
                                          std::vector<uint32_t>* out) {
  if (seq.empty()) return {0, 0};
  int32_t reference = static_cast<int32_t>(seq[0]);
  for (uint32_t v : seq) {
    reference = std::min(reference, static_cast<int32_t>(v));
  }
  uint32_t max_off = 0;
  for (uint32_t v : seq) {
    max_off = std::max(max_off, v - static_cast<uint32_t>(reference));
  }
  const uint32_t bits = tilecomp::BitsNeeded(max_off);
  format::BitWriter writer(out);
  for (uint32_t v : seq) {
    writer.Append((v - static_cast<uint32_t>(reference)) & LowMask(bits),
                  bits);
  }
  writer.AlignToWord();
  return {static_cast<uint32_t>(reference), bits};
}

std::vector<uint32_t> UnpackWithFor(const uint32_t* words, uint32_t count,
                                    uint32_t reference, uint32_t bits) {
  std::vector<uint32_t> out(count);
  uint64_t bit_index = 0;
  for (uint32_t i = 0; i < count; ++i) {
    out[i] = reference + format::UnpackBits(words, bit_index, bits);
    bit_index += bits;
  }
  return out;
}

}  // namespace

NvcompEncoded NvcompEncodeWith(const uint32_t* values, size_t count,
                               NvcompCascadeConfig config) {
  TILECOMP_CHECK(count <= 0xFFFFFFFFull);
  NvcompEncoded enc;
  enc.total_count = static_cast<uint32_t>(count);
  enc.config = config;

  const uint32_t psize = enc.partition_size;
  const uint32_t parts = enc.num_partitions();
  std::vector<uint32_t> vals;
  std::vector<uint32_t> lens;

  for (uint32_t p = 0; p < parts; ++p) {
    enc.partition_starts.push_back(static_cast<uint32_t>(enc.data.size()));
    const size_t begin = static_cast<size_t>(p) * psize;
    const size_t len = std::min<size_t>(psize, count - begin);

    // Layer 1 (optional): RLE.
    vals.clear();
    lens.clear();
    if (config.use_rle) {
      size_t i = 0;
      while (i < len) {
        const uint32_t v = values[begin + i];
        size_t j = i + 1;
        while (j < len && values[begin + j] == v) ++j;
        vals.push_back(v);
        lens.push_back(static_cast<uint32_t>(j - i));
        i = j;
      }
    } else {
      vals.assign(values + begin, values + begin + len);
    }

    // Layer 2 (optional): Delta over the value stream (wrapping).
    uint32_t first_value = vals.empty() ? 0 : vals[0];
    if (config.use_delta && !vals.empty()) {
      for (size_t i = vals.size() - 1; i > 0; --i) {
        vals[i] -= vals[i - 1];
      }
      vals[0] = 0;
    }

    // Layer 3: bit-packing with per-partition FOR.
    const size_t header_at = enc.data.size();
    enc.data.insert(enc.data.end(), 16, 0);  // fixed chunk metadata block
    auto [vref, vbits] = PackWithFor(vals, &enc.data);
    uint32_t lref = 0;
    uint32_t lbits = 0;
    if (config.use_rle) {
      auto packed = PackWithFor(lens, &enc.data);
      lref = packed.first;
      lbits = packed.second;
    }
    enc.data[header_at + 0] = static_cast<uint32_t>(len);
    enc.data[header_at + 1] = static_cast<uint32_t>(vals.size());
    enc.data[header_at + 2] = first_value;
    enc.data[header_at + 3] = vref;
    enc.data[header_at + 4] = vbits;
    enc.data[header_at + 5] = lref;
    enc.data[header_at + 6] = lbits;
    enc.data[header_at + 7] = 0;  // reserved / format version
  }
  enc.partition_starts.push_back(static_cast<uint32_t>(enc.data.size()));
  return enc;
}

NvcompEncoded NvcompEncode(const uint32_t* values, size_t count) {
  NvcompEncoded best;
  bool have = false;
  for (bool rle : {false, true}) {
    for (bool delta : {false, true}) {
      NvcompCascadeConfig config;
      config.use_rle = rle;
      config.use_delta = delta;
      NvcompEncoded candidate = NvcompEncodeWith(values, count, config);
      if (!have || candidate.compressed_bytes() < best.compressed_bytes()) {
        best = std::move(candidate);
        have = true;
      }
    }
  }
  return best;
}

std::vector<uint32_t> NvcompDecodeHost(const NvcompEncoded& enc) {
  std::vector<uint32_t> out;
  out.reserve(enc.total_count);
  const uint32_t parts = enc.num_partitions();
  for (uint32_t p = 0; p < parts; ++p) {
    const uint32_t* part = enc.data.data() + enc.partition_starts[p];
    const uint32_t len = part[0];
    const uint32_t nvals = part[1];
    const uint32_t first_value = part[2];
    const uint32_t vref = part[3];
    const uint32_t vbits = part[4];
    const uint32_t lref = part[5];
    const uint32_t lbits = part[6];
    const uint32_t* payload = part + 16;

    std::vector<uint32_t> vals = UnpackWithFor(payload, nvals, vref, vbits);
    const uint32_t vwords =
        static_cast<uint32_t>(CeilDiv<uint64_t>(
            static_cast<uint64_t>(nvals) * vbits, 32));

    if (enc.config.use_delta && !vals.empty()) {
      vals[0] = first_value;
      for (size_t i = 1; i < vals.size(); ++i) vals[i] += vals[i - 1];
    }
    if (enc.config.use_rle) {
      std::vector<uint32_t> lens =
          UnpackWithFor(payload + vwords, nvals, lref, lbits);
      for (uint32_t r = 0; r < nvals; ++r) {
        out.insert(out.end(), lens[r], vals[r]);
      }
    } else {
      out.insert(out.end(), vals.begin(), vals.end());
    }
    (void)len;
  }
  TILECOMP_CHECK(out.size() == enc.total_count);
  return out;
}

}  // namespace tilecomp::codec
