// A reimplementation of the nvCOMP cascaded-compression format family
// (the "nvCOMP" baseline of Section 9.4).
//
// nvCOMP's cascaded scheme compresses fixed-size partitions independently
// with a configurable pipeline of RLE and Delta layers followed by
// bit-packing (with a per-partition frame of reference). Unlike GPU-*:
//   - each packed stream uses a single bit width per 1024-value partition
//     (no 32-value miniblocks), so one skewed value widens the whole
//     partition;
//   - per-partition metadata is heavier (a fixed 16-word header per
//     partition);
//   - decompression runs one kernel per cascade layer with global-memory
//     intermediates — it cannot fuse layers or inline into query execution.
#ifndef TILECOMP_CODEC_NVCOMP_LIKE_H_
#define TILECOMP_CODEC_NVCOMP_LIKE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tilecomp::codec {

struct NvcompCascadeConfig {
  bool use_rle = false;
  bool use_delta = false;
  // Bit-packing is always the final layer, as in nvCOMP's cascaded default.
};

struct NvcompEncoded {
  uint32_t total_count = 0;
  uint32_t partition_size = 1024;
  NvcompCascadeConfig config;
  // Word offsets of each partition (num_partitions + 1).
  std::vector<uint32_t> partition_starts;
  // Per partition: a 16-word header (cascade flags, layer offsets/sizes,
  // run count, first value, references, bit widths — modeling nvCOMP's
  // per-chunk CascadedMetadata), then the packed value stream and, for RLE
  // configs, the packed run-length stream.
  std::vector<uint32_t> data;

  uint32_t num_partitions() const {
    return partition_size == 0
               ? 0
               : static_cast<uint32_t>(
                     (static_cast<uint64_t>(total_count) + partition_size - 1) /
                     partition_size);
  }
  uint64_t compressed_bytes() const {
    return 16 + (partition_starts.size() + data.size()) * 4;
  }
  double bits_per_int() const {
    return total_count == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) / total_count;
  }
  // Kernel passes required by layer-at-a-time decompression: 1 (bitpack) +
  // 1 per delta layer + 3 per RLE layer (scan, scatter, gather/propagate),
  // and an extra bit-unpack pass for the RLE length stream.
  int decompression_passes() const {
    int passes = 1;
    if (config.use_rle) passes += 1 + 3;
    if (config.use_delta) passes += 1;
    return passes;
  }
};

// Encode with a fixed cascade config.
NvcompEncoded NvcompEncodeWith(const uint32_t* values, size_t count,
                               NvcompCascadeConfig config);

// nvCOMP auto-selection: try all four cascade configs, keep the smallest
// (this is what nvCOMP's cascaded-selector does).
NvcompEncoded NvcompEncode(const uint32_t* values, size_t count);

std::vector<uint32_t> NvcompDecodeHost(const NvcompEncoded& encoded);

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_NVCOMP_LIKE_H_
