#include "codec/parallel_encode.h"

#include <algorithm>
#include <vector>

#include "common/bit_util.h"
#include "common/macros.h"
#include "common/thread_pool.h"

namespace tilecomp::codec {

namespace {

// Segment boundaries aligned to `unit` values; ~4 segments per pool thread
// for load balance.
std::vector<std::pair<size_t, size_t>> Segments(size_t count, size_t unit) {
  std::vector<std::pair<size_t, size_t>> segments;
  if (count == 0) return segments;
  const size_t threads = ThreadPool::Global().num_threads();
  const size_t target = std::max<size_t>(
      unit, RoundUp<size_t>(count / (threads * 4 + 1) + 1, unit));
  for (size_t begin = 0; begin < count; begin += target) {
    segments.emplace_back(begin, std::min(begin + target, count));
  }
  return segments;
}

}  // namespace

format::GpuForEncoded ParallelGpuForEncode(
    U32Span span, const format::GpuForOptions& options) {
  const uint32_t* values = span.data();
  const size_t count = span.size();
  auto segments = Segments(count, options.block_size);
  if (segments.size() <= 1) return format::GpuForEncode(values, count, options);

  std::vector<format::GpuForEncoded> parts(segments.size());
  ThreadPool::Global().ParallelFor(segments.size(), [&](size_t i) {
    parts[i] = format::GpuForEncode(values + segments[i].first,
                                    segments[i].second - segments[i].first,
                                    options);
  });

  format::GpuForEncoded out;
  out.header.total_count = static_cast<uint32_t>(count);
  out.header.block_size = options.block_size;
  out.header.miniblock_count = options.miniblock_count;
  for (const auto& part : parts) {
    const uint32_t base = static_cast<uint32_t>(out.data.size());
    // Each part's final block-start is its sentinel; skip it, the next
    // part's starts (or the final sentinel) continue the sequence.
    for (size_t b = 0; b + 1 < part.block_starts.size(); ++b) {
      out.block_starts.push_back(base + part.block_starts[b]);
    }
    out.data.insert(out.data.end(), part.data.begin(), part.data.end());
  }
  out.block_starts.push_back(static_cast<uint32_t>(out.data.size()));
  return out;
}

format::GpuDForEncoded ParallelGpuDForEncode(
    U32Span span, const format::GpuDForOptions& options) {
  const uint32_t* values = span.data();
  const size_t count = span.size();
  const size_t unit =
      static_cast<size_t>(options.block_size) * options.blocks_per_tile;
  auto segments = Segments(count, unit);
  if (segments.size() <= 1) {
    return format::GpuDForEncode(values, count, options);
  }

  std::vector<format::GpuDForEncoded> parts(segments.size());
  ThreadPool::Global().ParallelFor(segments.size(), [&](size_t i) {
    parts[i] = format::GpuDForEncode(values + segments[i].first,
                                     segments[i].second - segments[i].first,
                                     options);
  });

  format::GpuDForEncoded out;
  out.header.total_count = static_cast<uint32_t>(count);
  out.header.block_size = options.block_size;
  out.header.miniblock_count = options.miniblock_count;
  out.header.blocks_per_tile = options.blocks_per_tile;
  for (const auto& part : parts) {
    const uint32_t base = static_cast<uint32_t>(out.data.size());
    for (size_t b = 0; b + 1 < part.block_starts.size(); ++b) {
      out.block_starts.push_back(base + part.block_starts[b]);
    }
    out.data.insert(out.data.end(), part.data.begin(), part.data.end());
    out.first_values.insert(out.first_values.end(), part.first_values.begin(),
                            part.first_values.end());
  }
  out.block_starts.push_back(static_cast<uint32_t>(out.data.size()));
  return out;
}

format::GpuRForEncoded ParallelGpuRForEncode(
    U32Span span, const format::GpuRForOptions& options) {
  const uint32_t* values = span.data();
  const size_t count = span.size();
  auto segments = Segments(count, options.block_size);
  if (segments.size() <= 1) {
    return format::GpuRForEncode(values, count, options);
  }

  std::vector<format::GpuRForEncoded> parts(segments.size());
  ThreadPool::Global().ParallelFor(segments.size(), [&](size_t i) {
    parts[i] = format::GpuRForEncode(values + segments[i].first,
                                     segments[i].second - segments[i].first,
                                     options);
  });

  format::GpuRForEncoded out;
  out.header.total_count = static_cast<uint32_t>(count);
  out.header.block_size = options.block_size;
  for (const auto& part : parts) {
    const uint32_t vbase = static_cast<uint32_t>(out.value_data.size());
    const uint32_t lbase = static_cast<uint32_t>(out.length_data.size());
    for (size_t b = 0; b + 1 < part.value_block_starts.size(); ++b) {
      out.value_block_starts.push_back(vbase + part.value_block_starts[b]);
      out.length_block_starts.push_back(lbase + part.length_block_starts[b]);
    }
    out.value_data.insert(out.value_data.end(), part.value_data.begin(),
                          part.value_data.end());
    out.length_data.insert(out.length_data.end(), part.length_data.begin(),
                           part.length_data.end());
  }
  out.value_block_starts.push_back(
      static_cast<uint32_t>(out.value_data.size()));
  out.length_block_starts.push_back(
      static_cast<uint32_t>(out.length_data.size()));
  return out;
}

}  // namespace tilecomp::codec
