// Multi-threaded host-side encoders (Section 8, "Compression Speed": in
// analytics workloads compression is a one-time activity that happens on
// the CPU side; on updates the data is recompressed and re-shipped).
//
// The input is split into segments aligned to the format's independence
// boundary (GPU-FOR blocks, GPU-DFOR tiles, GPU-RFOR blocks), each segment
// is encoded on a pool thread, and the per-segment streams are stitched
// (block starts rebased onto the concatenated data array). The result is
// bit-identical to the single-threaded encoder.
#ifndef TILECOMP_CODEC_PARALLEL_ENCODE_H_
#define TILECOMP_CODEC_PARALLEL_ENCODE_H_

#include <cstddef>
#include <cstdint>

#include "common/span.h"
#include "format/gpudfor.h"
#include "format/gpufor.h"
#include "format/gpurfor.h"

namespace tilecomp::codec {

format::GpuForEncoded ParallelGpuForEncode(
    U32Span values,
    const format::GpuForOptions& options = format::GpuForOptions());

format::GpuDForEncoded ParallelGpuDForEncode(
    U32Span values,
    const format::GpuDForOptions& options = format::GpuDForOptions());

format::GpuRForEncoded ParallelGpuRForEncode(
    U32Span values,
    const format::GpuRForOptions& options = format::GpuRForOptions());

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_PARALLEL_ENCODE_H_
