#include "codec/pipeline.h"

#include <algorithm>

#include "common/macros.h"

namespace tilecomp::codec {

ChunkedColumn ChunkEncode(Scheme scheme, U32Span values,
                          uint32_t num_chunks) {
  TILECOMP_CHECK(num_chunks > 0);
  TILECOMP_CHECK(values.size() <= 0xFFFFFFFFull);
  ChunkedColumn col;
  col.scheme = scheme;
  col.total_rows = static_cast<uint32_t>(values.size());

  // Even split, rounded up so exactly ceil(n / chunk_rows) chunks result;
  // rounding to a tile-friendly multiple keeps chunk boundaries off partial
  // blocks for every scheme (512 = the largest block size, GPU-RFOR).
  const size_t raw = (values.size() + num_chunks - 1) / num_chunks;
  const size_t chunk_rows = std::max<size_t>(1, (raw + 511) / 512 * 512);
  for (size_t begin = 0; begin < values.size(); begin += chunk_rows) {
    ColumnChunk chunk;
    chunk.row_begin = static_cast<uint32_t>(begin);
    chunk.column =
        CompressedColumn::Encode(scheme, values.subspan(begin, chunk_rows));
    col.chunks.push_back(std::move(chunk));
  }
  return col;
}

PipelineResult DecompressPipelined(sim::Device& dev, const ChunkedColumn& col,
                                   const PipelineOptions& opts) {
  TILECOMP_CHECK(opts.num_streams >= 1);
  PipelineResult result;
  result.output.resize(col.total_rows);

  // Exact makespan baseline: everything in flight finishes first.
  const double start_ms = dev.DeviceSynchronize();
  const size_t launch_mark = dev.launch_log().size();

  std::vector<sim::StreamId> streams;
  streams.reserve(static_cast<size_t>(opts.num_streams));
  for (int s = 0; s < opts.num_streams; ++s) {
    streams.push_back(dev.CreateStream());
  }

  for (size_t i = 0; i < col.chunks.size(); ++i) {
    const ColumnChunk& chunk = col.chunks[i];
    const sim::StreamId stream = streams[i % streams.size()];
    const uint64_t bytes = chunk.column.compressed_bytes();
    result.transfer_ms += dev.TransferAsync(stream, bytes);
    result.bytes_transferred += bytes;

    sim::StreamGuard guard(dev, stream);
    kernels::DecompressRun run =
        kernels::Decompress(dev, chunk.column, opts.pipeline, opts.scheduling);
    TILECOMP_CHECK(chunk.row_begin + run.output.size() <=
                   result.output.size());
    std::copy(run.output.begin(), run.output.end(),
              result.output.begin() + chunk.row_begin);
  }

  result.total_ms = dev.DeviceSynchronize() - start_ms;
  const std::vector<sim::KernelResult>& log = dev.launch_log();
  result.launches.assign(log.begin() + launch_mark, log.end());
  for (const sim::KernelResult& launch : result.launches) {
    result.compute_ms += launch.time_ms;
  }
  result.serial_ms = result.transfer_ms + result.compute_ms;

  const double hideable = std::min(result.transfer_ms, result.compute_ms);
  if (hideable > 0.0) {
    result.overlap_fraction = std::clamp(
        (result.serial_ms - result.total_ms) / hideable, 0.0, 1.0);
  }
  return result;
}

}  // namespace tilecomp::codec
