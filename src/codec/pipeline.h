// Chunked, double-buffered co-processor decompression pipeline (the
// paper's Section 4.5 deployment pattern, with the CUDA-stream overlap real
// systems use): a column is encoded as N independent chunks; at query time
// chunk i+1 is shipped over PCIe on one stream while chunk i decompresses on
// another, so transfer and decompression overlap instead of serializing.
//
//   codec::ChunkedColumn col = codec::ChunkEncode(Scheme::kGpuFor, values, 8);
//   sim::Device dev;
//   codec::PipelineResult r = codec::DecompressPipelined(dev, col);
//   // r.output == values; r.total_ms < r.serial_ms when chunks overlap.
#ifndef TILECOMP_CODEC_PIPELINE_H_
#define TILECOMP_CODEC_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "codec/column.h"
#include "kernels/dispatch.h"
#include "sim/device.h"

namespace tilecomp::codec {

// One independently decodable slice of a chunked column.
struct ColumnChunk {
  CompressedColumn column;
  // First row of this chunk in the original column.
  uint32_t row_begin = 0;
};

// A column encoded as independently decodable chunks (every chunk carries
// its own headers/metadata, so it can be transferred and decompressed alone).
struct ChunkedColumn {
  Scheme scheme = Scheme::kNone;
  uint32_t total_rows = 0;
  std::vector<ColumnChunk> chunks;

  uint64_t compressed_bytes() const {
    uint64_t total = 0;
    for (const ColumnChunk& chunk : chunks) {
      total += chunk.column.compressed_bytes();
    }
    return total;
  }
};

// Encode `values` as `num_chunks` independent chunks (the last chunk absorbs
// the remainder; fewer chunks result when values.size() < num_chunks).
ChunkedColumn ChunkEncode(Scheme scheme, U32Span values, uint32_t num_chunks);

struct PipelineOptions {
  // Number of async streams to rotate chunks across. 1 reproduces the
  // serial schedule (each chunk's transfer waits for the previous chunk's
  // kernel); 2 is classic double buffering.
  int num_streams = 2;
  // Fused tile-based decompression or the layer-at-a-time cascade.
  kernels::Pipeline pipeline = kernels::Pipeline::kFused;
  // Tile-to-block mapping for each chunk's kernels: static (one block per
  // tile) or persistent (work-stealing grid; see kernels/decompress.h).
  sim::Scheduling scheduling = sim::Scheduling::kStatic;
};

struct PipelineResult {
  // Concatenated decoded chunks == the original column.
  std::vector<uint32_t> output;
  // Modeled end-to-end makespan of the overlapped schedule, ms.
  double total_ms = 0.0;
  // Modeled end-to-end time of the serial schedule (sum of every transfer
  // and kernel duration — what a single stream yields), ms.
  double serial_ms = 0.0;
  // Total PCIe busy time and total kernel busy time, ms.
  double transfer_ms = 0.0;
  double compute_ms = 0.0;
  // Fraction of the hideable time actually hidden by overlap:
  // (serial_ms - total_ms) / min(transfer_ms, compute_ms), in [0, 1].
  // 0 when nothing overlapped (single stream / single chunk).
  double overlap_fraction = 0.0;
  uint64_t bytes_transferred = 0;
  // Per-launch trace, in issue order; each entry carries its stream_id.
  std::vector<sim::KernelResult> launches;
};

// Run the transfer+decompress pipeline for every chunk of `col` on `dev`,
// rotating chunks across opts.num_streams async streams. Synchronizes the
// device first, so total_ms is an exact makespan delta.
PipelineResult DecompressPipelined(sim::Device& dev, const ChunkedColumn& col,
                                   const PipelineOptions& opts = {});

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_PIPELINE_H_
