#include "codec/planner.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/macros.h"

namespace tilecomp::codec {

namespace {

// Exact NSF footprint of a sequence: a single byte width for the whole
// stream (1, 2, 3 or 4 — Fang et al.'s NSF supports 3-byte entries too).
uint64_t NsfBytes(const std::vector<uint32_t>& seq) {
  uint32_t max_value = 0;
  for (uint32_t v : seq) max_value = std::max(max_value, v);
  const uint32_t bits = BitsNeeded(max_value);
  const uint32_t width = std::max(1u, (bits + 7) / 8);
  return static_cast<uint64_t>(seq.size()) * width;
}

// Exact NSV footprint: per-value byte count plus the 2-bit tag array.
uint64_t NsvBytes(const std::vector<uint32_t>& seq) {
  uint64_t bytes = (seq.size() + 3) / 4;  // tags
  for (uint32_t v : seq) {
    bytes += std::max(1u, (BitsNeeded(v) + 7) / 8);
  }
  return bytes;
}

uint64_t NsBytes(PlannerNs ns, const std::vector<uint32_t>& seq) {
  switch (ns) {
    case PlannerNs::kNone:
      return static_cast<uint64_t>(seq.size()) * 4;
    case PlannerNs::kNsf:
      return NsfBytes(seq);
    case PlannerNs::kNsv:
      return NsvBytes(seq);
  }
  return 0;
}

// Apply the logical layers of a plan (RLE -> DELTA -> FOR) to the column and
// return the resulting stream(s) plus per-partition metadata words.
struct TransformResult {
  std::vector<uint32_t> values;
  std::vector<uint32_t> lengths;  // only for RLE plans
  uint64_t metadata_bytes = 0;
};

TransformResult ApplyPlan(const PlannerPlan& plan, const uint32_t* values,
                          size_t count, uint32_t partition_size) {
  TransformResult result;
  const uint32_t parts = static_cast<uint32_t>(
      (count + partition_size - 1) / partition_size);
  for (uint32_t p = 0; p < parts; ++p) {
    const size_t begin = static_cast<size_t>(p) * partition_size;
    const size_t len = std::min<size_t>(partition_size, count - begin);

    std::vector<uint32_t> seq;
    if (plan.use_rle) {
      size_t i = 0;
      while (i < len) {
        const uint32_t v = values[begin + i];
        size_t j = i + 1;
        while (j < len && values[begin + j] == v) ++j;
        seq.push_back(v);
        result.lengths.push_back(static_cast<uint32_t>(j - i));
        i = j;
      }
      result.metadata_bytes += 4;  // run count
    } else {
      seq.assign(values + begin, values + begin + len);
    }

    if (plan.use_delta && !seq.empty()) {
      for (size_t i = seq.size() - 1; i > 0; --i) seq[i] -= seq[i - 1];
      seq[0] = 0;
      result.metadata_bytes += 4;  // first value
    }

    if (plan.use_for && !seq.empty()) {
      // Byte-aligned FOR: subtract the partition minimum (interpreted
      // unsigned; delta streams use the signed minimum).
      if (plan.use_delta) {
        int32_t m = static_cast<int32_t>(seq[0]);
        for (uint32_t v : seq) m = std::min(m, static_cast<int32_t>(v));
        for (auto& v : seq) v -= static_cast<uint32_t>(m);
      } else {
        uint32_t m = seq[0];
        for (uint32_t v : seq) m = std::min(m, v);
        for (auto& v : seq) v -= m;
      }
      result.metadata_bytes += 4;  // reference
    } else if (plan.use_delta) {
      // Unsorted deltas without FOR don't byte-align well; represent them
      // as zig-zag encoded so they stay small for sorted data.
      for (auto& v : seq) {
        const int32_t s = static_cast<int32_t>(v);
        v = (static_cast<uint32_t>(s) << 1) ^
            static_cast<uint32_t>(s >> 31);
      }
    }

    result.values.insert(result.values.end(), seq.begin(), seq.end());
    result.metadata_bytes += 4;  // partition start entry
  }
  return result;
}

}  // namespace

std::string PlannerPlan::ToString() const {
  std::string s;
  if (use_rle) s += "RLE+";
  if (use_delta) s += "DELTA+";
  if (use_for) s += "FOR+";
  switch (ns) {
    case PlannerNs::kNone:
      s += "NONE";
      break;
    case PlannerNs::kNsf:
      s += "NSF";
      break;
    case PlannerNs::kNsv:
      s += "NSV";
      break;
  }
  return s;
}

PlannerEncoded PlannerEncode(const uint32_t* values, size_t count) {
  TILECOMP_CHECK(count <= 0xFFFFFFFFull);
  PlannerEncoded best;
  best.total_count = static_cast<uint32_t>(count);
  best.original.assign(values, values + count);
  best.payload_bytes = static_cast<uint64_t>(count) * 4;  // NONE plan

  const std::vector<PlannerPlan> candidates = {
      {false, false, false, PlannerNs::kNsf},
      {false, false, false, PlannerNs::kNsv},
      {false, false, true, PlannerNs::kNsf},
      {false, false, true, PlannerNs::kNsv},
      {false, true, true, PlannerNs::kNsf},
      {false, true, true, PlannerNs::kNsv},
      {true, false, false, PlannerNs::kNsf},
      {true, false, false, PlannerNs::kNsv},
      {true, true, true, PlannerNs::kNsv},
  };

  for (const PlannerPlan& plan : candidates) {
    TransformResult t = ApplyPlan(plan, values, count, best.partition_size);
    uint64_t bytes = t.metadata_bytes + NsBytes(plan.ns, t.values);
    if (plan.use_rle) bytes += NsBytes(plan.ns, t.lengths);
    if (bytes < best.payload_bytes) {
      best.payload_bytes = bytes;
      best.plan = plan;
    }
  }
  return best;
}

std::vector<uint32_t> PlannerDecodeHost(const PlannerEncoded& encoded) {
  // The byte-aligned encodings round-trip trivially (they are exact integer
  // representations); functional fidelity is carried by the original data.
  return encoded.original;
}

}  // namespace tilecomp::codec
