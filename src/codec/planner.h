// The byte-aligned compression planner of Fang et al. [18] (the "Planner"
// baseline of Section 9.4).
//
// The planner inspects column statistics and chooses, per column, the plan
// with the best compression ratio from cascades of the five basic
// lightweight techniques — but supports only *byte-aligned* null
// suppression (NSF/NSV), no bit-level packing. Candidate plans:
//
//   NONE, NSF, NSV, FOR+NSF, FOR+NSV, DELTA+NSF, DELTA+NSV,
//   RLE+NSF, RLE+NSV, RLE+DELTA+NSV
//
// FOR subtracts a per-4096-partition minimum; DELTA is per-partition;
// RLE produces (values, lengths) columns, each NS-encoded. Decompression
// executes one kernel per layer (the cascading model of Figure 2 left).
#ifndef TILECOMP_CODEC_PLANNER_H_
#define TILECOMP_CODEC_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tilecomp::codec {

enum class PlannerNs { kNone, kNsf, kNsv };

struct PlannerPlan {
  bool use_rle = false;
  bool use_delta = false;
  bool use_for = false;
  PlannerNs ns = PlannerNs::kNone;

  // Number of decompression kernel passes under the cascading model.
  int decompression_passes() const {
    int passes = 0;
    if (ns != PlannerNs::kNone) passes += use_rle ? 2 : 1;  // both streams
    if (ns == PlannerNs::kNsv) passes += 1;                 // offset scan
    if (use_for) passes += 1;
    if (use_delta) passes += 1;
    if (use_rle) passes += 3;  // scan, scatter, gather/propagate
    return std::max(passes, 1);
  }
  std::string ToString() const;
};

struct PlannerEncoded {
  uint32_t total_count = 0;
  uint32_t partition_size = 4096;
  PlannerPlan plan;
  uint64_t payload_bytes = 0;  // computed exact encoded footprint

  // The planner baseline keeps the functional data as transformed arrays;
  // sizes are exact for the chosen byte-aligned encoding.
  std::vector<uint32_t> original;  // for host decode fidelity

  uint64_t compressed_bytes() const { return 16 + payload_bytes; }
  double bits_per_int() const {
    return total_count == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) / total_count;
  }
};

// Evaluate all candidate plans and keep the smallest (exact sizes).
PlannerEncoded PlannerEncode(const uint32_t* values, size_t count);

std::vector<uint32_t> PlannerDecodeHost(const PlannerEncoded& encoded);

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_PLANNER_H_
