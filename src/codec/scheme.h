// Compression scheme and system identifiers used across the public API.
#ifndef TILECOMP_CODEC_SCHEME_H_
#define TILECOMP_CODEC_SCHEME_H_

namespace tilecomp::codec {

// Single-column compression schemes.
enum class Scheme {
  kNone,        // uncompressed 4-byte integers
  kGpuFor,      // FOR + bit-packing, tile format (Section 4)
  kGpuDFor,     // Delta + FOR + bit-packing (Section 5)
  kGpuRFor,     // RLE + FOR + bit-packing (Section 6)
  kNsf,         // fixed byte-aligned null suppression (Fang et al.)
  kNsv,         // variable byte-aligned null suppression (Fang et al.)
  kRle,         // plain run-length encoding
  kGpuBp,       // single-layer bit-packing, no FOR (Mallia et al.)
  kSimdBp128,   // vertical-layout bit-packing (Section 4.3 ablation)
};

// End-to-end systems compared in Section 9.4 (Figures 9-11).
enum class System {
  kNone,     // Crystal on uncompressed data
  kGpuStar,  // this paper: per-column best of GPU-FOR/DFOR/RFOR, inline
  kNvcomp,   // nvCOMP-style cascades, layer-at-a-time decompression
  kPlanner,  // Fang et al. byte-aligned compression planner
  kGpuBp,    // Mallia et al. bit-packing, decompress-then-query
  kOmnisci,  // commercial engine: no compression, non-tiled execution
};

const char* SchemeName(Scheme scheme);
const char* SystemName(System system);

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_SCHEME_H_
