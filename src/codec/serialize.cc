#include "codec/serialize.h"

#include <cstdio>
#include <cstring>

#include "common/macros.h"

namespace tilecomp::codec {

namespace {

constexpr uint32_t kMagic = 0x504D4354;  // "TCMP" little endian
constexpr uint32_t kVersion = 1;

uint32_t CrcTableEntry(uint32_t i) {
  uint32_t c = i;
  for (int k = 0; k < 8; ++k) {
    c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
  }
  return c;
}

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U32(uint32_t v) { Bytes(&v, 4); }
  void U64(uint64_t v) { Bytes(&v, 8); }
  void VecU32(const std::vector<uint32_t>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * 4);
  }
  void VecU8(const std::vector<uint8_t>& v) {
    U64(v.size());
    Bytes(v.data(), v.size());
  }

 private:
  void Bytes(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    out_->insert(out_->end(), b, b + n);
  }
  std::vector<uint8_t>* out_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U32(uint32_t* v) { return Bytes(v, 4); }
  bool U64(uint64_t* v) { return Bytes(v, 8); }
  bool VecU32(std::vector<uint32_t>* v) {
    uint64_t n = 0;
    // Divide instead of multiplying: `n * 4` wraps for a crafted length
    // near UINT64_MAX and would let a huge `n` reach resize().
    if (!U64(&n) || n > remaining() / 4) return false;
    v->resize(n);
    return Bytes(v->data(), n * 4);
  }
  bool VecU8(std::vector<uint8_t>* v) {
    uint64_t n = 0;
    if (!U64(&n) || n > remaining()) return false;
    v->resize(n);
    return Bytes(v->data(), n);
  }
  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

 private:
  bool Bytes(void* p, size_t n) {
    // `pos_ + n` can wrap for adversarial n; compare against the space left
    // (pos_ <= size_ is an invariant, so the subtraction is safe).
    if (n > size_ - pos_) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) table[i] = CrcTableEntry(i);
    return true;
  }();
  (void)init;
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<uint8_t> Serialize(const CompressedColumn& column) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  switch (column.scheme()) {
    case Scheme::kNone:
      w.VecU32(*column.raw());
      break;
    case Scheme::kGpuFor:
    case Scheme::kGpuBp: {
      const auto& e = *column.gpu_for();
      w.U32(e.header.total_count);
      w.U32(e.header.block_size);
      w.U32(e.header.miniblock_count);
      w.VecU32(e.block_starts);
      w.VecU32(e.data);
      break;
    }
    case Scheme::kGpuDFor: {
      const auto& e = *column.gpu_dfor();
      w.U32(e.header.total_count);
      w.U32(e.header.block_size);
      w.U32(e.header.miniblock_count);
      w.U32(e.header.blocks_per_tile);
      w.VecU32(e.block_starts);
      w.VecU32(e.first_values);
      w.VecU32(e.data);
      break;
    }
    case Scheme::kGpuRFor: {
      const auto& e = *column.gpu_rfor();
      w.U32(e.header.total_count);
      w.U32(e.header.block_size);
      w.VecU32(e.value_block_starts);
      w.VecU32(e.length_block_starts);
      w.VecU32(e.value_data);
      w.VecU32(e.length_data);
      break;
    }
    case Scheme::kNsf: {
      const auto& e = *column.nsf();
      w.U32(e.total_count);
      w.U32(e.bytes_per_value);
      w.VecU8(e.data);
      break;
    }
    case Scheme::kNsv: {
      const auto& e = *column.nsv();
      w.U32(e.total_count);
      w.VecU8(e.data);
      w.VecU8(e.tags);
      w.VecU32(e.chunk_starts);
      break;
    }
    case Scheme::kRle: {
      const auto& e = *column.rle();
      w.U32(e.total_count);
      w.U32(e.block_size);
      w.VecU32(e.run_starts);
      w.VecU32(e.values);
      w.VecU32(e.lengths);
      break;
    }
    case Scheme::kSimdBp128: {
      const auto& e = *column.simdbp();
      w.U32(e.total_count);
      w.VecU32(e.block_starts);
      w.VecU32(e.data);
      break;
    }
  }

  std::vector<uint8_t> out;
  ByteWriter header(&out);
  header.U32(kMagic);
  header.U32(kVersion);
  header.U32(static_cast<uint32_t>(column.scheme()));
  header.U64(payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  header.U32(Crc32(payload.data(), payload.size()));
  return out;
}

bool Deserialize(const uint8_t* data, size_t size, CompressedColumn* column) {
  ByteReader r(data, size);
  uint32_t magic = 0, version = 0, scheme_raw = 0;
  uint64_t payload_size = 0;
  if (!r.U32(&magic) || !r.U32(&version) || !r.U32(&scheme_raw) ||
      !r.U64(&payload_size)) {
    return false;
  }
  // Bad magic/version means "not one of our files", not a programming
  // error: reject it instead of aborting the process.
  if (magic != kMagic || version != kVersion) return false;
  // `payload_size + 4` wraps when payload_size is near UINT64_MAX, which
  // would bypass this check and read out of bounds below.
  if (r.remaining() < 4 || payload_size > r.remaining() - 4) return false;

  // Verify checksum before parsing.
  const uint8_t* payload = data + r.pos();
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload + payload_size, 4);
  if (Crc32(payload, payload_size) != stored_crc) return false;

  ByteReader p(payload, payload_size);
  const Scheme scheme = static_cast<Scheme>(scheme_raw);
  switch (scheme) {
    case Scheme::kNone: {
      std::vector<uint32_t> values;
      if (!p.VecU32(&values)) return false;
      *column = CompressedColumn::FromRaw(std::move(values));
      return true;
    }
    case Scheme::kGpuFor:
    case Scheme::kGpuBp: {
      format::GpuForEncoded e;
      if (!p.U32(&e.header.total_count) || !p.U32(&e.header.block_size) ||
          !p.U32(&e.header.miniblock_count) || !p.VecU32(&e.block_starts) ||
          !p.VecU32(&e.data)) {
        return false;
      }
      *column = CompressedColumn::FromGpuFor(std::move(e), scheme);
      return true;
    }
    case Scheme::kGpuDFor: {
      format::GpuDForEncoded e;
      if (!p.U32(&e.header.total_count) || !p.U32(&e.header.block_size) ||
          !p.U32(&e.header.miniblock_count) ||
          !p.U32(&e.header.blocks_per_tile) || !p.VecU32(&e.block_starts) ||
          !p.VecU32(&e.first_values) || !p.VecU32(&e.data)) {
        return false;
      }
      *column = CompressedColumn::FromGpuDFor(std::move(e));
      return true;
    }
    case Scheme::kGpuRFor: {
      format::GpuRForEncoded e;
      if (!p.U32(&e.header.total_count) || !p.U32(&e.header.block_size) ||
          !p.VecU32(&e.value_block_starts) ||
          !p.VecU32(&e.length_block_starts) || !p.VecU32(&e.value_data) ||
          !p.VecU32(&e.length_data)) {
        return false;
      }
      *column = CompressedColumn::FromGpuRFor(std::move(e));
      return true;
    }
    case Scheme::kNsf: {
      format::NsfEncoded e;
      if (!p.U32(&e.total_count) || !p.U32(&e.bytes_per_value) ||
          !p.VecU8(&e.data)) {
        return false;
      }
      *column = CompressedColumn::FromNsf(std::move(e));
      return true;
    }
    case Scheme::kNsv: {
      format::NsvEncoded e;
      if (!p.U32(&e.total_count) || !p.VecU8(&e.data) || !p.VecU8(&e.tags) ||
          !p.VecU32(&e.chunk_starts)) {
        return false;
      }
      *column = CompressedColumn::FromNsv(std::move(e));
      return true;
    }
    case Scheme::kRle: {
      format::RleEncoded e;
      if (!p.U32(&e.total_count) || !p.U32(&e.block_size) ||
          !p.VecU32(&e.run_starts) || !p.VecU32(&e.values) ||
          !p.VecU32(&e.lengths)) {
        return false;
      }
      *column = CompressedColumn::FromRle(std::move(e));
      return true;
    }
    case Scheme::kSimdBp128: {
      format::SimdBp128Encoded e;
      if (!p.U32(&e.total_count) || !p.VecU32(&e.block_starts) ||
          !p.VecU32(&e.data)) {
        return false;
      }
      *column = CompressedColumn::FromSimdBp128(std::move(e));
      return true;
    }
  }
  return false;
}

bool WriteColumnFile(const std::string& path,
                     const CompressedColumn& column) {
  std::vector<uint8_t> bytes = Serialize(column);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
  std::fclose(f);
  return ok;
}

bool ReadColumnFile(const std::string& path, CompressedColumn* column) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const bool read_ok =
      std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!read_ok) return false;
  return Deserialize(bytes.data(), bytes.size(), column);
}

}  // namespace tilecomp::codec
