#include "codec/serialize.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "codec/mutable_column.h"
#include "common/bit_util.h"
#include "common/macros.h"
#include "format/packtile.h"

namespace tilecomp::codec {

namespace {

constexpr uint32_t kMagic = 0x504D4354;  // "TCMP" little endian
// v1: header + payload + payload crc. v2 appends a checksummed optional
// zone-map section so a save/load round-trip keeps pushdown pruning. v1
// files still load (with a null zone map); v2 writers always emit the
// section, flagged empty when the column has no map.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;

// Mutable-column arena container ("TCMM"): see SerializeMutable below.
constexpr uint32_t kMutableMagic = 0x4D4D4354;  // "TCMM" little endian
constexpr uint32_t kMutableVersion = 1;

uint32_t CrcTableEntry(uint32_t i) {
  uint32_t c = i;
  for (int k = 0; k < 8; ++k) {
    c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
  }
  return c;
}

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U32(uint32_t v) { Bytes(&v, 4); }
  void U64(uint64_t v) { Bytes(&v, 8); }
  void VecU32(const std::vector<uint32_t>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * 4);
  }
  void VecU8(const std::vector<uint8_t>& v) {
    U64(v.size());
    Bytes(v.data(), v.size());
  }

 private:
  void Bytes(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    out_->insert(out_->end(), b, b + n);
  }
  std::vector<uint8_t>* out_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v) { return Bytes(v, 1); }
  bool U32(uint32_t* v) { return Bytes(v, 4); }
  bool U64(uint64_t* v) { return Bytes(v, 8); }
  bool VecU32(std::vector<uint32_t>* v) {
    uint64_t n = 0;
    // Divide instead of multiplying: `n * 4` wraps for a crafted length
    // near UINT64_MAX and would let a huge `n` reach resize().
    if (!U64(&n) || n > remaining() / 4) return false;
    v->resize(n);
    return Bytes(v->data(), n * 4);
  }
  bool VecU8(std::vector<uint8_t>* v) {
    uint64_t n = 0;
    if (!U64(&n) || n > remaining()) return false;
    v->resize(n);
    return Bytes(v->data(), n);
  }
  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

 private:
  bool Bytes(void* p, size_t n) {
    // `pos_ + n` can wrap for adversarial n; compare against the space left
    // (pos_ <= size_ is an invariant, so the subtraction is safe).
    if (n > size_ - pos_) return false;
    // n == 0 is legal (empty vector section) but p may be null then, and
    // memcpy's pointer arguments must be non-null even for zero sizes.
    if (n != 0) std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) table[i] = CrcTableEntry(i);
    return true;
  }();
  (void)init;
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<uint8_t> Serialize(const CompressedColumn& column) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  switch (column.scheme()) {
    case Scheme::kNone:
      w.VecU32(*column.raw());
      break;
    case Scheme::kGpuFor:
    case Scheme::kGpuBp: {
      const auto& e = *column.gpu_for();
      w.U32(e.header.total_count);
      w.U32(e.header.block_size);
      w.U32(e.header.miniblock_count);
      w.VecU32(e.block_starts);
      w.VecU32(e.data);
      break;
    }
    case Scheme::kGpuDFor: {
      const auto& e = *column.gpu_dfor();
      w.U32(e.header.total_count);
      w.U32(e.header.block_size);
      w.U32(e.header.miniblock_count);
      w.U32(e.header.blocks_per_tile);
      w.VecU32(e.block_starts);
      w.VecU32(e.first_values);
      w.VecU32(e.data);
      break;
    }
    case Scheme::kGpuRFor: {
      const auto& e = *column.gpu_rfor();
      w.U32(e.header.total_count);
      w.U32(e.header.block_size);
      w.VecU32(e.value_block_starts);
      w.VecU32(e.length_block_starts);
      w.VecU32(e.value_data);
      w.VecU32(e.length_data);
      break;
    }
    case Scheme::kNsf: {
      const auto& e = *column.nsf();
      w.U32(e.total_count);
      w.U32(e.bytes_per_value);
      w.VecU8(e.data);
      break;
    }
    case Scheme::kNsv: {
      const auto& e = *column.nsv();
      w.U32(e.total_count);
      w.VecU8(e.data);
      w.VecU8(e.tags);
      w.VecU32(e.chunk_starts);
      break;
    }
    case Scheme::kRle: {
      const auto& e = *column.rle();
      w.U32(e.total_count);
      w.U32(e.block_size);
      w.VecU32(e.run_starts);
      w.VecU32(e.values);
      w.VecU32(e.lengths);
      break;
    }
    case Scheme::kSimdBp128: {
      const auto& e = *column.simdbp();
      w.U32(e.total_count);
      w.VecU32(e.block_starts);
      w.VecU32(e.data);
      break;
    }
  }

  std::vector<uint8_t> out;
  ByteWriter header(&out);
  header.U32(kMagic);
  header.U32(kVersion);
  header.U32(static_cast<uint32_t>(column.scheme()));
  header.U64(payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  header.U32(Crc32(payload.data(), payload.size()));

  // v2 zone-map section: [flag u8][4 x VecU32 if flag][crc32 over section].
  // Separately checksummed so the pruning index is as corruption-hardened as
  // the data payload, and so v1 readers that stop at the payload crc are not
  // confused by trailing bytes (they reject on the version field anyway).
  std::vector<uint8_t> section;
  const ZoneMap* zm = column.zone_map();
  section.push_back(zm != nullptr ? 1 : 0);
  if (zm != nullptr) {
    ByteWriter sw(&section);
    sw.VecU32(zm->tile_mins());
    sw.VecU32(zm->tile_maxs());
    sw.VecU32(zm->block_mins());
    sw.VecU32(zm->block_maxs());
  }
  out.insert(out.end(), section.begin(), section.end());
  header.U32(Crc32(section.data(), section.size()));
  return out;
}

namespace {

bool ParsePayload(ByteReader& p, Scheme scheme, CompressedColumn* column) {
  switch (scheme) {
    case Scheme::kNone: {
      std::vector<uint32_t> values;
      if (!p.VecU32(&values)) return false;
      *column = CompressedColumn::FromRaw(std::move(values));
      return true;
    }
    case Scheme::kGpuFor:
    case Scheme::kGpuBp: {
      format::GpuForEncoded e;
      if (!p.U32(&e.header.total_count) || !p.U32(&e.header.block_size) ||
          !p.U32(&e.header.miniblock_count) || !p.VecU32(&e.block_starts) ||
          !p.VecU32(&e.data)) {
        return false;
      }
      *column = CompressedColumn::FromGpuFor(std::move(e), scheme);
      return true;
    }
    case Scheme::kGpuDFor: {
      format::GpuDForEncoded e;
      if (!p.U32(&e.header.total_count) || !p.U32(&e.header.block_size) ||
          !p.U32(&e.header.miniblock_count) ||
          !p.U32(&e.header.blocks_per_tile) || !p.VecU32(&e.block_starts) ||
          !p.VecU32(&e.first_values) || !p.VecU32(&e.data)) {
        return false;
      }
      *column = CompressedColumn::FromGpuDFor(std::move(e));
      return true;
    }
    case Scheme::kGpuRFor: {
      format::GpuRForEncoded e;
      if (!p.U32(&e.header.total_count) || !p.U32(&e.header.block_size) ||
          !p.VecU32(&e.value_block_starts) ||
          !p.VecU32(&e.length_block_starts) || !p.VecU32(&e.value_data) ||
          !p.VecU32(&e.length_data)) {
        return false;
      }
      *column = CompressedColumn::FromGpuRFor(std::move(e));
      return true;
    }
    case Scheme::kNsf: {
      format::NsfEncoded e;
      if (!p.U32(&e.total_count) || !p.U32(&e.bytes_per_value) ||
          !p.VecU8(&e.data)) {
        return false;
      }
      *column = CompressedColumn::FromNsf(std::move(e));
      return true;
    }
    case Scheme::kNsv: {
      format::NsvEncoded e;
      if (!p.U32(&e.total_count) || !p.VecU8(&e.data) || !p.VecU8(&e.tags) ||
          !p.VecU32(&e.chunk_starts)) {
        return false;
      }
      *column = CompressedColumn::FromNsv(std::move(e));
      return true;
    }
    case Scheme::kRle: {
      format::RleEncoded e;
      if (!p.U32(&e.total_count) || !p.U32(&e.block_size) ||
          !p.VecU32(&e.run_starts) || !p.VecU32(&e.values) ||
          !p.VecU32(&e.lengths)) {
        return false;
      }
      *column = CompressedColumn::FromRle(std::move(e));
      return true;
    }
    case Scheme::kSimdBp128: {
      format::SimdBp128Encoded e;
      if (!p.U32(&e.total_count) || !p.VecU32(&e.block_starts) ||
          !p.VecU32(&e.data)) {
        return false;
      }
      *column = CompressedColumn::FromSimdBp128(std::move(e));
      return true;
    }
  }
  return false;
}

// Parse and validate the v2 zone-map section (everything after the payload
// crc). `section` spans [flag .. section crc]; returns false on truncation,
// checksum failure, or entry counts inconsistent with the column's size.
bool ParseZoneMapSection(const uint8_t* section, size_t section_size,
                         CompressedColumn* column) {
  // Minimum section: flag byte + crc32.
  if (section_size < 5) return false;
  const size_t body_size = section_size - 4;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, section + body_size, 4);
  if (Crc32(section, body_size) != stored_crc) return false;

  ByteReader s(section, body_size);
  uint8_t flag_byte = 0;
  if (!s.U8(&flag_byte)) return false;
  if (flag_byte == 0) {
    // Empty section must be exactly the flag byte.
    return s.remaining() == 0;
  }
  if (flag_byte != 1) return false;
  std::vector<uint32_t> mins, maxs, block_mins, block_maxs;
  if (!s.VecU32(&mins) || !s.VecU32(&maxs) || !s.VecU32(&block_mins) ||
      !s.VecU32(&block_maxs) || s.remaining() != 0) {
    return false;
  }
  const uint64_t count = column->size();
  const uint64_t want_tiles = CeilDiv<uint64_t>(count, ZoneMap::kTileSize);
  const uint64_t want_blocks = CeilDiv<uint64_t>(count, ZoneMap::kBlockSize);
  if (mins.size() != want_tiles || maxs.size() != want_tiles ||
      block_mins.size() != want_blocks || block_maxs.size() != want_blocks) {
    return false;
  }
  column->set_zone_map(std::make_shared<const ZoneMap>(
      ZoneMap::FromParts(std::move(mins), std::move(maxs),
                         std::move(block_mins), std::move(block_maxs))));
  return true;
}

}  // namespace

bool Deserialize(const uint8_t* data, size_t size, CompressedColumn* column) {
  ByteReader r(data, size);
  uint32_t magic = 0, version = 0, scheme_raw = 0;
  uint64_t payload_size = 0;
  if (!r.U32(&magic) || !r.U32(&version) || !r.U32(&scheme_raw) ||
      !r.U64(&payload_size)) {
    return false;
  }
  // Bad magic/version means "not one of our files", not a programming
  // error: reject it instead of aborting the process.
  if (magic != kMagic || version < kMinVersion || version > kVersion) {
    return false;
  }
  // `payload_size + 4` wraps when payload_size is near UINT64_MAX, which
  // would bypass this check and read out of bounds below.
  if (r.remaining() < 4 || payload_size > r.remaining() - 4) return false;

  // Verify checksum before parsing.
  const uint8_t* payload = data + r.pos();
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload + payload_size, 4);
  if (Crc32(payload, payload_size) != stored_crc) return false;

  ByteReader p(payload, payload_size);
  if (!ParsePayload(p, static_cast<Scheme>(scheme_raw), column)) return false;

  if (version >= 2) {
    // The zone-map section is mandatory in v2 (flagged empty when the column
    // has none) and must consume the rest of the buffer exactly, so any
    // truncation or trailing garbage is rejected.
    const size_t section_pos = r.pos() + payload_size + 4;
    return ParseZoneMapSection(data + section_pos, size - section_pos, column);
  }
  return true;
}

std::vector<uint8_t> SerializeMutable(const MutableColumn& column) {
  std::lock_guard<std::mutex> lock(column.mu_);
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.U32(column.id_.value());
  w.U64(static_cast<uint64_t>(column.rows_));
  w.U64(column.tiles_.size());
  for (const MutableColumn::TileMeta& meta : column.tiles_) {
    w.U32(meta.offset);
    w.U32(meta.words);
    w.U32(meta.count);
  }
  w.VecU32(column.arena_);
  w.U64(column.side_buffers_.size());
  // Deterministic order: iterate tiles, not the unordered map.
  for (size_t t = 0; t < column.tiles_.size(); ++t) {
    auto it = column.side_buffers_.find(static_cast<int64_t>(t));
    if (it == column.side_buffers_.end()) continue;
    w.U64(static_cast<uint64_t>(t));
    w.VecU32(it->second);
  }

  std::vector<uint8_t> out;
  ByteWriter header(&out);
  header.U32(kMutableMagic);
  header.U32(kMutableVersion);
  header.U64(payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  header.U32(Crc32(payload.data(), payload.size()));
  return out;
}

bool DeserializeMutable(const uint8_t* data, size_t size,
                        MutableColumn* column) {
  ByteReader r(data, size);
  uint32_t magic = 0, version = 0;
  uint64_t payload_size = 0;
  if (!r.U32(&magic) || !r.U32(&version) || !r.U64(&payload_size)) {
    return false;
  }
  if (magic != kMutableMagic || version != kMutableVersion) return false;
  if (r.remaining() < 4 || payload_size > r.remaining() - 4) return false;
  const uint8_t* payload = data + r.pos();
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload + payload_size, 4);
  if (Crc32(payload, payload_size) != stored_crc) return false;
  // Exact consumption: trailing bytes after the crc are rejected.
  if (r.pos() + payload_size + 4 != size) return false;

  ByteReader p(payload, payload_size);
  uint32_t id = 0;
  uint64_t rows = 0, num_tiles = 0;
  if (!p.U32(&id) || !p.U64(&rows) || !p.U64(&num_tiles)) return false;
  if (num_tiles != CeilDiv<uint64_t>(rows, MutableColumn::kTileSize)) {
    return false;
  }
  // 12 bytes of meta per tile bounds num_tiles by the payload size.
  if (num_tiles > p.remaining() / 12) return false;

  std::vector<MutableColumn::TileMeta> tiles(num_tiles);
  std::vector<uint32_t> arena;
  std::unordered_map<int64_t, std::vector<uint32_t>> side_buffers;
  std::map<uint32_t, uint32_t> free_list;
  uint64_t count_sum = 0;
  for (uint64_t t = 0; t < num_tiles; ++t) {
    MutableColumn::TileMeta& meta = tiles[t];
    if (!p.U32(&meta.offset) || !p.U32(&meta.words) || !p.U32(&meta.count)) {
      return false;
    }
    const bool last = t + 1 == num_tiles;
    if (meta.count == 0 || meta.count > MutableColumn::kTileSize) return false;
    if (!last && meta.count != MutableColumn::kTileSize) return false;
    if (meta.offset == MutableColumn::kNoExtent) {
      if (meta.words != 0) return false;
      meta.dirty = true;
    } else {
      if (meta.words < format::kPackTileHeaderWords) return false;
    }
    count_sum += meta.count;
  }
  if (count_sum != rows) return false;
  if (!p.VecU32(&arena)) return false;

  uint64_t num_side = 0;
  if (!p.U64(&num_side)) return false;
  uint64_t dirty_tiles = 0;
  for (const MutableColumn::TileMeta& meta : tiles) {
    if (meta.dirty) ++dirty_tiles;
  }
  if (num_side != dirty_tiles) return false;
  for (uint64_t i = 0; i < num_side; ++i) {
    uint64_t tile = 0;
    if (!p.U64(&tile) || tile >= num_tiles) return false;
    MutableColumn::TileMeta& meta = tiles[tile];
    if (!meta.dirty) return false;
    auto [it, inserted] = side_buffers.emplace(static_cast<int64_t>(tile),
                                               std::vector<uint32_t>());
    if (!inserted) return false;  // duplicate side buffer
    if (!p.VecU32(&it->second)) return false;
    if (it->second.size() != meta.count) return false;
  }
  if (p.remaining() != 0) return false;

  // Structural validation of the extent table: every extent parses, matches
  // its tile's count, stays in bounds, and no two overlap. The gaps become
  // the free list, so live + free extents partition the arena exactly.
  std::vector<std::pair<uint32_t, uint32_t>> extents;
  extents.reserve(num_tiles);
  for (uint64_t t = 0; t < num_tiles; ++t) {
    const MutableColumn::TileMeta& meta = tiles[t];
    if (meta.dirty) continue;
    const uint64_t end = static_cast<uint64_t>(meta.offset) + meta.words;
    if (end > arena.size()) return false;
    format::PackTileHeader h;
    if (!format::ParsePackTileHeader(arena.data() + meta.offset, meta.words,
                                     &h) ||
        h.count != meta.count) {
      return false;
    }
    extents.emplace_back(meta.offset, meta.words);
  }
  std::sort(extents.begin(), extents.end());
  uint32_t cursor = 0;
  for (const auto& [offset, words] : extents) {
    if (offset < cursor) return false;  // overlap
    if (offset > cursor) free_list.emplace(cursor, offset - cursor);
    cursor = offset + words;
  }
  if (cursor < arena.size()) {
    free_list.emplace(cursor, static_cast<uint32_t>(arena.size()) - cursor);
  }

  // Commit into the destination (std::mutex pins MutableColumn in place, so
  // the fields move in under its own lock), then rebuild zone entries from
  // decoded truth: a loaded store must never prune against bounds the file
  // merely claims.
  std::lock_guard<std::mutex> lock(column->mu_);
  column->id_ = ColumnId(id);
  column->rows_ = static_cast<int64_t>(rows);
  column->tiles_ = std::move(tiles);
  column->arena_ = std::move(arena);
  column->side_buffers_ = std::move(side_buffers);
  column->free_ = std::move(free_list);
  column->reencodes_ = 0;
  column->reencode_retries_ = 0;
  column->compactions_ = 0;
  column->patches_ = 0;
  column->appended_rows_ = 0;
  column->reencode_log_.clear();
  column->tile_mins_.resize(num_tiles);
  column->tile_maxs_.resize(num_tiles);
  const uint64_t num_blocks =
      CeilDiv<uint64_t>(rows, MutableColumn::kBlockSize);
  column->block_mins_.resize(num_blocks);
  column->block_maxs_.resize(num_blocks);
  std::vector<uint32_t> tile_buf(MutableColumn::kTileSize);
  for (uint64_t t = 0; t < num_tiles; ++t) {
    const uint32_t n =
        column->DecodeTileLocked(static_cast<int64_t>(t), tile_buf.data());
    TILECOMP_CHECK(n == column->tiles_[t].count);
    column->RecomputeTileZonesLocked(static_cast<int64_t>(t), tile_buf.data(),
                                     n);
  }
  return true;
}

bool WriteColumnFile(const std::string& path,
                     const CompressedColumn& column) {
  std::vector<uint8_t> bytes = Serialize(column);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
  std::fclose(f);
  return ok;
}

bool ReadColumnFile(const std::string& path, CompressedColumn* column) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const bool read_ok =
      std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!read_ok) return false;
  return Deserialize(bytes.data(), bytes.size(), column);
}

}  // namespace tilecomp::codec
