// Binary serialization of compressed columns: a versioned, checksummed
// container so columns can be compressed once on the host, persisted, and
// shipped to (simulated) device memory later — the "compression is a
// one-time activity" workflow of Section 8.
//
// Layout (little endian):
//   [magic "TCMP"] [version u32] [scheme u32] [payload bytes u64]
//   [payload ...] [crc32 u32 over payload]
//
// The payload is the format's own struct: a sequence of length-prefixed
// uint32 vectors plus the header words.
#ifndef TILECOMP_CODEC_SERIALIZE_H_
#define TILECOMP_CODEC_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "codec/column.h"

namespace tilecomp::codec {

class MutableColumn;

// Serialize to an in-memory buffer.
std::vector<uint8_t> Serialize(const CompressedColumn& column);

// Parse a buffer produced by Serialize. Aborts (CHECK) on magic/version
// mismatch; returns false on truncation or checksum failure.
bool Deserialize(const uint8_t* data, size_t size, CompressedColumn* column);

// File convenience wrappers. Return false on I/O failure.
bool WriteColumnFile(const std::string& path, const CompressedColumn& column);
bool ReadColumnFile(const std::string& path, CompressedColumn* column);

// Mutable-column arena container ("TCMM", versioned, crc-checked):
//   [magic][version u32][payload u64][payload ...][crc32 over payload]
// The payload carries the column id, per-tile extent table, arena words and
// dirty-tile side buffers. DeserializeMutable validates the structure
// exhaustively — extents must parse, must not overlap, and must exactly
// partition the arena together with the implied free list — and rebuilds
// zone entries by decoding every tile, so a loaded store never prunes
// against unvalidated bounds. Generations restart at 1 (an address space
// fresh to every cache). Returns false on any corruption.
std::vector<uint8_t> SerializeMutable(const MutableColumn& column);
bool DeserializeMutable(const uint8_t* data, size_t size,
                        MutableColumn* column);

// CRC-32 (IEEE 802.3) used for the payload checksum; exposed for tests.
uint32_t Crc32(const uint8_t* data, size_t size);

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_SERIALIZE_H_
