#include "codec/stats.h"

#include <algorithm>
#include <unordered_set>

namespace tilecomp::codec {

ColumnStats ComputeStats(U32Span span) {
  const uint32_t* values = span.data();
  const size_t count = span.size();
  ColumnStats stats;
  stats.count = count;
  if (count == 0) return stats;

  stats.min = values[0];
  stats.max = values[0];
  stats.sorted = true;
  uint64_t runs = 1;
  for (size_t i = 1; i < count; ++i) {
    stats.min = std::min(stats.min, values[i]);
    stats.max = std::max(stats.max, values[i]);
    if (values[i] < values[i - 1]) stats.sorted = false;
    if (values[i] != values[i - 1]) ++runs;
  }
  stats.avg_run_length = static_cast<double>(count) / runs;

  // Distinct count: exact via hashing on a sample-capped budget; on very
  // large columns sample the first 2^22 values (good enough for a
  // choose-the-scheme decision).
  const size_t sample = std::min<size_t>(count, 1ull << 22);
  std::unordered_set<uint32_t> seen;
  seen.reserve(sample / 4);
  for (size_t i = 0; i < sample; ++i) seen.insert(values[i]);
  stats.distinct = seen.size();
  if (sample < count) {
    // Scale conservatively: distinct values grow sub-linearly; report at
    // least the sample's distinct count.
    stats.distinct =
        std::max<uint64_t>(stats.distinct, seen.size());
  }
  return stats;
}

Scheme ChooseScheme(const ColumnStats& stats) {
  if (stats.count == 0) return Scheme::kGpuFor;
  // High average run length or low cardinality: RLE pays off.
  if (stats.avg_run_length >= 4.0 || stats.distinct <= 16) {
    return Scheme::kGpuRFor;
  }
  // Sorted/semi-sorted with a large value domain: delta coding pays off.
  if (stats.sorted && stats.distinct > (1u << 16)) {
    return Scheme::kGpuDFor;
  }
  return Scheme::kGpuFor;
}

CompressedColumn EncodeGpuStar(U32Span values) {
  // Candidates in increasing decompression cost (FOR < DFOR < RFOR,
  // Section 9.2): a more expensive scheme must be at least 2% smaller to
  // displace a cheaper one. Without the margin, GPU-RFOR "wins" on
  // run-free data purely via its lower per-512-block metadata while being
  // strictly slower to decode.
  CompressedColumn best = CompressedColumn::Encode(Scheme::kGpuFor, values);
  for (Scheme scheme : {Scheme::kGpuDFor, Scheme::kGpuRFor}) {
    CompressedColumn candidate = CompressedColumn::Encode(scheme, values);
    if (static_cast<double>(candidate.compressed_bytes()) <
        0.98 * static_cast<double>(best.compressed_bytes())) {
      best = candidate;
    }
  }
  return best;
}

}  // namespace tilecomp::codec
