// Column statistics and the GPU-* scheme chooser (Section 8).
#ifndef TILECOMP_CODEC_STATS_H_
#define TILECOMP_CODEC_STATS_H_

#include <cstddef>
#include <cstdint>

#include "codec/column.h"
#include "codec/scheme.h"
#include "common/span.h"

namespace tilecomp::codec {

struct ColumnStats {
  uint32_t min = 0;
  uint32_t max = 0;
  // Exact distinct count for small cardinalities, estimate above 2^20.
  uint64_t distinct = 0;
  double avg_run_length = 1.0;
  bool sorted = false;
  size_t count = 0;
};

ColumnStats ComputeStats(U32Span values);

// The Section 8 rule of thumb:
//   - sorted (or semi-sorted) with many distinct values -> GPU-DFOR
//   - few distinct values or high average run length    -> GPU-RFOR
//   - otherwise                                         -> GPU-FOR
Scheme ChooseScheme(const ColumnStats& stats);

// "The rule-of-thumb when choosing a compression scheme is to use the one
// that has the lowest storage footprint": encode with all three GPU-*
// schemes and keep the smallest. This is the GPU-* hybrid of Section 9.4.
CompressedColumn EncodeGpuStar(U32Span values);

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_STATS_H_
