#include "codec/systems.h"

#include <utility>

#include "codec/stats.h"
#include "common/macros.h"
#include "kernels/dispatch.h"

namespace tilecomp::codec {

uint32_t SystemColumn::size() const {
  switch (system) {
    case System::kNvcomp:
      return nvcomp->total_count;
    case System::kPlanner:
      return planner->total_count;
    default:
      return column.size();
  }
}

uint64_t SystemColumn::compressed_bytes() const {
  switch (system) {
    case System::kNvcomp:
      return nvcomp->compressed_bytes();
    case System::kPlanner:
      return planner->compressed_bytes();
    default:
      return column.compressed_bytes();
  }
}

std::vector<uint32_t> SystemColumn::DecodeHost() const {
  switch (system) {
    case System::kNvcomp:
      return NvcompDecodeHost(*nvcomp);
    case System::kPlanner:
      return PlannerDecodeHost(*planner);
    default:
      return column.DecodeHost();
  }
}

SystemColumn SystemEncode(System system, U32Span values) {
  SystemColumn out;
  out.system = system;
  switch (system) {
    case System::kNone:
    case System::kOmnisci:
      out.column = CompressedColumn::Encode(Scheme::kNone, values);
      break;
    case System::kGpuStar:
      out.column = EncodeGpuStar(values);
      break;
    case System::kGpuBp:
      out.column = CompressedColumn::Encode(Scheme::kGpuBp, values);
      break;
    case System::kNvcomp:
      out.nvcomp = std::make_shared<NvcompEncoded>(
          NvcompEncode(values.data(), values.size()));
      break;
    case System::kPlanner:
      out.planner = std::make_shared<PlannerEncoded>(
          PlannerEncode(values.data(), values.size()));
      break;
  }
  // Every system keeps a zone map for pushdown pruning; column-backed
  // systems reuse the one Encode() already built.
  switch (system) {
    case System::kNvcomp:
    case System::kPlanner:
      out.zone_map = std::make_shared<const ZoneMap>(ZoneMap::Build(values));
      break;
    default:
      out.zone_map = out.column.shared_zone_map();
      break;
  }
  return out;
}

namespace {

// nvCOMP's bit-unpack kernel: one output element per thread, plain global
// loads (no multi-block shared-memory staging, no vectorization) — the
// paper's observation that "their bit-packing scheme does not saturate
// memory bandwidth". Reads `comp_bytes`, writes one word per element.
void NvcompUnpackPass(sim::Device& dev, uint64_t elems, uint64_t comp_bytes,
                      std::string label) {
  sim::LaunchConfig lc;
  lc.block_threads = 256;
  lc.grid_dim = std::max<int64_t>(
      1, static_cast<int64_t>((elems + 1023) / 1024));
  lc.regs_per_thread = 32;
  const int64_t grid = lc.grid_dim;
  dev.Launch(std::move(label), lc, [&](sim::BlockContext& ctx) {
    ctx.CoalescedRead(comp_bytes / grid, false);
    // Per-thread (non-vectorized, partially diverging) word loads dominate
    // the issue rate. Calibrated against the paper's Figure 10a (nvCOMP
    // 2.2-2.4x slower than the fused tile kernels on SSB columns).
    ctx.stats().warp_global_accesses += elems / grid / 18;
    ctx.Compute(12 * elems / grid);
    ctx.CoalescedWrite(elems * 4 / grid, true);
  });
}

// Planner-era (Fang et al., 2010) null-suppression decode kernel: one
// thread per element reading 1-4 byte entries — heavily uncoalesced, so the
// issue-rate penalty is steeper than nvCOMP's word-aligned unpack.
void PlannerNsPass(sim::Device& dev, uint64_t elems, uint64_t comp_bytes,
                   std::string label) {
  sim::LaunchConfig lc;
  lc.block_threads = 256;
  lc.grid_dim = std::max<int64_t>(
      1, static_cast<int64_t>((elems + 1023) / 1024));
  lc.regs_per_thread = 28;
  const int64_t grid = lc.grid_dim;
  dev.Launch(std::move(label), lc, [&](sim::BlockContext& ctx) {
    ctx.CoalescedRead(comp_bytes / grid, false);
    ctx.stats().warp_global_accesses += elems / grid / 8;
    ctx.Compute(8 * elems / grid);
    ctx.CoalescedWrite(elems * 4 / grid, true);
  });
}

// nvCOMP layer-at-a-time decompression: one kernel pass per cascade layer,
// each reading from and writing to global memory.
kernels::DecompressRun NvcompDecompress(sim::Device& dev,
                                        const NvcompEncoded& enc) {
  kernels::DecompressRun run;
  kernels::RunScope scope(dev);

  const uint64_t n = enc.total_count;
  const uint64_t comp_bytes = enc.compressed_bytes();
  // Number of post-RLE stream elements (runs) across partitions.
  uint64_t elems = 0;
  for (uint32_t p = 0; p < enc.num_partitions(); ++p) {
    elems += enc.data[enc.partition_starts[p] + 1];
  }

  // Pass 1: bit-unpack the value stream (+ headers).
  NvcompUnpackPass(dev, elems, comp_bytes, "nvcomp.unpack_values");
  if (enc.config.use_rle) {
    // Pass 2: bit-unpack the run-length stream.
    NvcompUnpackPass(dev, elems, comp_bytes / 2, "nvcomp.unpack_lengths");
  }
  // Frame-of-reference add: its own cascade layer in nvCOMP.
  kernels::StreamingPass(dev, elems, elems * 4, elems * 4, 2,
                         "nvcomp.for_add");
  if (enc.config.use_delta) {
    // Delta pass: prefix sum over the value stream.
    kernels::StreamingPass(dev, elems, elems * 4, elems * 4, 3,
                           "nvcomp.delta_scan");
  }
  if (enc.config.use_rle) {
    // RLE expansion: scan, scatter (incl. marker init), propagate, gather.
    kernels::StreamingPass(dev, elems, elems * 4, elems * 4, 2,
                           "nvcomp.rle_scan");
    kernels::StreamingPass(dev, elems, elems * 8, n * 4, 1,
                           "nvcomp.rle_scatter");
    kernels::StreamingPass(dev, n, n * 4 + elems * 4, n * 4, 2,
                           "nvcomp.rle_gather");
  }

  run.output = NvcompDecodeHost(enc);
  scope.Finish(&run);
  return run;
}

// Planner cascaded decompression: one kernel per plan layer.
kernels::DecompressRun PlannerDecompress(sim::Device& dev,
                                         const PlannerEncoded& enc) {
  kernels::DecompressRun run;
  kernels::RunScope scope(dev);

  const uint64_t n = enc.total_count;
  const uint64_t comp_bytes = enc.compressed_bytes();
  const PlannerPlan& plan = enc.plan;
  // Stream length after RLE (if any): estimate from compressed footprint of
  // the byte-aligned payload; for non-RLE plans it is n.
  uint64_t elems = n;
  if (plan.use_rle) {
    // Recover the run count by re-running the transform cheaply on the
    // stored original (host side; not part of device cost).
    uint64_t runs = 1;
    for (size_t i = 1; i < enc.original.size(); ++i) {
      if (enc.original[i] != enc.original[i - 1]) ++runs;
    }
    elems = runs;
  }

  // NS decode pass(es): widen byte-aligned entries to 4-byte ints.
  PlannerNsPass(dev, elems, comp_bytes, "planner.ns_decode_values");
  if (plan.use_rle) {
    PlannerNsPass(dev, elems, comp_bytes / 4, "planner.ns_decode_lengths");
  }
  if (plan.ns == PlannerNs::kNsv) {
    // NSV needs an offsets scan before it can gather.
    kernels::StreamingPass(dev, elems, elems * 4, elems * 4, 2,
                           "planner.offset_scan");
  }
  if (plan.use_for) {
    kernels::StreamingPass(dev, elems, elems * 4, elems * 4, 2,
                           "planner.for_add");
  }
  if (plan.use_delta) {
    kernels::StreamingPass(dev, elems, elems * 4, elems * 4, 3,
                           "planner.delta_scan");
  }
  if (plan.use_rle) {
    kernels::StreamingPass(dev, elems, elems * 4, elems * 4, 2,
                           "planner.rle_scan");
    kernels::StreamingPass(dev, elems, elems * 8, n * 4, 1,
                           "planner.rle_scatter");
    kernels::StreamingPass(dev, n, n * 4 + elems * 4, n * 4, 2,
                           "planner.rle_gather");
  }

  run.output = PlannerDecodeHost(enc);
  scope.Finish(&run);
  return run;
}

}  // namespace

kernels::DecompressRun SystemDecompress(sim::Device& dev,
                                        const SystemColumn& column) {
  switch (column.system) {
    case System::kNone:
    case System::kOmnisci:
    case System::kGpuStar:
    case System::kGpuBp:
      // The generic dispatcher picks the right fused kernel from the
      // column's scheme (kNone -> copy, kGpuBp -> unstaged bit-unpack).
      return kernels::Decompress(dev, column.column);
    case System::kNvcomp:
      return NvcompDecompress(dev, *column.nvcomp);
    case System::kPlanner:
      return PlannerDecompress(dev, *column.planner);
  }
  return {};
}

}  // namespace tilecomp::codec
