// System-level column encoding and decompression: wraps each compared
// system's per-column choice (Figure 9) and its decompression pipeline
// (Figures 10-11) behind one interface.
#ifndef TILECOMP_CODEC_SYSTEMS_H_
#define TILECOMP_CODEC_SYSTEMS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "codec/column.h"
#include "codec/nvcomp_like.h"
#include "codec/planner.h"
#include "codec/scheme.h"
#include "common/span.h"
#include "kernels/decompress.h"
#include "sim/device.h"

namespace tilecomp::codec {

// One column as stored by one of the compared systems.
struct SystemColumn {
  System system = System::kNone;
  // For kNone / kGpuStar / kGpuBp / kOmnisci.
  CompressedColumn column;
  // For kNvcomp / kPlanner.
  std::shared_ptr<NvcompEncoded> nvcomp;
  std::shared_ptr<PlannerEncoded> planner;
  // Per-tile/per-block min-max index built by SystemEncode, backing the
  // serving layer's pushdown pruning for systems (kNvcomp / kPlanner) that
  // do not carry a CompressedColumn.
  std::shared_ptr<const ZoneMap> zone_map;

  uint32_t size() const;
  uint64_t compressed_bytes() const;
  double bits_per_int() const {
    return size() == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) / size();
  }
  std::vector<uint32_t> DecodeHost() const;
};

// Encode a column the way `system` would store it:
//   kNone / kOmnisci -> uncompressed (OmniSci applies only dictionary
//                       encoding, which has already happened upstream);
//   kGpuStar         -> best of GPU-FOR / GPU-DFOR / GPU-RFOR;
//   kNvcomp          -> best nvCOMP cascade;
//   kPlanner         -> best byte-aligned plan;
//   kGpuBp           -> per-block bit-packing without FOR.
SystemColumn SystemEncode(System system, U32Span values);

// Decompress a system column on the simulated device, using the system's
// decompression pipeline (single fused kernel for GPU-*, one kernel per
// layer for nvCOMP/Planner, etc.). Returns decoded values + modeled cost.
kernels::DecompressRun SystemDecompress(sim::Device& dev,
                                        const SystemColumn& column);

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_SYSTEMS_H_
