// Typed column adapters (Section 4.1: "GPU-FOR can be used to efficiently
// compress attributes of type integer, decimal, or dictionary-encoded
// string"). Decimals are stored as fixed-point integers; strings are
// dictionary encoded. Both reduce to the uint32 integer path, so every
// scheme, kernel, and benchmark applies unchanged.
#ifndef TILECOMP_CODEC_TYPED_COLUMN_H_
#define TILECOMP_CODEC_TYPED_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "codec/column.h"
#include "codec/stats.h"
#include "common/macros.h"
#include "ssb/dictionary.h"

namespace tilecomp::codec {

// A fixed-point decimal column: value = integer * 10^-scale. Values must be
// non-negative and fit in 32 bits at the chosen scale (the paper's data
// model; SSB money columns use scale 2).
class DecimalColumn {
 public:
  explicit DecimalColumn(int scale) : scale_(scale), pow_(1) {
    TILECOMP_CHECK(scale >= 0 && scale <= 9);
    for (int i = 0; i < scale; ++i) pow_ *= 10;
  }

  void Append(double value) {
    TILECOMP_CHECK(value >= 0);
    const double fixed = value * pow_ + 0.5;
    TILECOMP_CHECK(fixed < 4294967296.0);
    raw_.push_back(static_cast<uint32_t>(fixed));
  }
  void AppendFixed(uint32_t fixed) { raw_.push_back(fixed); }

  double Value(size_t i) const {
    return static_cast<double>(raw_[i]) / pow_;
  }
  size_t size() const { return raw_.size(); }
  int scale() const { return scale_; }
  const std::vector<uint32_t>& fixed_values() const { return raw_; }

  // Compress with the GPU-* chooser; decompression returns fixed-point
  // integers convertible via Value().
  CompressedColumn Compress() const {
    return EncodeGpuStar(raw_);
  }

 private:
  int scale_;
  uint32_t pow_;
  std::vector<uint32_t> raw_;
};

// A dictionary-encoded string column: codes are assigned in first-seen
// order (use SortedStringColumn below when range predicates on strings must
// map to code ranges).
class StringColumn {
 public:
  void Append(const std::string& value) {
    codes_.push_back(dict_.GetOrAdd(value));
  }

  const std::string& Value(size_t i) const { return dict_.Value(codes_[i]); }
  size_t size() const { return codes_.size(); }
  const ssb::Dictionary& dictionary() const { return dict_; }
  const std::vector<uint32_t>& codes() const { return codes_; }

  CompressedColumn Compress() const {
    return EncodeGpuStar(codes_);
  }

  // Equality predicate pushdown: returns the code to compare against, or
  // false if the constant cannot match any row.
  bool CodeFor(const std::string& value, uint32_t* code) const {
    if (!dict_.Contains(value)) return false;
    *code = dict_.Code(value);
    return true;
  }

 private:
  ssb::Dictionary dict_;
  std::vector<uint32_t> codes_;
};

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_TYPED_COLUMN_H_
