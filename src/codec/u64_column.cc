#include "codec/u64_column.h"

#include "common/macros.h"

namespace tilecomp::codec {

U64Column U64Column::Encode(const std::vector<uint64_t>& values) {
  TILECOMP_CHECK(values.size() <= 0xFFFFFFFFull);
  std::vector<uint32_t> low(values.size());
  std::vector<uint32_t> high(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    low[i] = static_cast<uint32_t>(values[i]);
    high[i] = static_cast<uint32_t>(values[i] >> 32);
  }
  U64Column col;
  col.low_ = EncodeGpuStar(low);
  col.high_ = EncodeGpuStar(high);
  return col;
}

std::vector<uint64_t> U64Column::DecodeHost() const {
  std::vector<uint32_t> low = low_.DecodeHost();
  std::vector<uint32_t> high = high_.DecodeHost();
  std::vector<uint64_t> out(low.size());
  for (size_t i = 0; i < low.size(); ++i) {
    out[i] = (static_cast<uint64_t>(high[i]) << 32) | low[i];
  }
  return out;
}

}  // namespace tilecomp::codec
