// 64-bit integer columns. The tile formats are 32-bit native (the paper's
// data model); 64-bit values are stored as two correlated 32-bit columns
// (low/high words), each compressed independently with the GPU-* chooser.
// For the common cases — counters, timestamps, money — the high word is
// constant or slowly varying, so it collapses under FOR/RLE and the
// effective cost approaches the 32-bit path.
#ifndef TILECOMP_CODEC_U64_COLUMN_H_
#define TILECOMP_CODEC_U64_COLUMN_H_

#include <cstdint>
#include <vector>

#include "codec/column.h"
#include "codec/stats.h"

namespace tilecomp::codec {

class U64Column {
 public:
  static U64Column Encode(const std::vector<uint64_t>& values);

  uint32_t size() const { return low_.size(); }
  uint64_t compressed_bytes() const {
    return low_.compressed_bytes() + high_.compressed_bytes();
  }
  double bits_per_int() const {
    return size() == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) / size();
  }

  const CompressedColumn& low() const { return low_; }
  const CompressedColumn& high() const { return high_; }

  std::vector<uint64_t> DecodeHost() const;

 private:
  CompressedColumn low_;
  CompressedColumn high_;
};

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_U64_COLUMN_H_
