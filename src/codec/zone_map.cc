#include "codec/zone_map.h"

#include <algorithm>

namespace tilecomp::codec {

ZoneMap ZoneMap::Build(const uint32_t* values, size_t count) {
  ZoneMap zm;
  for (size_t begin = 0; begin < count; begin += kTileSize) {
    const size_t end = std::min(begin + kTileSize, count);
    uint32_t lo = values[begin];
    uint32_t hi = values[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    zm.mins_.push_back(lo);
    zm.maxs_.push_back(hi);
  }
  return zm;
}

}  // namespace tilecomp::codec
