#include "codec/zone_map.h"

#include <algorithm>

namespace tilecomp::codec {

namespace {

void BuildGranularity(const uint32_t* values, size_t count, uint32_t grain,
                      std::vector<uint32_t>* mins,
                      std::vector<uint32_t>* maxs) {
  for (size_t begin = 0; begin < count; begin += grain) {
    const size_t end = std::min(begin + grain, count);
    uint32_t lo = values[begin];
    uint32_t hi = values[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    mins->push_back(lo);
    maxs->push_back(hi);
  }
}

}  // namespace

ZoneMap ZoneMap::Build(const uint32_t* values, size_t count) {
  ZoneMap zm;
  BuildGranularity(values, count, kTileSize, &zm.mins_, &zm.maxs_);
  BuildGranularity(values, count, kBlockSize, &zm.block_mins_,
                   &zm.block_maxs_);
  return zm;
}

}  // namespace tilecomp::codec
