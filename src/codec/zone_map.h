// Per-tile zone maps: min/max per 512-value tile, enabling predicate
// pushdown with whole-tile skipping. This generalizes the paper's
// Section 8 random-access observation — a compressed tile must be decoded
// entirely or not at all, so the natural skipping granularity *is* the
// tile, and a zone map decides without touching the data.
//
// The map also keeps a finer min/max per 128-value block (the GPU-FOR data
// block / one quarter tile). The compressed-domain evaluators use the block
// entries to short-circuit blocks whose range is disjoint from (all bits
// cleared) or fully inside (all bits kept) a predicate range, decoding only
// genuinely mixed blocks. Total overhead: 16 bytes per 512 values at tile
// granularity plus 16 bytes per 128 values at block granularity, i.e. about
// 1.25 bits per int.
#ifndef TILECOMP_CODEC_ZONE_MAP_H_
#define TILECOMP_CODEC_ZONE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/span.h"

namespace tilecomp::codec {

class ZoneMap {
 public:
  static constexpr uint32_t kTileSize = 512;
  // Block granularity of the fine-grained entries; matches the GPU-FOR data
  // block and divides kTileSize.
  static constexpr uint32_t kBlockSize = 128;

  // Build from raw values (one zone per 512 values, one block entry per
  // 128 values).
  static ZoneMap Build(const uint32_t* values, size_t count);
  static ZoneMap Build(U32Span values) {
    return Build(values.data(), values.size());
  }

  // Reassemble from stored entry vectors (serialization, mutable-column
  // snapshots). The caller guarantees the vectors are pairwise equal-length
  // per granularity and consistent with the column's value count.
  static ZoneMap FromParts(std::vector<uint32_t> mins,
                           std::vector<uint32_t> maxs,
                           std::vector<uint32_t> block_mins,
                           std::vector<uint32_t> block_maxs) {
    ZoneMap zm;
    zm.mins_ = std::move(mins);
    zm.maxs_ = std::move(maxs);
    zm.block_mins_ = std::move(block_mins);
    zm.block_maxs_ = std::move(block_maxs);
    return zm;
  }

  size_t num_tiles() const { return mins_.size(); }
  uint32_t tile_min(size_t tile) const { return mins_[tile]; }
  uint32_t tile_max(size_t tile) const { return maxs_[tile]; }

  size_t num_blocks() const { return block_mins_.size(); }
  uint32_t block_min(size_t block) const { return block_mins_[block]; }
  uint32_t block_max(size_t block) const { return block_maxs_[block]; }

  uint64_t bytes() const {
    return (mins_.size() + maxs_.size() + block_mins_.size() +
            block_maxs_.size()) *
           4;
  }

  // Can any value in `tile` fall inside [lo, hi]?
  bool TileCanMatch(size_t tile, uint32_t lo, uint32_t hi) const {
    return maxs_[tile] >= lo && mins_[tile] <= hi;
  }

  // Does every value in `tile` fall inside [lo, hi]?
  bool TileFullyInside(size_t tile, uint32_t lo, uint32_t hi) const {
    return mins_[tile] >= lo && maxs_[tile] <= hi;
  }

  bool BlockCanMatch(size_t block, uint32_t lo, uint32_t hi) const {
    return block_maxs_[block] >= lo && block_mins_[block] <= hi;
  }

  bool BlockFullyInside(size_t block, uint32_t lo, uint32_t hi) const {
    return block_mins_[block] >= lo && block_maxs_[block] <= hi;
  }

  // Entry vectors for the serializer (codec/serialize.cc zone-map section).
  const std::vector<uint32_t>& tile_mins() const { return mins_; }
  const std::vector<uint32_t>& tile_maxs() const { return maxs_; }
  const std::vector<uint32_t>& block_mins() const { return block_mins_; }
  const std::vector<uint32_t>& block_maxs() const { return block_maxs_; }

  // Number of tiles a [lo, hi] range predicate must actually decode.
  size_t CountMatchingTiles(uint32_t lo, uint32_t hi) const {
    size_t n = 0;
    for (size_t t = 0; t < mins_.size(); ++t) n += TileCanMatch(t, lo, hi);
    return n;
  }

 private:
  std::vector<uint32_t> mins_;
  std::vector<uint32_t> maxs_;
  std::vector<uint32_t> block_mins_;
  std::vector<uint32_t> block_maxs_;
};

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_ZONE_MAP_H_
