// Per-tile zone maps: min/max per 512-value tile, enabling predicate
// pushdown with whole-tile skipping. This generalizes the paper's
// Section 8 random-access observation — a compressed tile must be decoded
// entirely or not at all, so the natural skipping granularity *is* the
// tile, and a zone map decides without touching the data.
#ifndef TILECOMP_CODEC_ZONE_MAP_H_
#define TILECOMP_CODEC_ZONE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tilecomp::codec {

class ZoneMap {
 public:
  static constexpr uint32_t kTileSize = 512;

  // Build from raw values (one zone per 512 values).
  static ZoneMap Build(const uint32_t* values, size_t count);

  size_t num_tiles() const { return mins_.size(); }
  uint32_t tile_min(size_t tile) const { return mins_[tile]; }
  uint32_t tile_max(size_t tile) const { return maxs_[tile]; }
  uint64_t bytes() const { return (mins_.size() + maxs_.size()) * 4; }

  // Can any value in `tile` fall inside [lo, hi]?
  bool TileCanMatch(size_t tile, uint32_t lo, uint32_t hi) const {
    return maxs_[tile] >= lo && mins_[tile] <= hi;
  }

  // Number of tiles a [lo, hi] range predicate must actually decode.
  size_t CountMatchingTiles(uint32_t lo, uint32_t hi) const {
    size_t n = 0;
    for (size_t t = 0; t < mins_.size(); ++t) n += TileCanMatch(t, lo, hi);
    return n;
  }

 private:
  std::vector<uint32_t> mins_;
  std::vector<uint32_t> maxs_;
};

}  // namespace tilecomp::codec

#endif  // TILECOMP_CODEC_ZONE_MAP_H_
