// Bit-manipulation helpers used by the bit-packing formats.
#ifndef TILECOMP_COMMON_BIT_UTIL_H_
#define TILECOMP_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace tilecomp {

// Number of bits needed to represent `v` in an unsigned binary encoding.
// BitsNeeded(0) == 0 by convention (a run of zeros packs into zero bits).
inline uint32_t BitsNeeded(uint32_t v) {
  return v == 0 ? 0u : 32u - static_cast<uint32_t>(std::countl_zero(v));
}

inline uint32_t BitsNeeded64(uint64_t v) {
  return v == 0 ? 0u : 64u - static_cast<uint32_t>(std::countl_zero(v));
}

// ceil(a / b) for non-negative a, positive b. Written as div + remainder
// test rather than the classic (a + b - 1) / b, which wraps when a is
// within b of the type's max — reachable here from 64-bit payload sizing
// in the serializer (e.g., CeilDiv(byte_count, 4096) near UINT64_MAX).
template <typename T>
constexpr T CeilDiv(T a, T b) {
  return a / b + (a % b != 0 ? 1 : 0);
}

// Round `a` up to the nearest multiple of `b`. Note the multiply can still
// overflow when the rounded value itself exceeds the type's range; callers
// pass values at least one multiple of `b` below the max.
template <typename T>
constexpr T RoundUp(T a, T b) {
  return CeilDiv(a, b) * b;
}

// Mask with the low `bits` bits set; Mask(32) == 0xFFFFFFFF.
inline uint32_t LowMask(uint32_t bits) {
  return bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1u);
}

inline uint64_t LowMask64(uint32_t bits) {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1ull);
}

}  // namespace tilecomp

#endif  // TILECOMP_COMMON_BIT_UTIL_H_
