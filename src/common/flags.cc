#include "common/flags.h"

#include <cstdlib>

namespace tilecomp {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

}  // namespace tilecomp
