#include "common/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace tilecomp {

namespace {

// Abort with a message naming the flag and the value that failed to parse.
// Benchmark binaries have no error-recovery path for a mistyped flag; dying
// loudly beats silently running with a zero parameter.
[[noreturn]] void DieBadFlag(const std::string& name, const std::string& value,
                             const char* expected) {
  std::fprintf(stderr, "invalid value for --%s: '%s' is not %s\n",
               name.c_str(), value.c_str(), expected);
  std::abort();
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& value = it->second;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE) {
    DieBadFlag(name, value, "an integer");
  }
  return parsed;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& value = it->second;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE) {
    DieBadFlag(name, value, "a number");
  }
  return parsed;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

}  // namespace tilecomp
