// Minimal command-line flag parsing for benchmark/example binaries.
// Supports "--name value" and "--name=value"; a bare "--name" stores "true".
// GetInt/GetDouble abort with a clear message when the stored value is not a
// fully parseable number ("--n=abc", "--n=12abc", a bare numeric flag) —
// silently running with 0 was a footgun.
#ifndef TILECOMP_COMMON_FLAGS_H_
#define TILECOMP_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace tilecomp {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tilecomp

#endif  // TILECOMP_COMMON_FLAGS_H_
