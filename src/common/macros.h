// Assertion and utility macros shared across the tilecomp codebase.
#ifndef TILECOMP_COMMON_MACROS_H_
#define TILECOMP_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Unconditional runtime check. Used on cold paths (encoder setup, format
// validation); aborts with a message on failure. The library does not use
// exceptions.
#define TILECOMP_CHECK(cond)                                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define TILECOMP_CHECK_MSG(cond, msg)                                        \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Debug-only check, compiled out of release hot loops.
#ifndef NDEBUG
#define TILECOMP_DCHECK(cond) TILECOMP_CHECK(cond)
#else
#define TILECOMP_DCHECK(cond) \
  do {                        \
  } while (0)
#endif

#define TILECOMP_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;               \
  TypeName& operator=(const TypeName&) = delete

#endif  // TILECOMP_COMMON_MACROS_H_
