#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace tilecomp {

std::vector<uint32_t> GenUniformBits(size_t n, uint32_t bits, uint64_t seed) {
  TILECOMP_CHECK(bits <= 32);
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  const uint64_t bound = bits >= 32 ? (1ull << 32) : (1ull << bits);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint32_t>(rng.NextBounded(bound));
  }
  if (bits > 0 && n > 0) {
    // Pin the top of the range so the dataset has exactly `bits` effective
    // bits, as in the paper ("all data elements in the i-th dataset have
    // exactly i effective bits").
    out[rng.NextBounded(n)] = static_cast<uint32_t>(bound - 1);
  }
  return out;
}

std::vector<uint32_t> GenUniformRange(size_t n, uint32_t lo, uint32_t hi,
                                      uint64_t seed) {
  TILECOMP_CHECK(lo < hi);
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = lo + static_cast<uint32_t>(rng.NextBounded(hi - lo));
  }
  return out;
}

std::vector<uint32_t> GenSortedUnique(size_t n, uint64_t unique_count,
                                      uint64_t seed) {
  TILECOMP_CHECK(unique_count >= 1);
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  // Each of the `unique_count` values occupies a contiguous segment of
  // roughly n/unique_count positions (a table sorted on this column).
  // Segment lengths are randomized +/-50% to avoid perfectly regular runs.
  if (unique_count >= n) {
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint32_t>(i);
    return out;
  }
  const double avg = static_cast<double>(n) / static_cast<double>(unique_count);
  size_t pos = 0;
  uint64_t value = 0;
  while (pos < n) {
    double jitter = 0.5 + rng.NextDouble();  // [0.5, 1.5)
    size_t len = std::max<size_t>(1, static_cast<size_t>(avg * jitter));
    len = std::min(len, n - pos);
    for (size_t i = 0; i < len; ++i) out[pos + i] = static_cast<uint32_t>(value);
    pos += len;
    if (value + 1 < unique_count) ++value;
  }
  return out;
}

std::vector<uint32_t> GenNormal(size_t n, double mean, double stddev,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    // Box-Muller.
    double u1 = rng.NextDouble();
    double u2 = rng.NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    double v = mean + stddev * z;
    if (v < 0) v = 0;
    if (v > 4294967295.0) v = 4294967295.0;
    out[i] = static_cast<uint32_t>(v);
  }
  return out;
}

std::vector<uint32_t> GenZipf(size_t n, uint64_t universe, double alpha,
                              uint64_t seed) {
  TILECOMP_CHECK(universe >= 1);
  Rng rng(seed);
  // Inverse-CDF sampling over a truncated harmonic table. For large
  // universes sample rank via the standard two-region approximation.
  const uint64_t table_size = std::min<uint64_t>(universe, 1u << 20);
  std::vector<double> cdf(table_size);
  double sum = 0;
  for (uint64_t k = 0; k < table_size; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf[k] = sum;
  }
  for (auto& c : cdf) c /= sum;
  std::vector<uint32_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.NextDouble();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    uint64_t rank = static_cast<uint64_t>(it - cdf.begin());
    out[i] = static_cast<uint32_t>(std::min<uint64_t>(rank, universe - 1));
  }
  return out;
}

std::vector<uint32_t> GenRuns(size_t n, uint32_t avg_run_length,
                              uint32_t value_bits, uint64_t seed) {
  TILECOMP_CHECK(avg_run_length >= 1);
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  const uint64_t vbound = value_bits >= 32 ? (1ull << 32) : (1ull << value_bits);
  size_t pos = 0;
  while (pos < n) {
    size_t len = 1 + rng.NextBounded(2ull * avg_run_length - 1);
    len = std::min(len, n - pos);
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(vbound));
    for (size_t i = 0; i < len; ++i) out[pos + i] = v;
    pos += len;
  }
  return out;
}

std::vector<uint32_t> GenSkewedRuns(size_t n, uint32_t block_size,
                                    uint32_t period, uint32_t value_bits,
                                    uint64_t seed) {
  TILECOMP_CHECK(block_size >= 1);
  TILECOMP_CHECK(period >= 1);
  TILECOMP_CHECK(value_bits >= 1 && value_bits <= 32);
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  const uint64_t vbound = value_bits >= 32 ? (1ull << 32) : (1ull << value_bits);
  for (size_t begin = 0; begin < n; begin += block_size) {
    const size_t end = std::min(begin + block_size, n);
    const size_t block = begin / block_size;
    if (block % period == 0) {
      // Incompressible block: adjacent values always differ, so RLE sees
      // one run per value.
      uint32_t prev = static_cast<uint32_t>(rng.NextBounded(vbound));
      out[begin] = prev;
      for (size_t i = begin + 1; i < end; ++i) {
        uint32_t v = static_cast<uint32_t>(rng.NextBounded(vbound));
        if (v == prev) {
          ++v;
          if (static_cast<uint64_t>(v) >= vbound) v = 0;
        }
        out[i] = prev = v;
      }
    } else {
      const uint32_t v = static_cast<uint32_t>(rng.NextBounded(vbound));
      for (size_t i = begin; i < end; ++i) out[i] = v;
    }
  }
  return out;
}

std::vector<uint32_t> GenSortedGaps(size_t n, uint32_t max_gap, uint64_t seed) {
  TILECOMP_CHECK(max_gap >= 1);
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  uint64_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    v += 1 + rng.NextBounded(max_gap);
    out[i] = static_cast<uint32_t>(v);
  }
  return out;
}

}  // namespace tilecomp
