// Deterministic random-number generation and the synthetic data
// distributions used in the paper's evaluation (Sections 9.2 and 9.3).
#ifndef TILECOMP_COMMON_RANDOM_H_
#define TILECOMP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tilecomp {

// SplitMix64: tiny, fast, high-quality 64-bit generator. Deterministic for a
// given seed so every test and benchmark is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBounded(uint64_t bound) {
    return bound == 0 ? 0 : Next() % bound;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

// --- Synthetic dataset generators (evaluation Sections 9.2 / 9.3) ---

// Uniform values in [0, 2^bits): the varying-bitwidth dataset of Section 9.2.
std::vector<uint32_t> GenUniformBits(size_t n, uint32_t bits, uint64_t seed);

// Uniform values in [lo, hi).
std::vector<uint32_t> GenUniformRange(size_t n, uint32_t lo, uint32_t hi,
                                      uint64_t seed);

// D1: a sorted array with `unique_count` distinct values spread over the
// array (resembles a table sorted on one column).
std::vector<uint32_t> GenSortedUnique(size_t n, uint64_t unique_count,
                                      uint64_t seed);

// D2: normal distribution, standard deviation `stddev`, mean `mean`,
// clamped at 0 (values are stored as unsigned 32-bit ints).
std::vector<uint32_t> GenNormal(size_t n, double mean, double stddev,
                                uint64_t seed);

// D3: Zipfian distribution over `universe` distinct values with exponent
// `alpha` (1 = least skewed, 5 = most skewed). Resembles dictionary codes of
// a text corpus.
std::vector<uint32_t> GenZipf(size_t n, uint64_t universe, double alpha,
                              uint64_t seed);

// Runs of equal values whose lengths are uniform in [1, 2*avg_run_length-1];
// values are uniform in [0, 2^value_bits).
std::vector<uint32_t> GenRuns(size_t n, uint32_t avg_run_length,
                              uint32_t value_bits, uint64_t seed);

// Block-skewed run structure: the array is a sequence of `block_size`-value
// blocks; every `period`-th block is incompressible (all-distinct values,
// block_size runs of length 1 under RLE) while the rest are a single
// constant run. Per-tile decode cost therefore varies ~10-100x across
// blocks — the workload where static tile-per-block scheduling stalls each
// wave on its slowest tile and a persistent (work-stealing) grid wins.
std::vector<uint32_t> GenSkewedRuns(size_t n, uint32_t block_size,
                                    uint32_t period, uint32_t value_bits,
                                    uint64_t seed);

// Strictly increasing array (sorted, all values unique): 0..n-1 with random
// positive gaps bounded by `max_gap`.
std::vector<uint32_t> GenSortedGaps(size_t n, uint32_t max_gap, uint64_t seed);

}  // namespace tilecomp

#endif  // TILECOMP_COMMON_RANDOM_H_
