// A minimal non-owning contiguous view, in the spirit of std::span but kept
// local so the public API has one stable vocabulary type for "some values"
// (and so call sites never pass raw pointer/length pairs). Implicitly
// constructible from std::vector, so `Encode(scheme, values)` works whether
// `values` is a vector or an explicit (ptr, count) view.
#ifndef TILECOMP_COMMON_SPAN_H_
#define TILECOMP_COMMON_SPAN_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace tilecomp {

template <typename T>
class Span {
 public:
  using value_type = std::remove_const_t<T>;

  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}

  // Implicit view over a vector (const view only; the library's spans are
  // read-only inputs).
  template <typename U = T,
            typename = std::enable_if_t<std::is_const_v<U>>>
  constexpr Span(const std::vector<value_type>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  // The view of `count` elements starting at `offset`; both clamped to the
  // span's bounds (callers slice with "rest of it" semantics).
  constexpr Span subspan(size_t offset, size_t count = SIZE_MAX) const {
    if (offset > size_) offset = size_;
    if (count > size_ - offset) count = size_ - offset;
    return Span(data_ + offset, count);
  }
  constexpr Span first(size_t count) const { return subspan(0, count); }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

// The library's column-input vocabulary type.
using U32Span = Span<const uint32_t>;

}  // namespace tilecomp

#endif  // TILECOMP_COMMON_SPAN_H_
