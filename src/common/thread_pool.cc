#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace tilecomp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  ParallelForRange(count, [&body](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  });
}

void ThreadPool::ParallelForRange(
    size_t count, const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  const size_t nchunks = std::min(count, num_threads() * 4);
  const size_t chunk = (count + nchunks - 1) / nchunks;
  for (size_t begin = 0; begin < count; begin += chunk) {
    const size_t end = std::min(begin + chunk, count);
    Submit([&body, begin, end] { body(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // RAII decrement: in_flight_ must reach zero even when the task throws,
    // or Wait() deadlocks on a count that can never drain.
    struct InFlightGuard {
      ThreadPool* pool;
      ~InFlightGuard() {
        std::lock_guard<std::mutex> lock(pool->mu_);
        if (--pool->in_flight_ == 0) pool->done_cv_.notify_all();
      }
    } guard{this};
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace tilecomp
