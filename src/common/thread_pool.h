// A minimal work-stealing-free thread pool with a ParallelFor convenience.
// Used by the simulator to execute thread blocks and by the host-side
// encoders (the paper compresses on a 6-core CPU host, Section 8).
#ifndef TILECOMP_COMMON_THREAD_POOL_H_
#define TILECOMP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace tilecomp {

class ThreadPool {
 public:
  // num_threads == 0 means hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  TILECOMP_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  size_t num_threads() const { return workers_.size(); }

  // Enqueue a task. If the task throws, the first exception is captured and
  // rethrown from the next Wait(); the remaining tasks still run.
  void Submit(std::function<void()> task);

  // Block until all submitted tasks have completed. Rethrows the first
  // exception any task threw since the previous Wait(), leaving the pool
  // usable.
  void Wait();

  // Run body(i) for i in [0, count) across the pool, chunked; blocks until
  // done. body must be safe to call concurrently for distinct i. Rethrows
  // the first exception thrown by any invocation (after all chunks finish).
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  // Chunked variant: body(begin, end) on contiguous ranges.
  void ParallelForRange(
      size_t count, const std::function<void(size_t, size_t)>& body);

  // Process-wide default pool (sized to hardware concurrency).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  // First exception thrown by a task since the last Wait(); guarded by mu_.
  std::exception_ptr first_error_;
};

}  // namespace tilecomp

#endif  // TILECOMP_COMMON_THREAD_POOL_H_
