// Dense group-by aggregation buffer in simulated global memory. SSB group-by
// spaces are small and dense (year x brand, year x nation, ...), so Crystal
// aggregates with atomic adds into a dense array; the array is L2-resident.
#ifndef TILECOMP_CRYSTAL_AGGREGATOR_H_
#define TILECOMP_CRYSTAL_AGGREGATOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>

#include "common/bit_util.h"
#include "common/macros.h"
#include "sim/block_context.h"

namespace tilecomp::crystal {

class GroupAccumulator {
 public:
  explicit GroupAccumulator(uint32_t dim0, uint32_t dim1 = 1,
                            uint32_t dim2 = 1)
      : dim0_(dim0), dim1_(dim1), dim2_(dim2) {
    const size_t total =
        static_cast<size_t>(dim0) * dim1 * dim2;
    TILECOMP_CHECK(total > 0 && total <= (1u << 24));
    cells_ = std::make_unique<std::atomic<int64_t>[]>(total);
    for (size_t i = 0; i < total; ++i) {
      cells_[i].store(0, std::memory_order_relaxed);
    }
  }

  // Atomic add into group (k0, k1, k2). Functional only; use AggCost for
  // the per-tile accounting.
  void Add(uint32_t k0, uint32_t k1, uint32_t k2, int64_t value) {
    TILECOMP_DCHECK(k0 < dim0_ && k1 < dim1_ && k2 < dim2_);
    const size_t idx =
        (static_cast<size_t>(k0) * dim1_ + k1) * dim2_ + k2;
    cells_[idx].fetch_add(value, std::memory_order_relaxed);
  }
  void Add(uint32_t k0, int64_t value) { Add(k0, 0, 0, value); }

  // Cost of `count` atomic aggregate updates issued by one thread block:
  // L2-resident atomics — instruction issue + ALU, no HBM bytes.
  static void AggCost(sim::BlockContext& ctx, uint32_t count) {
    ctx.stats().warp_global_accesses += CeilDiv<uint32_t>(count, 32);
    ctx.Compute(static_cast<uint64_t>(count) * 4);
  }

  // Host-side extraction of non-empty groups.
  std::map<std::array<uint32_t, 3>, int64_t> NonZeroGroups() const {
    std::map<std::array<uint32_t, 3>, int64_t> out;
    for (uint32_t a = 0; a < dim0_; ++a) {
      for (uint32_t b = 0; b < dim1_; ++b) {
        for (uint32_t c = 0; c < dim2_; ++c) {
          const size_t idx = (static_cast<size_t>(a) * dim1_ + b) * dim2_ + c;
          const int64_t v = cells_[idx].load(std::memory_order_relaxed);
          if (v != 0) out[{a, b, c}] = v;
        }
      }
    }
    return out;
  }

  int64_t Total() const {
    int64_t total = 0;
    const size_t n = static_cast<size_t>(dim0_) * dim1_ * dim2_;
    for (size_t i = 0; i < n; ++i) {
      total += cells_[i].load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  uint32_t dim0_, dim1_, dim2_;
  std::unique_ptr<std::atomic<int64_t>[]> cells_;
};

}  // namespace tilecomp::crystal

#endif  // TILECOMP_CRYSTAL_AGGREGATOR_H_
