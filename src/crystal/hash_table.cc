#include "crystal/hash_table.h"

#include <algorithm>

namespace tilecomp::crystal {

HashTable::HashTable(uint32_t expected_keys) {
  uint32_t cap = 64;
  while (cap < 2 * std::max(expected_keys, 1u)) cap <<= 1;
  capacity_ = cap;
  slots_ = std::make_unique<std::atomic<uint64_t>[]>(capacity_);
  for (uint32_t i = 0; i < capacity_; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

void HashTable::BuildOnDevice(sim::Device& dev,
                              const std::vector<uint32_t>& keys,
                              const std::vector<uint32_t>& payloads,
                              const std::function<bool(uint32_t)>& filter) {
  TILECOMP_CHECK(keys.size() == payloads.size());
  const uint32_t n = static_cast<uint32_t>(keys.size());
  std::atomic<uint32_t> inserted{0};

  sim::LaunchConfig lc;
  lc.block_threads = 128;
  lc.grid_dim = std::max<int64_t>(1, CeilDiv<int64_t>(n, 512));
  lc.regs_per_thread = 24;
  dev.Launch("hash.build", lc, [&](sim::BlockContext& ctx) {
    const uint32_t begin =
        static_cast<uint32_t>(ctx.block_id()) * 512;
    const uint32_t end = std::min(begin + 512, n);
    if (begin >= end) return;
    // Read the key and payload columns coalesced.
    ctx.CoalescedRead(static_cast<uint64_t>(end - begin) * 8, true);
    uint32_t local_inserted = 0;
    for (uint32_t i = begin; i < end; ++i) {
      if (!filter(i)) continue;
      const uint32_t key = keys[i];
      TILECOMP_DCHECK(key != 0);
      uint64_t entry =
          (static_cast<uint64_t>(key) << 32) | payloads[i];
      uint32_t slot = Slot(key);
      for (;;) {
        uint64_t expected = 0;
        if (slots_[slot].compare_exchange_strong(expected, entry,
                                                 std::memory_order_relaxed)) {
          ++local_inserted;
          break;
        }
        if ((expected >> 32) == key) break;  // duplicate key: keep first
        slot = (slot + 1) & (capacity_ - 1);
      }
    }
    // Insert cost: scattered writes into the (L2-resident) table.
    ctx.stats().warp_global_accesses +=
        CeilDiv<uint32_t>(end - begin, 32) * 2;
    ctx.Compute(static_cast<uint64_t>(end - begin) * 8);
    inserted.fetch_add(local_inserted, std::memory_order_relaxed);
  });
  entries_ += inserted.load();
}

bool HashTable::Probe(uint32_t key, uint32_t* payload) const {
  uint32_t slot = Slot(key);
  for (;;) {
    const uint64_t entry = slots_[slot].load(std::memory_order_relaxed);
    if (entry == 0) return false;
    if ((entry >> 32) == key) {
      *payload = static_cast<uint32_t>(entry);
      return true;
    }
    slot = (slot + 1) & (capacity_ - 1);
  }
}

}  // namespace tilecomp::crystal
