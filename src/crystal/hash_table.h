// Open-addressing hash table in simulated global memory, used by the SSB
// query kernels for dimension joins (Section 9.4). Dimension tables are
// small, so probe traffic is L2-resident: probes cost instruction issue and
// latency, not HBM bandwidth.
#ifndef TILECOMP_CRYSTAL_HASH_TABLE_H_
#define TILECOMP_CRYSTAL_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bit_util.h"
#include "common/macros.h"
#include "sim/device.h"

namespace tilecomp::crystal {

class HashTable {
 public:
  // Capacity is rounded up to a power of two >= 2 * expected_keys.
  explicit HashTable(uint32_t expected_keys);

  // Build the table on the device: one kernel over the dimension table,
  // inserting key -> payload for every row that passes `filter`. Keys must
  // be nonzero and unique (primary keys).
  void BuildOnDevice(sim::Device& dev, const std::vector<uint32_t>& keys,
                     const std::vector<uint32_t>& payloads,
                     const std::function<bool(uint32_t row)>& filter);

  // Functional probe (device-function side). Returns true and sets *payload
  // if present. Accounting is done by the caller via ProbeCost().
  bool Probe(uint32_t key, uint32_t* payload) const;

  // Account the cost of `count` probes issued by one thread block: the
  // table is L2-resident, so probes cost warp instructions + ALU, not HBM
  // bytes.
  static void ProbeCost(sim::BlockContext& ctx, uint32_t count) {
    ctx.stats().warp_global_accesses += CeilDiv<uint32_t>(count, 32) * 2;
    ctx.Compute(static_cast<uint64_t>(count) * 6);
  }

  uint32_t capacity() const { return capacity_; }
  uint64_t bytes() const { return static_cast<uint64_t>(capacity_) * 8; }
  uint32_t entries() const { return entries_; }

 private:
  uint32_t Slot(uint32_t key) const {
    // Multiplicative (Fibonacci) hashing.
    return static_cast<uint32_t>(
               (static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> 32) &
           (capacity_ - 1);
  }

  uint32_t capacity_ = 0;
  uint32_t entries_ = 0;
  // Slot = key << 32 | payload; key 0 means empty.
  std::unique_ptr<std::atomic<uint64_t>[]> slots_;
};

}  // namespace tilecomp::crystal

#endif  // TILECOMP_CRYSTAL_HASH_TABLE_H_
