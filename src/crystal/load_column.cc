#include "crystal/load_column.h"

#include "common/bit_util.h"
#include "common/macros.h"

namespace tilecomp::crystal {

int64_t NumTiles(uint32_t count) {
  return CeilDiv<int64_t>(count, kTileSize);
}

uint32_t LoadColumnTile(sim::BlockContext& ctx,
                        const codec::CompressedColumn& column,
                        int64_t tile_id, uint32_t* out_tile) {
  switch (column.scheme()) {
    case codec::Scheme::kNone: {
      const auto& raw = *column.raw();
      return kernels::BlockLoadRaw(ctx, raw.data(),
                                   static_cast<uint32_t>(raw.size()), tile_id,
                                   kTileSize, out_tile);
    }
    case codec::Scheme::kGpuFor: {
      kernels::UnpackConfig cfg;  // D = 4 -> 512-value tile
      TILECOMP_DCHECK(column.gpu_for()->header.block_size *
                          static_cast<uint32_t>(cfg.effective_d()) ==
                      kTileSize);
      return kernels::LoadBitPack(ctx, *column.gpu_for(), tile_id, cfg,
                                  out_tile);
    }
    case codec::Scheme::kGpuDFor: {
      TILECOMP_DCHECK(column.gpu_dfor()->header.values_per_tile() ==
                      kTileSize);
      return kernels::LoadDBitPack(ctx, *column.gpu_dfor(), tile_id,
                                   out_tile);
    }
    case codec::Scheme::kGpuRFor: {
      TILECOMP_DCHECK(column.gpu_rfor()->header.block_size == kTileSize);
      return kernels::LoadRBitPack(ctx, *column.gpu_rfor(), tile_id,
                                   out_tile);
    }
    case codec::Scheme::kGpuBp: {
      // GPU-BP blocks are 128 values with no multi-block staging: four
      // independent single-block loads per tile.
      kernels::UnpackConfig cfg;
      cfg.d = 1;
      cfg.opt = kernels::UnpackOpt::kSharedMemory;
      uint32_t total = 0;
      for (int64_t b = 0; b < 4; ++b) {
        total += kernels::LoadBitPack(ctx, *column.gpu_for(), tile_id * 4 + b,
                                      cfg, out_tile + b * 128);
      }
      return total;
    }
    default:
      TILECOMP_CHECK_MSG(false,
                         "scheme cannot be decoded inline with a query");
  }
  return 0;
}

uint32_t DirectTileLoader::Load(sim::BlockContext& ctx,
                                const codec::CompressedColumn& column,
                                uint32_t column_id, int64_t tile_id,
                                uint32_t* out_tile) {
  (void)column_id;
  return LoadColumnTile(ctx, column, tile_id, out_tile);
}

int ColumnSmemBytes(const codec::CompressedColumn& column) {
  switch (column.scheme()) {
    case codec::Scheme::kNone:
      return 0;  // BlockLoad goes straight to registers
    case codec::Scheme::kGpuFor:
    case codec::Scheme::kGpuBp: {
      kernels::UnpackConfig cfg;
      return kernels::GpuForSmemBytes(*column.gpu_for(), cfg);
    }
    case codec::Scheme::kGpuDFor:
      return kernels::GpuDForSmemBytes(*column.gpu_dfor());
    case codec::Scheme::kGpuRFor:
      return kernels::GpuRForSmemBytes(*column.gpu_rfor());
    default:
      return 0;
  }
}

}  // namespace tilecomp::crystal
