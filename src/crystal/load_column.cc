#include "crystal/load_column.h"

#include <algorithm>
#include <vector>

#include "codec/zone_map.h"
#include "common/bit_util.h"
#include "common/macros.h"

namespace tilecomp::crystal {

int64_t NumTiles(uint32_t count) {
  return CeilDiv<int64_t>(count, kTileSize);
}

uint32_t LoadColumnTile(sim::BlockContext& ctx,
                        const codec::CompressedColumn& column,
                        int64_t tile_id, uint32_t* out_tile) {
  if (tile_id >= 0 && tile_id < NumTiles(column.size())) ctx.TileDecoded();
  switch (column.scheme()) {
    case codec::Scheme::kNone: {
      const auto& raw = *column.raw();
      return kernels::BlockLoadRaw(ctx, raw.data(),
                                   static_cast<uint32_t>(raw.size()), tile_id,
                                   kTileSize, out_tile);
    }
    case codec::Scheme::kGpuFor: {
      kernels::UnpackConfig cfg;  // D = 4 -> 512-value tile
      TILECOMP_DCHECK(column.gpu_for()->header.block_size *
                          static_cast<uint32_t>(cfg.effective_d()) ==
                      kTileSize);
      return kernels::LoadBitPack(ctx, *column.gpu_for(), tile_id, cfg,
                                  out_tile);
    }
    case codec::Scheme::kGpuDFor: {
      TILECOMP_DCHECK(column.gpu_dfor()->header.values_per_tile() ==
                      kTileSize);
      return kernels::LoadDBitPack(ctx, *column.gpu_dfor(), tile_id,
                                   out_tile);
    }
    case codec::Scheme::kGpuRFor: {
      TILECOMP_DCHECK(column.gpu_rfor()->header.block_size == kTileSize);
      return kernels::LoadRBitPack(ctx, *column.gpu_rfor(), tile_id,
                                   out_tile);
    }
    case codec::Scheme::kGpuBp: {
      // GPU-BP blocks are 128 values with no multi-block staging: four
      // independent single-block loads per tile.
      kernels::UnpackConfig cfg;
      cfg.d = 1;
      cfg.opt = kernels::UnpackOpt::kSharedMemory;
      uint32_t total = 0;
      for (int64_t b = 0; b < 4; ++b) {
        total += kernels::LoadBitPack(ctx, *column.gpu_for(), tile_id * 4 + b,
                                      cfg, out_tile + b * 128);
      }
      return total;
    }
    default:
      TILECOMP_CHECK_MSG(false,
                         "scheme cannot be decoded inline with a query");
  }
  return 0;
}

bool ColumnTileStats(const codec::CompressedColumn& column, int64_t tile_id,
                     uint32_t* min, uint32_t* max) {
  const codec::ZoneMap* zm = column.zone_map();
  if (zm == nullptr || tile_id < 0 ||
      static_cast<size_t>(tile_id) >= zm->num_tiles()) {
    return false;
  }
  *min = zm->tile_min(static_cast<size_t>(tile_id));
  *max = zm->tile_max(static_cast<size_t>(tile_id));
  return true;
}

namespace {

// Blocks per tile at the zone map's fine granularity.
constexpr uint32_t kBlocksPerTile =
    kTileSize / codec::ZoneMap::kBlockSize;

// Test decoded values of blocks listed in `mixed` against the predicate,
// clearing mask bits for non-matching rows. `tile` holds the decoded tile
// (valid values in [0, n)).
void TestMixedBlocks(sim::BlockContext& ctx, const uint32_t* tile, uint32_t n,
                     const uint32_t (&mixed)[kBlocksPerTile],
                     uint32_t mixed_count, const TilePredicate& pred,
                     TileMask* mask) {
  for (uint32_t i = 0; i < mixed_count; ++i) {
    const uint32_t begin = mixed[i] * codec::ZoneMap::kBlockSize;
    const uint32_t end =
        std::min(begin + codec::ZoneMap::kBlockSize, n);
    if (begin >= end) continue;
    ctx.Compute(static_cast<uint64_t>(end - begin) * 2);
    for (uint32_t v = begin; v < end; ++v) {
      if (!pred.Matches(tile[v])) mask->Clear(v);
    }
  }
}

}  // namespace

uint32_t EvaluateColumnTile(sim::BlockContext& ctx,
                            const codec::CompressedColumn& column,
                            int64_t tile_id, const TilePredicate& pred,
                            TileMask* mask) {
  const uint64_t tile_begin = static_cast<uint64_t>(tile_id) * kTileSize;
  if (tile_id < 0 || tile_begin >= column.size()) {
    mask->ClearAll();
    return 0;
  }
  const uint32_t n = static_cast<uint32_t>(
      std::min<uint64_t>(kTileSize, column.size() - tile_begin));

  // Tile-granularity zone-map check: 8 bytes of metadata decide the whole
  // tile in the common skewed cases.
  const codec::ZoneMap* zm = column.zone_map();
  if (zm != nullptr && static_cast<size_t>(tile_id) < zm->num_tiles()) {
    ctx.BroadcastRead(8);
    ctx.Compute(2);
    const size_t t = static_cast<size_t>(tile_id);
    if (pred.DisjointFrom(zm->tile_min(t), zm->tile_max(t))) {
      mask->ClearRange(0, TileMask::kBits);
      ctx.PushdownTilePruned();
      return n;
    }
    if (pred.Contains(zm->tile_min(t), zm->tile_max(t))) {
      mask->ClearRange(n, TileMask::kBits);
      return n;
    }
  }

  switch (column.scheme()) {
    case codec::Scheme::kGpuFor: {
      kernels::UnpackConfig cfg;  // D = 4 -> 512-value tile
      kernels::EvaluateBitPack(ctx, *column.gpu_for(), tile_id, cfg, pred,
                               mask);
      break;
    }
    case codec::Scheme::kGpuBp: {
      kernels::UnpackConfig cfg;
      cfg.d = 1;
      cfg.opt = kernels::UnpackOpt::kSharedMemory;
      for (int64_t b = 0; b < 4; ++b) {
        kernels::EvaluateBitPack(ctx, *column.gpu_for(), tile_id * 4 + b, cfg,
                                 pred, mask,
                                 static_cast<uint32_t>(b) * 128);
      }
      break;
    }
    case codec::Scheme::kGpuRFor: {
      kernels::EvaluateRBitPack(ctx, *column.gpu_rfor(), tile_id, pred, mask);
      break;
    }
    case codec::Scheme::kNone:
    case codec::Scheme::kGpuDFor: {
      // Delta references do not bound the decoded values (GPU-DFOR), and an
      // uncompressed tile has no frame-of-reference structure — use the
      // zone map's 128-value block entries to short-circuit, then decode
      // only what remains undecided.
      uint32_t mixed[kBlocksPerTile];
      uint32_t mixed_count = 0;
      uint64_t short_circuited = 0;
      if (zm != nullptr) {
        for (uint32_t k = 0; k < kBlocksPerTile; ++k) {
          const size_t gb =
              static_cast<size_t>(tile_id) * kBlocksPerTile + k;
          if (gb >= zm->num_blocks()) break;
          ctx.BroadcastRead(8);
          ctx.Compute(2);
          if (pred.DisjointFrom(zm->block_min(gb), zm->block_max(gb))) {
            const uint32_t begin = k * codec::ZoneMap::kBlockSize;
            mask->ClearRange(begin, begin + codec::ZoneMap::kBlockSize);
            ++short_circuited;
          } else if (pred.Contains(zm->block_min(gb), zm->block_max(gb))) {
            ++short_circuited;
          } else {
            mixed[mixed_count++] = k;
          }
        }
        ctx.PushdownBlocksShortCircuited(short_circuited);
      } else {
        for (uint32_t k = 0;
             k < kBlocksPerTile &&
             k * codec::ZoneMap::kBlockSize < n;
             ++k) {
          mixed[mixed_count++] = k;
        }
      }
      if (mixed_count == 0) break;
      if (column.scheme() == codec::Scheme::kNone) {
        // Read only the residual blocks of the raw column.
        const uint32_t* raw = column.raw()->data() + tile_begin;
        ctx.CoalescedRead(static_cast<uint64_t>(mixed_count) *
                              codec::ZoneMap::kBlockSize * 4,
                          /*aligned=*/true);
        TestMixedBlocks(ctx, raw, n, mixed, mixed_count, pred, mask);
      } else {
        // A GPU-DFOR tile decodes as a unit (the fused prefix sum needs the
        // whole tile), so one residual block costs the full tile decode.
        std::vector<uint32_t> tile(kTileSize, 0);
        LoadColumnTile(ctx, column, tile_id, tile.data());
        TestMixedBlocks(ctx, tile.data(), n, mixed, mixed_count, pred, mask);
      }
      break;
    }
    default: {
      // No inline device decoder (kNsf / kNsv / kRle / kSimdBp128): test the
      // host-decoded values, charged as a coalesced read of a materialized
      // copy of the tile. Keeps EvaluateColumnTile total over every scheme;
      // the serving layer's decompression pipeline is the fast path for
      // these encodings.
      const std::vector<uint32_t> all = column.DecodeHost();
      ctx.TileDecoded();
      ctx.CoalescedRead(static_cast<uint64_t>(n) * 4, /*aligned=*/true);
      ctx.Compute(static_cast<uint64_t>(n) * 2);
      for (uint32_t i = 0; i < n; ++i) {
        if (!pred.Matches(all[tile_begin + i])) mask->Clear(i);
      }
      break;
    }
  }

  mask->ClearRange(n, TileMask::kBits);
  return n;
}

uint32_t DirectTileLoader::LoadTile(sim::BlockContext& ctx,
                                    const codec::CompressedColumn& column,
                                    codec::ColumnId column_id, int64_t tile_id,
                                    uint32_t* out_tile) {
  (void)column_id;
  return LoadColumnTile(ctx, column, tile_id, out_tile);
}

int ColumnSmemBytes(const codec::CompressedColumn& column) {
  switch (column.scheme()) {
    case codec::Scheme::kNone:
      return 0;  // BlockLoad goes straight to registers
    case codec::Scheme::kGpuFor:
    case codec::Scheme::kGpuBp: {
      kernels::UnpackConfig cfg;
      return kernels::GpuForSmemBytes(*column.gpu_for(), cfg);
    }
    case codec::Scheme::kGpuDFor:
      return kernels::GpuDForSmemBytes(*column.gpu_dfor());
    case codec::Scheme::kGpuRFor:
      return kernels::GpuRForSmemBytes(*column.gpu_rfor());
    default:
      return 0;
  }
}

}  // namespace tilecomp::crystal
