// Crystal integration (Section 7): column access for query kernels.
//
// A query kernel processes one 512-value tile of the fact table per thread
// block. LoadColumnTile is the single entry point a kernel uses to
// materialize a column's tile into "registers" — for an uncompressed column
// it is Crystal's BlockLoad; for a compressed column it dispatches to the
// LoadBitPack / LoadDBitPack / LoadRBitPack device functions. Swapping a
// query from uncompressed to compressed data is exactly this one call —
// the paper's single-line-of-code integration.
//
// The compressed-domain execution path adds a second entry point:
// EvaluateColumnTile answers a range predicate over a tile without
// materializing it, producing a 512-bit selection mask from the column's
// zone map and the encoding's frame-of-reference structure. Query kernels
// evaluate predicates first and call the loader only for tiles with
// surviving rows (late materialization).
#ifndef TILECOMP_CRYSTAL_LOAD_COLUMN_H_
#define TILECOMP_CRYSTAL_LOAD_COLUMN_H_

#include <cstdint>

#include "codec/column.h"
#include "codec/column_id.h"
#include "kernels/load_tile.h"
#include "kernels/tile_mask.h"
#include "sim/block_context.h"

namespace tilecomp::crystal {

// The mask/predicate currency of the compressed-domain path, re-exported
// from the kernels layer so query code does not reach below crystal.
using kernels::TileMask;
using kernels::TilePredicate;

// Values per tile: 4 GPU-FOR blocks = 1 GPU-DFOR tile = 1 GPU-RFOR block.
inline constexpr uint32_t kTileSize = 512;

// Number of tiles needed to cover a column of `count` values.
int64_t NumTiles(uint32_t count);

// Load tile `tile_id` of `column` into out_tile[kTileSize]; returns the
// number of valid values. Supports kNone, kGpuFor, kGpuDFor, kGpuRFor and
// kGpuBp columns (the schemes that can be decoded inline with a query).
uint32_t LoadColumnTile(sim::BlockContext& ctx,
                        const codec::CompressedColumn& column,
                        int64_t tile_id, uint32_t* out_tile);

// Evaluate `pred` over tile `tile_id` of `column` in the compressed domain,
// ANDing the result into `mask` (callers start from TileMask::AllSet()).
// Resolution order: the column's zone map classifies the whole tile, then
// each 128-value block; only blocks the zone map cannot decide are touched
// at value granularity (FOR miniblock bounds, RFOR per-run compares, or a
// decode of the residual blocks). Mask bits past the tile's valid count are
// cleared. Returns the number of valid values in the tile. Works for every
// scheme: encodings without an inline device decoder fall back to testing
// the host-decoded values, charged as a coalesced read of the materialized
// tile.
uint32_t EvaluateColumnTile(sim::BlockContext& ctx,
                            const codec::CompressedColumn& column,
                            int64_t tile_id, const TilePredicate& pred,
                            TileMask* mask);

// Zone-map min/max of one tile. Returns false (outputs untouched) when the
// column carries no zone map or the tile is out of range.
bool ColumnTileStats(const codec::CompressedColumn& column, int64_t tile_id,
                     uint32_t* min, uint32_t* max);

// Pluggable column-access strategy for query kernels: how a kernel
// materializes a tile (LoadTile), inspects its value bounds (TileStats) and
// evaluates a predicate over it without materializing (EvaluateOnTile).
// The default strategy decodes inline every time; the serving layer
// (src/serve/) supplies a caching strategy that serves hot tiles from a
// decompressed-tile cache and answers predicates from cached tiles when
// resident. `column_id` identifies the column across queries (the serving
// layer keys its cache on it; LoCol ordinals for the SSB fact table).
// Implementations must be safe to call concurrently from many blocks (host
// threads).
class ColumnAccessor {
 public:
  virtual ~ColumnAccessor() = default;

  virtual uint32_t LoadTile(sim::BlockContext& ctx,
                            const codec::CompressedColumn& column,
                            codec::ColumnId column_id, int64_t tile_id,
                            uint32_t* out_tile) = 0;

  virtual bool TileStats(const codec::CompressedColumn& column,
                         codec::ColumnId column_id, int64_t tile_id,
                         uint32_t* min, uint32_t* max) {
    (void)column_id;
    return ColumnTileStats(column, tile_id, min, max);
  }

  virtual uint32_t EvaluateOnTile(sim::BlockContext& ctx,
                                  const codec::CompressedColumn& column,
                                  codec::ColumnId column_id, int64_t tile_id,
                                  const TilePredicate& pred, TileMask* mask) {
    (void)column_id;
    return EvaluateColumnTile(ctx, column, tile_id, pred, mask);
  }
};

// The default strategy: ignores column_id and decodes inline.
class DirectTileLoader : public ColumnAccessor {
 public:
  uint32_t LoadTile(sim::BlockContext& ctx,
                    const codec::CompressedColumn& column,
                    codec::ColumnId column_id, int64_t tile_id,
                    uint32_t* out_tile) override;
};

// Estimated shared-memory footprint one tile-load of `column` contributes
// to a query kernel's launch config.
int ColumnSmemBytes(const codec::CompressedColumn& column);

}  // namespace tilecomp::crystal

#endif  // TILECOMP_CRYSTAL_LOAD_COLUMN_H_
