// Crystal integration (Section 7): tile loading for query kernels.
//
// A query kernel processes one 512-value tile of the fact table per thread
// block. LoadColumnTile is the single entry point a kernel uses to
// materialize a column's tile into "registers" — for an uncompressed column
// it is Crystal's BlockLoad; for a compressed column it dispatches to the
// LoadBitPack / LoadDBitPack / LoadRBitPack device functions. Swapping a
// query from uncompressed to compressed data is exactly this one call —
// the paper's single-line-of-code integration.
#ifndef TILECOMP_CRYSTAL_LOAD_COLUMN_H_
#define TILECOMP_CRYSTAL_LOAD_COLUMN_H_

#include <cstdint>

#include "codec/column.h"
#include "kernels/load_tile.h"
#include "sim/block_context.h"

namespace tilecomp::crystal {

// Values per tile: 4 GPU-FOR blocks = 1 GPU-DFOR tile = 1 GPU-RFOR block.
inline constexpr uint32_t kTileSize = 512;

// Number of tiles needed to cover a column of `count` values.
int64_t NumTiles(uint32_t count);

// Load tile `tile_id` of `column` into out_tile[kTileSize]; returns the
// number of valid values. Supports kNone, kGpuFor, kGpuDFor, kGpuRFor and
// kGpuBp columns (the schemes that can be decoded inline with a query).
uint32_t LoadColumnTile(sim::BlockContext& ctx,
                        const codec::CompressedColumn& column,
                        int64_t tile_id, uint32_t* out_tile);

// Pluggable tile-load strategy for query kernels. The default strategy is
// LoadColumnTile above (decode inline, every time); the serving layer
// (src/serve/) supplies a caching strategy that serves hot tiles from a
// decompressed-tile cache instead of re-decoding them on every query.
// `column_id` identifies the column across queries (the serving layer keys
// its cache on it; LoCol ordinals for the SSB fact table). Implementations
// must be safe to call concurrently from many blocks (host threads).
class TileLoader {
 public:
  virtual ~TileLoader() = default;
  virtual uint32_t Load(sim::BlockContext& ctx,
                        const codec::CompressedColumn& column,
                        uint32_t column_id, int64_t tile_id,
                        uint32_t* out_tile) = 0;
};

// The default strategy: ignores column_id and decodes inline.
class DirectTileLoader : public TileLoader {
 public:
  uint32_t Load(sim::BlockContext& ctx, const codec::CompressedColumn& column,
                uint32_t column_id, int64_t tile_id,
                uint32_t* out_tile) override;
};

// Estimated shared-memory footprint one tile-load of `column` contributes
// to a query kernel's launch config.
int ColumnSmemBytes(const codec::CompressedColumn& column);

}  // namespace tilecomp::crystal

#endif  // TILECOMP_CRYSTAL_LOAD_COLUMN_H_
