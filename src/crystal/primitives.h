// Crystal-style block-wide primitives (Shanbhag et al. [40]): the building
// blocks analytic query kernels compose over a tile held in "registers".
// Each primitive runs the whole thread block's work functionally and
// accounts the ALU/shared-memory cost the real device function would incur.
//
// Flags follow Crystal's convention: a 0/1 byte per tile slot, combined
// conjunctively by successive predicates.
#ifndef TILECOMP_CRYSTAL_PRIMITIVES_H_
#define TILECOMP_CRYSTAL_PRIMITIVES_H_

#include <cstdint>

#include "sim/block_context.h"

namespace tilecomp::crystal {

// --- Predicates (BlockPred*) ---

// flags[i] = (items[i] OP value) for i in [0, n). One ALU op per item.
inline void BlockPredEq(sim::BlockContext& ctx, const uint32_t* items,
                        uint32_t n, uint32_t value, uint8_t* flags) {
  for (uint32_t i = 0; i < n; ++i) flags[i] = items[i] == value;
  ctx.Compute(n);
}

inline void BlockPredLt(sim::BlockContext& ctx, const uint32_t* items,
                        uint32_t n, uint32_t value, uint8_t* flags) {
  for (uint32_t i = 0; i < n; ++i) flags[i] = items[i] < value;
  ctx.Compute(n);
}

inline void BlockPredBetween(sim::BlockContext& ctx, const uint32_t* items,
                             uint32_t n, uint32_t lo, uint32_t hi,
                             uint8_t* flags) {
  for (uint32_t i = 0; i < n; ++i) {
    flags[i] = items[i] >= lo && items[i] <= hi;
  }
  ctx.Compute(2ull * n);
}

// flags[i] &= (items[i] OP ...): the And variants chain predicates.
inline void BlockPredAndEq(sim::BlockContext& ctx, const uint32_t* items,
                           uint32_t n, uint32_t value, uint8_t* flags) {
  for (uint32_t i = 0; i < n; ++i) flags[i] &= items[i] == value;
  ctx.Compute(n);
}

inline void BlockPredAndBetween(sim::BlockContext& ctx,
                                const uint32_t* items, uint32_t n,
                                uint32_t lo, uint32_t hi, uint8_t* flags) {
  for (uint32_t i = 0; i < n; ++i) {
    flags[i] &= items[i] >= lo && items[i] <= hi;
  }
  ctx.Compute(2ull * n);
}

// --- Reductions (BlockReduce / BlockSum) ---

// Masked sum over the tile: per-thread partials + a log-depth shared-memory
// tree (Crystal's BlockSum).
inline uint64_t BlockSumMasked(sim::BlockContext& ctx, const uint32_t* items,
                               const uint8_t* flags, uint32_t n) {
  uint64_t sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (flags[i]) sum += items[i];
  }
  ctx.Compute(n);
  ctx.Shared(static_cast<uint64_t>(ctx.block_threads()) * 8 * 2);
  for (int i = 0; i < 8; ++i) ctx.Barrier();  // log2(256) tree levels
  return sum;
}

// Count of set flags.
inline uint32_t BlockCount(sim::BlockContext& ctx, const uint8_t* flags,
                           uint32_t n) {
  uint32_t count = 0;
  for (uint32_t i = 0; i < n; ++i) count += flags[i];
  ctx.Compute(n);
  ctx.Shared(static_cast<uint64_t>(ctx.block_threads()) * 4 * 2);
  for (int i = 0; i < 8; ++i) ctx.Barrier();
  return count;
}

// --- Compaction (BlockShuffle) ---

// Gather the flagged items contiguously into `out`; returns how many.
// A shared-memory prefix sum over the flags produces the write offsets.
inline uint32_t BlockCompact(sim::BlockContext& ctx, const uint32_t* items,
                             const uint8_t* flags, uint32_t n,
                             uint32_t* out) {
  uint32_t pos = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (flags[i]) out[pos++] = items[i];
  }
  // Offsets via block scan + one shared round trip per surviving item.
  ctx.Shared(2ull * n * 12);
  ctx.Compute(2ull * n);
  for (int i = 0; i < 20; ++i) ctx.Barrier();
  return pos;
}

}  // namespace tilecomp::crystal

#endif  // TILECOMP_CRYSTAL_PRIMITIVES_H_
