#include "fault/fault.h"

#include <algorithm>
#include <cmath>

namespace tilecomp::fault {

namespace {

// SplitMix64: the full-period mixer everything below derives draws from.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Top 53 bits -> uniform double in [0, 1).
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// Distinct salt per site so the same sequence number / key draws
// independently at different sites.
uint64_t SiteSalt(FaultSite site) {
  return 0xa076'1d64'78bd'642full * (static_cast<uint64_t>(site) + 1);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kDeviceAlloc:
      return "device_alloc";
    case FaultSite::kTransfer:
      return "transfer";
    case FaultSite::kKernelLaunch:
      return "kernel_launch";
    case FaultSite::kTileDecode:
      return "tile_decode";
    case FaultSite::kCacheInsert:
      return "cache_insert";
  }
  return "?";
}

FaultPlanOptions FaultPlanOptions::Uniform(double rate, uint64_t seed) {
  FaultPlanOptions options;
  options.seed = seed;
  options.rate.fill(rate);
  return options;
}

FaultPlan::FaultPlan(FaultPlanOptions options) : options_(options) {
  for (double r : options_.rate) {
    TILECOMP_CHECK_MSG(r >= 0.0 && r <= 1.0, "fault rate must be in [0, 1]");
  }
}

bool FaultPlan::DecideLocked(FaultSite site, uint64_t mixin) {
  const int s = static_cast<int>(site);
  ++stats_.consults[static_cast<size_t>(s)];
  const double rate = options_.rate[static_cast<size_t>(s)];
  if (rate <= 0.0) return false;
  const double draw =
      ToUnit(Mix64(options_.seed ^ SiteSalt(site) ^ Mix64(mixin)));
  const bool fault = rate >= 1.0 || draw < rate;
  if (fault) ++stats_.injected[static_cast<size_t>(s)];
  return fault;
}

bool FaultPlan::ShouldFault(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t n = seq_[static_cast<size_t>(site)]++;
  return DecideLocked(site, n);
}

bool FaultPlan::ShouldFault(FaultSite site, uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  return DecideLocked(site, key);
}

void FaultPlan::CountRetry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.retries;
}

void FaultPlan::CountTerminalFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.terminal_failures;
}

double FaultPlan::BackoffMs(int attempt) const {
  const double raw =
      options_.backoff_base_ms * std::ldexp(1.0, std::min(attempt, 62));
  return std::min(options_.backoff_cap_ms, raw);
}

uint64_t FaultPlan::TileKey(codec::ColumnId column_id, int64_t tile_id,
                            int attempt) {
  return Mix64((static_cast<uint64_t>(column_id.value()) << 40) ^
               static_cast<uint64_t>(tile_id)) ^
         static_cast<uint64_t>(attempt);
}

FaultStats FaultPlan::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultPlan::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  seq_.fill(0);
  stats_ = FaultStats();
}

}  // namespace tilecomp::fault
