// Deterministic fault injection for the encode -> serve path.
//
// A FaultPlan is a seeded oracle that the simulator and the serving layer
// consult at well-defined injection points: device allocation, PCIe
// transfer, kernel launch, tile decode and cache insert. Each consult is a
// pseudo-random draw derived purely from the plan's seed plus either a
// per-site sequence number (serial sites: transfers and launches issue from
// the host in order) or a caller-supplied key (concurrent sites: decode and
// insert fire from kernel-body host threads, where arrival order is not
// deterministic but (column, tile, attempt) is).
//
// The plan never performs the degradation itself — each consumer owns its
// recovery path (device: capped exponential backoff with bounded attempts;
// cache: refuse the insert and let the loader fall back to inline decode;
// loader: invalidate poisoned entries and re-decode). The plan just decides
// *when* a site fails and counts what happened, so a bench or test can
// assert that a whole serving batch stayed bit-exact (or failed cleanly)
// under any seeded fault mix.
//
//   fault::FaultPlan plan(fault::FaultPlanOptions::Uniform(0.05, /*seed=*/9));
//   serve::ServeOptions opts;
//   opts.fault_plan = &plan;
//   ...serve a batch; every query is bit-exact or carries an error status...
//   fault::FaultStats stats = plan.stats();  // injected/retry counts
#ifndef TILECOMP_FAULT_FAULT_H_
#define TILECOMP_FAULT_FAULT_H_

#include <array>
#include <cstdint>
#include <mutex>

#include "codec/column_id.h"
#include "common/macros.h"

namespace tilecomp::fault {

// The injection points a plan can fire at.
enum class FaultSite {
  kDeviceAlloc = 0,  // device-memory allocation (cache entry buffers)
  kTransfer,         // PCIe transfer (Device::TryTransferAsync)
  kKernelLaunch,     // kernel launch at issue (Device::Launch)
  kTileDecode,       // decoding one tile under a query (CachedTileLoader)
  kCacheInsert,      // tile-cache admission (TileCache::Insert)
};
inline constexpr int kNumFaultSites = 5;

const char* FaultSiteName(FaultSite site);

struct FaultPlanOptions {
  uint64_t seed = 1;
  // Per-consult fault probability for each site, in [0, 1].
  std::array<double, kNumFaultSites> rate = {};
  // Bounded attempts per operation (1 = no retries). Transfers and launches
  // retry with capped exponential backoff; tile decodes re-run the decode.
  int max_transfer_attempts = 4;
  int max_launch_attempts = 4;
  int max_decode_attempts = 3;
  // Backoff penalty for retry r (0-based): min(cap, base * 2^r), ms.
  double backoff_base_ms = 0.02;
  double backoff_cap_ms = 0.5;

  // Every site at the same rate — the bench_faults sweep configuration.
  static FaultPlanOptions Uniform(double rate, uint64_t seed = 1);
};

// Monotonic counters of what the plan injected and what it cost.
struct FaultStats {
  std::array<uint64_t, kNumFaultSites> consults = {};
  std::array<uint64_t, kNumFaultSites> injected = {};
  // Recovery attempts consumers made after an injected fault.
  uint64_t retries = 0;
  // Operations that exhausted their attempt budget (the caller surfaces
  // these as a per-query error status, never as a wrong answer).
  uint64_t terminal_failures = 0;

  uint64_t total_injected() const {
    uint64_t total = 0;
    for (uint64_t n : injected) total += n;
    return total;
  }
};

// Thread-safe: consulted concurrently from kernel-body host threads (tile
// decode / cache insert) and the host issue thread (transfers, launches).
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanOptions options);

  TILECOMP_DISALLOW_COPY_AND_ASSIGN(FaultPlan);

  // Sequence-deterministic draw: the n-th consult of `site` always decides
  // the same way for a given seed. Use from serial issue sites.
  bool ShouldFault(FaultSite site);

  // Key-deterministic draw: depends only on (seed, site, key), independent
  // of consult order. Use from concurrent sites with a stable identity,
  // e.g. key = Mix(column_id, tile_id, attempt).
  bool ShouldFault(FaultSite site, uint64_t key);

  // Recovery bookkeeping, called by the consumer that owns the retry loop.
  void CountRetry();
  void CountTerminalFailure();

  // Backoff penalty for 0-based retry `attempt`: min(cap, base * 2^attempt).
  double BackoffMs(int attempt) const;

  // Stable key for per-tile consults.
  static uint64_t TileKey(codec::ColumnId column_id, int64_t tile_id,
                          int attempt);

  const FaultPlanOptions& options() const { return options_; }
  FaultStats stats() const;
  // Clear stats and sequence counters: replays decide identically again.
  void Reset();

 private:
  bool DecideLocked(FaultSite site, uint64_t mixin);

  const FaultPlanOptions options_;
  mutable std::mutex mu_;
  std::array<uint64_t, kNumFaultSites> seq_ = {};
  FaultStats stats_;
};

}  // namespace tilecomp::fault

#endif  // TILECOMP_FAULT_FAULT_H_
