#include "format/bitpack.h"

namespace tilecomp::format {

size_t PackArray(const uint32_t* values, size_t count, uint32_t bits,
                 std::vector<uint32_t>* out) {
  const size_t before = out->size();
  BitWriter writer(out);
  for (size_t i = 0; i < count; ++i) {
    writer.Append(values[i] & LowMask(bits), bits);
  }
  writer.AlignToWord();
  return out->size() - before;
}

void UnpackArray(const uint32_t* words, size_t count, uint32_t bits,
                 uint32_t* out) {
  if (bits == 0) {
    for (size_t i = 0; i < count; ++i) out[i] = 0;
    return;
  }
  uint64_t bit_index = 0;
  for (size_t i = 0; i < count; ++i) {
    // Guard the two-word window at the stream tail: when the entry ends
    // exactly on the final word boundary the second word is never needed,
    // so read it only when the entry actually straddles words.
    out[i] = UnpackBits(words, bit_index, bits);
    bit_index += bits;
  }
}

}  // namespace tilecomp::format
