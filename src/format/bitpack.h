// Horizontal-layout bit-packing primitives (Section 4.1).
//
// Values are written as consecutive b-bit strings concatenated into a stream
// of 32-bit words, ignoring byte boundaries. Extraction uses the 8-byte-load
// technique of Algorithm 1: an entry at an arbitrary bit offset always fits
// in the 64-bit window formed by two adjacent words.
#ifndef TILECOMP_FORMAT_BITPACK_H_
#define TILECOMP_FORMAT_BITPACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/macros.h"

namespace tilecomp::format {

// Appends bit-packed values to a word stream.
class BitWriter {
 public:
  explicit BitWriter(std::vector<uint32_t>* out) : out_(out) {
    TILECOMP_CHECK(out != nullptr);
  }

  // Append the low `bits` bits of `value`. bits in [0, 32]; with bits == 0
  // nothing is written (value must be 0).
  void Append(uint32_t value, uint32_t bits) {
    TILECOMP_DCHECK(bits <= 32);
    TILECOMP_DCHECK((value & ~LowMask(bits)) == 0);
    if (bits == 0) return;
    if (bit_pos_ == 0) out_->push_back(0);
    uint32_t word_bits = 32 - bit_pos_;
    if (bits <= word_bits) {
      out_->back() |= value << bit_pos_;
      bit_pos_ = (bit_pos_ + bits) & 31;
    } else {
      out_->back() |= value << bit_pos_;
      out_->push_back(value >> word_bits);
      bit_pos_ = bits - word_bits;
    }
  }

  // Pad to the next 32-bit boundary.
  void AlignToWord() { bit_pos_ = 0; }

  uint32_t bit_pos() const { return bit_pos_; }

 private:
  std::vector<uint32_t>* out_;
  uint32_t bit_pos_ = 0;  // write position within the current word
};

// Extract the `bits`-bit value starting at absolute bit offset `bit_index`
// in `words`. Requires words[] to have one extra readable word past the last
// entry's final word when the entry ends exactly at a word boundary; the
// encoders below always emit formats where this holds (miniblocks end on
// word boundaries), and the helper guards the tail read.
inline uint32_t UnpackBits(const uint32_t* words, uint64_t bit_index,
                           uint32_t bits) {
  if (bits == 0) return 0;
  const uint64_t word_index = bit_index >> 5;
  const uint32_t bit_in_word = static_cast<uint32_t>(bit_index & 31);
  // 8-byte window: entry never spans more than two 32-bit words (bits<=32).
  uint64_t window = words[word_index];
  if (bit_in_word + bits > 32) {
    window |= static_cast<uint64_t>(words[word_index + 1]) << 32;
  }
  return static_cast<uint32_t>((window >> bit_in_word) & LowMask64(bits));
}

// Pack `count` values with a fixed bit width; output is word-aligned at the
// end. Returns number of words appended.
size_t PackArray(const uint32_t* values, size_t count, uint32_t bits,
                 std::vector<uint32_t>* out);

// Unpack `count` fixed-width values starting at out_words[0] bit 0.
void UnpackArray(const uint32_t* words, size_t count, uint32_t bits,
                 uint32_t* out);

}  // namespace tilecomp::format

#endif  // TILECOMP_FORMAT_BITPACK_H_
