#include "format/gpudfor.h"

#include <algorithm>

#include "common/bit_util.h"
#include "format/bitpack.h"

namespace tilecomp::format {

namespace {

void ValidateOptions(const GpuDForOptions& options) {
  TILECOMP_CHECK(options.block_size > 0);
  TILECOMP_CHECK(options.miniblock_count == 1 ||
                 options.miniblock_count == 2 ||
                 options.miniblock_count == 4);
  TILECOMP_CHECK(options.block_size % options.miniblock_count == 0);
  TILECOMP_CHECK((options.block_size / options.miniblock_count) % 32 == 0);
  TILECOMP_CHECK(options.blocks_per_tile >= 1);
}

}  // namespace

GpuDForEncoded GpuDForEncode(const uint32_t* values, size_t count,
                             const GpuDForOptions& options) {
  ValidateOptions(options);
  TILECOMP_CHECK(count <= 0xFFFFFFFFull);

  GpuDForEncoded encoded;
  encoded.header.total_count = static_cast<uint32_t>(count);
  encoded.header.block_size = options.block_size;
  encoded.header.miniblock_count = options.miniblock_count;
  encoded.header.blocks_per_tile = options.blocks_per_tile;

  const GpuDForHeader& h = encoded.header;
  const uint32_t block_size = h.block_size;
  const uint32_t mb_count = h.miniblock_count;
  const uint32_t mb_values = block_size / mb_count;
  const uint32_t num_tiles = h.num_tiles();
  const uint32_t vpt = h.values_per_tile();

  std::vector<uint32_t> deltas(vpt);

  for (uint32_t t = 0; t < num_tiles; ++t) {
    const size_t tile_begin = static_cast<size_t>(t) * vpt;
    const size_t tile_len = std::min<size_t>(vpt, count - tile_begin);

    const uint32_t first_value = values[tile_begin];
    encoded.first_values.push_back(first_value);
    encoded.data.push_back(first_value);

    // Wrapping deltas within the tile; the first delta of a tile and any
    // padding past total_count are 0 (Section 5.1: "we pad the deltas with
    // 0 to ensure every block has 128 entries").
    deltas[0] = 0;
    for (size_t i = 1; i < tile_len; ++i) {
      deltas[i] = values[tile_begin + i] - values[tile_begin + i - 1];
    }
    for (size_t i = tile_len; i < vpt; ++i) deltas[i] = 0;

    // GPU-FOR encode each block of deltas with a signed reference.
    for (uint32_t b = 0; b < h.blocks_per_tile; ++b) {
      encoded.block_starts.push_back(
          static_cast<uint32_t>(encoded.data.size()));
      const uint32_t* dblock = deltas.data() + b * block_size;

      int32_t reference = static_cast<int32_t>(dblock[0]);
      for (uint32_t i = 1; i < block_size; ++i) {
        reference = std::min(reference, static_cast<int32_t>(dblock[i]));
      }

      uint32_t bitwidth_word = 0;
      uint32_t widths[4] = {0, 0, 0, 0};
      std::vector<uint32_t> offsets(block_size);
      for (uint32_t i = 0; i < block_size; ++i) {
        // Wrap-safe: the true difference fits in 32 bits because both values
        // are int32 and reference is the minimum.
        offsets[i] = dblock[i] - static_cast<uint32_t>(reference);
      }
      for (uint32_t m = 0; m < mb_count; ++m) {
        uint32_t max_off = 0;
        for (uint32_t i = 0; i < mb_values; ++i) {
          max_off = std::max(max_off, offsets[m * mb_values + i]);
        }
        widths[m] = BitsNeeded(max_off);
        bitwidth_word |= widths[m] << (8 * m);
      }

      encoded.data.push_back(static_cast<uint32_t>(reference));
      encoded.data.push_back(bitwidth_word);
      for (uint32_t m = 0; m < mb_count; ++m) {
        PackArray(offsets.data() + m * mb_values, mb_values, widths[m],
                  &encoded.data);
      }
    }
  }
  encoded.block_starts.push_back(static_cast<uint32_t>(encoded.data.size()));
  return encoded;
}

void GpuDForDecodeTile(const GpuDForHeader& header,
                       const GpuDForEncoded& encoded, uint32_t tile,
                       uint32_t* out) {
  const uint32_t block_size = header.block_size;
  const uint32_t mb_count = header.miniblock_count;
  const uint32_t mb_values = block_size / mb_count;
  const uint32_t vpt = header.values_per_tile();
  const uint32_t first_block = tile * header.blocks_per_tile;
  const uint32_t num_blocks = header.num_blocks();

  // Unpack deltas for every block of the tile.
  for (uint32_t b = 0; b < header.blocks_per_tile; ++b) {
    uint32_t* dst = out + b * block_size;
    const uint32_t block = first_block + b;
    if (block >= num_blocks) {
      std::fill(dst, dst + block_size, 0u);
      continue;
    }
    const uint32_t* block_data =
        encoded.data.data() + encoded.block_starts[block];
    const uint32_t reference = block_data[0];
    uint32_t bitwidth_word = block_data[1];
    const uint32_t* packed = block_data + 2;
    for (uint32_t m = 0; m < mb_count; ++m) {
      const uint32_t bits = bitwidth_word & 0xFF;
      bitwidth_word >>= 8;
      uint64_t bit_index = 0;
      for (uint32_t i = 0; i < mb_values; ++i) {
        dst[m * mb_values + i] =
            reference + UnpackBits(packed, bit_index, bits);
        bit_index += bits;
      }
      packed += (static_cast<uint64_t>(bits) * mb_values) / 32;
    }
  }

  // Prefix-sum the deltas starting from the tile's first value (the first
  // delta is the 0 pad, so out[0] becomes first_value).
  uint32_t acc = encoded.first_values[tile];
  for (uint32_t i = 0; i < vpt; ++i) {
    acc += out[i];
    out[i] = acc;
  }
}

std::vector<uint32_t> GpuDForDecodeHost(const GpuDForEncoded& encoded) {
  const GpuDForHeader& h = encoded.header;
  const uint32_t num_tiles = h.num_tiles();
  const uint32_t vpt = h.values_per_tile();
  std::vector<uint32_t> out(static_cast<size_t>(num_tiles) * vpt);
  for (uint32_t t = 0; t < num_tiles; ++t) {
    GpuDForDecodeTile(h, encoded, t, out.data() + static_cast<size_t>(t) * vpt);
  }
  out.resize(h.total_count);
  return out;
}

}  // namespace tilecomp::format
