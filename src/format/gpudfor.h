// GPU-DFOR: delta encoding + frame-of-reference + bit-packing (Section 5,
// Figure 6).
//
// The array is partitioned into *tiles* of D blocks x 128 values. Each tile
// is delta-encoded independently so tiles decode in parallel: the tile's
// first value is stored verbatim before its first block ("First Value" in
// Figure 6) and every entry of the tile becomes a delta against its
// predecessor (the first delta of a tile is 0-padded). Deltas are then
// GPU-FOR encoded per block of 128 with a per-block *signed* reference.
//
// Arithmetic is modular (mod 2^32): deltas are computed and re-applied with
// wrapping 32-bit adds, so any uint32 input round-trips exactly, including
// unsorted data with negative deltas. The per-block FOR reference is the
// minimum delta interpreted as int32; offsets from it always fit in 32 bits.
//
// Overhead: GPU-FOR's 0.75 bits/int + 1 first-value word per D=4 blocks
// = 0.81 bits per int (Section 9.2).
#ifndef TILECOMP_FORMAT_GPUDFOR_H_
#define TILECOMP_FORMAT_GPUDFOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace tilecomp::format {

struct GpuDForHeader {
  uint32_t total_count = 0;
  uint32_t block_size = 128;
  uint32_t miniblock_count = 4;
  // Blocks per tile (the D of Section 4.2); each tile is an independent
  // delta-decoding unit handled by one thread block.
  uint32_t blocks_per_tile = 4;

  uint32_t values_per_miniblock() const {
    return block_size / miniblock_count;
  }
  uint32_t values_per_tile() const { return block_size * blocks_per_tile; }
  uint32_t num_blocks() const {
    return block_size == 0 ? 0 : (total_count + block_size - 1) / block_size;
  }
  uint32_t num_tiles() const {
    uint32_t vpt = values_per_tile();
    return vpt == 0 ? 0 : (total_count + vpt - 1) / vpt;
  }
};

struct GpuDForEncoded {
  GpuDForHeader header;
  // Word offset of each *block* (num_blocks + 1 entries). The first block of
  // every tile is preceded by the tile's first-value word, which the block
  // start already skips; see `first_values`.
  std::vector<uint32_t> block_starts;
  // First value of each tile, stored in the data stream before the tile's
  // first block (kept mirrored here for O(1) host access).
  std::vector<uint32_t> first_values;
  std::vector<uint32_t> data;

  uint64_t compressed_bytes() const {
    // first_values live inside `data`; don't double count the mirror.
    return sizeof(GpuDForHeader) + block_starts.size() * 4 + data.size() * 4;
  }
  double bits_per_int() const {
    return header.total_count == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) /
                     header.total_count;
  }
};

struct GpuDForOptions {
  uint32_t block_size = 128;
  uint32_t miniblock_count = 4;
  uint32_t blocks_per_tile = 4;
};

GpuDForEncoded GpuDForEncode(const uint32_t* values, size_t count,
                             const GpuDForOptions& options = GpuDForOptions());

// Reference host decoder.
std::vector<uint32_t> GpuDForDecodeHost(const GpuDForEncoded& encoded);

// Decode one tile's deltas+prefix-sum into `out` (values_per_tile entries,
// padding included). `tile_first_word` points at the tile's first-value word
// in the data stream.
void GpuDForDecodeTile(const GpuDForHeader& header,
                       const GpuDForEncoded& encoded, uint32_t tile,
                       uint32_t* out);

}  // namespace tilecomp::format

#endif  // TILECOMP_FORMAT_GPUDFOR_H_
