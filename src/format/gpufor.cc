#include "format/gpufor.h"

#include <algorithm>

#include "common/bit_util.h"
#include "format/bitpack.h"

namespace tilecomp::format {

namespace {

// Validate option combinations supported by the decoder's 32-bit-boundary
// invariant: each miniblock must hold a multiple of 32 values.
void ValidateOptions(const GpuForOptions& options) {
  TILECOMP_CHECK(options.block_size > 0);
  TILECOMP_CHECK(options.miniblock_count == 1 ||
                 options.miniblock_count == 2 ||
                 options.miniblock_count == 4);
  TILECOMP_CHECK(options.block_size % options.miniblock_count == 0);
  TILECOMP_CHECK((options.block_size / options.miniblock_count) % 32 == 0);
}

}  // namespace

GpuForEncoded GpuForEncode(const uint32_t* values, size_t count,
                           const GpuForOptions& options) {
  ValidateOptions(options);
  TILECOMP_CHECK(count <= 0xFFFFFFFFull);

  GpuForEncoded encoded;
  encoded.header.total_count = static_cast<uint32_t>(count);
  encoded.header.block_size = options.block_size;
  encoded.header.miniblock_count = options.miniblock_count;

  const uint32_t block_size = options.block_size;
  const uint32_t mb_count = options.miniblock_count;
  const uint32_t mb_values = block_size / mb_count;
  const uint32_t num_blocks = encoded.header.num_blocks();

  encoded.block_starts.reserve(num_blocks + 1);
  std::vector<uint32_t> padded(block_size);

  for (uint32_t b = 0; b < num_blocks; ++b) {
    encoded.block_starts.push_back(static_cast<uint32_t>(encoded.data.size()));

    const size_t begin = static_cast<size_t>(b) * block_size;
    const size_t len = std::min<size_t>(block_size, count - begin);

    // Reference = block minimum (Section 4.1), or 0 for the GPU-BP variant.
    uint32_t reference = options.zero_reference ? 0u : values[begin];
    if (!options.zero_reference) {
      for (size_t i = 1; i < len; ++i) {
        reference = std::min(reference, values[begin + i]);
      }
    }
    // Offsets from the reference; pad the trailing partial block with the
    // reference itself (offset 0).
    for (size_t i = 0; i < len; ++i) padded[i] = values[begin + i] - reference;
    for (size_t i = len; i < block_size; ++i) padded[i] = 0;

    // Per-miniblock bit widths.
    uint32_t bitwidth_word = 0;
    uint32_t widths[4] = {0, 0, 0, 0};
    for (uint32_t m = 0; m < mb_count; ++m) {
      uint32_t max_off = 0;
      for (uint32_t i = 0; i < mb_values; ++i) {
        max_off = std::max(max_off, padded[m * mb_values + i]);
      }
      widths[m] = BitsNeeded(max_off);
      bitwidth_word |= widths[m] << (8 * m);
    }

    encoded.data.push_back(reference);
    encoded.data.push_back(bitwidth_word);
    for (uint32_t m = 0; m < mb_count; ++m) {
      PackArray(padded.data() + m * mb_values, mb_values, widths[m],
                &encoded.data);
    }
  }
  encoded.block_starts.push_back(static_cast<uint32_t>(encoded.data.size()));
  return encoded;
}

void GpuForDecodeBlock(const GpuForHeader& header, const uint32_t* block_data,
                       uint32_t* out) {
  const uint32_t mb_count = header.miniblock_count;
  const uint32_t mb_values = header.block_size / mb_count;
  const uint32_t reference = block_data[0];
  uint32_t bitwidth_word = block_data[1];

  const uint32_t* packed = block_data + 2;
  for (uint32_t m = 0; m < mb_count; ++m) {
    const uint32_t bits = bitwidth_word & 0xFF;
    bitwidth_word >>= 8;
    uint64_t bit_index = 0;
    for (uint32_t i = 0; i < mb_values; ++i) {
      out[m * mb_values + i] = reference + UnpackBits(packed, bit_index, bits);
      bit_index += bits;
    }
    // Miniblocks hold multiples of 32 values, so each ends word-aligned.
    packed += (static_cast<uint64_t>(bits) * mb_values) / 32;
  }
}

std::vector<uint32_t> GpuForDecodeHost(const GpuForEncoded& encoded) {
  const GpuForHeader& h = encoded.header;
  const uint32_t num_blocks = h.num_blocks();
  std::vector<uint32_t> out(static_cast<size_t>(num_blocks) * h.block_size);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    GpuForDecodeBlock(h, encoded.data.data() + encoded.block_starts[b],
                      out.data() + static_cast<size_t>(b) * h.block_size);
  }
  out.resize(h.total_count);
  return out;
}

}  // namespace tilecomp::format
