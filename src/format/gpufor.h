// GPU-FOR: frame-of-reference + bit-packing in the tile-granular format of
// Section 4.1 (Figures 3 and 4).
//
// Values are partitioned into blocks of `block_size` (default 128) integers,
// each block split into `miniblock_count` (default 4) miniblocks of 32
// values. Per block the stream stores:
//
//   [reference : u32] [bitwidth word : u32 = 4 x u8] [packed miniblocks...]
//
// Each miniblock is packed with its own bit width (max bits over the
// miniblock after subtracting the block reference), and because a miniblock
// holds 32 values it always ends on a 32-bit word boundary for any width.
// Block start offsets (in words) live in a separate `block_starts` array so
// thousands of thread blocks can decode independently. Stream metadata
// (total count, block size, miniblock count) forms the header.
//
// Overhead: 3 words per 128 values = 0.75 bits per int (Section 9.2).
#ifndef TILECOMP_FORMAT_GPUFOR_H_
#define TILECOMP_FORMAT_GPUFOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace tilecomp::format {

// Stream header (Figure 3: "total count / block size / miniblock count").
struct GpuForHeader {
  uint32_t total_count = 0;
  uint32_t block_size = 128;
  uint32_t miniblock_count = 4;

  uint32_t values_per_miniblock() const {
    return block_size / miniblock_count;
  }
  uint32_t num_blocks() const {
    return block_size == 0 ? 0 : (total_count + block_size - 1) / block_size;
  }
};

// An encoded GPU-FOR stream.
struct GpuForEncoded {
  GpuForHeader header;
  // Word offset of each block within `data`; num_blocks + 1 entries so a
  // thread block can read [start, end) with one extra lookup (Section 4.2,
  // Optimization 1).
  std::vector<uint32_t> block_starts;
  // Concatenated encoded blocks.
  std::vector<uint32_t> data;

  // Total compressed footprint: header + block starts + data.
  uint64_t compressed_bytes() const {
    return sizeof(GpuForHeader) + block_starts.size() * 4 + data.size() * 4;
  }
  double bits_per_int() const {
    return header.total_count == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) /
                     header.total_count;
  }
};

// Encoding options. The defaults reproduce the paper's format exactly.
struct GpuForOptions {
  uint32_t block_size = 128;
  // Must divide block_size with a multiple-of-32 quotient; supported values
  // are 1, 2 and 4 (1 gives the "bit-packing without miniblocks" variant of
  // Section 4.3).
  uint32_t miniblock_count = 4;
  // Force reference = 0, i.e., plain bit-packing without frame-of-reference.
  // Used to model GPU-BP (Mallia et al. [33]), which lacks FOR.
  bool zero_reference = false;
};

// Encode `count` unsigned 32-bit values. Trailing partial blocks are padded
// with the reference value (decodes to the reference; callers truncate by
// total_count).
GpuForEncoded GpuForEncode(const uint32_t* values, size_t count,
                           const GpuForOptions& options = GpuForOptions());

// Reference (host, scalar) decoder; returns exactly total_count values.
std::vector<uint32_t> GpuForDecodeHost(const GpuForEncoded& encoded);

// Decode a single block into `out` (holds block_size entries, padded region
// included). Shared by the simulated device functions.
void GpuForDecodeBlock(const GpuForHeader& header, const uint32_t* block_data,
                       uint32_t* out);

}  // namespace tilecomp::format

#endif  // TILECOMP_FORMAT_GPUFOR_H_
