#include "format/gpurfor.h"

#include <algorithm>

#include "common/bit_util.h"
#include "format/bitpack.h"

namespace tilecomp::format {

GpuRForEncoded GpuRForEncode(const uint32_t* values, size_t count,
                             const GpuRForOptions& options) {
  TILECOMP_CHECK(options.block_size > 0);
  TILECOMP_CHECK(count <= 0xFFFFFFFFull);

  GpuRForEncoded encoded;
  encoded.header.total_count = static_cast<uint32_t>(count);
  encoded.header.block_size = options.block_size;
  const uint32_t block_size = options.block_size;
  const uint32_t num_blocks = encoded.header.num_blocks();

  std::vector<uint32_t> run_values;
  std::vector<uint32_t> run_lengths;
  run_values.reserve(block_size);
  run_lengths.reserve(block_size);

  for (uint32_t b = 0; b < num_blocks; ++b) {
    const size_t begin = static_cast<size_t>(b) * block_size;
    const size_t len = std::min<size_t>(block_size, count - begin);

    // RLE within the block.
    run_values.clear();
    run_lengths.clear();
    size_t i = 0;
    while (i < len) {
      const uint32_t v = values[begin + i];
      size_t j = i + 1;
      while (j < len && values[begin + j] == v) ++j;
      run_values.push_back(v);
      run_lengths.push_back(static_cast<uint32_t>(j - i));
      i = j;
    }
    const uint32_t run_count = static_cast<uint32_t>(run_values.size());

    // FOR + bit-pack the values array.
    encoded.value_block_starts.push_back(
        static_cast<uint32_t>(encoded.value_data.size()));
    uint32_t vref = run_values[0];
    for (uint32_t r = 1; r < run_count; ++r) {
      vref = std::min(vref, run_values[r]);
    }
    uint32_t vmax = 0;
    for (uint32_t r = 0; r < run_count; ++r) {
      run_values[r] -= vref;
      vmax = std::max(vmax, run_values[r]);
    }
    const uint32_t vbits = BitsNeeded(vmax);
    encoded.value_data.push_back(run_count);
    encoded.value_data.push_back(vref);
    encoded.value_data.push_back(vbits);
    PackArray(run_values.data(), run_count, vbits, &encoded.value_data);

    // FOR + bit-pack the lengths array (lengths >= 1, so the reference is
    // at least 1).
    encoded.length_block_starts.push_back(
        static_cast<uint32_t>(encoded.length_data.size()));
    uint32_t lref = run_lengths[0];
    for (uint32_t r = 1; r < run_count; ++r) {
      lref = std::min(lref, run_lengths[r]);
    }
    uint32_t lmax = 0;
    for (uint32_t r = 0; r < run_count; ++r) {
      run_lengths[r] -= lref;
      lmax = std::max(lmax, run_lengths[r]);
    }
    const uint32_t lbits = BitsNeeded(lmax);
    encoded.length_data.push_back(lref);
    encoded.length_data.push_back(lbits);
    PackArray(run_lengths.data(), run_count, lbits, &encoded.length_data);
  }
  encoded.value_block_starts.push_back(
      static_cast<uint32_t>(encoded.value_data.size()));
  encoded.length_block_starts.push_back(
      static_cast<uint32_t>(encoded.length_data.size()));
  return encoded;
}

uint32_t GpuRForUnpackRuns(const GpuRForEncoded& encoded, uint32_t block,
                           uint32_t* values, uint32_t* lengths) {
  const uint32_t* vblock =
      encoded.value_data.data() + encoded.value_block_starts[block];
  const uint32_t run_count = vblock[0];
  const uint32_t vref = vblock[1];
  const uint32_t vbits = vblock[2];
  UnpackArray(vblock + 3, run_count, vbits, values);
  for (uint32_t r = 0; r < run_count; ++r) values[r] += vref;

  const uint32_t* lblock =
      encoded.length_data.data() + encoded.length_block_starts[block];
  const uint32_t lref = lblock[0];
  const uint32_t lbits = lblock[1];
  UnpackArray(lblock + 2, run_count, lbits, lengths);
  for (uint32_t r = 0; r < run_count; ++r) lengths[r] += lref;
  return run_count;
}

uint32_t GpuRForDecodeBlock(const GpuRForEncoded& encoded, uint32_t block,
                            uint32_t* out) {
  const uint32_t block_size = encoded.header.block_size;
  std::vector<uint32_t> values(block_size);
  std::vector<uint32_t> lengths(block_size);
  const uint32_t run_count = GpuRForUnpackRuns(encoded, block, values.data(),
                                               lengths.data());
  uint32_t pos = 0;
  for (uint32_t r = 0; r < run_count; ++r) {
    for (uint32_t k = 0; k < lengths[r]; ++k) out[pos++] = values[r];
  }
  return pos;
}

std::vector<uint32_t> GpuRForDecodeHost(const GpuRForEncoded& encoded) {
  const GpuRForHeader& h = encoded.header;
  std::vector<uint32_t> out(h.total_count);
  uint32_t pos = 0;
  for (uint32_t b = 0; b < h.num_blocks(); ++b) {
    pos += GpuRForDecodeBlock(encoded, b, out.data() + pos);
  }
  TILECOMP_CHECK(pos == h.total_count);
  return out;
}

}  // namespace tilecomp::format
