// GPU-RFOR: run-length encoding + frame-of-reference + bit-packing
// (Section 6).
//
// The array is partitioned into logical blocks of `block_size` (default 512)
// values. RLE is applied to each block independently (runs never cross block
// boundaries), producing a values array and a run-lengths array per block.
// FOR + bit-packing is applied on top of both arrays separately, and the two
// compressed representations are stored as separate streams, each with its
// own block-starts array. Each block additionally stores its run count
// ("extra metadata of the run length/values count at the beginning of each
// block").
//
// Per-block stream layout (both streams):
//   values  stream: [run_count:u32][reference:u32][bits:u32][packed values]
//   lengths stream: [reference:u32][bits:u32][packed lengths]
//
// Both packed sections are padded to a word boundary so blocks start
// word-aligned. Because a block covers 512 values, metadata overhead is
// lower than GPU-FOR's (Section 9.2: "slightly less than GPU-FOR").
#ifndef TILECOMP_FORMAT_GPURFOR_H_
#define TILECOMP_FORMAT_GPURFOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace tilecomp::format {

struct GpuRForHeader {
  uint32_t total_count = 0;
  uint32_t block_size = 512;

  uint32_t num_blocks() const {
    return block_size == 0 ? 0 : (total_count + block_size - 1) / block_size;
  }
};

struct GpuRForEncoded {
  GpuRForHeader header;
  // Word offsets into the two streams; num_blocks + 1 entries each.
  std::vector<uint32_t> value_block_starts;
  std::vector<uint32_t> length_block_starts;
  std::vector<uint32_t> value_data;
  std::vector<uint32_t> length_data;

  uint64_t compressed_bytes() const {
    return sizeof(GpuRForHeader) +
           (value_block_starts.size() + length_block_starts.size() +
            value_data.size() + length_data.size()) *
               4;
  }
  double bits_per_int() const {
    return header.total_count == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) /
                     header.total_count;
  }
};

struct GpuRForOptions {
  uint32_t block_size = 512;
};

GpuRForEncoded GpuRForEncode(const uint32_t* values, size_t count,
                             const GpuRForOptions& options = GpuRForOptions());

// Reference host decoder.
std::vector<uint32_t> GpuRForDecodeHost(const GpuRForEncoded& encoded);

// Decode one block (block_size entries; the trailing block may produce
// fewer — returns the number of values written).
uint32_t GpuRForDecodeBlock(const GpuRForEncoded& encoded, uint32_t block,
                            uint32_t* out);

// Unpack one block's (values, lengths) run arrays without expanding them.
// Returns the run count; `values` and `lengths` must hold block_size
// entries. Used by the simulated device function and by tests.
uint32_t GpuRForUnpackRuns(const GpuRForEncoded& encoded, uint32_t block,
                           uint32_t* values, uint32_t* lengths);

}  // namespace tilecomp::format

#endif  // TILECOMP_FORMAT_GPURFOR_H_
