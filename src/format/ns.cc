#include "format/ns.h"

#include <algorithm>
#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"

namespace tilecomp::format {

NsfEncoded NsfEncode(const uint32_t* values, size_t count) {
  TILECOMP_CHECK(count <= 0xFFFFFFFFull);
  NsfEncoded encoded;
  encoded.total_count = static_cast<uint32_t>(count);

  uint32_t max_value = 0;
  for (size_t i = 0; i < count; ++i) max_value = std::max(max_value, values[i]);
  const uint32_t bits = BitsNeeded(max_value);
  encoded.bytes_per_value = bits <= 8 ? 1 : (bits <= 16 ? 2 : 4);

  encoded.data.resize(count * encoded.bytes_per_value);
  uint8_t* out = encoded.data.data();
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(out + i * encoded.bytes_per_value, &values[i],
                encoded.bytes_per_value);
  }
  return encoded;
}

std::vector<uint32_t> NsfDecodeHost(const NsfEncoded& encoded) {
  std::vector<uint32_t> out(encoded.total_count, 0);
  const uint8_t* in = encoded.data.data();
  for (size_t i = 0; i < out.size(); ++i) {
    std::memcpy(&out[i], in + i * encoded.bytes_per_value,
                encoded.bytes_per_value);
  }
  return out;
}

NsvEncoded NsvEncode(const uint32_t* values, size_t count) {
  TILECOMP_CHECK(count <= 0xFFFFFFFFull);
  NsvEncoded encoded;
  encoded.total_count = static_cast<uint32_t>(count);
  encoded.tags.resize((count + 3) / 4, 0);

  for (size_t i = 0; i < count; ++i) {
    if (i % NsvEncoded::kChunk == 0) {
      encoded.chunk_starts.push_back(
          static_cast<uint32_t>(encoded.data.size()));
    }
    const uint32_t bits = BitsNeeded(values[i]);
    const uint32_t nbytes = std::max(1u, (bits + 7) / 8);
    encoded.tags[i / 4] |= (nbytes - 1) << ((i % 4) * 2);
    const size_t pos = encoded.data.size();
    encoded.data.resize(pos + nbytes);
    std::memcpy(encoded.data.data() + pos, &values[i], nbytes);
  }
  encoded.chunk_starts.push_back(static_cast<uint32_t>(encoded.data.size()));
  return encoded;
}

std::vector<uint32_t> NsvDecodeHost(const NsvEncoded& encoded) {
  std::vector<uint32_t> out(encoded.total_count, 0);
  size_t pos = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    const uint32_t nbytes =
        ((encoded.tags[i / 4] >> ((i % 4) * 2)) & 0x3) + 1;
    uint32_t v = 0;
    std::memcpy(&v, encoded.data.data() + pos, nbytes);
    out[i] = v;
    pos += nbytes;
  }
  return out;
}

}  // namespace tilecomp::format
