// Byte-aligned null-suppression baselines from Fang et al. [18]
// (Section 9.2 / 9.3):
//
//   NSF — fixed-length: the entire array is encoded with 1, 2 or 4 bytes per
//         entry depending on the maximum value. Decodes with a staircase
//         cost profile (Figure 7a).
//   NSV — variable-length: each value uses 1..4 bytes; a separate tag array
//         stores the byte count per value with 2 bits. Adapts to skew but
//         decodes slowly (Figure 8 e-f).
#ifndef TILECOMP_FORMAT_NS_H_
#define TILECOMP_FORMAT_NS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tilecomp::format {

struct NsfEncoded {
  uint32_t total_count = 0;
  uint32_t bytes_per_value = 4;  // 1, 2 or 4
  std::vector<uint8_t> data;

  uint64_t compressed_bytes() const { return 8 + data.size(); }
  double bits_per_int() const {
    return total_count == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) / total_count;
  }
};

NsfEncoded NsfEncode(const uint32_t* values, size_t count);
std::vector<uint32_t> NsfDecodeHost(const NsfEncoded& encoded);

struct NsvEncoded {
  uint32_t total_count = 0;
  std::vector<uint8_t> data;   // variable-length payload bytes
  std::vector<uint8_t> tags;   // 2 bits per value: byte count - 1
  // Offsets of each 512-value chunk into `data`, so the GPU can decode
  // chunks in parallel (NSV has no random access within a chunk).
  std::vector<uint32_t> chunk_starts;
  static constexpr uint32_t kChunk = 512;

  uint64_t compressed_bytes() const {
    return 8 + data.size() + tags.size() + chunk_starts.size() * 4;
  }
  double bits_per_int() const {
    return total_count == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) / total_count;
  }
};

NsvEncoded NsvEncode(const uint32_t* values, size_t count);
std::vector<uint32_t> NsvDecodeHost(const NsvEncoded& encoded);

}  // namespace tilecomp::format

#endif  // TILECOMP_FORMAT_NS_H_
