#include "format/packtile.h"

#include <algorithm>

#include "common/macros.h"
#include "format/bitpack.h"

namespace tilecomp::format {

uint32_t PackTileWidth(const uint32_t* values, uint32_t count) {
  if (count == 0) return 0;
  uint32_t lo = values[0], hi = values[0];
  for (uint32_t i = 1; i < count; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  return BitsNeeded(hi - lo);
}

uint32_t PackTile(const uint32_t* values, uint32_t count, uint32_t* out) {
  TILECOMP_CHECK(count >= 1 && count <= kPackTileMaxValues);
  uint32_t lo = values[0];
  for (uint32_t i = 1; i < count; ++i) lo = std::min(lo, values[i]);
  uint32_t width = 0;
  for (uint32_t i = 0; i < count; ++i) {
    width = std::max(width, BitsNeeded(values[i] - lo));
  }
  const uint32_t words = PackTileWords(count, width);
  out[0] = (count & 0xFFFFu) | (width << 16);
  out[1] = lo;
  // Zero the payload words, then OR the packed bit strings in.
  for (uint32_t w = kPackTileHeaderWords; w < words; ++w) out[w] = 0;
  uint64_t bit = 0;
  uint32_t* payload = out + kPackTileHeaderWords;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t delta = values[i] - lo;
    if (width == 0) continue;
    const uint64_t word = bit >> 5;
    const uint32_t shift = static_cast<uint32_t>(bit & 31);
    payload[word] |= delta << shift;
    if (shift + width > 32) payload[word + 1] |= delta >> (32 - shift);
    bit += width;
  }
  return words;
}

bool ParsePackTileHeader(const uint32_t* extent, uint32_t extent_words,
                         PackTileHeader* header) {
  if (extent == nullptr || extent_words < kPackTileHeaderWords) return false;
  const uint32_t count = extent[0] & 0xFFFFu;
  const uint32_t width = (extent[0] >> 16) & 0xFFu;
  // Bits 24..31 of word 0 are reserved-zero; reject so corruption there is
  // never silently ignored.
  if ((extent[0] >> 24) != 0) return false;
  if (count == 0 || count > kPackTileMaxValues || width > 32) return false;
  if (PackTileWords(count, width) != extent_words) return false;
  header->count = count;
  header->width = width;
  header->reference = extent[1];
  return true;
}

uint32_t UnpackPackTile(const uint32_t* extent, uint32_t extent_words,
                        uint32_t* out) {
  PackTileHeader h;
  if (!ParsePackTileHeader(extent, extent_words, &h)) return 0;
  const uint32_t* payload = extent + kPackTileHeaderWords;
  if (h.width == 0) {
    std::fill(out, out + h.count, h.reference);
    return h.count;
  }
  uint64_t bit = 0;
  for (uint32_t i = 0; i < h.count; ++i, bit += h.width) {
    out[i] = h.reference + UnpackBits(payload, bit, h.width);
  }
  return h.count;
}

uint32_t PackTileValueAt(const uint32_t* extent, const PackTileHeader& header,
                         uint32_t index) {
  TILECOMP_DCHECK(index < header.count);
  if (header.width == 0) return header.reference;
  const uint64_t bit = static_cast<uint64_t>(index) * header.width;
  return header.reference +
         UnpackBits(extent + kPackTileHeaderWords, bit, header.width);
}

}  // namespace tilecomp::format
