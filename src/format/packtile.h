// Self-describing variable-rate tile extents for the mutable column store.
//
// The immutable formats (gpufor.h and friends) encode a whole column with one
// shared header; a mutable store instead re-encodes single 512-value tiles as
// their content drifts, so each tile must carry its own header and be
// decodable in isolation. An extent is the zfp tile2 idiom specialized to
// integer FOR: a two-word header followed by a frame-of-reference bit-packed
// payload whose width is chosen per tile.
//
//   word 0: count (low 16 bits) | width (bits 16..23)
//   word 1: reference (the tile minimum)
//   words 2..: count values of `width` bits each, LSB-first, word-aligned tail
//
// Patching a value can widen or narrow the payload, which is exactly why the
// arena above this format needs a free list: extents change size in place.
#ifndef TILECOMP_FORMAT_PACKTILE_H_
#define TILECOMP_FORMAT_PACKTILE_H_

#include <cstddef>
#include <cstdint>

#include "common/bit_util.h"

namespace tilecomp::format {

// Values per full tile; matches codec::ZoneMap::kTileSize and
// crystal::kTileSize.
inline constexpr uint32_t kPackTileMaxValues = 512;
inline constexpr uint32_t kPackTileHeaderWords = 2;

struct PackTileHeader {
  uint32_t count = 0;      // values in the tile, 1..512
  uint32_t width = 0;      // payload bits per value, 0..32
  uint32_t reference = 0;  // frame of reference (tile minimum)
};

// Payload bit width for `count` values: bits needed for max(v) - min(v).
// Returns 0 for count == 0 (an empty extent is never materialized).
uint32_t PackTileWidth(const uint32_t* values, uint32_t count);

// Total extent size (header + word-aligned payload) for a given shape.
inline constexpr uint32_t PackTileWords(uint32_t count, uint32_t width) {
  const uint64_t payload_bits = static_cast<uint64_t>(count) * width;
  return kPackTileHeaderWords +
         static_cast<uint32_t>(CeilDiv<uint64_t>(payload_bits, 32));
}

// Encode `count` (1..512) values into out[0..PackTileWords). `out` must have
// at least PackTileWords(count, PackTileWidth(values, count)) writable words.
// Returns the number of words written.
uint32_t PackTile(const uint32_t* values, uint32_t count, uint32_t* out);

// Validate and parse the header of the extent at extent[0..extent_words).
// Rejects malformed headers: zero/oversized count, width > 32, or an
// extent_words that does not match the header's implied size exactly.
bool ParsePackTileHeader(const uint32_t* extent, uint32_t extent_words,
                         PackTileHeader* header);

// Decode a full extent into out[0..count). Returns the value count, or 0 if
// the extent fails header validation (callers treat 0 as corruption).
uint32_t UnpackPackTile(const uint32_t* extent, uint32_t extent_words,
                        uint32_t* out);

// Random access without materializing the tile: value `index` of the extent.
// The caller must have validated the header (asserts in debug builds only).
uint32_t PackTileValueAt(const uint32_t* extent, const PackTileHeader& header,
                         uint32_t index);

}  // namespace tilecomp::format

#endif  // TILECOMP_FORMAT_PACKTILE_H_
