#include "format/rle.h"

#include <algorithm>

#include "common/macros.h"

namespace tilecomp::format {

RleEncoded RleEncode(const uint32_t* values, size_t count,
                     uint32_t block_size) {
  TILECOMP_CHECK(count <= 0xFFFFFFFFull);
  // block_size == 0 would divide by zero computing num_blocks below.
  TILECOMP_CHECK_MSG(block_size > 0, "RleEncode: block_size must be > 0");
  RleEncoded encoded;
  encoded.total_count = static_cast<uint32_t>(count);
  encoded.block_size = block_size;

  const uint32_t num_blocks =
      static_cast<uint32_t>((count + block_size - 1) / block_size);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    encoded.run_starts.push_back(encoded.num_runs());
    const size_t begin = static_cast<size_t>(b) * block_size;
    const size_t len = std::min<size_t>(block_size, count - begin);
    size_t i = 0;
    while (i < len) {
      const uint32_t v = values[begin + i];
      size_t j = i + 1;
      while (j < len && values[begin + j] == v) ++j;
      encoded.values.push_back(v);
      encoded.lengths.push_back(static_cast<uint32_t>(j - i));
      i = j;
    }
  }
  encoded.run_starts.push_back(encoded.num_runs());
  return encoded;
}

std::vector<uint32_t> RleDecodeHost(const RleEncoded& encoded) {
  std::vector<uint32_t> out;
  out.reserve(encoded.total_count);
  for (uint32_t r = 0; r < encoded.num_runs(); ++r) {
    out.insert(out.end(), encoded.lengths[r], encoded.values[r]);
  }
  TILECOMP_CHECK(out.size() == encoded.total_count);
  return out;
}

}  // namespace tilecomp::format
