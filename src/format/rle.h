// Plain run-length encoding baseline (Section 9.3): runs of equal values are
// stored as uncompressed (value, run-length) 32-bit pairs in two separate
// columns. Runs are broken at block boundaries (512 values) so the GPU can
// expand blocks independently; decompression uses the 4-step
// scatter/prefix-sum expansion of Fang et al. [18] executed as separate
// kernel passes (cascading model).
#ifndef TILECOMP_FORMAT_RLE_H_
#define TILECOMP_FORMAT_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tilecomp::format {

struct RleEncoded {
  uint32_t total_count = 0;
  uint32_t block_size = 512;
  // Run index range of each block: runs of block b are
  // [run_starts[b], run_starts[b+1]).
  std::vector<uint32_t> run_starts;
  std::vector<uint32_t> values;
  std::vector<uint32_t> lengths;

  uint32_t num_runs() const { return static_cast<uint32_t>(values.size()); }
  uint64_t compressed_bytes() const {
    return 8 + (run_starts.size() + values.size() + lengths.size()) * 4;
  }
  double bits_per_int() const {
    return total_count == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) / total_count;
  }
};

RleEncoded RleEncode(const uint32_t* values, size_t count,
                     uint32_t block_size = 512);
std::vector<uint32_t> RleDecodeHost(const RleEncoded& encoded);

}  // namespace tilecomp::format

#endif  // TILECOMP_FORMAT_RLE_H_
