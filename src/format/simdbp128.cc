#include "format/simdbp128.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/macros.h"
#include "format/bitpack.h"

namespace tilecomp::format {

SimdBp128Encoded SimdBp128Encode(const uint32_t* values, size_t count) {
  TILECOMP_CHECK(count <= 0xFFFFFFFFull);
  SimdBp128Encoded encoded;
  encoded.total_count = static_cast<uint32_t>(count);
  constexpr uint32_t kBlock = SimdBp128Encoded::kBlockSize;
  constexpr uint32_t kLanes = SimdBp128Encoded::kLanes;
  constexpr uint32_t kPerLane = SimdBp128Encoded::kValuesPerLane;

  std::vector<uint32_t> lane_words;  // per-lane packed segment scratch
  std::vector<uint32_t> offsets(kBlock);

  const uint32_t num_blocks = encoded.num_blocks();
  for (uint32_t b = 0; b < num_blocks; ++b) {
    encoded.block_starts.push_back(static_cast<uint32_t>(encoded.data.size()));
    const size_t begin = static_cast<size_t>(b) * kBlock;
    const size_t len = std::min<size_t>(kBlock, count - begin);

    uint32_t reference = values[begin];
    for (size_t i = 1; i < len; ++i) {
      reference = std::min(reference, values[begin + i]);
    }
    uint32_t max_off = 0;
    for (size_t i = 0; i < len; ++i) {
      offsets[i] = values[begin + i] - reference;
      max_off = std::max(max_off, offsets[i]);
    }
    for (size_t i = len; i < kBlock; ++i) offsets[i] = 0;
    const uint32_t bits = BitsNeeded(max_off);

    encoded.data.push_back(reference);
    encoded.data.push_back(bits);

    // Pack each lane's 128 values (value i -> lane i % 32, row i / 32),
    // then stripe lane segments word-by-word.
    const uint32_t words_per_lane = 4 * bits;  // 128 * bits / 32
    std::vector<std::vector<uint32_t>> lanes(kLanes);
    for (uint32_t l = 0; l < kLanes; ++l) {
      uint32_t lane_values[kPerLane];
      for (uint32_t r = 0; r < kPerLane; ++r) {
        lane_values[r] = offsets[r * kLanes + l];
      }
      lanes[l].clear();
      PackArray(lane_values, kPerLane, bits, &lanes[l]);
      TILECOMP_CHECK(lanes[l].size() == words_per_lane);
    }
    for (uint32_t w = 0; w < words_per_lane; ++w) {
      for (uint32_t l = 0; l < kLanes; ++l) {
        encoded.data.push_back(lanes[l][w]);
      }
    }
  }
  encoded.block_starts.push_back(static_cast<uint32_t>(encoded.data.size()));
  return encoded;
}

std::vector<uint32_t> SimdBp128DecodeHost(const SimdBp128Encoded& encoded) {
  constexpr uint32_t kBlock = SimdBp128Encoded::kBlockSize;
  constexpr uint32_t kLanes = SimdBp128Encoded::kLanes;
  constexpr uint32_t kPerLane = SimdBp128Encoded::kValuesPerLane;

  const uint32_t num_blocks = encoded.num_blocks();
  std::vector<uint32_t> out(static_cast<size_t>(num_blocks) * kBlock);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    const uint32_t* block = encoded.data.data() + encoded.block_starts[b];
    const uint32_t reference = block[0];
    const uint32_t bits = block[1];
    const uint32_t* striped = block + 2;
    const uint32_t words_per_lane = 4 * bits;
    std::vector<uint32_t> lane_words(words_per_lane);
    uint32_t lane_values[kPerLane];
    for (uint32_t l = 0; l < kLanes; ++l) {
      for (uint32_t w = 0; w < words_per_lane; ++w) {
        lane_words[w] = striped[w * kLanes + l];
      }
      UnpackArray(lane_words.data(), kPerLane, bits, lane_values);
      for (uint32_t r = 0; r < kPerLane; ++r) {
        out[static_cast<size_t>(b) * kBlock + r * kLanes + l] =
            reference + lane_values[r];
      }
    }
  }
  out.resize(encoded.total_count);
  return out;
}

}  // namespace tilecomp::format
