// GPU-SIMDBP128: the vertical-layout bit-packing scheme discussed in the
// Section 4.3 ablation ("GPU-FOR vs CPU Designs").
//
// Translating SIMD-BP128's 4-lane SSE layout to a 32-lane GPU warp forces a
// block size of 4096 values (32 lanes x 128 values per lane, so every lane
// terminates on a 32-bit boundary). Each block stores a reference (min) and
// a single bit width (max over the whole 4096-value block — which is why one
// skewed value inflates the entire block, Section 4.3). Values are striped
// vertically: value i belongs to lane i mod 32; packed lane segments are
// word-interleaved across lanes.
#ifndef TILECOMP_FORMAT_SIMDBP128_H_
#define TILECOMP_FORMAT_SIMDBP128_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tilecomp::format {

struct SimdBp128Encoded {
  static constexpr uint32_t kLanes = 32;
  static constexpr uint32_t kValuesPerLane = 128;
  static constexpr uint32_t kBlockSize = kLanes * kValuesPerLane;  // 4096

  uint32_t total_count = 0;
  std::vector<uint32_t> block_starts;
  std::vector<uint32_t> data;  // per block: [reference][bits][striped words]

  uint32_t num_blocks() const {
    return static_cast<uint32_t>((static_cast<uint64_t>(total_count) +
                                  kBlockSize - 1) /
                                 kBlockSize);
  }
  uint64_t compressed_bytes() const {
    return 8 + (block_starts.size() + data.size()) * 4;
  }
  double bits_per_int() const {
    return total_count == 0
               ? 0.0
               : 8.0 * static_cast<double>(compressed_bytes()) / total_count;
  }
};

SimdBp128Encoded SimdBp128Encode(const uint32_t* values, size_t count);
std::vector<uint32_t> SimdBp128DecodeHost(const SimdBp128Encoded& encoded);

}  // namespace tilecomp::format

#endif  // TILECOMP_FORMAT_SIMDBP128_H_
