// Block-wide prefix sum (Blelloch work-efficient scan [13]) executed in
// shared memory, as used by GPU-DFOR delta decoding (Section 5.2) and the
// GPU-RFOR run expansion (Section 6). The functional result is computed
// in-place; the accounting mirrors the up-sweep/down-sweep access pattern:
// 2(n-1) add steps, each reading two and writing one shared-memory word,
// with 2*log2(n) barriers.
#ifndef TILECOMP_KERNELS_BLOCK_SCAN_H_
#define TILECOMP_KERNELS_BLOCK_SCAN_H_

#include <cstdint>

#include "common/bit_util.h"
#include "sim/block_context.h"

namespace tilecomp::kernels {

// In-place *inclusive* prefix sum over data[0..n); wrapping uint32 adds.
inline void BlockScanInclusive(sim::BlockContext& ctx, uint32_t* data,
                               uint32_t n) {
  if (n == 0) return;
  // Functional result (sequential host loop is bit-identical to the
  // parallel scan under wrapping addition).
  uint32_t acc = 0;
  for (uint32_t i = 0; i < n; ++i) {
    acc += data[i];
    data[i] = acc;
  }
  // Accounting for the Blelloch up/down sweeps.
  const uint64_t add_steps = 2ull * (n > 0 ? n - 1 : 0);
  ctx.Shared(add_steps * 12);  // two 4B reads + one 4B write per add
  ctx.Compute(add_steps);
  const uint32_t levels = BitsNeeded(n > 1 ? n - 1 : 1);
  for (uint32_t i = 0; i < 2 * levels; ++i) ctx.Barrier();
}

// In-place *exclusive* prefix sum; returns the total.
inline uint32_t BlockScanExclusive(sim::BlockContext& ctx, uint32_t* data,
                                   uint32_t n) {
  uint32_t acc = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t v = data[i];
    data[i] = acc;
    acc += v;
  }
  const uint64_t add_steps = 2ull * (n > 0 ? n - 1 : 0);
  ctx.Shared(add_steps * 12);
  ctx.Compute(add_steps);
  const uint32_t levels = BitsNeeded(n > 1 ? n - 1 : 1);
  for (uint32_t i = 0; i < 2 * levels; ++i) ctx.Barrier();
  return acc;
}

}  // namespace tilecomp::kernels

#endif  // TILECOMP_KERNELS_BLOCK_SCAN_H_
