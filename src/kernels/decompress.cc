#include "kernels/decompress.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/bit_util.h"
#include "kernels/block_scan.h"
#include "sim/global_counter.h"
#include "sim/perf_model.h"

namespace tilecomp::kernels {

namespace {

// Launches `tile_body(ctx, tile)` over `tiles` work items.
//   kStatic     — one block per tile (grid == tiles), the paper's mapping.
//   kPersistent — grid sized to fill the machine once
//                 (sim::PersistentGridDim); each block loops
//                 `tile = counter.fetch_add(1)` until the counter runs past
//                 the tile count, sampling per-tile cost for the wave model.
// The persistent launch gets a ".persistent" label suffix so traces
// distinguish the two. Functional output is identical: every tile is
// processed exactly once whichever block pops it.
template <typename TileBody>
void LaunchTiled(sim::Device& dev, std::string label, sim::LaunchConfig lc,
                 int64_t tiles, sim::Scheduling scheduling,
                 const TileBody& tile_body) {
  if (scheduling == sim::Scheduling::kStatic) {
    lc.grid_dim = tiles;
    dev.Launch(std::move(label), lc, [&](sim::BlockContext& ctx) {
      tile_body(ctx, ctx.block_id());
    });
    return;
  }
  lc.scheduling = sim::Scheduling::kPersistent;
  lc.grid_dim = sim::PersistentGridDim(dev.spec(), lc, tiles);
  sim::GlobalCounter next_tile;
  dev.Launch(std::move(label) + ".persistent", lc,
             [&](sim::BlockContext& ctx) {
               ctx.DeclareWorkItemSampling();
               for (;;) {
                 const uint64_t tile = ctx.AtomicAdd(next_tile);
                 if (tile >= static_cast<uint64_t>(tiles)) break;
                 tile_body(ctx, static_cast<int64_t>(tile));
                 ctx.EndWorkItem();
               }
             });
}

}  // namespace

RunScope::RunScope(sim::Device& dev)
    : dev_(dev),
      start_ms_(dev.elapsed_ms()),
      start_launches_(dev.launch_log().size()) {}

void RunScope::Finish(DecompressRun* run) const {
  run->time_ms = dev_.elapsed_ms() - start_ms_;
  const std::vector<sim::KernelResult>& log = dev_.launch_log();
  run->launches.assign(log.begin() + start_launches_, log.end());
  run->stats = sim::KernelStats();
  run->ok = true;
  for (const sim::KernelResult& launch : run->launches) {
    run->stats += launch.stats;
    if (launch.failed) run->ok = false;
  }
}

void StreamingPass(sim::Device& dev, uint64_t n_values, uint64_t read_bytes,
                   uint64_t write_bytes, uint64_t ops_per_value,
                   std::string label, sim::Scheduling scheduling) {
  sim::LaunchConfig lc;
  lc.block_threads = 256;
  lc.regs_per_thread = 24;
  lc.smem_bytes_per_block = 0;
  const uint64_t items = std::max<uint64_t>(1, CeilDiv<uint64_t>(n_values, 256 * 4));
  LaunchTiled(dev, std::move(label), lc, static_cast<int64_t>(items),
              scheduling, [&](sim::BlockContext& ctx, int64_t) {
                ctx.CoalescedRead(read_bytes / items, true);
                ctx.CoalescedWrite(write_bytes / items, true);
                ctx.Compute(ops_per_value * n_values / items);
              });
}

namespace {
// Backwards-compatible alias used by the cascade implementations below.
inline void StreamingKernel(sim::Device& dev, uint64_t n, uint64_t r,
                            uint64_t w, uint64_t ops,
                            std::string label = "stream",
                            sim::Scheduling scheduling =
                                sim::Scheduling::kStatic) {
  StreamingPass(dev, n, r, w, ops, std::move(label), scheduling);
}

// A device-wide scan pass: streams `n` values through block-wide Blelloch
// scans in shared memory (read + write global, plus the scan's shared
// traffic and barriers per block).
void ScanPass(sim::Device& dev, uint64_t n, std::string label = "scan",
              sim::Scheduling scheduling = sim::Scheduling::kStatic) {
  sim::LaunchConfig lc;
  lc.block_threads = 128;
  lc.regs_per_thread = 28;
  lc.smem_bytes_per_block = 512 * 4;
  const uint64_t items = std::max<uint64_t>(1, CeilDiv<uint64_t>(n, 512));
  LaunchTiled(dev, std::move(label), lc, static_cast<int64_t>(items),
              scheduling, [&](sim::BlockContext& ctx, int64_t) {
                ctx.CoalescedRead(n * 4 / items, true);
                ctx.Shared(n * 24 / items);
                ctx.Compute(n * 4 / items);
                for (int i = 0; i < 20; ++i) {
                  ctx.Barrier();  // 2*log2(512) + carry-in
                }
                ctx.CoalescedWrite(n * 4 / items, true);
              });
}

// A scatter pass: `count` random single-word writes into an `out_n`-sized
// array (run-start scatter of the RLE expansion) — inherently uncoalesced.
void ScatterPass(sim::Device& dev, uint64_t count, uint64_t read_bytes,
                 std::string label = "scatter",
                 sim::Scheduling scheduling = sim::Scheduling::kStatic) {
  sim::LaunchConfig lc;
  lc.block_threads = 256;
  lc.regs_per_thread = 24;
  const uint64_t items = std::max<uint64_t>(1, CeilDiv<uint64_t>(count, 1024));
  LaunchTiled(dev, std::move(label), lc, static_cast<int64_t>(items),
              scheduling, [&](sim::BlockContext& ctx, int64_t) {
                ctx.CoalescedRead(read_bytes / items, true);
                ctx.ScatteredWrite(count / items, 4);
                ctx.Compute(2 * count / items);
              });
}
}  // namespace

DecompressRun DecompressGpuFor(sim::Device& dev,
                               const format::GpuForEncoded& enc,
                               const UnpackConfig& cfg, bool write_output,
                               sim::Scheduling scheduling) {
  DecompressRun run;
  RunScope scope(dev);
  const format::GpuForHeader& h = enc.header;
  const uint32_t tile_values = h.block_size * cfg.effective_d();
  run.output.resize(static_cast<size_t>(h.num_blocks()) * h.block_size);

  sim::LaunchConfig lc = GpuForLaunchConfig(enc, cfg);
  LaunchTiled(dev, "gpufor.fused", lc, lc.grid_dim, scheduling,
              [&](sim::BlockContext& ctx, int64_t tile) {
                uint32_t* out_tile =
                    run.output.data() +
                    static_cast<size_t>(tile) * tile_values;
                const uint32_t n =
                    LoadBitPack(ctx, enc, tile, cfg, out_tile);
                if (write_output) {
                  ctx.CoalescedWrite(static_cast<uint64_t>(n) * 4, true);
                }
              });

  run.output.resize(h.total_count);
  scope.Finish(&run);
  return run;
}

DecompressRun DecompressGpuDFor(sim::Device& dev,
                                const format::GpuDForEncoded& enc,
                                sim::Scheduling scheduling) {
  DecompressRun run;
  RunScope scope(dev);
  const format::GpuDForHeader& h = enc.header;
  const uint32_t vpt = h.values_per_tile();
  run.output.resize(static_cast<size_t>(h.num_tiles()) * vpt);

  sim::LaunchConfig lc = GpuDForLaunchConfig(enc);
  LaunchTiled(dev, "gpudfor.fused", lc, lc.grid_dim, scheduling,
              [&](sim::BlockContext& ctx, int64_t tile) {
                uint32_t* out_tile =
                    run.output.data() + static_cast<size_t>(tile) * vpt;
                const uint32_t n = LoadDBitPack(ctx, enc, tile, out_tile);
                ctx.CoalescedWrite(static_cast<uint64_t>(n) * 4, true);
              });

  run.output.resize(h.total_count);
  scope.Finish(&run);
  return run;
}

DecompressRun DecompressGpuRFor(sim::Device& dev,
                                const format::GpuRForEncoded& enc,
                                sim::Scheduling scheduling) {
  DecompressRun run;
  RunScope scope(dev);
  const format::GpuRForHeader& h = enc.header;
  run.output.resize(static_cast<size_t>(h.num_blocks()) * h.block_size);

  sim::LaunchConfig lc = GpuRForLaunchConfig(enc);
  LaunchTiled(dev, "gpurfor.fused", lc, lc.grid_dim, scheduling,
              [&](sim::BlockContext& ctx, int64_t tile) {
                uint32_t* out_tile =
                    run.output.data() +
                    static_cast<size_t>(tile) * h.block_size;
                const uint32_t n = LoadRBitPack(ctx, enc, tile, out_tile);
                ctx.CoalescedWrite(static_cast<uint64_t>(n) * 4, true);
              });

  // Compact: every block except possibly the last is full, so the layout is
  // already dense; just trim the padding of the final block.
  run.output.resize(h.total_count);
  scope.Finish(&run);
  return run;
}

DecompressRun DecompressForBitPackCascaded(sim::Device& dev,
                                           const format::GpuForEncoded& enc,
                                           sim::Scheduling scheduling) {
  DecompressRun run;
  RunScope scope(dev);
  const format::GpuForHeader& h = enc.header;
  const uint64_t n = h.total_count;
  const size_t padded = static_cast<size_t>(h.num_blocks()) * h.block_size;

  // Kernel 1: bit-unpack offsets -> global intermediate.
  std::vector<uint32_t> offsets(padded);
  UnpackConfig cfg;  // same staging quality as the fused kernel
  sim::LaunchConfig lc1 = GpuForLaunchConfig(enc, cfg);
  const uint32_t tile_values = h.block_size * cfg.effective_d();
  LaunchTiled(
      dev, "cascade.unpack", lc1, lc1.grid_dim, scheduling,
      [&](sim::BlockContext& ctx, int64_t tile) {
        uint32_t* out_tile =
            offsets.data() + static_cast<size_t>(tile) * tile_values;
        const uint32_t got = LoadBitPack(ctx, enc, tile, cfg, out_tile);
        // Strip the reference again: the cascade's first layer outputs raw
        // offsets to global memory.
        const int64_t first_block = tile * cfg.effective_d();
        for (uint32_t i = 0; i < got; ++i) {
          const size_t block =
              static_cast<size_t>(first_block) + i / h.block_size;
          out_tile[i] -= enc.data[enc.block_starts[block]];
        }
        ctx.CoalescedWrite(static_cast<uint64_t>(got) * 4, true);
      });

  // Kernel 2: add per-block reference -> final output.
  run.output.assign(padded, 0);
  StreamingKernel(dev, n, /*read=*/n * 4 + h.num_blocks() * 4,
                  /*write=*/n * 4, /*ops=*/2, "cascade.add_ref", scheduling);
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    const size_t block = i / h.block_size;
    run.output[i] = offsets[i] + enc.data[enc.block_starts[block]];
  }

  run.output.resize(h.total_count);
  scope.Finish(&run);
  return run;
}

DecompressRun DecompressDeltaForBitPackCascaded(
    sim::Device& dev, const format::GpuDForEncoded& enc,
    sim::Scheduling scheduling) {
  DecompressRun run;
  RunScope scope(dev);
  const format::GpuDForHeader& h = enc.header;
  const uint64_t n = h.total_count;
  const uint32_t vpt = h.values_per_tile();
  const size_t padded = static_cast<size_t>(h.num_tiles()) * vpt;

  // Kernels 1+2: unpack offsets, add references -> delta array in global
  // memory (two passes, as in prior work).
  std::vector<uint32_t> deltas(padded, 0);
  sim::LaunchConfig lc1 = GpuDForLaunchConfig(enc);
  // Pass 1: unpack (same traffic as the staging part of the fused kernel,
  // plus the global write of raw offsets).
  LaunchTiled(
      dev, "cascade.unpack", lc1, lc1.grid_dim, scheduling,
      [&](sim::BlockContext& ctx, int64_t tile) {
        const uint32_t first_block =
            static_cast<uint32_t>(tile) * h.blocks_per_tile;
        const uint32_t last_block =
            std::min(first_block + h.blocks_per_tile, h.num_blocks());
        if (last_block <= first_block) return;
        const uint64_t data_bytes =
            static_cast<uint64_t>(enc.block_starts[last_block] -
                                  enc.block_starts[first_block]) *
            4;
        ctx.CoalescedRead((last_block - first_block + 1) * 4, false);
        ctx.CoalescedRead(data_bytes, false);
        ctx.Shared(data_bytes);
        const uint64_t values =
            static_cast<uint64_t>(last_block - first_block) * h.block_size;
        ctx.Shared(values * 12);
        ctx.Compute(values * 6);
        ctx.CoalescedWrite(values * 4, true);
      });
  // Pass 2: add per-block reference.
  StreamingKernel(dev, n, n * 4 + h.num_blocks() * 4, n * 4, 2,
                  "cascade.add_ref", scheduling);

  // Functional: unpack deltas via the tile decoder's block logic, without
  // the prefix sum (recompute deltas from the reference decoder's output).
  std::vector<uint32_t> decoded = format::GpuDForDecodeHost(enc);

  // Kernel 3: prefix sum per tile (read deltas, block-wide scan in shared
  // memory, write final values).
  ScanPass(dev, n, "cascade.prefix_sum", scheduling);

  run.output = std::move(decoded);
  scope.Finish(&run);
  return run;
}

DecompressRun DecompressRleForBitPackCascaded(
    sim::Device& dev, const format::GpuRForEncoded& enc,
    sim::Scheduling scheduling) {
  DecompressRun run;
  RunScope scope(dev);
  const format::GpuRForHeader& h = enc.header;
  const uint64_t n = h.total_count;
  // Total runs across all blocks.
  uint64_t total_runs = 0;
  for (uint32_t b = 0; b < h.num_blocks(); ++b) {
    total_runs += enc.value_data[enc.value_block_starts[b]];
  }
  const uint64_t comp_v = enc.value_data.size() * 4;
  const uint64_t comp_l = enc.length_data.size() * 4;

  // Kernels 1-4: FOR+BitPack decode of the values and run-length columns
  // (unpack + add-reference for each).
  StreamingKernel(dev, total_runs, comp_v, total_runs * 4, 6,
                  "cascade.unpack_values", scheduling);                   // K1
  StreamingKernel(dev, total_runs, total_runs * 4, total_runs * 4, 2,
                  "cascade.add_ref_values", scheduling);                  // K2
  StreamingKernel(dev, total_runs, comp_l, total_runs * 4, 6,
                  "cascade.unpack_lengths", scheduling);                  // K3
  StreamingKernel(dev, total_runs, total_runs * 4, total_runs * 4, 2,
                  "cascade.add_ref_lengths", scheduling);                 // K4

  // Kernels 5-8: the RLE expansion of Fang et al. [18] with global
  // intermediates: scan of run lengths, random scatter of run indices into
  // the marker array, inclusive max-scan, gather.
  ScanPass(dev, total_runs, "rle.scan_lengths", scheduling);  // K5
  // K6: scatter into the zero-initialized marker array (grid covers the
  // full output; runs land scattered).
  {
    sim::LaunchConfig lc;
    lc.block_threads = 256;
    lc.regs_per_thread = 24;
    const uint64_t items = std::max<uint64_t>(1, n / 1024);
    const uint64_t runs_local = total_runs;
    LaunchTiled(dev, "rle.scatter", lc, static_cast<int64_t>(items),
                scheduling,
                [&, runs_local](sim::BlockContext& ctx, int64_t) {
                  ctx.CoalescedRead(runs_local * 8 / items, true);
                  ctx.CoalescedWrite(n * 4 / items, true);  // marker init
                  ctx.ScatteredWrite(runs_local / items, 4);
                });
  }
  ScanPass(dev, n, "rle.max_scan", scheduling);               // K7
  StreamingKernel(dev, n, n * 4 + total_runs * 4, n * 4, 2,
                  "rle.gather", scheduling);                  // K8

  run.output = format::GpuRForDecodeHost(enc);
  scope.Finish(&run);
  return run;
}

DecompressRun DecompressNsf(sim::Device& dev, const format::NsfEncoded& enc) {
  DecompressRun run;
  RunScope scope(dev);
  const uint64_t n = enc.total_count;
  StreamingKernel(dev, n, n * enc.bytes_per_value, n * 4, 2, "nsf.widen");
  run.output = format::NsfDecodeHost(enc);
  scope.Finish(&run);
  return run;
}

DecompressRun DecompressNsv(sim::Device& dev, const format::NsvEncoded& enc) {
  DecompressRun run;
  RunScope scope(dev);
  const uint64_t n = enc.total_count;
  // K1: expand 2-bit tags into per-value byte counts.
  StreamingKernel(dev, n, n / 4, n * 4, 3, "nsv.expand_tags");
  // K2: device-wide exclusive scan -> byte offsets.
  StreamingKernel(dev, n, n * 4, n * 4, 2, "nsv.offset_scan");
  // K3: variable-length gather. Each warp's 32 loads cover an unpredictable
  // window of ~2.5 bytes/value; accesses are effectively scattered.
  {
    sim::LaunchConfig lc;
    lc.block_threads = 256;
    lc.grid_dim =
        std::max<int64_t>(1, static_cast<int64_t>(CeilDiv<uint64_t>(n, 1024)));
    lc.regs_per_thread = 28;
    const int64_t grid = lc.grid_dim;
    const uint64_t data_bytes = enc.data.size();
    dev.Launch("nsv.gather", lc, [&](sim::BlockContext& ctx) {
      ctx.CoalescedRead(n * 4 / grid, true);  // offsets
      ctx.WindowedRead(n / grid, /*window=*/32 * (data_bytes / std::max<uint64_t>(n, 1) + 1),
                       1);
      ctx.Compute(6 * n / grid);
      ctx.CoalescedWrite(n * 4 / grid, true);
    });
  }
  run.output = format::NsvDecodeHost(enc);
  scope.Finish(&run);
  return run;
}

DecompressRun DecompressRle(sim::Device& dev, const format::RleEncoded& enc) {
  DecompressRun run;
  RunScope scope(dev);
  const uint64_t n = enc.total_count;
  const uint64_t runs = enc.num_runs();
  // The four expansion steps of Fang et al. [18]: scan the run lengths,
  // scatter run indices into the zero-initialized marker array (the memset
  // is folded into the scan pass's write), inclusive max-scan over the
  // markers, gather the run values.
  ScanPass(dev, runs, "rle.scan_lengths");               // K1
  StreamingKernel(dev, n, runs * 4, n * 4, 1,
                  "rle.marker_init");                    // K2 marker init
  ScatterPass(dev, runs, runs * 8, "rle.scatter");       // K2' scatter
  ScanPass(dev, n, "rle.max_scan");                      // K3
  StreamingKernel(dev, n, n * 4 + runs * 4, n * 4, 2,
                  "rle.gather");                         // K4 gather
  run.output = format::RleDecodeHost(enc);
  scope.Finish(&run);
  return run;
}

DecompressRun DecompressGpuBp(sim::Device& dev,
                              const format::GpuForEncoded& enc) {
  // Mallia et al.'s GPU-BP: horizontal bit-packing decoded one block per
  // thread block without multi-block staging or offset precompute.
  UnpackConfig cfg;
  cfg.d = 1;
  cfg.opt = UnpackOpt::kSharedMemory;
  return DecompressGpuFor(dev, enc, cfg);
}

DecompressRun DecompressSimdBp128(sim::Device& dev,
                                  const format::SimdBp128Encoded& enc,
                                  bool write_output) {
  DecompressRun run;
  RunScope scope(dev);
  constexpr uint32_t kBlock = format::SimdBp128Encoded::kBlockSize;
  const uint32_t num_blocks = enc.num_blocks();

  sim::LaunchConfig lc;
  lc.grid_dim = num_blocks;
  lc.block_threads = 128;
  // 32 values per thread tank occupancy (Section 4.3); the dynamically
  // indexed 32-entry per-thread array additionally lives in local (=global)
  // memory — that traffic is charged explicitly in the kernel body.
  lc.regs_per_thread = 96;
  const uint32_t avg_words =
      num_blocks == 0 ? 0
                      : static_cast<uint32_t>(enc.data.size() / num_blocks);
  lc.smem_bytes_per_block = static_cast<int>(avg_words * 4);

  std::vector<uint32_t> decoded = format::SimdBp128DecodeHost(enc);
  run.output.resize(static_cast<size_t>(num_blocks) * kBlock);
  dev.Launch("simdbp128.fused", lc, [&](sim::BlockContext& ctx) {
    const uint32_t b = static_cast<uint32_t>(ctx.block_id());
    const uint64_t words =
        enc.block_starts[b + 1] - enc.block_starts[b];
    ctx.CoalescedRead(words * 4 + 8, false);
    ctx.Shared(words * 4);
    ctx.Barrier();
    ctx.Shared(static_cast<uint64_t>(kBlock) * 8);
    ctx.Compute(static_cast<uint64_t>(kBlock) * 6);
    // Local-memory round trip of the dynamically indexed per-thread
    // 32-entry output arrays (one store + one load per decoded value).
    ctx.CoalescedWrite(static_cast<uint64_t>(kBlock) * 4, true);
    ctx.CoalescedRead(static_cast<uint64_t>(kBlock) * 4, true);
    const uint64_t begin = static_cast<uint64_t>(b) * kBlock;
    const uint64_t cnt =
        std::min<uint64_t>(kBlock, decoded.size() - begin);
    std::memcpy(run.output.data() + begin, decoded.data() + begin, cnt * 4);
    if (write_output) {
      ctx.CoalescedWrite(static_cast<uint64_t>(kBlock) * 4, true);
    }
  });

  run.output.resize(enc.total_count);
  scope.Finish(&run);
  return run;
}

DecompressRun CopyUncompressed(sim::Device& dev,
                               const std::vector<uint32_t>& values) {
  DecompressRun run;
  RunScope scope(dev);
  const uint64_t n = values.size();
  StreamingKernel(dev, n, n * 4, n * 4, 1, "copy");
  run.output = values;
  scope.Finish(&run);
  return run;
}

DecompressRun ReadUncompressed(sim::Device& dev,
                               const std::vector<uint32_t>& values) {
  DecompressRun run;
  RunScope scope(dev);
  const uint64_t n = values.size();
  StreamingKernel(dev, n, n * 4, 0, 1, "read");
  run.output = values;
  scope.Finish(&run);
  return run;
}

}  // namespace tilecomp::kernels
