// Full-column decompression entry points for every scheme in the paper's
// evaluation (Sections 9.2-9.4): the tile-based schemes (single fused
// kernel), their cascaded counterparts (one kernel per compression layer
// with global-memory intermediates — the prior-work model of Figure 2 left),
// and the byte-aligned / vertical baselines.
//
// Every function decodes the stream on the simulated device, returns the
// decoded values plus the modeled time, kernel-launch count and traffic.
// Functional output is bit-exact with the host reference decoders.
#ifndef TILECOMP_KERNELS_DECOMPRESS_H_
#define TILECOMP_KERNELS_DECOMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "format/gpudfor.h"
#include "format/gpufor.h"
#include "format/gpurfor.h"
#include "format/ns.h"
#include "format/rle.h"
#include "format/simdbp128.h"
#include "kernels/load_tile.h"
#include "sim/device.h"

namespace tilecomp::kernels {

struct DecompressRun {
  std::vector<uint32_t> output;
  double time_ms = 0.0;
  // Per-launch trace of the run: one KernelResult (label, config, stats,
  // perf-model breakdown + limiter) per kernel, in timeline order. Fused
  // tile-based schemes record exactly one entry; cascaded pipelines one per
  // layer pass.
  std::vector<sim::KernelResult> launches;
  // Aggregate traffic across `launches`.
  sim::KernelStats stats;
  // False when any launch of the run exhausted its fault-injection attempt
  // budget (KernelResult::failed): that kernel's body never ran, so `output`
  // is incomplete and must not be consumed or cached. Always true without an
  // attached fault plan.
  bool ok = true;

  uint64_t kernel_launches() const { return launches.size(); }
};

// Captures the device timeline around a multi-launch pipeline. Construct
// before the first launch; Finish() slices the device's launch log into
// `run->launches` and fills the aggregate time and traffic. Shared by the
// decompression entry points below and the system pipelines in
// codec/systems.cc.
class RunScope {
 public:
  explicit RunScope(sim::Device& dev);
  void Finish(DecompressRun* run) const;

 private:
  sim::Device& dev_;
  double start_ms_;
  size_t start_launches_;
};

// --- Tile-based (single-pass) decompression, Section 3 ---

// All tile-based entry points (and the cascaded ones below) take a
// `scheduling` knob: kStatic launches one block per tile, the paper's
// mapping; kPersistent launches a machine-filling grid whose blocks pop
// tiles from a device-global counter (work stealing) — same functional
// output, but the perf model charges the per-pop atomic cost instead of the
// per-wave tail of the slowest tile. Persistent launches append
// ".persistent" to the kernel label.
//
// `write_output` = false models decode-to-registers (the Section 4.2 / 4.3
// microbenchmark setting); true additionally streams the decoded values back
// to global memory (the Figure 7a setting).
DecompressRun DecompressGpuFor(
    sim::Device& dev, const format::GpuForEncoded& enc,
    const UnpackConfig& cfg = UnpackConfig(), bool write_output = true,
    sim::Scheduling scheduling = sim::Scheduling::kStatic);
DecompressRun DecompressGpuDFor(
    sim::Device& dev, const format::GpuDForEncoded& enc,
    sim::Scheduling scheduling = sim::Scheduling::kStatic);
DecompressRun DecompressGpuRFor(
    sim::Device& dev, const format::GpuRForEncoded& enc,
    sim::Scheduling scheduling = sim::Scheduling::kStatic);

// --- Cascaded (layer-at-a-time) decompression baselines, Figure 2 left ---

// FOR+BitPack: 2 kernel passes (unpack, add-reference).
DecompressRun DecompressForBitPackCascaded(
    sim::Device& dev, const format::GpuForEncoded& enc,
    sim::Scheduling scheduling = sim::Scheduling::kStatic);
// Delta+FOR+BitPack: 3 kernel passes (unpack, add-reference, prefix sum).
DecompressRun DecompressDeltaForBitPackCascaded(
    sim::Device& dev, const format::GpuDForEncoded& enc,
    sim::Scheduling scheduling = sim::Scheduling::kStatic);
// RLE+FOR+BitPack: 8 kernel passes (4 to decode FOR+BitPack for the values
// and run-length columns, 4 for the RLE expansion of Fang et al. [18]).
DecompressRun DecompressRleForBitPackCascaded(
    sim::Device& dev, const format::GpuRForEncoded& enc,
    sim::Scheduling scheduling = sim::Scheduling::kStatic);

// --- Byte-aligned / other baselines ---

// NSF: single widening pass.
DecompressRun DecompressNsf(sim::Device& dev, const format::NsfEncoded& enc);
// NSV: 3 passes (tag expansion, device-wide scan, variable-length gather).
DecompressRun DecompressNsv(sim::Device& dev, const format::NsvEncoded& enc);
// Plain RLE: 4 passes (zero-init, scan, scatter, propagate/gather).
DecompressRun DecompressRle(sim::Device& dev, const format::RleEncoded& enc);
// GPU-BP (Mallia et al. [33]): single bit-packing layer decoded tile-style
// but without the paper's optimizations (D = 1, no offset precompute).
DecompressRun DecompressGpuBp(sim::Device& dev,
                              const format::GpuForEncoded& enc);
// GPU-SIMDBP128: vertical layout, 4096-value blocks (Section 4.3).
DecompressRun DecompressSimdBp128(sim::Device& dev,
                                  const format::SimdBp128Encoded& enc,
                                  bool write_output = true);

// A generic streaming kernel pass (coalesced read of `read_bytes`, write of
// `write_bytes`, `ops_per_value` ALU operations per logical value). Building
// block for modeling cascaded decompression pipelines of other systems.
// `label` names the launch in the device's launch log / attached tracer.
void StreamingPass(sim::Device& dev, uint64_t n_values, uint64_t read_bytes,
                   uint64_t write_bytes, uint64_t ops_per_value,
                   std::string label = "stream",
                   sim::Scheduling scheduling = sim::Scheduling::kStatic);

// --- "None" ---

// Stream an uncompressed column (read + write), the None series of
// Figures 5/7/8.
DecompressRun CopyUncompressed(sim::Device& dev,
                               const std::vector<uint32_t>& values);
// Read-only pass over an uncompressed column (the paper's "reading an
// uncompressed dataset" reference point, Section 4.2).
DecompressRun ReadUncompressed(sim::Device& dev,
                               const std::vector<uint32_t>& values);

}  // namespace tilecomp::kernels

#endif  // TILECOMP_KERNELS_DECOMPRESS_H_
