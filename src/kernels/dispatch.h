// Generic scheme dispatcher: decompress any codec::CompressedColumn on the
// simulated device without a hand-rolled per-scheme switch at every call
// site. Header-only (inline) so that the kernels library does not gain a
// link-time dependency on the codec library.
#ifndef TILECOMP_KERNELS_DISPATCH_H_
#define TILECOMP_KERNELS_DISPATCH_H_

#include "codec/column.h"
#include "common/macros.h"
#include "kernels/decompress.h"
#include "sim/device.h"

namespace tilecomp::kernels {

// Which decompression pipeline to run for schemes that have both:
//   kFused    — the paper's single-kernel tile-based decompression;
//   kCascaded — one kernel per compression layer with global-memory
//               intermediates (the prior-work model of Figure 2 left).
// Schemes with only one pipeline (NSF, NSV, RLE, GPU-BP, SIMD-BP128, None)
// ignore the request.
enum class Pipeline { kFused, kCascaded };

// `scheduling` selects the tile-to-block mapping for the schemes whose
// kernels support work stealing (the tile-based GPU-FOR/DFOR/RFOR fused
// kernels and their cascaded counterparts); the byte-aligned and vertical
// baselines ignore it, matching their published implementations.
inline DecompressRun Decompress(
    sim::Device& dev, const codec::CompressedColumn& column,
    Pipeline pipeline = Pipeline::kFused,
    sim::Scheduling scheduling = sim::Scheduling::kStatic) {
  using codec::Scheme;
  const bool cascaded = pipeline == Pipeline::kCascaded;
  switch (column.scheme()) {
    case Scheme::kNone:
      return CopyUncompressed(dev, *column.raw());
    case Scheme::kGpuFor:
      return cascaded ? DecompressForBitPackCascaded(dev, *column.gpu_for(),
                                                     scheduling)
                      : DecompressGpuFor(dev, *column.gpu_for(),
                                         UnpackConfig(), /*write_output=*/true,
                                         scheduling);
    case Scheme::kGpuDFor:
      return cascaded
                 ? DecompressDeltaForBitPackCascaded(dev, *column.gpu_dfor(),
                                                     scheduling)
                 : DecompressGpuDFor(dev, *column.gpu_dfor(), scheduling);
    case Scheme::kGpuRFor:
      return cascaded ? DecompressRleForBitPackCascaded(dev, *column.gpu_rfor(),
                                                        scheduling)
                      : DecompressGpuRFor(dev, *column.gpu_rfor(), scheduling);
    case Scheme::kNsf:
      return DecompressNsf(dev, *column.nsf());
    case Scheme::kNsv:
      return DecompressNsv(dev, *column.nsv());
    case Scheme::kRle:
      return DecompressRle(dev, *column.rle());
    case Scheme::kGpuBp:
      return DecompressGpuBp(dev, *column.gpu_for());
    case Scheme::kSimdBp128:
      return DecompressSimdBp128(dev, *column.simdbp());
  }
  TILECOMP_CHECK_MSG(false, "unknown scheme");
  return {};
}

}  // namespace tilecomp::kernels

#endif  // TILECOMP_KERNELS_DISPATCH_H_
