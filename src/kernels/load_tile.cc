#include "kernels/load_tile.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/bit_util.h"
#include "common/macros.h"
#include "format/packtile.h"
#include "kernels/block_scan.h"

namespace tilecomp::kernels {

namespace {

// Average encoded words per block, used to declare shared-memory footprints.
uint32_t AvgBlockWords(size_t data_words, uint32_t num_blocks) {
  return num_blocks == 0
             ? 0
             : static_cast<uint32_t>(CeilDiv<size_t>(data_words, num_blocks));
}

}  // namespace

int EstimateRegsPerThread(int d) {
  // ~16 registers of working state plus ~4 per kept output value (output,
  // offsets, unpack temporaries partially overlapping). At D=32 this crosses
  // the spill threshold of the performance model, reproducing the paper's
  // D=32 cliff (Section 4.2) and the GPU-SIMDBP128 penalty (Section 4.3).
  return 16 + 4 * d;
}

int GpuForSmemBytes(const format::GpuForEncoded& enc,
                    const UnpackConfig& cfg) {
  if (cfg.opt == UnpackOpt::kBase) return 0;
  const uint32_t avg =
      AvgBlockWords(enc.data.size(), enc.header.num_blocks());
  int bytes = cfg.effective_d() * static_cast<int>(avg) * 4;
  if (cfg.opt == UnpackOpt::kPrecomputeOffsets) {
    // Precomputed (offset, bitwidth) pairs per miniblock.
    bytes += cfg.effective_d() * static_cast<int>(enc.header.miniblock_count) * 8;
  }
  return bytes;
}

int GpuDForSmemBytes(const format::GpuDForEncoded& enc) {
  const uint32_t avg =
      AvgBlockWords(enc.data.size(), enc.header.num_blocks());
  // Encoded blocks + the decoded-delta buffer shared with the block scan.
  return static_cast<int>(enc.header.blocks_per_tile * avg * 4 +
                          enc.header.values_per_tile() * 4);
}

int GpuRForSmemBytes(const format::GpuRForEncoded& enc) {
  const uint32_t num_blocks = enc.header.num_blocks();
  const uint32_t avg_v = AvgBlockWords(enc.value_data.size(), num_blocks);
  const uint32_t avg_l = AvgBlockWords(enc.length_data.size(), num_blocks);
  // Two encoded streams plus run buffers plus the 512-entry expansion
  // buffer ("twice more resources than GPU-DFOR", Section 6).
  return static_cast<int>((avg_v + avg_l) * 4 + 2 * enc.header.block_size * 4 +
                          enc.header.block_size * 4);
}

sim::LaunchConfig GpuForLaunchConfig(const format::GpuForEncoded& enc,
                                     const UnpackConfig& cfg) {
  sim::LaunchConfig lc;
  const int d = cfg.effective_d();
  lc.grid_dim = CeilDiv<int64_t>(enc.header.num_blocks(), d);
  lc.block_threads = static_cast<int>(enc.header.block_size);
  lc.smem_bytes_per_block = GpuForSmemBytes(enc, cfg);
  lc.regs_per_thread = EstimateRegsPerThread(d);
  return lc;
}

sim::LaunchConfig GpuDForLaunchConfig(const format::GpuDForEncoded& enc) {
  sim::LaunchConfig lc;
  lc.grid_dim = enc.header.num_tiles();
  lc.block_threads = static_cast<int>(enc.header.block_size);
  lc.smem_bytes_per_block = GpuDForSmemBytes(enc);
  lc.regs_per_thread =
      EstimateRegsPerThread(static_cast<int>(enc.header.blocks_per_tile));
  return lc;
}

sim::LaunchConfig GpuRForLaunchConfig(const format::GpuRForEncoded& enc) {
  sim::LaunchConfig lc;
  lc.grid_dim = enc.header.num_blocks();
  lc.block_threads = 128;
  lc.smem_bytes_per_block = GpuRForSmemBytes(enc);
  // One 512-value logical block per thread block: 4 outputs per thread,
  // doubled working set for the two streams.
  lc.regs_per_thread = EstimateRegsPerThread(8);
  return lc;
}

uint32_t LoadBitPack(sim::BlockContext& ctx, const format::GpuForEncoded& enc,
                     int64_t tile_id, const UnpackConfig& cfg,
                     uint32_t* out_tile) {
  const format::GpuForHeader& h = enc.header;
  const int d = cfg.effective_d();
  const uint32_t num_blocks = h.num_blocks();
  const int64_t first_block = tile_id * d;
  const uint32_t block_size = h.block_size;
  const uint32_t mb_count = h.miniblock_count;

  uint32_t valid = 0;
  const int blocks_here = static_cast<int>(
      std::min<int64_t>(d, num_blocks - first_block));
  if (blocks_here <= 0) return 0;

  const uint32_t start_word = enc.block_starts[first_block];
  const uint32_t end_word = enc.block_starts[first_block + blocks_here];
  const uint64_t data_bytes = static_cast<uint64_t>(end_word - start_word) * 4;

  switch (cfg.opt) {
    case UnpackOpt::kBase: {
      // Algorithm 1: every thread hits global memory directly. Per warp:
      // block start, reference and bitwidth word are broadcast loads; the
      // 8-byte element windows of a warp fall inside one miniblock.
      ctx.BroadcastRead(4);  // block_starts[block_id]
      ctx.BroadcastRead(4);  // reference
      ctx.BroadcastRead(4);  // bitwidth word
      const uint32_t* block_data = enc.data.data() + start_word;
      uint32_t bw = block_data[1];
      for (uint32_t m = 0; m < mb_count; ++m) {
        const uint32_t bits = (bw >> (8 * m)) & 0xFF;
        // One warp (32 threads) covers one miniblock: per-thread 8-byte
        // loads inside a 4*bits-byte window.
        ctx.WindowedRead(block_size / mb_count, 4ull * bits + 8,
                         /*accesses_per_thread=*/2);
      }
      // Miniblock-offset loop (lines 8-10) + shift/mask extraction.
      ctx.Compute(static_cast<uint64_t>(block_size) * 14);
      break;
    }
    case UnpackOpt::kSharedMemory:
    case UnpackOpt::kMultiBlock:
    case UnpackOpt::kPrecomputeOffsets: {
      // Optimization 1/2: one coalesced staging pass of the D data blocks
      // plus the D+1 block-start lookups (irregular when D is small).
      ctx.CoalescedRead(static_cast<uint64_t>(blocks_here + 1) * 4,
                        /*aligned=*/false);
      ctx.CoalescedRead(data_bytes, /*aligned=*/false);
      ctx.Shared(data_bytes);  // write staging into shared memory
      ctx.Barrier();
      const uint64_t values =
          static_cast<uint64_t>(blocks_here) * block_size;
      if (cfg.opt == UnpackOpt::kPrecomputeOffsets) {
        // Optimization 3: D*4 (offset,width) pairs computed once by the
        // first D*4 threads (prefix sum over the bitwidth word).
        ctx.Shared(static_cast<uint64_t>(blocks_here) * mb_count * 8ull * 2);
        ctx.Compute(static_cast<uint64_t>(blocks_here) * mb_count * 8);
        ctx.Barrier();
        // Per value: 8-byte window read + (offset,width) lookup; extraction
        // is 5-6 ALU ops.
        ctx.Shared(values * (8 + 4));
        ctx.Compute(values * 6);
      } else {
        // Per value: 8-byte window read + bitwidth word re-read + the
        // per-thread miniblock-offset loop.
        ctx.Shared(values * (8 + 4));
        ctx.Compute(values * 14);
      }
      break;
    }
  }

  // Functional decode (bit-exact with the format's reference decoder).
  for (int b = 0; b < blocks_here; ++b) {
    const uint32_t block = static_cast<uint32_t>(first_block) + b;
    format::GpuForDecodeBlock(h, enc.data.data() + enc.block_starts[block],
                              out_tile + static_cast<size_t>(b) * block_size);
  }
  const uint64_t tile_begin =
      static_cast<uint64_t>(first_block) * block_size;
  valid = static_cast<uint32_t>(std::min<uint64_t>(
      static_cast<uint64_t>(blocks_here) * block_size,
      h.total_count - tile_begin));
  return valid;
}

uint32_t LoadDBitPack(sim::BlockContext& ctx,
                      const format::GpuDForEncoded& enc, int64_t tile_id,
                      uint32_t* out_tile) {
  const format::GpuDForHeader& h = enc.header;
  const uint32_t vpt = h.values_per_tile();
  const uint32_t first_block =
      static_cast<uint32_t>(tile_id) * h.blocks_per_tile;
  const uint32_t last_block = std::min(first_block + h.blocks_per_tile,
                                       h.num_blocks());
  const uint32_t blocks_here = last_block - first_block;
  if (blocks_here == 0) return 0;

  const uint64_t data_bytes =
      static_cast<uint64_t>(enc.block_starts[last_block] -
                            enc.block_starts[first_block]) *
      4;

  // Stage: block starts, first-value word, encoded blocks.
  ctx.CoalescedRead(static_cast<uint64_t>(blocks_here + 1) * 4, false);
  ctx.BroadcastRead(4);  // tile first value
  ctx.CoalescedRead(data_bytes + 4, false);
  ctx.Shared(data_bytes);
  ctx.Barrier();

  // Unpack deltas into shared memory (precomputed-offset fast path), then
  // the fused block-wide prefix sum (Section 5.2).
  const uint64_t values = static_cast<uint64_t>(blocks_here) * h.block_size;
  ctx.Shared(static_cast<uint64_t>(blocks_here) * h.miniblock_count * 16);
  ctx.Compute(static_cast<uint64_t>(blocks_here) * h.miniblock_count * 8);
  ctx.Barrier();
  ctx.Shared(values * (8 + 4));  // window reads
  ctx.Shared(values * 4);        // deltas written to the scan buffer
  ctx.Compute(values * 6);

  // Functional decode (includes the tile prefix sum); scan accounting below
  // reflects the real element count.
  format::GpuDForDecodeTile(h, enc, static_cast<uint32_t>(tile_id), out_tile);
  {
    const uint64_t add_steps = 2ull * (values > 0 ? values - 1 : 0);
    ctx.Shared(add_steps * 12);
    ctx.Compute(add_steps);
    const uint32_t levels = BitsNeeded(static_cast<uint32_t>(values));
    for (uint32_t i = 0; i < 2 * levels; ++i) ctx.Barrier();
  }

  const uint64_t tile_begin = static_cast<uint64_t>(tile_id) * vpt;
  return static_cast<uint32_t>(
      std::min<uint64_t>(vpt, h.total_count - tile_begin));
}

uint32_t LoadRBitPack(sim::BlockContext& ctx,
                      const format::GpuRForEncoded& enc, int64_t block_id,
                      uint32_t* out_tile) {
  const format::GpuRForHeader& h = enc.header;
  const uint32_t block = static_cast<uint32_t>(block_id);
  if (block >= h.num_blocks()) return 0;

  const uint64_t vbytes =
      static_cast<uint64_t>(enc.value_block_starts[block + 1] -
                            enc.value_block_starts[block]) *
      4;
  const uint64_t lbytes =
      static_cast<uint64_t>(enc.length_block_starts[block + 1] -
                            enc.length_block_starts[block]) *
      4;

  // Stage both compressed streams (two block-start lookups + two data
  // reads — the doubled resource cost of Section 6).
  ctx.CoalescedRead(8, false);
  ctx.CoalescedRead(8, false);
  ctx.CoalescedRead(vbytes, false);
  ctx.CoalescedRead(lbytes, false);
  ctx.Shared(vbytes + lbytes);
  ctx.Barrier();

  // Unpack runs.
  std::vector<uint32_t> values(h.block_size);
  std::vector<uint32_t> lengths(h.block_size);
  const uint32_t runs =
      format::GpuRForUnpackRuns(enc, block, values.data(), lengths.data());
  ctx.Shared(static_cast<uint64_t>(runs) * (8 + 4) * 2);
  ctx.Compute(static_cast<uint64_t>(runs) * 12);
  ctx.Barrier();

  // Expansion: the four steps of Fang et al. [18] — exclusive scan over the
  // lengths, scatter of run indices, inclusive max-scan over positions,
  // gather of values — all in shared memory.
  std::vector<uint32_t> offsets(lengths.begin(), lengths.begin() + runs);
  uint32_t total = BlockScanExclusive(ctx, offsets.data(), runs);
  std::vector<uint32_t> run_index(h.block_size, 0);
  for (uint32_t r = 0; r < runs; ++r) run_index[offsets[r]] = r;
  ctx.Shared(static_cast<uint64_t>(runs) * 4);  // scatter
  // Max-scan propagation.
  uint32_t cur = 0;
  for (uint32_t i = 0; i < total; ++i) {
    cur = std::max(cur, run_index[i]);
    out_tile[i] = values[cur];
  }
  {
    const uint64_t add_steps = 2ull * (total > 0 ? total - 1 : 0);
    ctx.Shared(add_steps * 12 + static_cast<uint64_t>(total) * 8);
    ctx.Compute(add_steps + total * 2);
    const uint32_t levels = BitsNeeded(total ? total : 1);
    for (uint32_t i = 0; i < 2 * levels; ++i) ctx.Barrier();
  }
  return total;
}

uint32_t EvaluateBitPack(sim::BlockContext& ctx,
                         const format::GpuForEncoded& enc, int64_t tile_id,
                         const UnpackConfig& cfg, const TilePredicate& pred,
                         TileMask* mask, uint32_t mask_offset) {
  const format::GpuForHeader& h = enc.header;
  const int d = cfg.effective_d();
  const uint32_t num_blocks = h.num_blocks();
  const int64_t first_block = tile_id * d;
  const uint32_t block_size = h.block_size;
  const uint32_t mb_count = h.miniblock_count;
  const uint32_t mb_values = block_size / mb_count;

  const int blocks_here =
      static_cast<int>(std::min<int64_t>(d, num_blocks - first_block));
  if (blocks_here <= 0) return 0;

  std::vector<uint32_t> decoded(block_size);
  uint64_t short_circuited = 0;
  for (int b = 0; b < blocks_here; ++b) {
    const uint32_t block = static_cast<uint32_t>(first_block) + b;
    const uint32_t* block_data = enc.data.data() + enc.block_starts[block];
    // Three adjacent words classify the whole block — start offset,
    // reference, per-miniblock bitwidths — one sector, one broadcast.
    ctx.BroadcastRead(12);
    const uint64_t ref = block_data[0];
    const uint32_t bw = block_data[1];

    // Classify each miniblock against the predicate from its
    // frame-of-reference bound interval [ref, ref + 2^w - 1].
    bool block_decoded = false;
    for (uint32_t m = 0; m < mb_count; ++m) {
      const uint32_t bits = (bw >> (8 * m)) & 0xFF;
      const uint64_t mb_hi =
          ref + (bits >= 32 ? 0xFFFFFFFFull : ((uint64_t{1} << bits) - 1));
      const uint32_t begin = mask_offset +
                             static_cast<uint32_t>(b) * block_size +
                             m * mb_values;
      ctx.Compute(4);  // bound interval + two range comparisons
      if (pred.DisjointFrom(ref, mb_hi)) {
        mask->ClearRange(begin, begin + mb_values);
        ++short_circuited;
        continue;
      }
      if (pred.Contains(ref, mb_hi)) {
        ++short_circuited;
        continue;
      }
      // Mixed miniblock: the block must be unpacked (the packed miniblocks
      // are not independently addressable without the offset prefix sum).
      // Stage and decode it once, then test only this miniblock's values.
      if (!block_decoded) {
        const uint64_t data_bytes =
            static_cast<uint64_t>(enc.block_starts[block + 1] -
                                  enc.block_starts[block]) *
            4;
        ctx.CoalescedRead(data_bytes, /*aligned=*/false);
        ctx.Shared(data_bytes);
        ctx.Barrier();
        // Precomputed-offset unpack of one block (see LoadBitPack).
        ctx.Shared(static_cast<uint64_t>(mb_count) * 16);
        ctx.Compute(static_cast<uint64_t>(mb_count) * 8);
        ctx.Barrier();
        format::GpuForDecodeBlock(h, block_data, decoded.data());
        block_decoded = true;
      }
      ctx.Shared(static_cast<uint64_t>(mb_values) * (8 + 4));
      ctx.Compute(static_cast<uint64_t>(mb_values) * (6 + 2));
      for (uint32_t i = 0; i < mb_values; ++i) {
        if (!pred.Matches(decoded[m * mb_values + i])) {
          mask->Clear(begin + i);
        }
      }
    }
  }
  ctx.PushdownBlocksShortCircuited(short_circuited);

  const uint64_t tile_begin = static_cast<uint64_t>(first_block) * block_size;
  return static_cast<uint32_t>(
      std::min<uint64_t>(static_cast<uint64_t>(blocks_here) * block_size,
                         h.total_count - tile_begin));
}

uint32_t EvaluateRBitPack(sim::BlockContext& ctx,
                          const format::GpuRForEncoded& enc, int64_t block_id,
                          const TilePredicate& pred, TileMask* mask) {
  const format::GpuRForHeader& h = enc.header;
  const uint32_t block = static_cast<uint32_t>(block_id);
  if (block >= h.num_blocks()) return 0;

  const uint64_t vbytes =
      static_cast<uint64_t>(enc.value_block_starts[block + 1] -
                            enc.value_block_starts[block]) *
      4;
  const uint64_t lbytes =
      static_cast<uint64_t>(enc.length_block_starts[block + 1] -
                            enc.length_block_starts[block]) *
      4;

  // Stage both compressed streams, exactly as LoadRBitPack does.
  ctx.CoalescedRead(8, false);
  ctx.CoalescedRead(8, false);
  ctx.CoalescedRead(vbytes, false);
  ctx.CoalescedRead(lbytes, false);
  ctx.Shared(vbytes + lbytes);
  ctx.Barrier();

  // Unpack the runs — and stop there. One comparison per run replaces one
  // comparison per row, and the scan/scatter/gather expansion of
  // LoadRBitPack never executes.
  std::vector<uint32_t> values(h.block_size);
  std::vector<uint32_t> lengths(h.block_size);
  const uint32_t runs =
      format::GpuRForUnpackRuns(enc, block, values.data(), lengths.data());
  ctx.Shared(static_cast<uint64_t>(runs) * (8 + 4) * 2);
  ctx.Compute(static_cast<uint64_t>(runs) * 12);
  ctx.Barrier();
  ctx.Compute(static_cast<uint64_t>(runs) * 2);

  uint32_t pos = 0;
  for (uint32_t r = 0; r < runs; ++r) {
    if (!pred.Matches(values[r])) {
      mask->ClearRange(pos, pos + lengths[r]);
    }
    pos += lengths[r];
  }
  ctx.PushdownRunsShortCircuited(runs);
  return pos;
}

uint32_t BlockLoadRaw(sim::BlockContext& ctx, const uint32_t* column,
                      uint32_t column_count, int64_t tile_id,
                      uint32_t tile_size, uint32_t* out_tile) {
  const uint64_t begin = static_cast<uint64_t>(tile_id) * tile_size;
  if (begin >= column_count) return 0;
  const uint32_t n = static_cast<uint32_t>(
      std::min<uint64_t>(tile_size, column_count - begin));
  ctx.CoalescedRead(static_cast<uint64_t>(n) * 4, /*aligned=*/true);
  std::memcpy(out_tile, column + begin, static_cast<size_t>(n) * 4);
  return n;
}

uint32_t LoadPackedTile(sim::BlockContext& ctx, const uint32_t* extent,
                        uint32_t extent_words, uint32_t* out_tile) {
  format::PackTileHeader h;
  if (!format::ParsePackTileHeader(extent, extent_words, &h)) return 0;
  const uint64_t extent_bytes = static_cast<uint64_t>(extent_words) * 4;

  // One coalesced staging pass of the whole extent (header words ride along
  // with the payload — the extent is self-describing and contiguous), then
  // the single-width unpack: per value an 8-byte shared-memory window plus
  // the broadcast (reference, width) pair, extracted in ~5 ALU ops. A
  // width-0 extent decodes by broadcast alone.
  ctx.CoalescedRead(extent_bytes, /*aligned=*/false);
  ctx.Shared(extent_bytes);
  ctx.Barrier();
  if (h.width == 0) {
    ctx.Compute(h.count);
  } else {
    ctx.Shared(static_cast<uint64_t>(h.count) * (8 + 4));
    ctx.Compute(static_cast<uint64_t>(h.count) * 5);
  }

  const uint32_t n = format::UnpackPackTile(extent, extent_words, out_tile);
  TILECOMP_CHECK(n == h.count);
  return n;
}

}  // namespace tilecomp::kernels
