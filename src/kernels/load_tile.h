// Tile-based decompression device functions (Sections 4-7).
//
// Each function decodes one tile of encoded data inside a simulated kernel:
// it is called from a kernel body with the thread block's BlockContext, reads
// the tile's encoded blocks from "global memory" (accounting the traffic a
// real CUDA thread block would generate), decodes in "shared memory", and
// deposits the decoded values into `out_tile` — the stand-in for the
// per-thread registers of the Crystal execution model. Query kernels call
// these in place of a plain BlockLoad, which is exactly the paper's
// single-line-of-code integration story (Section 7).
#ifndef TILECOMP_KERNELS_LOAD_TILE_H_
#define TILECOMP_KERNELS_LOAD_TILE_H_

#include <cstdint>

#include "format/gpudfor.h"
#include "format/gpufor.h"
#include "format/gpurfor.h"
#include "kernels/tile_mask.h"
#include "sim/block_context.h"
#include "sim/stats.h"

namespace tilecomp::kernels {

// Implementation levels of the bit-unpacking kernel, matching the paper's
// Section 4.2 optimization ablation.
enum class UnpackOpt {
  kBase,                // Algorithm 1: per-thread global-memory accesses
  kSharedMemory,        // Optimization 1: stage the data block in smem (D=1)
  kMultiBlock,          // Optimization 2: D blocks per thread block
  kPrecomputeOffsets,   // Optimization 3: precomputed miniblock offsets
};

struct UnpackConfig {
  // Data blocks decoded per thread block (the paper's D; Section 4.2,
  // Optimization 2). Ignored (treated as 1) for kBase/kSharedMemory.
  int d = 4;
  UnpackOpt opt = UnpackOpt::kPrecomputeOffsets;

  int effective_d() const {
    return (opt == UnpackOpt::kBase || opt == UnpackOpt::kSharedMemory) ? 1
                                                                        : d;
  }
};

// --- Launch-resource estimators (drive the occupancy model) ---

// Estimated live registers per thread for a D-block unpack kernel: working
// set plus the D output values each thread keeps in registers. Past ~128
// the perf model converts the excess into local-memory spill traffic, which
// is what the paper observes at D=32 (Section 4.2) and for the vertical
// GPU-SIMDBP128 layout (Section 4.3).
int EstimateRegsPerThread(int d);

// Declared shared memory for a GPU-FOR unpack launch: D average-sized
// encoded blocks (+ the decode staging the scheme needs).
int GpuForSmemBytes(const format::GpuForEncoded& enc, const UnpackConfig& cfg);
int GpuDForSmemBytes(const format::GpuDForEncoded& enc);
int GpuRForSmemBytes(const format::GpuRForEncoded& enc);

sim::LaunchConfig GpuForLaunchConfig(const format::GpuForEncoded& enc,
                                     const UnpackConfig& cfg);
sim::LaunchConfig GpuDForLaunchConfig(const format::GpuDForEncoded& enc);
sim::LaunchConfig GpuRForLaunchConfig(const format::GpuRForEncoded& enc);

// --- Device functions ---

// Decode tile `tile_id` (cfg.effective_d() consecutive 128-value blocks) of
// a GPU-FOR stream into out_tile. Returns the number of valid (non-padding)
// values deposited.
uint32_t LoadBitPack(sim::BlockContext& ctx, const format::GpuForEncoded& enc,
                     int64_t tile_id, const UnpackConfig& cfg,
                     uint32_t* out_tile);

// Decode one GPU-DFOR tile (blocks_per_tile blocks + fused block-wide
// prefix sum; Section 5.2).
uint32_t LoadDBitPack(sim::BlockContext& ctx,
                      const format::GpuDForEncoded& enc, int64_t tile_id,
                      uint32_t* out_tile);

// Decode one GPU-RFOR block (512 logical values: unpack runs + in-smem
// scatter/prefix-sum expansion; Section 6).
uint32_t LoadRBitPack(sim::BlockContext& ctx,
                      const format::GpuRForEncoded& enc, int64_t block_id,
                      uint32_t* out_tile);

// Crystal-style BlockLoad of an uncompressed column tile.
uint32_t BlockLoadRaw(sim::BlockContext& ctx, const uint32_t* column,
                      uint32_t column_count, int64_t tile_id,
                      uint32_t tile_size, uint32_t* out_tile);

// Decode one self-describing variable-rate extent (format/packtile.h, the
// mutable column store's tile unit) into out_tile. Charges like the staged
// single-block FOR unpack: coalesced read of header + payload, smem
// staging, then a per-value shift/mask from shared memory. Returns the
// extent's value count, or 0 if the extent fails header validation.
uint32_t LoadPackedTile(sim::BlockContext& ctx, const uint32_t* extent,
                        uint32_t extent_words, uint32_t* out_tile);

// --- Compressed-domain predicate evaluation ---
//
// The Evaluate* functions are the decode-free counterparts of the Load*
// functions above: instead of depositing 512 values they AND a selection
// mask. They exploit the frame-of-reference structure of the encodings —
// a GPU-FOR miniblock of width w can only hold values in
// [reference, reference + 2^w - 1], so a miniblock whose bound interval is
// disjoint from (or contained in) the predicate range is classified from
// two header words; only genuinely mixed miniblocks are unpacked. Mask bits
// at positions >= the returned valid count are untouched; callers clear the
// padding range once.

// Evaluate `pred` over tile `tile_id` (cfg.effective_d() blocks) of a
// GPU-FOR / GPU-BP stream, clearing mask bits for rows that cannot match.
// `mask_offset` shifts the cleared bit positions (used when the caller
// assembles one 512-bit mask from several independent sub-tile calls, as
// GPU-BP does). Returns the number of valid (non-padding) values covered.
uint32_t EvaluateBitPack(sim::BlockContext& ctx,
                         const format::GpuForEncoded& enc, int64_t tile_id,
                         const UnpackConfig& cfg, const TilePredicate& pred,
                         TileMask* mask, uint32_t mask_offset = 0);

// Evaluate `pred` over one GPU-RFOR block: unpack the run headers and
// compare once per run instead of once per row — the expansion
// scan/scatter/gather of LoadRBitPack never happens. Returns the number of
// valid values (the sum of run lengths).
uint32_t EvaluateRBitPack(sim::BlockContext& ctx,
                          const format::GpuRForEncoded& enc, int64_t block_id,
                          const TilePredicate& pred, TileMask* mask);

}  // namespace tilecomp::kernels

#endif  // TILECOMP_KERNELS_LOAD_TILE_H_
