// TileMask / TilePredicate: the currency of compressed-domain predicate
// evaluation. An evaluator consumes one 512-value tile in its encoded form
// and a [lo, hi] range predicate, and produces (ANDs into) a 512-bit
// selection mask instead of 512 decoded values. Downstream kernel stages
// read the mask, and the loader materializes only tiles with surviving bits
// (late materialization).
#ifndef TILECOMP_KERNELS_TILE_MASK_H_
#define TILECOMP_KERNELS_TILE_MASK_H_

#include <array>
#include <bit>
#include <cstdint>

#include "common/macros.h"

namespace tilecomp::kernels {

// One bit per row of a 512-value tile, stored as 8 words of 64. The host
// structure stands in for the warp-ballot bitmap a real kernel would keep in
// registers/shared memory; traffic for reading or writing it is accounted by
// the call sites (it is 64 bytes, one or two sectors).
class TileMask {
 public:
  static constexpr uint32_t kBits = 512;
  static constexpr uint32_t kWords = kBits / 64;

  // Starts all-clear; use AllSet() to start from "every row survives".
  constexpr TileMask() : words_{} {}

  static TileMask AllSet(uint32_t n = kBits) {
    TileMask m;
    m.SetRange(0, n);
    return m;
  }

  bool Test(uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(uint32_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(uint32_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  // Set / clear bits in [begin, end).
  void SetRange(uint32_t begin, uint32_t end) { ApplyRange(begin, end, true); }
  void ClearRange(uint32_t begin, uint32_t end) {
    ApplyRange(begin, end, false);
  }
  void ClearAll() { words_ = {}; }

  void And(const TileMask& o) {
    for (uint32_t w = 0; w < kWords; ++w) words_[w] &= o.words_[w];
  }

  uint32_t Count() const {
    uint32_t n = 0;
    for (uint64_t w : words_) n += static_cast<uint32_t>(std::popcount(w));
    return n;
  }
  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  const uint64_t* words() const { return words_.data(); }

  friend bool operator==(const TileMask& a, const TileMask& b) {
    return a.words_ == b.words_;
  }

 private:
  void ApplyRange(uint32_t begin, uint32_t end, bool value) {
    TILECOMP_CHECK(begin <= end && end <= kBits);
    for (uint32_t w = begin >> 6; w < kWords && (w << 6) < end; ++w) {
      const uint32_t lo = w << 6;
      const uint32_t from = begin > lo ? begin - lo : 0;
      const uint32_t to = end - lo < 64 ? end - lo : 64;
      if (from >= to) continue;
      const uint64_t span =
          (to - from == 64 ? ~uint64_t{0}
                           : ((uint64_t{1} << (to - from)) - 1))
          << from;
      if (value) {
        words_[w] |= span;
      } else {
        words_[w] &= ~span;
      }
    }
  }

  std::array<uint64_t, kWords> words_;
};

// Closed range predicate [lo, hi] on unsigned column values. All 13 SSB
// fact-table predicates are conjunctions of these; a point predicate is
// lo == hi.
struct TilePredicate {
  uint32_t lo = 0;
  uint32_t hi = 0xFFFFFFFFu;

  static constexpr TilePredicate Point(uint32_t v) { return {v, v}; }
  static constexpr TilePredicate Range(uint32_t lo, uint32_t hi) {
    return {lo, hi};
  }

  bool Matches(uint32_t v) const { return v >= lo && v <= hi; }
  // Relation of a value interval [min, max] to the predicate range.
  bool DisjointFrom(uint64_t min, uint64_t max) const {
    return max < lo || min > hi;
  }
  bool Contains(uint64_t min, uint64_t max) const {
    return min >= lo && max <= hi;
  }
};

}  // namespace tilecomp::kernels

#endif  // TILECOMP_KERNELS_TILE_MASK_H_
