#include "load/load_gen.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "common/random.h"

namespace tilecomp::load {

namespace {

// Exponential draw with mean `mean` from a uniform double in [0, 1).
// Clamped away from 0 so log() stays finite.
double ExpDraw(Rng& rng, double mean) {
  double u = rng.NextDouble();
  if (u < 1e-12) u = 1e-12;
  return -mean * std::log(1.0 - u);
}

void AppendRequest(std::string* out, const Request& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%llu %s %s %d %.9f\n",
                static_cast<unsigned long long>(r.id),
                ssb::QueryName(r.query), QueryClassName(r.cls), r.user,
                r.arrival_ms);
  out->append(buf);
}

// The seeded Zipfian query mix shared by both generators: rank 0 (the
// hottest query) dominates at high alpha, exactly as in bench_serve.
std::vector<ssb::QueryId> QueryMix(size_t n, double alpha, uint64_t seed) {
  const std::vector<ssb::QueryId> all = ssb::AllQueries();
  const std::vector<uint32_t> ranks = GenZipf(n, all.size(), alpha, seed);
  std::vector<ssb::QueryId> mix(n);
  for (size_t i = 0; i < n; ++i) mix[i] = all[ranks[i]];
  return mix;
}

}  // namespace

const char* QueryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kInteractive:
      return "interactive";
    case QueryClass::kStandard:
      return "standard";
    case QueryClass::kBatch:
      return "batch";
  }
  return "?";
}

QueryClass ClassOf(ssb::QueryId query) {
  switch (query) {
    case ssb::QueryId::kQ11:
    case ssb::QueryId::kQ12:
    case ssb::QueryId::kQ13:
      return QueryClass::kInteractive;
    case ssb::QueryId::kQ21:
    case ssb::QueryId::kQ22:
    case ssb::QueryId::kQ23:
    case ssb::QueryId::kQ31:
    case ssb::QueryId::kQ32:
    case ssb::QueryId::kQ33:
    case ssb::QueryId::kQ34:
      return QueryClass::kStandard;
    case ssb::QueryId::kQ41:
    case ssb::QueryId::kQ42:
    case ssb::QueryId::kQ43:
      return QueryClass::kBatch;
  }
  return QueryClass::kStandard;
}

std::string Schedule::Serialize() const {
  std::string out;
  out.reserve(requests.size() * 40);
  for (const Request& r : requests) AppendRequest(&out, r);
  return out;
}

Schedule GenOpenLoop(const OpenLoopOptions& options) {
  TILECOMP_CHECK(options.rate_qps > 0.0);
  TILECOMP_CHECK(options.burst_factor >= 1.0);
  const std::vector<ssb::QueryId> mix =
      QueryMix(options.num_queries, options.zipf_alpha, options.seed);

  // Phase rates. The long-run fraction of time spent bursting is
  // f = mean_burst / (mean_calm + mean_burst); solving
  // calm*(1-f) + burst_factor*calm*f = rate keeps the overall mean at
  // rate_qps whatever the burst factor. burst_factor 1 collapses both
  // phases to the same rate — a plain Poisson process.
  const double f =
      options.mean_burst_ms / (options.mean_calm_ms + options.mean_burst_ms);
  const double calm_qps =
      options.rate_qps / (1.0 - f + options.burst_factor * f);
  const double burst_qps = options.burst_factor * calm_qps;

  // Interarrivals are exponential at the current phase's rate; phases are
  // exponentially long. Both draws are memoryless, so redrawing the gap at
  // a phase switch is exactly the MMPP, not an approximation.
  Rng arrivals(options.seed ^ 0xA11A1A11ull);
  Rng phases(options.seed ^ 0x9A5E50F4ull);
  Schedule schedule;
  schedule.requests.reserve(options.num_queries);
  double t = 0.0;
  bool bursting = false;
  double phase_end = ExpDraw(phases, options.mean_calm_ms);
  for (size_t i = 0; i < options.num_queries; ++i) {
    for (;;) {
      const double rate = bursting ? burst_qps : calm_qps;
      const double gap_ms = ExpDraw(arrivals, 1e3 / rate);
      if (options.burst_factor > 1.0 && t + gap_ms >= phase_end) {
        t = phase_end;
        bursting = !bursting;
        phase_end = t + ExpDraw(phases, bursting ? options.mean_burst_ms
                                                 : options.mean_calm_ms);
        continue;
      }
      t += gap_ms;
      break;
    }
    Request r;
    r.id = static_cast<uint64_t>(i);
    r.query = mix[i];
    r.cls = ClassOf(r.query);
    r.arrival_ms = t;
    schedule.requests.push_back(r);
  }
  return schedule;
}

ClosedLoopWorkload::ClosedLoopWorkload(const ClosedLoopOptions& options,
                                       const WorkloadSpec& spec)
    : spec_(spec) {
  TILECOMP_CHECK(options.num_users > 0);
  const std::vector<ssb::QueryId> mix =
      QueryMix(options.num_queries, options.zipf_alpha, options.seed);
  users_.resize(static_cast<size_t>(options.num_users));
  // Deal the mix round-robin so every user sees the same skew, and give
  // each request its global mix index as the id — stable across replays.
  Rng think(options.seed ^ 0x7D1Cull);
  for (size_t i = 0; i < mix.size(); ++i) {
    UserScript& u = users_[i % users_.size()];
    u.queries.push_back(mix[i]);
    u.think_ms.push_back(ExpDraw(think, options.think_ms));
    u.ids.push_back(static_cast<uint64_t>(i));
  }
}

Request ClosedLoopWorkload::MakeRequest(int user, double arrival_ms) {
  UserScript& u = users_[static_cast<size_t>(user)];
  Request r;
  r.id = u.ids[u.next];
  r.query = u.queries[u.next];
  r.cls = ClassOf(r.query);
  r.user = user;
  r.arrival_ms = arrival_ms;
  ++u.next;
  return r;
}

std::vector<Request> ClosedLoopWorkload::InitialRequests() {
  std::vector<Request> out;
  for (size_t user = 0; user < users_.size(); ++user) {
    UserScript& u = users_[user];
    if (u.next < u.queries.size()) {
      out.push_back(
          MakeRequest(static_cast<int>(user), u.think_ms[u.next]));
    }
  }
  return out;
}

std::vector<Request> ClosedLoopWorkload::OnComplete(const Request& request,
                                                    double finish_ms) {
  if (request.user < 0) return {};
  UserScript& u = users_[static_cast<size_t>(request.user)];
  if (u.next >= u.queries.size()) return {};
  return {MakeRequest(request.user, finish_ms + u.think_ms[u.next])};
}

void ClosedLoopWorkload::Reset() {
  for (UserScript& u : users_) u.next = 0;
}

std::string ClosedLoopWorkload::SerializeScript() const {
  std::string out;
  for (size_t user = 0; user < users_.size(); ++user) {
    const UserScript& u = users_[user];
    for (size_t k = 0; k < u.queries.size(); ++k) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%zu %llu %s %.9f\n", user,
                    static_cast<unsigned long long>(u.ids[k]),
                    ssb::QueryName(u.queries[k]), u.think_ms[k]);
      out.append(buf);
    }
  }
  return out;
}

IntervalStats InterarrivalStats(const Schedule& schedule) {
  IntervalStats stats;
  const std::vector<Request>& r = schedule.requests;
  if (r.size() < 2) return stats;
  stats.n = r.size() - 1;
  double sum = 0.0;
  for (size_t i = 1; i < r.size(); ++i) {
    sum += r[i].arrival_ms - r[i - 1].arrival_ms;
  }
  stats.mean_ms = sum / static_cast<double>(stats.n);
  double var = 0.0;
  for (size_t i = 1; i < r.size(); ++i) {
    const double d = r[i].arrival_ms - r[i - 1].arrival_ms - stats.mean_ms;
    var += d * d;
  }
  stats.variance = var / static_cast<double>(stats.n);
  return stats;
}

}  // namespace tilecomp::load
