// Seeded, deterministic load generation over the 13 SSB queries.
//
// Production traffic is an arrival process, not a fixed batch. This library
// turns the serving stack into a capacity harness by producing two kinds of
// workload on the simulated clock:
//
//   * open-loop: arrivals are independent of the system's responses. Plain
//     Poisson (exponential interarrivals at a fixed rate) or bursty MMPP-2
//     (a two-phase Markov-modulated Poisson process alternating calm and
//     burst phases, each phase exponentially long) — the classic model for
//     flash crowds. Open-loop load does not slow down when the server
//     saturates, which is exactly what exposes queueing collapse.
//
//   * closed-loop: N concurrent users, each issuing its next query only
//     after the previous one finishes plus an exponential think time. The
//     offered load self-limits at N in flight, which is what interactive
//     dashboards look like.
//
// Every request is tagged with a priority class (interactive / standard /
// batch, derived from the SSB flight) carrying a p99 latency SLO and an
// end-to-end deadline. The admission layer in serve::Server uses the class
// priority as its shed waterline; bench_slo sweeps offered load to find the
// maximum sustained throughput meeting every class's p99 SLO.
//
// Everything is a pure function of (options, seed): schedules regenerate
// byte-identically (Schedule::Serialize), and closed-loop scripts replay
// exactly (Reset), so loaded serving runs are replayable end to end.
#ifndef TILECOMP_LOAD_LOAD_GEN_H_
#define TILECOMP_LOAD_LOAD_GEN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ssb/queries.h"

namespace tilecomp::load {

// Priority class of a query. Lower enum value = more latency-sensitive =
// higher admission priority.
enum class QueryClass {
  kInteractive = 0,  // SSB flight 1: cheap scalar filters, tight SLO
  kStandard = 1,     // flights 2-3: grouped joins, medium SLO
  kBatch = 2,        // flight 4: widest joins, loose SLO, shed first
};
inline constexpr int kNumClasses = 3;

const char* QueryClassName(QueryClass cls);

// The default class of each SSB query, by flight.
QueryClass ClassOf(ssb::QueryId query);

// Per-class serving contract. `priority` is the admission waterline: when
// the bounded queue overflows, requests are shed strictly below the highest
// priority present. SLO/deadline are end-to-end (arrival -> finish), so they
// include admission-queue wait.
struct ClassSpec {
  int priority = 0;         // higher = admitted first, shed last
  double slo_p99_ms = 0.0;  // per-class p99 end-to-end target; 0 = none
  double deadline_ms = 0.0; // per-query end-to-end deadline; 0 = none
};

struct WorkloadSpec {
  // Indexed by QueryClass. Defaults: interactive > standard > batch
  // priority, no SLOs/deadlines (benches fill them in).
  std::array<ClassSpec, kNumClasses> classes;

  WorkloadSpec() {
    classes[0].priority = 2;
    classes[1].priority = 1;
    classes[2].priority = 0;
  }
  const ClassSpec& spec_of(QueryClass cls) const {
    return classes[static_cast<size_t>(cls)];
  }
  int priority_of(QueryClass cls) const { return spec_of(cls).priority; }
};

// One offered query. `id` is unique within a workload and stable across
// replays — the shed-invariance checks match runs by id.
struct Request {
  uint64_t id = 0;
  ssb::QueryId query = ssb::QueryId::kQ11;
  QueryClass cls = QueryClass::kStandard;
  int user = -1;            // issuing user (closed loop only)
  double arrival_ms = 0.0;  // offered time on the serving clock
};

// A fully materialized open-loop arrival schedule, sorted by arrival time.
struct Schedule {
  std::vector<Request> requests;

  // Canonical text form, byte-identical across regenerations at the same
  // options — the determinism tests compare these directly.
  std::string Serialize() const;
};

struct OpenLoopOptions {
  double rate_qps = 1000.0;  // mean offered rate over the whole process
  size_t num_queries = 64;
  double zipf_alpha = 1.2;   // query-mix skew over the 13 SSB queries
  uint64_t seed = 7;
  // MMPP-2 burstiness: 1.0 = plain Poisson. Above 1, the process alternates
  // exponentially-long calm and burst phases; the burst phase arrives at
  // burst_factor x the calm rate, with the calm rate scaled so the overall
  // mean rate stays rate_qps.
  double burst_factor = 1.0;
  double mean_calm_ms = 8.0;   // expected calm-phase length
  double mean_burst_ms = 2.0;  // expected burst-phase length
};

Schedule GenOpenLoop(const OpenLoopOptions& options);

struct ClosedLoopOptions {
  int num_users = 8;
  size_t num_queries = 64;  // total across all users
  double think_ms = 1.0;    // mean exponential think time
  double zipf_alpha = 1.2;
  uint64_t seed = 7;
};

// Interface the serving loop drives. Arrivals whose times are known up
// front come from InitialRequests(); arrivals released by a completion
// (closed loop: the user's next query after think time) come from
// OnComplete. A shed request also goes through OnComplete — the user saw an
// error and moves on — so the closed-loop population invariant holds under
// admission control.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual const WorkloadSpec& spec() const = 0;
  virtual std::vector<Request> InitialRequests() = 0;
  virtual std::vector<Request> OnComplete(const Request& request,
                                          double finish_ms) = 0;
  // Rewind to the pre-serving state so the workload replays identically.
  virtual void Reset() = 0;
};

class OpenLoopWorkload : public Workload {
 public:
  OpenLoopWorkload(Schedule schedule, WorkloadSpec spec)
      : schedule_(std::move(schedule)), spec_(spec) {}

  const WorkloadSpec& spec() const override { return spec_; }
  std::vector<Request> InitialRequests() override {
    return schedule_.requests;
  }
  std::vector<Request> OnComplete(const Request&, double) override {
    return {};
  }
  void Reset() override {}

  const Schedule& schedule() const { return schedule_; }

 private:
  Schedule schedule_;
  WorkloadSpec spec_;
};

// N users, each scripted with a deterministic (query, think-time) sequence
// drawn from the seed. User u's k-th request arrives think after its
// (k-1)-th finishes (or is shed); the first request arrives after an
// initial think draw, staggering the users.
class ClosedLoopWorkload : public Workload {
 public:
  ClosedLoopWorkload(const ClosedLoopOptions& options,
                     const WorkloadSpec& spec);

  const WorkloadSpec& spec() const override { return spec_; }
  std::vector<Request> InitialRequests() override;
  std::vector<Request> OnComplete(const Request& request,
                                  double finish_ms) override;
  void Reset() override;

  int num_users() const { return static_cast<int>(users_.size()); }
  // Canonical text form of the per-user scripts (queries + think times);
  // byte-identical across constructions at the same options.
  std::string SerializeScript() const;

 private:
  struct UserScript {
    std::vector<ssb::QueryId> queries;
    std::vector<double> think_ms;  // think before request k, parallel
    std::vector<uint64_t> ids;     // global ids, parallel
    size_t next = 0;
  };
  Request MakeRequest(int user, double arrival_ms);

  WorkloadSpec spec_;
  std::vector<UserScript> users_;
};

// Mean and (population) variance of a schedule's interarrival gaps, for the
// arrival-process statistics tests.
struct IntervalStats {
  double mean_ms = 0.0;
  double variance = 0.0;
  size_t n = 0;
};
IntervalStats InterarrivalStats(const Schedule& schedule);

}  // namespace tilecomp::load

#endif  // TILECOMP_LOAD_LOAD_GEN_H_
