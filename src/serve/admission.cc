#include "serve/admission.h"

#include "common/macros.h"

namespace tilecomp::serve {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kShedLowPriority:
      return "shed_low_priority";
    case AdmissionPolicy::kQueueAll:
      return "queue_all";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(const AdmissionOptions& options,
                               const load::WorkloadSpec& spec,
                               int max_in_flight)
    : options_(options), spec_(spec), max_in_flight_(max_in_flight) {
  TILECOMP_CHECK(max_in_flight_ > 0);
}

size_t AdmissionQueue::BestWaiter() const {
  size_t best = 0;
  for (size_t i = 1; i < queue_.size(); ++i) {
    const load::Request& a = queue_[i].request;
    const load::Request& b = queue_[best].request;
    const int pa = PriorityOf(a);
    const int pb = PriorityOf(b);
    if (pa != pb) {
      if (pa > pb) best = i;
    } else if (a.arrival_ms != b.arrival_ms) {
      if (a.arrival_ms < b.arrival_ms) best = i;
    } else if (a.id < b.id) {
      best = i;
    }
  }
  return best;
}

size_t AdmissionQueue::WorstWaiter() const {
  size_t worst = 0;
  for (size_t i = 1; i < queue_.size(); ++i) {
    const load::Request& a = queue_[i].request;
    const load::Request& b = queue_[worst].request;
    const int pa = PriorityOf(a);
    const int pb = PriorityOf(b);
    if (pa != pb) {
      if (pa < pb) worst = i;
    } else if (a.arrival_ms != b.arrival_ms) {
      if (a.arrival_ms > b.arrival_ms) worst = i;
    } else if (a.id > b.id) {
      worst = i;
    }
  }
  return worst;
}

void AdmissionQueue::CountShed(const load::Request& request) {
  ++stats_.shed;
  ++stats_.shed_by_class[static_cast<size_t>(request.cls)];
}

AdmissionQueue::Decision AdmissionQueue::Offer(const load::Request& request,
                                               double now_ms) {
  ++stats_.offered;
  ++stats_.offered_by_class[static_cast<size_t>(request.cls)];

  Decision decision;
  if (in_flight_ < max_in_flight_) {
    // A free slot: start immediately. The queue must be empty — waiters are
    // drained into slots the moment a completion frees one.
    TILECOMP_CHECK(queue_.empty());
    ++in_flight_;
    ++stats_.admitted_immediately;
    decision.outcome = Outcome::kStart;
    return decision;
  }

  if (options_.policy == AdmissionPolicy::kShedLowPriority &&
      queue_.size() >= options_.queue_capacity) {
    if (queue_.empty()) {
      // capacity 0: nothing can wait.
      CountShed(request);
      decision.outcome = Outcome::kShed;
      return decision;
    }
    const size_t victim_idx = WorstWaiter();
    const Waiting victim = queue_[victim_idx];
    // Strict waterline: the incoming request displaces a waiter only when
    // that waiter's priority is strictly lower. Ties shed the newcomer, so
    // a full queue of equals is never churned.
    if (PriorityOf(victim.request) < PriorityOf(request)) {
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(victim_idx));
      CountShed(victim.request);
      ++stats_.shed_from_queue;
      queue_.push_back({request, now_ms});
      ++stats_.queued;
      decision.outcome = Outcome::kQueued;
      decision.shed_victim = true;
      decision.victim = victim.request;
      decision.victim_queue_ms = now_ms - victim.enqueue_ms;
      return decision;
    }
    CountShed(request);
    decision.outcome = Outcome::kShed;
    return decision;
  }

  queue_.push_back({request, now_ms});
  ++stats_.queued;
  if (queue_.size() > stats_.max_queue_depth) {
    stats_.max_queue_depth = queue_.size();
  }
  decision.outcome = Outcome::kQueued;
  return decision;
}

bool AdmissionQueue::OnComplete(double now_ms, load::Request* next,
                                double* queue_wait_ms) {
  TILECOMP_CHECK(in_flight_ > 0);
  --in_flight_;
  if (queue_.empty()) return false;
  const size_t best = BestWaiter();
  const Waiting w = queue_[best];
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(best));
  ++in_flight_;
  const double wait = now_ms - w.enqueue_ms;
  stats_.queue_wait_ms_total += wait;
  if (next != nullptr) *next = w.request;
  if (queue_wait_ms != nullptr) *queue_wait_ms = wait;
  return true;
}

}  // namespace tilecomp::serve
