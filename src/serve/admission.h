// Admission control in front of the serving streams: a bounded priority
// queue on the simulated clock.
//
// The server owns `max_in_flight` service slots (its stream pool). An
// offered request either starts immediately (free slot), waits in the
// queue, or is shed. Under kShedLowPriority the queue is bounded: when it
// overflows, the lowest-priority request — incoming or already queued —
// goes, so the queue fills strictly in priority order and nothing above the
// priority waterline is ever dropped for something below it. Under
// kQueueAll the queue is unbounded and nothing is shed; offered overload
// turns into queueing delay (pure backpressure), which is what the SLO
// sweep uses to show why shedding exists.
//
// AdmissionQueue is a pure discrete-event component: it never touches the
// device, the cache or the fault plan, so a shed decision provably has no
// side effects on replay state, and scripted saturation tests can assert
// its counters against hand-computed timelines.
#ifndef TILECOMP_SERVE_ADMISSION_H_
#define TILECOMP_SERVE_ADMISSION_H_

#include <array>
#include <cstdint>
#include <vector>

#include "load/load_gen.h"

namespace tilecomp::serve {

enum class AdmissionPolicy {
  kShedLowPriority = 0,  // bounded queue; overflow sheds below the waterline
  kQueueAll,             // unbounded queue; never sheds (pure backpressure)
};

const char* AdmissionPolicyName(AdmissionPolicy policy);

struct AdmissionOptions {
  AdmissionPolicy policy = AdmissionPolicy::kShedLowPriority;
  // Waiting requests (in-service queries not counted). Ignored by
  // kQueueAll. 0 = shed everything that cannot start immediately.
  size_t queue_capacity = 16;
};

// Exact counters of every admission decision. deadline_missed is filled by
// the latency aggregation (it needs end-to-end times), not by the queue.
struct AdmissionStats {
  uint64_t offered = 0;
  uint64_t admitted_immediately = 0;  // started on arrival, no wait
  uint64_t queued = 0;                // waited in the queue before starting
  uint64_t shed = 0;
  uint64_t deadline_missed = 0;
  std::array<uint64_t, load::kNumClasses> offered_by_class = {};
  std::array<uint64_t, load::kNumClasses> shed_by_class = {};
  std::array<uint64_t, load::kNumClasses> deadline_missed_by_class = {};
  uint64_t max_queue_depth = 0;
  // Total wait of requests that left the queue into service, ms.
  double queue_wait_ms_total = 0.0;

  uint64_t started() const { return admitted_immediately + queued - shed_from_queue; }
  // Queued requests later shed as overflow victims (subset of `shed`).
  uint64_t shed_from_queue = 0;
};

class AdmissionQueue {
 public:
  AdmissionQueue(const AdmissionOptions& options,
                 const load::WorkloadSpec& spec, int max_in_flight);

  enum class Outcome { kStart, kQueued, kShed };
  struct Decision {
    Outcome outcome = Outcome::kStart;
    // kQueued only: a lower-priority waiter was evicted to make room.
    bool shed_victim = false;
    load::Request victim;
    double victim_queue_ms = 0.0;  // how long the victim had waited
  };

  // Offer `request` at time `now_ms`. kStart means the caller must begin
  // service now (the slot is taken); kShed means the request never touches
  // the system.
  Decision Offer(const load::Request& request, double now_ms);

  // A started request finished at `now_ms`, freeing its slot. Pops the
  // highest-priority waiter (FIFO within a priority) into the slot;
  // returns false when the queue is empty and the slot stays free.
  bool OnComplete(double now_ms, load::Request* next, double* queue_wait_ms);

  size_t queue_depth() const { return queue_.size(); }
  int in_flight() const { return in_flight_; }
  const AdmissionStats& stats() const { return stats_; }

 private:
  struct Waiting {
    load::Request request;
    double enqueue_ms = 0.0;
  };
  int PriorityOf(const load::Request& request) const {
    return spec_.priority_of(request.cls);
  }
  // Index of the best waiter to serve next: highest priority, then
  // earliest arrival, then smallest id.
  size_t BestWaiter() const;
  // Index of the overflow victim: lowest priority, then latest arrival,
  // then largest id (the youngest of the least important).
  size_t WorstWaiter() const;
  void CountShed(const load::Request& request);

  AdmissionOptions options_;
  load::WorkloadSpec spec_;
  int max_in_flight_ = 1;
  int in_flight_ = 0;
  std::vector<Waiting> queue_;
  AdmissionStats stats_;
};

}  // namespace tilecomp::serve

#endif  // TILECOMP_SERVE_ADMISSION_H_
