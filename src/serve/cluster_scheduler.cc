#include "serve/cluster_scheduler.h"

#include <algorithm>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/macros.h"
#include "ssb/layout.h"

namespace tilecomp::serve {

namespace {

void AccumulateAdmission(const AdmissionStats& in, AdmissionStats* out) {
  out->offered += in.offered;
  out->admitted_immediately += in.admitted_immediately;
  out->queued += in.queued;
  out->shed += in.shed;
  out->shed_from_queue += in.shed_from_queue;
  out->deadline_missed += in.deadline_missed;
  for (size_t c = 0; c < load::kNumClasses; ++c) {
    out->offered_by_class[c] += in.offered_by_class[c];
    out->shed_by_class[c] += in.shed_by_class[c];
    out->deadline_missed_by_class[c] += in.deadline_missed_by_class[c];
  }
  out->max_queue_depth = std::max(out->max_queue_depth, in.max_queue_depth);
  out->queue_wait_ms_total += in.queue_wait_ms_total;
}

// Merge-reduction time on the root's merge engine: one kernel that streams
// the shipped accumulators once and read-modify-writes the root's own —
// launch overhead plus an HBM pass over 2x the shipped bytes.
double MergeMs(const sim::DeviceSpec& spec, uint64_t shipped_bytes) {
  return spec.kernel_launch_us * 1e-3 +
         2.0 * static_cast<double>(shipped_bytes) /
             (spec.global_bw_gbps * 1e9) * 1e3;
}

}  // namespace

ClusterScheduler::ClusterScheduler(sim::Cluster& cluster,
                                   const ssb::SsbData& data,
                                   codec::System system,
                                   ClusterOptions options)
    : cluster_(cluster),
      data_(data),
      options_(options),
      placement_(placement::Plan(options.policy, data.lineorder.size(),
                                 cluster.num_devices(),
                                 options.placement_seed)) {
  devices_.resize(static_cast<size_t>(cluster.num_devices()));
  for (int d = 0; d < cluster.num_devices(); ++d) {
    DeviceState& state = devices_[static_cast<size_t>(d)];
    const std::vector<int> shards = placement_.ShardsOnDevice(d);
    if (shards.empty()) continue;
    // Every policy assigns each device at most one shard.
    TILECOMP_CHECK(shards.size() == 1);
    const placement::Shard& shard =
        placement_.shards[static_cast<size_t>(shards[0])];
    if (shard.rows() == 0) continue;  // empty shard: the device serves no-ops
    state.shard = shards[0];
    std::vector<std::pair<size_t, size_t>> ranges;
    for (const placement::RowRange& r : shard.ranges) {
      if (r.rows() > 0) ranges.emplace_back(r.begin, r.end);
    }
    state.data = ssb::ShardData(data, ranges);
    state.lineorder = ssb::EncodeLineorder(state.data, system);
    state.server = std::make_unique<Server>(cluster.device(d), state.data,
                                            state.lineorder, options.serve);
    // Placement-time prewarm: replicating the dimension tables to a device
    // includes building their query-side hash tables once, so serving never
    // pays the (unshardable, per-device) builds. A no-op unless the serve
    // options opt into hash-table reuse.
    state.server->Prewarm(ssb::AllQueries());
  }
}

int ClusterScheduler::shard_of_device(int d) const {
  return devices_[static_cast<size_t>(d)].shard;
}

ClusterServeReport ClusterScheduler::Serve(
    const std::vector<ssb::QueryId>& batch) {
  const int n = cluster_.num_devices();
  ClusterServeReport out;
  out.device_reports.resize(static_cast<size_t>(n));

  // --- Route: which devices produce a partial for each query. One device
  // per shard; replicated shards rotate their replicas by query index so
  // every device shares the load across a batch.
  std::vector<std::vector<int>> participants(batch.size());
  std::vector<std::vector<ssb::QueryId>> sub_batch(static_cast<size_t>(n));
  std::vector<std::vector<size_t>> sub_index(static_cast<size_t>(n));
  for (size_t i = 0; i < batch.size(); ++i) {
    for (const placement::Shard& shard : placement_.shards) {
      const int d = shard.devices[i % shard.devices.size()];
      participants[i].push_back(d);
      if (devices_[static_cast<size_t>(d)].server != nullptr) {
        sub_batch[static_cast<size_t>(d)].push_back(batch[i]);
        sub_index[static_cast<size_t>(d)].push_back(i);
      }
    }
  }

  // --- Serve epoch. Placement-time work (hash-table prewarm in the
  // constructor, plus any previous batch) already advanced each device's
  // timeline; this batch's clock starts at each device's current position.
  // All reported times — latencies, transfer ready times, the makespan —
  // are relative to the epoch, so placement cost never pollutes the
  // steady-state serving numbers.
  const size_t num_devices = static_cast<size_t>(n);
  std::vector<double> epoch(num_devices, 0.0);
  std::vector<size_t> skip_launches(num_devices, 0);
  for (int d = 0; d < n; ++d) {
    epoch[static_cast<size_t>(d)] = cluster_.device(d).elapsed_ms();
    skip_launches[static_cast<size_t>(d)] =
        cluster_.device(d).launch_log().size();
  }

  // --- Per-shard partial aggregation, one host thread per device. Each
  // thread touches only its own device (timeline, cache, shard data), so
  // the modeled times are deterministic regardless of host scheduling.
  {
    std::vector<std::thread> threads;
    for (int d = 0; d < n; ++d) {
      if (sub_batch[static_cast<size_t>(d)].empty()) continue;
      threads.emplace_back([this, d, &sub_batch, &out]() {
        out.device_reports[static_cast<size_t>(d)] =
            devices_[static_cast<size_t>(d)].server->Serve(
                sub_batch[static_cast<size_t>(d)]);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Map query index -> the device's ServedQuery (nullptr for devices whose
  // shard is empty: they contribute an empty partial, ready at t = 0).
  std::vector<std::vector<const ServedQuery*>> partial_of(
      static_cast<size_t>(n), std::vector<const ServedQuery*>(batch.size()));
  for (int d = 0; d < n; ++d) {
    const auto& report = out.device_reports[static_cast<size_t>(d)];
    for (size_t k = 0; k < report.queries.size(); ++k) {
      partial_of[static_cast<size_t>(d)]
                [sub_index[static_cast<size_t>(d)][k]] = &report.queries[k];
    }
  }

  // --- Merge the partials over the interconnect, in batch order. The root
  // rotates deterministically among the participants; each non-root ships
  // its dense accumulator as soon as its partial finishes.
  std::vector<double> latencies;
  latencies.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const std::vector<int>& parts = participants[i];
    ClusterServedQuery cq;
    cq.query = batch[i];
    cq.num_partials = static_cast<int>(parts.size());
    cq.root_device = parts[(options_.placement_seed + i) % parts.size()];
    DeviceState& root = devices_[static_cast<size_t>(cq.root_device)];

    const uint64_t accumulator_bytes =
        ssb::QueryGroupSlots(batch[i], data_) * sizeof(int64_t);
    double inputs_ready = 0.0;
    double admit = -1.0;
    for (int d : parts) {
      const ServedQuery* partial = partial_of[static_cast<size_t>(d)][i];
      const double ready =
          partial != nullptr
              ? partial->finish_ms - epoch[static_cast<size_t>(d)]
              : 0.0;
      if (partial != nullptr) {
        const double partial_admit =
            partial->admit_ms - epoch[static_cast<size_t>(d)];
        if (admit < 0.0 || partial_admit < admit) {
          admit = partial_admit;
        }
        if (partial->status != QueryStatus::kOk &&
            cq.status == QueryStatus::kOk) {
          cq.status = partial->status;
        }
        for (const auto& [key, value] : partial->result.groups) {
          cq.result.groups[key] += value;
        }
      }
      if (d == cq.root_device) {
        inputs_ready = std::max(inputs_ready, ready);
        continue;
      }
      const double arrival = cluster_.TransferBetween(
          d, cq.root_device, accumulator_bytes, ready,
          std::string("merge/") + ssb::QueryName(batch[i]));
      inputs_ready = std::max(inputs_ready, arrival);
      cq.link_bytes += accumulator_bytes;
    }
    if (admit < 0.0) admit = 0.0;
    cq.admit_ms = admit;
    if (parts.size() > 1) {
      cq.merge_ms = MergeMs(cluster_.device(cq.root_device).spec(),
                            cq.link_bytes);
      const double start = std::max(inputs_ready, root.merge_free_ms);
      cq.finish_ms = start + cq.merge_ms;
      root.merge_free_ms = cq.finish_ms;
    } else {
      cq.finish_ms = inputs_ready;
    }
    cq.latency_ms = cq.finish_ms - cq.admit_ms;
    // Dense accumulators extract only non-zero groups; partials that cancel
    // to zero are dropped the same way, keeping the merged map bit-exact
    // against the host reference.
    for (auto it = cq.result.groups.begin(); it != cq.result.groups.end();) {
      it = it->second == 0 ? cq.result.groups.erase(it) : std::next(it);
    }
    cq.result.time_ms = cq.latency_ms;
    if (cq.status != QueryStatus::kOk) ++out.failed_queries;
    out.link_bytes_total += cq.link_bytes;
    out.merge_ms_total += cq.merge_ms;
    latencies.push_back(cq.latency_ms);
    out.queries.push_back(std::move(cq));
  }

  // Makespan: the last device to drain its kernels (epoch-relative) or the
  // last merge/transfer to finish — transfer arrivals are covered because
  // every arrival feeds some query's finish time.
  out.makespan_ms = 0.0;
  for (int d = 0; d < n; ++d) {
    cluster_.device(d).DeviceSynchronize();
    out.makespan_ms =
        std::max(out.makespan_ms, cluster_.device(d).elapsed_ms() -
                                      epoch[static_cast<size_t>(d)]);
  }
  for (const ClusterServedQuery& cq : out.queries) {
    out.makespan_ms = std::max(out.makespan_ms, cq.finish_ms);
  }
  for (const DeviceState& state : devices_) {
    out.makespan_ms = std::max(out.makespan_ms, state.merge_free_ms);
  }
  out.link_transfers = cluster_.link_log().size();
  out.p50_latency_ms = NearestRankPercentile(latencies, 50);
  out.p95_latency_ms = NearestRankPercentile(latencies, 95);
  out.p99_latency_ms = NearestRankPercentile(latencies, 99);
  out.p50_e2e_ms = out.p50_latency_ms;
  out.p99_e2e_ms = out.p99_latency_ms;
  out.breakdown = cluster_.Breakdown(out.merge_ms_total, skip_launches);
  return out;
}

ClusterServeReport ClusterScheduler::ServeLoad(const load::Schedule& schedule,
                                               const load::WorkloadSpec& spec) {
  const int n = cluster_.num_devices();
  ClusterServeReport out;
  out.device_reports.resize(static_cast<size_t>(n));

  // --- Route: same shard fan-out as Serve, keyed by schedule position so
  // replicated shards rotate their replicas across the arrival stream. The
  // sub-schedules keep the global request ids and arrival times, so every
  // device's admission queue sees the true offered process for its slice.
  std::vector<std::vector<int>> participants(schedule.requests.size());
  std::vector<load::Schedule> sub(static_cast<size_t>(n));
  for (size_t i = 0; i < schedule.requests.size(); ++i) {
    for (const placement::Shard& shard : placement_.shards) {
      const int d = shard.devices[i % shard.devices.size()];
      participants[i].push_back(d);
      if (devices_[static_cast<size_t>(d)].server != nullptr) {
        sub[static_cast<size_t>(d)].requests.push_back(schedule.requests[i]);
      }
    }
  }

  const size_t num_devices = static_cast<size_t>(n);
  std::vector<double> epoch(num_devices, 0.0);
  std::vector<size_t> skip_launches(num_devices, 0);
  for (int d = 0; d < n; ++d) {
    epoch[static_cast<size_t>(d)] = cluster_.device(d).elapsed_ms();
    skip_launches[static_cast<size_t>(d)] =
        cluster_.device(d).launch_log().size();
  }

  // --- Per-device loaded serving, one host thread per device (each thread
  // owns its device's timeline, cache and admission queue). Server::
  // ServeLoad reports epoch-relative times already, and its epoch equals
  // the one captured above (nothing ran in between).
  {
    std::vector<std::thread> threads;
    for (int d = 0; d < n; ++d) {
      if (sub[static_cast<size_t>(d)].requests.empty()) continue;
      threads.emplace_back([this, d, &sub, &out, &spec]() {
        load::OpenLoopWorkload workload(sub[static_cast<size_t>(d)], spec);
        out.device_reports[static_cast<size_t>(d)] =
            devices_[static_cast<size_t>(d)].server->ServeLoad(workload);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Request id -> the device's ServedQuery (nullptr for devices whose shard
  // is empty: they contribute an empty partial, ready at t = 0).
  std::vector<std::unordered_map<uint64_t, const ServedQuery*>> partial_of(
      num_devices);
  for (int d = 0; d < n; ++d) {
    const ServeReport& report = out.device_reports[static_cast<size_t>(d)];
    AccumulateAdmission(report.admission, &out.admission);
    for (const ServedQuery& sq : report.queries) {
      partial_of[static_cast<size_t>(d)][sq.request_id] = &sq;
    }
  }

  // --- Merge by request id, in schedule order. Identical timing model to
  // Serve; shed requests ship nothing (their merged aggregate would be
  // incomplete, so the result is discarded anyway).
  std::vector<double> latencies;
  std::vector<double> e2es;
  latencies.reserve(schedule.requests.size());
  for (size_t i = 0; i < schedule.requests.size(); ++i) {
    const load::Request& req = schedule.requests[i];
    const std::vector<int>& parts = participants[i];
    ClusterServedQuery cq;
    cq.query = req.query;
    cq.request_id = req.id;
    cq.cls = req.cls;
    cq.arrival_ms = req.arrival_ms;
    cq.num_partials = static_cast<int>(parts.size());
    cq.root_device = parts[(options_.placement_seed + i) % parts.size()];
    DeviceState& root = devices_[static_cast<size_t>(cq.root_device)];

    const uint64_t accumulator_bytes =
        ssb::QueryGroupSlots(req.query, data_) * sizeof(int64_t);
    double inputs_ready = 0.0;
    double admit = -1.0;
    bool any_shed = false;
    for (int d : parts) {
      const auto& dev_partials = partial_of[static_cast<size_t>(d)];
      const auto it = dev_partials.find(req.id);
      const ServedQuery* partial =
          it != dev_partials.end() ? it->second : nullptr;
      if (partial == nullptr) continue;
      if (partial->status == QueryStatus::kShed) {
        any_shed = true;
        inputs_ready = std::max(inputs_ready, partial->finish_ms);
        continue;
      }
      if (admit < 0.0 || partial->admit_ms < admit) admit = partial->admit_ms;
      cq.queue_ms = std::max(cq.queue_ms, partial->queue_ms);
      if (partial->status != QueryStatus::kOk &&
          cq.status == QueryStatus::kOk) {
        cq.status = partial->status;
      }
      for (const auto& [key, value] : partial->result.groups) {
        cq.result.groups[key] += value;
      }
      if (d == cq.root_device) {
        inputs_ready = std::max(inputs_ready, partial->finish_ms);
        continue;
      }
      const double arrival = cluster_.TransferBetween(
          d, cq.root_device, accumulator_bytes, partial->finish_ms,
          std::string("merge/") + ssb::QueryName(req.query));
      inputs_ready = std::max(inputs_ready, arrival);
      cq.link_bytes += accumulator_bytes;
    }
    if (any_shed) {
      cq.status = QueryStatus::kShed;
      cq.result.groups.clear();
    }
    if (admit < 0.0) admit = req.arrival_ms;
    cq.admit_ms = admit;
    if (cq.status != QueryStatus::kShed && parts.size() > 1) {
      cq.merge_ms = MergeMs(cluster_.device(cq.root_device).spec(),
                            cq.link_bytes);
      const double start = std::max(inputs_ready, root.merge_free_ms);
      cq.finish_ms = start + cq.merge_ms;
      root.merge_free_ms = cq.finish_ms;
    } else {
      cq.finish_ms = inputs_ready;
    }
    cq.latency_ms = cq.finish_ms - cq.admit_ms;
    cq.e2e_ms = cq.finish_ms - cq.arrival_ms;
    for (auto it = cq.result.groups.begin(); it != cq.result.groups.end();) {
      it = it->second == 0 ? cq.result.groups.erase(it) : std::next(it);
    }
    cq.result.time_ms = cq.latency_ms;
    if (cq.status == QueryStatus::kShed) {
      ++out.shed_queries;
    } else {
      if (cq.status != QueryStatus::kOk) ++out.failed_queries;
      latencies.push_back(cq.latency_ms);
      e2es.push_back(cq.e2e_ms);
    }
    out.link_bytes_total += cq.link_bytes;
    out.merge_ms_total += cq.merge_ms;
    out.queries.push_back(std::move(cq));
  }

  out.makespan_ms = 0.0;
  for (int d = 0; d < n; ++d) {
    cluster_.device(d).DeviceSynchronize();
    out.makespan_ms =
        std::max(out.makespan_ms, cluster_.device(d).elapsed_ms() -
                                      epoch[static_cast<size_t>(d)]);
  }
  for (const ClusterServedQuery& cq : out.queries) {
    out.makespan_ms = std::max(out.makespan_ms, cq.finish_ms);
  }
  for (const DeviceState& state : devices_) {
    out.makespan_ms = std::max(out.makespan_ms, state.merge_free_ms);
  }
  out.link_transfers = cluster_.link_log().size();
  out.p50_latency_ms = NearestRankPercentile(latencies, 50);
  out.p95_latency_ms = NearestRankPercentile(latencies, 95);
  out.p99_latency_ms = NearestRankPercentile(latencies, 99);
  out.p50_e2e_ms = NearestRankPercentile(e2es, 50);
  out.p99_e2e_ms = NearestRankPercentile(e2es, 99);
  out.breakdown = cluster_.Breakdown(out.merge_ms_total, skip_launches);
  return out;
}

}  // namespace tilecomp::serve
