// Scale-out serving: route a batch of SSB queries across the devices of a
// sim::Cluster, run per-shard partial aggregation with the existing
// per-device Server (cache, prefetcher, pushdown and fault injection all
// intact per device), and merge the partial aggregates over the modeled
// interconnect.
//
// Routing follows the placement policy (placement.h): under kReplicate each
// query runs whole on one device (rotating round-robin); under kRangeShard
// every device scans its shard for every query; under kHybrid each range's
// two replicas alternate. Per-device sub-batches run concurrently on host
// threads — every device owns its shard data, cache and timeline, and all
// timelines share one clock, so the modeled times are deterministic
// regardless of host scheduling.
//
// The merge ships each non-root participant's *dense* group-by accumulator
// (QueryGroupSlots x 8 bytes — Crystal keeps group-by results in dense
// arrays, so that is what a device memcpys out) to a per-query root device
// chosen by seeded rotation, through Cluster::TransferBetween, then models
// the merge reduction on the root's merge engine (launch overhead plus an
// HBM-bandwidth pass over the shipped accumulators; a lightweight engine
// separate from the root's compute timeline, which Server::Serve has
// already synchronized). The merged values are integer sums of the partial
// group maps, so they stay bit-exact against the host reference executor.
//
// Construction is placement time: each device gets a dimension replica and
// its (possibly striped) shard, sliced and encoded, and — when the serve
// options enable reuse_hash_tables — a prewarm pass building every query's
// dimension hash tables once. Serve() measures from a per-device epoch
// taken at entry, so placement-time kernels never count toward latencies,
// the makespan or the breakdown; only steady-state serving does.
#ifndef TILECOMP_SERVE_CLUSTER_SCHEDULER_H_
#define TILECOMP_SERVE_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/placement.h"
#include "serve/server.h"
#include "sim/cluster.h"
#include "ssb/queries.h"

namespace tilecomp::serve {

struct ClusterOptions {
  placement::PolicyKind policy = placement::PolicyKind::kRangeShard;
  // Seeds the placement's device permutation and the merge-root rotation.
  uint64_t placement_seed = 1;
  // Per-device server configuration (cache budget, streams, pushdown,
  // fault plan, ... applied identically on every device).
  ServeOptions serve;
};

struct ClusterServedQuery {
  ssb::QueryId query = ssb::QueryId::kQ11;
  // Worst status over the shard partials: a single failed shard fails the
  // whole query cleanly (its merged result must be ignored). Under loaded
  // serving a shard that shed the request makes the whole query kShed —
  // the merged aggregate would be missing that shard's rows.
  QueryStatus status = QueryStatus::kOk;
  // Merged result (integer sums of the partial group maps; zero-total
  // groups dropped, matching the dense accumulators' extraction).
  ssb::QueryResult result;
  double admit_ms = 0.0;   // earliest shard admission
  double finish_ms = 0.0;  // merge completion on the root
  double latency_ms = 0.0;
  int root_device = 0;
  int num_partials = 1;       // devices that produced a partial
  uint64_t link_bytes = 0;    // accumulator bytes shipped to the root
  double merge_ms = 0.0;      // merge-reduction time on the root

  // --- Loaded serving (ServeLoad) only; zero/default under fixed batches.
  uint64_t request_id = 0;
  load::QueryClass cls = load::QueryClass::kStandard;
  double arrival_ms = 0.0;  // offered time (cluster serving clock)
  double queue_ms = 0.0;    // worst admission-queue wait over the shards
  double e2e_ms = 0.0;      // arrival -> merged finish
};

struct ClusterServeReport {
  std::vector<ClusterServedQuery> queries;
  // Latest completion over device timelines, link engines and merges, ms.
  double makespan_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  // End-to-end (arrival -> merged finish) percentiles for loaded serving;
  // equal to the service percentiles under fixed batches (nothing queues).
  double p50_e2e_ms = 0.0;
  double p99_e2e_ms = 0.0;
  uint64_t failed_queries = 0;
  // Requests shed by any shard's admission queue (ServeLoad only).
  uint64_t shed_queries = 0;
  // Admission counters summed over every device's server (ServeLoad only).
  AdmissionStats admission;
  uint64_t link_bytes_total = 0;
  uint64_t link_transfers = 0;
  double merge_ms_total = 0.0;
  // What bounds the batch: compute vs HBM (busiest device, per the
  // perf-model limiter of each launch) vs interconnect (busiest link
  // engine), with the merge reductions counted as compute.
  sim::ClusterBreakdown breakdown;
  // The per-device Server reports (sub-batch order), for cache/pushdown/
  // prefetch/fault counter drill-down. Devices holding an empty shard (or
  // routed no queries) report empty.
  std::vector<ServeReport> device_reports;
};

class ClusterScheduler {
 public:
  // `cluster` and `data` must outlive the scheduler. Each device gets a
  // replica of the dimension tables plus its shard of the fact table,
  // encoded with `system`.
  ClusterScheduler(sim::Cluster& cluster, const ssb::SsbData& data,
                   codec::System system, ClusterOptions options);

  // Serve `batch` in order across the cluster.
  ClusterServeReport Serve(const std::vector<ssb::QueryId>& batch);

  // Loaded serving: drive an open-loop arrival schedule across the cluster.
  // Each request fans out to its shard participants (same routing as
  // Serve); every participating device runs its own admission queue +
  // ServeLoad over the sub-schedule, and the partials merge by request id.
  // A request shed by any shard reports kShed for the whole query (and
  // ships nothing — its merged aggregate would be incomplete). Closed-loop
  // workloads are not supported here: a user's next arrival would depend on
  // the cross-device merge time, coupling every device's admission state.
  ClusterServeReport ServeLoad(const load::Schedule& schedule,
                               const load::WorkloadSpec& spec);

  const placement::Placement& placement() const { return placement_; }
  int num_devices() const { return cluster_.num_devices(); }
  // The shard index device `d` holds (every policy gives each device
  // exactly one), or -1 if the device holds no rows.
  int shard_of_device(int d) const;
  // The per-device server (nullptr when the device's shard is empty).
  Server* server(int d) { return devices_[static_cast<size_t>(d)].server.get(); }

 private:
  struct DeviceState {
    int shard = -1;
    ssb::SsbData data;  // replicated dimensions + shard fact rows
    ssb::EncodedLineorder lineorder;
    std::unique_ptr<Server> server;
    // Availability of this device's merge engine, ms (cluster clock).
    double merge_free_ms = 0.0;
  };

  sim::Cluster& cluster_;
  const ssb::SsbData& data_;
  ClusterOptions options_;
  placement::Placement placement_;
  std::vector<DeviceState> devices_;
};

}  // namespace tilecomp::serve

#endif  // TILECOMP_SERVE_CLUSTER_SCHEDULER_H_
