#include "serve/mutable_loader.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "kernels/load_tile.h"
#include "sim/stats.h"

namespace tilecomp::serve {

MutableColumnAccessor::MutableColumnAccessor(codec::MutableColumn* column,
                                             TileCache* cache,
                                             Prefetcher* prefetcher)
    : column_(column), cache_(cache), prefetcher_(prefetcher) {
  TILECOMP_CHECK(column_ != nullptr && cache_ != nullptr);
  column_->AddListener(this);
}

MutableColumnAccessor::~MutableColumnAccessor() {
  column_->RemoveListener(this);
}

void MutableColumnAccessor::OnTileInvalidated(codec::ColumnId column,
                                              int64_t tile,
                                              uint64_t generation) {
  // Lock order: the column's mutex is held here; the cache and prefetcher
  // each take only their own mutex and never call back into the column.
  cache_->InvalidateStale(column, tile, generation);
  if (prefetcher_ != nullptr) prefetcher_->Invalidate(column, tile);
  invalidations_forwarded_.fetch_add(1, std::memory_order_relaxed);
}

uint32_t MutableColumnAccessor::LoadTile(sim::BlockContext& ctx,
                                         const codec::CompressedColumn& column,
                                         codec::ColumnId column_id,
                                         int64_t tile_id, uint32_t* out_tile) {
  (void)column;  // the mutable store is the source of truth
  if (prefetcher_ != nullptr) prefetcher_->RecordAccess(column_id, tile_id);
  TileCache::LookupInfo info;
  TileCache::PinnedTile pin = cache_->Lookup(column_id, tile_id, 0, &info);
  if (pin.valid()) {
    // Eager invalidation + the insert floor guarantee a resident entry is
    // never stale, so a hit serves directly: read the decoded tile back
    // from global memory.
    const uint32_t n = pin.count();
    std::memcpy(out_tile, pin.data(), static_cast<size_t>(n) * 4);
    ctx.CoalescedRead(static_cast<uint64_t>(n) * 4, /*aligned=*/true);
    if (info.prefetch_hit) {
      ctx.CachePrefetchHit();
    } else {
      ctx.CacheHit();
    }
    if (info.promoted) ctx.PrefetchUseful();
    return n;
  }

  codec::MutableColumn::TileSnapshot snap;
  if (!column_->SnapshotTile(tile_id, &snap)) return 0;
  const uint64_t cost_mark = sim::BlockCostProxy(ctx.stats());
  uint32_t n = 0;
  uint64_t encoded_bytes = 0;
  if (snap.from_side_buffer) {
    // Dirty or tail tile: the decoded truth is staged on-device; a read of
    // the side buffer is a plain coalesced load, no decode.
    n = snap.count;
    std::memcpy(out_tile, snap.values.data(), static_cast<size_t>(n) * 4);
    ctx.CoalescedRead(static_cast<uint64_t>(n) * 4, /*aligned=*/false);
    side_buffer_loads_.fetch_add(1, std::memory_order_relaxed);
  } else {
    n = kernels::LoadPackedTile(ctx, snap.extent.data(),
                                static_cast<uint32_t>(snap.extent.size()),
                                out_tile);
    TILECOMP_CHECK(n == snap.count);
    encoded_bytes = snap.extent.size() * 4;
    extent_loads_.fetch_add(1, std::memory_order_relaxed);
  }
  ctx.CacheMiss();
  if (n == 0) return 0;

  uint64_t evicted = 0;
  TileCost cost;
  cost.decode_cost =
      std::max<uint64_t>(1, sim::BlockCostProxy(ctx.stats()) - cost_mark);
  cost.encoded_bytes = encoded_bytes;
  TileCache::PinnedTile inserted =
      cache_->Insert(column_id, tile_id, out_tile, n, &evicted, cost,
                     snap.generation);
  ctx.CacheEvictions(evicted);
  if (inserted.valid()) {
    ctx.CoalescedWrite(static_cast<uint64_t>(n) * 4, /*aligned=*/true);
  }
  return n;
}

bool MutableColumnAccessor::TileStats(const codec::CompressedColumn& column,
                                      codec::ColumnId column_id,
                                      int64_t tile_id, uint32_t* min,
                                      uint32_t* max) {
  (void)column;
  (void)column_id;
  // Live bounds straight from the mutable store — updated under the same
  // lock as every mutation, so pruning can never use pre-patch bounds.
  return column_->TileBounds(tile_id, min, max);
}

uint32_t MutableColumnAccessor::EvaluateOnTile(
    sim::BlockContext& ctx, const codec::CompressedColumn& column,
    codec::ColumnId column_id, int64_t tile_id,
    const crystal::TilePredicate& pred, crystal::TileMask* mask) {
  (void)column;
  (void)column_id;
  // Zone classification from live bounds: two header words decide the
  // whole tile when its range is disjoint from (or inside) the predicate.
  uint32_t lo = 0, hi = 0;
  codec::MutableColumn::TileSnapshot snap;
  if (!column_->SnapshotTile(tile_id, &snap)) return 0;
  if (column_->TileBounds(tile_id, &lo, &hi)) {
    ctx.CoalescedRead(8, /*aligned=*/false);  // the tile's (min, max) pair
    ctx.Compute(2);
    if (pred.DisjointFrom(lo, hi)) {
      mask->ClearRange(0, crystal::TileMask::kBits);
      ctx.PushdownTilePruned();
      return snap.count;
    }
    if (pred.Contains(lo, hi)) {
      mask->ClearRange(snap.count, crystal::TileMask::kBits);
      ctx.PushdownTilePruned();
      return snap.count;
    }
  }
  // Mixed tile: decode (or read the side buffer) and test each value. A
  // resident cached copy would do, but peeking the cache here would skew
  // its replacement order accounting — the snapshot read is charged the
  // same either way.
  uint32_t tile_buf[crystal::kTileSize];
  uint32_t n = 0;
  if (snap.from_side_buffer) {
    n = snap.count;
    std::memcpy(tile_buf, snap.values.data(), static_cast<size_t>(n) * 4);
    ctx.CoalescedRead(static_cast<uint64_t>(n) * 4, /*aligned=*/false);
  } else {
    n = kernels::LoadPackedTile(ctx, snap.extent.data(),
                                static_cast<uint32_t>(snap.extent.size()),
                                tile_buf);
    TILECOMP_CHECK(n == snap.count);
  }
  ctx.TileDecoded();
  ctx.Compute(static_cast<uint64_t>(n) * 2);
  for (uint32_t i = 0; i < n; ++i) {
    if (!pred.Matches(tile_buf[i])) mask->Clear(i);
  }
  mask->ClearRange(n, crystal::TileMask::kBits);
  return n;
}

}  // namespace tilecomp::serve
