// MutableColumnAccessor: the serving-layer bridge between query kernels and
// a codec::MutableColumn.
//
// It plays two roles at once:
//   * a crystal::ColumnAccessor — query kernels materialize tiles through
//     LoadTile (TileCache lookup, then a charged decode of the tile's
//     variable-rate extent or a read of its decoded side buffer on miss)
//     and prune through TileStats/EvaluateOnTile against the column's LIVE
//     zone entries, so pushdown never prunes against stale bounds;
//   * a codec::MutableColumn::Listener — every generation bump (patch,
//     tail append, background re-encode) lands here with the column lock
//     held and is forwarded to TileCache::InvalidateStale (dropping the
//     resident decode and raising the insert floor against racing
//     demand-loads) and Prefetcher::Invalidate (killing in-flight
//     predictions for the column).
//
// Consistency: a LoadTile takes one per-tile snapshot under the column
// lock, so a kernel never observes a half-applied mutation; cross-tile
// reads are anchored by the caller's row-count snapshot (appends only grow
// the tail). The CompressedColumn& parameter of the ColumnAccessor
// interface is ignored — the mutable store is the source of truth; callers
// pass a placeholder.
#ifndef TILECOMP_SERVE_MUTABLE_LOADER_H_
#define TILECOMP_SERVE_MUTABLE_LOADER_H_

#include <atomic>
#include <cstdint>

#include "codec/mutable_column.h"
#include "crystal/load_column.h"
#include "serve/prefetcher.h"
#include "serve/tile_cache.h"

namespace tilecomp::serve {

class MutableColumnAccessor : public crystal::ColumnAccessor,
                              public codec::MutableColumn::Listener {
 public:
  // `column` and `cache` must outlive the accessor; `prefetcher` may be
  // nullptr and is not owned. Registers itself as the column's listener.
  MutableColumnAccessor(codec::MutableColumn* column, TileCache* cache,
                        Prefetcher* prefetcher = nullptr);
  ~MutableColumnAccessor() override;

  MutableColumnAccessor(const MutableColumnAccessor&) = delete;
  MutableColumnAccessor& operator=(const MutableColumnAccessor&) = delete;

  // crystal::ColumnAccessor. The `column` parameter is ignored (see file
  // comment); `column_id` must be the mutable column's id.
  uint32_t LoadTile(sim::BlockContext& ctx,
                    const codec::CompressedColumn& column,
                    codec::ColumnId column_id, int64_t tile_id,
                    uint32_t* out_tile) override;
  bool TileStats(const codec::CompressedColumn& column,
                 codec::ColumnId column_id, int64_t tile_id, uint32_t* min,
                 uint32_t* max) override;
  uint32_t EvaluateOnTile(sim::BlockContext& ctx,
                          const codec::CompressedColumn& column,
                          codec::ColumnId column_id, int64_t tile_id,
                          const crystal::TilePredicate& pred,
                          crystal::TileMask* mask) override;

  // codec::MutableColumn::Listener (called with the column lock held).
  void OnTileInvalidated(codec::ColumnId column, int64_t tile,
                         uint64_t generation) override;

  // Monotonic counters (relaxed; exact under quiescence).
  uint64_t side_buffer_loads() const {
    return side_buffer_loads_.load(std::memory_order_relaxed);
  }
  uint64_t extent_loads() const {
    return extent_loads_.load(std::memory_order_relaxed);
  }
  uint64_t invalidations_forwarded() const {
    return invalidations_forwarded_.load(std::memory_order_relaxed);
  }

 private:
  codec::MutableColumn* const column_;
  TileCache* const cache_;
  Prefetcher* const prefetcher_;

  std::atomic<uint64_t> side_buffer_loads_{0};
  std::atomic<uint64_t> extent_loads_{0};
  std::atomic<uint64_t> invalidations_forwarded_{0};
};

}  // namespace tilecomp::serve

#endif  // TILECOMP_SERVE_MUTABLE_LOADER_H_
