#include "serve/placement.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "common/random.h"
#include "crystal/load_column.h"

namespace tilecomp::serve::placement {

namespace {

// Deal [0, num_rows) into `parts` striped shards: kStripeTiles-tile chunks
// assigned round-robin, adjacent chunks of the same shard coalesced (so
// parts == 1 yields a single [0, num_rows) range). Every shard is
// non-empty when there are at least `parts` chunks; with fewer chunks the
// trailing shards come back empty (the scheduler serves an empty shard as
// a no-op, which the tests exercise explicitly).
std::vector<Shard> StripeRanges(size_t num_rows, int parts) {
  const size_t chunk_rows = crystal::kTileSize * kStripeTiles;
  std::vector<Shard> shards(static_cast<size_t>(parts));
  size_t begin = 0;
  for (size_t c = 0; begin < num_rows; ++c) {
    const size_t end = std::min(begin + chunk_rows, num_rows);
    Shard& shard = shards[c % static_cast<size_t>(parts)];
    if (!shard.ranges.empty() && shard.ranges.back().end == begin) {
      shard.ranges.back().end = end;
    } else {
      shard.ranges.push_back({begin, end});
    }
    begin = end;
  }
  return shards;
}

// Seeded deterministic permutation of [0, n): Fisher-Yates with SplitMix64.
std::vector<int> DevicePermutation(int n, uint64_t seed) {
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  return perm;
}

}  // namespace

const char* PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kReplicate:
      return "replicate";
    case PolicyKind::kRangeShard:
      return "range-shard";
    case PolicyKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

bool ParsePolicy(const std::string& name, PolicyKind* kind) {
  if (name == "replicate") {
    *kind = PolicyKind::kReplicate;
  } else if (name == "range-shard") {
    *kind = PolicyKind::kRangeShard;
  } else if (name == "hybrid") {
    *kind = PolicyKind::kHybrid;
  } else {
    return false;
  }
  return true;
}

std::vector<int> Placement::ShardsOnDevice(int d) const {
  std::vector<int> out;
  for (size_t s = 0; s < shards.size(); ++s) {
    const std::vector<int>& devices = shards[s].devices;
    if (std::find(devices.begin(), devices.end(), d) != devices.end()) {
      out.push_back(static_cast<int>(s));
    }
  }
  return out;
}

Placement Plan(PolicyKind kind, size_t num_rows, int num_devices,
               uint64_t seed) {
  TILECOMP_CHECK(num_devices >= 1);
  Placement out;
  out.policy = kind;
  out.num_rows = num_rows;
  out.num_devices = num_devices;
  const std::vector<int> perm = DevicePermutation(num_devices, seed);
  switch (kind) {
    case PolicyKind::kReplicate: {
      Shard shard;
      shard.ranges.push_back({0, num_rows});
      shard.devices = perm;
      out.shards.push_back(std::move(shard));
      break;
    }
    case PolicyKind::kRangeShard: {
      out.shards = StripeRanges(num_rows, num_devices);
      for (int p = 0; p < num_devices; ++p) {
        out.shards[static_cast<size_t>(p)].devices = {
            perm[static_cast<size_t>(p)]};
      }
      break;
    }
    case PolicyKind::kHybrid: {
      // ~N/2 striped shards x 2 replicas; a 1- or 2-device cluster
      // degenerates to one fully replicated range.
      const int ranges = std::max(1, num_devices / 2);
      out.shards = StripeRanges(num_rows, ranges);
      for (int p = 0; p < ranges; ++p) {
        Shard& shard = out.shards[static_cast<size_t>(p)];
        shard.devices.push_back(perm[static_cast<size_t>(2 * p)]);
        if (2 * p + 1 < num_devices) {
          shard.devices.push_back(perm[static_cast<size_t>(2 * p + 1)]);
        }
      }
      // An odd cluster's leftover device doubles up on the first range so
      // no device sits idle.
      if (num_devices > 2 && num_devices % 2 == 1) {
        out.shards[0].devices.push_back(
            perm[static_cast<size_t>(num_devices - 1)]);
      }
      break;
    }
  }
  return out;
}

}  // namespace tilecomp::serve::placement
