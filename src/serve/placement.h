// Data placement for cluster serving: how the lineorder fact table is laid
// out across N devices. Dimension tables are always replicated (they are
// tiny next to the fact table — the paper's queries build their hash tables
// per device); the policy decides what happens to the fact columns:
//
//   kReplicate   every device holds the whole fact table. A query runs on
//                one device (routed round-robin), so per-query latency is
//                the single-device latency and throughput scales with
//                devices only through batch parallelism.
//   kRangeShard  the fact table is cut into kStripeTiles-tile chunks dealt
//                round-robin, one shard per device (striped range
//                sharding). Every device scans its shard for every query
//                and the partial aggregates merge over the interconnect —
//                per-query work drops ~N-fold.
//   kHybrid      ~N/2 striped shards, each replicated on 2 devices:
//                sharding's scan reduction with one spare replica per
//                shard to take over on faults.
//
// Why stripes instead of one contiguous range per shard: chunk boundaries
// are multiples of the Crystal tile size, so on a date-clustered layout
// every chunk is a contiguous date range and per-shard zone maps keep
// pruning (PR 6) — but because the chunks of any date window are dealt
// across all shards, a date-selective query's surviving tiles split ~N
// ways instead of landing on a single owning device. A contiguous cut
// would serialize exactly the hottest (flight 1) queries of a skewed mix
// on one shard. Device assignment is a seeded deterministic permutation:
// same seed, same placement.
#ifndef TILECOMP_SERVE_PLACEMENT_H_
#define TILECOMP_SERVE_PLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tilecomp::serve::placement {

enum class PolicyKind {
  kReplicate,
  kRangeShard,
  kHybrid,
};

const char* PolicyName(PolicyKind kind);
// Inverse of PolicyName; returns false on an unknown name.
bool ParsePolicy(const std::string& name, PolicyKind* kind);

// Stripe granularity: shards take turns owning chunks of this many Crystal
// tiles. Coarse enough that a chunk of a date-clustered table is a long
// contiguous date run (zone maps prune inside it), fine enough that any
// query's date window spreads over every shard.
inline constexpr size_t kStripeTiles = 64;

// One contiguous, tile-aligned row range [begin, end).
struct RowRange {
  size_t begin = 0;
  size_t end = 0;

  size_t rows() const { return end - begin; }
  bool operator==(const RowRange&) const = default;
};

// The tile-aligned row ranges a shard owns (disjoint, ascending — a single
// range when the policy does not stripe) and the devices holding a replica
// of it. With kRangeShard there is exactly one device per shard; with
// kReplicate one shard lists every device; with kHybrid each shard lists
// two (or every device when the cluster has fewer than three).
struct Shard {
  std::vector<RowRange> ranges;
  std::vector<int> devices;

  size_t rows() const {
    size_t n = 0;
    for (const RowRange& r : ranges) n += r.rows();
    return n;
  }
};

struct Placement {
  PolicyKind policy = PolicyKind::kRangeShard;
  size_t num_rows = 0;
  int num_devices = 1;
  std::vector<Shard> shards;

  // The shards device `d` holds a replica of, in shard order.
  std::vector<int> ShardsOnDevice(int d) const;
};

// Lay `num_rows` fact rows out over `num_devices` devices. Deterministic in
// (kind, num_rows, num_devices, seed); the seed only permutes which device
// gets which range, never the ranges themselves.
Placement Plan(PolicyKind kind, size_t num_rows, int num_devices,
               uint64_t seed);

}  // namespace tilecomp::serve::placement

#endif  // TILECOMP_SERVE_PLACEMENT_H_
