#include "serve/prefetcher.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "crystal/load_column.h"
#include "sim/stats.h"

namespace tilecomp::serve {

namespace {

// Streak-doubling beyond this many rounds would overflow any sane
// initial_depth long after max_depth caps it anyway.
constexpr int kMaxStreakShift = 6;

// One predicted tile of the current round's combined speculative launch.
struct RoundTarget {
  const codec::CompressedColumn* column;
  codec::ColumnId col_id;
  int64_t tile;
  uint64_t tile_bytes;
};

// One column's predicted tiles for this round, with the cost (tiles still
// missing) of completing it — the round budget is spent cheapest-first.
struct ColumnPlan {
  int64_t missing = 0;
  int smem = 0;
  std::vector<RoundTarget> targets;
};

// Schemes the tile-granular decoder (crystal::LoadColumnTile) can decode
// speculatively. kNone is excluded: its tiles are raw, so a speculative
// "decode" would stage bytes a demand read gets at the same cost.
bool SchemePrefetchable(codec::Scheme scheme) {
  switch (scheme) {
    case codec::Scheme::kGpuFor:
    case codec::Scheme::kGpuDFor:
    case codec::Scheme::kGpuRFor:
    case codec::Scheme::kGpuBp:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* Prefetcher::PatternName(Pattern pattern) {
  switch (pattern) {
    case Pattern::kIdle:
      return "idle";
    case Pattern::kSequential:
      return "sequential";
    case Pattern::kStrided:
      return "strided";
    case Pattern::kRandom:
      return "random";
  }
  return "?";
}

Prefetcher::Prefetcher(sim::Device& dev, TileCache* cache,
                       PrefetchOptions options, fault::FaultPlan* fault_plan)
    : dev_(dev), cache_(cache), options_(options), fault_plan_(fault_plan) {
  TILECOMP_CHECK(cache != nullptr);
  const int n = std::max(1, options_.num_streams);
  for (int i = 0; i < n; ++i) streams_.push_back(dev_.CreateStream());
}

void Prefetcher::RegisterColumn(codec::ColumnId column_id,
                                const codec::CompressedColumn* column) {
  if (column == nullptr || column->size() == 0 ||
      !SchemePrefetchable(column->scheme())) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ColumnState& st = columns_[column_id.value()];
  st.column = column;
  st.num_tiles = crystal::NumTiles(column->size());
  st.tile_encoded_bytes =
      column->compressed_bytes() / static_cast<uint64_t>(st.num_tiles);
  st.accessed.assign(static_cast<size_t>(st.num_tiles), false);
}

void Prefetcher::RecordAccess(codec::ColumnId column_id, int64_t tile_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = columns_.find(column_id.value());
  if (it == columns_.end()) return;
  ColumnState& st = it->second;
  if (tile_id < 0 || tile_id >= st.num_tiles) return;
  st.accessed[static_cast<size_t>(tile_id)] = true;
  st.any_access = true;
}

void Prefetcher::Invalidate(codec::ColumnId column_id, int64_t tile_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = columns_.find(column_id.value());
  if (it == columns_.end()) return;
  ColumnState& st = it->second;
  (void)tile_id;  // any tile's mutation poisons the whole column's pattern
  st.pattern = Pattern::kIdle;
  st.stride = 1;
  st.streak = 0;
  st.last_tile = -1;
  st.last_depth = 0;
  st.idle_rounds = 0;
}

uint64_t Prefetcher::IssueRound() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ColumnPlan> plans;
  for (auto& [id_value, st] : columns_) {
    const codec::ColumnId col_id(id_value);

    // Drain this round's bitmap into a sorted tile list.
    std::vector<int64_t> tiles;
    if (st.any_access) {
      for (int64_t t = 0; t < st.num_tiles; ++t) {
        if (st.accessed[static_cast<size_t>(t)]) {
          tiles.push_back(t);
          st.accessed[static_cast<size_t>(t)] = false;
        }
      }
      st.any_access = false;
    }

    // Classify. An irregular round breaks the streak; an idle round lets an
    // established regular pattern persist (still topped up) for up to
    // `idle_ttl` rounds — the hot-column case where an interleaved query
    // evicts a column's tiles without touching the column itself, so the
    // round right before its next scan sees it idle.
    if (tiles.empty()) {
      const bool regular = st.pattern == Pattern::kSequential ||
                           st.pattern == Pattern::kStrided;
      if (!regular || ++st.idle_rounds > options_.idle_ttl) {
        st.pattern = Pattern::kIdle;
        st.streak = 0;
        st.last_depth = 0;
        st.idle_rounds = 0;
        continue;
      }
      // Keep streak, stride, last_tile and depth from the last active round.
    } else {
      st.idle_rounds = 0;
      st.last_tile = tiles.back();
      if (tiles.size() < 2) {
        // A single access carries no direction.
        st.pattern = Pattern::kRandom;
        st.streak = 0;
        st.last_depth = 0;
        continue;
      }
      // Sequential tolerates gaps (predicate pushdown prunes tiles out of
      // an otherwise linear scan): at least 3/4 of the sorted deltas must
      // be 1. Strided is strict: every delta equals the same stride > 1.
      const int64_t first_delta = tiles[1] - tiles[0];
      size_t unit_deltas = 0;
      bool constant = true;
      for (size_t k = 1; k < tiles.size(); ++k) {
        const int64_t d = tiles[k] - tiles[k - 1];
        if (d == 1) ++unit_deltas;
        constant = constant && d == first_delta;
      }
      const size_t deltas = tiles.size() - 1;
      Pattern pattern;
      int64_t stride;
      if (unit_deltas * 4 >= deltas * 3) {
        pattern = Pattern::kSequential;
        stride = 1;
      } else if (constant && first_delta > 1) {
        pattern = Pattern::kStrided;
        stride = first_delta;
      } else {
        st.pattern = Pattern::kRandom;
        st.streak = 0;
        st.last_depth = 0;
        continue;
      }
      if (pattern == st.pattern && stride == st.stride) {
        ++st.streak;
      } else {
        st.streak = 1;
      }
      st.pattern = pattern;
      st.stride = stride;
    }

    // FetchNextSmart-style depth: double per streak round, capped. A
    // persisted-idle round keeps the streak, so the depth is unchanged.
    const int shift = std::min(st.streak - 1, kMaxStreakShift);
    const int depth = std::min(options_.max_depth,
                               std::max(1, options_.initial_depth) << shift);
    st.last_depth = depth;

    // All-or-nothing speculation for all-or-nothing payoff: when the
    // consumer skips work only on a fully resident column, staging a
    // partial top-up costs compute and evicts other columns' residency for
    // zero benefit — so stage only what can be finished.
    int64_t missing = 0;
    if (options_.require_completion) {
      for (int64_t t = 0; t < st.num_tiles && missing <= depth; ++t) {
        if (!cache_->Contains(col_id, t)) ++missing;
      }
      if (missing == 0 || missing > depth) continue;
    }

    // Predict the next `depth` tiles along the stride (wrapping — a serving
    // workload rescans the column on the next query), skipping tiles that
    // are already resident.
    ColumnPlan plan;
    int64_t t = st.last_tile;
    for (int64_t step = 0; step < st.num_tiles &&
                           plan.targets.size() < static_cast<size_t>(depth);
         ++step) {
      t += st.stride;
      if (t >= st.num_tiles) t %= st.num_tiles;
      if (cache_->Contains(col_id, t)) continue;
      plan.targets.push_back({st.column, col_id, t, st.tile_encoded_bytes});
    }
    if (plan.targets.empty()) continue;
    plan.missing = options_.require_completion
                       ? missing
                       : static_cast<int64_t>(plan.targets.size());
    plan.smem = crystal::ColumnSmemBytes(*st.column);
    plans.push_back(std::move(plan));
  }
  if (plans.empty()) return 0;

  // Assemble the combined launch cheapest-completion-first: a column
  // missing 6 tiles converts into a pipeline skip for a sixth of the
  // staging (and eviction pressure) of a column missing 36, so when the
  // cache refuses inserts mid-round the cheap completions have already
  // landed.
  std::stable_sort(plans.begin(), plans.end(),
                   [](const ColumnPlan& a, const ColumnPlan& b) {
                     return a.missing < b.missing;
                   });
  std::vector<RoundTarget> round;
  int max_smem = 0;
  for (ColumnPlan& plan : plans) {
    round.insert(round.end(), plan.targets.begin(), plan.targets.end());
    max_smem = std::max(max_smem, plan.smem);
  }

  // One combined launch for the whole round — per-launch scheduling
  // overhead dwarfs a tile decode, so per-column launches would make the
  // speculation cost scale with the number of predicted columns instead of
  // the number of staged tiles. One block per predicted tile, on a
  // dedicated stream so the speculative work never serializes onto a
  // query's stream (it still shares the compute engine — speculation is
  // modeled work, not free).
  const uint64_t count = round.size();
  auto targets = std::make_shared<const std::vector<RoundTarget>>(
      std::move(round));
  TileCache* cache = cache_;
  fault::FaultPlan* plan = fault_plan_;
  sim::LaunchConfig cfg;
  cfg.grid_dim = static_cast<int64_t>(count);
  cfg.block_threads = 128;
  cfg.smem_bytes_per_block = max_smem;
  const sim::StreamId stream = streams_[next_stream_++ % streams_.size()];
  sim::StreamGuard guard(dev_, stream);
  const sim::KernelResult result =
      dev_.Launch("prefetch.decode", cfg, [=](sim::BlockContext& ctx) {
        const RoundTarget& target =
            (*targets)[static_cast<size_t>(ctx.block_id())];
        ctx.PrefetchIssued();
        uint32_t buf[crystal::kTileSize];
        const uint64_t cost_mark = sim::BlockCostProxy(ctx.stats());
        const uint32_t n =
            crystal::LoadColumnTile(ctx, *target.column, target.tile, buf);
        const uint64_t decode_cost = std::max<uint64_t>(
            1, sim::BlockCostProxy(ctx.stats()) - cost_mark);
        // Same fault key as the demand path's first decode attempt, so a
        // tile that would fault on demand faults here too. No retry: the
        // speculative copy is dropped silently and the demand path later
        // runs its own recoverable decode.
        if (plan != nullptr &&
            plan->ShouldFault(
                fault::FaultSite::kTileDecode,
                fault::FaultPlan::TileKey(target.col_id, target.tile, 0))) {
          ctx.PrefetchWasted();
          cache->CountPrefetchWasted(1);
          return;
        }
        TileCost cost;
        cost.decode_cost = decode_cost;
        cost.encoded_bytes = target.tile_bytes;
        switch (cache->InsertSpeculative(target.col_id, target.tile, buf, n,
                                         cost)) {
          case SpeculativeInsert::kInserted:
            // Spill the staged tile into the cache's device buffer.
            ctx.CoalescedWrite(n * sizeof(uint32_t), true);
            break;
          case SpeculativeInsert::kAlreadyResident:
            ctx.PrefetchLate();
            break;
          case SpeculativeInsert::kRefused:
            ctx.PrefetchWasted();
            break;
        }
      });
  cache_->CountPrefetchIssued(count);
  if (result.failed) {
    // An injected launch fault exhausted the attempt budget: the bodies
    // never ran, so none of the speculation can pay off.
    cache_->CountPrefetchWasted(count);
  }
  return count;
}

Prefetcher::Pattern Prefetcher::pattern(codec::ColumnId column_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = columns_.find(column_id.value());
  return it == columns_.end() ? Pattern::kIdle : it->second.pattern;
}

int Prefetcher::depth(codec::ColumnId column_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = columns_.find(column_id.value());
  return it == columns_.end() ? 0 : it->second.last_depth;
}

int64_t Prefetcher::stride(codec::ColumnId column_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = columns_.find(column_id.value());
  return it == columns_.end() ? 0 : it->second.stride;
}

}  // namespace tilecomp::serve
