// Speculative tile prefetcher for the query-serving layer.
//
// The serve path decodes a tile only when a query touches it, so a batch's
// tail latency is paid on cold tiles. The Prefetcher watches the per-column
// tile-access sequence the demand path reports (RecordAccess), classifies
// each column's most recent round of accesses as sequential / strided /
// random, and — for the regular patterns — issues speculative tile decodes
// on its own dedicated async streams ahead of the next query's kernels,
// staging the results in the TileCache as low-priority speculative entries.
//
// Depth control follows rapidgzip's FetchNextSmart: the prefetch distance
// starts small and doubles for every consecutive round that repeats the
// same regular pattern (a streak), capped at `max_depth`; a random round
// resets the streak. A column that keeps scanning sequentially therefore
// earns a deep prefetch window, while a column probed randomly gets nothing
// speculated at all.
//
// An *idle* round does not reset an established regular pattern — for up to
// `idle_ttl` rounds the column keeps its streak and keeps getting topped up.
// This is the serving-mix case that matters most: a hot column's tiles are
// evicted by an interleaved query that never touches it, so the round right
// before the hot column's next scan sees it idle. Without persistence the
// prefetcher would only ever speculate on whatever the *previous* query
// touched — exactly the columns that need no help.
//
// `require_completion` adapts the speculation to decompress-then-query
// systems, where a column skips its decompress pipeline only when *every*
// reachable tile is resident: a partial top-up buys nothing there and the
// staging evicts other columns' residency, so the prefetcher stages a
// column only when its entire missing-tile set fits the current depth
// (all-or-nothing speculation to match the all-or-nothing payoff).
//
// Fault discipline: the speculative decode consults the fault plan's
// kTileDecode site with the same (column, tile, attempt=0) key the demand
// path uses. A faulted speculative decode is dropped silently — never
// retried, never cached — and counted as wasted prefetch work; the demand
// path later performs its own (recoverable) decode. The cache's insert-site
// faults apply to speculative inserts too (see TileCache::InsertSpeculative).
//
// Causality note: the simulator executes kernel bodies synchronously at
// issue time, so a speculative decode issued before a query's kernels is
// guaranteed (in modeled time as well — the compute engine serializes in
// issue order) to have completed before those kernels run. Prefetch hits
// observed by the demand path are therefore causally sound, never an
// artifact of host-side execution order.
#ifndef TILECOMP_SERVE_PREFETCHER_H_
#define TILECOMP_SERVE_PREFETCHER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "codec/column.h"
#include "codec/column_id.h"
#include "common/macros.h"
#include "fault/fault.h"
#include "serve/tile_cache.h"
#include "sim/device.h"

namespace tilecomp::serve {

struct PrefetchOptions {
  // Master switch; everything below is inert when false.
  bool enabled = false;
  // Prefetch distance for the first round of a streak (streak = 1).
  int initial_depth = 4;
  // Cap on the streak-doubled distance.
  int max_depth = 64;
  // Dedicated async streams the speculative decode launches rotate over.
  int num_streams = 2;
  // How many consecutive idle rounds an established regular pattern
  // survives (still being topped up) before it expires. Bounds the waste of
  // re-staging a column that is never queried again.
  int idle_ttl = 4;
  // Stage a column only when its whole missing-tile set fits the current
  // depth. Set by the server for decompress-then-query systems, whose
  // all-or-nothing pipeline skip makes partial top-ups worthless.
  bool require_completion = false;
};

class Prefetcher {
 public:
  // What a column's latest access round looked like.
  //   kIdle       — no accesses recorded since the last round.
  //   kSequential — at least 3/4 of the sorted accessed tiles' deltas are 1
  //                 (gap-tolerant: predicate pushdown prunes tiles out of an
  //                 otherwise linear scan).
  //   kStrided    — every delta equals the same stride > 1.
  //   kRandom     — anything else (including a single access: one point
  //                 carries no direction, so nothing is speculated).
  enum class Pattern { kIdle, kSequential, kStrided, kRandom };

  static const char* PatternName(Pattern pattern);

  // `cache` must outlive the prefetcher; `fault_plan` may be nullptr and is
  // not owned. Creates `options.num_streams` dedicated streams on `dev`.
  Prefetcher(sim::Device& dev, TileCache* cache, PrefetchOptions options,
             fault::FaultPlan* fault_plan = nullptr);

  TILECOMP_DISALLOW_COPY_AND_ASSIGN(Prefetcher);

  // Register a column as a prefetch target. Only schemes the tile-granular
  // decoder supports are accepted (others are ignored — their accesses are
  // simply never speculated on); `column` must outlive the prefetcher.
  void RegisterColumn(codec::ColumnId column_id,
                      const codec::CompressedColumn* column);

  // Report one demand tile access. Thread-safe (called from kernel-body
  // host threads); accesses within a round are aggregated as a bitmap, so
  // the classification is independent of the order concurrent blocks
  // happen to record them in. Unregistered columns are ignored.
  void RecordAccess(codec::ColumnId column_id, int64_t tile_id);

  // Kill a column's in-flight speculation state because `tile` mutated
  // (mutable-column generation bump): the established pattern, streak and
  // depth are reset, so no already-classified prediction keeps issuing
  // decodes across a mutation — the next round re-learns the pattern from
  // post-mutation accesses. The current round's access bitmap is preserved
  // (those accesses really happened). Unregistered columns are ignored.
  // Called with the mutating column's lock held (lock order: column ->
  // prefetcher; IssueRound never calls back into a column).
  void Invalidate(codec::ColumnId column_id, int64_t tile_id);

  // Close the current access round: classify every column's recorded
  // accesses, update streaks and depths, and launch one speculative decode
  // per regular-pattern column covering its next predicted (non-resident)
  // tiles. A column idle this round keeps its established pattern for up to
  // `idle_ttl` rounds and is still topped up. Called by the server between
  // queries, never concurrently with query kernels. Returns the number of
  // tiles speculatively decoded.
  uint64_t IssueRound();

  // Latest classification state, for tests and telemetry.
  Pattern pattern(codec::ColumnId column_id) const;
  int depth(codec::ColumnId column_id) const;  // last round's depth (0 = none)
  int64_t stride(codec::ColumnId column_id) const;

 private:
  struct ColumnState {
    const codec::CompressedColumn* column = nullptr;
    int64_t num_tiles = 0;
    uint64_t tile_encoded_bytes = 0;
    // Current round's accessed-tile bitmap (order-independent aggregate).
    std::vector<bool> accessed;
    bool any_access = false;
    Pattern pattern = Pattern::kIdle;
    int64_t stride = 1;
    int streak = 0;        // consecutive rounds with the same regular pattern
    int64_t last_tile = -1;  // highest tile of the last non-empty round
    int last_depth = 0;
    int idle_rounds = 0;  // consecutive idle rounds since the last access
  };

  sim::Device& dev_;
  TileCache* cache_;
  const PrefetchOptions options_;
  fault::FaultPlan* fault_plan_;
  std::vector<sim::StreamId> streams_;
  size_t next_stream_ = 0;

  mutable std::mutex mu_;
  // Ordered by column id so IssueRound's launch order is deterministic.
  std::map<uint32_t, ColumnState> columns_;
};

}  // namespace tilecomp::serve

#endif  // TILECOMP_SERVE_PREFETCHER_H_
