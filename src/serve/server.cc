#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <queue>
#include <utility>

#include "codec/systems.h"
#include "common/macros.h"

namespace tilecomp::serve {

const char* QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kTransferFailed:
      return "transfer_failed";
    case QueryStatus::kLaunchFailed:
      return "launch_failed";
    case QueryStatus::kDecodeFailed:
      return "decode_failed";
    case QueryStatus::kShed:
      return "shed";
  }
  return "?";
}

uint64_t TileEncodedBytes(const codec::CompressedColumn& column) {
  if (column.size() == 0) return 0;
  const int64_t tiles = crystal::NumTiles(column.size());
  return column.compressed_bytes() / static_cast<uint64_t>(tiles);
}

double NearestRankPercentile(std::vector<double> samples, int q_pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  // ceil(q_pct * n / 100) in integers, clamped to [1, n].
  size_t rank = (static_cast<size_t>(q_pct) * n + 99) / 100;
  rank = std::min(std::max<size_t>(rank, 1), n);
  return samples[rank - 1];
}

uint32_t CachedTileLoader::LoadTile(sim::BlockContext& ctx,
                                    const codec::CompressedColumn& column,
                                    codec::ColumnId column_id, int64_t tile_id,
                                    uint32_t* out_tile) {
  // A cached tile saves re-reading the encoded form; a kNone column's tiles
  // are already raw, so a hit on them saves nothing (same bytes either way).
  const uint64_t saved =
      column.scheme() == codec::Scheme::kNone ? 0 : TileEncodedBytes(column);
  if (prefetcher_ != nullptr) prefetcher_->RecordAccess(column_id, tile_id);
  // saved_encoded_bytes = 0 at Lookup time: a hit may still be discarded by
  // the poison draw below, and a discarded hit saves nothing (the tile is
  // re-decoded). The credit lands via CreditSaved once the hit is served.
  TileCache::LookupInfo info;
  TileCache::PinnedTile pin = cache_->Lookup(column_id, tile_id, 0, &info);
  if (pin.valid()) {
    // Poisoned-tile injection: the cached copy is deemed corrupt. Drop the
    // pin, invalidate the entry so no other query can read the poison, and
    // fall through to the miss path for a fresh decode.
    if (fault_plan_ != nullptr &&
        fault_plan_->ShouldFault(fault::FaultSite::kTileDecode)) {
      pin.Release();
      cache_->Invalidate(column_id, tile_id);
    } else {
      const uint32_t n = pin.count();
      std::memcpy(out_tile, pin.data(), n * sizeof(uint32_t));
      // A hit reads the decoded tile back from global memory — more bytes
      // than the encoded form, but no decode compute, shared staging or
      // barriers.
      ctx.CoalescedRead(n * sizeof(uint32_t), true);
      cache_->CreditSaved(saved);
      if (info.prefetch_hit) {
        ctx.CachePrefetchHit(saved);
      } else {
        ctx.CacheHit(saved);
      }
      if (info.promoted) ctx.PrefetchUseful();
      return n;
    }
  }
  const uint64_t cost_mark = sim::BlockCostProxy(ctx.stats());
  uint32_t n = crystal::LoadColumnTile(ctx, column, tile_id, out_tile);
  ctx.CacheMiss();
  if (fault_plan_ != nullptr) {
    // Decode faults: re-run the decode up to the attempt budget (keyed by
    // (column, tile, attempt) so concurrent blocks decide deterministically).
    // Terminal failure zeroes the tile and raises the sticky flag — the
    // server fails the query cleanly; the zeros are never served as data.
    const int max_attempts =
        std::max(1, fault_plan_->options().max_decode_attempts);
    int attempt = 0;
    while (fault_plan_->ShouldFault(
        fault::FaultSite::kTileDecode,
        fault::FaultPlan::TileKey(column_id, tile_id, attempt))) {
      if (++attempt >= max_attempts) {
        fault_plan_->CountTerminalFailure();
        std::memset(out_tile, 0, n * sizeof(uint32_t));
        decode_failed_.store(true, std::memory_order_relaxed);
        return n;
      }
      fault_plan_->CountRetry();
      n = crystal::LoadColumnTile(ctx, column, tile_id, out_tile);
    }
  }
  uint64_t evicted = 0;
  // The measured decode cost (and the tile's encoded share) rank this entry
  // in the kCostAware eviction order: cheap-to-rebuild tiles go first.
  TileCost cost;
  cost.decode_cost =
      std::max<uint64_t>(1, sim::BlockCostProxy(ctx.stats()) - cost_mark);
  cost.encoded_bytes = saved;
  TileCache::PinnedTile inserted =
      cache_->Insert(column_id, tile_id, out_tile, n, &evicted, cost);
  ctx.CacheEvictions(evicted);
  if (inserted.valid()) {
    // Spill the decoded tile into the cache's device buffer.
    ctx.CoalescedWrite(n * sizeof(uint32_t), true);
  }
  return n;
}

uint32_t CachedTileLoader::EvaluateOnTile(sim::BlockContext& ctx,
                                          const codec::CompressedColumn& column,
                                          codec::ColumnId column_id,
                                          int64_t tile_id,
                                          const crystal::TilePredicate& pred,
                                          crystal::TileMask* mask) {
  // Peek, not Lookup: predicate evaluation must leave the cache's counters,
  // replacement order and fault draws untouched (see the header comment).
  TileCache::PinnedTile pin = cache_->Peek(column_id, tile_id);
  if (pin.valid()) {
    const uint32_t n = pin.count();
    ctx.CoalescedRead(n * sizeof(uint32_t), true);
    ctx.Compute(static_cast<uint64_t>(n) * 2);
    const uint32_t* vals = pin.data();
    for (uint32_t i = 0; i < n; ++i) {
      if (!pred.Matches(vals[i])) mask->Clear(i);
    }
    mask->ClearRange(n, crystal::TileMask::kBits);
    return n;
  }
  return crystal::EvaluateColumnTile(ctx, column, tile_id, pred, mask);
}

Server::Server(sim::Device& dev, const ssb::SsbData& data,
               const ssb::EncodedLineorder& lineorder, ServeOptions options)
    : dev_(dev),
      lineorder_(lineorder),
      options_(options),
      runner_(data),
      cache_(options.cache_budget_bytes, options.policy),
      loader_(&cache_, options.fault_plan) {
  const int n = std::max(1, options_.num_streams);
  for (int i = 0; i < n; ++i) streams_.push_back(dev_.CreateStream());
  runner_.set_reuse_prepared(options_.reuse_hash_tables);
  if (options_.prefetch.enabled && options_.use_cache) {
    // Decompress-then-query systems skip a column's pipeline only when
    // every reachable tile is resident, so a partial top-up is pure cost
    // there: restrict speculation to columns it can complete. Inline
    // tile-granular systems cash in per resident tile and keep the
    // caller's setting.
    PrefetchOptions popts = options_.prefetch;
    popts.require_completion =
        popts.require_completion ||
        lineorder_.system == codec::System::kGpuBp ||
        lineorder_.system == codec::System::kNvcomp ||
        lineorder_.system == codec::System::kPlanner;
    prefetcher_ = std::make_unique<Prefetcher>(dev_, &cache_, popts,
                                               options_.fault_plan);
    // Every fact column is a candidate; the prefetcher ignores schemes its
    // tile-granular decoder cannot handle.
    for (int c = 0; c < ssb::kNumLoCols; ++c) {
      prefetcher_->RegisterColumn(codec::ColumnId(static_cast<uint32_t>(c)),
                                  &lineorder_.cols[c].column);
    }
    loader_.set_prefetcher(prefetcher_.get());
  }
  if (options_.fault_plan != nullptr) {
    // Wire every injection point: the device (transfers + launches), the
    // cache (alloc/insert) and the loader (decode/poison, set above).
    dev_.AttachFaultPlan(options_.fault_plan);
    cache_.set_fault_plan(options_.fault_plan);
  }
}

ssb::EncodedLineorder Server::MaterializeColumns(
    ssb::QueryId query, std::vector<TileCache::PinnedTile>* pins,
    uint64_t* decompress_skips, QueryStatus* status) {
  ssb::EncodedLineorder out;
  out.system = codec::System::kNone;

  // Tile-granularity pushdown: a tile some fact predicate rules out at
  // zone-map granularity is provably skipped by the query kernel too (its
  // selection mask comes up empty from the same zone maps), so it needs no
  // residency for a decompress skip, no per-tile miss accounting, and never
  // enters the cache. Pruning uses the *stored* predicate columns' zone
  // maps — the AND over every predicate of the query.
  const std::vector<ssb::PredicateRange> preds =
      options_.pushdown ? ssb::QueryPredicates(query)
                        : std::vector<ssb::PredicateRange>();
  auto tile_survives = [&](int64_t t) {
    for (const ssb::PredicateRange& pr : preds) {
      const codec::ZoneMap* zm = lineorder_.col(pr.col).zone_map.get();
      if (zm == nullptr || static_cast<size_t>(t) >= zm->num_tiles()) {
        continue;  // no index -> cannot prune, stay conservative
      }
      if (!zm->TileCanMatch(static_cast<size_t>(t), pr.lo, pr.hi)) {
        return false;
      }
    }
    return true;
  };

  for (ssb::LoCol col : ssb::QueryColumns(query)) {
    const codec::SystemColumn& sc = lineorder_.col(col);
    const uint32_t count = sc.size();
    const int64_t tiles = crystal::NumTiles(count);
    const codec::ColumnId col_id(static_cast<uint32_t>(col));

    // An empty column has no tiles to pin, upload or decompress — it would
    // otherwise fall into the miss path below (zero tiles can never be "all
    // resident") and run a pointless decompress of nothing.
    if (count == 0) {
      out.cols[static_cast<int>(col)] =
          codec::SystemEncode(codec::System::kNone, {});
      continue;
    }

    // Pin whatever is resident among the tiles the query can actually
    // touch; the column is served from the cache only if that is all of
    // them. Pruned tiles need no residency — the kernel never loads them.
    std::vector<TileCache::PinnedTile> col_pins;
    std::vector<int64_t> col_tiles;  // survivor tile ids, parallel to pins
    col_pins.reserve(static_cast<size_t>(tiles));
    bool all_resident = true;
    for (int64_t t = 0; t < tiles && all_resident; ++t) {
      if (!tile_survives(t)) continue;
      TileCache::PinnedTile pin = cache_.Peek(col_id, t);
      all_resident = pin.valid();
      if (all_resident) {
        col_tiles.push_back(t);
        col_pins.push_back(std::move(pin));
      }
    }

    std::vector<uint32_t> values;
    if (all_resident) {
      // Every reachable tile is cached: skip the decompress launch
      // entirely. The query kernel reads the tiles straight from the cache
      // (its loader hits count there); the host-side copy below only serves
      // as the loader's decode backstop and carries no modeled cost. What
      // the skip avoids reading is the column's encoded stream. Pruned
      // tiles stay zero-filled — the propagated zone map below guarantees
      // the kernel never reads them.
      values.assign(count, 0);
      for (size_t k = 0; k < col_pins.size(); ++k) {
        std::memcpy(values.data() +
                        static_cast<size_t>(col_tiles[k]) * crystal::kTileSize,
                    col_pins[k].data(), col_pins[k].count() * sizeof(uint32_t));
      }
      cache_.CreditSaved(sc.compressed_bytes());
      ++*decompress_skips;
      for (TileCache::PinnedTile& pin : col_pins) {
        pins->push_back(std::move(pin));
      }
    } else {
      // Decompress on this query's stream and insert every tile, pinned for
      // the duration of the query. The column-granularity fetch missed, so
      // account one miss per tile.
      col_pins.clear();
      if (options_.model_transfers) {
        // Upload the encoded stream first. A terminal transfer fault fails
        // the whole query cleanly — nothing decoded so far is wrong, it
        // just never arrived.
        const sim::Device::TransferResult xfer =
            dev_.TryTransfer(sc.compressed_bytes());
        if (!xfer.ok) {
          *status = QueryStatus::kTransferFailed;
          return out;
        }
      }
      kernels::DecompressRun run = codec::SystemDecompress(dev_, sc);
      // A failed launch inside the pipeline never ran its body: run.output
      // is incomplete. Fail the query before any tile of it can reach the
      // cache — this is the cache-poisoning guard.
      if (!run.ok) {
        *status = QueryStatus::kLaunchFailed;
        return out;
      }
      values = std::move(run.output);
      // Late materialization on the insert side too: only tiles the query
      // can reach are cached (and counted as misses) — pruned tiles never
      // displace hot data.
      //
      // Rebuild-cost hint for kCostAware: each tile carries its even share
      // of the whole pipeline's measured cost and of the column's encoded
      // footprint — rebuilding any one tile of a decompress-then-query
      // column means re-running the column's pipeline.
      TileCost cost;
      cost.decode_cost = std::max<uint64_t>(
          1, sim::BlockCostProxy(run.stats) / static_cast<uint64_t>(tiles));
      cost.encoded_bytes =
          sc.compressed_bytes() / static_cast<uint64_t>(tiles);
      uint64_t misses = 0;
      for (int64_t t = 0; t < tiles; ++t) {
        if (!tile_survives(t)) continue;
        ++misses;
        const uint32_t n = std::min<uint32_t>(
            crystal::kTileSize,
            count - static_cast<uint32_t>(t) * crystal::kTileSize);
        TileCache::PinnedTile pin = cache_.Insert(
            col_id, t,
            values.data() + static_cast<size_t>(t) * crystal::kTileSize, n,
            nullptr, cost);
        if (pin.valid()) pins->push_back(std::move(pin));
      }
      cache_.CountMisses(misses);
    }
    codec::SystemColumn materialized =
        codec::SystemEncode(codec::System::kNone, values);
    // Hand the stored column's zone map to the materialized copy. The
    // all-resident path leaves pruned tiles zero-filled, and a zone map
    // built from those zeros could claim a pruned tile matches a predicate
    // — the kernel would then aggregate fabricated values. With the
    // original map, kernel-side pruning is exactly as strong as the
    // server-side decision that skipped those tiles, so they are never
    // read.
    if (sc.zone_map != nullptr) {
      materialized.zone_map = sc.zone_map;
      materialized.column.set_zone_map(sc.zone_map);
    }
    out.cols[static_cast<int>(col)] = std::move(materialized);
  }
  return out;
}

void Server::Prewarm(const std::vector<ssb::QueryId>& queries) {
  for (ssb::QueryId q : queries) runner_.Prewarm(dev_, q);
  dev_.DeviceSynchronize();
}

void AggregateLatencies(const load::WorkloadSpec& spec, ServeReport* report) {
  report->failed_queries = 0;
  report->shed_queries = 0;
  report->admission.deadline_missed = 0;
  report->admission.deadline_missed_by_class = {};
  std::vector<double> service;
  std::vector<double> e2e;
  std::array<std::vector<double>, load::kNumClasses> class_e2e;
  std::array<ClassReport, load::kNumClasses> classes = {};
  service.reserve(report->queries.size());
  e2e.reserve(report->queries.size());

  for (ServedQuery& sq : report->queries) {
    const size_t c = static_cast<size_t>(sq.cls);
    ++classes[c].offered;
    sq.e2e_ms = sq.finish_ms - sq.arrival_ms;
    if (sq.status == QueryStatus::kShed) {
      ++report->shed_queries;
      ++classes[c].shed;
      continue;
    }
    // Queued time is *excluded* from the service-time percentiles and
    // *included* in the end-to-end ones — conflating them would let
    // admission queueing masquerade as slow kernels (or vice versa).
    service.push_back(sq.latency_ms);
    e2e.push_back(sq.e2e_ms);
    if (sq.status != QueryStatus::kOk) {
      ++report->failed_queries;
      ++classes[c].failed;
      continue;
    }
    ++classes[c].ok;
    class_e2e[c].push_back(sq.e2e_ms);
    const double deadline = spec.spec_of(sq.cls).deadline_ms;
    sq.deadline_missed = deadline > 0.0 && sq.e2e_ms > deadline;
    if (sq.deadline_missed) {
      ++classes[c].deadline_missed;
      ++report->admission.deadline_missed;
      ++report->admission.deadline_missed_by_class[c];
    }
  }

  report->p50_latency_ms = NearestRankPercentile(service, 50);
  report->p95_latency_ms = NearestRankPercentile(service, 95);
  report->p99_latency_ms = NearestRankPercentile(service, 99);
  report->p50_e2e_ms = NearestRankPercentile(e2e, 50);
  report->p95_e2e_ms = NearestRankPercentile(e2e, 95);
  report->p99_e2e_ms = NearestRankPercentile(e2e, 99);
  for (size_t c = 0; c < load::kNumClasses; ++c) {
    classes[c].p50_e2e_ms = NearestRankPercentile(class_e2e[c], 50);
    classes[c].p99_e2e_ms = NearestRankPercentile(class_e2e[c], 99);
    classes[c].slo_p99_ms =
        spec.classes[c].slo_p99_ms;
    classes[c].slo_met = classes[c].slo_p99_ms <= 0.0 ||
                         class_e2e[c].empty() ||
                         classes[c].p99_e2e_ms <= classes[c].slo_p99_ms;
  }
  report->classes = classes;
}

void Server::RunQueryOnStream(ssb::QueryId query, sim::StreamId stream,
                              uint64_t* decompress_skips, ServedQuery* sq) {
  sim::StreamGuard guard(dev_, stream);
  sq->query = query;
  sq->stream = stream;
  sq->admit_ms = dev_.stream_tail_ms(stream);
  // This query's slice of the launch log, for the launch-failure scan.
  const size_t q_log_start = dev_.launch_log().size();
  // Close the previous access round and speculate ahead of this query.
  // The prefetch launches go to the prefetcher's own streams (inside the
  // slice, so this query's report carries their counters) but their
  // fate never affects the query's status — see the label check below.
  if (prefetcher_ != nullptr) prefetcher_->IssueRound();
  if (decompress_system() && options_.use_cache) {
    std::vector<TileCache::PinnedTile> pins;
    ssb::EncodedLineorder materialized =
        MaterializeColumns(query, &pins, decompress_skips, &sq->status);
    // The query kernel reads resident tiles straight from the cache; the
    // materialized copy is only the loader's miss backstop. A query whose
    // materialization already failed is not run at all.
    if (sq->status == QueryStatus::kOk) {
      sq->result =
          runner_.Run(dev_, materialized, query, &loader_, options_.pushdown);
    }
    // `pins` release here, after the query's launches are issued.
  } else {
    crystal::ColumnAccessor* accessor =
        options_.use_cache && !decompress_system() ? &loader_ : nullptr;
    sq->result =
        runner_.Run(dev_, lineorder_, query, accessor, options_.pushdown);
  }
  // Any launch of this query that exhausted its attempt budget never ran
  // its body — the query's aggregates are unusable. Speculative prefetch
  // launches are exempt: a failed speculation costs only the speculation
  // (counted wasted by the prefetcher), never the query's correctness.
  const std::vector<sim::KernelResult>& qlog = dev_.launch_log();
  for (size_t j = q_log_start; j < qlog.size(); ++j) {
    sq->prefetch += qlog[j].stats.prefetch;
    const bool is_prefetch = qlog[j].label.rfind("prefetch.", 0) == 0;
    if (qlog[j].failed && !is_prefetch && sq->status == QueryStatus::kOk) {
      sq->status = QueryStatus::kLaunchFailed;
    }
  }
  // Always consume the loader's sticky flag so a decode failure in this
  // query can never leak into the next one's status.
  const bool decode_failed = loader_.TakeDecodeFailure();
  if (decode_failed && sq->status == QueryStatus::kOk) {
    sq->status = QueryStatus::kDecodeFailed;
  }
  sq->finish_ms = dev_.stream_tail_ms(stream);
  sq->latency_ms = sq->finish_ms - sq->admit_ms;
}

ServeReport Server::Serve(const std::vector<ssb::QueryId>& batch) {
  ServeReport report;
  const double t0 = dev_.elapsed_ms();
  const size_t log_start = dev_.launch_log().size();
  const size_t max_concurrent = static_cast<size_t>(
      options_.max_concurrent > 0 ? options_.max_concurrent
                                  : options_.num_streams);

  std::vector<sim::Event> done(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const sim::StreamId stream = streams_[i % streams_.size()];
    // Admission control: at most `max_concurrent` queries in flight. Query i
    // may not start before query i - max_concurrent has finished.
    if (i >= max_concurrent) {
      dev_.StreamWaitEvent(stream, done[i - max_concurrent]);
    }
    ServedQuery sq;
    sq.request_id = static_cast<uint64_t>(i);
    RunQueryOnStream(batch[i], stream, &report.decompress_skips, &sq);
    // A fixed batch has no arrival process: every query is "offered" the
    // moment its stream picks it up, so e2e == service and queue_ms == 0.
    sq.cls = load::ClassOf(batch[i]);
    sq.arrival_ms = sq.admit_ms;
    done[i] = dev_.RecordEvent(stream);
    report.queries.push_back(std::move(sq));
  }

  report.makespan_ms = dev_.DeviceSynchronize() - t0;

  const std::vector<sim::KernelResult>& log = dev_.launch_log();
  for (size_t i = log_start; i < log.size(); ++i) {
    report.global_bytes_read += log[i].stats.global_bytes_read;
    report.pushdown += log[i].stats.pushdown;
    report.prefetch += log[i].stats.prefetch;
  }
  report.cache = cache_.stats();
  if (options_.fault_plan != nullptr) {
    report.faults = options_.fault_plan->stats();
  }
  AggregateLatencies(load::WorkloadSpec(), &report);
  return report;
}

ServeReport Server::ServeLoad(load::Workload& workload) {
  ServeReport report;
  // The serving epoch: everything before this call (prewarm, prior batches)
  // has drained; arrivals are offsets from here. Report times are
  // epoch-relative, trace spans absolute (to line up with kernel spans).
  const double t0 = dev_.DeviceSynchronize();
  const size_t log_start = dev_.launch_log().size();
  // One service slot per stream, bounded by max_concurrent: each in-flight
  // query owns its stream, so its service starts the instant its slot
  // frees — the admission clock and the stream clock agree exactly.
  const size_t slots = std::min(
      streams_.size(),
      static_cast<size_t>(options_.max_concurrent > 0 ? options_.max_concurrent
                                                      : options_.num_streams));
  AdmissionQueue adm(options_.admission, workload.spec(),
                     static_cast<int>(slots));

  // Discrete-event state. Arrivals ordered by (time, id); in-flight
  // completions by (finish, id). Completions at time t are processed before
  // arrivals at time t, so a slot freed "now" admits a request arriving
  // "now" instead of shedding it.
  struct Arrival {
    double t = 0.0;
    load::Request req;
    bool operator>(const Arrival& o) const {
      if (t != o.t) return t > o.t;
      return req.id > o.req.id;
    }
  };
  struct Completion {
    double t = 0.0;  // epoch-relative finish
    load::Request req;
    size_t stream_idx = 0;  // index into streams_[0..slots)
    size_t query_idx = 0;   // index into report.queries
    bool operator>(const Completion& o) const {
      if (t != o.t) return t > o.t;
      return req.id > o.req.id;
    }
  };
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>>
      arrivals;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      inflight;
  std::vector<bool> stream_busy(slots, false);

  for (const load::Request& r : workload.InitialRequests()) {
    arrivals.push({r.arrival_ms, r});
  }

  auto emit_span = [&](const ServedQuery& sq, const load::Request& req,
                       double admit_rel) {
    sim::QueryTraceInfo info;
    info.label = ssb::QueryName(req.query);
    info.stream_id = sq.stream;
    info.request_id = req.id;
    info.arrival_ms = t0 + req.arrival_ms;
    info.admit_ms = t0 + admit_rel;
    info.start_ms = t0 + sq.admit_ms;
    info.finish_ms = t0 + sq.finish_ms;
    info.cls = load::QueryClassName(req.cls);
    info.status = QueryStatusName(sq.status);
    dev_.EmitQuerySpan(info);
  };

  // Record one shed request: no device work, no result, e2e covers only the
  // time it sat in the queue (zero when shed on arrival).
  auto record_shed = [&](const load::Request& req, double now,
                         double queue_ms) {
    ServedQuery sq;
    sq.query = req.query;
    sq.stream = -1;
    sq.status = QueryStatus::kShed;
    sq.request_id = req.id;
    sq.cls = req.cls;
    sq.user = req.user;
    sq.arrival_ms = req.arrival_ms;
    sq.queue_ms = queue_ms;
    sq.admit_ms = now;
    sq.finish_ms = now;
    emit_span(sq, req, now);
    report.queries.push_back(std::move(sq));
    // The issuer sees the error now and moves on (closed loop: the user's
    // next request is released after think time).
    for (const load::Request& next : workload.OnComplete(req, now)) {
      arrivals.push({next.arrival_ms, next});
    }
  };

  // Start service for an admitted request at epoch-relative `start_rel` on
  // the lowest-numbered free stream. The stream is free precisely because
  // its previous query finished at or before `start_rel`, so the fabricated
  // wait event lands the stream tail exactly at the start time.
  auto start_service = [&](const load::Request& req, double start_rel,
                           double queue_ms) {
    size_t stream_idx = slots;
    for (size_t s = 0; s < slots; ++s) {
      if (!stream_busy[s]) {
        stream_idx = s;
        break;
      }
    }
    TILECOMP_CHECK(stream_idx < slots);
    stream_busy[stream_idx] = true;
    const sim::StreamId stream = streams_[stream_idx];
    dev_.StreamWaitEvent(stream, sim::Event{t0 + start_rel});

    ServedQuery sq;
    sq.request_id = req.id;
    sq.cls = req.cls;
    sq.user = req.user;
    sq.arrival_ms = req.arrival_ms;
    sq.queue_ms = queue_ms;
    RunQueryOnStream(req.query, stream, &report.decompress_skips, &sq);
    sq.admit_ms -= t0;
    sq.finish_ms -= t0;
    emit_span(sq, req, start_rel);  // admit == service start in this model
    inflight.push({sq.finish_ms, req, stream_idx, report.queries.size()});
    report.queries.push_back(std::move(sq));
  };

  while (!arrivals.empty() || !inflight.empty()) {
    const bool take_completion =
        !inflight.empty() &&
        (arrivals.empty() || inflight.top().t <= arrivals.top().t);
    if (take_completion) {
      const Completion done = inflight.top();
      inflight.pop();
      stream_busy[done.stream_idx] = false;
      // Release the slot; the highest-priority waiter (if any) takes it
      // immediately at this completion's time.
      load::Request next;
      double wait_ms = 0.0;
      const bool popped = adm.OnComplete(done.t, &next, &wait_ms);
      // The issuer reacts to the finish (closed loop: think, then re-issue).
      for (const load::Request& r :
           workload.OnComplete(done.req, done.t)) {
        arrivals.push({r.arrival_ms, r});
      }
      if (popped) start_service(next, done.t, wait_ms);
      continue;
    }
    const Arrival arr = arrivals.top();
    arrivals.pop();
    const AdmissionQueue::Decision decision = adm.Offer(arr.req, arr.t);
    switch (decision.outcome) {
      case AdmissionQueue::Outcome::kStart:
        start_service(arr.req, arr.t, 0.0);
        break;
      case AdmissionQueue::Outcome::kQueued:
        // Nothing to do now — the request starts when a slot frees. A
        // displaced lower-priority waiter is shed here, at the moment of
        // displacement.
        if (decision.shed_victim) {
          record_shed(decision.victim, arr.t, decision.victim_queue_ms);
        }
        break;
      case AdmissionQueue::Outcome::kShed:
        record_shed(arr.req, arr.t, 0.0);
        break;
    }
  }

  report.makespan_ms = dev_.DeviceSynchronize() - t0;
  report.admission = adm.stats();

  const std::vector<sim::KernelResult>& log = dev_.launch_log();
  for (size_t i = log_start; i < log.size(); ++i) {
    report.global_bytes_read += log[i].stats.global_bytes_read;
    report.pushdown += log[i].stats.pushdown;
    report.prefetch += log[i].stats.prefetch;
  }
  report.cache = cache_.stats();
  if (options_.fault_plan != nullptr) {
    report.faults = options_.fault_plan->stats();
  }
  // Canonical order: by request id, so two runs of the same schedule are
  // directly comparable row by row.
  std::sort(report.queries.begin(), report.queries.end(),
            [](const ServedQuery& a, const ServedQuery& b) {
              return a.request_id < b.request_id;
            });
  AggregateLatencies(workload.spec(), &report);
  return report;
}

}  // namespace tilecomp::serve
