// Query-serving layer: admits a batch of SSB queries across async device
// streams, routing every fact-column tile load through the decompressed-tile
// cache (tile_cache.h).
//
// Two cache integration points, matching the two query pipelines:
//
//   * Inline systems (None / GPU-*): the query kernel's per-tile loads go
//     through CachedTileLoader — a hit reads the cached decoded tile from
//     (modeled) global memory instead of re-running the inline decode; a
//     miss decodes and inserts. Hits trade decode compute / shared-memory
//     staging for a plain coalesced read.
//
//   * Decompress-then-query systems (GPU-BP / nvCOMP / Planner): the server
//     checks residency per column before launching the system's decompress
//     pipeline. If every tile of the column is cached the decompress launch
//     is skipped entirely and the query kernel reads the cached tiles
//     through CachedTileLoader — this is where the cache pays off most,
//     since these systems otherwise re-decompress whole columns (including
//     every cascade intermediate) on every query.
//
// Predicate pushdown threads through both points. The query kernel asks its
// accessor to evaluate fact predicates per tile (EvaluateOnTile answers from
// a resident decoded tile when it can, from zone maps and encoded structure
// otherwise), and MaterializeColumns consults the stored columns' zone maps
// to skip tiles no predicate can reach — those tiles need no residency, no
// decompress accounting, and never enter the cache.
//
// Scheduling: queries are assigned round-robin to N async streams, with at
// most `max_concurrent` queries admitted at once (modeled with stream-wait
// events, like a real admission-control semaphore).
//
// Loaded serving (ServeLoad): instead of a fixed batch, the server drives a
// load::Workload — requests arrive on the simulated clock, pass through the
// bounded priority AdmissionQueue (admission.h), and either start on a free
// stream, wait (queueing delay, measured separately from service time), or
// are shed with QueryStatus::kShed. Shed requests never touch the device,
// the cache or the fault plan, so a schedule with its shed requests removed
// replays bit-identically — the shed-invariance property bench_slo enforces.
#ifndef TILECOMP_SERVE_SERVER_H_
#define TILECOMP_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "crystal/load_column.h"
#include "fault/fault.h"
#include "load/load_gen.h"
#include "serve/admission.h"
#include "serve/prefetcher.h"
#include "serve/tile_cache.h"
#include "sim/device.h"
#include "sim/stats.h"
#include "ssb/queries.h"

namespace tilecomp::serve {

// Per-query outcome under fault injection. Everything except kOk means the
// query's result must be discarded — the server degrades to a clean error
// status, never to a wrong answer.
enum class QueryStatus {
  kOk = 0,
  kTransferFailed,  // a column upload exhausted its transfer attempts
  kLaunchFailed,    // a kernel launch exhausted its issue attempts
  kDecodeFailed,    // a tile decode exhausted its attempts (output zeroed)
  kShed,            // dropped by admission control; never entered service
};

const char* QueryStatusName(QueryStatus status);

// Tile-load strategy backed by a TileCache. Safe for concurrent use from
// kernel-body host threads; cache hit/miss/eviction counts are recorded on
// the calling block's stats, so they surface on the kernel's telemetry span.
//
// With a fault plan attached, two injection points fire here:
//   * poisoned tile (kTileDecode on a hit): the cached copy is treated as
//     corrupt — the entry is invalidated so it can never be served again,
//     and the loader falls through to a fresh decode + re-insert;
//   * decode fault (kTileDecode on a miss): the decode re-runs up to the
//     plan's attempt budget; on terminal failure the output tile is zeroed
//     and a sticky per-batch flag is raised (TakeDecodeFailure) so the
//     server can fail the query cleanly instead of serving garbage.
class CachedTileLoader : public crystal::ColumnAccessor {
 public:
  explicit CachedTileLoader(TileCache* cache,
                            fault::FaultPlan* fault_plan = nullptr)
      : cache_(cache), fault_plan_(fault_plan) {}

  uint32_t LoadTile(sim::BlockContext& ctx,
                    const codec::CompressedColumn& column,
                    codec::ColumnId column_id, int64_t tile_id,
                    uint32_t* out_tile) override;

  // Answer a predicate from the cached decoded tile when resident (a plain
  // coalesced read, no zone-map reasoning needed), falling back to the
  // compressed-domain evaluator otherwise. Deliberately side-effect free on
  // the cache: no hit/miss counters, no replacement-order touch, no fault
  // consults (a poison draw here would yield a silently wrong mask instead
  // of a recoverable decode error), and never an insert — tiles the mask
  // kills are never materialized.
  uint32_t EvaluateOnTile(sim::BlockContext& ctx,
                          const codec::CompressedColumn& column,
                          codec::ColumnId column_id, int64_t tile_id,
                          const crystal::TilePredicate& pred,
                          crystal::TileMask* mask) override;

  void set_fault_plan(fault::FaultPlan* plan) { fault_plan_ = plan; }

  // Optional prefetcher to feed with the demand tile-access sequence (not
  // owned; nullptr to detach). Every LoadTile reports its (column, tile) so
  // the prefetcher can classify the access pattern.
  void set_prefetcher(Prefetcher* prefetcher) { prefetcher_ = prefetcher; }

  // True if any tile decode failed terminally since the last call; clears
  // the flag. The server calls this once per query.
  bool TakeDecodeFailure() {
    return decode_failed_.exchange(false, std::memory_order_relaxed);
  }

 private:
  TileCache* cache_;
  fault::FaultPlan* fault_plan_ = nullptr;
  Prefetcher* prefetcher_ = nullptr;
  std::atomic<bool> decode_failed_{false};
};

// Estimated encoded footprint of one tile of `column` — what a cache hit
// saves reading (the whole-column footprint spread evenly over its tiles).
uint64_t TileEncodedBytes(const codec::CompressedColumn& column);

// Nearest-rank percentile of `samples` (need not be sorted): the smallest
// sample such that at least q_pct percent of all samples are <= it, i.e.
// sorted index ceil(q_pct/100 * n) - 1. Returns 0 for an empty set.
// Computed with integer arithmetic so the rank is exact — a floored rank
// (the old (n-1)*95/100) reads the ~85th percentile for n = 10.
double NearestRankPercentile(std::vector<double> samples, int q_pct);

struct ServeOptions {
  int num_streams = 4;
  // Admission limit: queries in flight at once (<= 0 means num_streams).
  int max_concurrent = 0;
  uint64_t cache_budget_bytes = 64ull << 20;
  EvictionPolicy policy = EvictionPolicy::kLru;
  // false: bypass the cache entirely (baseline for the bench comparisons).
  bool use_cache = true;
  // Compressed-domain predicate pushdown: the query kernel evaluates fact
  // predicates per tile before loading anything, and MaterializeColumns
  // prunes tiles the stored columns' zone maps rule out. One flag gates
  // both sides so the server's pruning decision always agrees with the
  // kernel's — a tile skipped here is provably skipped there too.
  bool pushdown = true;
  // Optional fault plan (not owned). The server attaches it to the device,
  // the cache and its tile loader, and degrades gracefully at every site:
  // failed queries carry a non-kOk status instead of aborting or returning
  // wrong data. nullptr = no faults, behavior identical to before.
  fault::FaultPlan* fault_plan = nullptr;
  // Model the PCIe upload of each column's encoded stream on the query's
  // stream before its decompress launch (decompress-then-query systems
  // only). Off by default to keep the serving numbers comparable with the
  // pre-fault benchmarks; bench_faults turns it on to exercise the transfer
  // fault site.
  bool model_transfers = false;
  // Speculative tile prefetching (prefetcher.h). Off by default; when
  // enabled the server runs one prefetch round between query admissions and
  // the loader feeds the prefetcher its demand access sequence. Requires
  // use_cache — prefetching stages tiles in the cache.
  PrefetchOptions prefetch;
  // Keep each query's dimension hash tables device-resident across the
  // batch (ssb::QueryRunner::set_reuse_prepared): the first execution of a
  // query pays the hash.build kernels, repeats skip them. The build side
  // depends only on the replicated dimension tables, so results are
  // unchanged. Off by default to keep single-query latencies comparable
  // with the pre-cluster benchmarks; the cluster scheduler turns it on.
  bool reuse_hash_tables = false;
  // Admission policy + queue bound for ServeLoad (ignored by fixed-batch
  // Serve, which admits everything in order).
  AdmissionOptions admission;
};

struct ServedQuery {
  ssb::QueryId query = ssb::QueryId::kQ11;
  int stream = 0;
  double admit_ms = 0.0;   // stream-timeline position at service start
  double finish_ms = 0.0;  // stream-timeline position at completion
  // Service time only: admit -> finish. Queueing delay is `queue_ms`.
  double latency_ms = 0.0;
  // kOk: `result` is valid and bit-exact. Anything else: an injected fault
  // exhausted its recovery budget (or admission shed the query) and
  // `result` must be ignored.
  QueryStatus status = QueryStatus::kOk;
  ssb::QueryResult result;
  // Speculative-prefetch counters summed over this query's launch-log slice
  // (the prefetch round issued ahead of it plus its own kernels).
  sim::PrefetchCounters prefetch;

  // --- Loaded serving (ServeLoad); fixed-batch Serve fills the request id
  // with the batch index and leaves arrival == admit (queue_ms = 0).
  uint64_t request_id = 0;
  load::QueryClass cls = load::QueryClass::kStandard;
  int user = -1;             // issuing closed-loop user, -1 otherwise
  double arrival_ms = 0.0;   // offered time on the serving clock
  double queue_ms = 0.0;     // admission-queue wait: arrival -> service start
  double e2e_ms = 0.0;       // arrival -> finish (= queue_ms + latency_ms)
  bool deadline_missed = false;  // e2e exceeded the class deadline (ok only)
};

// Per-priority-class slice of a serving run. `p99_e2e_ms` is over ok
// queries' end-to-end latencies; `slo_met` compares it against the
// workload's per-class target (vacuously true with no target or no ok
// queries).
struct ClassReport {
  uint64_t offered = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;  // non-ok, non-shed (injected faults)
  uint64_t deadline_missed = 0;
  double p50_e2e_ms = 0.0;
  double p99_e2e_ms = 0.0;
  double slo_p99_ms = 0.0;  // from the WorkloadSpec; 0 = no target
  bool slo_met = true;
};

struct ServeReport {
  std::vector<ServedQuery> queries;
  double makespan_ms = 0.0;
  // Nearest-rank percentiles over per-query *service* latency (admit ->
  // finish, shed queries excluded): index ceil(q*n) - 1 of the sorted
  // latencies (so p95 of 10 queries reads the 10th, not the 9th).
  // Admission-queue wait is deliberately excluded here — it lands in the
  // end-to-end percentiles below — so service-time percentiles stay
  // comparable between fixed-batch and loaded serving.
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  // Nearest-rank percentiles over end-to-end latency (arrival -> finish =
  // queue wait + service, shed queries excluded). Equal to the service
  // percentiles whenever nothing queued.
  double p50_e2e_ms = 0.0;
  double p95_e2e_ms = 0.0;
  double p99_e2e_ms = 0.0;
  // Cache counters over the whole batch (all-zero with use_cache = false).
  TileCache::Stats cache;
  // Column decompress launches skipped because every tile was resident
  // (decompress-then-query systems only).
  uint64_t decompress_skips = 0;
  // Total modeled global-memory bytes read by the batch's kernels.
  uint64_t global_bytes_read = 0;
  // Pushdown counters summed over the batch's kernels (all-zero with
  // pushdown disabled).
  sim::PushdownCounters pushdown;
  // Speculative-prefetch counters summed over the batch's kernels
  // (all-zero with prefetch disabled).
  sim::PrefetchCounters prefetch;
  // Queries whose status is neither kOk nor kShed (always 0 without a
  // fault plan).
  uint64_t failed_queries = 0;
  // Queries dropped by admission control (always 0 for fixed-batch Serve).
  uint64_t shed_queries = 0;
  // Exact admission counters (offered/queued/shed/deadline-missed) for
  // ServeLoad; all-zero for fixed-batch Serve.
  AdmissionStats admission;
  // Per-priority-class breakdown, indexed by load::QueryClass.
  std::array<ClassReport, load::kNumClasses> classes;
  // Snapshot of the fault plan's counters after the batch (all-zero
  // without a plan).
  fault::FaultStats faults;
};

// Recompute every latency-derived field of `report` from its queries:
// service and end-to-end percentiles (shed excluded), per-class breakdown,
// deadline misses (per-query flags + admission counters), and the
// failed/shed totals. Both Serve and ServeLoad end with this; it is a free
// function so the regression tests can pin it on hand-built timelines.
void AggregateLatencies(const load::WorkloadSpec& spec, ServeReport* report);

class Server {
 public:
  // `data` and `lineorder` must outlive the server.
  Server(sim::Device& dev, const ssb::SsbData& data,
         const ssb::EncodedLineorder& lineorder, ServeOptions options);

  // Serve `batch` in order. Per-query latency is measured on the query's
  // stream; the makespan is the device synchronize at the end.
  ServeReport Serve(const std::vector<ssb::QueryId>& batch);

  // Drive `workload` on the simulated clock: a discrete-event loop over
  // arrivals and completions, with the bounded priority AdmissionQueue
  // (options.admission) in front of the streams. Every offered request is
  // reported (shed ones with status kShed and no result); report times are
  // relative to the call (arrival 0 = serving start), and queries are
  // ordered by request id. Emits one trace query span per offered request
  // when a tracer is attached (schema v9). The workload is left consumed —
  // call workload.Reset() to replay it.
  ServeReport ServeLoad(load::Workload& workload);

  // Build each query's dimension hash tables now so later Serve calls skip
  // them (a no-op unless options.reuse_hash_tables). The build kernels run
  // on the device timeline at the call point; the cluster scheduler calls
  // this at placement time, before its serving clock starts.
  void Prewarm(const std::vector<ssb::QueryId>& queries);

  const TileCache& cache() const { return cache_; }
  const ssb::QueryRunner& runner() const { return runner_; }
  // nullptr unless options.prefetch.enabled (and the cache is in use).
  const Prefetcher* prefetcher() const { return prefetcher_.get(); }

 private:
  // Decompress-then-query path: return `lineorder_`'s query columns as a
  // kNone-encoded table, serving fully resident columns from the cache
  // (skipping their decompress launches) and decompressing + inserting the
  // rest. `pins` holds every touched tile pinned until the query finishes.
  // Sets *status (and returns early) when an injected transfer or launch
  // fault exhausts its attempt budget.
  ssb::EncodedLineorder MaterializeColumns(
      ssb::QueryId query, std::vector<TileCache::PinnedTile>* pins,
      uint64_t* decompress_skips, QueryStatus* status);

  // Issue one query's full pipeline (prefetch round, materialization, query
  // kernels, fault scans) on `stream`, filling sq->admit/finish/latency
  // (absolute device time) and sq->status. Shared by Serve and ServeLoad.
  void RunQueryOnStream(ssb::QueryId query, sim::StreamId stream,
                        uint64_t* decompress_skips, ServedQuery* sq);

  bool decompress_system() const {
    return lineorder_.system == codec::System::kGpuBp ||
           lineorder_.system == codec::System::kNvcomp ||
           lineorder_.system == codec::System::kPlanner;
  }

  sim::Device& dev_;
  const ssb::EncodedLineorder& lineorder_;
  ServeOptions options_;
  ssb::QueryRunner runner_;
  TileCache cache_;
  CachedTileLoader loader_;
  std::unique_ptr<Prefetcher> prefetcher_;
  std::vector<sim::StreamId> streams_;
};

}  // namespace tilecomp::serve

#endif  // TILECOMP_SERVE_SERVER_H_
