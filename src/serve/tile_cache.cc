#include "serve/tile_cache.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/macros.h"

namespace tilecomp::serve {

namespace {

// kCostAware tuning. The victim window bounds the ranking scan to the
// coldest unpinned entries (recency pre-filters; cost ranks within). The
// ghost step is the ARC adaptation increment per ghost hit: 16 consecutive
// one-sided ghost hits swing the weight across its full range.
constexpr size_t kVictimWindow = 8;
constexpr double kGhostStep = 1.0 / 16.0;

}  // namespace

// Tile ids index 512-value tiles of a uint32-count column, so they fit in
// 32 bits with room to spare; pack (column, tile) into one map key. An
// out-of-range id would silently alias another column's key and serve its
// data, so this stays a release-mode check — the callers are query-supplied
// paths, not hot inner loops.
uint64_t TileCache::MakeKey(codec::ColumnId column_id, int64_t tile_id) {
  TILECOMP_CHECK_MSG(tile_id >= 0 && tile_id < (int64_t{1} << 32),
                     "tile_id out of the 32-bit key range");
  return (static_cast<uint64_t>(column_id.value()) << 32) |
         static_cast<uint64_t>(tile_id);
}

struct TileCacheEntry {
  uint64_t key = 0;
  std::vector<uint32_t> values;
  uint32_t pins = 0;
  bool referenced = false;   // clock second-chance bit
  bool zombie = false;       // invalidated while pinned; freed at last unpin
  bool speculative = false;  // staged by the prefetcher, no demand hit yet
  bool prefetched = false;   // sticky origin flag for hit attribution
  uint64_t hit_count = 0;    // demand hits (kCostAware frequency signal)
  uint64_t decode_cost = 1;
  uint64_t encoded_bytes = 0;
  // Mutable-column tile generation the decode observed (0: immutable).
  uint64_t generation = 0;
  std::list<TileCacheEntry*>::iterator pos;

  uint64_t bytes() const { return values.size() * sizeof(uint32_t); }
};

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kClock:
      return "clock";
    case EvictionPolicy::kCostAware:
      return "cost";
  }
  return "?";
}

// --- PinnedTile ---

TileCache::PinnedTile& TileCache::PinnedTile::operator=(
    PinnedTile&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    entry_ = other.entry_;
    other.cache_ = nullptr;
    other.entry_ = nullptr;
  }
  return *this;
}

const uint32_t* TileCache::PinnedTile::data() const {
  TILECOMP_DCHECK(entry_ != nullptr);
  return entry_->values.data();
}

uint32_t TileCache::PinnedTile::count() const {
  TILECOMP_DCHECK(entry_ != nullptr);
  return static_cast<uint32_t>(entry_->values.size());
}

void TileCache::PinnedTile::Release() {
  if (entry_ != nullptr) {
    std::lock_guard<std::mutex> lock(cache_->mu_);
    cache_->UnpinLocked(entry_);
    cache_ = nullptr;
    entry_ = nullptr;
  }
}

// --- TileCache ---

TileCache::TileCache(uint64_t budget_bytes, EvictionPolicy policy)
    : budget_bytes_(budget_bytes),
      policy_(policy),
      hand_(order_.end()),
      ghost_capacity_(std::max<uint64_t>(
          64, budget_bytes / (512 * sizeof(uint32_t)))) {}

TileCache::~TileCache() {
  // Every pin must be released before the cache dies. A non-empty zombie
  // list means an invalidated entry still has live handles.
  for (const auto& [key, entry] : entries_) {
    TILECOMP_CHECK_MSG(entry->pins == 0,
                       "TileCache destroyed with live PinnedTile handles");
  }
  TILECOMP_CHECK_MSG(zombies_.empty(),
                     "TileCache destroyed with live PinnedTile handles");
}

TileCache::Entry* TileCache::FindLocked(codec::ColumnId column_id, int64_t tile_id) {
  auto it = entries_.find(MakeKey(column_id, tile_id));
  return it == entries_.end() ? nullptr : it->second.get();
}

void TileCache::TouchLocked(Entry* entry) {
  if (policy_ == EvictionPolicy::kClock) {
    entry->referenced = true;
  } else {
    // LRU and cost-aware both keep the list in recency order: move to the
    // hot (back) end.
    order_.splice(order_.end(), order_, entry->pos);
  }
}

void TileCache::AdvanceHandOffLocked(Entry* entry) {
  // The hand must never be left on an element about to be unlinked. Erasing
  // the last element nudges the hand to order_.end(), which the sweep loop
  // in MakeRoomLocked wraps back to begin() — both states are valid.
  if (policy_ != EvictionPolicy::kClock) return;
  if (hand_ != order_.end() && hand_ == entry->pos) ++hand_;
}

void TileCache::RemoveLocked(Entry* entry, bool count_eviction) {
  TILECOMP_DCHECK(entry->pins == 0);
  AdvanceHandOffLocked(entry);
  order_.erase(entry->pos);
  stats_.bytes_in_use -= entry->bytes();
  if (count_eviction) ++stats_.evictions;
  // A speculative entry leaving residency before any demand hit means the
  // prefetch that staged it never paid off.
  if (entry->speculative) ++stats_.prefetch_wasted;
  entries_.erase(entry->key);  // frees the entry
}

TileCache::Entry* TileCache::PickCostAwareVictimLocked() {
  Entry* best = nullptr;
  double best_score = 0.0;
  size_t considered = 0;
  for (auto it = order_.begin();
       it != order_.end() && considered < kVictimWindow; ++it) {
    Entry* e = *it;
    if (e->pins > 0) continue;
    // Tier 0: speculation that never saw a demand hit goes first, coldest
    // first — unused prefetch must never displace proven entries.
    if (e->speculative) return e;
    ++considered;
    // Rebuild cost per resident byte: what evicting this entry will cost
    // the next query that wants it, normalized by the room it frees.
    const double rebuild = static_cast<double>(e->decode_cost) *
                           static_cast<double>(e->encoded_bytes) /
                           static_cast<double>(e->bytes());
    // Hotness mixes the window recency rank (cold -> small) with the
    // saturating demand-hit count, weighted by the ghost-adapted p.
    const double recency =
        static_cast<double>(considered) / static_cast<double>(kVictimWindow);
    const double frequency =
        static_cast<double>(std::min<uint64_t>(e->hit_count, 15) + 1) / 16.0;
    const double score =
        rebuild * ((1.0 - frequency_weight_) * recency +
                   frequency_weight_ * frequency);
    if (best == nullptr || score < best_score) {
      best = e;
      best_score = score;
    }
  }
  return best;
}

void TileCache::GhostInsertLocked(GhostList* list, uint64_t key) {
  if (!list->keys.insert(key).second) return;
  list->fifo.push_back(key);
  while (list->keys.size() > ghost_capacity_ && !list->fifo.empty()) {
    list->keys.erase(list->fifo.front());
    list->fifo.pop_front();
  }
}

void TileCache::GhostRecordLocked(Entry* entry) {
  if (policy_ != EvictionPolicy::kCostAware) return;
  // Never-hit victims go to the recency ghost (B1): a miss on one of them
  // says we evicted fresh data too eagerly. Reused victims go to the
  // frequency ghost (B2): a miss there says hit counts deserved more
  // protection.
  GhostInsertLocked(entry->hit_count == 0 ? &ghost_recency_ : &ghost_frequency_,
                    entry->key);
}

void TileCache::GhostMissLocked(uint64_t key) {
  if (policy_ != EvictionPolicy::kCostAware) return;
  if (ghost_recency_.keys.erase(key) > 0) {
    frequency_weight_ = std::max(0.0, frequency_weight_ - kGhostStep);
  } else if (ghost_frequency_.keys.erase(key) > 0) {
    frequency_weight_ = std::min(1.0, frequency_weight_ + kGhostStep);
  }
}

bool TileCache::MakeRoomLocked(uint64_t needed, uint64_t* evictions) {
  const uint64_t before = stats_.evictions;
  if (needed > budget_bytes_) {
    if (evictions != nullptr) *evictions = 0;
    return false;
  }
  if (policy_ == EvictionPolicy::kLru) {
    // Scan cold -> hot, skipping pinned entries.
    auto it = order_.begin();
    while (stats_.bytes_in_use + needed > budget_bytes_ &&
           it != order_.end()) {
      Entry* victim = *it;
      ++it;
      if (victim->pins == 0) EvictLocked(victim);
    }
  } else if (policy_ == EvictionPolicy::kClock) {
    // Clock: each pass over the ring clears reference bits; an entry whose
    // bit is already clear (and that is unpinned) is evicted. Bounded by
    // two full sweeps — after one sweep every surviving candidate bit is
    // clear, so a second sweep either evicts or proves all pinned.
    size_t steps = 2 * order_.size();
    while (stats_.bytes_in_use + needed > budget_bytes_ && steps-- > 0 &&
           !order_.empty()) {
      if (hand_ == order_.end()) hand_ = order_.begin();
      Entry* candidate = *hand_;
      if (candidate->pins > 0) {
        ++hand_;
      } else if (candidate->referenced) {
        candidate->referenced = false;
        ++hand_;
      } else {
        // EvictLocked's AdvanceHandOffLocked moves the hand off the victim.
        EvictLocked(candidate);
      }
    }
  } else {
    // Cost-aware: rank a window of the coldest unpinned entries and evict
    // the cheapest-to-rebuild (speculative never-hit first), recording
    // capacity victims in the ghost lists for the recency/frequency
    // adaptation.
    while (stats_.bytes_in_use + needed > budget_bytes_) {
      Entry* victim = PickCostAwareVictimLocked();
      if (victim == nullptr) break;  // everything resident is pinned
      GhostRecordLocked(victim);
      EvictLocked(victim);
    }
  }
  if (evictions != nullptr) *evictions = stats_.evictions - before;
  return stats_.bytes_in_use + needed <= budget_bytes_;
}

void TileCache::UnpinLocked(Entry* entry) {
  TILECOMP_DCHECK(entry->pins > 0);
  --entry->pins;
  if (entry->pins == 0 && entry->zombie) {
    // Last handle to an invalidated entry: its storage can finally go.
    stats_.bytes_in_use -= entry->bytes();
    for (auto it = zombies_.begin(); it != zombies_.end(); ++it) {
      if (it->get() == entry) {
        zombies_.erase(it);
        break;
      }
    }
  }
}

TileCache::PinnedTile TileCache::Lookup(codec::ColumnId column_id, int64_t tile_id,
                                        uint64_t saved_encoded_bytes,
                                        LookupInfo* info) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindLocked(column_id, tile_id);
  if (entry == nullptr) {
    ++stats_.misses;
    GhostMissLocked(MakeKey(column_id, tile_id));
    return PinnedTile();
  }
  if (entry->prefetched) {
    ++stats_.prefetch_hits;
    if (info != nullptr) info->prefetch_hit = true;
  } else {
    ++stats_.hits;
  }
  if (entry->speculative) {
    // First demand hit on a staged tile: the speculation paid off. Promote
    // it to a regular resident so it is no longer first in line to evict.
    entry->speculative = false;
    ++stats_.prefetch_useful;
    if (info != nullptr) info->promoted = true;
  }
  ++entry->hit_count;
  stats_.saved_bytes += saved_encoded_bytes;
  TouchLocked(entry);
  ++entry->pins;
  return PinnedTile(this, entry);
}

bool TileCache::Contains(codec::ColumnId column_id, int64_t tile_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(MakeKey(column_id, tile_id)) != 0;
}

TileCache::PinnedTile TileCache::Peek(codec::ColumnId column_id, int64_t tile_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindLocked(column_id, tile_id);
  if (entry == nullptr) return PinnedTile();
  ++entry->pins;
  return PinnedTile(this, entry);
}

void TileCache::CreditSaved(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.saved_bytes += bytes;
}

TileCache::PinnedTile TileCache::Insert(codec::ColumnId column_id, int64_t tile_id,
                                        const uint32_t* values, uint32_t count,
                                        uint64_t* evictions, TileCost cost,
                                        uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (evictions != nullptr) *evictions = 0;
  // Generation floor: a decode that observed a pre-mutation extent must not
  // become resident, no matter how the insert raced the invalidation.
  auto floor = insert_floors_.find(MakeKey(column_id, tile_id));
  if (floor != insert_floors_.end() && generation < floor->second) {
    ++stats_.stale_refused;
    return PinnedTile();
  }
  if (Entry* existing = FindLocked(column_id, tile_id)) {
    // Another block inserted this tile first; pin the resident copy. If a
    // prefetch staged it but demand re-decoded anyway (possible when the
    // demand miss pre-dated the speculative insert), the speculation did
    // not pay off — demote the entry to a plain demand resident without
    // counting it useful.
    existing->speculative = false;
    existing->prefetched = false;
    ++existing->pins;
    return PinnedTile(this, existing);
  }
  const uint64_t bytes = static_cast<uint64_t>(count) * sizeof(uint32_t);
  // Injected faults: a device-memory allocation failure or a corrupted
  // insert. Both degrade to a refused insert — callers already handle that
  // (the tile is simply not cached; the caller keeps its own decoded copy).
  // Keyed draws so concurrent blocks inserting different tiles decide
  // deterministically regardless of interleaving.
  if (fault_plan_ != nullptr) {
    const uint64_t key = MakeKey(column_id, tile_id);
    if (fault_plan_->ShouldFault(fault::FaultSite::kDeviceAlloc, key) ||
        fault_plan_->ShouldFault(fault::FaultSite::kCacheInsert, key)) {
      ++stats_.insert_failures;
      return PinnedTile();
    }
  }
  if (!MakeRoomLocked(bytes, evictions)) {
    ++stats_.insert_failures;
    return PinnedTile();
  }
  auto entry = std::make_unique<Entry>();
  entry->key = MakeKey(column_id, tile_id);
  entry->values.assign(values, values + count);
  entry->pins = 1;
  entry->referenced = true;
  entry->decode_cost = cost.decode_cost;
  entry->encoded_bytes = cost.encoded_bytes;
  entry->generation = generation;
  Entry* raw = entry.get();
  order_.push_back(raw);
  raw->pos = std::prev(order_.end());
  entries_[raw->key] = std::move(entry);
  stats_.bytes_in_use += bytes;
  ++stats_.inserts;
  return PinnedTile(this, raw);
}

SpeculativeInsert TileCache::InsertSpeculative(codec::ColumnId column_id,
                                               int64_t tile_id,
                                               const uint32_t* values,
                                               uint32_t count, TileCost cost,
                                               uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  // Same staleness barrier as the demand path; a refused speculative decode
  // is also wasted prefetch work.
  auto floor = insert_floors_.find(MakeKey(column_id, tile_id));
  if (floor != insert_floors_.end() && generation < floor->second) {
    ++stats_.stale_refused;
    ++stats_.prefetch_wasted;
    return SpeculativeInsert::kRefused;
  }
  if (FindLocked(column_id, tile_id) != nullptr) {
    // The demand path (or an earlier prefetch round) got here first.
    ++stats_.prefetch_late;
    return SpeculativeInsert::kAlreadyResident;
  }
  // Same injection sites as the demand path, keyed identically; a faulted
  // speculative insert is dropped silently — nothing poisoned, nothing
  // cached — and the decode that fed it is wasted work.
  if (fault_plan_ != nullptr) {
    const uint64_t key = MakeKey(column_id, tile_id);
    if (fault_plan_->ShouldFault(fault::FaultSite::kDeviceAlloc, key) ||
        fault_plan_->ShouldFault(fault::FaultSite::kCacheInsert, key)) {
      ++stats_.insert_failures;
      ++stats_.prefetch_wasted;
      return SpeculativeInsert::kRefused;
    }
  }
  const uint64_t bytes = static_cast<uint64_t>(count) * sizeof(uint32_t);
  if (!MakeRoomLocked(bytes, nullptr)) {
    ++stats_.insert_failures;
    ++stats_.prefetch_wasted;
    return SpeculativeInsert::kRefused;
  }
  auto entry = std::make_unique<Entry>();
  entry->key = MakeKey(column_id, tile_id);
  entry->values.assign(values, values + count);
  entry->pins = 0;
  entry->referenced = false;  // clock: no second chance until a demand hit
  entry->speculative = true;
  entry->prefetched = true;
  entry->decode_cost = cost.decode_cost;
  entry->encoded_bytes = cost.encoded_bytes;
  entry->generation = generation;
  Entry* raw = entry.get();
  // Stage at the warm end: a predicted tile exists to be read by the NEXT
  // query, so it gets one replacement cycle of residency to prove itself —
  // staging cold would let each speculative insert's room-making evict the
  // previously staged tile the moment the cache is full (speculation
  // churning on itself, never surviving to a hit). Low priority is enforced
  // elsewhere: the cleared clock reference bit (no second chance until a
  // demand hit), the kCostAware victim scan taking never-hit speculative
  // entries first, and the wasted accounting when an unused entry ages out.
  order_.push_back(raw);
  raw->pos = std::prev(order_.end());
  entries_[raw->key] = std::move(entry);
  stats_.bytes_in_use += bytes;
  ++stats_.inserts;
  return SpeculativeInsert::kInserted;
}

void TileCache::CountMisses(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.misses += n;
}

void TileCache::CountPrefetchIssued(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.prefetch_issued += n;
}

void TileCache::CountPrefetchWasted(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.prefetch_wasted += n;
}

void TileCache::InvalidateEntryLocked(Entry* entry) {
  ++stats_.invalidations;
  if (entry->pins == 0) {
    RemoveLocked(entry, /*count_eviction=*/false);
    return;
  }
  // Pinned: unlink from the index and replacement order so no future probe
  // sees the poisoned data (and the key is free for a fresh insert), but
  // keep the storage alive for the handles already holding it.
  AdvanceHandOffLocked(entry);
  order_.erase(entry->pos);
  // A zombie can never be hit, so a still-speculative one is wasted now.
  if (entry->speculative) {
    entry->speculative = false;
    ++stats_.prefetch_wasted;
  }
  entry->zombie = true;
  auto it = entries_.find(entry->key);
  TILECOMP_DCHECK(it != entries_.end());
  zombies_.push_back(std::move(it->second));
  entries_.erase(it);
}

bool TileCache::Invalidate(codec::ColumnId column_id, int64_t tile_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindLocked(column_id, tile_id);
  if (entry == nullptr) return false;
  InvalidateEntryLocked(entry);
  return true;
}

bool TileCache::InvalidateStale(codec::ColumnId column_id, int64_t tile_id,
                                uint64_t min_generation) {
  std::lock_guard<std::mutex> lock(mu_);
  // Raise the insert floor first: from this point no decode tagged with an
  // older generation can become resident, closing the re-insert race that
  // plain Invalidate leaves open.
  uint64_t& floor = insert_floors_[MakeKey(column_id, tile_id)];
  floor = std::max(floor, min_generation);
  Entry* entry = FindLocked(column_id, tile_id);
  if (entry == nullptr || entry->generation >= min_generation) return false;
  InvalidateEntryLocked(entry);
  return true;
}

void TileCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = order_.begin();
  while (it != order_.end()) {
    Entry* entry = *it;
    ++it;
    if (entry->pins == 0) EvictLocked(entry);
  }
}

TileCache::Stats TileCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.entries = entries_.size();
  uint64_t speculative = 0;
  for (const Entry* entry : order_) {
    if (entry->speculative) ++speculative;
  }
  snapshot.speculative_entries = speculative;
  snapshot.ghost_recency_entries = ghost_recency_.keys.size();
  snapshot.ghost_frequency_entries = ghost_frequency_.keys.size();
  return snapshot;
}

double TileCache::frequency_weight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frequency_weight_;
}

}  // namespace tilecomp::serve
