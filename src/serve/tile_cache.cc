#include "serve/tile_cache.h"

#include <cstring>
#include <vector>

#include "common/macros.h"

namespace tilecomp::serve {

// Tile ids index 512-value tiles of a uint32-count column, so they fit in
// 32 bits with room to spare; pack (column, tile) into one map key. An
// out-of-range id would silently alias another column's key and serve its
// data, so this stays a release-mode check — the callers are query-supplied
// paths, not hot inner loops.
uint64_t TileCache::MakeKey(codec::ColumnId column_id, int64_t tile_id) {
  TILECOMP_CHECK_MSG(tile_id >= 0 && tile_id < (int64_t{1} << 32),
                     "tile_id out of the 32-bit key range");
  return (static_cast<uint64_t>(column_id.value()) << 32) |
         static_cast<uint64_t>(tile_id);
}

struct TileCacheEntry {
  uint64_t key = 0;
  std::vector<uint32_t> values;
  uint32_t pins = 0;
  bool referenced = false;  // clock second-chance bit
  bool zombie = false;      // invalidated while pinned; freed at last unpin
  std::list<TileCacheEntry*>::iterator pos;

  uint64_t bytes() const { return values.size() * sizeof(uint32_t); }
};

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kClock:
      return "clock";
  }
  return "?";
}

// --- PinnedTile ---

TileCache::PinnedTile& TileCache::PinnedTile::operator=(
    PinnedTile&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    entry_ = other.entry_;
    other.cache_ = nullptr;
    other.entry_ = nullptr;
  }
  return *this;
}

const uint32_t* TileCache::PinnedTile::data() const {
  TILECOMP_DCHECK(entry_ != nullptr);
  return entry_->values.data();
}

uint32_t TileCache::PinnedTile::count() const {
  TILECOMP_DCHECK(entry_ != nullptr);
  return static_cast<uint32_t>(entry_->values.size());
}

void TileCache::PinnedTile::Release() {
  if (entry_ != nullptr) {
    std::lock_guard<std::mutex> lock(cache_->mu_);
    cache_->UnpinLocked(entry_);
    cache_ = nullptr;
    entry_ = nullptr;
  }
}

// --- TileCache ---

TileCache::TileCache(uint64_t budget_bytes, EvictionPolicy policy)
    : budget_bytes_(budget_bytes), policy_(policy), hand_(order_.end()) {}

TileCache::~TileCache() {
  // Every pin must be released before the cache dies. A non-empty zombie
  // list means an invalidated entry still has live handles.
  for (const auto& [key, entry] : entries_) {
    TILECOMP_CHECK_MSG(entry->pins == 0,
                       "TileCache destroyed with live PinnedTile handles");
  }
  TILECOMP_CHECK_MSG(zombies_.empty(),
                     "TileCache destroyed with live PinnedTile handles");
}

TileCache::Entry* TileCache::FindLocked(codec::ColumnId column_id, int64_t tile_id) {
  auto it = entries_.find(MakeKey(column_id, tile_id));
  return it == entries_.end() ? nullptr : it->second.get();
}

void TileCache::TouchLocked(Entry* entry) {
  if (policy_ == EvictionPolicy::kLru) {
    // Move to the hot (back) end.
    order_.splice(order_.end(), order_, entry->pos);
  } else {
    entry->referenced = true;
  }
}

void TileCache::RemoveLocked(Entry* entry, bool count_eviction) {
  TILECOMP_DCHECK(entry->pins == 0);
  if (policy_ == EvictionPolicy::kClock && hand_ == entry->pos) {
    ++hand_;
  }
  order_.erase(entry->pos);
  stats_.bytes_in_use -= entry->bytes();
  if (count_eviction) ++stats_.evictions;
  entries_.erase(entry->key);  // frees the entry
}

bool TileCache::MakeRoomLocked(uint64_t needed, uint64_t* evictions) {
  const uint64_t before = stats_.evictions;
  if (needed > budget_bytes_) {
    if (evictions != nullptr) *evictions = 0;
    return false;
  }
  if (policy_ == EvictionPolicy::kLru) {
    // Scan cold -> hot, skipping pinned entries.
    auto it = order_.begin();
    while (stats_.bytes_in_use + needed > budget_bytes_ &&
           it != order_.end()) {
      Entry* victim = *it;
      ++it;
      if (victim->pins == 0) EvictLocked(victim);
    }
  } else {
    // Clock: each pass over the ring clears reference bits; an entry whose
    // bit is already clear (and that is unpinned) is evicted. Bounded by
    // two full sweeps — after one sweep every surviving candidate bit is
    // clear, so a second sweep either evicts or proves all pinned.
    size_t steps = 2 * order_.size();
    while (stats_.bytes_in_use + needed > budget_bytes_ && steps-- > 0 &&
           !order_.empty()) {
      if (hand_ == order_.end()) hand_ = order_.begin();
      Entry* candidate = *hand_;
      if (candidate->pins > 0) {
        ++hand_;
      } else if (candidate->referenced) {
        candidate->referenced = false;
        ++hand_;
      } else {
        ++hand_;  // EvictLocked would double-advance if we left it on us
        EvictLocked(candidate);
      }
    }
  }
  if (evictions != nullptr) *evictions = stats_.evictions - before;
  return stats_.bytes_in_use + needed <= budget_bytes_;
}

void TileCache::UnpinLocked(Entry* entry) {
  TILECOMP_DCHECK(entry->pins > 0);
  --entry->pins;
  if (entry->pins == 0 && entry->zombie) {
    // Last handle to an invalidated entry: its storage can finally go.
    stats_.bytes_in_use -= entry->bytes();
    for (auto it = zombies_.begin(); it != zombies_.end(); ++it) {
      if (it->get() == entry) {
        zombies_.erase(it);
        break;
      }
    }
  }
}

TileCache::PinnedTile TileCache::Lookup(codec::ColumnId column_id, int64_t tile_id,
                                        uint64_t saved_encoded_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindLocked(column_id, tile_id);
  if (entry == nullptr) {
    ++stats_.misses;
    return PinnedTile();
  }
  ++stats_.hits;
  stats_.saved_bytes += saved_encoded_bytes;
  TouchLocked(entry);
  ++entry->pins;
  return PinnedTile(this, entry);
}

bool TileCache::Contains(codec::ColumnId column_id, int64_t tile_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(MakeKey(column_id, tile_id)) != 0;
}

TileCache::PinnedTile TileCache::Peek(codec::ColumnId column_id, int64_t tile_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindLocked(column_id, tile_id);
  if (entry == nullptr) return PinnedTile();
  ++entry->pins;
  return PinnedTile(this, entry);
}

void TileCache::CreditSaved(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.saved_bytes += bytes;
}

TileCache::PinnedTile TileCache::Insert(codec::ColumnId column_id, int64_t tile_id,
                                        const uint32_t* values, uint32_t count,
                                        uint64_t* evictions) {
  std::lock_guard<std::mutex> lock(mu_);
  if (evictions != nullptr) *evictions = 0;
  if (Entry* existing = FindLocked(column_id, tile_id)) {
    // Another block inserted this tile first; pin the resident copy.
    ++existing->pins;
    return PinnedTile(this, existing);
  }
  const uint64_t bytes = static_cast<uint64_t>(count) * sizeof(uint32_t);
  // Injected faults: a device-memory allocation failure or a corrupted
  // insert. Both degrade to a refused insert — callers already handle that
  // (the tile is simply not cached; the caller keeps its own decoded copy).
  // Keyed draws so concurrent blocks inserting different tiles decide
  // deterministically regardless of interleaving.
  if (fault_plan_ != nullptr) {
    const uint64_t key = MakeKey(column_id, tile_id);
    if (fault_plan_->ShouldFault(fault::FaultSite::kDeviceAlloc, key) ||
        fault_plan_->ShouldFault(fault::FaultSite::kCacheInsert, key)) {
      ++stats_.insert_failures;
      return PinnedTile();
    }
  }
  if (!MakeRoomLocked(bytes, evictions)) {
    ++stats_.insert_failures;
    return PinnedTile();
  }
  auto entry = std::make_unique<Entry>();
  entry->key = MakeKey(column_id, tile_id);
  entry->values.assign(values, values + count);
  entry->pins = 1;
  entry->referenced = true;
  Entry* raw = entry.get();
  order_.push_back(raw);
  raw->pos = std::prev(order_.end());
  entries_[raw->key] = std::move(entry);
  stats_.bytes_in_use += bytes;
  ++stats_.inserts;
  return PinnedTile(this, raw);
}

void TileCache::CountMisses(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.misses += n;
}

bool TileCache::Invalidate(codec::ColumnId column_id, int64_t tile_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = FindLocked(column_id, tile_id);
  if (entry == nullptr) return false;
  ++stats_.invalidations;
  if (entry->pins == 0) {
    RemoveLocked(entry, /*count_eviction=*/false);
    return true;
  }
  // Pinned: unlink from the index and replacement order so no future probe
  // sees the poisoned data (and the key is free for a fresh insert), but
  // keep the storage alive for the handles already holding it.
  if (policy_ == EvictionPolicy::kClock && hand_ == entry->pos) ++hand_;
  order_.erase(entry->pos);
  entry->zombie = true;
  auto it = entries_.find(entry->key);
  TILECOMP_DCHECK(it != entries_.end());
  zombies_.push_back(std::move(it->second));
  entries_.erase(it);
  return true;
}

void TileCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = order_.begin();
  while (it != order_.end()) {
    Entry* entry = *it;
    ++it;
    if (entry->pins == 0) EvictLocked(entry);
  }
}

TileCache::Stats TileCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.entries = entries_.size();
  return snapshot;
}

}  // namespace tilecomp::serve
