// Decompressed-tile cache for the query-serving layer.
//
// The paper's schemes make decompression cheap enough to run inline with a
// query, but a serving workload re-reads the same hot tiles query after
// query. TileCache keeps recently decompressed 512-value tiles resident in
// (modeled) device memory under a byte budget, keyed by (column, tile).
// A hit serves the decoded values without re-running the decode; a miss
// decodes as usual and inserts the result, evicting cold unpinned tiles to
// stay under budget.
//
// Two insert classes share the budget:
//   * demand inserts (Insert) — the query path; entries start hot and
//     pinned for the duration of the inserting query;
//   * speculative inserts (InsertSpeculative) — the prefetcher's staging
//     path; entries start cold, unpinned and flagged speculative until the
//     first demand hit promotes them. A speculative entry that is evicted
//     (or refused) before any hit is counted as wasted prefetch work.
//
// Thread safety: every public method is safe to call concurrently — the
// serving layer calls Lookup/Insert from kernel bodies, which the simulator
// runs on many host threads at once. PinnedTile handles keep an entry's
// storage alive and block its eviction until released.
#ifndef TILECOMP_SERVE_TILE_CACHE_H_
#define TILECOMP_SERVE_TILE_CACHE_H_

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "codec/column_id.h"
#include "common/macros.h"
#include "fault/fault.h"

namespace tilecomp::serve {

// Replacement policy for unpinned entries.
//   kLru       — evict the least-recently-used entry.
//   kClock     — second-chance ring: a hit sets a reference bit; the clock
//                hand clears bits until it finds a cleared, unpinned entry.
//   kCostAware — ARC-style adaptive cost ranking: victims come from a window
//                of the coldest unpinned entries, ranked by
//                (decode-cost estimate x encoded bytes) / entry size scaled
//                by an adaptive recency/frequency mix, so cheap-to-rebuild
//                tiles go first; speculative entries that never saw a demand
//                hit are first in line regardless of cost. Two ghost lists
//                (B1: evicted without reuse, B2: evicted after reuse) track
//                recently evicted keys; a miss on a ghosted key shifts the
//                recency/frequency weight toward the list that was wrong.
enum class EvictionPolicy { kLru, kClock, kCostAware };

const char* EvictionPolicyName(EvictionPolicy policy);

// Rebuild-cost hints attached to an entry at insert time, consumed by the
// kCostAware victim ranking. `decode_cost` is the inserting path's measured
// cost proxy for re-decoding this tile (sim::BlockCostProxy delta around the
// decode, or a per-tile share of a pipeline run); `encoded_bytes` is the
// tile's share of the column's compressed footprint. Defaults rank the
// entry cheapest-to-rebuild (evicted first once cold).
struct TileCost {
  uint64_t decode_cost = 1;
  uint64_t encoded_bytes = 0;
};

// Outcome of a speculative insert.
enum class SpeculativeInsert {
  kInserted,         // staged; counted against the budget as a cold entry
  kAlreadyResident,  // demand (or a prior prefetch) beat us: counted late
  kRefused,          // no room / injected fault: the decode was wasted
};

// Private cache-entry record (defined in tile_cache.cc).
struct TileCacheEntry;

class TileCache {
 public:
  // Monotonic counters plus a point-in-time usage snapshot.
  struct Stats {
    // Demand hits on demand-inserted tiles.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    // Entries dropped through Invalidate (poisoned data, never served
    // again); counted separately from capacity evictions.
    uint64_t invalidations = 0;
    // Insert calls refused because eviction could not make room (entry
    // larger than the budget, or every resident entry was pinned).
    uint64_t insert_failures = 0;
    // Inserts refused by the generation floor: a demand-load raced a
    // mutation and decoded from a pre-mutation extent (see InvalidateStale).
    // Counted separately from insert_failures — these are correctness
    // refusals, not capacity ones.
    uint64_t stale_refused = 0;
    // Encoded bytes that hits avoided re-reading. Credited by callers
    // (CreditSaved) only for hits actually served — a hit whose data is
    // then discarded (e.g. an injected poison) must not be credited.
    uint64_t saved_bytes = 0;
    // Demand hits on tiles the prefetcher staged (separate from `hits` so
    // the serving report can attribute cache luck to speculation).
    uint64_t prefetch_hits = 0;
    // Speculative decodes launched (counted by the prefetcher via
    // CountPrefetchIssued — faulted decodes never reach an insert call).
    uint64_t prefetch_issued = 0;
    // First demand hit on a still-speculative entry (promotes it).
    uint64_t prefetch_useful = 0;
    // Speculative work that can never pay off: refused inserts, faulted
    // speculative decodes, and speculative entries evicted before any hit.
    uint64_t prefetch_wasted = 0;
    // Speculative inserts that found the tile already resident.
    uint64_t prefetch_late = 0;
    uint64_t bytes_in_use = 0;
    uint64_t entries = 0;
    // Snapshot: resident entries still awaiting their first demand hit.
    uint64_t speculative_entries = 0;
    // Snapshot: ghost-list occupancy (kCostAware only).
    uint64_t ghost_recency_entries = 0;
    uint64_t ghost_frequency_entries = 0;

    uint64_t accesses() const { return hits + prefetch_hits + misses; }
    double hit_rate() const {
      return accesses() == 0 ? 0.0
                             : static_cast<double>(hits + prefetch_hits) /
                                   static_cast<double>(accesses());
    }
    double prefetch_wasted_rate() const {
      return prefetch_issued == 0 ? 0.0
                                  : static_cast<double>(prefetch_wasted) /
                                        static_cast<double>(prefetch_issued);
    }
  };

  // Extra detail a Lookup hit reports back to the loader, so the kernel can
  // account a prefetch hit apart from a demand hit.
  struct LookupInfo {
    bool prefetch_hit = false;  // entry was staged by the prefetcher
    bool promoted = false;      // this hit was the entry's first (useful)
  };

  explicit TileCache(uint64_t budget_bytes,
                     EvictionPolicy policy = EvictionPolicy::kLru);
  ~TileCache();

  // The cache's (column, tile) -> map-key packing, exposed so tests and the
  // fault plan key tiles identically. CHECK-fails on a tile id outside the
  // 32-bit range (an out-of-range id would alias another column's key).
  static uint64_t MakeKey(codec::ColumnId column_id, int64_t tile_id);

  TILECOMP_DISALLOW_COPY_AND_ASSIGN(TileCache);

  // Pin handle returned by Lookup/Insert. While any handle to an entry is
  // alive the entry cannot be evicted and its data pointer stays valid.
  // Movable, not copyable; the default-constructed handle is empty.
  class PinnedTile {
   public:
    PinnedTile() = default;
    PinnedTile(PinnedTile&& other) noexcept { *this = std::move(other); }
    PinnedTile& operator=(PinnedTile&& other) noexcept;
    ~PinnedTile() { Release(); }

    PinnedTile(const PinnedTile&) = delete;
    PinnedTile& operator=(const PinnedTile&) = delete;

    bool valid() const { return entry_ != nullptr; }
    const uint32_t* data() const;
    // Number of valid values in the tile (<= 512 for a tail tile).
    uint32_t count() const;

    // Drop the pin early (destructor also does this).
    void Release();

   private:
    friend class TileCache;
    PinnedTile(TileCache* cache, TileCacheEntry* entry)
        : cache_(cache), entry_(entry) {}

    TileCache* cache_ = nullptr;
    TileCacheEntry* entry_ = nullptr;
  };

  // Probe for (column_id, tile_id). On hit: counts a hit (under
  // `prefetch_hits` when the entry was staged speculatively), credits
  // `saved_encoded_bytes` to the saved-bytes counter, promotes a
  // still-speculative entry (counting it useful), touches the entry for the
  // replacement policy, and returns a pinned handle; `info` (optional)
  // reports the prefetch attribution. On miss: counts a miss (adapting the
  // kCostAware ghost weights) and returns an empty handle.
  //
  // Callers that may discard the hit after further checks (e.g. the
  // loader's poison draw) should pass saved_encoded_bytes = 0 here and
  // credit via CreditSaved once the hit is actually served.
  PinnedTile Lookup(codec::ColumnId column_id, int64_t tile_id,
                    uint64_t saved_encoded_bytes = 0,
                    LookupInfo* info = nullptr);

  // Presence probe with no counter or replacement-order side effects.
  bool Contains(codec::ColumnId column_id, int64_t tile_id) const;

  // Pin (column_id, tile_id) if resident, with no counter or
  // replacement-order side effects — used by the column-granularity load
  // path to hold a column's tiles across a query without double-counting
  // the per-tile accesses its query kernel will record.
  PinnedTile Peek(codec::ColumnId column_id, int64_t tile_id);

  // Credit `bytes` of avoided reads without a Lookup — used when a whole
  // column's decompress launch is skipped, and by the loader once a hit has
  // cleared its poison check (see Lookup).
  void CreditSaved(uint64_t bytes);

  // Insert a decompressed tile (demand path). Evicts unpinned entries in
  // policy order until the entry fits; never exceeds the budget. If room
  // cannot be made (tile larger than the budget, or every candidate is
  // pinned) the insert is refused: counts an insert failure and returns an
  // empty handle. If the key is already resident (another thread inserted
  // it first) the existing entry is pinned — and, if still speculative,
  // promoted without counting a prefetch hit — and returned. `evictions`
  // (optional) receives the number of entries this call evicted. `cost`
  // feeds the kCostAware victim ranking.
  // `generation` tags the entry with the mutable-column tile generation the
  // decode observed (0 for immutable columns, which never invalidate); an
  // insert whose generation is below the key's floor (set by
  // InvalidateStale) is refused — the decode raced a mutation and read the
  // pre-mutation extent.
  PinnedTile Insert(codec::ColumnId column_id, int64_t tile_id,
                    const uint32_t* values, uint32_t count,
                    uint64_t* evictions = nullptr, TileCost cost = TileCost(),
                    uint64_t generation = 0);

  // Insert a speculatively decoded tile (prefetch path). The entry is
  // staged unpinned at the warm end of the replacement order — it was
  // predicted for the next query, so it gets one replacement cycle to prove
  // itself (staging cold would let speculation churn on itself the moment
  // the cache is full) — flagged speculative until its first demand hit.
  // Low priority is enforced by the cleared clock reference bit, by the
  // kCostAware victim scan preferring never-hit speculative entries, and by
  // the wasted accounting when an unused entry ages out. Never hands out a
  // pin. Counts prefetch_late when the key is already resident and
  // prefetch_wasted when the insert is refused.
  SpeculativeInsert InsertSpeculative(codec::ColumnId column_id,
                                      int64_t tile_id, const uint32_t* values,
                                      uint32_t count, TileCost cost = TileCost(),
                                      uint64_t generation = 0);

  // Count `n` misses without probing — used by the column-granularity load
  // path, which decides hit/miss per column but accounts per tile.
  void CountMisses(uint64_t n);

  // Prefetcher-side counter feeds: speculative decodes launched, and
  // speculative decodes wasted before reaching an insert (injected faults).
  void CountPrefetchIssued(uint64_t n);
  void CountPrefetchWasted(uint64_t n);

  // Drop (column_id, tile_id) so it can never be served again — the
  // poisoned-tile recovery path. Returns false if the key is not resident.
  // An unpinned entry is freed immediately; a pinned entry is unlinked from
  // the index (Lookup/Contains/Peek no longer see it, and the key can be
  // re-inserted with fresh data) but its storage stays alive until the last
  // PinnedTile releases, so existing handles never dangle. Counted under
  // `invalidations`, not `evictions`.
  bool Invalidate(codec::ColumnId column_id, int64_t tile_id);

  // Generation-mismatch invalidation, the mutable-column staleness barrier.
  // Plain Invalidate closes the resident window but leaves a race open: a
  // demand-load that decoded the pre-mutation extent can re-insert the
  // stale tile AFTER the invalidation ran. InvalidateStale additionally
  // raises a persistent per-key insert floor to `min_generation`, so any
  // later Insert/InsertSpeculative tagged with an older generation is
  // refused (counted under stale_refused). A resident entry whose
  // generation is already >= min_generation is left alone. Returns true if
  // a resident entry was dropped. Called by the serving layer's
  // MutableColumn::Listener with the column lock held (lock order: column
  // -> cache, never the reverse).
  bool InvalidateStale(codec::ColumnId column_id, int64_t tile_id,
                       uint64_t min_generation);

  // Attach a fault plan (not owned; nullptr to detach). When set, Insert
  // and InsertSpeculative consult the kDeviceAlloc and kCacheInsert sites
  // (keyed by the tile, so concurrent blocks draw deterministically) and
  // refuse the insert on an injected fault, counting an insert failure —
  // exercising callers' cache-miss fallback path. A refused speculative
  // insert is dropped silently (never cached) and counted wasted.
  void set_fault_plan(fault::FaultPlan* plan) { fault_plan_ = plan; }

  // Evict everything unpinned. Pinned entries stay resident.
  void Clear();

  Stats stats() const;
  uint64_t budget_bytes() const { return budget_bytes_; }
  EvictionPolicy policy() const { return policy_; }
  // kCostAware adaptation state: the frequency weight p in [0, 1] (0.5 at
  // start; a ghost hit on a reused victim raises it, on a once-used victim
  // lowers it). Exposed for tests and telemetry.
  double frequency_weight() const;

 private:
  using Entry = TileCacheEntry;

  // Bounded FIFO set of recently evicted keys (one per ARC side).
  struct GhostList {
    std::deque<uint64_t> fifo;
    std::unordered_set<uint64_t> keys;
  };

  // All private helpers require `mu_` to be held.
  Entry* FindLocked(codec::ColumnId column_id, int64_t tile_id);
  void TouchLocked(Entry* entry);
  // Evict unpinned entries in policy order until `needed` bytes fit in the
  // budget. Returns false (evicting what it could) if it cannot.
  bool MakeRoomLocked(uint64_t needed, uint64_t* evictions);
  // The kCostAware victim: the coldest never-hit speculative entry if any,
  // else the lowest-ranked of a window of cold unpinned entries. nullptr
  // when every entry is pinned.
  Entry* PickCostAwareVictimLocked();
  // Move the clock hand off `entry` before it is unlinked — the single
  // place the hand is nudged, so every erase site preserves the invariant
  // that `hand_` is either order_.end() or a live element's iterator.
  void AdvanceHandOffLocked(Entry* entry);
  // Record an eviction in the ghost lists (kCostAware capacity evictions
  // only): B1 for entries evicted without any demand hit, B2 for the rest.
  void GhostRecordLocked(Entry* entry);
  void GhostInsertLocked(GhostList* list, uint64_t key);
  // Ghost adaptation on a demand miss (kCostAware): a miss on a B1 key
  // shifts the weight toward recency, on a B2 key toward frequency.
  void GhostMissLocked(uint64_t key);
  // Drop `entry` as Invalidate does: unpinned entries are freed, pinned
  // ones become zombies. Counts under `invalidations`.
  void InvalidateEntryLocked(Entry* entry);
  // Unlink an unpinned entry from the index and replacement order and free
  // it. Capacity evictions count under `evictions`; invalidations do not.
  // A still-speculative entry leaving residency counts as wasted prefetch.
  void RemoveLocked(Entry* entry, bool count_eviction);
  void EvictLocked(Entry* entry) { RemoveLocked(entry, true); }
  void UnpinLocked(Entry* entry);

  const uint64_t budget_bytes_;
  const EvictionPolicy policy_;
  fault::FaultPlan* fault_plan_ = nullptr;

  mutable std::mutex mu_;
  // Keyed by (column_id << 32 is not enough for tile ids) — see MakeKey in
  // the .cc. unique_ptr gives Entry pointer stability across rehashes.
  std::unordered_map<uint64_t, std::unique_ptr<Entry>> entries_;
  // Replacement order. LRU / cost-aware: front = coldest, back = hottest.
  // Clock: a ring in insertion order with `hand_` as the clock hand.
  std::list<Entry*> order_;
  std::list<Entry*>::iterator hand_;
  // Invalidated-while-pinned entries: out of the index and replacement
  // order, kept alive (and counted in bytes_in_use) until their last pin
  // releases.
  std::vector<std::unique_ptr<Entry>> zombies_;
  // kCostAware ghost lists, each capped at roughly one budget's worth of
  // tile keys — the ARC rule of thumb: remembering more history than the
  // cache could ever hold stops being evidence about sizing.
  GhostList ghost_recency_;    // B1: evicted with zero demand hits
  GhostList ghost_frequency_;  // B2: evicted after at least one demand hit
  // Per-key minimum acceptable insert generation (see InvalidateStale).
  // Grows one slot per mutated (column, tile) key — bounded by the mutable
  // working set, not by traffic.
  std::unordered_map<uint64_t, uint64_t> insert_floors_;
  const uint64_t ghost_capacity_;
  // Frequency weight p in [0, 1] for the kCostAware hotness mix.
  double frequency_weight_ = 0.5;
  Stats stats_;
};

}  // namespace tilecomp::serve

#endif  // TILECOMP_SERVE_TILE_CACHE_H_
