// Decompressed-tile cache for the query-serving layer.
//
// The paper's schemes make decompression cheap enough to run inline with a
// query, but a serving workload re-reads the same hot tiles query after
// query. TileCache keeps recently decompressed 512-value tiles resident in
// (modeled) device memory under a byte budget, keyed by (column, tile).
// A hit serves the decoded values without re-running the decode; a miss
// decodes as usual and inserts the result, evicting cold unpinned tiles to
// stay under budget.
//
// Thread safety: every public method is safe to call concurrently — the
// serving layer calls Lookup/Insert from kernel bodies, which the simulator
// runs on many host threads at once. PinnedTile handles keep an entry's
// storage alive and block its eviction until released.
#ifndef TILECOMP_SERVE_TILE_CACHE_H_
#define TILECOMP_SERVE_TILE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "codec/column_id.h"
#include "common/macros.h"
#include "fault/fault.h"

namespace tilecomp::serve {

// Replacement policy for unpinned entries.
//   kLru   — evict the least-recently-used entry.
//   kClock — second-chance ring: a hit sets a reference bit; the clock hand
//            clears bits until it finds a cleared, unpinned entry.
enum class EvictionPolicy { kLru, kClock };

const char* EvictionPolicyName(EvictionPolicy policy);

// Private cache-entry record (defined in tile_cache.cc).
struct TileCacheEntry;

class TileCache {
 public:
  // Monotonic counters plus a point-in-time usage snapshot.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    // Entries dropped through Invalidate (poisoned data, never served
    // again); counted separately from capacity evictions.
    uint64_t invalidations = 0;
    // Insert calls refused because eviction could not make room (entry
    // larger than the budget, or every resident entry was pinned).
    uint64_t insert_failures = 0;
    // Encoded bytes that hits avoided re-reading (callers pass the per-tile
    // compressed footprint to Lookup).
    uint64_t saved_bytes = 0;
    uint64_t bytes_in_use = 0;
    uint64_t entries = 0;

    uint64_t accesses() const { return hits + misses; }
    double hit_rate() const {
      return accesses() == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(accesses());
    }
  };

  explicit TileCache(uint64_t budget_bytes,
                     EvictionPolicy policy = EvictionPolicy::kLru);
  ~TileCache();

  // The cache's (column, tile) -> map-key packing, exposed so tests and the
  // fault plan key tiles identically. CHECK-fails on a tile id outside the
  // 32-bit range (an out-of-range id would alias another column's key).
  static uint64_t MakeKey(codec::ColumnId column_id, int64_t tile_id);

  TILECOMP_DISALLOW_COPY_AND_ASSIGN(TileCache);

  // Pin handle returned by Lookup/Insert. While any handle to an entry is
  // alive the entry cannot be evicted and its data pointer stays valid.
  // Movable, not copyable; the default-constructed handle is empty.
  class PinnedTile {
   public:
    PinnedTile() = default;
    PinnedTile(PinnedTile&& other) noexcept { *this = std::move(other); }
    PinnedTile& operator=(PinnedTile&& other) noexcept;
    ~PinnedTile() { Release(); }

    PinnedTile(const PinnedTile&) = delete;
    PinnedTile& operator=(const PinnedTile&) = delete;

    bool valid() const { return entry_ != nullptr; }
    const uint32_t* data() const;
    // Number of valid values in the tile (<= 512 for a tail tile).
    uint32_t count() const;

    // Drop the pin early (destructor also does this).
    void Release();

   private:
    friend class TileCache;
    PinnedTile(TileCache* cache, TileCacheEntry* entry)
        : cache_(cache), entry_(entry) {}

    TileCache* cache_ = nullptr;
    TileCacheEntry* entry_ = nullptr;
  };

  // Probe for (column_id, tile_id). On hit: counts a hit, credits
  // `saved_encoded_bytes` to the saved-bytes counter, touches the entry for
  // the replacement policy, and returns a pinned handle. On miss: counts a
  // miss and returns an empty handle.
  PinnedTile Lookup(codec::ColumnId column_id, int64_t tile_id,
                    uint64_t saved_encoded_bytes = 0);

  // Presence probe with no counter or replacement-order side effects.
  bool Contains(codec::ColumnId column_id, int64_t tile_id) const;

  // Pin (column_id, tile_id) if resident, with no counter or
  // replacement-order side effects — used by the column-granularity load
  // path to hold a column's tiles across a query without double-counting
  // the per-tile accesses its query kernel will record.
  PinnedTile Peek(codec::ColumnId column_id, int64_t tile_id);

  // Credit `bytes` of avoided reads without a Lookup — used when a whole
  // column's decompress launch is skipped.
  void CreditSaved(uint64_t bytes);

  // Insert a decompressed tile. Evicts unpinned entries in policy order
  // until the entry fits; never exceeds the budget. If room cannot be made
  // (tile larger than the budget, or every candidate is pinned) the insert
  // is refused: counts an insert failure and returns an empty handle. If
  // the key is already resident (another thread inserted it first) the
  // existing entry is pinned and returned. `evictions` (optional) receives
  // the number of entries this call evicted.
  PinnedTile Insert(codec::ColumnId column_id, int64_t tile_id,
                    const uint32_t* values, uint32_t count,
                    uint64_t* evictions = nullptr);

  // Count `n` misses without probing — used by the column-granularity load
  // path, which decides hit/miss per column but accounts per tile.
  void CountMisses(uint64_t n);

  // Drop (column_id, tile_id) so it can never be served again — the
  // poisoned-tile recovery path. Returns false if the key is not resident.
  // An unpinned entry is freed immediately; a pinned entry is unlinked from
  // the index (Lookup/Contains/Peek no longer see it, and the key can be
  // re-inserted with fresh data) but its storage stays alive until the last
  // PinnedTile releases, so existing handles never dangle. Counted under
  // `invalidations`, not `evictions`.
  bool Invalidate(codec::ColumnId column_id, int64_t tile_id);

  // Attach a fault plan (not owned; nullptr to detach). When set, Insert
  // consults the kDeviceAlloc and kCacheInsert sites (keyed by the tile, so
  // concurrent blocks draw deterministically) and refuses the insert on an
  // injected fault, counting an insert failure — exercising callers'
  // cache-miss fallback path.
  void set_fault_plan(fault::FaultPlan* plan) { fault_plan_ = plan; }

  // Evict everything unpinned. Pinned entries stay resident.
  void Clear();

  Stats stats() const;
  uint64_t budget_bytes() const { return budget_bytes_; }
  EvictionPolicy policy() const { return policy_; }

 private:
  using Entry = TileCacheEntry;

  // All private helpers require `mu_` to be held.
  Entry* FindLocked(codec::ColumnId column_id, int64_t tile_id);
  void TouchLocked(Entry* entry);
  // Evict unpinned entries in policy order until `needed` bytes fit in the
  // budget. Returns false (evicting what it could) if it cannot.
  bool MakeRoomLocked(uint64_t needed, uint64_t* evictions);
  // Unlink an unpinned entry from the index and replacement order and free
  // it. Capacity evictions count under `evictions`; invalidations do not.
  void RemoveLocked(Entry* entry, bool count_eviction);
  void EvictLocked(Entry* entry) { RemoveLocked(entry, true); }
  void UnpinLocked(Entry* entry);

  const uint64_t budget_bytes_;
  const EvictionPolicy policy_;
  fault::FaultPlan* fault_plan_ = nullptr;

  mutable std::mutex mu_;
  // Keyed by (column_id << 32 is not enough for tile ids) — see MakeKey in
  // the .cc. unique_ptr gives Entry pointer stability across rehashes.
  std::unordered_map<uint64_t, std::unique_ptr<Entry>> entries_;
  // Replacement order. LRU: front = coldest, back = hottest. Clock: a ring
  // in insertion order with `hand_` as the clock hand.
  std::list<Entry*> order_;
  std::list<Entry*>::iterator hand_;
  // Invalidated-while-pinned entries: out of the index and replacement
  // order, kept alive (and counted in bytes_in_use) until their last pin
  // releases.
  std::vector<std::unique_ptr<Entry>> zombies_;
  Stats stats_;
};

}  // namespace tilecomp::serve

#endif  // TILECOMP_SERVE_TILE_CACHE_H_
