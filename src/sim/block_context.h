// BlockContext: the per-thread-block execution environment handed to
// simulated kernels. A kernel is a callable `void(BlockContext&)` written in
// block-synchronous style: it performs the work of all `block_threads()`
// threads of one thread block, phase by phase, calling the accounting
// primitives below to record the memory traffic and compute the real CUDA
// kernel would generate.
//
// The accounting primitives mirror the access patterns the paper reasons
// about in Section 4.2:
//   - CoalescedRead/Write: a block-cooperative contiguous access (BlockLoad
//     style); cost = sector-rounded bytes, one warp instruction per 128 B.
//   - BroadcastRead: every warp loads the same small word (e.g., a block
//     header); cost = one sector and one instruction per warp.
//   - ScatteredRead/Write: independent per-thread accesses landing in
//     distinct sectors (the "irregular access" the paper's optimizations
//     remove); cost = one sector and one instruction replay per access.
//   - Shared / Compute / Barrier: shared-memory traffic, ALU work, and
//     __syncthreads counts.
#ifndef TILECOMP_SIM_BLOCK_CONTEXT_H_
#define TILECOMP_SIM_BLOCK_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/macros.h"
#include "sim/device_spec.h"
#include "sim/global_counter.h"
#include "sim/stats.h"

namespace tilecomp::sim {

class BlockContext {
 public:
  BlockContext(int block_threads, int warp_size = 32)
      : block_threads_(block_threads), warp_size_(warp_size) {
    TILECOMP_CHECK(block_threads >= 1);
  }

  void Reset(int64_t block_id) {
    block_id_ = block_id;
    smem_used_ = 0;
    item_cost_mark_ = BlockCostProxy(stats_);
    sampled_work_items_ = false;
  }

  int64_t block_id() const { return block_id_; }
  int block_threads() const { return block_threads_; }
  int warps_per_block() const {
    return CeilDiv(block_threads_, warp_size_);
  }

  // --- Global-memory accounting ---

  // Block-cooperative read of a contiguous `bytes`-long range. `aligned`
  // ranges start on a sector boundary; unaligned ranges touch one extra
  // sector (the partial-segment effect of Section 4.2, Optimization 2).
  void CoalescedRead(uint64_t bytes, bool aligned = false) {
    if (bytes == 0) return;
    uint64_t sectors = CeilDiv<uint64_t>(bytes, DeviceSpec::kSectorBytes) +
                       (aligned ? 0 : 1);
    stats_.global_bytes_read += sectors * DeviceSpec::kSectorBytes;
    // Block-cooperative loads are vectorized (128-bit per thread, as in
    // Crystal's BlockLoad): one warp instruction moves 32 x 16 B = 512 B,
    // i.e. four 128 B transactions kept in flight together.
    stats_.warp_global_accesses +=
        CeilDiv<uint64_t>(bytes, 4 * DeviceSpec::kTransactionBytes);
  }

  void CoalescedWrite(uint64_t bytes, bool aligned = true) {
    if (bytes == 0) return;
    uint64_t sectors = CeilDiv<uint64_t>(bytes, DeviceSpec::kSectorBytes) +
                       (aligned ? 0 : 1);
    stats_.global_bytes_written += sectors * DeviceSpec::kSectorBytes;
    stats_.warp_global_accesses +=
        CeilDiv<uint64_t>(bytes, 4 * DeviceSpec::kTransactionBytes);
  }

  // Every warp of the block loads the same `bytes`-sized word (bytes <= 32).
  void BroadcastRead(uint32_t bytes = 4) {
    (void)bytes;
    stats_.global_bytes_read +=
        static_cast<uint64_t>(warps_per_block()) * DeviceSpec::kSectorBytes;
    stats_.warp_global_accesses += warps_per_block();
  }

  // `count` independent thread accesses of `bytes_each`, each landing in its
  // own sector(s) (worst-case uncoalesced).
  // Scattered sectors pipeline through the memory system (a warp's 32
  // divergent transactions are replays of one instruction, kept in flight
  // together), so the latency charge is a fraction of the sector count.
  static constexpr uint64_t kScatterPipelining = 8;
  // Random sectors also pay DRAM row activation: effective bandwidth is
  // ~4/7 of the streaming peak, modeled as inflated bytes.
  static constexpr uint64_t kDramRandomPenaltyNum = 7;
  static constexpr uint64_t kDramRandomPenaltyDen = 4;

  void ScatteredRead(uint64_t count, uint32_t bytes_each = 4) {
    uint64_t sectors_each =
        CeilDiv<uint64_t>(bytes_each, DeviceSpec::kSectorBytes);
    stats_.global_bytes_read += count * sectors_each *
                                DeviceSpec::kSectorBytes *
                                kDramRandomPenaltyNum / kDramRandomPenaltyDen;
    stats_.warp_global_accesses +=
        CeilDiv<uint64_t>(count * sectors_each, kScatterPipelining);
  }

  void ScatteredWrite(uint64_t count, uint32_t bytes_each = 4) {
    uint64_t sectors_each =
        CeilDiv<uint64_t>(bytes_each, DeviceSpec::kSectorBytes);
    stats_.global_bytes_written += count * sectors_each *
                                   DeviceSpec::kSectorBytes *
                                   kDramRandomPenaltyNum /
                                   kDramRandomPenaltyDen;
    stats_.warp_global_accesses +=
        CeilDiv<uint64_t>(count * sectors_each, kScatterPipelining);
  }

  // `count` per-thread accesses whose addresses within each warp fall in a
  // contiguous window of `window_bytes` (e.g., bit-packed entries of one
  // miniblock): the warp coalesces them into the sectors covering the
  // window. Used for per-thread reads that are *mostly* coalesced.
  void WindowedRead(uint64_t count, uint64_t window_bytes,
                    uint32_t accesses_per_thread = 1) {
    uint64_t warps = CeilDiv<uint64_t>(count, warp_size_);
    uint64_t sectors_per_warp =
        CeilDiv<uint64_t>(window_bytes, DeviceSpec::kSectorBytes) + 1;
    stats_.global_bytes_read +=
        warps * sectors_per_warp * DeviceSpec::kSectorBytes;
    stats_.warp_global_accesses += warps * accesses_per_thread;
  }

  // --- On-chip accounting ---

  void Shared(uint64_t bytes) { stats_.shared_bytes += bytes; }
  void Compute(uint64_t ops) { stats_.compute_ops += ops; }
  void Barrier() { ++stats_.barriers; }

  // --- Device-global atomics ---

  // Accounted fetch-and-add on a device-global counter (CUDA atomicAdd
  // semantics: returns the pre-add value). This is how a persistent kernel
  // pops its next tile; the per-op serialization cost lands in
  // stats().atomic_ops and is charged by the perf model.
  uint64_t AtomicAdd(GlobalCounter& counter, uint64_t delta = 1) {
    ++stats_.atomic_ops;
    return counter.FetchAdd(delta);
  }

  // --- Decompressed-tile-cache accounting ---

  // Record one tile-cache hit: the block read the cached decompressed tile
  // instead of decoding `saved_encoded_bytes` of compressed data (the
  // traffic the decode would have issued).
  void CacheHit(uint64_t saved_encoded_bytes = 0) {
    ++stats_.cache.hits;
    stats_.cache.saved_bytes += saved_encoded_bytes;
  }
  // Record one tile-cache hit served by a speculatively prefetched tile —
  // counted apart from CacheHit so a kernel's traffic savings can be
  // attributed to the prefetcher vs its own demand history.
  void CachePrefetchHit(uint64_t saved_encoded_bytes = 0) {
    ++stats_.cache.prefetch_hits;
    stats_.cache.saved_bytes += saved_encoded_bytes;
  }
  // Record one tile-cache miss (the block decoded the tile itself).
  void CacheMiss() { ++stats_.cache.misses; }
  // Record `count` evictions this block's cache insert forced.
  void CacheEvictions(uint64_t count) { stats_.cache.evictions += count; }

  // --- Speculative-prefetch accounting ---

  // The block decoded `count` tiles speculatively ahead of any query.
  void PrefetchIssued(uint64_t count = 1) { stats_.prefetch.issued += count; }
  // First demand hit on a still-speculative entry (the prefetch paid off).
  void PrefetchUseful(uint64_t count = 1) { stats_.prefetch.useful += count; }
  // A speculative decode that can never pay off: it faulted, or its insert
  // was refused.
  void PrefetchWasted(uint64_t count = 1) { stats_.prefetch.wasted += count; }
  // The tile was already resident when the speculative insert landed.
  void PrefetchLate(uint64_t count = 1) { stats_.prefetch.late += count; }

  // --- Predicate-pushdown accounting ---

  // A whole tile was discarded from its zone-map entry without touching the
  // payload.
  void PushdownTilePruned() { ++stats_.pushdown.tiles_pruned; }
  // A tile went through an inline decode (the non-pruned path).
  void TileDecoded() { ++stats_.pushdown.tiles_decoded; }
  // `count` 128-value blocks were classified disjoint / fully-inside from
  // their frame-of-reference bounds without unpacking.
  void PushdownBlocksShortCircuited(uint64_t count) {
    stats_.pushdown.blocks_short_circuited += count;
  }
  // `count` RLE runs were compared once per run instead of once per row.
  void PushdownRunsShortCircuited(uint64_t count) {
    stats_.pushdown.runs_short_circuited += count;
  }

  // --- Work-item cost sampling ---

  // Records the cost accumulated since the previous sample (or since
  // Reset()) as one work-item sample in stats().block_cost. A persistent
  // kernel calls this after each tile so the wave model sees the per-tile
  // cost distribution rather than per-block totals, which on the host pool
  // would reflect host scheduling, not device scheduling. Kernels that do
  // not call it get one automatic per-block sample from Device::Launch.
  void EndWorkItem() {
    const uint64_t cost = BlockCostProxy(stats_);
    stats_.block_cost.Add(cost - item_cost_mark_);
    item_cost_mark_ = cost;
    sampled_work_items_ = true;
  }

  // Declares that this block samples its own work items, suppressing the
  // automatic per-block sample even if the block ends up popping zero work
  // items (a persistent block that loses every counter race must not record
  // a spurious zero-cost sample).
  void DeclareWorkItemSampling() { sampled_work_items_ = true; }

  // Whether the kernel body recorded (or declared) its own work-item
  // samples since the last Reset().
  bool sampled_work_items() const { return sampled_work_items_; }

  // --- Shared-memory scratch arena ---
  // Returns block-local scratch; contents are undefined after Reset(). The
  // arena grows on demand; the *declared* shared-memory footprint used for
  // occupancy is the LaunchConfig's smem_bytes_per_block.
  template <typename T>
  T* SmemAlloc(size_t count) {
    size_t bytes = RoundUp<size_t>(count * sizeof(T), 16);
    if (smem_used_ + bytes > smem_arena_.size()) {
      smem_arena_.resize(smem_used_ + bytes);
    }
    T* p = reinterpret_cast<T*>(smem_arena_.data() + smem_used_);
    smem_used_ += bytes;
    return p;
  }

  KernelStats& stats() { return stats_; }
  const KernelStats& stats() const { return stats_; }

 private:
  int block_threads_;
  int warp_size_;
  int64_t block_id_ = 0;
  KernelStats stats_;
  std::vector<uint8_t> smem_arena_;
  size_t smem_used_ = 0;
  // Cost-proxy value at the last work-item boundary (EndWorkItem/Reset).
  uint64_t item_cost_mark_ = 0;
  bool sampled_work_items_ = false;
};

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_BLOCK_CONTEXT_H_
