#include "sim/cluster.h"

#include <algorithm>

namespace tilecomp::sim {

const char* ClusterLimiterName(ClusterLimiter limiter) {
  switch (limiter) {
    case ClusterLimiter::kCompute:
      return "compute";
    case ClusterLimiter::kHbm:
      return "hbm";
    case ClusterLimiter::kInterconnect:
      return "interconnect";
  }
  return "?";
}

Cluster::Cluster(int num_devices, const DeviceSpec& spec, const LinkSpec& link)
    : link_(link) {
  TILECOMP_CHECK(num_devices >= 1);
  for (int i = 0; i < num_devices; ++i) {
    devices_.push_back(std::make_unique<Device>(spec));
  }
  ports_.resize(static_cast<size_t>(num_devices));
}

Cluster::Cluster(const std::vector<DeviceSpec>& specs, const LinkSpec& link)
    : link_(link) {
  TILECOMP_CHECK(!specs.empty());
  for (const DeviceSpec& spec : specs) {
    devices_.push_back(std::make_unique<Device>(spec));
  }
  ports_.resize(specs.size());
}

double Cluster::EstimateLinkMs(uint64_t bytes) const {
  return link_.latency_us * 1e-3 +
         static_cast<double>(bytes) / (link_.gbps * 1e9) * 1e3;
}

double Cluster::TransferBetween(int src, int dst, uint64_t bytes,
                                double ready_ms, const std::string& label) {
  CheckDevice(src);
  CheckDevice(dst);
  if (src == dst) return ready_ms;
  PortState& sp = ports_[static_cast<size_t>(src)];
  PortState& dp = ports_[static_cast<size_t>(dst)];
  const double duration = EstimateLinkMs(bytes);
  const double start =
      std::max({ready_ms, sp.out_free_ms, dp.in_free_ms});
  const double end = start + duration;
  sp.out_free_ms = end;
  dp.in_free_ms = end;
  sp.out_busy_ms += duration;
  dp.in_busy_ms += duration;
  link_bytes_total_ += bytes;
  LinkTransfer record;
  record.src_device = src;
  record.dst_device = dst;
  record.bytes = bytes;
  record.start_ms = start;
  record.duration_ms = duration;
  record.label = label;
  if (link_sink_ != nullptr) {
    link_sink_->OnLink(src, dst, bytes, start, duration, label);
  }
  link_log_.push_back(std::move(record));
  return end;
}

double Cluster::SynchronizeAll() {
  for (auto& dev : devices_) dev->DeviceSynchronize();
  return MakespanMs();
}

double Cluster::MakespanMs() const {
  double makespan = 0.0;
  for (const auto& dev : devices_) {
    makespan = std::max(makespan, dev->elapsed_ms());
  }
  for (const PortState& port : ports_) {
    makespan = std::max({makespan, port.in_free_ms, port.out_free_ms});
  }
  return makespan;
}

double Cluster::link_in_busy_ms(int device) const {
  CheckDevice(device);
  return ports_[static_cast<size_t>(device)].in_busy_ms;
}

double Cluster::link_out_busy_ms(int device) const {
  CheckDevice(device);
  return ports_[static_cast<size_t>(device)].out_busy_ms;
}

double Cluster::max_link_busy_ms() const {
  double best = 0.0;
  for (const PortState& port : ports_) {
    best = std::max({best, port.in_busy_ms, port.out_busy_ms});
  }
  return best;
}

ClusterBreakdown Cluster::Breakdown(
    double extra_compute_ms, const std::vector<size_t>& skip_launches) const {
  ClusterBreakdown out;
  for (size_t d = 0; d < devices_.size(); ++d) {
    double compute = extra_compute_ms / static_cast<double>(devices_.size());
    double hbm = 0.0;
    const std::vector<KernelResult>& log = devices_[d]->launch_log();
    const size_t skip =
        d < skip_launches.size() ? std::min(skip_launches[d], log.size()) : 0;
    for (size_t k = skip; k < log.size(); ++k) {
      const Limiter limiter = log[k].breakdown.limiter();
      if (limiter == Limiter::kBandwidth || limiter == Limiter::kLatency) {
        hbm += log[k].time_ms;
      } else {
        compute += log[k].time_ms;
      }
    }
    out.compute_ms = std::max(out.compute_ms, compute);
    out.hbm_ms = std::max(out.hbm_ms, hbm);
  }
  out.interconnect_ms = max_link_busy_ms();
  return out;
}

void Cluster::CheckDevice(int device) const {
  TILECOMP_CHECK_MSG(
      device >= 0 && device < static_cast<int>(devices_.size()),
      "invalid device index");
}

}  // namespace tilecomp::sim
