// A cluster of simulated devices connected by a modeled interconnect.
//
// Every device keeps its own independent timeline (streams, copy/compute
// engines) exactly as before — the cluster adds nothing to single-device
// execution. What the cluster owns is the interconnect: one full-duplex
// link port per device whose inbound and outbound engines are separate
// serializing resources, in the same discrete-event style as the per-device
// copy/compute engines (PR 2). All device timelines share one clock (they
// start together at t = 0), so a cross-device transfer is scheduled against
// absolute timestamps: it becomes ready when the producing device reaches
// `ready_ms`, waits for the source port's outbound engine and the
// destination port's inbound engine, then occupies both for
// latency + bytes/bandwidth.
//
// Two transfers into the same device serialize (the fan-in of a partial-
// aggregate merge); a send and a receive on one device overlap (full
// duplex); transfers between disjoint device pairs are fully concurrent
// (switched fabric, no global bottleneck modeled).
//
// The cluster-level time breakdown classifies what bounds a multi-device
// workload: the busiest serializing resource across the cluster — compute
// (SM busy time that the perf model attributed to compute/shared/
// scheduling/launch terms), HBM (busy time attributed to global-memory
// bandwidth or latency), or the interconnect (the busiest link engine).
#ifndef TILECOMP_SIM_CLUSTER_H_
#define TILECOMP_SIM_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "sim/device.h"
#include "sim/device_spec.h"

namespace tilecomp::sim {

// One completed inter-device transfer, for the link log and trace export.
struct LinkTransfer {
  int src_device = 0;
  int dst_device = 0;
  uint64_t bytes = 0;
  double start_ms = 0.0;
  double duration_ms = 0.0;
  std::string label;

  double end_ms() const { return start_ms + duration_ms; }
};

// What bounds the cluster: the busiest serializing resource class.
enum class ClusterLimiter {
  kCompute,       // SM time (compute/shared/scheduling/launch terms)
  kHbm,           // global-memory bandwidth/latency time
  kInterconnect,  // the busiest link engine
};

const char* ClusterLimiterName(ClusterLimiter limiter);

// Busy time per resource class, maxed over the devices (for compute/HBM)
// and over the link engines (for the interconnect): the throughput ceiling
// of a pipelined workload is its busiest serial resource.
struct ClusterBreakdown {
  double compute_ms = 0.0;
  double hbm_ms = 0.0;
  double interconnect_ms = 0.0;

  ClusterLimiter limiter() const {
    ClusterLimiter which = ClusterLimiter::kCompute;
    double best = compute_ms;
    if (hbm_ms > best) {
      best = hbm_ms;
      which = ClusterLimiter::kHbm;
    }
    if (interconnect_ms > best) which = ClusterLimiter::kInterconnect;
    return which;
  }
};

class Cluster {
 public:
  // Homogeneous cluster: `num_devices` copies of `spec`.
  Cluster(int num_devices, const DeviceSpec& spec, const LinkSpec& link);
  // Heterogeneous cluster: one device per spec.
  Cluster(const std::vector<DeviceSpec>& specs, const LinkSpec& link);

  TILECOMP_DISALLOW_COPY_AND_ASSIGN(Cluster);

  int num_devices() const { return static_cast<int>(devices_.size()); }
  Device& device(int i) { return *devices_[static_cast<size_t>(i)]; }
  const Device& device(int i) const { return *devices_[static_cast<size_t>(i)]; }
  const LinkSpec& link() const { return link_; }

  // Model a transfer of `bytes` from device `src` to device `dst`, ready no
  // earlier than `ready_ms` (typically the producing stream's tail). The
  // transfer starts once the source outbound and destination inbound
  // engines are both free, occupies both for latency + bytes/bandwidth,
  // and is appended to the link log (and the attached sink, if any).
  // Returns the arrival time in ms. src == dst is a no-op returning
  // `ready_ms` — local data needs no link.
  double TransferBetween(int src, int dst, uint64_t bytes, double ready_ms,
                         const std::string& label);

  // Pure timing estimate of one transfer of `bytes`, ms (no scheduling).
  double EstimateLinkMs(uint64_t bytes) const;

  // Synchronize every device; returns the cluster makespan (the latest
  // point on any device timeline or link engine).
  double SynchronizeAll();
  // Latest scheduled completion across devices and link engines, ms.
  double MakespanMs() const;

  const std::vector<LinkTransfer>& link_log() const { return link_log_; }
  uint64_t link_bytes_total() const { return link_bytes_total_; }
  // Busy time of one device's link engines, ms.
  double link_in_busy_ms(int device) const;
  double link_out_busy_ms(int device) const;
  // The busiest single link engine across the cluster, ms.
  double max_link_busy_ms() const;

  // Classify what bounds the work scheduled so far: per-device kernel time
  // split into compute vs HBM by each launch's perf-model limiter, maxed
  // over devices, against the busiest link engine. `extra_compute_ms`, if
  // nonzero, is added to every device's compute bucket share — the caller's
  // off-device serial work (e.g. partial-aggregate merges it models
  // outside Device::Launch), already maxed/apportioned by the caller.
  // `skip_launches[d]`, when provided, excludes the first entries of device
  // d's launch log — setup work (e.g. placement-time hash-table prewarm)
  // the caller does not count toward the classified window.
  ClusterBreakdown Breakdown(double extra_compute_ms = 0.0,
                             const std::vector<size_t>& skip_launches =
                                 {}) const;

  // Attach an observer for link transfers (not owned; nullptr to detach).
  // Per-device kernels/transfers keep reporting to each device's own
  // tracer; this sink only sees OnLink.
  void AttachLinkSink(TraceSink* sink) { link_sink_ = sink; }

 private:
  // Per-device link-port engine availability, ms.
  struct PortState {
    double in_free_ms = 0.0;
    double out_free_ms = 0.0;
    double in_busy_ms = 0.0;
    double out_busy_ms = 0.0;
  };

  void CheckDevice(int device) const;

  LinkSpec link_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<PortState> ports_;
  std::vector<LinkTransfer> link_log_;
  uint64_t link_bytes_total_ = 0;
  TraceSink* link_sink_ = nullptr;
};

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_CLUSTER_H_
