#include "sim/device.h"

#include <algorithm>

namespace tilecomp::sim {

Device::Device(DeviceSpec spec) : spec_(spec), pool_() {}

KernelResult Device::Launch(const LaunchConfig& cfg, const KernelBody& body) {
  TILECOMP_CHECK(cfg.grid_dim >= 0);
  TILECOMP_CHECK(cfg.block_threads >= 1 && cfg.block_threads <= 1024);

  KernelStats merged;
  std::mutex merge_mu;

  const int64_t grid = cfg.grid_dim;
  if (grid > 0) {
    // Each pool chunk owns one reusable BlockContext; stats merge at the
    // end of the chunk. Blocks are independent, matching the CUDA model.
    pool_.ParallelForRange(
        static_cast<size_t>(grid), [&](size_t begin, size_t end) {
          BlockContext ctx(cfg.block_threads, spec_.warp_size);
          for (size_t b = begin; b < end; ++b) {
            ctx.Reset(static_cast<int64_t>(b));
            body(ctx);
          }
          std::lock_guard<std::mutex> lock(merge_mu);
          merged += ctx.stats();
        });
  }

  KernelResult result;
  result.config = cfg;
  result.stats = merged;
  result.time_ms = EstimateKernelTimeMs(spec_, cfg, merged);

  total_stats_ += merged;
  elapsed_ms_ += result.time_ms;
  ++kernel_launches_;
  return result;
}

double Device::Transfer(uint64_t bytes) {
  double ms = EstimateTransferMs(spec_, bytes);
  elapsed_ms_ += ms;
  return ms;
}

void Device::ResetTimeline() {
  total_stats_ = KernelStats();
  elapsed_ms_ = 0.0;
  kernel_launches_ = 0;
}

}  // namespace tilecomp::sim
