#include "sim/device.h"

#include <algorithm>
#include <utility>

namespace tilecomp::sim {

Device::Device(DeviceSpec spec)
    : spec_(spec), pool_(), stream_tail_(1, 0.0) {}

KernelResult Device::Launch(std::string label, const LaunchConfig& cfg,
                            const KernelBody& body) {
  return Launch(launch_stream_, std::move(label), cfg, body);
}

KernelResult Device::Launch(StreamId stream, std::string label,
                            const LaunchConfig& cfg, const KernelBody& body) {
  CheckStream(stream);
  TILECOMP_CHECK(cfg.grid_dim >= 0);
  TILECOMP_CHECK(cfg.block_threads >= 1 && cfg.block_threads <= 1024);
  // The warp-access accounting in BlockContext assumes whole warps; a
  // partial last warp would silently be charged as a full one.
  TILECOMP_CHECK_MSG(cfg.block_threads % spec_.warp_size == 0,
                     "block_threads must be a multiple of warp_size");

  // Fault injection at issue: a failed launch attempt costs the launch
  // overhead plus backoff and is re-issued, up to the plan's attempt
  // budget. A launch that exhausts the budget is marked failed and its
  // body never runs — no block executes, so it has no side effects and the
  // caller must discard whatever output it expected.
  int fault_retries = 0;
  bool launch_failed = false;
  double retry_ms = 0.0;
  if (fault_plan_ != nullptr) {
    const int max_attempts =
        std::max(1, fault_plan_->options().max_launch_attempts);
    launch_failed = true;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (!fault_plan_->ShouldFault(fault::FaultSite::kKernelLaunch)) {
        launch_failed = false;
        break;
      }
      retry_ms += spec_.kernel_launch_us * 1e-3 +
                  fault_plan_->BackoffMs(attempt);
      if (attempt + 1 < max_attempts) {
        ++fault_retries;
        fault_plan_->CountRetry();
      }
    }
    if (launch_failed) fault_plan_->CountTerminalFailure();
  }

  KernelStats merged;
  std::mutex merge_mu;

  const int64_t grid = cfg.grid_dim;
  if (grid > 0 && !launch_failed) {
    // Each pool chunk owns one reusable BlockContext; stats merge at the
    // end of the chunk. Blocks are independent, matching the CUDA model.
    pool_.ParallelForRange(
        static_cast<size_t>(grid), [&](size_t begin, size_t end) {
          BlockContext ctx(cfg.block_threads, spec_.warp_size);
          for (size_t b = begin; b < end; ++b) {
            ctx.Reset(static_cast<int64_t>(b));
            body(ctx);
            // One cost sample per block feeds the wave-aware scheduling
            // model — unless the body sampled finer-grained work items
            // itself (persistent kernels sample per tile).
            if (!ctx.sampled_work_items()) ctx.EndWorkItem();
          }
          std::lock_guard<std::mutex> lock(merge_mu);
          merged += ctx.stats();
        });
  }

  KernelResult result;
  result.label = std::move(label);
  result.config = cfg;
  result.stats = merged;
  result.stream_id = stream;
  result.fault_retries = fault_retries;
  result.failed = launch_failed;
  result.breakdown = AnalyzeKernel(spec_, cfg, merged);
  // retry_ms already charges the overhead of every failed issue attempt; a
  // successful re-issue additionally pays the normal modeled kernel time.
  result.time_ms =
      launch_failed ? retry_ms : retry_ms + result.breakdown.total_ms();

  // Schedule: the default stream synchronizes with everything; an async
  // stream waits for its own tail and the compute engine only.
  const double start = stream == kDefaultStream
                           ? elapsed_ms_
                           : std::max(stream_tail_[stream], compute_free_ms_);
  const double end = start + result.time_ms;
  result.start_ms = start;
  if (stream == kDefaultStream) {
    SyncAllTo(end);
  } else {
    stream_tail_[stream] = end;
    compute_free_ms_ = end;
    elapsed_ms_ = std::max(elapsed_ms_, end);
  }

  total_stats_ += merged;
  launch_log_.push_back(result);
  if (tracer_ != nullptr) tracer_->OnKernel(result);
  return result;
}

double Device::Transfer(uint64_t bytes) {
  return TransferAsync(launch_stream_, bytes);
}

double Device::TransferAsync(StreamId stream, uint64_t bytes) {
  return TryTransferAsync(stream, bytes).ms;
}

Device::TransferResult Device::TryTransferAsync(StreamId stream,
                                                uint64_t bytes) {
  CheckStream(stream);
  const double attempt_ms = EstimateTransferMs(spec_, bytes);

  TransferResult result;
  result.ms = attempt_ms;
  if (fault_plan_ != nullptr) {
    // Every attempt occupies the copy engine for the full transfer time (a
    // fault is detected at completion, e.g. a CRC mismatch), then waits out
    // a capped exponential backoff before the re-send.
    const int max_attempts =
        std::max(1, fault_plan_->options().max_transfer_attempts);
    result.ok = false;
    result.ms = 0.0;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      result.ms += attempt_ms;
      if (!fault_plan_->ShouldFault(fault::FaultSite::kTransfer)) {
        result.ok = true;
        break;
      }
      result.ms += fault_plan_->BackoffMs(attempt);
      if (attempt + 1 < max_attempts) {
        ++result.retries;
        fault_plan_->CountRetry();
      }
    }
    if (!result.ok) fault_plan_->CountTerminalFailure();
  }

  const double start = stream == kDefaultStream
                           ? elapsed_ms_
                           : std::max(stream_tail_[stream], copy_free_ms_);
  const double end = start + result.ms;
  if (stream == kDefaultStream) {
    SyncAllTo(end);
  } else {
    stream_tail_[stream] = end;
    copy_free_ms_ = end;
    elapsed_ms_ = std::max(elapsed_ms_, end);
  }
  if (tracer_ != nullptr) {
    tracer_->OnTransfer(bytes, start, result.ms, stream, result.retries,
                        !result.ok);
  }
  return result;
}

StreamId Device::CreateStream() {
  stream_tail_.push_back(0.0);
  return static_cast<StreamId>(stream_tail_.size() - 1);
}

double Device::stream_tail_ms(StreamId stream) const {
  CheckStream(stream);
  return stream_tail_[stream];
}

Event Device::RecordEvent(StreamId stream) {
  CheckStream(stream);
  return Event{stream_tail_[stream]};
}

void Device::StreamWaitEvent(StreamId stream, const Event& event) {
  CheckStream(stream);
  stream_tail_[stream] = std::max(stream_tail_[stream], event.timestamp_ms);
}

double Device::DeviceSynchronize() {
  SyncAllTo(elapsed_ms_);
  return elapsed_ms_;
}

void Device::SetLaunchStream(StreamId stream) {
  CheckStream(stream);
  launch_stream_ = stream;
}

void Device::ResetTimeline() {
  total_stats_ = KernelStats();
  elapsed_ms_ = 0.0;
  std::fill(stream_tail_.begin(), stream_tail_.end(), 0.0);
  copy_free_ms_ = 0.0;
  compute_free_ms_ = 0.0;
  launch_log_.clear();
}

void Device::CheckStream(StreamId stream) const {
  TILECOMP_CHECK_MSG(stream >= 0 &&
                         stream < static_cast<StreamId>(stream_tail_.size()),
                     "invalid stream handle");
}

void Device::SyncAllTo(double t) {
  std::fill(stream_tail_.begin(), stream_tail_.end(), t);
  copy_free_ms_ = t;
  compute_free_ms_ = t;
  elapsed_ms_ = std::max(elapsed_ms_, t);
}

}  // namespace tilecomp::sim
