#include "sim/device.h"

#include <algorithm>
#include <utility>

namespace tilecomp::sim {

Device::Device(DeviceSpec spec) : spec_(spec), pool_() {}

KernelResult Device::Launch(std::string label, const LaunchConfig& cfg,
                            const KernelBody& body) {
  TILECOMP_CHECK(cfg.grid_dim >= 0);
  TILECOMP_CHECK(cfg.block_threads >= 1 && cfg.block_threads <= 1024);

  KernelStats merged;
  std::mutex merge_mu;

  const int64_t grid = cfg.grid_dim;
  if (grid > 0) {
    // Each pool chunk owns one reusable BlockContext; stats merge at the
    // end of the chunk. Blocks are independent, matching the CUDA model.
    pool_.ParallelForRange(
        static_cast<size_t>(grid), [&](size_t begin, size_t end) {
          BlockContext ctx(cfg.block_threads, spec_.warp_size);
          for (size_t b = begin; b < end; ++b) {
            ctx.Reset(static_cast<int64_t>(b));
            body(ctx);
          }
          std::lock_guard<std::mutex> lock(merge_mu);
          merged += ctx.stats();
        });
  }

  KernelResult result;
  result.label = std::move(label);
  result.config = cfg;
  result.stats = merged;
  result.start_ms = elapsed_ms_;
  result.breakdown = AnalyzeKernel(spec_, cfg, merged);
  result.time_ms = result.breakdown.total_ms();

  total_stats_ += merged;
  elapsed_ms_ += result.time_ms;
  launch_log_.push_back(result);
  if (tracer_ != nullptr) tracer_->OnKernel(result);
  return result;
}

double Device::Transfer(uint64_t bytes) {
  double ms = EstimateTransferMs(spec_, bytes);
  if (tracer_ != nullptr) tracer_->OnTransfer(bytes, elapsed_ms_, ms);
  elapsed_ms_ += ms;
  return ms;
}

void Device::ResetTimeline() {
  total_stats_ = KernelStats();
  elapsed_ms_ = 0.0;
  launch_log_.clear();
}

}  // namespace tilecomp::sim
