// The simulated GPU device: launches kernels (executing thread blocks on a
// host thread pool), accumulates per-kernel work counters, and keeps a
// timeline of modeled execution and transfer time.
#ifndef TILECOMP_SIM_DEVICE_H_
#define TILECOMP_SIM_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "sim/block_context.h"
#include "sim/device_spec.h"
#include "sim/perf_model.h"
#include "sim/stats.h"

namespace tilecomp::sim {

// A kernel body runs the work of one thread block. It is invoked once per
// block id in [0, grid_dim); invocations may run concurrently on host
// threads and must only share data through the buffers they operate on
// (as real CUDA blocks do).
using KernelBody = std::function<void(BlockContext&)>;

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec());

  TILECOMP_DISALLOW_COPY_AND_ASSIGN(Device);

  const DeviceSpec& spec() const { return spec_; }

  // Execute `body` for every block of the launch, collect work counters,
  // model the kernel time, and append it to the device timeline.
  KernelResult Launch(const LaunchConfig& cfg, const KernelBody& body);

  // Model a host->device (or device->host) PCIe transfer of `bytes` and
  // append it to the timeline. Returns the transfer time in ms.
  double Transfer(uint64_t bytes);

  // Append externally-computed time (e.g., host-side work) to the timeline.
  void AddTimeMs(double ms) { elapsed_ms_ += ms; }

  // --- Timeline / accumulation ---
  double elapsed_ms() const { return elapsed_ms_; }
  uint64_t kernel_launches() const { return kernel_launches_; }
  const KernelStats& total_stats() const { return total_stats_; }
  void ResetTimeline();

 private:
  DeviceSpec spec_;
  ThreadPool pool_;
  KernelStats total_stats_;
  double elapsed_ms_ = 0.0;
  uint64_t kernel_launches_ = 0;
};

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_DEVICE_H_
