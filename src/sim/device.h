// The simulated GPU device: launches kernels (executing thread blocks on a
// host thread pool), accumulates per-kernel work counters, and keeps a
// timeline of modeled execution and transfer time.
#ifndef TILECOMP_SIM_DEVICE_H_
#define TILECOMP_SIM_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "sim/block_context.h"
#include "sim/device_spec.h"
#include "sim/perf_model.h"
#include "sim/stats.h"

namespace tilecomp::sim {

// A kernel body runs the work of one thread block. It is invoked once per
// block id in [0, grid_dim); invocations may run concurrently on host
// threads and must only share data through the buffers they operate on
// (as real CUDA blocks do).
using KernelBody = std::function<void(BlockContext&)>;

// Observer interface for the device timeline. telemetry::Tracer implements
// it; the sim layer only knows this interface so that sim does not depend on
// the telemetry library.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  // One kernel launch completed (result carries label, config, stats,
  // timeline position and the perf-model breakdown).
  virtual void OnKernel(const KernelResult& result) = 0;
  // One PCIe transfer completed.
  virtual void OnTransfer(uint64_t bytes, double start_ms,
                          double duration_ms) = 0;
  // Named region markers (used by Tracer for span nesting); default no-op.
  virtual void OnScopeBegin(const std::string& name, double start_ms) {
    (void)name;
    (void)start_ms;
  }
  virtual void OnScopeEnd(double end_ms) { (void)end_ms; }
};

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec());

  TILECOMP_DISALLOW_COPY_AND_ASSIGN(Device);

  const DeviceSpec& spec() const { return spec_; }

  // Execute `body` for every block of the launch, collect work counters,
  // model the kernel time, and append it to the device timeline. `label`
  // names the launch in the launch log and in any attached tracer.
  KernelResult Launch(std::string label, const LaunchConfig& cfg,
                      const KernelBody& body);
  // Unnamed launch (label "kernel").
  KernelResult Launch(const LaunchConfig& cfg, const KernelBody& body) {
    return Launch("kernel", cfg, body);
  }

  // Model a host->device (or device->host) PCIe transfer of `bytes` and
  // append it to the timeline. Returns the transfer time in ms.
  double Transfer(uint64_t bytes);

  // Append externally-computed time (e.g., host-side work) to the timeline.
  void AddTimeMs(double ms) { elapsed_ms_ += ms; }

  // Attach/detach an observer that sees every launch and transfer (not
  // owned; pass nullptr to detach). The launch log below is recorded either
  // way; the tracer additionally sees scope markers and transfers.
  void AttachTracer(TraceSink* tracer) { tracer_ = tracer; }
  TraceSink* tracer() const { return tracer_; }

  // --- Timeline / accumulation ---
  double elapsed_ms() const { return elapsed_ms_; }
  uint64_t kernel_launches() const { return launch_log_.size(); }
  const KernelStats& total_stats() const { return total_stats_; }
  // Every launch since the last ResetTimeline, in timeline order. Pipelines
  // (DecompressRun, SSB queries) slice this to report per-launch traces.
  const std::vector<KernelResult>& launch_log() const { return launch_log_; }
  void ResetTimeline();

 private:
  DeviceSpec spec_;
  ThreadPool pool_;
  KernelStats total_stats_;
  double elapsed_ms_ = 0.0;
  std::vector<KernelResult> launch_log_;
  TraceSink* tracer_ = nullptr;
};

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_DEVICE_H_
