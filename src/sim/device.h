// The simulated GPU device: launches kernels (executing thread blocks on a
// host thread pool), accumulates per-kernel work counters, and keeps a
// timeline of modeled execution and transfer time.
//
// The timeline follows the CUDA stream model. The device owns a copy engine
// (PCIe) and a compute engine (SMs) as separate resources: operations within
// one stream execute in issue order, two streams' transfers serialize on the
// copy engine, two streams' kernels serialize on the compute engine, but a
// transfer and a kernel on different streams overlap — which is exactly what
// a double-buffered decompression pipeline exploits (codec/pipeline.h).
// Stream 0 is the legacy default stream: operations on it synchronize with
// the whole device (start at the current makespan, and every stream/engine
// resumes after them), so code that never creates a stream sees the original
// strictly serial timeline.
#ifndef TILECOMP_SIM_DEVICE_H_
#define TILECOMP_SIM_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "fault/fault.h"
#include "sim/block_context.h"
#include "sim/device_spec.h"
#include "sim/perf_model.h"
#include "sim/stats.h"

namespace tilecomp::sim {

// A kernel body runs the work of one thread block. It is invoked once per
// block id in [0, grid_dim); invocations may run concurrently on host
// threads and must only share data through the buffers they operate on
// (as real CUDA blocks do).
using KernelBody = std::function<void(BlockContext&)>;

// Handle to a device stream. Stream 0 (kDefaultStream) always exists and is
// synchronizing; CreateStream() returns additional async streams.
using StreamId = int;
inline constexpr StreamId kDefaultStream = 0;

// A recorded point on a stream's timeline (cudaEventRecord analog): captures
// when everything issued to the stream so far will have completed. Another
// stream can wait on it (StreamWaitEvent) to build dependency edges.
struct Event {
  double timestamp_ms = 0.0;
};

// One served query's lifecycle on the serving clock (trace schema v9):
// offered at `arrival`, dequeued from the admission queue at `admit`,
// service begins on the stream at `start`, last stream operation done at
// `finish`. All absolute device-timeline ms, so query spans line up with
// the kernel spans they contain. Emitted by serve::Server under load
// (Device::EmitQuerySpan); fixed-batch serving emits none.
struct QueryTraceInfo {
  std::string label;  // SSB query name
  int stream_id = 0;
  uint64_t request_id = 0;
  double arrival_ms = 0.0;
  double admit_ms = 0.0;
  double start_ms = 0.0;
  double finish_ms = 0.0;
  std::string cls;     // priority class name ("interactive"/...)
  std::string status;  // serve::QueryStatusName ("ok"/"shed"/...)
};

// Observer interface for the device timeline. telemetry::Tracer implements
// it; the sim layer only knows this interface so that sim does not depend on
// the telemetry library.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  // One kernel launch completed (result carries label, config, stats,
  // timeline position, stream id and the perf-model breakdown).
  virtual void OnKernel(const KernelResult& result) = 0;
  // One PCIe transfer completed on `stream_id`. `retries` counts re-sends
  // after injected transfer faults; `failed` means the attempt budget was
  // exhausted and the bytes never arrived (duration still covers the failed
  // attempts and their backoff). Both stay 0/false without a fault plan.
  virtual void OnTransfer(uint64_t bytes, double start_ms, double duration_ms,
                          int stream_id, int retries, bool failed) = 0;
  // Named region markers (used by Tracer for span nesting); default no-op.
  virtual void OnScopeBegin(const std::string& name, double start_ms) {
    (void)name;
    (void)start_ms;
  }
  virtual void OnScopeEnd(double end_ms) { (void)end_ms; }
  // One inter-device link transfer completed (sim::Cluster interconnect,
  // trace schema v8). Single-device pipelines never see this; default
  // no-op so existing sinks are unaffected.
  virtual void OnLink(int src_device, int dst_device, uint64_t bytes,
                      double start_ms, double duration_ms,
                      const std::string& label) {
    (void)src_device;
    (void)dst_device;
    (void)bytes;
    (void)start_ms;
    (void)duration_ms;
    (void)label;
  }
  // One served query's arrival/admit/start/finish lifecycle (trace schema
  // v9), so queueing delay is separable from service time in the export.
  // Default no-op so existing sinks are unaffected.
  virtual void OnQuerySpan(const QueryTraceInfo& info) { (void)info; }
};

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec());

  TILECOMP_DISALLOW_COPY_AND_ASSIGN(Device);

  const DeviceSpec& spec() const { return spec_; }

  // Execute `body` for every block of the launch, collect work counters,
  // model the kernel time, and append it to the device timeline. `label`
  // names the launch in the launch log and in any attached tracer. Without
  // an explicit stream the launch goes to the current launch stream (the
  // default stream unless a StreamGuard is active).
  KernelResult Launch(std::string label, const LaunchConfig& cfg,
                      const KernelBody& body);
  // Unnamed launch (label "kernel").
  KernelResult Launch(const LaunchConfig& cfg, const KernelBody& body) {
    return Launch("kernel", cfg, body);
  }
  // Async launch on an explicit stream: starts once the stream's previous
  // operation and the compute engine are both free.
  KernelResult Launch(StreamId stream, std::string label,
                      const LaunchConfig& cfg, const KernelBody& body);

  // Model a host->device (or device->host) PCIe transfer of `bytes` and
  // append it to the timeline of the current launch stream. Returns the
  // transfer time in ms.
  double Transfer(uint64_t bytes);
  // Async transfer on an explicit stream (cudaMemcpyAsync analog): starts
  // once the stream's previous operation and the copy engine are both free.
  double TransferAsync(StreamId stream, uint64_t bytes);

  // Outcome of a fault-aware transfer. Without an attached fault plan the
  // transfer always succeeds in one attempt.
  struct TransferResult {
    bool ok = true;
    // Total modeled time on the stream: every attempt plus backoff, ms.
    double ms = 0.0;
    // Re-sends after injected faults (attempts - 1).
    int retries = 0;
  };
  // Like TransferAsync, but consults the attached fault plan at the
  // kTransfer site: an injected fault re-sends with capped exponential
  // backoff up to the plan's attempt budget, after which the transfer
  // reports ok = false instead of aborting. Callers on the fault-aware path
  // (the serving layer) must check `ok` and surface a clean error.
  TransferResult TryTransferAsync(StreamId stream, uint64_t bytes);
  // TryTransferAsync on the current launch stream.
  TransferResult TryTransfer(uint64_t bytes) {
    return TryTransferAsync(launch_stream_, bytes);
  }

  // --- Streams & events ---

  // Create a new async stream. Handles stay valid until the device dies;
  // ResetTimeline keeps them (and rewinds their timelines to zero).
  StreamId CreateStream();
  int num_streams() const { return static_cast<int>(stream_tail_.size()); }
  // Completion time of everything issued to `stream` so far, ms.
  double stream_tail_ms(StreamId stream) const;

  // Capture `stream`'s current completion time as an event.
  Event RecordEvent(StreamId stream);
  // Make `stream`'s next operation start no earlier than `event`.
  void StreamWaitEvent(StreamId stream, const Event& event);
  // Block the whole device until every stream and engine is idle; returns
  // the makespan. Subsequent operations on any stream start here.
  double DeviceSynchronize();

  // The stream that Launch(label, cfg, body) / Transfer(bytes) issue to.
  // Lets multi-launch pipelines (kernels::Decompress and friends) run on an
  // async stream without threading a StreamId through every signature — see
  // StreamGuard below.
  StreamId launch_stream() const { return launch_stream_; }
  void SetLaunchStream(StreamId stream);

  // Append externally-computed time (e.g., host-side work) to the timeline.
  // Host work is serial: every stream resumes after it.
  void AddTimeMs(double ms) { SyncAllTo(elapsed_ms_ + ms); }

  // Attach/detach an observer that sees every launch and transfer (not
  // owned; pass nullptr to detach). The launch log below is recorded either
  // way; the tracer additionally sees scope markers and transfers.
  void AttachTracer(TraceSink* tracer) { tracer_ = tracer; }
  TraceSink* tracer() const { return tracer_; }

  // Forward one query-lifecycle record to the attached tracer (no-op
  // un-traced). The serving layer calls this once per offered query.
  void EmitQuerySpan(const QueryTraceInfo& info) {
    if (tracer_ != nullptr) tracer_->OnQuerySpan(info);
  }

  // Attach/detach a fault plan (not owned; nullptr to detach). When set,
  // Launch consults it at the kKernelLaunch site (an injected fault
  // re-issues with backoff up to the plan's attempt budget, then the launch
  // is marked `failed` and its body never runs) and TryTransferAsync
  // consults it at the kTransfer site. Without a plan the device behaves
  // exactly as before.
  void AttachFaultPlan(fault::FaultPlan* plan) { fault_plan_ = plan; }
  fault::FaultPlan* fault_plan() const { return fault_plan_; }

  // --- Timeline / accumulation ---
  // Device makespan: the time at which the last scheduled operation (on any
  // stream) completes, ms.
  double elapsed_ms() const { return elapsed_ms_; }
  uint64_t kernel_launches() const { return launch_log_.size(); }
  const KernelStats& total_stats() const { return total_stats_; }
  // Every launch since the last ResetTimeline, in issue order. Pipelines
  // (DecompressRun, SSB queries) slice this to report per-launch traces.
  const std::vector<KernelResult>& launch_log() const { return launch_log_; }
  void ResetTimeline();

 private:
  void CheckStream(StreamId stream) const;
  // A full synchronization point at time `t`: every stream and both engines
  // resume at `t`.
  void SyncAllTo(double t);

  DeviceSpec spec_;
  ThreadPool pool_;
  KernelStats total_stats_;
  // Makespan over all streams/engines; invariant: >= every entry of
  // stream_tail_ and both engine frees.
  double elapsed_ms_ = 0.0;
  // Per-stream completion time of the last issued operation; index 0 is the
  // default stream.
  std::vector<double> stream_tail_;
  // Engine availability: transfers serialize on the copy engine, kernels on
  // the compute engine.
  double copy_free_ms_ = 0.0;
  double compute_free_ms_ = 0.0;
  StreamId launch_stream_ = kDefaultStream;
  std::vector<KernelResult> launch_log_;
  TraceSink* tracer_ = nullptr;
  fault::FaultPlan* fault_plan_ = nullptr;
};

// RAII: route every Launch/Transfer issued through the implicit-stream API
// to `stream` for the guard's lifetime, then restore the previous stream.
class StreamGuard {
 public:
  StreamGuard(Device& dev, StreamId stream)
      : dev_(dev), prev_(dev.launch_stream()) {
    dev_.SetLaunchStream(stream);
  }
  ~StreamGuard() { dev_.SetLaunchStream(prev_); }

  TILECOMP_DISALLOW_COPY_AND_ASSIGN(StreamGuard);

 private:
  Device& dev_;
  StreamId prev_;
};

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_DEVICE_H_
