// Hardware description of the simulated GPU. Defaults model the Nvidia V100
// used in the paper's evaluation (Section 9.1) plus the resource limits the
// paper quotes in Section 4.2.
#ifndef TILECOMP_SIM_DEVICE_SPEC_H_
#define TILECOMP_SIM_DEVICE_SPEC_H_

namespace tilecomp::sim {

struct DeviceSpec {
  // --- Bandwidths ---
  // Global memory (HBM2) read/write bandwidth, GB/s (paper Section 9.1).
  double global_bw_gbps = 880.0;
  // Shared memory aggregate bandwidth, GB/s ("an order of magnitude higher
  // than global memory", Section 2.1: ~10 TBps vs 900 GBps on V100).
  double shared_bw_gbps = 9500.0;
  // Bidirectional PCIe 3 x16 transfer bandwidth, GB/s (Section 9.1).
  double pcie_gbps = 12.8;

  // --- Latency / overheads ---
  // Fixed kernel-launch overhead, microseconds.
  double kernel_launch_us = 5.0;
  // Global-memory access latency, nanoseconds.
  double mem_latency_ns = 430.0;
  // Per-thread-block scheduling/drain overhead, nanoseconds. Covers block
  // dispatch and barrier pipeline drain; dominates for tiny blocks (D=1).
  double block_sched_ns = 100.0;
  // Throughput cost of one device-global atomic on a contended address,
  // nanoseconds. Same-address atomics serialize in the owning L2 slice at
  // roughly one op per L2 clock plus arbitration (~1 ns on V100); this is
  // the per-pop cost of a persistent-kernel work counter.
  double atomic_op_ns = 1.0;

  // --- Parallelism ---
  int sm_count = 80;
  int warp_size = 32;
  int max_warps_per_sm = 64;
  // Hardware cap on resident blocks per SM, independent of resources.
  int max_blocks_per_sm = 32;

  // --- Occupancy limits (paper Section 4.2: "each thread can only use 65
  // registers and 48 bytes of shared memory per thread at full occupancy")---
  int regs_per_thread_full_occupancy = 65;
  int smem_bytes_per_thread_full_occupancy = 48;
  // Register ceiling per thread before the compiler starts spilling to
  // local (= global) memory at realistic occupancy targets; beyond the
  // full-occupancy budget the model first loses occupancy, beyond this it
  // additionally pays spill traffic.
  int regs_per_thread_limit = 128;

  // --- Compute ---
  // Aggregate simple-integer-op throughput, ops/s.
  double int_ops_per_sec = 9.0e12;

  // --- Calibration ---
  // Fraction of theoretical latency-hiding concurrency achieved in practice
  // (dependent loads, partial occupancy ramp, cache interference).
  // Calibrated against the paper's Section 4.2 ablation.
  double latency_efficiency = 0.33;
  // Occupancy at which global bandwidth saturates (V100 saturates HBM well
  // below 100% occupancy).
  double bw_saturation_occupancy = 0.25;

  // Size of a global-memory sector (minimum transfer granularity), bytes.
  static constexpr int kSectorBytes = 32;
  // Size of a full coalesced transaction, bytes (Section 2.1 / [40]).
  static constexpr int kTransactionBytes = 128;

  // --- Named presets ---
  // The V100 of the paper's evaluation: exactly the defaults above.
  static DeviceSpec V100() { return DeviceSpec(); }
  // An A100-class device: ~2 TB/s HBM2e, 108 SMs, double the per-thread
  // shared-memory and register budgets (Section 8's "as GPUs improve"
  // projection), PCIe 4 host link. Shared by bench_gpu_scaling and
  // heterogeneous sim::Cluster configurations.
  static DeviceSpec A100() {
    DeviceSpec spec;
    spec.global_bw_gbps = 2000.0;
    spec.shared_bw_gbps = 19000.0;
    spec.sm_count = 108;
    spec.smem_bytes_per_thread_full_occupancy = 96;  // 164 KB/SM vs 96 KB
    spec.regs_per_thread_full_occupancy = 96;
    spec.regs_per_thread_limit = 192;
    spec.int_ops_per_sec = 19.0e12;
    spec.pcie_gbps = 25.0;  // PCIe 4
    return spec;
  }
};

// One class of inter-device link in a sim::Cluster. Every device owns one
// full-duplex port of this class: its inbound and outbound engines are
// separate serializing resources (like the copy/compute engines of a
// Device), so two transfers *into* one device serialize while a send and a
// receive overlap.
struct LinkSpec {
  // Per-direction bandwidth of one port, GB/s.
  double gbps = 150.0;
  // Fixed per-message cost (DMA setup, routing), microseconds.
  double latency_us = 2.0;
  const char* name = "nvlink";

  // NVLink-class port: V100-generation NVLink2 aggregate (6 links x 25
  // GB/s per direction).
  static LinkSpec NvLink() { return LinkSpec{150.0, 2.0, "nvlink"}; }
  // PCIe-class port: PCIe 3 x16 peer transfers staged through the host —
  // the paper's Section 9.1 host link, with a higher per-message setup
  // cost than a direct NVLink write.
  static LinkSpec Pcie() { return LinkSpec{12.8, 8.0, "pcie"}; }
};

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_DEVICE_SPEC_H_
