// Hardware description of the simulated GPU. Defaults model the Nvidia V100
// used in the paper's evaluation (Section 9.1) plus the resource limits the
// paper quotes in Section 4.2.
#ifndef TILECOMP_SIM_DEVICE_SPEC_H_
#define TILECOMP_SIM_DEVICE_SPEC_H_

namespace tilecomp::sim {

struct DeviceSpec {
  // --- Bandwidths ---
  // Global memory (HBM2) read/write bandwidth, GB/s (paper Section 9.1).
  double global_bw_gbps = 880.0;
  // Shared memory aggregate bandwidth, GB/s ("an order of magnitude higher
  // than global memory", Section 2.1: ~10 TBps vs 900 GBps on V100).
  double shared_bw_gbps = 9500.0;
  // Bidirectional PCIe 3 x16 transfer bandwidth, GB/s (Section 9.1).
  double pcie_gbps = 12.8;

  // --- Latency / overheads ---
  // Fixed kernel-launch overhead, microseconds.
  double kernel_launch_us = 5.0;
  // Global-memory access latency, nanoseconds.
  double mem_latency_ns = 430.0;
  // Per-thread-block scheduling/drain overhead, nanoseconds. Covers block
  // dispatch and barrier pipeline drain; dominates for tiny blocks (D=1).
  double block_sched_ns = 100.0;
  // Throughput cost of one device-global atomic on a contended address,
  // nanoseconds. Same-address atomics serialize in the owning L2 slice at
  // roughly one op per L2 clock plus arbitration (~1 ns on V100); this is
  // the per-pop cost of a persistent-kernel work counter.
  double atomic_op_ns = 1.0;

  // --- Parallelism ---
  int sm_count = 80;
  int warp_size = 32;
  int max_warps_per_sm = 64;
  // Hardware cap on resident blocks per SM, independent of resources.
  int max_blocks_per_sm = 32;

  // --- Occupancy limits (paper Section 4.2: "each thread can only use 65
  // registers and 48 bytes of shared memory per thread at full occupancy")---
  int regs_per_thread_full_occupancy = 65;
  int smem_bytes_per_thread_full_occupancy = 48;
  // Register ceiling per thread before the compiler starts spilling to
  // local (= global) memory at realistic occupancy targets; beyond the
  // full-occupancy budget the model first loses occupancy, beyond this it
  // additionally pays spill traffic.
  int regs_per_thread_limit = 128;

  // --- Compute ---
  // Aggregate simple-integer-op throughput, ops/s.
  double int_ops_per_sec = 9.0e12;

  // --- Calibration ---
  // Fraction of theoretical latency-hiding concurrency achieved in practice
  // (dependent loads, partial occupancy ramp, cache interference).
  // Calibrated against the paper's Section 4.2 ablation.
  double latency_efficiency = 0.33;
  // Occupancy at which global bandwidth saturates (V100 saturates HBM well
  // below 100% occupancy).
  double bw_saturation_occupancy = 0.25;

  // Size of a global-memory sector (minimum transfer granularity), bytes.
  static constexpr int kSectorBytes = 32;
  // Size of a full coalesced transaction, bytes (Section 2.1 / [40]).
  static constexpr int kTransactionBytes = 128;
};

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_DEVICE_SPEC_H_
