// Device-global atomic counter: the work-distribution primitive of
// persistent kernels. A kernel body pops work items with
// `BlockContext::AtomicAdd(counter)` — the context charges the modeled
// atomic cost to KernelStats while the counter provides the functional
// fetch-and-add, which must be a real host atomic because simulated blocks
// execute concurrently on the host thread pool.
#ifndef TILECOMP_SIM_GLOBAL_COUNTER_H_
#define TILECOMP_SIM_GLOBAL_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace tilecomp::sim {

class GlobalCounter {
 public:
  explicit GlobalCounter(uint64_t initial = 0) : value_(initial) {}

  // Atomically adds `delta` and returns the pre-add value (CUDA atomicAdd
  // semantics). Call through BlockContext::AtomicAdd from kernel bodies so
  // the op is accounted; call directly only from host code.
  uint64_t FetchAdd(uint64_t delta = 1) {
    return value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t load() const { return value_.load(std::memory_order_relaxed); }

  void Reset(uint64_t value = 0) {
    value_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_;
};

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_GLOBAL_COUNTER_H_
