#include "sim/perf_model.h"

#include <algorithm>
#include <cstdint>

#include "common/bit_util.h"
#include "common/macros.h"

namespace tilecomp::sim {

double ResourceOccupancy(const DeviceSpec& spec, const LaunchConfig& cfg) {
  TILECOMP_CHECK(cfg.block_threads > 0);
  double occ = 1.0;
  // Register pressure: full occupancy is sustainable up to the budget the
  // paper quotes; past it, resident warps scale down proportionally.
  if (cfg.regs_per_thread > spec.regs_per_thread_full_occupancy) {
    occ = std::min(
        occ, static_cast<double>(spec.regs_per_thread_full_occupancy) /
                 static_cast<double>(
                     std::min(cfg.regs_per_thread, spec.regs_per_thread_limit)));
  }
  // Shared-memory pressure, per thread.
  const double smem_per_thread =
      static_cast<double>(cfg.smem_bytes_per_block) /
      static_cast<double>(cfg.block_threads);
  if (smem_per_thread > spec.smem_bytes_per_thread_full_occupancy) {
    occ = std::min(occ, spec.smem_bytes_per_thread_full_occupancy /
                            smem_per_thread);
  }
  return occ;
}

double Occupancy(const DeviceSpec& spec, const LaunchConfig& cfg) {
  double occ = ResourceOccupancy(spec, cfg);
  // A launch smaller than the machine cannot fill it.
  const double total_warps_needed =
      static_cast<double>(cfg.grid_dim) * cfg.block_threads / spec.warp_size;
  const double machine_warps =
      static_cast<double>(spec.sm_count) * spec.max_warps_per_sm;
  occ = std::min(occ, std::max(total_warps_needed / machine_warps, 1e-6));
  return std::min(occ, 1.0);
}

int64_t WaveSlots(const DeviceSpec& spec, const LaunchConfig& cfg) {
  const int warps_per_block = CeilDiv(cfg.block_threads, spec.warp_size);
  const double resident_warps =
      spec.max_warps_per_sm * ResourceOccupancy(spec, cfg);
  int blocks_per_sm = static_cast<int>(resident_warps / warps_per_block);
  blocks_per_sm =
      std::clamp(blocks_per_sm, 1, spec.max_blocks_per_sm);
  return static_cast<int64_t>(spec.sm_count) * blocks_per_sm;
}

int64_t PersistentGridDim(const DeviceSpec& spec, const LaunchConfig& cfg,
                          int64_t work_items) {
  return std::max<int64_t>(1, std::min(WaveSlots(spec, cfg), work_items));
}

namespace {

// Wave/imbalance analysis from the per-work-item cost distribution. Only
// fills the wave fields; the caller converts the imbalance factor into
// tail_ms against its roofline body.
WaveStats AnalyzeWaves(const DeviceSpec& spec, const LaunchConfig& cfg,
                       const KernelStats& stats) {
  WaveStats wave;
  wave.scheduling = cfg.scheduling;
  wave.slots = WaveSlots(spec, cfg);
  const BlockCostSummary& bc = stats.block_cost;
  if (bc.count == 0) return wave;

  const uint64_t n = bc.count;
  const double slots = static_cast<double>(wave.slots);
  wave.waves = static_cast<int64_t>(
      CeilDiv<uint64_t>(n, static_cast<uint64_t>(wave.slots)));
  wave.mean_cost = bc.mean();
  wave.max_cost = static_cast<double>(bc.max_cost);
  wave.p99_cost = bc.Percentile(0.99);

  const double total = static_cast<double>(bc.total_cost);
  // All-zero-cost work items (e.g., a kernel launched only to probe the
  // scheduler, or tiles that all short-circuit): the launch costs only its
  // fixed overhead, and by definition there is no imbalance. Bail before the
  // makespan math — both `ideal` and the persistent-steal straggler term
  // divide by the total cost and would produce NaN here.
  if (total == 0.0) return wave;
  // Perfectly balanced reference: the work spread evenly over the slots
  // that can actually be active (fewer items than slots -> fewer slots).
  const double active = std::min(static_cast<double>(n), slots);
  const double ideal = total / active;

  double makespan;
  if (cfg.scheduling == Scheduling::kStatic) {
    // Every wave runs until its slowest block finishes; the partial final
    // wave waits on the max of its remainder.
    const uint64_t full_waves = n / static_cast<uint64_t>(wave.slots);
    const uint64_t remainder = n % static_cast<uint64_t>(wave.slots);
    makespan = static_cast<double>(full_waves) *
                   bc.ExpectedMax(static_cast<uint64_t>(wave.slots)) +
               (remainder > 0 ? bc.ExpectedMax(remainder) : 0.0);
  } else if (n <= static_cast<uint64_t>(wave.slots)) {
    // Work stealing with at most one item per slot degenerates to the
    // slowest item.
    makespan = wave.max_cost;
  } else {
    // Work stealing: near-perfect balance, plus the expected overhang of
    // the one straggler item that starts last (max^2 * slots / 2 total),
    // plus drain of the sub-full final wave.
    makespan = total / slots +
               wave.max_cost * wave.max_cost * slots / (2.0 * total) +
               wave.mean_cost *
                   (static_cast<double>(wave.waves) -
                    static_cast<double>(n) / slots);
  }
  makespan = std::max(makespan, wave.max_cost);
  wave.imbalance = std::max(1.0, makespan / ideal);
  return wave;
}

}  // namespace

TimeBreakdown AnalyzeKernel(const DeviceSpec& spec, const LaunchConfig& cfg,
                            const KernelStats& stats) {
  const double occ = Occupancy(spec, cfg);

  // Register spilling: registers demanded beyond the hard per-thread limit
  // live in local memory, i.e., global traffic (one round trip per spilled
  // register per thread is a reasonable lower bound).
  double spill_bytes = 0;
  if (cfg.regs_per_thread > spec.regs_per_thread_limit) {
    const double spilled = cfg.regs_per_thread - spec.regs_per_thread_limit;
    const double total_threads =
        static_cast<double>(cfg.grid_dim) * cfg.block_threads;
    spill_bytes = spilled * 4.0 * total_threads * 2.0;  // store + reload
  }

  // Bandwidth term. Effective bandwidth saturates once occupancy passes
  // bw_saturation_occupancy.
  const double bw_frac =
      std::min(1.0, occ / spec.bw_saturation_occupancy);
  const double bw_eff = spec.global_bw_gbps * 1e9 * std::max(bw_frac, 1e-6);
  const double t_bw =
      (static_cast<double>(stats.global_bytes_total()) + spill_bytes) / bw_eff;

  // Latency term (Little's law): in-flight warp-level accesses are bounded
  // by resident warps; throughput = concurrency / latency.
  const double conc = spec.sm_count * spec.max_warps_per_sm * occ *
                      spec.latency_efficiency;
  const double t_lat = static_cast<double>(stats.warp_global_accesses) *
                       (spec.mem_latency_ns * 1e-9) / std::max(conc, 1.0);

  // Shared-memory bandwidth term.
  const double t_smem =
      static_cast<double>(stats.shared_bytes) / (spec.shared_bw_gbps * 1e9);

  // Compute term. Block-wide barriers stall every thread of the block for
  // a few pipeline slots; charge them as equivalent ALU work.
  const double barrier_ops = static_cast<double>(stats.barriers) *
                             cfg.block_threads * 3.0;
  const double t_comp =
      (static_cast<double>(stats.compute_ops) + barrier_ops) /
      spec.int_ops_per_sec;

  // Block-scheduling term: many tiny blocks pay dispatch/drain overhead.
  const double t_sched = static_cast<double>(cfg.grid_dim) *
                         (spec.block_sched_ns * 1e-9) / spec.sm_count;

  // Memory-system terms (global bandwidth, latency hiding, block dispatch)
  // overlap with each other; shared-memory and ALU work both occupy the SM
  // core pipelines and therefore add on top of the memory-system critical
  // path (this additive split is what makes Section 4.2's Optimization 3 —
  // pure compute reduction — visible even in bandwidth-bound kernels).
  TimeBreakdown breakdown;
  breakdown.launch_ms = spec.kernel_launch_us * 1e-3;
  breakdown.bandwidth_ms = t_bw * 1e3;
  breakdown.latency_ms = t_lat * 1e3;
  breakdown.scheduling_ms = t_sched * 1e3;
  breakdown.shared_ms = t_smem * 1e3;
  breakdown.compute_ms = t_comp * 1e3;
  breakdown.occupancy = occ;

  // Serialized device-global atomics (persistent-scheduler counter pops).
  breakdown.atomic_ms =
      static_cast<double>(stats.atomic_ops) * spec.atomic_op_ns * 1e-6;

  // Wave-aware tail: the flat roofline above assumes perfectly balanced
  // blocks; the imbalance factor from the per-work-item cost distribution
  // stretches the roofline body (not the fixed launch overhead) by the time
  // the slowest block of each wave stalls its SMs.
  breakdown.wave = AnalyzeWaves(spec, cfg, stats);
  const double body_ms =
      std::max({breakdown.bandwidth_ms, breakdown.latency_ms,
                breakdown.scheduling_ms}) +
      breakdown.shared_ms + breakdown.compute_ms;
  breakdown.wave.tail_ms = (breakdown.wave.imbalance - 1.0) * body_ms;
  return breakdown;
}

double EstimateKernelTimeMs(const DeviceSpec& spec, const LaunchConfig& cfg,
                            const KernelStats& stats) {
  return AnalyzeKernel(spec, cfg, stats).total_ms();
}

double EstimateTransferMs(const DeviceSpec& spec, uint64_t bytes) {
  return static_cast<double>(bytes) / (spec.pcie_gbps * 1e9) * 1e3;
}

}  // namespace tilecomp::sim
