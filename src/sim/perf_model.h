// Analytic timing model: converts measured kernel work (KernelStats) into
// modeled wall-clock time on the simulated device.
//
// The model is a max-of-bottlenecks roofline:
//
//   t = launch + max( global_bytes / BW_eff(occupancy),
//                     warp_accesses * latency / concurrency(occupancy),
//                     shared_bytes / BW_shared,
//                     compute_ops / IPS,
//                     grid_dim * block_sched / sm_count )
//
// with occupancy derived from the per-thread register and shared-memory
// budgets the paper quotes for the V100 (Section 4.2), and register spilling
// beyond the hard limit converted into extra global traffic. Constants are
// calibrated against the paper's own ablation numbers (Section 4.2: 18 ms ->
// 7 ms -> 2.4 ms -> 2.1 ms for 500M ints at bitwidth 16).
//
// On top of the flat roofline sits a wave-aware scheduling model. When a
// launch carries per-work-item cost samples (KernelStats::block_cost), its
// blocks are modeled as executing in waves of `slots = sm_count *
// blocks_per_sm(resource occupancy)` concurrent blocks:
//
//   static     makespan = (waves-1) * E[max of slots samples]
//                         + E[max of remainder samples]
//   persistent makespan = total/slots            (perfect stealing)
//                         + max^2 * slots / (2 * total)   (one straggler)
//                         + mean * (waves - items/slots)  (final-wave drain)
//
// both clamped to >= max sample. The ratio of the makespan to the perfectly
// balanced makespan (total / slots) is the imbalance factor; (factor - 1) x
// the flat roofline body is charged as TimeBreakdown.wave.tail_ms.
// Fixed-cost kernels have a single-bucket cost histogram, so the factor
// collapses to the ceil(items/slots) quantization tail (~1.6% for the
// Section 4.2 shapes) and the calibration pins do not move. Launches with
// no cost samples (hand-built KernelStats) keep factor 1 exactly.
// Device-global atomics add `atomic_ops * atomic_op_ns` as
// TimeBreakdown.atomic_ms. Neither surcharge competes for the limiter.
#ifndef TILECOMP_SIM_PERF_MODEL_H_
#define TILECOMP_SIM_PERF_MODEL_H_

#include <cstdint>

#include "sim/device_spec.h"
#include "sim/stats.h"

namespace tilecomp::sim {

// Fraction of the SM's warp slots occupied given the launch's per-thread
// register and shared-memory demands. In [0, 1].
double Occupancy(const DeviceSpec& spec, const LaunchConfig& cfg);

// Occupancy from per-block resources only (registers + shared memory),
// ignoring whether the grid is large enough to fill the machine. This is
// the occupancy a persistent kernel sizes its grid against — using
// Occupancy() there would be circular, since the grid size is what is being
// chosen.
double ResourceOccupancy(const DeviceSpec& spec, const LaunchConfig& cfg);

// Number of blocks of this shape the machine holds concurrently — one
// scheduling wave: sm_count * blocks_per_sm at resource occupancy, capped
// by the hardware residency limit. Always >= sm_count (one block per SM
// can always be resident).
int64_t WaveSlots(const DeviceSpec& spec, const LaunchConfig& cfg);

// Grid size for a persistent kernel over `work_items` tiles: fill the
// machine exactly once, or less when there are fewer tiles than slots.
// Always >= 1 so a launch happens even for an empty input.
int64_t PersistentGridDim(const DeviceSpec& spec, const LaunchConfig& cfg,
                          int64_t work_items);

// The full per-term analysis of one kernel launch: every roofline term in
// milliseconds plus the achieved occupancy. `result.total_ms()` is the
// modeled kernel time and `result.limiter()` classifies the launch as
// bandwidth-, latency-, scheduling-, shared- or compute-bound. This is what
// the telemetry layer records per span.
TimeBreakdown AnalyzeKernel(const DeviceSpec& spec, const LaunchConfig& cfg,
                            const KernelStats& stats);

// Modeled execution time of one kernel, in milliseconds (excluding data
// transfer over PCIe; see EstimateTransferMs). Shorthand for
// AnalyzeKernel(...).total_ms().
double EstimateKernelTimeMs(const DeviceSpec& spec, const LaunchConfig& cfg,
                            const KernelStats& stats);

// Modeled host<->device transfer time over PCIe, in milliseconds.
double EstimateTransferMs(const DeviceSpec& spec, uint64_t bytes);

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_PERF_MODEL_H_
