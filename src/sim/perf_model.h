// Analytic timing model: converts measured kernel work (KernelStats) into
// modeled wall-clock time on the simulated device.
//
// The model is a max-of-bottlenecks roofline:
//
//   t = launch + max( global_bytes / BW_eff(occupancy),
//                     warp_accesses * latency / concurrency(occupancy),
//                     shared_bytes / BW_shared,
//                     compute_ops / IPS,
//                     grid_dim * block_sched / sm_count )
//
// with occupancy derived from the per-thread register and shared-memory
// budgets the paper quotes for the V100 (Section 4.2), and register spilling
// beyond the hard limit converted into extra global traffic. Constants are
// calibrated against the paper's own ablation numbers (Section 4.2: 18 ms ->
// 7 ms -> 2.4 ms -> 2.1 ms for 500M ints at bitwidth 16).
#ifndef TILECOMP_SIM_PERF_MODEL_H_
#define TILECOMP_SIM_PERF_MODEL_H_

#include "sim/device_spec.h"
#include "sim/stats.h"

namespace tilecomp::sim {

// Fraction of the SM's warp slots occupied given the launch's per-thread
// register and shared-memory demands. In [0, 1].
double Occupancy(const DeviceSpec& spec, const LaunchConfig& cfg);

// The full per-term analysis of one kernel launch: every roofline term in
// milliseconds plus the achieved occupancy. `result.total_ms()` is the
// modeled kernel time and `result.limiter()` classifies the launch as
// bandwidth-, latency-, scheduling-, shared- or compute-bound. This is what
// the telemetry layer records per span.
TimeBreakdown AnalyzeKernel(const DeviceSpec& spec, const LaunchConfig& cfg,
                            const KernelStats& stats);

// Modeled execution time of one kernel, in milliseconds (excluding data
// transfer over PCIe; see EstimateTransferMs). Shorthand for
// AnalyzeKernel(...).total_ms().
double EstimateKernelTimeMs(const DeviceSpec& spec, const LaunchConfig& cfg,
                            const KernelStats& stats);

// Modeled host<->device transfer time over PCIe, in milliseconds.
double EstimateTransferMs(const DeviceSpec& spec, uint64_t bytes);

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_PERF_MODEL_H_
