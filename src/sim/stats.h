// Traffic and work counters collected while executing a simulated kernel.
#ifndef TILECOMP_SIM_STATS_H_
#define TILECOMP_SIM_STATS_H_

#include <cstdint>

namespace tilecomp::sim {

// Counters for one kernel execution (or an accumulation over several).
// All global-memory byte counts are sector-accurate: every access is rounded
// to the 32-byte sectors it touches, so uncoalesced access patterns cost
// more bytes than the data they return — exactly the effect the paper's
// optimizations 1-3 (Section 4.2) target.
struct KernelStats {
  uint64_t global_bytes_read = 0;
  uint64_t global_bytes_written = 0;
  // Number of warp-level global load/store instructions issued. Drives the
  // latency term of the performance model.
  uint64_t warp_global_accesses = 0;
  // Bytes moved through shared memory (reads + writes).
  uint64_t shared_bytes = 0;
  // Simple integer/ALU operations executed.
  uint64_t compute_ops = 0;
  // Number of block-wide barriers (__syncthreads) executed, summed over
  // blocks.
  uint64_t barriers = 0;

  uint64_t global_bytes_total() const {
    return global_bytes_read + global_bytes_written;
  }

  KernelStats& operator+=(const KernelStats& o) {
    global_bytes_read += o.global_bytes_read;
    global_bytes_written += o.global_bytes_written;
    warp_global_accesses += o.warp_global_accesses;
    shared_bytes += o.shared_bytes;
    compute_ops += o.compute_ops;
    barriers += o.barriers;
    return *this;
  }
};

// Static launch configuration of a kernel; consumed by the occupancy model.
struct LaunchConfig {
  // Number of thread blocks.
  int64_t grid_dim = 0;
  // Threads per block (32..1024).
  int block_threads = 128;
  // Declared shared memory per block, bytes.
  int smem_bytes_per_block = 0;
  // Estimated live registers per thread.
  int regs_per_thread = 32;
};

// Result of launching one kernel: measured work plus modeled time.
struct KernelResult {
  LaunchConfig config;
  KernelStats stats;
  double time_ms = 0.0;
};

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_STATS_H_
