// Traffic and work counters collected while executing a simulated kernel.
#ifndef TILECOMP_SIM_STATS_H_
#define TILECOMP_SIM_STATS_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>

namespace tilecomp::sim {

// How a kernel's thread blocks map onto its work items (tiles).
//   kStatic     — one block per tile, grid_dim == number of tiles; the
//                 hardware scheduler assigns blocks to SMs in waves.
//   kPersistent — the grid is sized to fill the machine once and each block
//                 loops `tile = counter.fetch_add(1)` over a device-global
//                 counter (work stealing), paying per-pop atomic cost but
//                 never stalling a wave on its slowest tile.
enum class Scheduling {
  kStatic,
  kPersistent,
};

const char* SchedulingName(Scheduling scheduling);

// Distribution of per-work-item cost samples, reduced to O(1) space: exact
// count/min/max/total plus a log2-bucketed histogram (bucket b holds samples
// whose bit width is b, and each bucket tracks its own sum so uniform
// distributions — all samples in one bucket — stay exact). This is what the
// wave-aware scheduling model in perf_model.cc consumes: it needs the shape
// of the block-cost distribution, not every block, to estimate the expected
// slowest block per scheduling wave.
struct BlockCostSummary {
  // One bucket per possible bit width of a uint64_t cost (0..64).
  static constexpr int kBuckets = 65;

  uint64_t count = 0;
  uint64_t min_cost = 0;  // meaningful only when count > 0
  uint64_t max_cost = 0;
  uint64_t total_cost = 0;
  uint64_t bucket_count[kBuckets] = {};
  uint64_t bucket_total[kBuckets] = {};

  static int BucketIndex(uint64_t cost) {
    return static_cast<int>(std::bit_width(cost));
  }

  void Add(uint64_t cost) {
    if (count == 0 || cost < min_cost) min_cost = cost;
    max_cost = std::max(max_cost, cost);
    ++count;
    total_cost += cost;
    const int b = BucketIndex(cost);
    ++bucket_count[b];
    bucket_total[b] += cost;
  }

  void Merge(const BlockCostSummary& o) {
    if (o.count == 0) return;
    min_cost = count == 0 ? o.min_cost : std::min(min_cost, o.min_cost);
    max_cost = std::max(max_cost, o.max_cost);
    count += o.count;
    total_cost += o.total_cost;
    for (int b = 0; b < kBuckets; ++b) {
      bucket_count[b] += o.bucket_count[b];
      bucket_total[b] += o.bucket_total[b];
    }
  }

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_cost) /
                            static_cast<double>(count);
  }

  // Approximate p-quantile (p in [0, 1]): the mean of the bucket containing
  // the p-th sample. Exact when the distribution is bucket-uniform.
  double Percentile(double p) const {
    if (count == 0) return 0.0;
    const double target = p * static_cast<double>(count);
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (bucket_count[b] == 0) continue;
      cum += bucket_count[b];
      if (static_cast<double>(cum) >= target) {
        return static_cast<double>(bucket_total[b]) /
               static_cast<double>(bucket_count[b]);
      }
    }
    return static_cast<double>(max_cost);
  }

  // Expected maximum of k independent draws from this distribution,
  // E[max] = sum_b mean_b * (F_b^k - F_{b-1}^k) over the bucket CDF F.
  // This is the expected cost of the slowest block in a wave of k blocks.
  double ExpectedMax(uint64_t k) const {
    if (count == 0 || k == 0) return 0.0;
    double expected = 0.0;
    double prev_pow = 0.0;
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (bucket_count[b] == 0) continue;
      cum += bucket_count[b];
      const double cdf =
          static_cast<double>(cum) / static_cast<double>(count);
      const double cdf_pow = std::pow(cdf, static_cast<double>(k));
      expected += static_cast<double>(bucket_total[b]) /
                  static_cast<double>(bucket_count[b]) * (cdf_pow - prev_pow);
      prev_pow = cdf_pow;
    }
    return expected;
  }
};

// Decompressed-tile-cache events observed during one kernel execution (the
// serving layer's tile cache, src/serve/tile_cache.h). A hit replaces an
// inline tile decode with a raw read of the cached decompressed tile;
// `saved_bytes` accumulates the encoded bytes each hit did not have to read.
// Kernels that never touch a cache leave all counters at zero and the
// telemetry layer still exports them (trace schema v4).
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t saved_bytes = 0;
  // Demand hits served by a tile the prefetcher staged speculatively —
  // counted separately from `hits` (demand-inserted tiles) so the trace can
  // attribute a kernel's cache luck to speculation vs its own history
  // (trace schema v7).
  uint64_t prefetch_hits = 0;

  uint64_t accesses() const { return hits + prefetch_hits + misses; }
  double hit_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(hits + prefetch_hits) /
                                 static_cast<double>(accesses());
  }

  CacheCounters& operator+=(const CacheCounters& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    saved_bytes += o.saved_bytes;
    prefetch_hits += o.prefetch_hits;
    return *this;
  }
};

// Speculative-prefetch events observed during one kernel execution (the
// serving layer's tile prefetcher, src/serve/prefetcher.h). The prefetch
// decode kernels count `issued` (speculative tile decodes launched), `late`
// (the tile was already resident when the speculative insert landed — the
// demand path beat the prediction) and `wasted` (the decode faulted or the
// insert was refused, so the work can never pay off); the query kernels
// count `useful` (first demand hit on a still-speculative entry, which
// promotes it). Speculative entries evicted before any hit are a second
// source of waste accounted at the cache level, where the eviction happens.
// Exported as the per-kernel "prefetch" object of trace schema v7.
struct PrefetchCounters {
  uint64_t issued = 0;
  uint64_t useful = 0;
  uint64_t wasted = 0;
  uint64_t late = 0;

  double wasted_rate() const {
    return issued == 0
               ? 0.0
               : static_cast<double>(wasted) / static_cast<double>(issued);
  }

  PrefetchCounters& operator+=(const PrefetchCounters& o) {
    issued += o.issued;
    useful += o.useful;
    wasted += o.wasted;
    late += o.late;
    return *this;
  }
};

// Compressed-domain predicate-pushdown events observed during one kernel
// execution. A pruned tile never touched its payload (the zone map answered
// from 16 bytes of metadata); a short-circuited block or run was classified
// disjoint/fully-inside from its frame-of-reference bounds without decoding
// its packed values. `tiles_decoded` counts tiles that did go through an
// inline decode, so pruned / (pruned + decoded) is the skip rate. Exported
// as the per-kernel "pushdown" object of trace schema v6.
struct PushdownCounters {
  uint64_t tiles_pruned = 0;
  uint64_t tiles_decoded = 0;
  uint64_t blocks_short_circuited = 0;
  uint64_t runs_short_circuited = 0;

  double prune_rate() const {
    const uint64_t seen = tiles_pruned + tiles_decoded;
    return seen == 0
               ? 0.0
               : static_cast<double>(tiles_pruned) / static_cast<double>(seen);
  }

  PushdownCounters& operator+=(const PushdownCounters& o) {
    tiles_pruned += o.tiles_pruned;
    tiles_decoded += o.tiles_decoded;
    blocks_short_circuited += o.blocks_short_circuited;
    runs_short_circuited += o.runs_short_circuited;
    return *this;
  }
};

// Counters for one kernel execution (or an accumulation over several).
// All global-memory byte counts are sector-accurate: every access is rounded
// to the 32-byte sectors it touches, so uncoalesced access patterns cost
// more bytes than the data they return — exactly the effect the paper's
// optimizations 1-3 (Section 4.2) target.
struct KernelStats {
  uint64_t global_bytes_read = 0;
  uint64_t global_bytes_written = 0;
  // Number of warp-level global load/store instructions issued. Drives the
  // latency term of the performance model.
  uint64_t warp_global_accesses = 0;
  // Bytes moved through shared memory (reads + writes).
  uint64_t shared_bytes = 0;
  // Simple integer/ALU operations executed.
  uint64_t compute_ops = 0;
  // Number of block-wide barriers (__syncthreads) executed, summed over
  // blocks.
  uint64_t barriers = 0;
  // Device-global atomic operations issued (GlobalCounter pops of a
  // persistent scheduler, mostly). Same-address atomics serialize in the L2,
  // so they carry a per-op time charge in the perf model.
  uint64_t atomic_ops = 0;
  // Decompressed-tile-cache events (serving layer); all-zero for kernels
  // that do not go through a cache-aware load path.
  CacheCounters cache;
  // Predicate-pushdown events; all-zero for kernels that decode everything.
  PushdownCounters pushdown;
  // Speculative-prefetch events; all-zero for kernels that neither issue
  // speculative decodes nor hit speculatively staged tiles.
  PrefetchCounters prefetch;
  // Per-work-item cost distribution feeding the wave-aware scheduling model.
  // Device::Launch records one sample per block unless the kernel body
  // sampled its own work items via BlockContext::EndWorkItem().
  BlockCostSummary block_cost;

  uint64_t global_bytes_total() const {
    return global_bytes_read + global_bytes_written;
  }

  KernelStats& operator+=(const KernelStats& o) {
    global_bytes_read += o.global_bytes_read;
    global_bytes_written += o.global_bytes_written;
    warp_global_accesses += o.warp_global_accesses;
    shared_bytes += o.shared_bytes;
    compute_ops += o.compute_ops;
    barriers += o.barriers;
    atomic_ops += o.atomic_ops;
    cache += o.cache;
    pushdown += o.pushdown;
    prefetch += o.prefetch;
    block_cost.Merge(o.block_cost);
    return *this;
  }
};

// Scalar cost proxy for the work accumulated in `stats`, in byte-equivalents
// of global traffic: raw global bytes, plus one 32 B sector charge per warp
// access (latency weight), plus shared/compute scaled by their throughput
// ratios to global bandwidth (~10x each on the default spec). Per-work-item
// cost samples are deltas of this proxy; only the relative spread across
// work items matters to the wave model, not the absolute scale.
inline uint64_t BlockCostProxy(const KernelStats& s) {
  return s.global_bytes_read + s.global_bytes_written +
         32 * s.warp_global_accesses + s.shared_bytes / 10 +
         s.compute_ops / 10;
}

// Static launch configuration of a kernel; consumed by the occupancy model.
struct LaunchConfig {
  // Number of thread blocks.
  int64_t grid_dim = 0;
  // Threads per block (32..1024).
  int block_threads = 128;
  // Declared shared memory per block, bytes.
  int smem_bytes_per_block = 0;
  // Estimated live registers per thread.
  int regs_per_thread = 32;
  // How blocks map onto work items; selects the static or the work-stealing
  // makespan estimate of the wave model (see perf_model.h).
  Scheduling scheduling = Scheduling::kStatic;
};

// What a kernel is bound by: the largest term of the perf model's
// max-of-bottlenecks roofline (see perf_model.h).
enum class Limiter {
  kBandwidth,   // global-memory bandwidth
  kLatency,     // memory latency / issue rate (Little's law)
  kScheduling,  // thread-block dispatch overhead
  kShared,      // shared-memory bandwidth
  kCompute,     // ALU throughput (incl. barrier drain)
};

const char* LimiterName(Limiter limiter);

// Wave-level view of one launch: how the per-block cost distribution maps
// onto scheduling waves of `slots` concurrent blocks, and what the
// imbalance costs on top of the flat roofline. Produced by AnalyzeKernel
// when per-block cost samples are available (wave fields stay at their
// defaults otherwise, leaving the flat model untouched).
struct WaveStats {
  Scheduling scheduling = Scheduling::kStatic;
  // Blocks the machine holds concurrently: sm_count * blocks_per_sm at the
  // launch's resource occupancy.
  int64_t slots = 0;
  // ceil(work items / slots); 0 when no cost samples were recorded.
  int64_t waves = 0;
  // Per-work-item cost-proxy statistics (byte-equivalents; see
  // BlockCostProxy).
  double mean_cost = 0.0;
  double max_cost = 0.0;
  double p99_cost = 0.0;
  // Modeled makespan over the perfectly balanced makespan, >= 1. Static
  // scheduling pays the expected slowest block of every wave; work stealing
  // pays one straggler plus final-wave drain.
  double imbalance = 1.0;
  // The extra time the imbalance adds on top of the flat roofline, ms.
  double tail_ms = 0.0;
};

// The perf model's per-launch time terms, exposed so a tracer can tell
// *why* a kernel is slow, not just how slow it is. Memory-system terms
// (bandwidth, latency, scheduling) overlap; shared and compute add on top
// (see EstimateKernelTimeMs).
struct TimeBreakdown {
  double launch_ms = 0.0;
  double bandwidth_ms = 0.0;
  double latency_ms = 0.0;
  double scheduling_ms = 0.0;
  double shared_ms = 0.0;
  double compute_ms = 0.0;
  // Serialized device-global atomic time (atomic_ops * atomic_op_ns), ms.
  double atomic_ms = 0.0;
  // Occupancy the launch achieved, in [0, 1].
  double occupancy = 0.0;
  // Wave/imbalance analysis; wave.tail_ms is the only wave field that feeds
  // total_ms(). Neither tail nor atomic time competes for the limiter —
  // they are surcharges on the winning roofline term, not alternatives.
  WaveStats wave;

  double total_ms() const {
    return launch_ms + std::max({bandwidth_ms, latency_ms, scheduling_ms}) +
           shared_ms + compute_ms + wave.tail_ms + atomic_ms;
  }

  // The dominant term: what the launch is bound by.
  Limiter limiter() const {
    Limiter which = Limiter::kBandwidth;
    double best = bandwidth_ms;
    if (latency_ms > best) { best = latency_ms; which = Limiter::kLatency; }
    if (scheduling_ms > best) {
      best = scheduling_ms;
      which = Limiter::kScheduling;
    }
    if (shared_ms > best) { best = shared_ms; which = Limiter::kShared; }
    if (compute_ms > best) { best = compute_ms; which = Limiter::kCompute; }
    return which;
  }
};

// Result of launching one kernel: measured work plus modeled time, the
// launch's position on the device timeline, and the perf-model breakdown
// that explains the modeled time.
struct KernelResult {
  // Name given at the launch site (e.g. "gpurfor.fused"); "kernel" when the
  // launch site does not name itself.
  std::string label = "kernel";
  LaunchConfig config;
  KernelStats stats;
  double time_ms = 0.0;
  // Device timeline position at which the launch started, ms.
  double start_ms = 0.0;
  // Stream the launch was issued on (0 = the synchronizing default stream).
  int stream_id = 0;
  // Fault-injection outcome (trace schema v5): number of re-issues after an
  // injected launch fault, and whether the launch exhausted its attempt
  // budget. A failed launch never ran its body — its stats are all zero and
  // its time covers only the failed issue attempts — and every consumer
  // must treat the output it would have produced as invalid.
  int fault_retries = 0;
  bool failed = false;
  TimeBreakdown breakdown;
};

inline const char* SchedulingName(Scheduling scheduling) {
  switch (scheduling) {
    case Scheduling::kStatic:
      return "static";
    case Scheduling::kPersistent:
      return "persistent";
  }
  return "?";
}

inline const char* LimiterName(Limiter limiter) {
  switch (limiter) {
    case Limiter::kBandwidth:
      return "bandwidth";
    case Limiter::kLatency:
      return "latency";
    case Limiter::kScheduling:
      return "scheduling";
    case Limiter::kShared:
      return "shared";
    case Limiter::kCompute:
      return "compute";
  }
  return "?";
}

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_STATS_H_
