// Traffic and work counters collected while executing a simulated kernel.
#ifndef TILECOMP_SIM_STATS_H_
#define TILECOMP_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace tilecomp::sim {

// Counters for one kernel execution (or an accumulation over several).
// All global-memory byte counts are sector-accurate: every access is rounded
// to the 32-byte sectors it touches, so uncoalesced access patterns cost
// more bytes than the data they return — exactly the effect the paper's
// optimizations 1-3 (Section 4.2) target.
struct KernelStats {
  uint64_t global_bytes_read = 0;
  uint64_t global_bytes_written = 0;
  // Number of warp-level global load/store instructions issued. Drives the
  // latency term of the performance model.
  uint64_t warp_global_accesses = 0;
  // Bytes moved through shared memory (reads + writes).
  uint64_t shared_bytes = 0;
  // Simple integer/ALU operations executed.
  uint64_t compute_ops = 0;
  // Number of block-wide barriers (__syncthreads) executed, summed over
  // blocks.
  uint64_t barriers = 0;

  uint64_t global_bytes_total() const {
    return global_bytes_read + global_bytes_written;
  }

  KernelStats& operator+=(const KernelStats& o) {
    global_bytes_read += o.global_bytes_read;
    global_bytes_written += o.global_bytes_written;
    warp_global_accesses += o.warp_global_accesses;
    shared_bytes += o.shared_bytes;
    compute_ops += o.compute_ops;
    barriers += o.barriers;
    return *this;
  }
};

// Static launch configuration of a kernel; consumed by the occupancy model.
struct LaunchConfig {
  // Number of thread blocks.
  int64_t grid_dim = 0;
  // Threads per block (32..1024).
  int block_threads = 128;
  // Declared shared memory per block, bytes.
  int smem_bytes_per_block = 0;
  // Estimated live registers per thread.
  int regs_per_thread = 32;
};

// What a kernel is bound by: the largest term of the perf model's
// max-of-bottlenecks roofline (see perf_model.h).
enum class Limiter {
  kBandwidth,   // global-memory bandwidth
  kLatency,     // memory latency / issue rate (Little's law)
  kScheduling,  // thread-block dispatch overhead
  kShared,      // shared-memory bandwidth
  kCompute,     // ALU throughput (incl. barrier drain)
};

const char* LimiterName(Limiter limiter);

// The perf model's per-launch time terms, exposed so a tracer can tell
// *why* a kernel is slow, not just how slow it is. Memory-system terms
// (bandwidth, latency, scheduling) overlap; shared and compute add on top
// (see EstimateKernelTimeMs).
struct TimeBreakdown {
  double launch_ms = 0.0;
  double bandwidth_ms = 0.0;
  double latency_ms = 0.0;
  double scheduling_ms = 0.0;
  double shared_ms = 0.0;
  double compute_ms = 0.0;
  // Occupancy the launch achieved, in [0, 1].
  double occupancy = 0.0;

  double total_ms() const {
    return launch_ms + std::max({bandwidth_ms, latency_ms, scheduling_ms}) +
           shared_ms + compute_ms;
  }

  // The dominant term: what the launch is bound by.
  Limiter limiter() const {
    Limiter which = Limiter::kBandwidth;
    double best = bandwidth_ms;
    if (latency_ms > best) { best = latency_ms; which = Limiter::kLatency; }
    if (scheduling_ms > best) {
      best = scheduling_ms;
      which = Limiter::kScheduling;
    }
    if (shared_ms > best) { best = shared_ms; which = Limiter::kShared; }
    if (compute_ms > best) { best = compute_ms; which = Limiter::kCompute; }
    return which;
  }
};

// Result of launching one kernel: measured work plus modeled time, the
// launch's position on the device timeline, and the perf-model breakdown
// that explains the modeled time.
struct KernelResult {
  // Name given at the launch site (e.g. "gpurfor.fused"); "kernel" when the
  // launch site does not name itself.
  std::string label = "kernel";
  LaunchConfig config;
  KernelStats stats;
  double time_ms = 0.0;
  // Device timeline position at which the launch started, ms.
  double start_ms = 0.0;
  // Stream the launch was issued on (0 = the synchronizing default stream).
  int stream_id = 0;
  TimeBreakdown breakdown;
};

inline const char* LimiterName(Limiter limiter) {
  switch (limiter) {
    case Limiter::kBandwidth:
      return "bandwidth";
    case Limiter::kLatency:
      return "latency";
    case Limiter::kScheduling:
      return "scheduling";
    case Limiter::kShared:
      return "shared";
    case Limiter::kCompute:
      return "compute";
  }
  return "?";
}

}  // namespace tilecomp::sim

#endif  // TILECOMP_SIM_STATS_H_
