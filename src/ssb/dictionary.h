// Order-preserving string dictionary. SSB string attributes are dictionary
// encoded into integers before loading (Section 9.4: "we dictionary encode
// the string columns into integers prior to data loading and the queries
// run directly on dictionary-encoded values").
#ifndef TILECOMP_SSB_DICTIONARY_H_
#define TILECOMP_SSB_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace tilecomp::ssb {

class Dictionary {
 public:
  // Returns the code for `value`, inserting it if new. Codes are assigned
  // in insertion order; generators insert in sorted order so that range
  // predicates on strings map to range predicates on codes.
  uint32_t GetOrAdd(const std::string& value) {
    auto it = index_.find(value);
    if (it != index_.end()) return it->second;
    const uint32_t code = static_cast<uint32_t>(values_.size());
    values_.push_back(value);
    index_.emplace(value, code);
    return code;
  }

  // Code lookup for a value that must exist (query constants).
  uint32_t Code(const std::string& value) const {
    auto it = index_.find(value);
    TILECOMP_CHECK_MSG(it != index_.end(), value.c_str());
    return it->second;
  }

  bool Contains(const std::string& value) const {
    return index_.count(value) > 0;
  }

  const std::string& Value(uint32_t code) const {
    TILECOMP_CHECK(code < values_.size());
    return values_[code];
  }

  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace tilecomp::ssb

#endif  // TILECOMP_SSB_DICTIONARY_H_
