#include "ssb/generator.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"
#include "common/random.h"

namespace tilecomp::ssb {

namespace {

struct NationInfo {
  const char* name;
  const char* region;
};

// The 25 dbgen nations and their regions.
constexpr NationInfo kNations[] = {
    {"ALGERIA", "AFRICA"},        {"ARGENTINA", "AMERICA"},
    {"BRAZIL", "AMERICA"},        {"CANADA", "AMERICA"},
    {"CHINA", "ASIA"},            {"EGYPT", "MIDDLE EAST"},
    {"ETHIOPIA", "AFRICA"},       {"FRANCE", "EUROPE"},
    {"GERMANY", "EUROPE"},        {"INDIA", "ASIA"},
    {"INDONESIA", "ASIA"},        {"IRAN", "MIDDLE EAST"},
    {"IRAQ", "MIDDLE EAST"},      {"JAPAN", "ASIA"},
    {"JORDAN", "MIDDLE EAST"},    {"KENYA", "AFRICA"},
    {"MOROCCO", "AFRICA"},        {"MOZAMBIQUE", "AFRICA"},
    {"PERU", "AMERICA"},          {"ROMANIA", "EUROPE"},
    {"RUSSIA", "EUROPE"},         {"SAUDI ARABIA", "MIDDLE EAST"},
    {"UNITED KINGDOM", "EUROPE"}, {"UNITED STATES", "AMERICA"},
    {"VIETNAM", "ASIA"},
};
constexpr int kNumNations = 25;

constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                   "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int DaysInMonth(int y, int m) {
  static const int days[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  return (m == 2 && IsLeap(y)) ? 29 : days[m - 1];
}

// dbgen city: first 9 characters of the nation (space padded) + one digit.
std::string CityName(const std::string& nation, int digit) {
  std::string prefix = nation.substr(0, 9);
  prefix.resize(9, ' ');
  return prefix + static_cast<char>('0' + digit);
}

}  // namespace

const char* LoColName(LoCol col) {
  switch (col) {
    case LoCol::kOrderkey:
      return "orderkey";
    case LoCol::kOrderdate:
      return "orderdate";
    case LoCol::kOrdtotalprice:
      return "ordtotalprice";
    case LoCol::kCustkey:
      return "custkey";
    case LoCol::kPartkey:
      return "partkey";
    case LoCol::kSuppkey:
      return "suppkey";
    case LoCol::kLinenumber:
      return "linenumber";
    case LoCol::kQuantity:
      return "quantity";
    case LoCol::kTax:
      return "tax";
    case LoCol::kDiscount:
      return "discount";
    case LoCol::kCommitdate:
      return "commitdate";
    case LoCol::kExtendedprice:
      return "extendedprice";
    case LoCol::kRevenue:
      return "revenue";
    case LoCol::kSupplycost:
      return "supplycost";
  }
  return "?";
}

const std::vector<uint32_t>& LineorderTable::column(LoCol col) const {
  switch (col) {
    case LoCol::kOrderkey:
      return orderkey;
    case LoCol::kOrderdate:
      return orderdate;
    case LoCol::kOrdtotalprice:
      return ordtotalprice;
    case LoCol::kCustkey:
      return custkey;
    case LoCol::kPartkey:
      return partkey;
    case LoCol::kSuppkey:
      return suppkey;
    case LoCol::kLinenumber:
      return linenumber;
    case LoCol::kQuantity:
      return quantity;
    case LoCol::kTax:
      return tax;
    case LoCol::kDiscount:
      return discount;
    case LoCol::kCommitdate:
      return commitdate;
    case LoCol::kExtendedprice:
      return extendedprice;
    case LoCol::kRevenue:
      return revenue;
    case LoCol::kSupplycost:
      return supplycost;
  }
  return orderkey;
}

uint64_t SsbData::total_bytes() const {
  uint64_t n = 0;
  for (int c = 0; c < kNumLoCols; ++c) {
    n += lineorder.column(static_cast<LoCol>(c)).size();
  }
  n += date.datekey.size() * 5;
  n += supplier.suppkey.size() * 4;
  n += customer.custkey.size() * 4;
  n += part.partkey.size() * 4;
  return n * 4;
}

SsbData GenerateSsb(const GeneratorOptions& options) {
  TILECOMP_CHECK(options.scale_factor >= 1);
  TILECOMP_CHECK(options.row_divisor >= 1);
  SsbData data;
  data.scale_factor = options.scale_factor;
  Rng rng(options.seed);

  // --- Dictionaries (inserted in sorted order: order-preserving codes) ---
  {
    std::vector<std::string> regions = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                        "MIDDLE EAST"};
    for (const auto& r : regions) data.region_dict.GetOrAdd(r);
    for (const auto& n : kNations) data.nation_dict.GetOrAdd(n.name);
    for (const auto& n : kNations) {
      for (int d = 0; d < 10; ++d) {
        data.city_dict.GetOrAdd(CityName(n.name, d));
      }
    }
    char buf[16];
    for (int m = 1; m <= 5; ++m) {
      std::snprintf(buf, sizeof(buf), "MFGR#%d", m);
      data.mfgr_dict.GetOrAdd(buf);
    }
    for (int m = 1; m <= 5; ++m) {
      for (int c = 1; c <= 5; ++c) {
        std::snprintf(buf, sizeof(buf), "MFGR#%d%d", m, c);
        data.category_dict.GetOrAdd(buf);
      }
    }
    // Brand = category + a 2-digit suffix 1..40 (zero padded so that the
    // dictionary's insertion order is also the query's string order).
    for (int m = 1; m <= 5; ++m) {
      for (int c = 1; c <= 5; ++c) {
        for (int b = 1; b <= 40; ++b) {
          std::snprintf(buf, sizeof(buf), "MFGR#%d%d%02d", m, c, b);
          data.brand_dict.GetOrAdd(buf);
        }
      }
    }
    for (int y = 1992; y <= 1998; ++y) {
      for (int m = 0; m < 12; ++m) {
        data.yearmonth_dict.GetOrAdd(std::string(kMonths[m]) +
                                     std::to_string(y));
      }
    }
  }

  // --- Date: one row per day, 1992-01-01 .. 1998-12-31 ---
  for (int y = 1992; y <= 1998; ++y) {
    int day_of_year = 0;
    for (int m = 1; m <= 12; ++m) {
      for (int d = 1; d <= DaysInMonth(y, m); ++d) {
        ++day_of_year;
        data.date.datekey.push_back(y * 10000 + m * 100 + d);
        data.date.year.push_back(y);
        data.date.yearmonthnum.push_back(y * 100 + m);
        data.date.yearmonth.push_back(data.yearmonth_dict.Code(
            std::string(kMonths[m - 1]) + std::to_string(y)));
        data.date.weeknuminyear.push_back((day_of_year - 1) / 7 + 1);
      }
    }
  }
  const uint32_t num_days = data.date.size();

  // --- Supplier: 2,000 * SF rows ---
  const uint32_t num_suppliers = 2000u * options.scale_factor;
  for (uint32_t i = 0; i < num_suppliers; ++i) {
    const NationInfo& n = kNations[rng.NextBounded(kNumNations)];
    data.supplier.suppkey.push_back(i + 1);
    data.supplier.nation.push_back(data.nation_dict.Code(n.name));
    data.supplier.region.push_back(data.region_dict.Code(n.region));
    data.supplier.city.push_back(data.city_dict.Code(
        CityName(n.name, static_cast<int>(rng.NextBounded(10)))));
  }

  // --- Customer: 30,000 * SF rows ---
  const uint32_t num_customers = 30000u * options.scale_factor;
  for (uint32_t i = 0; i < num_customers; ++i) {
    const NationInfo& n = kNations[rng.NextBounded(kNumNations)];
    data.customer.custkey.push_back(i + 1);
    data.customer.nation.push_back(data.nation_dict.Code(n.name));
    data.customer.region.push_back(data.region_dict.Code(n.region));
    data.customer.city.push_back(data.city_dict.Code(
        CityName(n.name, static_cast<int>(rng.NextBounded(10)))));
  }

  // --- Part: 200,000 * (1 + floor(log2 SF)) rows ---
  uint32_t part_mult = 1;
  for (int sf = options.scale_factor; sf > 1; sf >>= 1) ++part_mult;
  const uint32_t num_parts = 200000u * part_mult;
  // Per-part retail price drives extendedprice/supplycost (dbgen-like).
  std::vector<uint32_t> part_price(num_parts);
  for (uint32_t i = 0; i < num_parts; ++i) {
    const uint32_t m = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    const uint32_t c = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    const uint32_t b = 1 + static_cast<uint32_t>(rng.NextBounded(40));
    char buf[16];
    data.part.partkey.push_back(i + 1);
    std::snprintf(buf, sizeof(buf), "MFGR#%u", m);
    data.part.mfgr.push_back(data.mfgr_dict.Code(buf));
    std::snprintf(buf, sizeof(buf), "MFGR#%u%u", m, c);
    data.part.category.push_back(data.category_dict.Code(buf));
    std::snprintf(buf, sizeof(buf), "MFGR#%u%u%02u", m, c, b);
    data.part.brand1.push_back(data.brand_dict.Code(buf));
    part_price[i] = 90000 + static_cast<uint32_t>(rng.NextBounded(20001));
  }

  // --- Lineorder: 1,500,000 * SF orders of 1..7 lines (avg 4) ---
  const uint64_t num_orders =
      1500000ull * options.scale_factor / options.row_divisor;
  LineorderTable& lo = data.lineorder;
  const size_t approx_rows = static_cast<size_t>(num_orders) * 4;
  for (int c = 0; c < kNumLoCols; ++c) {
    // Reserve through the accessor's non-const twin below.
  }
  lo.orderkey.reserve(approx_rows);
  lo.orderdate.reserve(approx_rows);

  for (uint64_t o = 1; o <= num_orders; ++o) {
    const uint32_t lines = 1 + static_cast<uint32_t>(rng.NextBounded(7));
    const uint32_t custkey =
        1 + static_cast<uint32_t>(rng.NextBounded(num_customers));
    const uint32_t date_idx =
        static_cast<uint32_t>(rng.NextBounded(num_days));
    const uint32_t orderdate = data.date.datekey[date_idx];

    uint64_t order_total = 0;
    const size_t first_row = lo.orderkey.size();
    for (uint32_t l = 1; l <= lines; ++l) {
      const uint32_t partkey =
          1 + static_cast<uint32_t>(rng.NextBounded(num_parts));
      const uint32_t suppkey =
          1 + static_cast<uint32_t>(rng.NextBounded(num_suppliers));
      const uint32_t quantity = 1 + static_cast<uint32_t>(rng.NextBounded(50));
      const uint32_t discount = static_cast<uint32_t>(rng.NextBounded(11));
      const uint32_t tax = static_cast<uint32_t>(rng.NextBounded(9));
      const uint32_t price = part_price[partkey - 1];
      const uint32_t eprice = quantity * price / 10;  // dbgen magnitude
      const uint32_t revenue =
          static_cast<uint32_t>(static_cast<uint64_t>(eprice) *
                                (100 - discount) / 100);
      const uint32_t supplycost = 6 * price / 10;
      const uint32_t commit_idx = std::min(
          num_days - 1,
          date_idx + 30 + static_cast<uint32_t>(rng.NextBounded(61)));

      lo.orderkey.push_back(static_cast<uint32_t>(o));
      lo.orderdate.push_back(orderdate);
      lo.custkey.push_back(custkey);
      lo.partkey.push_back(partkey);
      lo.suppkey.push_back(suppkey);
      lo.linenumber.push_back(l);
      lo.quantity.push_back(quantity);
      lo.discount.push_back(discount);
      lo.tax.push_back(tax);
      lo.extendedprice.push_back(eprice);
      lo.revenue.push_back(revenue);
      lo.supplycost.push_back(supplycost);
      lo.commitdate.push_back(data.date.datekey[commit_idx]);
      order_total += eprice;
    }
    // ordtotalprice: the order's total, constant across its lines.
    const uint32_t total32 = static_cast<uint32_t>(
        std::min<uint64_t>(order_total, 0xFFFFFFFFull));
    for (size_t r = first_row; r < lo.orderkey.size(); ++r) {
      lo.ordtotalprice.push_back(total32);
    }
  }
  return data;
}

}  // namespace tilecomp::ssb
