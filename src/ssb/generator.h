// SSB data generator: reproduces dbgen's schema, key domains and — the part
// that matters for compression — the per-column value distributions:
// sorted lo_orderkey with order-sized runs, run-length structure in the
// per-order columns (custkey, orderdate, ordtotalprice), uniform small
// domains (quantity, discount, tax), large random money columns
// (extendedprice, revenue, supplycost), and dictionary-encoded strings.
#ifndef TILECOMP_SSB_GENERATOR_H_
#define TILECOMP_SSB_GENERATOR_H_

#include <cstdint>

#include "ssb/schema.h"

namespace tilecomp::ssb {

struct GeneratorOptions {
  int scale_factor = 1;  // SF n => n * 6,000,000 lineorder rows
  uint64_t seed = 20220612;  // SIGMOD'22 opening day
  // Scale down the row count for fast tests: rows = 6M * sf / divisor.
  uint32_t row_divisor = 1;
};

SsbData GenerateSsb(const GeneratorOptions& options);

// Convenience for tests.
inline SsbData GenerateSsbSmall(uint32_t rows_approx) {
  GeneratorOptions options;
  options.scale_factor = 1;
  options.row_divisor =
      rows_approx == 0 ? 1
                       : static_cast<uint32_t>(6000000 / rows_approx + 1);
  return GenerateSsb(options);
}

}  // namespace tilecomp::ssb

#endif  // TILECOMP_SSB_GENERATOR_H_
