#include "ssb/layout.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/macros.h"

namespace tilecomp::ssb {

void ClusterByOrderdate(LineorderTable* lo) {
  std::vector<uint32_t> idx(lo->size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    return lo->orderdate[a] < lo->orderdate[b];
  });
  auto apply = [&](std::vector<uint32_t>& v) {
    std::vector<uint32_t> out(v.size());
    for (size_t i = 0; i < idx.size(); ++i) out[i] = v[idx[i]];
    v = std::move(out);
  };
  apply(lo->orderkey);
  apply(lo->orderdate);
  apply(lo->ordtotalprice);
  apply(lo->custkey);
  apply(lo->partkey);
  apply(lo->suppkey);
  apply(lo->linenumber);
  apply(lo->quantity);
  apply(lo->tax);
  apply(lo->discount);
  apply(lo->commitdate);
  apply(lo->extendedprice);
  apply(lo->revenue);
  apply(lo->supplycost);
}

LineorderTable SliceRows(const LineorderTable& lo, size_t row_begin,
                         size_t row_end) {
  TILECOMP_CHECK(row_begin <= row_end && row_end <= lo.size());
  LineorderTable out;
  auto slice = [&](const std::vector<uint32_t>& src,
                   std::vector<uint32_t>& dst) {
    dst.assign(src.begin() + static_cast<ptrdiff_t>(row_begin),
               src.begin() + static_cast<ptrdiff_t>(row_end));
  };
  slice(lo.orderkey, out.orderkey);
  slice(lo.orderdate, out.orderdate);
  slice(lo.ordtotalprice, out.ordtotalprice);
  slice(lo.custkey, out.custkey);
  slice(lo.partkey, out.partkey);
  slice(lo.suppkey, out.suppkey);
  slice(lo.linenumber, out.linenumber);
  slice(lo.quantity, out.quantity);
  slice(lo.tax, out.tax);
  slice(lo.discount, out.discount);
  slice(lo.commitdate, out.commitdate);
  slice(lo.extendedprice, out.extendedprice);
  slice(lo.revenue, out.revenue);
  slice(lo.supplycost, out.supplycost);
  return out;
}

LineorderTable SliceRows(const LineorderTable& lo,
                         const std::vector<std::pair<size_t, size_t>>& ranges) {
  size_t total = 0;
  for (const auto& [begin, end] : ranges) {
    TILECOMP_CHECK(begin <= end && end <= lo.size());
    total += end - begin;
  }
  LineorderTable out;
  auto slice = [&](const std::vector<uint32_t>& src,
                   std::vector<uint32_t>& dst) {
    dst.reserve(total);
    for (const auto& [begin, end] : ranges) {
      dst.insert(dst.end(), src.begin() + static_cast<ptrdiff_t>(begin),
                 src.begin() + static_cast<ptrdiff_t>(end));
    }
  };
  slice(lo.orderkey, out.orderkey);
  slice(lo.orderdate, out.orderdate);
  slice(lo.ordtotalprice, out.ordtotalprice);
  slice(lo.custkey, out.custkey);
  slice(lo.partkey, out.partkey);
  slice(lo.suppkey, out.suppkey);
  slice(lo.linenumber, out.linenumber);
  slice(lo.quantity, out.quantity);
  slice(lo.tax, out.tax);
  slice(lo.discount, out.discount);
  slice(lo.commitdate, out.commitdate);
  slice(lo.extendedprice, out.extendedprice);
  slice(lo.revenue, out.revenue);
  slice(lo.supplycost, out.supplycost);
  return out;
}

SsbData ShardData(const SsbData& data, size_t row_begin, size_t row_end) {
  SsbData shard = data;  // replicate dimensions + dictionaries
  shard.lineorder = SliceRows(data.lineorder, row_begin, row_end);
  return shard;
}

SsbData ShardData(const SsbData& data,
                  const std::vector<std::pair<size_t, size_t>>& ranges) {
  SsbData shard = data;  // replicate dimensions + dictionaries
  shard.lineorder = SliceRows(data.lineorder, ranges);
  return shard;
}

}  // namespace tilecomp::ssb
