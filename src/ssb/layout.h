// Physical layout helpers for the lineorder fact table: clustering (sort
// order) and row-range sharding for multi-device placement. Both preserve
// row contents exactly — group-by results are order-independent, so the
// host reference stays the oracle for any layout.
#ifndef TILECOMP_SSB_LAYOUT_H_
#define TILECOMP_SSB_LAYOUT_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "ssb/schema.h"

namespace tilecomp::ssb {

// Physically cluster lineorder by orderdate (stable, so orderkey runs
// survive within a date) — the standard date-partitioned fact-table layout.
// Date predicates then align with tile boundaries and the zone maps get
// something to prune; with range sharding on top, each shard covers a
// contiguous date range so per-shard zone maps keep pruning.
void ClusterByOrderdate(LineorderTable* lo);

// Copy rows [row_begin, row_end) of every lineorder column.
LineorderTable SliceRows(const LineorderTable& lo, size_t row_begin,
                         size_t row_end);

// Concatenate several disjoint ascending [begin, end) row ranges — the
// striped-shard layout. When ranges are tile-aligned, each source tile maps
// onto exactly one destination tile, so per-tile zone maps built on the
// slice prune exactly as they would on the full table.
LineorderTable SliceRows(const LineorderTable& lo,
                         const std::vector<std::pair<size_t, size_t>>& ranges);

// A shard of the dataset: the selected lineorder rows with the dimension
// tables and dictionaries replicated (they are small; replicating them per
// device is exactly what the cluster placement does).
SsbData ShardData(const SsbData& data, size_t row_begin, size_t row_end);
SsbData ShardData(const SsbData& data,
                  const std::vector<std::pair<size_t, size_t>>& ranges);

}  // namespace tilecomp::ssb

#endif  // TILECOMP_SSB_LAYOUT_H_
