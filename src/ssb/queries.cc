#include "ssb/queries.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/macros.h"
#include "crystal/aggregator.h"
#include "crystal/hash_table.h"
#include "crystal/load_column.h"

namespace tilecomp::ssb {

namespace {

using crystal::GroupAccumulator;
using crystal::HashTable;
using crystal::kTileSize;

const char* kQueryNames[] = {"q1.1", "q1.2", "q1.3", "q2.1", "q2.2",
                             "q2.3", "q3.1", "q3.2", "q3.3", "q3.4",
                             "q4.1", "q4.2", "q4.3"};

// A fact-side hash join: probe `ht` with `key_col`; a row survives only if
// the key is present. The payload feeds group-key slot `group_slot`
// (-1: payload unused).
struct JoinStep {
  LoCol key_col;
  const HashTable* ht;
  int group_slot = -1;
};

// Internal per-query plan driving the shared Crystal kernel.
struct QueryPlan {
  // Conjunctive fact predicates, evaluated before any join.
  std::vector<PredicateRange> preds;
  std::vector<JoinStep> joins;
  // Aggregate: sum over expression of agg_cols values.
  std::vector<LoCol> agg_cols;
  std::function<int64_t(const uint32_t*)> agg;
  // Dense group dimensions (slot 0 is the year: dim 7 -> 1992..1998).
  std::array<uint32_t, 3> group_dims = {1, 1, 1};

  std::vector<LoCol> UniqueCols() const {
    std::vector<LoCol> cols;
    for (const auto& p : preds) cols.push_back(p.col);
    for (const auto& j : joins) cols.push_back(j.key_col);
    cols.insert(cols.end(), agg_cols.begin(), agg_cols.end());
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    return cols;
  }
};

// Columns as the accessor identifies them: LoCol ordinals.
codec::ColumnId ColId(LoCol col) {
  return codec::ColumnId(static_cast<uint32_t>(col));
}

// Everything needed to run one query: hash tables + plan. Hash-table builds
// launch kernels on `dev`, so construction is part of the measured query.
struct PreparedQuery {
  std::vector<std::unique_ptr<HashTable>> tables;
  QueryPlan plan;
};

constexpr uint32_t kYearDim = 7;  // 1992..1998

}  // namespace

const char* QueryName(QueryId query) {
  return kQueryNames[static_cast<int>(query)];
}

std::vector<QueryId> AllQueries() {
  std::vector<QueryId> all;
  for (int q = 0; q <= static_cast<int>(QueryId::kQ43); ++q) {
    all.push_back(static_cast<QueryId>(q));
  }
  return all;
}

std::vector<LoCol> QueryColumns(QueryId query) {
  switch (query) {
    case QueryId::kQ11:
    case QueryId::kQ12:
    case QueryId::kQ13:
      return {LoCol::kOrderdate, LoCol::kDiscount, LoCol::kQuantity,
              LoCol::kExtendedprice};
    case QueryId::kQ21:
    case QueryId::kQ22:
    case QueryId::kQ23:
      return {LoCol::kPartkey, LoCol::kSuppkey, LoCol::kOrderdate,
              LoCol::kRevenue};
    case QueryId::kQ31:
    case QueryId::kQ32:
    case QueryId::kQ33:
    case QueryId::kQ34:
      return {LoCol::kCustkey, LoCol::kSuppkey, LoCol::kOrderdate,
              LoCol::kRevenue};
    case QueryId::kQ41:
    case QueryId::kQ42:
    case QueryId::kQ43:
      return {LoCol::kCustkey, LoCol::kSuppkey, LoCol::kPartkey,
              LoCol::kOrderdate, LoCol::kRevenue, LoCol::kSupplycost};
  }
  return {};
}

std::vector<PredicateRange> QueryPredicates(QueryId query) {
  switch (query) {
    // Flight 1's date-dimension filters imply an orderdate range, because
    // datekeys are yyyymmdd: the range over-approximates the join filter
    // (the probe still applies exactly), but it is the predicate zone maps
    // can prune against — on a date-clustered layout it discards most
    // tiles before any column is touched.
    case QueryId::kQ11:  // d_year = 1993
      return {{LoCol::kOrderdate, 19930101, 19931231},
              {LoCol::kDiscount, 1, 3},
              {LoCol::kQuantity, 0, 24}};
    case QueryId::kQ12:  // d_yearmonthnum = 199401
      return {{LoCol::kOrderdate, 19940101, 19940131},
              {LoCol::kDiscount, 4, 6},
              {LoCol::kQuantity, 26, 35}};
    case QueryId::kQ13:  // week 6 of 1994: days 36-42 = Feb 5-11
      return {{LoCol::kOrderdate, 19940205, 19940211},
              {LoCol::kDiscount, 5, 7},
              {LoCol::kQuantity, 26, 35}};
    default:
      // Flights 2-4 filter only through dimension joins.
      return {};
  }
}

uint64_t QueryGroupSlots(QueryId query, const SsbData& data) {
  // Mirrors the group_dims each PreparedQuery installs below; kept as data
  // so the cluster scheduler can size partial-aggregate transfers without
  // preparing the query.
  const uint64_t brand = data.brand_dict.size();
  const uint64_t nation = data.nation_dict.size();
  const uint64_t city = data.city_dict.size();
  const uint64_t category = data.category_dict.size();
  switch (query) {
    case QueryId::kQ11:
    case QueryId::kQ12:
    case QueryId::kQ13:
      return 1;
    case QueryId::kQ21:
    case QueryId::kQ22:
    case QueryId::kQ23:
      return kYearDim * brand;
    case QueryId::kQ31:
      return kYearDim * nation * nation;
    case QueryId::kQ32:
    case QueryId::kQ33:
    case QueryId::kQ34:
      return kYearDim * city * city;
    case QueryId::kQ41:
      return kYearDim * nation;
    case QueryId::kQ42:
      return kYearDim * nation * category;
    case QueryId::kQ43:
      return kYearDim * city * brand;
  }
  return 1;
}

EncodedLineorder EncodeLineorder(const SsbData& data, codec::System system) {
  EncodedLineorder enc;
  enc.system = system;
  for (int c = 0; c < kNumLoCols; ++c) {
    const auto& col = data.lineorder.column(static_cast<LoCol>(c));
    enc.cols[c] = codec::SystemEncode(system, col);
  }
  return enc;
}

// ---------------------------------------------------------------------------
// Query preparation (dimension hash tables + plans)
// ---------------------------------------------------------------------------

namespace {

std::unique_ptr<HashTable> BuildDimTable(
    sim::Device& dev, const std::vector<uint32_t>& keys,
    const std::vector<uint32_t>& payloads,
    const std::function<bool(uint32_t)>& filter) {
  auto ht = std::make_unique<HashTable>(
      static_cast<uint32_t>(keys.size()));
  ht->BuildOnDevice(dev, keys, payloads, filter);
  return ht;
}

PreparedQuery Prepare(sim::Device& dev, const SsbData& data, QueryId query) {
  PreparedQuery pq;
  const auto& d = data.date;
  const auto& s = data.supplier;
  const auto& c = data.customer;
  const auto& p = data.part;

  auto date_ht = [&](const std::function<bool(uint32_t)>& filter,
                     bool payload_year) {
    std::vector<uint32_t> payload(d.size());
    for (uint32_t i = 0; i < d.size(); ++i) {
      payload[i] = payload_year ? d.year[i] - 1992 : 0;
    }
    return BuildDimTable(dev, d.datekey, payload, filter);
  };

  switch (query) {
    // --- Flight 1: selection + scalar aggregate ---
    // select sum(lo_extendedprice*lo_discount) ... where <date pred> and
    // lo_discount between .. and lo_quantity ..
    case QueryId::kQ11: {
      pq.tables.push_back(
          date_ht([&](uint32_t i) { return d.year[i] == 1993; }, false));
      pq.plan.preds = QueryPredicates(query);
      pq.plan.joins = {{LoCol::kOrderdate, pq.tables[0].get(), -1}};
      pq.plan.agg_cols = {LoCol::kExtendedprice, LoCol::kDiscount};
      pq.plan.agg = [](const uint32_t* v) {
        return static_cast<int64_t>(v[0]) * v[1];
      };
      break;
    }
    case QueryId::kQ12: {
      pq.tables.push_back(date_ht(
          [&](uint32_t i) { return d.yearmonthnum[i] == 199401; }, false));
      pq.plan.preds = QueryPredicates(query);
      pq.plan.joins = {{LoCol::kOrderdate, pq.tables[0].get(), -1}};
      pq.plan.agg_cols = {LoCol::kExtendedprice, LoCol::kDiscount};
      pq.plan.agg = [](const uint32_t* v) {
        return static_cast<int64_t>(v[0]) * v[1];
      };
      break;
    }
    case QueryId::kQ13: {
      pq.tables.push_back(date_ht(
          [&](uint32_t i) {
            return d.weeknuminyear[i] == 6 && d.year[i] == 1994;
          },
          false));
      pq.plan.preds = QueryPredicates(query);
      pq.plan.joins = {{LoCol::kOrderdate, pq.tables[0].get(), -1}};
      pq.plan.agg_cols = {LoCol::kExtendedprice, LoCol::kDiscount};
      pq.plan.agg = [](const uint32_t* v) {
        return static_cast<int64_t>(v[0]) * v[1];
      };
      break;
    }

    // --- Flight 2: part x supplier x date, group by (year, brand) ---
    case QueryId::kQ21:
    case QueryId::kQ22:
    case QueryId::kQ23: {
      std::function<bool(uint32_t)> part_filter;
      if (query == QueryId::kQ21) {
        const uint32_t cat = data.category_dict.Code("MFGR#12");
        part_filter = [&p, cat](uint32_t i) { return p.category[i] == cat; };
      } else if (query == QueryId::kQ22) {
        const uint32_t lo = data.brand_dict.Code("MFGR#2221");
        const uint32_t hi = data.brand_dict.Code("MFGR#2228");
        part_filter = [&p, lo, hi](uint32_t i) {
          return p.brand1[i] >= lo && p.brand1[i] <= hi;
        };
      } else {
        const uint32_t b = data.brand_dict.Code("MFGR#2239");
        part_filter = [&p, b](uint32_t i) { return p.brand1[i] == b; };
      }
      const char* region = query == QueryId::kQ21   ? "AMERICA"
                           : query == QueryId::kQ22 ? "ASIA"
                                                    : "EUROPE";
      const uint32_t region_code = data.region_dict.Code(region);

      pq.tables.push_back(
          BuildDimTable(dev, p.partkey, p.brand1, part_filter));
      pq.tables.push_back(BuildDimTable(
          dev, s.suppkey, std::vector<uint32_t>(s.size(), 0),
          [&s, region_code](uint32_t i) {
            return s.region[i] == region_code;
          }));
      pq.tables.push_back(date_ht([](uint32_t) { return true; }, true));

      pq.plan.joins = {{LoCol::kPartkey, pq.tables[0].get(), 1},
                       {LoCol::kSuppkey, pq.tables[1].get(), -1},
                       {LoCol::kOrderdate, pq.tables[2].get(), 0}};
      pq.plan.agg_cols = {LoCol::kRevenue};
      pq.plan.agg = [](const uint32_t* v) {
        return static_cast<int64_t>(v[0]);
      };
      pq.plan.group_dims = {kYearDim, data.brand_dict.size(), 1};
      break;
    }

    // --- Flight 3: customer x supplier x date ---
    case QueryId::kQ31: {
      const uint32_t asia = data.region_dict.Code("ASIA");
      pq.tables.push_back(BuildDimTable(
          dev, c.custkey, c.nation,
          [&c, asia](uint32_t i) { return c.region[i] == asia; }));
      pq.tables.push_back(BuildDimTable(
          dev, s.suppkey, s.nation,
          [&s, asia](uint32_t i) { return s.region[i] == asia; }));
      pq.tables.push_back(date_ht(
          [&](uint32_t i) {
            return d.year[i] >= 1992 && d.year[i] <= 1997;
          },
          true));
      pq.plan.joins = {{LoCol::kCustkey, pq.tables[0].get(), 1},
                       {LoCol::kSuppkey, pq.tables[1].get(), 2},
                       {LoCol::kOrderdate, pq.tables[2].get(), 0}};
      pq.plan.agg_cols = {LoCol::kRevenue};
      pq.plan.agg = [](const uint32_t* v) {
        return static_cast<int64_t>(v[0]);
      };
      pq.plan.group_dims = {kYearDim, data.nation_dict.size(),
                            data.nation_dict.size()};
      break;
    }
    case QueryId::kQ32: {
      const uint32_t us = data.nation_dict.Code("UNITED STATES");
      pq.tables.push_back(BuildDimTable(
          dev, c.custkey, c.city,
          [&c, us](uint32_t i) { return c.nation[i] == us; }));
      pq.tables.push_back(BuildDimTable(
          dev, s.suppkey, s.city,
          [&s, us](uint32_t i) { return s.nation[i] == us; }));
      pq.tables.push_back(date_ht(
          [&](uint32_t i) {
            return d.year[i] >= 1992 && d.year[i] <= 1997;
          },
          true));
      pq.plan.joins = {{LoCol::kCustkey, pq.tables[0].get(), 1},
                       {LoCol::kSuppkey, pq.tables[1].get(), 2},
                       {LoCol::kOrderdate, pq.tables[2].get(), 0}};
      pq.plan.agg_cols = {LoCol::kRevenue};
      pq.plan.agg = [](const uint32_t* v) {
        return static_cast<int64_t>(v[0]);
      };
      pq.plan.group_dims = {kYearDim, data.city_dict.size(),
                            data.city_dict.size()};
      break;
    }
    case QueryId::kQ33:
    case QueryId::kQ34: {
      const uint32_t city1 = data.city_dict.Code("UNITED KI1");
      const uint32_t city5 = data.city_dict.Code("UNITED KI5");
      auto city_filter = [city1, city5](const std::vector<uint32_t>& cities) {
        return [&cities, city1, city5](uint32_t i) {
          return cities[i] == city1 || cities[i] == city5;
        };
      };
      pq.tables.push_back(
          BuildDimTable(dev, c.custkey, c.city, city_filter(c.city)));
      pq.tables.push_back(
          BuildDimTable(dev, s.suppkey, s.city, city_filter(s.city)));
      if (query == QueryId::kQ33) {
        pq.tables.push_back(date_ht(
            [&](uint32_t i) {
              return d.year[i] >= 1992 && d.year[i] <= 1997;
            },
            true));
      } else {
        const uint32_t dec97 = data.yearmonth_dict.Code("Dec1997");
        pq.tables.push_back(date_ht(
            [&, dec97](uint32_t i) { return d.yearmonth[i] == dec97; },
            true));
      }
      pq.plan.joins = {{LoCol::kCustkey, pq.tables[0].get(), 1},
                       {LoCol::kSuppkey, pq.tables[1].get(), 2},
                       {LoCol::kOrderdate, pq.tables[2].get(), 0}};
      pq.plan.agg_cols = {LoCol::kRevenue};
      pq.plan.agg = [](const uint32_t* v) {
        return static_cast<int64_t>(v[0]);
      };
      pq.plan.group_dims = {kYearDim, data.city_dict.size(),
                            data.city_dict.size()};
      break;
    }

    // --- Flight 4: customer x supplier x part x date ---
    case QueryId::kQ41: {
      const uint32_t america = data.region_dict.Code("AMERICA");
      const uint32_t m1 = data.mfgr_dict.Code("MFGR#1");
      const uint32_t m2 = data.mfgr_dict.Code("MFGR#2");
      pq.tables.push_back(BuildDimTable(
          dev, c.custkey, c.nation,
          [&c, america](uint32_t i) { return c.region[i] == america; }));
      pq.tables.push_back(BuildDimTable(
          dev, s.suppkey, std::vector<uint32_t>(s.size(), 0),
          [&s, america](uint32_t i) { return s.region[i] == america; }));
      pq.tables.push_back(BuildDimTable(
          dev, p.partkey, std::vector<uint32_t>(p.size(), 0),
          [&p, m1, m2](uint32_t i) {
            return p.mfgr[i] == m1 || p.mfgr[i] == m2;
          }));
      pq.tables.push_back(date_ht([](uint32_t) { return true; }, true));
      pq.plan.joins = {{LoCol::kCustkey, pq.tables[0].get(), 1},
                       {LoCol::kSuppkey, pq.tables[1].get(), -1},
                       {LoCol::kPartkey, pq.tables[2].get(), -1},
                       {LoCol::kOrderdate, pq.tables[3].get(), 0}};
      pq.plan.agg_cols = {LoCol::kRevenue, LoCol::kSupplycost};
      pq.plan.agg = [](const uint32_t* v) {
        return static_cast<int64_t>(v[0]) - v[1];
      };
      pq.plan.group_dims = {kYearDim, data.nation_dict.size(), 1};
      break;
    }
    case QueryId::kQ42: {
      const uint32_t america = data.region_dict.Code("AMERICA");
      const uint32_t m1 = data.mfgr_dict.Code("MFGR#1");
      const uint32_t m2 = data.mfgr_dict.Code("MFGR#2");
      pq.tables.push_back(BuildDimTable(
          dev, c.custkey, std::vector<uint32_t>(c.size(), 0),
          [&c, america](uint32_t i) { return c.region[i] == america; }));
      pq.tables.push_back(BuildDimTable(
          dev, s.suppkey, s.nation,
          [&s, america](uint32_t i) { return s.region[i] == america; }));
      pq.tables.push_back(BuildDimTable(
          dev, p.partkey, p.category,
          [&p, m1, m2](uint32_t i) {
            return p.mfgr[i] == m1 || p.mfgr[i] == m2;
          }));
      pq.tables.push_back(date_ht(
          [&](uint32_t i) { return d.year[i] == 1997 || d.year[i] == 1998; },
          true));
      pq.plan.joins = {{LoCol::kCustkey, pq.tables[0].get(), -1},
                       {LoCol::kSuppkey, pq.tables[1].get(), 1},
                       {LoCol::kPartkey, pq.tables[2].get(), 2},
                       {LoCol::kOrderdate, pq.tables[3].get(), 0}};
      pq.plan.agg_cols = {LoCol::kRevenue, LoCol::kSupplycost};
      pq.plan.agg = [](const uint32_t* v) {
        return static_cast<int64_t>(v[0]) - v[1];
      };
      pq.plan.group_dims = {kYearDim, data.nation_dict.size(),
                            data.category_dict.size()};
      break;
    }
    case QueryId::kQ43: {
      const uint32_t us = data.nation_dict.Code("UNITED STATES");
      const uint32_t cat14 = data.category_dict.Code("MFGR#14");
      pq.tables.push_back(BuildDimTable(
          dev, c.custkey, std::vector<uint32_t>(c.size(), 0),
          [](uint32_t) { return true; }));
      pq.tables.push_back(BuildDimTable(
          dev, s.suppkey, s.city,
          [&s, us](uint32_t i) { return s.nation[i] == us; }));
      pq.tables.push_back(BuildDimTable(
          dev, p.partkey, p.brand1,
          [&p, cat14](uint32_t i) { return p.category[i] == cat14; }));
      pq.tables.push_back(date_ht(
          [&](uint32_t i) { return d.year[i] == 1997 || d.year[i] == 1998; },
          true));
      pq.plan.joins = {{LoCol::kSuppkey, pq.tables[1].get(), 1},
                       {LoCol::kPartkey, pq.tables[2].get(), 2},
                       {LoCol::kCustkey, pq.tables[0].get(), -1},
                       {LoCol::kOrderdate, pq.tables[3].get(), 0}};
      pq.plan.agg_cols = {LoCol::kRevenue, LoCol::kSupplycost};
      pq.plan.agg = [](const uint32_t* v) {
        return static_cast<int64_t>(v[0]) - v[1];
      };
      pq.plan.group_dims = {kYearDim, data.city_dict.size(),
                            data.brand_dict.size()};
      break;
    }
  }
  return pq;
}

// Convert dense accumulator coordinates back to result keys.
std::map<GroupKey, int64_t> ExtractGroups(const GroupAccumulator& acc,
                                          const std::array<uint32_t, 3>& dims) {
  std::map<GroupKey, int64_t> out;
  for (const auto& [k, v] : acc.NonZeroGroups()) {
    GroupKey key = k;
    if (dims[0] == kYearDim) key[0] += 1992;
    out[key] = v;
  }
  return out;
}

// Slices the device's launch log into a query result's per-launch trace,
// mirroring kernels::RunScope for QueryResult.
class QueryScope {
 public:
  explicit QueryScope(sim::Device& dev)
      : dev_(dev),
        start_ms_(dev.elapsed_ms()),
        start_launches_(dev.launch_log().size()) {}

  void Finish(QueryResult* result) const {
    result->time_ms = dev_.elapsed_ms() - start_ms_;
    const std::vector<sim::KernelResult>& log = dev_.launch_log();
    result->launches.assign(log.begin() + start_launches_, log.end());
  }

 private:
  sim::Device& dev_;
  double start_ms_;
  size_t start_launches_;
};

}  // namespace

// Device-resident prepared queries. The build side is immutable once built,
// so a cached entry is valid for as long as the runner serves the same
// device; a device switch drops every entry (the tables live on the old
// device's timeline).
struct QueryRunner::PreparedCache {
  sim::Device* dev = nullptr;
  std::map<int, PreparedQuery> by_query;

  PreparedQuery& Get(sim::Device& d, const SsbData& data, QueryId query) {
    if (dev != &d) {
      by_query.clear();
      dev = &d;
    }
    auto it = by_query.find(static_cast<int>(query));
    if (it == by_query.end()) {
      it = by_query.emplace(static_cast<int>(query), Prepare(d, data, query))
               .first;
    }
    return it->second;
  }
};

// ---------------------------------------------------------------------------
// Crystal tile-based execution
// ---------------------------------------------------------------------------

QueryResult QueryRunner::RunCrystal(sim::Device& dev,
                                    const EncodedLineorder& lineorder,
                                    QueryId query,
                                    crystal::ColumnAccessor* accessor,
                                    bool pushdown) const {
  QueryScope scope(dev);

  crystal::DirectTileLoader direct;
  if (accessor == nullptr) accessor = &direct;

  PreparedQuery local;
  if (prepared_cache_ == nullptr) local = Prepare(dev, data_, query);
  PreparedQuery& pq =
      prepared_cache_ ? prepared_cache_->Get(dev, data_, query) : local;
  const QueryPlan& plan = pq.plan;
  const uint32_t rows = data_.lineorder.size();
  const int64_t num_tiles = crystal::NumTiles(rows);

  GroupAccumulator acc(plan.group_dims[0], plan.group_dims[1],
                       plan.group_dims[2]);

  // Columns every tile will load.
  std::vector<LoCol> cols = plan.UniqueCols();

  sim::LaunchConfig lc;
  lc.grid_dim = num_tiles;
  lc.block_threads = 128;
  int smem = 0;
  for (LoCol col : cols) {
    smem += crystal::ColumnSmemBytes(lineorder.col(col).column);
  }
  lc.smem_bytes_per_block = smem;
  lc.regs_per_thread = 20 + 5 * static_cast<int>(cols.size());

  dev.Launch("crystal.query", lc, [&](sim::BlockContext& ctx) {
    const int64_t tile = ctx.block_id();
    uint32_t pred_vals[4][kTileSize];
    uint32_t key_vals[kTileSize];
    uint32_t agg_vals[2][kTileSize];
    uint32_t slots[3][kTileSize];

    // 1. Predicates -> 512-bit selection mask.
    uint32_t n = std::min<uint32_t>(
        kTileSize, rows - static_cast<uint32_t>(tile) * kTileSize);
    crystal::TileMask mask = crystal::TileMask::AllSet(n);
    if (plan.preds.empty()) {
      // No fact predicates: every row of the tile is live.
    } else if (pushdown) {
      // Compressed-domain evaluation: each predicate ANDs its verdict into
      // the mask from zone maps and the encoding's structure; the predicate
      // columns are never materialized. The mask must finish all predicates
      // before any row is trusted — an intermediate mask may keep rows a
      // later predicate rules out.
      for (const PredicateRange& pr : plan.preds) {
        n = accessor->EvaluateOnTile(
            ctx, lineorder.col(pr.col).column, ColId(pr.col), tile,
            crystal::TilePredicate::Range(pr.lo, pr.hi), &mask);
        // Late materialization: a tile no row of which survives loads
        // nothing at all — not even the remaining predicate columns.
        if (!mask.Any()) return;
      }
    } else {
      // Baseline: materialize every predicate column and test row-at-a-time
      // (Crystal's decode-everything pipeline).
      for (size_t pc = 0; pc < plan.preds.size(); ++pc) {
        const LoCol c = plan.preds[pc].col;
        n = accessor->LoadTile(ctx, lineorder.col(c).column, ColId(c), tile,
                               pred_vals[pc]);
      }
      ctx.Compute(static_cast<uint64_t>(n) * 2 * plan.preds.size());
      for (uint32_t i = 0; i < n; ++i) {
        for (size_t pc = 0; pc < plan.preds.size(); ++pc) {
          const PredicateRange& pr = plan.preds[pc];
          if (pred_vals[pc][i] < pr.lo || pred_vals[pc][i] > pr.hi) {
            mask.Clear(i);
            break;
          }
        }
      }
    }
    uint32_t live = mask.Count();
    // Tile-level short circuit: a fully filtered tile skips all further
    // column loads (Section 8, random-access discussion).
    if (live == 0) return;

    // 2. Joins.
    for (const JoinStep& join : pq.plan.joins) {
      accessor->LoadTile(ctx, lineorder.col(join.key_col).column,
                         ColId(join.key_col), tile, key_vals);
      HashTable::ProbeCost(ctx, live);
      uint32_t still = 0;
      for (uint32_t i = 0; i < n; ++i) {
        if (!mask.Test(i)) continue;
        uint32_t payload = 0;
        if (join.ht->Probe(key_vals[i], &payload)) {
          if (join.group_slot >= 0) slots[join.group_slot][i] = payload;
          ++still;
        } else {
          mask.Clear(i);
        }
      }
      live = still;
      if (live == 0) return;
    }

    // 3. Aggregate.
    for (size_t ac = 0; ac < plan.agg_cols.size(); ++ac) {
      const LoCol c = plan.agg_cols[ac];
      accessor->LoadTile(ctx, lineorder.col(c).column, ColId(c), tile,
                         agg_vals[ac]);
    }
    GroupAccumulator::AggCost(ctx, live);
    uint32_t v[2];
    for (uint32_t i = 0; i < n; ++i) {
      if (!mask.Test(i)) continue;
      for (size_t ac = 0; ac < plan.agg_cols.size(); ++ac) {
        v[ac] = agg_vals[ac][i];
      }
      const uint32_t k0 =
          plan.group_dims[0] > 1 ? slots[0][i] : 0;
      const uint32_t k1 =
          plan.group_dims[1] > 1 ? slots[1][i] : 0;
      const uint32_t k2 =
          plan.group_dims[2] > 1 ? slots[2][i] : 0;
      acc.Add(k0, k1, k2, plan.agg(v));
    }
  });

  QueryResult result;
  result.groups = ExtractGroups(acc, plan.group_dims);
  scope.Finish(&result);
  return result;
}

// ---------------------------------------------------------------------------
// Non-tiled (OmniSci-like) execution: operator-at-a-time with materialized
// row-id intermediates and gather passes.
// ---------------------------------------------------------------------------

QueryResult QueryRunner::RunNonTiled(sim::Device& dev,
                                     const EncodedLineorder& lineorder,
                                     QueryId query) const {
  QueryScope scope(dev);
  (void)lineorder;

  // Build the same dimension tables (small cost).
  PreparedQuery local;
  if (prepared_cache_ == nullptr) local = Prepare(dev, data_, query);
  PreparedQuery& pq =
      prepared_cache_ ? prepared_cache_->Get(dev, data_, query) : local;
  const QueryPlan& plan = pq.plan;
  const uint64_t n = data_.lineorder.size();

  // Predicate passes: read column, write selection vector.
  for (size_t i = 0; i < plan.preds.size(); ++i) {
    kernels::StreamingPass(dev, n, n * 4, n * 4, 2, "omnisci.filter");
  }
  // Join passes: read key column + row-id list, probe the hash table with
  // per-row random accesses (dimension tables at scale exceed L2 for a
  // non-tiled engine), write the surviving row-id list.
  for (size_t j = 0; j < plan.joins.size(); ++j) {
    sim::LaunchConfig lc;
    lc.block_threads = 256;
    lc.grid_dim = std::max<int64_t>(1, static_cast<int64_t>(n / 1024));
    lc.regs_per_thread = 32;
    const int64_t grid = lc.grid_dim;
    dev.Launch("omnisci.probe", lc, [&](sim::BlockContext& ctx) {
      ctx.CoalescedRead(n * 8 / grid, true);  // keys + row ids
      ctx.ScatteredRead(n / grid, 8);         // hash-table probes
      ctx.Compute(8 * n / grid);
      ctx.CoalescedWrite(n * 4 / grid, true);
    });
  }
  // Gather passes: operator-at-a-time engines re-materialize every carried
  // attribute (group payloads + aggregate inputs) through row-id gathers
  // after each join, so the gather count scales with joins x carried.
  uint32_t carried = static_cast<uint32_t>(plan.agg_cols.size());
  for (const auto& j : plan.joins) {
    if (j.group_slot >= 0) ++carried;
  }
  const uint32_t gathers =
      carried * std::max<uint32_t>(1, static_cast<uint32_t>(plan.joins.size()));
  for (uint32_t g = 0; g < gathers; ++g) {
    sim::LaunchConfig lc;
    lc.block_threads = 256;
    lc.grid_dim = std::max<int64_t>(1, static_cast<int64_t>(n / 1024));
    lc.regs_per_thread = 28;
    const int64_t grid = lc.grid_dim;
    dev.Launch("omnisci.gather", lc, [&](sim::BlockContext& ctx) {
      ctx.CoalescedRead(n * 4 / grid, true);   // row ids
      ctx.ScatteredRead(n / grid, 4);          // gathered attribute
      ctx.CoalescedWrite(n * 4 / grid, true);  // materialized column
    });
  }
  // Final aggregation pass over the materialized columns.
  kernels::StreamingPass(dev, n, n * 4 * (1 + carried), 1024, 4,
                         "omnisci.aggregate");

  // Functional result comes from the reference executor (the modeled engine
  // computes the same answer by construction).
  QueryResult result = RunHostReference(query);
  scope.Finish(&result);
  return result;
}

// ---------------------------------------------------------------------------
// System dispatch
// ---------------------------------------------------------------------------

QueryResult QueryRunner::Run(sim::Device& dev,
                             const EncodedLineorder& lineorder,
                             QueryId query, crystal::ColumnAccessor* accessor,
                             bool pushdown) const {
  switch (lineorder.system) {
    case codec::System::kNone:
    case codec::System::kGpuStar:
      return RunCrystal(dev, lineorder, query, accessor, pushdown);
    case codec::System::kOmnisci:
      return RunNonTiled(dev, lineorder, query);
    case codec::System::kGpuBp:
    case codec::System::kNvcomp:
    case codec::System::kPlanner: {
      QueryScope scope(dev);
      // Decompress-then-query: these systems are decoding libraries and
      // cannot inline decompression into the query kernel (Section 9.4:
      // "all these schemes cannot decompress the columns inline with the
      // query execution"). The re-encode of the decompressed values builds
      // a fresh (correct) zone map, so the query kernel's pushdown still
      // skips tiles — just without saving the decompress itself (the
      // serving layer's MaterializeColumns is the path that does).
      EncodedLineorder decompressed;
      decompressed.system = codec::System::kNone;
      for (LoCol col : QueryColumns(query)) {
        auto run = codec::SystemDecompress(dev, lineorder.col(col));
        decompressed.cols[static_cast<int>(col)] =
            codec::SystemEncode(codec::System::kNone, run.output);
      }
      QueryResult result =
          RunCrystal(dev, decompressed, query, accessor, pushdown);
      scope.Finish(&result);
      return result;
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Host reference executor (independent row-at-a-time implementation)
// ---------------------------------------------------------------------------

QueryRunner::QueryRunner(const SsbData& data) : data_(data) {}

QueryRunner::~QueryRunner() = default;

void QueryRunner::set_reuse_prepared(bool reuse) {
  if (reuse && prepared_cache_ == nullptr) {
    prepared_cache_ = std::make_unique<PreparedCache>();
  } else if (!reuse) {
    prepared_cache_.reset();
  }
}

void QueryRunner::Prewarm(sim::Device& dev, QueryId query) const {
  if (prepared_cache_ != nullptr) prepared_cache_->Get(dev, data_, query);
}

QueryResult QueryRunner::RunHostReference(QueryId query) const {
  const LineorderTable& lo = data_.lineorder;
  const DateTable& d = data_.date;
  const SupplierTable& s = data_.supplier;
  const CustomerTable& c = data_.customer;
  const PartTable& p = data_.part;

  // Dense dimension lookups (keys are 1..n); date is keyed by datekey.
  std::unordered_map<uint32_t, uint32_t> date_row;
  date_row.reserve(d.size() * 2);
  for (uint32_t i = 0; i < d.size(); ++i) date_row[d.datekey[i]] = i;
  auto drow = [&](uint32_t datekey) { return date_row.at(datekey); };

  QueryResult result;
  auto& groups = result.groups;
  const uint32_t rows = lo.size();

  auto flight1 = [&](auto date_pred, uint32_t dlo, uint32_t dhi, uint32_t qlo,
                     uint32_t qhi) {
    int64_t sum = 0;
    for (uint32_t i = 0; i < rows; ++i) {
      if (lo.discount[i] < dlo || lo.discount[i] > dhi) continue;
      if (lo.quantity[i] < qlo || lo.quantity[i] > qhi) continue;
      const uint32_t dr = drow(lo.orderdate[i]);
      if (!date_pred(dr)) continue;
      sum += static_cast<int64_t>(lo.extendedprice[i]) * lo.discount[i];
    }
    if (sum != 0) groups[{0, 0, 0}] = sum;
  };

  switch (query) {
    case QueryId::kQ11:
      flight1([&](uint32_t dr) { return d.year[dr] == 1993; }, 1, 3, 0, 24);
      break;
    case QueryId::kQ12:
      flight1([&](uint32_t dr) { return d.yearmonthnum[dr] == 199401; }, 4, 6,
              26, 35);
      break;
    case QueryId::kQ13:
      flight1(
          [&](uint32_t dr) {
            return d.weeknuminyear[dr] == 6 && d.year[dr] == 1994;
          },
          5, 7, 26, 35);
      break;

    case QueryId::kQ21:
    case QueryId::kQ22:
    case QueryId::kQ23: {
      uint32_t lo_brand = 0, hi_brand = 0, cat = 0;
      bool by_cat = false;
      if (query == QueryId::kQ21) {
        cat = data_.category_dict.Code("MFGR#12");
        by_cat = true;
      } else if (query == QueryId::kQ22) {
        lo_brand = data_.brand_dict.Code("MFGR#2221");
        hi_brand = data_.brand_dict.Code("MFGR#2228");
      } else {
        lo_brand = hi_brand = data_.brand_dict.Code("MFGR#2239");
      }
      const char* region_name = query == QueryId::kQ21   ? "AMERICA"
                                : query == QueryId::kQ22 ? "ASIA"
                                                         : "EUROPE";
      const uint32_t region = data_.region_dict.Code(region_name);
      for (uint32_t i = 0; i < rows; ++i) {
        const uint32_t pr = lo.partkey[i] - 1;
        if (by_cat) {
          if (p.category[pr] != cat) continue;
        } else if (p.brand1[pr] < lo_brand || p.brand1[pr] > hi_brand) {
          continue;
        }
        if (s.region[lo.suppkey[i] - 1] != region) continue;
        const uint32_t year = d.year[drow(lo.orderdate[i])];
        groups[{year, p.brand1[pr], 0}] += lo.revenue[i];
      }
      break;
    }

    case QueryId::kQ31: {
      const uint32_t asia = data_.region_dict.Code("ASIA");
      for (uint32_t i = 0; i < rows; ++i) {
        const uint32_t cr = lo.custkey[i] - 1;
        const uint32_t sr = lo.suppkey[i] - 1;
        if (c.region[cr] != asia || s.region[sr] != asia) continue;
        const uint32_t year = d.year[drow(lo.orderdate[i])];
        if (year < 1992 || year > 1997) continue;
        groups[{year, c.nation[cr], s.nation[sr]}] += lo.revenue[i];
      }
      break;
    }
    case QueryId::kQ32: {
      const uint32_t us = data_.nation_dict.Code("UNITED STATES");
      for (uint32_t i = 0; i < rows; ++i) {
        const uint32_t cr = lo.custkey[i] - 1;
        const uint32_t sr = lo.suppkey[i] - 1;
        if (c.nation[cr] != us || s.nation[sr] != us) continue;
        const uint32_t year = d.year[drow(lo.orderdate[i])];
        if (year < 1992 || year > 1997) continue;
        groups[{year, c.city[cr], s.city[sr]}] += lo.revenue[i];
      }
      break;
    }
    case QueryId::kQ33:
    case QueryId::kQ34: {
      const uint32_t city1 = data_.city_dict.Code("UNITED KI1");
      const uint32_t city5 = data_.city_dict.Code("UNITED KI5");
      const uint32_t dec97 = data_.yearmonth_dict.Code("Dec1997");
      for (uint32_t i = 0; i < rows; ++i) {
        const uint32_t cr = lo.custkey[i] - 1;
        const uint32_t sr = lo.suppkey[i] - 1;
        if (c.city[cr] != city1 && c.city[cr] != city5) continue;
        if (s.city[sr] != city1 && s.city[sr] != city5) continue;
        const uint32_t dr = drow(lo.orderdate[i]);
        if (query == QueryId::kQ33) {
          if (d.year[dr] < 1992 || d.year[dr] > 1997) continue;
        } else {
          if (d.yearmonth[dr] != dec97) continue;
        }
        groups[{d.year[dr], c.city[cr], s.city[sr]}] += lo.revenue[i];
      }
      break;
    }

    case QueryId::kQ41: {
      const uint32_t america = data_.region_dict.Code("AMERICA");
      const uint32_t m1 = data_.mfgr_dict.Code("MFGR#1");
      const uint32_t m2 = data_.mfgr_dict.Code("MFGR#2");
      for (uint32_t i = 0; i < rows; ++i) {
        const uint32_t cr = lo.custkey[i] - 1;
        const uint32_t sr = lo.suppkey[i] - 1;
        const uint32_t pr = lo.partkey[i] - 1;
        if (c.region[cr] != america || s.region[sr] != america) continue;
        if (p.mfgr[pr] != m1 && p.mfgr[pr] != m2) continue;
        const uint32_t year = d.year[drow(lo.orderdate[i])];
        groups[{year, c.nation[cr], 0}] +=
            static_cast<int64_t>(lo.revenue[i]) - lo.supplycost[i];
      }
      break;
    }
    case QueryId::kQ42: {
      const uint32_t america = data_.region_dict.Code("AMERICA");
      const uint32_t m1 = data_.mfgr_dict.Code("MFGR#1");
      const uint32_t m2 = data_.mfgr_dict.Code("MFGR#2");
      for (uint32_t i = 0; i < rows; ++i) {
        const uint32_t cr = lo.custkey[i] - 1;
        const uint32_t sr = lo.suppkey[i] - 1;
        const uint32_t pr = lo.partkey[i] - 1;
        if (c.region[cr] != america || s.region[sr] != america) continue;
        if (p.mfgr[pr] != m1 && p.mfgr[pr] != m2) continue;
        const uint32_t year = d.year[drow(lo.orderdate[i])];
        if (year != 1997 && year != 1998) continue;
        groups[{year, s.nation[sr], p.category[pr]}] +=
            static_cast<int64_t>(lo.revenue[i]) - lo.supplycost[i];
      }
      break;
    }
    case QueryId::kQ43: {
      const uint32_t us = data_.nation_dict.Code("UNITED STATES");
      const uint32_t cat14 = data_.category_dict.Code("MFGR#14");
      for (uint32_t i = 0; i < rows; ++i) {
        const uint32_t sr = lo.suppkey[i] - 1;
        const uint32_t pr = lo.partkey[i] - 1;
        if (s.nation[sr] != us) continue;
        if (p.category[pr] != cat14) continue;
        const uint32_t year = d.year[drow(lo.orderdate[i])];
        if (year != 1997 && year != 1998) continue;
        groups[{year, s.city[sr], p.brand1[pr]}] +=
            static_cast<int64_t>(lo.revenue[i]) - lo.supplycost[i];
      }
      break;
    }
  }
  // A group whose aggregate sums to exactly zero is indistinguishable from
  // an empty slot in the device's dense accumulator (flight 1 above already
  // applies the same convention to its scalar). At SF-scale row counts a
  // profit group can legitimately net to zero; drop them so the reference
  // stays comparable.
  for (auto it = groups.begin(); it != groups.end();) {
    it = it->second == 0 ? groups.erase(it) : std::next(it);
  }
  return result;
}

}  // namespace tilecomp::ssb
