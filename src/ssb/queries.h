// The 13 Star Schema Benchmark queries (Section 9.4, Figure 11), executed
// three ways:
//
//   1. Crystal tile-based kernels on the simulated device, with each fact
//      column loaded through LoadColumnTile — uncompressed (None), inline
//      GPU-* decompression, or GPU-BP;
//   2. decompress-then-query for systems that cannot inline decompression
//      (nvCOMP, Planner);
//   3. a non-tiled operator-at-a-time engine modeling OmniSci;
//
// plus an independent host (CPU, row-at-a-time) reference executor used to
// validate every device result bit-exactly.
#ifndef TILECOMP_SSB_QUERIES_H_
#define TILECOMP_SSB_QUERIES_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "codec/systems.h"
#include "crystal/load_column.h"
#include "sim/device.h"
#include "ssb/schema.h"

namespace tilecomp::ssb {

enum class QueryId {
  kQ11, kQ12, kQ13,
  kQ21, kQ22, kQ23,
  kQ31, kQ32, kQ33, kQ34,
  kQ41, kQ42, kQ43,
};
const char* QueryName(QueryId query);
std::vector<QueryId> AllQueries();

// The lineorder columns a query touches (used by decompress-then-query
// systems and the co-processor transfer model).
std::vector<LoCol> QueryColumns(QueryId query);

// A conjunctive range predicate on one fact column: lo <= value <= hi.
// Every SSB fact-table predicate is of this form; exposing the predicates
// as data rather than an opaque lambda is what lets the compressed-domain
// path evaluate them against zone maps and encoded runs without decoding.
struct PredicateRange {
  LoCol col = LoCol::kOrderdate;
  uint32_t lo = 0;
  uint32_t hi = 0xFFFFFFFFu;
};

// The fact-table predicates of `query`. Flight 1 filters on discount and
// quantity; flights 2-4 filter only through dimension joins, so their list
// is empty. The serving layer uses these to decide which tiles a query can
// possibly touch before materializing columns.
std::vector<PredicateRange> QueryPredicates(QueryId query);

// Slots in the query's dense group-by accumulator (the product of its group
// dimensions; 1 for the scalar flight-1 queries). Crystal keeps group-by
// results in dense arrays, so this times 8 bytes is what a device ships
// when partial aggregates merge across a cluster.
uint64_t QueryGroupSlots(QueryId query, const SsbData& data);

// The lineorder fact table as stored by one system (dimension tables are
// small and stay uncompressed, as in the paper).
struct EncodedLineorder {
  codec::System system = codec::System::kNone;
  std::array<codec::SystemColumn, kNumLoCols> cols;

  const codec::SystemColumn& col(LoCol c) const {
    return cols[static_cast<int>(c)];
  }
  uint64_t compressed_bytes() const {
    uint64_t total = 0;
    for (const auto& c : cols) total += c.compressed_bytes();
    return total;
  }
};

EncodedLineorder EncodeLineorder(const SsbData& data, codec::System system);

// Group key: (year, attr1, attr2); unused components are 0. Values are the
// real year and dictionary codes, so results compare across executors.
using GroupKey = std::array<uint32_t, 3>;

struct QueryResult {
  std::map<GroupKey, int64_t> groups;
  double time_ms = 0.0;
  // Per-launch trace (label, config, stats, perf-model breakdown) of every
  // kernel the query ran, in timeline order — includes decompression
  // launches for decompress-then-query systems.
  std::vector<sim::KernelResult> launches;

  uint64_t kernel_launches() const { return launches.size(); }

  int64_t scalar() const {
    int64_t total = 0;
    for (const auto& [k, v] : groups) total += v;
    return total;
  }
};

class QueryRunner {
 public:
  explicit QueryRunner(const SsbData& data);
  ~QueryRunner();

  // Execute on the simulated device using the system's pipeline. `accessor`
  // overrides how the Crystal kernel accesses fact-column tiles (default:
  // decode inline via crystal::LoadColumnTile); the serving layer passes
  // its caching accessor here. Fact columns are identified to the accessor
  // by codec::ColumnId built from their LoCol ordinal. With `pushdown` the
  // kernel evaluates fact predicates in the compressed domain first
  // (accessor->EvaluateOnTile) and materializes a tile's columns only when
  // the resulting selection mask has survivors; without it, predicate
  // columns are decoded and tested row-at-a-time (the paper's baseline).
  // Both paths are bit-exact against RunHostReference.
  QueryResult Run(sim::Device& dev, const EncodedLineorder& lineorder,
                  QueryId query, crystal::ColumnAccessor* accessor = nullptr,
                  bool pushdown = true) const;

  // Independent row-at-a-time reference executor (host).
  QueryResult RunHostReference(QueryId query) const;

  // Reuse each query's prepared dimension hash tables across Run calls on
  // the same device. The build side of an SSB query is immutable — it
  // depends only on the dimension tables, never on the fact shard — so a
  // serving deployment builds it once and keeps it resident; repeats of a
  // query then skip their hash.build kernels. Off by default: the one-shot
  // figure benchmarks measure the build as part of the query, as the paper
  // does. The cache is invalidated if Run is called with a different
  // device (tables are device-resident).
  void set_reuse_prepared(bool reuse);
  bool reuse_prepared() const { return prepared_cache_ != nullptr; }

  // Build `query`'s dimension hash tables into the prepared cache now (a
  // no-op without set_reuse_prepared). The build kernels run on `dev`'s
  // timeline at the call point — callers that treat preparation as
  // placement-time work (the cluster scheduler) prewarm before starting
  // their serving clock.
  void Prewarm(sim::Device& dev, QueryId query) const;

  const SsbData& data() const { return data_; }

 private:
  QueryResult RunCrystal(sim::Device& dev, const EncodedLineorder& lineorder,
                         QueryId query, crystal::ColumnAccessor* accessor,
                         bool pushdown) const;
  QueryResult RunNonTiled(sim::Device& dev, const EncodedLineorder& lineorder,
                          QueryId query) const;

  const SsbData& data_;
  // Device-resident prepared queries, present iff set_reuse_prepared(true).
  // Mutable: caching a build is not an observable change to query results.
  struct PreparedCache;
  mutable std::unique_ptr<PreparedCache> prepared_cache_;
};

}  // namespace tilecomp::ssb

#endif  // TILECOMP_SSB_QUERIES_H_
