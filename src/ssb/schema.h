// The Star Schema Benchmark schema [35]: one fact table (lineorder) and
// four dimension tables (date, supplier, customer, part), all columns as
// 32-bit integers (strings dictionary encoded).
#ifndef TILECOMP_SSB_SCHEMA_H_
#define TILECOMP_SSB_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ssb/dictionary.h"

namespace tilecomp::ssb {

struct DateTable {
  std::vector<uint32_t> datekey;        // yyyymmdd
  std::vector<uint32_t> year;           // 1992..1998
  std::vector<uint32_t> yearmonthnum;   // yyyymm
  std::vector<uint32_t> yearmonth;      // dict: "Jan1992".."Dec1998"
  std::vector<uint32_t> weeknuminyear;  // 1..53
  uint32_t size() const { return static_cast<uint32_t>(datekey.size()); }
};

struct SupplierTable {
  std::vector<uint32_t> suppkey;  // 1..2000*SF
  std::vector<uint32_t> city;     // dict, 250 values
  std::vector<uint32_t> nation;   // dict, 25 values
  std::vector<uint32_t> region;   // dict, 5 values
  uint32_t size() const { return static_cast<uint32_t>(suppkey.size()); }
};

struct CustomerTable {
  std::vector<uint32_t> custkey;  // 1..30000*SF
  std::vector<uint32_t> city;
  std::vector<uint32_t> nation;
  std::vector<uint32_t> region;
  uint32_t size() const { return static_cast<uint32_t>(custkey.size()); }
};

struct PartTable {
  std::vector<uint32_t> partkey;   // 1..200000*(1+floor(log2 SF))
  std::vector<uint32_t> mfgr;      // dict, 5 values  (MFGR#1..5)
  std::vector<uint32_t> category;  // dict, 25 values (MFGR#11..55)
  std::vector<uint32_t> brand1;    // dict, 1000 values (MFGR#1101..)
  uint32_t size() const { return static_cast<uint32_t>(partkey.size()); }
};

// The 14 lineorder columns evaluated in Figure 9.
enum class LoCol {
  kOrderkey,
  kOrderdate,
  kOrdtotalprice,
  kCustkey,
  kPartkey,
  kSuppkey,
  kLinenumber,
  kQuantity,
  kTax,
  kDiscount,
  kCommitdate,
  kExtendedprice,
  kRevenue,
  kSupplycost,
};
inline constexpr int kNumLoCols = 14;
const char* LoColName(LoCol col);

struct LineorderTable {
  std::vector<uint32_t> orderkey;
  std::vector<uint32_t> orderdate;  // datekey of the order (FK to date)
  std::vector<uint32_t> ordtotalprice;
  std::vector<uint32_t> custkey;
  std::vector<uint32_t> partkey;
  std::vector<uint32_t> suppkey;
  std::vector<uint32_t> linenumber;
  std::vector<uint32_t> quantity;
  std::vector<uint32_t> tax;
  std::vector<uint32_t> discount;
  std::vector<uint32_t> commitdate;
  std::vector<uint32_t> extendedprice;
  std::vector<uint32_t> revenue;
  std::vector<uint32_t> supplycost;

  uint32_t size() const { return static_cast<uint32_t>(orderkey.size()); }
  const std::vector<uint32_t>& column(LoCol col) const;
};

struct SsbData {
  int scale_factor = 1;
  LineorderTable lineorder;
  DateTable date;
  SupplierTable supplier;
  CustomerTable customer;
  PartTable part;

  // Shared dictionaries (city/nation/region shared by supplier & customer).
  Dictionary city_dict;
  Dictionary nation_dict;
  Dictionary region_dict;
  Dictionary mfgr_dict;
  Dictionary category_dict;
  Dictionary brand_dict;
  Dictionary yearmonth_dict;

  uint64_t total_bytes() const;
};

}  // namespace tilecomp::ssb

#endif  // TILECOMP_SSB_SCHEMA_H_
