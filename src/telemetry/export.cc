#include "telemetry/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "telemetry/json.h"

namespace tilecomp::telemetry {

namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf, static_cast<size_t>(n));
}

void AppendDouble(std::string* out, const char* key, double v,
                  bool trailing_comma = true) {
  AppendF(out, "\"%s\":%.17g%s", key, v, trailing_comma ? "," : "");
}

void AppendKernelFields(std::string* out, const sim::KernelResult& k) {
  const sim::LaunchConfig& c = k.config;
  AppendF(out,
          "\"config\":{\"grid_dim\":%" PRId64
          ",\"block_threads\":%d,\"smem_bytes_per_block\":%d,"
          "\"regs_per_thread\":%d},",
          c.grid_dim, c.block_threads, c.smem_bytes_per_block,
          c.regs_per_thread);
  const sim::KernelStats& s = k.stats;
  AppendF(out,
          "\"stats\":{\"global_bytes_read\":%" PRIu64
          ",\"global_bytes_written\":%" PRIu64
          ",\"warp_global_accesses\":%" PRIu64 ",\"shared_bytes\":%" PRIu64
          ",\"compute_ops\":%" PRIu64 ",\"barriers\":%" PRIu64 "},",
          s.global_bytes_read, s.global_bytes_written, s.warp_global_accesses,
          s.shared_bytes, s.compute_ops, s.barriers);
  const sim::TimeBreakdown& b = k.breakdown;
  AppendDouble(out, "occupancy", b.occupancy);
  out->append("\"breakdown_ms\":{");
  AppendDouble(out, "launch", b.launch_ms);
  AppendDouble(out, "bandwidth", b.bandwidth_ms);
  AppendDouble(out, "latency", b.latency_ms);
  AppendDouble(out, "scheduling", b.scheduling_ms);
  AppendDouble(out, "shared", b.shared_ms);
  AppendDouble(out, "compute", b.compute_ms, /*trailing_comma=*/false);
  out->append("},");
  AppendF(out, "\"limiter\":\"%s\",", sim::LimiterName(b.limiter()));
}

}  // namespace

std::string ToJson(const Tracer& tracer) {
  std::string out;
  out.reserve(512 + tracer.spans().size() * 512);
  AppendF(&out, "{\"schema\":\"%s\",\"spans\":[", kTraceSchema);
  bool first = true;
  for (const Span& span : tracer.spans()) {
    if (!first) out.append(",");
    first = false;
    out.append("\n{");
    AppendF(&out, "\"kind\":\"%s\",", SpanKindName(span.kind));
    AppendF(&out, "\"name\":\"%s\",", JsonEscape(span.name).c_str());
    AppendF(&out, "\"path\":\"%s\",", JsonEscape(span.path).c_str());
    AppendF(&out, "\"depth\":%d,", span.depth);
    if (span.kind == SpanKind::kKernel) AppendKernelFields(&out, span.kernel);
    if (span.kind == SpanKind::kTransfer) {
      AppendF(&out, "\"bytes\":%" PRIu64 ",", span.transfer_bytes);
    }
    AppendDouble(&out, "start_ms", span.start_ms);
    AppendDouble(&out, "duration_ms", span.duration_ms,
                 /*trailing_comma=*/false);
    out.append("}");
  }
  out.append("\n]}\n");
  return out;
}

std::string ToChromeTrace(const Tracer& tracer) {
  std::string out;
  out.reserve(512 + tracer.spans().size() * 256);
  out.append("{\"traceEvents\":[");
  bool first = true;
  for (const Span& span : tracer.spans()) {
    if (!first) out.append(",");
    first = false;
    out.append("\n{");
    // Scopes on tid 0 bracket the kernels/transfers on tid 1, mirroring how
    // nvprof shows streams under the launching API row.
    const int tid = span.kind == SpanKind::kScope ? 0 : 1;
    AppendF(&out, "\"name\":\"%s\",", JsonEscape(span.name).c_str());
    AppendF(&out, "\"cat\":\"%s\",", SpanKindName(span.kind));
    AppendF(&out, "\"ph\":\"X\",\"pid\":0,\"tid\":%d,", tid);
    AppendF(&out, "\"ts\":%.12g,\"dur\":%.12g,", span.start_ms * 1e3,
            span.duration_ms * 1e3);
    out.append("\"args\":{");
    if (span.kind == SpanKind::kKernel) {
      const sim::KernelResult& k = span.kernel;
      AppendF(&out, "\"grid_dim\":%" PRId64 ",", k.config.grid_dim);
      AppendF(&out, "\"global_bytes\":%" PRIu64 ",",
              k.stats.global_bytes_total());
      AppendDouble(&out, "occupancy", k.breakdown.occupancy);
      AppendF(&out, "\"limiter\":\"%s\"",
              sim::LimiterName(k.breakdown.limiter()));
    } else if (span.kind == SpanKind::kTransfer) {
      AppendF(&out, "\"bytes\":%" PRIu64, span.transfer_bytes);
    }
    out.append("}}");
  }
  out.append("\n]}\n");
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

void PrintSummary(const Tracer& tracer, std::FILE* out) {
  std::fprintf(out, "%-34s %10s %10s %9s %9s %5s %-10s\n", "span", "time_ms",
               "grid", "rd_MB", "wr_MB", "occ%", "limiter");
  for (const Span& span : tracer.spans()) {
    std::string indent(static_cast<size_t>(span.depth) * 2, ' ');
    if (span.kind == SpanKind::kScope) {
      std::fprintf(out, "%s[%s] %.4f ms\n", indent.c_str(), span.name.c_str(),
                   span.duration_ms);
      continue;
    }
    if (span.kind == SpanKind::kTransfer) {
      std::fprintf(out, "%s%-*s %10.4f %10s %9.2f %9s %5s %-10s\n",
                   indent.c_str(),
                   static_cast<int>(34 - indent.size()), span.name.c_str(),
                   span.duration_ms, "-", span.transfer_bytes / 1e6, "-", "-",
                   "pcie");
      continue;
    }
    const sim::KernelResult& k = span.kernel;
    std::fprintf(out, "%s%-*s %10.4f %10" PRId64 " %9.2f %9.2f %5.0f %-10s\n",
                 indent.c_str(), static_cast<int>(34 - indent.size()),
                 span.name.c_str(), span.duration_ms, k.config.grid_dim,
                 k.stats.global_bytes_read / 1e6,
                 k.stats.global_bytes_written / 1e6,
                 k.breakdown.occupancy * 100.0,
                 sim::LimiterName(k.breakdown.limiter()));
  }
}

}  // namespace tilecomp::telemetry
