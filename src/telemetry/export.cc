#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "telemetry/json.h"

namespace tilecomp::telemetry {

namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf, static_cast<size_t>(n));
}

void AppendDouble(std::string* out, const char* key, double v,
                  bool trailing_comma = true) {
  AppendF(out, "\"%s\":%.17g%s", key, v, trailing_comma ? "," : "");
}

void AppendKernelFields(std::string* out, const sim::KernelResult& k) {
  const sim::LaunchConfig& c = k.config;
  AppendF(out,
          "\"config\":{\"grid_dim\":%" PRId64
          ",\"block_threads\":%d,\"smem_bytes_per_block\":%d,"
          "\"regs_per_thread\":%d,\"scheduling\":\"%s\"},",
          c.grid_dim, c.block_threads, c.smem_bytes_per_block,
          c.regs_per_thread, sim::SchedulingName(c.scheduling));
  const sim::KernelStats& s = k.stats;
  AppendF(out,
          "\"stats\":{\"global_bytes_read\":%" PRIu64
          ",\"global_bytes_written\":%" PRIu64
          ",\"warp_global_accesses\":%" PRIu64 ",\"shared_bytes\":%" PRIu64
          ",\"compute_ops\":%" PRIu64 ",\"barriers\":%" PRIu64
          ",\"atomic_ops\":%" PRIu64 "},",
          s.global_bytes_read, s.global_bytes_written, s.warp_global_accesses,
          s.shared_bytes, s.compute_ops, s.barriers, s.atomic_ops);
  const sim::TimeBreakdown& b = k.breakdown;
  AppendDouble(out, "occupancy", b.occupancy);
  out->append("\"breakdown_ms\":{");
  AppendDouble(out, "launch", b.launch_ms);
  AppendDouble(out, "bandwidth", b.bandwidth_ms);
  AppendDouble(out, "latency", b.latency_ms);
  AppendDouble(out, "scheduling", b.scheduling_ms);
  AppendDouble(out, "shared", b.shared_ms);
  AppendDouble(out, "compute", b.compute_ms);
  AppendDouble(out, "tail", b.wave.tail_ms);
  AppendDouble(out, "atomic", b.atomic_ms, /*trailing_comma=*/false);
  out->append("},");
  const sim::WaveStats& w = b.wave;
  AppendF(out,
          "\"wave\":{\"scheduling\":\"%s\",\"slots\":%" PRId64
          ",\"waves\":%" PRId64 ",",
          sim::SchedulingName(w.scheduling), w.slots, w.waves);
  AppendDouble(out, "mean_cost", w.mean_cost);
  AppendDouble(out, "max_cost", w.max_cost);
  AppendDouble(out, "p99_cost", w.p99_cost);
  AppendDouble(out, "imbalance", w.imbalance, /*trailing_comma=*/false);
  out->append("},");
  const sim::CacheCounters& cc = s.cache;
  AppendF(out,
          "\"cache\":{\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
          ",\"evictions\":%" PRIu64 ",\"saved_bytes\":%" PRIu64
          ",\"prefetch_hits\":%" PRIu64 "},",
          cc.hits, cc.misses, cc.evictions, cc.saved_bytes, cc.prefetch_hits);
  const sim::PushdownCounters& pd = s.pushdown;
  AppendF(out,
          "\"pushdown\":{\"tiles_pruned\":%" PRIu64 ",\"tiles_decoded\":%" PRIu64
          ",\"blocks_short_circuited\":%" PRIu64
          ",\"runs_short_circuited\":%" PRIu64 "},",
          pd.tiles_pruned, pd.tiles_decoded, pd.blocks_short_circuited,
          pd.runs_short_circuited);
  const sim::PrefetchCounters& pf = s.prefetch;
  AppendF(out,
          "\"prefetch\":{\"issued\":%" PRIu64 ",\"useful\":%" PRIu64
          ",\"wasted\":%" PRIu64 ",\"late\":%" PRIu64 "},",
          pf.issued, pf.useful, pf.wasted, pf.late);
  AppendF(out, "\"limiter\":\"%s\",", sim::LimiterName(b.limiter()));
  AppendF(out, "\"faults\":{\"retries\":%d,\"failed\":%s},", k.fault_retries,
          k.failed ? "true" : "false");
}

}  // namespace

bool IsKnownTraceSchema(const std::string& schema) {
  return schema == kTraceSchema || schema == kTraceSchemaV1 ||
         schema == kTraceSchemaV2 || schema == kTraceSchemaV3 ||
         schema == kTraceSchemaV4 || schema == kTraceSchemaV5 ||
         schema == kTraceSchemaV6 || schema == kTraceSchemaV7 ||
         schema == kTraceSchemaV8 || schema == kTraceSchemaV9;
}

std::string ToJson(const std::vector<Span>& spans) {
  std::string out;
  out.reserve(512 + spans.size() * 512);
  AppendF(&out, "{\"schema\":\"%s\",\"spans\":[", kTraceSchema);
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out.append(",");
    first = false;
    out.append("\n{");
    AppendF(&out, "\"kind\":\"%s\",", SpanKindName(span.kind));
    AppendF(&out, "\"name\":\"%s\",", JsonEscape(span.name).c_str());
    AppendF(&out, "\"path\":\"%s\",", JsonEscape(span.path).c_str());
    AppendF(&out, "\"depth\":%d,", span.depth);
    AppendF(&out, "\"device\":%d,", span.device_id);
    if (span.kind != SpanKind::kScope && span.kind != SpanKind::kLink) {
      AppendF(&out, "\"stream\":%d,", span.stream_id);
    }
    if (span.kind == SpanKind::kKernel) AppendKernelFields(&out, span.kernel);
    if (span.kind == SpanKind::kTransfer) {
      AppendF(&out, "\"bytes\":%" PRIu64 ",", span.transfer_bytes);
      AppendF(&out, "\"faults\":{\"retries\":%d,\"failed\":%s},",
              span.fault_retries, span.fault_failed ? "true" : "false");
    }
    if (span.kind == SpanKind::kLink) {
      AppendF(&out, "\"bytes\":%" PRIu64 ",", span.transfer_bytes);
      AppendF(&out, "\"src_device\":%d,\"dst_device\":%d,", span.link_src,
              span.link_dst);
    }
    if (span.kind == SpanKind::kQuery) {
      AppendF(&out, "\"request_id\":%" PRIu64 ",", span.q_request_id);
      AppendF(&out, "\"class\":\"%s\",", JsonEscape(span.q_class).c_str());
      AppendF(&out, "\"status\":\"%s\",", JsonEscape(span.q_status).c_str());
      AppendDouble(&out, "admit_ms", span.q_admit_ms);
      AppendDouble(&out, "service_start_ms", span.q_start_ms);
    }
    if (span.kind == SpanKind::kReencode) {
      AppendF(&out, "\"column\":%u,", span.re_column);
      AppendF(&out, "\"tile\":%" PRId64 ",", span.re_tile);
      AppendF(&out, "\"generation\":%" PRIu64 ",", span.re_generation);
      AppendF(&out, "\"old_words\":%u,", span.re_old_words);
      AppendF(&out, "\"new_words\":%u,", span.re_new_words);
    }
    AppendDouble(&out, "start_ms", span.start_ms);
    AppendDouble(&out, "duration_ms", span.duration_ms,
                 /*trailing_comma=*/false);
    out.append("}");
  }
  out.append("\n]}\n");
  return out;
}

std::string ToJson(const Tracer& tracer) { return ToJson(tracer.spans()); }

bool TraceFromJson(const std::string& json, std::vector<Span>* spans,
                   std::string* error) {
  spans->clear();
  JsonValue root;
  if (!ParseJson(json, &root, error)) return false;
  const std::string schema =
      root.Has("schema") ? root.Get("schema").AsString() : "";
  if (!IsKnownTraceSchema(schema)) {
    if (error != nullptr) *error = "unknown trace schema: " + schema;
    return false;
  }
  if (!root.Get("spans").is_array()) {
    if (error != nullptr) *error = "missing spans array";
    return false;
  }
  for (const JsonValue& record : root.Get("spans").AsArray()) {
    Span span;
    const std::string kind = record.Get("kind").AsString();
    if (kind == "kernel") {
      span.kind = SpanKind::kKernel;
    } else if (kind == "transfer") {
      span.kind = SpanKind::kTransfer;
    } else if (kind == "scope") {
      span.kind = SpanKind::kScope;
    } else if (kind == "link") {
      span.kind = SpanKind::kLink;
    } else if (kind == "query") {
      span.kind = SpanKind::kQuery;
    } else if (kind == "reencode") {
      span.kind = SpanKind::kReencode;
    } else {
      if (error != nullptr) *error = "unknown span kind: " + kind;
      return false;
    }
    span.name = record.Get("name").AsString();
    span.path = record.Get("path").AsString();
    span.depth = static_cast<int>(record.Get("depth").AsInt64());
    span.start_ms = record.Get("start_ms").AsDouble();
    span.duration_ms = record.Get("duration_ms").AsDouble();
    // v1 traces predate streams; everything ran on the default stream.
    span.stream_id =
        record.Has("stream") ? static_cast<int>(record.Get("stream").AsInt64())
                             : 0;
    // Pre-v8 traces predate clusters: everything ran on device 0.
    span.device_id =
        record.Has("device") ? static_cast<int>(record.Get("device").AsInt64())
                             : 0;
    // Pre-v5 traces predate fault injection: zero retries, not failed.
    if (record.Has("faults")) {
      const JsonValue& faults = record.Get("faults");
      span.fault_retries = static_cast<int>(faults.Get("retries").AsInt64());
      span.fault_failed = faults.Get("failed").AsBool();
    }
    if (span.kind == SpanKind::kKernel) {
      sim::KernelResult& k = span.kernel;
      k.label = span.name;
      k.start_ms = span.start_ms;
      k.time_ms = span.duration_ms;
      k.stream_id = span.stream_id;
      k.fault_retries = span.fault_retries;
      k.failed = span.fault_failed;
      const JsonValue& config = record.Get("config");
      k.config.grid_dim = config.Get("grid_dim").AsInt64();
      k.config.block_threads =
          static_cast<int>(config.Get("block_threads").AsInt64());
      k.config.smem_bytes_per_block =
          static_cast<int>(config.Get("smem_bytes_per_block").AsInt64());
      k.config.regs_per_thread =
          static_cast<int>(config.Get("regs_per_thread").AsInt64());
      // Pre-v3 traces predate the scheduling knob: everything was static.
      if (config.Has("scheduling")) {
        k.config.scheduling = config.Get("scheduling").AsString() ==
                                      "persistent"
                                  ? sim::Scheduling::kPersistent
                                  : sim::Scheduling::kStatic;
      }
      const JsonValue& stats = record.Get("stats");
      k.stats.global_bytes_read = stats.Get("global_bytes_read").AsUint64();
      k.stats.global_bytes_written =
          stats.Get("global_bytes_written").AsUint64();
      k.stats.warp_global_accesses =
          stats.Get("warp_global_accesses").AsUint64();
      k.stats.shared_bytes = stats.Get("shared_bytes").AsUint64();
      k.stats.compute_ops = stats.Get("compute_ops").AsUint64();
      k.stats.barriers = stats.Get("barriers").AsUint64();
      if (stats.Has("atomic_ops")) {
        k.stats.atomic_ops = stats.Get("atomic_ops").AsUint64();
      }
      // Pre-v4 traces predate the tile cache: counters stay zero.
      if (record.Has("cache")) {
        const JsonValue& cache = record.Get("cache");
        k.stats.cache.hits = cache.Get("hits").AsUint64();
        k.stats.cache.misses = cache.Get("misses").AsUint64();
        k.stats.cache.evictions = cache.Get("evictions").AsUint64();
        k.stats.cache.saved_bytes = cache.Get("saved_bytes").AsUint64();
        // Pre-v7 traces predate prefetching: the split stays zero.
        if (cache.Has("prefetch_hits")) {
          k.stats.cache.prefetch_hits = cache.Get("prefetch_hits").AsUint64();
        }
      }
      // Pre-v6 traces predate predicate pushdown: counters stay zero.
      if (record.Has("pushdown")) {
        const JsonValue& pd = record.Get("pushdown");
        k.stats.pushdown.tiles_pruned = pd.Get("tiles_pruned").AsUint64();
        k.stats.pushdown.tiles_decoded = pd.Get("tiles_decoded").AsUint64();
        k.stats.pushdown.blocks_short_circuited =
            pd.Get("blocks_short_circuited").AsUint64();
        k.stats.pushdown.runs_short_circuited =
            pd.Get("runs_short_circuited").AsUint64();
      }
      // Pre-v7 traces predate speculative prefetching: counters stay zero.
      if (record.Has("prefetch")) {
        const JsonValue& pf = record.Get("prefetch");
        k.stats.prefetch.issued = pf.Get("issued").AsUint64();
        k.stats.prefetch.useful = pf.Get("useful").AsUint64();
        k.stats.prefetch.wasted = pf.Get("wasted").AsUint64();
        k.stats.prefetch.late = pf.Get("late").AsUint64();
      }
      const JsonValue& breakdown = record.Get("breakdown_ms");
      k.breakdown.launch_ms = breakdown.Get("launch").AsDouble();
      k.breakdown.bandwidth_ms = breakdown.Get("bandwidth").AsDouble();
      k.breakdown.latency_ms = breakdown.Get("latency").AsDouble();
      k.breakdown.scheduling_ms = breakdown.Get("scheduling").AsDouble();
      k.breakdown.shared_ms = breakdown.Get("shared").AsDouble();
      k.breakdown.compute_ms = breakdown.Get("compute").AsDouble();
      if (breakdown.Has("atomic")) {
        k.breakdown.atomic_ms = breakdown.Get("atomic").AsDouble();
      }
      k.breakdown.occupancy = record.Get("occupancy").AsDouble();
      if (record.Has("wave")) {
        const JsonValue& wave = record.Get("wave");
        sim::WaveStats& w = k.breakdown.wave;
        w.scheduling = wave.Get("scheduling").AsString() == "persistent"
                           ? sim::Scheduling::kPersistent
                           : sim::Scheduling::kStatic;
        w.slots = wave.Get("slots").AsInt64();
        w.waves = wave.Get("waves").AsInt64();
        w.mean_cost = wave.Get("mean_cost").AsDouble();
        w.max_cost = wave.Get("max_cost").AsDouble();
        w.p99_cost = wave.Get("p99_cost").AsDouble();
        w.imbalance = wave.Get("imbalance").AsDouble();
        // tail_ms is stored under breakdown_ms, keeping total_ms consistent.
        if (breakdown.Has("tail")) {
          w.tail_ms = breakdown.Get("tail").AsDouble();
        }
      }
    }
    if (span.kind == SpanKind::kTransfer) {
      span.transfer_bytes = record.Get("bytes").AsUint64();
    }
    if (span.kind == SpanKind::kLink) {
      span.transfer_bytes = record.Get("bytes").AsUint64();
      span.link_src = static_cast<int>(record.Get("src_device").AsInt64());
      span.link_dst = static_cast<int>(record.Get("dst_device").AsInt64());
    }
    if (span.kind == SpanKind::kQuery) {
      span.q_request_id = record.Get("request_id").AsUint64();
      span.q_class = record.Get("class").AsString();
      span.q_status = record.Get("status").AsString();
      span.q_admit_ms = record.Get("admit_ms").AsDouble();
      span.q_start_ms = record.Get("service_start_ms").AsDouble();
    }
    if (span.kind == SpanKind::kReencode) {
      span.re_column = static_cast<uint32_t>(record.Get("column").AsUint64());
      span.re_tile = record.Get("tile").AsInt64();
      span.re_generation = record.Get("generation").AsUint64();
      span.re_old_words =
          static_cast<uint32_t>(record.Get("old_words").AsUint64());
      span.re_new_words =
          static_cast<uint32_t>(record.Get("new_words").AsUint64());
    }
    spans->push_back(std::move(span));
  }
  return true;
}

std::string ToChromeTrace(const std::vector<Span>& spans) {
  std::string out;
  out.reserve(1024 + spans.size() * 256);
  out.append("{\"traceEvents\":[");
  // Lane layout: per device, scopes on the first lane bracket the per-stream
  // work lanes below it, mirroring how nvprof shows streams under the
  // launching API row; link spans get one interconnect lane per source
  // device after all the device groups. Single-device traces keep the
  // original tids (0 = scopes, 1 + stream). Metadata events name each lane.
  int max_stream = 0;
  int max_device = 0;
  bool has_links = false;
  bool has_queries = false;
  for (const Span& span : spans) {
    max_stream = std::max(max_stream, span.stream_id);
    max_device = std::max({max_device, span.device_id, span.link_dst});
    if (span.kind == SpanKind::kLink) has_links = true;
    if (span.kind == SpanKind::kQuery) has_queries = true;
  }
  const int lane_stride = max_stream + 2;
  const int link_base = (max_device + 1) * lane_stride;
  // Query lanes (schema v9) come after the link lanes: one lane per
  // (device, priority class), each query drawn as a "(queued)" slice from
  // arrival to service start followed by its service slice — so queueing
  // delay and service time separate visually.
  const int query_base = link_base + (has_links ? max_device + 1 : 0);
  static constexpr const char* kQueryClassLanes[3] = {"interactive",
                                                      "standard", "batch"};
  auto query_class_idx = [](const std::string& cls) {
    for (int i = 0; i < 3; ++i) {
      if (cls == kQueryClassLanes[i]) return i;
    }
    return 0;
  };
  out.append(
      "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
      "\"args\":{\"name\":\"tilecomp sim\"}}");
  for (int d = 0; d <= max_device; ++d) {
    char prefix[32];
    if (max_device > 0) {
      std::snprintf(prefix, sizeof(prefix), "dev%d ", d);
    } else {
      prefix[0] = '\0';
    }
    AppendF(&out,
            ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
            "\"args\":{\"name\":\"%sscopes\"}}",
            d * lane_stride, prefix);
    for (int s = 0; s <= max_stream; ++s) {
      AppendF(&out,
              ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
              "\"args\":{\"name\":\"%sstream %d%s\"}}",
              d * lane_stride + 1 + s, prefix, s, s == 0 ? " (default)" : "");
    }
  }
  if (has_links) {
    for (int d = 0; d <= max_device; ++d) {
      AppendF(&out,
              ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
              "\"args\":{\"name\":\"dev%d link-out\"}}",
              link_base + d, d);
    }
  }
  if (has_queries) {
    for (int d = 0; d <= max_device; ++d) {
      for (int c = 0; c < 3; ++c) {
        char prefix[32];
        if (max_device > 0) {
          std::snprintf(prefix, sizeof(prefix), "dev%d ", d);
        } else {
          prefix[0] = '\0';
        }
        AppendF(&out,
                ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":%d,\"args\":{\"name\":\"%squeries %s\"}}",
                query_base + d * 3 + c, prefix, kQueryClassLanes[c]);
      }
    }
  }
  for (const Span& span : spans) {
    if (span.kind == SpanKind::kQuery) {
      const int tid =
          query_base + span.device_id * 3 + query_class_idx(span.q_class);
      const double finish_ms = span.start_ms + span.duration_ms;
      if (span.q_start_ms > span.start_ms) {
        AppendF(&out,
                ",\n{\"name\":\"%s (queued)\",\"cat\":\"query\",\"ph\":\"X\","
                "\"pid\":0,\"tid\":%d,\"ts\":%.12g,\"dur\":%.12g,"
                "\"args\":{\"request_id\":%" PRIu64 ",\"status\":\"%s\"}}",
                JsonEscape(span.name).c_str(), tid, span.start_ms * 1e3,
                (span.q_start_ms - span.start_ms) * 1e3, span.q_request_id,
                JsonEscape(span.q_status).c_str());
      }
      AppendF(&out,
              ",\n{\"name\":\"%s%s\",\"cat\":\"query\",\"ph\":\"X\","
              "\"pid\":0,\"tid\":%d,\"ts\":%.12g,\"dur\":%.12g,"
              "\"args\":{\"request_id\":%" PRIu64
              ",\"class\":\"%s\",\"status\":\"%s\",\"stream\":%d}}",
              JsonEscape(span.name).c_str(),
              span.q_status == "ok" ? "" : (" (" + span.q_status + ")").c_str(),
              tid, span.q_start_ms * 1e3,
              std::max(0.0, finish_ms - span.q_start_ms) * 1e3,
              span.q_request_id, JsonEscape(span.q_class).c_str(),
              JsonEscape(span.q_status).c_str(), span.stream_id);
      continue;
    }
    out.append(",");
    out.append("\n{");
    int tid = span.device_id * lane_stride;
    if (span.kind == SpanKind::kLink) {
      tid = link_base + span.link_src;
    } else if (span.kind != SpanKind::kScope &&
               span.kind != SpanKind::kReencode) {
      // Reencode spans are host-side background work, so they share the
      // scopes lane rather than claiming a device stream.
      tid += 1 + span.stream_id;
    }
    AppendF(&out, "\"name\":\"%s\",", JsonEscape(span.name).c_str());
    AppendF(&out, "\"cat\":\"%s\",", SpanKindName(span.kind));
    AppendF(&out, "\"ph\":\"X\",\"pid\":0,\"tid\":%d,", tid);
    AppendF(&out, "\"ts\":%.12g,\"dur\":%.12g,", span.start_ms * 1e3,
            span.duration_ms * 1e3);
    out.append("\"args\":{");
    if (span.kind == SpanKind::kKernel) {
      const sim::KernelResult& k = span.kernel;
      AppendF(&out, "\"stream\":%d,", span.stream_id);
      AppendF(&out, "\"grid_dim\":%" PRId64 ",", k.config.grid_dim);
      AppendF(&out, "\"global_bytes\":%" PRIu64 ",",
              k.stats.global_bytes_total());
      AppendDouble(&out, "occupancy", k.breakdown.occupancy);
      AppendF(&out, "\"limiter\":\"%s\"",
              sim::LimiterName(k.breakdown.limiter()));
    } else if (span.kind == SpanKind::kTransfer) {
      AppendF(&out, "\"stream\":%d,", span.stream_id);
      AppendF(&out, "\"bytes\":%" PRIu64, span.transfer_bytes);
    } else if (span.kind == SpanKind::kLink) {
      AppendF(&out, "\"src_device\":%d,\"dst_device\":%d,", span.link_src,
              span.link_dst);
      AppendF(&out, "\"bytes\":%" PRIu64, span.transfer_bytes);
    } else if (span.kind == SpanKind::kReencode) {
      AppendF(&out, "\"column\":%u,\"tile\":%" PRId64 ",", span.re_column,
              span.re_tile);
      AppendF(&out, "\"generation\":%" PRIu64 ",", span.re_generation);
      AppendF(&out, "\"old_words\":%u,\"new_words\":%u", span.re_old_words,
              span.re_new_words);
    }
    out.append("}}");
  }
  out.append("\n]}\n");
  return out;
}

std::string ToChromeTrace(const Tracer& tracer) {
  return ToChromeTrace(tracer.spans());
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

void PrintSummary(const Tracer& tracer, std::FILE* out) {
  std::fprintf(out, "%-34s %10s %10s %9s %9s %5s %-10s\n", "span", "time_ms",
               "grid", "rd_MB", "wr_MB", "occ%", "limiter");
  for (const Span& span : tracer.spans()) {
    std::string indent(static_cast<size_t>(span.depth) * 2, ' ');
    if (span.kind == SpanKind::kScope) {
      std::fprintf(out, "%s[%s] %.4f ms\n", indent.c_str(), span.name.c_str(),
                   span.duration_ms);
      continue;
    }
    if (span.kind == SpanKind::kTransfer) {
      std::fprintf(out, "%s%-*s %10.4f %10s %9.2f %9s %5s %-10s\n",
                   indent.c_str(),
                   static_cast<int>(34 - indent.size()), span.name.c_str(),
                   span.duration_ms, "-", span.transfer_bytes / 1e6, "-", "-",
                   "pcie");
      continue;
    }
    if (span.kind == SpanKind::kLink) {
      std::fprintf(out, "%s%-*s %10.4f %10s %9.2f %9s %5s %-10s\n",
                   indent.c_str(),
                   static_cast<int>(34 - indent.size()), span.name.c_str(),
                   span.duration_ms, "-", span.transfer_bytes / 1e6, "-", "-",
                   "link");
      continue;
    }
    if (span.kind == SpanKind::kQuery) {
      std::fprintf(out, "%s%s [%s] e2e %.4f ms (queued %.4f) %s\n",
                   indent.c_str(), span.name.c_str(), span.q_class.c_str(),
                   span.duration_ms, span.q_start_ms - span.start_ms,
                   span.q_status.c_str());
      continue;
    }
    if (span.kind == SpanKind::kReencode) {
      std::fprintf(out,
                   "%s%s col %u tile %" PRId64 " gen %" PRIu64
                   " %u -> %u words %.4f ms\n",
                   indent.c_str(), span.name.c_str(), span.re_column,
                   span.re_tile, span.re_generation, span.re_old_words,
                   span.re_new_words, span.duration_ms);
      continue;
    }
    const sim::KernelResult& k = span.kernel;
    std::fprintf(out, "%s%-*s %10.4f %10" PRId64 " %9.2f %9.2f %5.0f %-10s\n",
                 indent.c_str(), static_cast<int>(34 - indent.size()),
                 span.name.c_str(), span.duration_ms, k.config.grid_dim,
                 k.stats.global_bytes_read / 1e6,
                 k.stats.global_bytes_written / 1e6,
                 k.breakdown.occupancy * 100.0,
                 sim::LimiterName(k.breakdown.limiter()));
  }
}

}  // namespace tilecomp::telemetry
