// Trace exporters.
//
// JSON schema (stable; version bumps on breaking change):
//
//   {
//     "schema": "tilecomp.trace.v1",
//     "spans": [
//       {
//         "kind": "kernel" | "transfer" | "scope",
//         "name": "<launch label / scope name>",
//         "path": "<'/'-joined enclosing scope names, '' at top level>",
//         "depth": <int>,
//         "start_ms": <double>, "duration_ms": <double>,
//         // kind == "kernel" only:
//         "config": {"grid_dim", "block_threads", "smem_bytes_per_block",
//                    "regs_per_thread"},
//         "stats": {"global_bytes_read", "global_bytes_written",
//                   "warp_global_accesses", "shared_bytes", "compute_ops",
//                   "barriers"},
//         "occupancy": <double 0..1>,
//         "breakdown_ms": {"launch", "bandwidth", "latency", "scheduling",
//                          "shared", "compute"},
//         "limiter": "bandwidth"|"latency"|"scheduling"|"shared"|"compute",
//         // kind == "transfer" only:
//         "bytes": <uint64>
//       }, ...
//     ]
//   }
//
// The chrome://tracing exporter emits the Trace Event JSON format ("X"
// duration events, microsecond timestamps) loadable in chrome://tracing or
// https://ui.perfetto.dev.
#ifndef TILECOMP_TELEMETRY_EXPORT_H_
#define TILECOMP_TELEMETRY_EXPORT_H_

#include <cstdio>
#include <string>

#include "telemetry/tracer.h"

namespace tilecomp::telemetry {

inline constexpr const char* kTraceSchema = "tilecomp.trace.v1";

// Machine-readable trace (schema above).
std::string ToJson(const Tracer& tracer);

// chrome://tracing / Perfetto Trace Event format.
std::string ToChromeTrace(const Tracer& tracer);

// Write `content` to `path`. Returns false on I/O error.
bool WriteTextFile(const std::string& path, const std::string& content);

// Human-readable per-launch table (label, grid, time, traffic, occupancy,
// limiter) written to `out`; scope spans print as indented headers.
void PrintSummary(const Tracer& tracer, std::FILE* out);

}  // namespace tilecomp::telemetry

#endif  // TILECOMP_TELEMETRY_EXPORT_H_
