// Trace exporters and loader.
//
// JSON schema (stable; version bumps on breaking change):
//
//   {
//     "schema": "tilecomp.trace.v9",
//     "spans": [
//       {
//         "kind": "kernel" | "transfer" | "scope" | "link" | "query",
//         "name": "<launch label / scope name / link label>",
//         "path": "<'/'-joined enclosing scope names, '' at top level>",
//         "depth": <int>,
//         "start_ms": <double>, "duration_ms": <double>,
//         // v8: device the span belongs to (0 in single-device traces; link
//         // spans carry their source device here).
//         "device": <int>,
//         // kind == "kernel" | "transfer" only:
//         "stream": <int, 0 = default stream>,
//         // kind == "kernel" only:
//         "config": {"grid_dim", "block_threads", "smem_bytes_per_block",
//                    "regs_per_thread", "scheduling": "static"|"persistent"},
//         "stats": {"global_bytes_read", "global_bytes_written",
//                   "warp_global_accesses", "shared_bytes", "compute_ops",
//                   "barriers", "atomic_ops"},
//         "occupancy": <double 0..1>,
//         "breakdown_ms": {"launch", "bandwidth", "latency", "scheduling",
//                          "shared", "compute", "tail", "atomic"},
//         "wave": {"scheduling": "static"|"persistent", "slots", "waves",
//                  "mean_cost", "max_cost", "p99_cost", "imbalance"},
//         "cache": {"hits", "misses", "evictions", "saved_bytes",
//                   "prefetch_hits"},
//         "pushdown": {"tiles_pruned", "tiles_decoded",
//                      "blocks_short_circuited", "runs_short_circuited"},
//         "prefetch": {"issued", "useful", "wasted", "late"},
//         "limiter": "bandwidth"|"latency"|"scheduling"|"shared"|"compute",
//         // kind == "kernel" | "transfer" only:
//         "faults": {"retries": <int>, "failed": <bool>},
//         // kind == "transfer" | "link" only:
//         "bytes": <uint64>,
//         // kind == "link" only (v8): inter-device interconnect transfer
//         // endpoints (sim::Cluster).
//         "src_device": <int>, "dst_device": <int>,
//         // kind == "query" only (v9): one served query's admission
//         // lifecycle under load. The span covers arrival -> finish
//         // (start_ms = arrival, duration_ms = end-to-end latency);
//         // "admit_ms" is when the request left the admission queue and
//         // "service_start_ms" when its kernels became eligible, so
//         // queueing delay (admit - arrival) is separable from service
//         // time (finish - start). Shed queries carry stream -1, status
//         // "shed", and admit == service_start == arrival + queue wait.
//         "request_id": <uint64>, "class": "interactive"|"standard"|"batch",
//         "status": "ok"|"shed"|..., "admit_ms": <double>,
//         "service_start_ms": <double>
//       }, ...
//     ]
//   }
//
// v2 added the per-span "stream" field (async stream timelines); v3 adds the
// scheduling knob, the atomic-op counter, the wave/imbalance object and the
// tail/atomic breakdown terms; v4 adds the per-kernel "cache" object (the
// serving layer's decompressed-tile cache: hit/miss/eviction counts and the
// encoded bytes hits avoided reading); v5 adds the per-span "faults" object
// (injected-fault retries and terminal failure from the fault plan, see
// fault/fault.h); v6 adds the per-kernel "pushdown" object (compressed-domain
// predicate evaluation: tiles pruned before decode vs tiles decoded, and the
// 128-value blocks / RFOR runs a zone-map or frame-of-reference bound decided
// without touching values); v7 adds the per-kernel "prefetch" object (the
// serving layer's speculative tile prefetching: decodes issued / useful /
// wasted / late, see serve/prefetcher.h) and the "prefetch_hits" cache field
// (demand hits served by speculatively staged tiles, counted apart from
// "hits"); v8 adds multi-device cluster serving: the per-span "device" field
// (which device's timeline the span sits on) and the "link" span kind (one
// inter-device transfer over the modeled interconnect, carrying "bytes" plus
// "src_device"/"dst_device"); v9 adds loaded serving: the "query" span kind
// (one served query's arrival/admit/service-start/finish lifecycle with its
// request id, priority class and final status — see serve/admission.h).
// Older traces still load through TraceFromJson:
// a missing "stream" defaults to the synchronizing stream 0, missing v3
// fields default to a static launch with no wave data, a missing v4 "cache"
// object defaults to all-zero counters, a missing v5 "faults" object
// defaults to zero retries / not failed, a missing v6 "pushdown" object
// defaults to all-zero counters, missing v7 prefetch fields default to
// all-zero counters, and a missing v8 "device" field defaults to device 0.
//
// The chrome://tracing exporter emits the Trace Event JSON format ("X"
// duration events, microsecond timestamps) loadable in chrome://tracing or
// https://ui.perfetto.dev, with one named lane (tid) per device stream;
// multi-device traces get one lane group per device plus a per-device
// interconnect lane for link spans.
#ifndef TILECOMP_TELEMETRY_EXPORT_H_
#define TILECOMP_TELEMETRY_EXPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/tracer.h"

namespace tilecomp::telemetry {

inline constexpr const char* kTraceSchema = "tilecomp.trace.v10";
inline constexpr const char* kTraceSchemaV1 = "tilecomp.trace.v1";
inline constexpr const char* kTraceSchemaV2 = "tilecomp.trace.v2";
inline constexpr const char* kTraceSchemaV3 = "tilecomp.trace.v3";
inline constexpr const char* kTraceSchemaV4 = "tilecomp.trace.v4";
inline constexpr const char* kTraceSchemaV5 = "tilecomp.trace.v5";
inline constexpr const char* kTraceSchemaV6 = "tilecomp.trace.v6";
inline constexpr const char* kTraceSchemaV7 = "tilecomp.trace.v7";
inline constexpr const char* kTraceSchemaV8 = "tilecomp.trace.v8";
inline constexpr const char* kTraceSchemaV9 = "tilecomp.trace.v9";

// True for every schema version TraceFromJson accepts (v1 through v10).
bool IsKnownTraceSchema(const std::string& schema);

// Machine-readable trace (schema above). The span-vector overload serializes
// a merged multi-device timeline (see MergeSpans in tracer.h).
std::string ToJson(const Tracer& tracer);
std::string ToJson(const std::vector<Span>& spans);

// Parse a tilecomp.trace.v1 through .v10 document back into spans. Limiter
// and derived fields are recomputed from the stored breakdown; spans from a
// v1 trace carry stream 0, pre-v3 spans carry static scheduling with no wave
// data, pre-v4 spans carry all-zero cache counters, pre-v5 spans carry zero
// fault retries / not failed, pre-v6 spans carry all-zero pushdown counters,
// pre-v7 spans carry all-zero prefetch counters, pre-v8 spans carry
// device 0, and pre-v10 traces simply contain no reencode spans. Returns
// false (and fills *error) on malformed input or an unknown schema.
bool TraceFromJson(const std::string& json, std::vector<Span>* spans,
                   std::string* error);

// chrome://tracing / Perfetto Trace Event format. The span-vector overload
// lays out one lane group per device plus interconnect lanes for link spans.
std::string ToChromeTrace(const Tracer& tracer);
std::string ToChromeTrace(const std::vector<Span>& spans);

// Write `content` to `path`. Returns false on I/O error.
bool WriteTextFile(const std::string& path, const std::string& content);

// Human-readable per-launch table (label, grid, time, traffic, occupancy,
// limiter) written to `out`; scope spans print as indented headers.
void PrintSummary(const Tracer& tracer, std::FILE* out);

}  // namespace tilecomp::telemetry

#endif  // TILECOMP_TELEMETRY_EXPORT_H_
