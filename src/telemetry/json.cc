#include "telemetry/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace tilecomp::telemetry {

bool JsonValue::Has(const std::string& key) const {
  return object_.find(key) != object_.end();
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue kNull;
  auto it = object_.find(key);
  return it == object_.end() ? kNull : it->second;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::Number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::Array(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_ != nullptr) {
      *error_ = "json parse error at offset " + std::to_string(pos_) + ": " +
                message;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        return ParseString(out);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWs();
    if (Consume('}')) {
      *out = JsonValue::Object(std::move(members));
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      members[key.AsString()] = std::move(value);
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}'");
    }
    *out = JsonValue::Object(std::move(members));
    return true;
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    std::vector<JsonValue> elements;
    SkipWs();
    if (Consume(']')) {
      *out = JsonValue::Array(std::move(elements));
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      elements.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']'");
    }
    *out = JsonValue::Array(std::move(elements));
    return true;
  }

  bool ParseString(JsonValue* out) {
    ++pos_;  // '"'
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = JsonValue::String(std::move(s));
        return true;
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The exporters only emit ASCII; decode BMP code points as UTF-8.
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else if (code < 0x800) {
            s += static_cast<char>(0xC0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseBool(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = JsonValue::Bool(true);
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = JsonValue::Bool(false);
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNull(JsonValue* out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = JsonValue::Null();
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return Fail("expected value");
    pos_ += static_cast<size_t>(end - begin);
    *out = JsonValue::Number(v);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tilecomp::telemetry
