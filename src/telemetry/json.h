// Minimal JSON support for the trace exporters and their tests: a value
// tree, a writer-side string escaper, and a strict recursive-descent parser
// (objects, arrays, strings, numbers, booleans, null). Self-contained on
// purpose — the container has no third-party JSON dependency, and the trace
// schema only needs this subset.
#ifndef TILECOMP_TELEMETRY_JSON_H_
#define TILECOMP_TELEMETRY_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tilecomp::telemetry {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  uint64_t AsUint64() const { return static_cast<uint64_t>(number_); }
  int64_t AsInt64() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }

  // Object access. Get returns null-kind for a missing key; Has tests
  // membership.
  bool Has(const std::string& key) const;
  const JsonValue& Get(const std::string& key) const;
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  static JsonValue Null();
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array(std::vector<JsonValue> v);
  static JsonValue Object(std::map<std::string, JsonValue> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parse `text` into `out`. Returns false (and fills *error with a position
// plus message) on malformed input. The full input must be consumed apart
// from trailing whitespace.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// Escape `s` for embedding inside a JSON string literal (adds no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace tilecomp::telemetry

#endif  // TILECOMP_TELEMETRY_JSON_H_
