#include "telemetry/tracer.h"

#include <algorithm>

namespace tilecomp::telemetry {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kKernel:
      return "kernel";
    case SpanKind::kTransfer:
      return "transfer";
    case SpanKind::kScope:
      return "scope";
    case SpanKind::kLink:
      return "link";
    case SpanKind::kQuery:
      return "query";
    case SpanKind::kReencode:
      return "reencode";
  }
  return "?";
}

std::string Tracer::CurrentPath() const {
  std::string path;
  for (size_t idx : open_scopes_) {
    if (!path.empty()) path += '/';
    path += spans_[idx].name;
  }
  return path;
}

void Tracer::OnKernel(const sim::KernelResult& result) {
  Span span;
  span.kind = SpanKind::kKernel;
  span.name = result.label;
  span.path = CurrentPath();
  span.depth = static_cast<int>(open_scopes_.size());
  span.start_ms = result.start_ms;
  span.duration_ms = result.time_ms;
  span.stream_id = result.stream_id;
  span.device_id = device_id_;
  span.kernel = result;
  spans_.push_back(std::move(span));
}

void Tracer::OnTransfer(uint64_t bytes, double start_ms, double duration_ms,
                        int stream_id, int retries, bool failed) {
  Span span;
  span.kind = SpanKind::kTransfer;
  span.name = "pcie.transfer";
  span.path = CurrentPath();
  span.depth = static_cast<int>(open_scopes_.size());
  span.start_ms = start_ms;
  span.duration_ms = duration_ms;
  span.stream_id = stream_id;
  span.device_id = device_id_;
  span.transfer_bytes = bytes;
  span.fault_retries = retries;
  span.fault_failed = failed;
  spans_.push_back(std::move(span));
}

void Tracer::OnScopeBegin(const std::string& name, double start_ms) {
  Span span;
  span.kind = SpanKind::kScope;
  span.name = name;
  span.path = CurrentPath();
  span.depth = static_cast<int>(open_scopes_.size());
  span.start_ms = start_ms;
  span.duration_ms = 0.0;
  span.device_id = device_id_;
  spans_.push_back(std::move(span));
  open_scopes_.push_back(spans_.size() - 1);
}

void Tracer::OnScopeEnd(double end_ms) {
  if (open_scopes_.empty()) return;  // unbalanced EndScope: ignore
  Span& scope = spans_[open_scopes_.back()];
  scope.duration_ms = end_ms - scope.start_ms;
  open_scopes_.pop_back();
}

size_t Tracer::num_kernel_spans() const {
  size_t n = 0;
  for (const Span& span : spans_) {
    if (span.kind == SpanKind::kKernel) ++n;
  }
  return n;
}

std::vector<sim::KernelResult> Tracer::KernelsSince(size_t mark) const {
  std::vector<sim::KernelResult> out;
  for (size_t i = mark; i < spans_.size(); ++i) {
    if (spans_[i].kind == SpanKind::kKernel) out.push_back(spans_[i].kernel);
  }
  return out;
}

void Tracer::OnLink(int src_device, int dst_device, uint64_t bytes,
                    double start_ms, double duration_ms,
                    const std::string& label) {
  Span span;
  span.kind = SpanKind::kLink;
  span.name = label.empty() ? "link.transfer" : label;
  span.path = CurrentPath();
  span.depth = static_cast<int>(open_scopes_.size());
  span.start_ms = start_ms;
  span.duration_ms = duration_ms;
  span.device_id = src_device;
  span.transfer_bytes = bytes;
  span.link_src = src_device;
  span.link_dst = dst_device;
  spans_.push_back(std::move(span));
}

void Tracer::OnQuerySpan(const sim::QueryTraceInfo& info) {
  Span span;
  span.kind = SpanKind::kQuery;
  span.name = info.label;
  span.path = CurrentPath();
  span.depth = static_cast<int>(open_scopes_.size());
  span.start_ms = info.arrival_ms;
  span.duration_ms = info.finish_ms - info.arrival_ms;
  span.stream_id = info.stream_id;
  span.device_id = device_id_;
  span.q_request_id = info.request_id;
  span.q_admit_ms = info.admit_ms;
  span.q_start_ms = info.start_ms;
  span.q_class = info.cls;
  span.q_status = info.status;
  spans_.push_back(std::move(span));
}

void Tracer::OnReencode(uint32_t column, int64_t tile, uint64_t generation,
                        uint32_t old_words, uint32_t new_words,
                        double start_ms, double duration_ms) {
  Span span;
  span.kind = SpanKind::kReencode;
  span.name = "reencode";
  span.path = CurrentPath();
  span.depth = static_cast<int>(open_scopes_.size());
  span.start_ms = start_ms;
  span.duration_ms = duration_ms;
  span.device_id = device_id_;
  span.re_column = column;
  span.re_tile = tile;
  span.re_generation = generation;
  span.re_old_words = old_words;
  span.re_new_words = new_words;
  spans_.push_back(std::move(span));
}

void Tracer::Clear() {
  spans_.clear();
  open_scopes_.clear();
}

std::vector<Span> MergeSpans(const std::vector<const Tracer*>& tracers) {
  std::vector<Span> merged;
  for (const Tracer* tracer : tracers) {
    if (tracer == nullptr) continue;
    merged.insert(merged.end(), tracer->spans().begin(),
                  tracer->spans().end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Span& a, const Span& b) {
                     return a.start_ms < b.start_ms;
                   });
  return merged;
}

ScopedSpan::ScopedSpan(sim::Device& dev, const std::string& name) {
  if (dev.tracer() == nullptr) return;
  dev_ = &dev;
  dev.tracer()->OnScopeBegin(name, dev.elapsed_ms());
}

ScopedSpan::~ScopedSpan() {
  if (dev_ != nullptr) dev_->tracer()->OnScopeEnd(dev_->elapsed_ms());
}

}  // namespace tilecomp::telemetry
