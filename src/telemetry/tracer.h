// Tracing layer for the simulated device: records every kernel launch and
// PCIe transfer as a span (label, launch config, traffic counters, modeled
// time, and the perf model's limiter breakdown), with optional named scope
// nesting ("which launch of which pipeline"). Attach a Tracer to a
// sim::Device, run any pipeline, then export the trace (see export.h) or
// inspect the spans directly.
//
//   telemetry::Tracer tracer;
//   dev.AttachTracer(&tracer);
//   {
//     telemetry::ScopedSpan span(dev, "decompress/gpu-rfor");
//     kernels::Decompress(dev, column);
//   }
//   std::string json = telemetry::ToJson(tracer);
#ifndef TILECOMP_TELEMETRY_TRACER_H_
#define TILECOMP_TELEMETRY_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/stats.h"

namespace tilecomp::telemetry {

enum class SpanKind { kKernel, kTransfer, kScope, kLink, kQuery, kReencode };

const char* SpanKindName(SpanKind kind);

// One record of the trace. Kernel spans carry the full KernelResult
// (config, stats, breakdown); transfer spans carry the byte count; scope
// spans only bracket their children in time; link spans (schema v8) record
// one inter-device transfer over a sim::Cluster interconnect; query spans
// (schema v9) record one served query's admission lifecycle — the span runs
// arrival -> finish, with the admit/service-start timestamps inside it so
// queueing delay is separable from service time; reencode spans (schema v10)
// record one mutable-column background re-encode — which tile was rewritten
// at which generation and how its extent size changed.
struct Span {
  SpanKind kind = SpanKind::kKernel;
  std::string name;
  // "/"-joined names of the enclosing scopes, outermost first; empty at top
  // level. Kernel spans launched inside a scope inherit its path + name.
  std::string path;
  // Number of enclosing scopes when the span was recorded.
  int depth = 0;
  // Device-timeline position and extent, ms.
  double start_ms = 0.0;
  double duration_ms = 0.0;
  // Stream the operation ran on (kKernel/kTransfer; 0 = default stream).
  // Scope spans are host-side and always report stream 0.
  int stream_id = 0;
  // Device the span belongs to (schema v8). Single-device traces record 0;
  // in a cluster trace each device's tracer stamps its own id. Link spans
  // carry the *source* device here (plus both endpoints below).
  int device_id = 0;
  // kKernel only.
  sim::KernelResult kernel;
  // kTransfer / kLink only.
  uint64_t transfer_bytes = 0;
  // kLink only: interconnect endpoints (schema v8).
  int link_src = 0;
  int link_dst = 0;
  // kTransfer only: injected-fault outcome (schema v5). Kernel spans carry
  // the same information inside `kernel` (fault_retries / failed).
  int fault_retries = 0;
  bool fault_failed = false;
  // kQuery only (schema v9): admission lifecycle. The span itself covers
  // arrival -> finish (start_ms = arrival, duration = end-to-end latency);
  // these carry the interior timestamps and the request identity. Shed
  // queries record stream -1 and status "shed" with admit == start ==
  // finish at the shed instant.
  uint64_t q_request_id = 0;
  double q_admit_ms = 0.0;  // left the admission queue (== service start)
  double q_start_ms = 0.0;  // service began on the stream
  std::string q_class;      // priority class name
  std::string q_status;     // serve::QueryStatusName
  // kReencode only (schema v10): one background re-encode of a mutable
  // column's dirty tile. `re_generation` is the tile's generation *after*
  // the commit (the value cache invalidation was issued with); old/new word
  // counts give the extent-size delta the re-encode bought.
  uint32_t re_column = 0;
  int64_t re_tile = 0;
  uint64_t re_generation = 0;
  uint32_t re_old_words = 0;
  uint32_t re_new_words = 0;
};

class Tracer : public sim::TraceSink {
 public:
  // sim::TraceSink interface (called by the attached Device).
  void OnKernel(const sim::KernelResult& result) override;
  void OnTransfer(uint64_t bytes, double start_ms, double duration_ms,
                  int stream_id, int retries, bool failed) override;
  void OnScopeBegin(const std::string& name, double start_ms) override;
  void OnScopeEnd(double end_ms) override;
  void OnLink(int src_device, int dst_device, uint64_t bytes, double start_ms,
              double duration_ms, const std::string& label) override;
  void OnQuerySpan(const sim::QueryTraceInfo& info) override;

  // Record one mutable-column background re-encode (schema v10). Not part
  // of the TraceSink interface — the ingest path reports these directly
  // from codec::MutableColumn::TakeReencodeLog records.
  void OnReencode(uint32_t column, int64_t tile, uint64_t generation,
                  uint32_t old_words, uint32_t new_words, double start_ms,
                  double duration_ms);

  // Device id stamped onto every span this tracer records (schema v8).
  // Defaults to 0, so single-device traces are unchanged; a cluster attaches
  // one tracer per device and sets the id before serving.
  void set_device_id(int id) { device_id_ = id; }
  int device_id() const { return device_id_; }

  const std::vector<Span>& spans() const { return spans_; }
  // Current number of recorded spans; use as a mark for KernelsSince.
  size_t mark() const { return spans_.size(); }
  size_t num_kernel_spans() const;
  // The KernelResults of every kernel span recorded at or after `mark`, in
  // timeline order. This is how pipelines collect their per-launch trace.
  std::vector<sim::KernelResult> KernelsSince(size_t mark) const;
  void Clear();

 private:
  std::string CurrentPath() const;

  std::vector<Span> spans_;
  // Indices into spans_ of the currently open scope spans, outermost first.
  std::vector<size_t> open_scopes_;
  int device_id_ = 0;
};

// Merge the spans of several tracers (one per device) plus optional extra
// spans (e.g. a link tracer's) into one timeline ordered by start time.
// Span device ids are preserved — callers stamp each tracer before running.
std::vector<Span> MergeSpans(const std::vector<const Tracer*>& tracers);

// RAII scope marker bound to a device: no-op when the device has no tracer
// attached, so instrumented code paths cost nothing un-traced.
class ScopedSpan {
 public:
  ScopedSpan(sim::Device& dev, const std::string& name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  sim::Device* dev_ = nullptr;  // non-null only when a tracer is attached
};

}  // namespace tilecomp::telemetry

#endif  // TILECOMP_TELEMETRY_TRACER_H_
