// Umbrella header: the tilecomp public API.
//
//   #include "tilecomp.h"
//
//   auto col = tilecomp::codec::EncodeGpuStar(data, n);   // compress
//   tilecomp::sim::Device dev;                            // simulated V100
//   auto out = tilecomp::codec::SystemDecompress(dev, ...);
//
// See README.md for the quick tour and examples/ for runnable programs.
#ifndef TILECOMP_TILECOMP_H_
#define TILECOMP_TILECOMP_H_

#include "codec/column.h"            // CompressedColumn, Scheme
#include "common/flags.h"            // CLI flag parsing
#include "common/random.h"           // Rng + synthetic distributions
#include "common/span.h"             // Span<T> / U32Span views
#include "codec/nvcomp_like.h"       // nvCOMP-style cascade baseline
#include "codec/parallel_encode.h"   // multi-threaded host encoders
#include "codec/planner.h"           // Fang et al. planner baseline
#include "codec/stats.h"             // ComputeStats, ChooseScheme, EncodeGpuStar
#include "codec/systems.h"           // SystemEncode / SystemDecompress
#include "codec/nullable.h"          // NullableColumn (validity bitmaps)
#include "codec/serialize.h"         // column persistence
#include "codec/typed_column.h"      // DecimalColumn, StringColumn
#include "codec/u64_column.h"        // 64-bit integer columns
#include "codec/zone_map.h"          // per-tile min/max skipping
#include "crystal/aggregator.h"      // GroupAccumulator
#include "crystal/hash_table.h"      // HashTable
#include "crystal/load_column.h"     // LoadColumnTile (query integration)
#include "kernels/decompress.h"      // full-column decompression kernels
#include "kernels/dispatch.h"        // generic Decompress(dev, column) dispatcher
#include "kernels/load_tile.h"       // LoadBitPack / LoadDBitPack / LoadRBitPack
#include "sim/device.h"              // Device, LaunchConfig, BlockContext
#include "ssb/generator.h"           // Star Schema Benchmark data
#include "ssb/queries.h"             // the 13 SSB queries
#include "telemetry/export.h"        // ToJson / ToChromeTrace / PrintSummary
#include "telemetry/tracer.h"        // Tracer, ScopedSpan (kernel telemetry)

#endif  // TILECOMP_TILECOMP_H_
