// Tests for admission control under load: scripted AdmissionQueue
// saturation scenarios with exact counter assertions (the queue is a pure
// discrete-event component, so every decision is checkable against a
// hand-computed timeline), the AggregateLatencies regression pin separating
// queued time from service time, and Server::ServeLoad saturation runs with
// exact shed/queue accounting. The ServeLoad tests also run under TSan in
// CI — kernel bodies execute on the device's host thread pool while the
// admission bookkeeping runs on the serving thread.
#include <cstdint>
#include <string>
#include <vector>

#include "codec/systems.h"
#include "gtest/gtest.h"
#include "load/load_gen.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "sim/device.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

namespace tilecomp::serve {
namespace {

load::Request Req(uint64_t id, load::QueryClass cls, double arrival_ms) {
  load::Request r;
  r.id = id;
  r.cls = cls;
  r.query = cls == load::QueryClass::kInteractive ? ssb::QueryId::kQ11
            : cls == load::QueryClass::kStandard  ? ssb::QueryId::kQ21
                                                  : ssb::QueryId::kQ41;
  r.arrival_ms = arrival_ms;
  return r;
}

constexpr auto kInteractive = load::QueryClass::kInteractive;
constexpr auto kStandard = load::QueryClass::kStandard;
constexpr auto kBatch = load::QueryClass::kBatch;

// --- AdmissionQueue: scripted scenarios, every counter hand-computed ---

TEST(AdmissionQueueTest, StartsImmediatelyWhileSlotsAreFree) {
  AdmissionOptions options;
  options.queue_capacity = 4;
  AdmissionQueue adm(options, load::WorkloadSpec(), /*max_in_flight=*/2);

  EXPECT_EQ(adm.Offer(Req(0, kBatch, 0.0), 0.0).outcome,
            AdmissionQueue::Outcome::kStart);
  EXPECT_EQ(adm.Offer(Req(1, kBatch, 1.0), 1.0).outcome,
            AdmissionQueue::Outcome::kStart);
  EXPECT_EQ(adm.in_flight(), 2);
  EXPECT_EQ(adm.Offer(Req(2, kBatch, 2.0), 2.0).outcome,
            AdmissionQueue::Outcome::kQueued);
  EXPECT_EQ(adm.queue_depth(), 1u);

  const AdmissionStats& s = adm.stats();
  EXPECT_EQ(s.offered, 3u);
  EXPECT_EQ(s.admitted_immediately, 2u);
  EXPECT_EQ(s.queued, 1u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.max_queue_depth, 1u);
  EXPECT_EQ(s.started(), 3u);
}

TEST(AdmissionQueueTest, PopsHighestPriorityFirstFifoWithin) {
  AdmissionOptions options;
  options.queue_capacity = 4;
  AdmissionQueue adm(options, load::WorkloadSpec(), /*max_in_flight=*/1);

  ASSERT_EQ(adm.Offer(Req(0, kBatch, 0.0), 0.0).outcome,
            AdmissionQueue::Outcome::kStart);
  ASSERT_EQ(adm.Offer(Req(1, kStandard, 1.0), 1.0).outcome,
            AdmissionQueue::Outcome::kQueued);
  ASSERT_EQ(adm.Offer(Req(2, kBatch, 2.0), 2.0).outcome,
            AdmissionQueue::Outcome::kQueued);
  ASSERT_EQ(adm.Offer(Req(3, kInteractive, 3.0), 3.0).outcome,
            AdmissionQueue::Outcome::kQueued);
  ASSERT_EQ(adm.Offer(Req(4, kStandard, 4.0), 4.0).outcome,
            AdmissionQueue::Outcome::kQueued);
  EXPECT_EQ(adm.queue_depth(), 4u);

  // Pop order: interactive(3), standard FIFO (1 then 4), batch(2) — and
  // the reported queue waits match the hand timeline exactly.
  load::Request next;
  double wait = 0.0;
  ASSERT_TRUE(adm.OnComplete(10.0, &next, &wait));
  EXPECT_EQ(next.id, 3u);
  EXPECT_DOUBLE_EQ(wait, 7.0);
  ASSERT_TRUE(adm.OnComplete(20.0, &next, &wait));
  EXPECT_EQ(next.id, 1u);
  EXPECT_DOUBLE_EQ(wait, 19.0);
  ASSERT_TRUE(adm.OnComplete(30.0, &next, &wait));
  EXPECT_EQ(next.id, 4u);
  EXPECT_DOUBLE_EQ(wait, 26.0);
  ASSERT_TRUE(adm.OnComplete(40.0, &next, &wait));
  EXPECT_EQ(next.id, 2u);
  EXPECT_DOUBLE_EQ(wait, 38.0);
  EXPECT_EQ(adm.in_flight(), 1);  // the popped request occupies the slot
  ASSERT_FALSE(adm.OnComplete(50.0, &next, &wait));
  EXPECT_EQ(adm.in_flight(), 0);

  const AdmissionStats& s = adm.stats();
  EXPECT_EQ(s.queued, 4u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_DOUBLE_EQ(s.queue_wait_ms_total, 7.0 + 19.0 + 26.0 + 38.0);
}

TEST(AdmissionQueueTest, OverflowShedsStrictlyBelowTheWaterline) {
  AdmissionOptions options;
  options.queue_capacity = 2;
  AdmissionQueue adm(options, load::WorkloadSpec(), /*max_in_flight=*/1);

  ASSERT_EQ(adm.Offer(Req(0, kBatch, 0.0), 0.0).outcome,
            AdmissionQueue::Outcome::kStart);
  ASSERT_EQ(adm.Offer(Req(1, kStandard, 1.0), 1.0).outcome,
            AdmissionQueue::Outcome::kQueued);
  ASSERT_EQ(adm.Offer(Req(2, kStandard, 2.0), 2.0).outcome,
            AdmissionQueue::Outcome::kQueued);

  // Equal priority never displaces a waiter: the newcomer is shed (no
  // churn between equally full queues).
  const AdmissionQueue::Decision tie = adm.Offer(Req(3, kStandard, 3.0), 3.0);
  EXPECT_EQ(tie.outcome, AdmissionQueue::Outcome::kShed);
  EXPECT_FALSE(tie.shed_victim);

  // Lower priority than everything queued: shed on arrival.
  const AdmissionQueue::Decision low = adm.Offer(Req(4, kBatch, 4.0), 4.0);
  EXPECT_EQ(low.outcome, AdmissionQueue::Outcome::kShed);
  EXPECT_FALSE(low.shed_victim);

  // Higher priority displaces the worst waiter — the *latest-arrived* of
  // the lowest-priority class (id 2, queued at t=2).
  const AdmissionQueue::Decision high =
      adm.Offer(Req(5, kInteractive, 5.0), 5.0);
  EXPECT_EQ(high.outcome, AdmissionQueue::Outcome::kQueued);
  ASSERT_TRUE(high.shed_victim);
  EXPECT_EQ(high.victim.id, 2u);
  EXPECT_DOUBLE_EQ(high.victim_queue_ms, 3.0);
  EXPECT_EQ(adm.queue_depth(), 2u);

  const AdmissionStats& s = adm.stats();
  EXPECT_EQ(s.offered, 6u);
  EXPECT_EQ(s.shed, 3u);
  EXPECT_EQ(s.shed_from_queue, 1u);
  EXPECT_EQ(s.shed_by_class[static_cast<size_t>(kStandard)], 2u);
  EXPECT_EQ(s.shed_by_class[static_cast<size_t>(kBatch)], 1u);
  EXPECT_EQ(s.shed_by_class[static_cast<size_t>(kInteractive)], 0u);
  EXPECT_EQ(s.started(), 1u + 3u - 1u);  // immediate + queued - victims
}

TEST(AdmissionQueueTest, ZeroShedsAtOrBelowSlotsPlusCapacity) {
  AdmissionOptions options;
  options.queue_capacity = 3;
  AdmissionQueue adm(options, load::WorkloadSpec(), /*max_in_flight=*/2);
  for (uint64_t i = 0; i < 5; ++i) {  // == slots + capacity
    const auto outcome = adm.Offer(Req(i, kBatch, double(i)), double(i)).outcome;
    EXPECT_NE(outcome, AdmissionQueue::Outcome::kShed) << "request " << i;
  }
  EXPECT_EQ(adm.stats().shed, 0u);
  EXPECT_EQ(adm.stats().max_queue_depth, 3u);
}

TEST(AdmissionQueueTest, CapacityZeroShedsEveryOverflow) {
  AdmissionOptions options;
  options.queue_capacity = 0;
  AdmissionQueue adm(options, load::WorkloadSpec(), /*max_in_flight=*/1);
  ASSERT_EQ(adm.Offer(Req(0, kBatch, 0.0), 0.0).outcome,
            AdmissionQueue::Outcome::kStart);
  // Even an interactive request is shed: there is no queue to displace
  // from, and the in-service query is never preempted.
  EXPECT_EQ(adm.Offer(Req(1, kInteractive, 1.0), 1.0).outcome,
            AdmissionQueue::Outcome::kShed);
  EXPECT_EQ(adm.Offer(Req(2, kStandard, 2.0), 2.0).outcome,
            AdmissionQueue::Outcome::kShed);
  EXPECT_EQ(adm.stats().shed, 2u);
  EXPECT_EQ(adm.stats().started(), 1u);
}

TEST(AdmissionQueueTest, QueueAllNeverShedsAndIgnoresCapacity) {
  AdmissionOptions options;
  options.policy = AdmissionPolicy::kQueueAll;
  options.queue_capacity = 0;  // ignored
  AdmissionQueue adm(options, load::WorkloadSpec(), /*max_in_flight=*/1);
  ASSERT_EQ(adm.Offer(Req(0, kBatch, 0.0), 0.0).outcome,
            AdmissionQueue::Outcome::kStart);
  for (uint64_t i = 1; i <= 9; ++i) {
    EXPECT_EQ(adm.Offer(Req(i, kBatch, double(i)), double(i)).outcome,
              AdmissionQueue::Outcome::kQueued);
  }
  EXPECT_EQ(adm.stats().shed, 0u);
  EXPECT_EQ(adm.stats().queued, 9u);
  EXPECT_EQ(adm.stats().max_queue_depth, 9u);
}

// --- AggregateLatencies: the queued-time / service-time split, pinned on a
// hand-built timeline (regression test for the percentile accounting) ---

ServedQuery Timed(uint64_t id, load::QueryClass cls, QueryStatus status,
                  double arrival, double admit, double finish) {
  ServedQuery sq;
  sq.request_id = id;
  sq.cls = cls;
  sq.status = status;
  sq.arrival_ms = arrival;
  sq.admit_ms = admit;
  sq.finish_ms = finish;
  sq.latency_ms = finish - admit;
  return sq;
}

TEST(AggregateLatenciesTest, QueuedTimeExcludedFromServiceIncludedInE2e) {
  load::WorkloadSpec spec;
  spec.classes[static_cast<size_t>(kInteractive)].deadline_ms = 10.0;
  spec.classes[static_cast<size_t>(kInteractive)].slo_p99_ms = 12.0;
  spec.classes[static_cast<size_t>(kBatch)].deadline_ms = 100.0;

  ServeReport report;
  // Service times 4,4,4,4 ms; queue waits 0,8,2,0 ms. One shed, one failed.
  report.queries = {
      Timed(0, kInteractive, QueryStatus::kOk, 0.0, 0.0, 4.0),    // e2e 4
      Timed(1, kInteractive, QueryStatus::kOk, 1.0, 9.0, 13.0),   // e2e 12 -> misses 10ms deadline
      Timed(2, kStandard, QueryStatus::kOk, 2.0, 4.0, 8.0),       // e2e 6
      Timed(3, kBatch, QueryStatus::kDecodeFailed, 3.0, 3.0, 7.0),// failed
      Timed(4, kBatch, QueryStatus::kShed, 5.0, 5.0, 5.0),        // shed
  };

  AggregateLatencies(spec, &report);

  // Service percentiles over {4,4,4,4} (shed excluded, failed included):
  // queue wait never leaks in.
  EXPECT_DOUBLE_EQ(report.p50_latency_ms, 4.0);
  EXPECT_DOUBLE_EQ(report.p99_latency_ms, 4.0);
  // E2e percentiles over {4,12,6,4}: the 8ms queue wait of query 1 shows
  // up here and only here.
  EXPECT_DOUBLE_EQ(report.p50_e2e_ms, 4.0);
  EXPECT_DOUBLE_EQ(report.p99_e2e_ms, 12.0);

  EXPECT_EQ(report.shed_queries, 1u);
  EXPECT_EQ(report.failed_queries, 1u);

  // Deadline misses are end-to-end: query 1's service time (4ms) is well
  // inside the 10ms deadline, but its e2e (12ms) is not.
  EXPECT_EQ(report.admission.deadline_missed, 1u);
  EXPECT_TRUE(report.queries[1].deadline_missed);
  EXPECT_FALSE(report.queries[0].deadline_missed);
  EXPECT_FALSE(report.queries[2].deadline_missed);  // no standard deadline

  const ClassReport& inter =
      report.classes[static_cast<size_t>(kInteractive)];
  EXPECT_EQ(inter.offered, 2u);
  EXPECT_EQ(inter.ok, 2u);
  EXPECT_EQ(inter.deadline_missed, 1u);
  EXPECT_DOUBLE_EQ(inter.p99_e2e_ms, 12.0);
  EXPECT_TRUE(inter.slo_met);  // 12 <= 12

  const ClassReport& batch = report.classes[static_cast<size_t>(kBatch)];
  EXPECT_EQ(batch.offered, 2u);
  EXPECT_EQ(batch.ok, 0u);
  EXPECT_EQ(batch.failed, 1u);
  EXPECT_EQ(batch.shed, 1u);
  EXPECT_TRUE(batch.slo_met);  // vacuous: no ok queries, no target

  // Per-query e2e is recomputed for everything, including the shed query
  // (its queue residence until the victim decision).
  EXPECT_DOUBLE_EQ(report.queries[1].e2e_ms, 12.0);
  EXPECT_DOUBLE_EQ(report.queries[4].e2e_ms, 0.0);
}

TEST(AggregateLatenciesTest, SloViolationIsReported) {
  load::WorkloadSpec spec;
  spec.classes[static_cast<size_t>(kStandard)].slo_p99_ms = 5.0;
  ServeReport report;
  report.queries = {
      Timed(0, kStandard, QueryStatus::kOk, 0.0, 0.0, 4.0),
      Timed(1, kStandard, QueryStatus::kOk, 0.0, 4.0, 8.0),  // e2e 8 > 5
  };
  AggregateLatencies(spec, &report);
  EXPECT_FALSE(report.classes[static_cast<size_t>(kStandard)].slo_met);
  EXPECT_DOUBLE_EQ(
      report.classes[static_cast<size_t>(kStandard)].p99_e2e_ms, 8.0);
}

// --- Server::ServeLoad: saturation on the real serving stack ---

const ssb::SsbData& TestData() {
  static const ssb::SsbData* data =
      new ssb::SsbData(ssb::GenerateSsbSmall(60000));
  return *data;
}

// A burst of `n` same-class requests offered (almost) at once against one
// service slot: exactly 1 starts, queue_capacity wait, the rest shed.
TEST(ServeLoadTest, SaturationCountersMatchHandTimeline) {
  const ssb::SsbData& data = TestData();
  const ssb::EncodedLineorder enc =
      ssb::EncodeLineorder(data, codec::System::kGpuStar);

  load::Schedule schedule;
  for (uint64_t i = 0; i < 6; ++i) {
    // Same class throughout: ties never displace, so the shed set is
    // exactly the overflow tail.
    schedule.requests.push_back(Req(i, kStandard, 0.001 * double(i)));
  }

  sim::Device dev;
  ServeOptions options;
  options.num_streams = 1;
  options.cache_budget_bytes = 64ull << 20;
  options.admission.queue_capacity = 2;
  Server server(dev, data, enc, options);
  load::OpenLoopWorkload workload(schedule, load::WorkloadSpec());
  const ServeReport report = server.ServeLoad(workload);

  ASSERT_EQ(report.queries.size(), 6u);
  EXPECT_EQ(report.admission.offered, 6u);
  EXPECT_EQ(report.admission.admitted_immediately, 1u);
  EXPECT_EQ(report.admission.queued, 2u);
  EXPECT_EQ(report.admission.shed, 3u);
  EXPECT_EQ(report.admission.shed_from_queue, 0u);
  EXPECT_EQ(report.admission.max_queue_depth, 2u);
  EXPECT_EQ(report.shed_queries, 3u);
  EXPECT_EQ(report.failed_queries, 0u);

  // The shed requests are exactly the last three offered; the served ones
  // are bit-exact and the queued ones carry positive queue time with
  // e2e = queue + service.
  for (const ServedQuery& sq : report.queries) {
    if (sq.request_id >= 3) {
      EXPECT_EQ(sq.status, QueryStatus::kShed) << sq.request_id;
      EXPECT_EQ(sq.stream, -1);
      continue;
    }
    ASSERT_EQ(sq.status, QueryStatus::kOk) << sq.request_id;
    const ssb::QueryResult ref = server.runner().RunHostReference(sq.query);
    EXPECT_EQ(sq.result.groups, ref.groups);
    EXPECT_NEAR(sq.e2e_ms, sq.queue_ms + sq.latency_ms, 1e-9);
    if (sq.request_id > 0) {
      EXPECT_GT(sq.queue_ms, 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(report.admission.queue_wait_ms_total,
                   report.queries[1].queue_ms + report.queries[2].queue_ms);
}

TEST(ServeLoadTest, QueueAllServesEverythingUnderOverload) {
  const ssb::SsbData& data = TestData();
  const ssb::EncodedLineorder enc =
      ssb::EncodeLineorder(data, codec::System::kGpuStar);

  load::OpenLoopOptions gen;
  gen.rate_qps = 50000.0;  // far past capacity: pure backpressure
  gen.num_queries = 24;
  gen.seed = 11;
  load::OpenLoopWorkload workload(load::GenOpenLoop(gen),
                                  load::WorkloadSpec());

  sim::Device dev;
  ServeOptions options;
  options.num_streams = 2;
  options.cache_budget_bytes = 128ull << 20;
  options.admission.policy = AdmissionPolicy::kQueueAll;
  Server server(dev, data, enc, options);
  const ServeReport report = server.ServeLoad(workload);

  ASSERT_EQ(report.queries.size(), gen.num_queries);
  EXPECT_EQ(report.admission.shed, 0u);
  EXPECT_EQ(report.shed_queries, 0u);
  EXPECT_GT(report.admission.queued, 0u);
  EXPECT_GT(report.admission.queue_wait_ms_total, 0.0);
  // Backpressure shows up as e2e >> service at the tail.
  EXPECT_GT(report.p99_e2e_ms, report.p99_latency_ms);
  for (const ServedQuery& sq : report.queries) {
    ASSERT_EQ(sq.status, QueryStatus::kOk);
    const ssb::QueryResult ref = server.runner().RunHostReference(sq.query);
    EXPECT_EQ(sq.result.groups, ref.groups);
  }
}

// Multi-stream admission under a bursty open-loop schedule: the TSan
// stress — kernel bodies run on the device's host thread pool while the
// serving loop mutates admission state. Also checks the e2e/service
// decomposition and class accounting on a non-trivial run.
TEST(ServeLoadTest, MultiStreamBurstStress) {
  const ssb::SsbData& data = TestData();
  const ssb::EncodedLineorder enc =
      ssb::EncodeLineorder(data, codec::System::kGpuStar);

  load::OpenLoopOptions gen;
  gen.rate_qps = 4000.0;
  gen.num_queries = 40;
  gen.burst_factor = 8.0;
  gen.seed = 13;
  load::WorkloadSpec spec;
  load::OpenLoopWorkload workload(load::GenOpenLoop(gen), spec);

  sim::Device dev;
  ServeOptions options;
  options.num_streams = 4;
  options.cache_budget_bytes = 256ull << 20;
  options.admission.queue_capacity = 4;
  Server server(dev, data, enc, options);
  const ServeReport report = server.ServeLoad(workload);

  ASSERT_EQ(report.queries.size(), gen.num_queries);
  uint64_t offered = 0;
  for (size_t c = 0; c < load::kNumClasses; ++c) {
    offered += report.classes[c].offered;
    EXPECT_EQ(report.classes[c].offered,
              report.classes[c].ok + report.classes[c].shed +
                  report.classes[c].failed);
  }
  EXPECT_EQ(offered, gen.num_queries);
  EXPECT_EQ(report.admission.offered, gen.num_queries);
  EXPECT_EQ(report.admission.shed, report.shed_queries);
  for (const ServedQuery& sq : report.queries) {
    if (sq.status == QueryStatus::kShed) continue;
    ASSERT_EQ(sq.status, QueryStatus::kOk);
    const ssb::QueryResult ref = server.runner().RunHostReference(sq.query);
    EXPECT_EQ(sq.result.groups, ref.groups);
    EXPECT_NEAR(sq.e2e_ms, sq.queue_ms + sq.latency_ms, 1e-9);
    EXPECT_GE(sq.queue_ms, 0.0);
  }
  // Identical rerun: the whole loaded run is deterministic on the
  // simulated clock, kernel-thread scheduling notwithstanding.
  workload.Reset();
  sim::Device dev2;
  Server server2(dev2, data, enc, options);
  const ServeReport again = server2.ServeLoad(workload);
  ASSERT_EQ(again.queries.size(), report.queries.size());
  for (size_t i = 0; i < report.queries.size(); ++i) {
    EXPECT_EQ(again.queries[i].status, report.queries[i].status);
    EXPECT_DOUBLE_EQ(again.queries[i].finish_ms, report.queries[i].finish_ms);
    EXPECT_EQ(again.queries[i].result.groups, report.queries[i].result.groups);
  }
  EXPECT_DOUBLE_EQ(again.makespan_ms, report.makespan_ms);
}

// Closed-loop serving through the real server: the population invariant
// shows up as max_queue_depth + in-service never exceeding num_users.
TEST(ServeLoadTest, ClosedLoopSelfLimitsInFlight) {
  const ssb::SsbData& data = TestData();
  const ssb::EncodedLineorder enc =
      ssb::EncodeLineorder(data, codec::System::kGpuStar);

  load::ClosedLoopOptions gen;
  gen.num_users = 3;
  gen.num_queries = 24;
  gen.think_ms = 0.2;
  gen.seed = 17;
  load::WorkloadSpec spec;
  load::ClosedLoopWorkload workload(gen, spec);

  sim::Device dev;
  ServeOptions options;
  options.num_streams = 2;  // fewer slots than users: someone always waits
  options.cache_budget_bytes = 128ull << 20;
  options.admission.policy = AdmissionPolicy::kQueueAll;
  Server server(dev, data, enc, options);
  const ServeReport report = server.ServeLoad(workload);

  ASSERT_EQ(report.queries.size(), gen.num_queries);
  EXPECT_EQ(report.admission.shed, 0u);
  // At most num_users requests can be offered-but-unfinished at once, so
  // the queue can never hold more than users - slots.
  EXPECT_LE(report.admission.max_queue_depth,
            static_cast<uint64_t>(gen.num_users));
  for (const ServedQuery& sq : report.queries) {
    ASSERT_EQ(sq.status, QueryStatus::kOk);
    EXPECT_GE(sq.user, 0);
    EXPECT_LT(sq.user, gen.num_users);
    const ssb::QueryResult ref = server.runner().RunHostReference(sq.query);
    EXPECT_EQ(sq.result.groups, ref.groups);
  }
}

}  // namespace
}  // namespace tilecomp::serve
