// Unit tests for the horizontal bit-packing primitives.
#include "format/bitpack.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace tilecomp::format {
namespace {

TEST(BitWriterTest, AppendSingleFullWord) {
  std::vector<uint32_t> out;
  BitWriter w(&out);
  w.Append(0xDEADBEEF, 32);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0xDEADBEEFu);
}

TEST(BitWriterTest, ZeroBitsWritesNothing) {
  std::vector<uint32_t> out;
  BitWriter w(&out);
  for (int i = 0; i < 100; ++i) w.Append(0, 0);
  EXPECT_TRUE(out.empty());
}

TEST(BitWriterTest, StraddlesWordBoundary) {
  std::vector<uint32_t> out;
  BitWriter w(&out);
  // 3 x 12 bits = 36 bits -> 2 words.
  w.Append(0xABC, 12);
  w.Append(0x123, 12);
  w.Append(0xFFF, 12);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(UnpackBits(out.data(), 0, 12), 0xABCu);
  EXPECT_EQ(UnpackBits(out.data(), 12, 12), 0x123u);
  EXPECT_EQ(UnpackBits(out.data(), 24, 12), 0xFFFu);
}

TEST(BitWriterTest, AlignToWordPads) {
  std::vector<uint32_t> out;
  BitWriter w(&out);
  w.Append(0x3, 2);
  w.AlignToWord();
  w.Append(0x5, 3);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0x3u);
  EXPECT_EQ(out[1], 0x5u);
}

TEST(PackArrayTest, RoundTripAllBitWidths) {
  for (uint32_t bits = 0; bits <= 32; ++bits) {
    const size_t n = 97;  // deliberately not a multiple of 32
    auto values = GenUniformBits(n, bits, /*seed=*/bits + 1);
    std::vector<uint32_t> packed;
    PackArray(values.data(), n, bits, &packed);
    // Ensure the two-word window never reads past the end.
    packed.push_back(0);
    std::vector<uint32_t> out(n);
    UnpackArray(packed.data(), n, bits, out.data());
    EXPECT_EQ(values, out) << "bits=" << bits;
  }
}

TEST(PackArrayTest, PackedSizeIsMinimal) {
  const size_t n = 64;
  std::vector<uint32_t> values(n, 1);
  std::vector<uint32_t> packed;
  const size_t words = PackArray(values.data(), n, 5, &packed);
  EXPECT_EQ(words, (n * 5 + 31) / 32);
}

TEST(UnpackBitsTest, ExtractsAtArbitraryOffsets) {
  std::vector<uint32_t> words = {0xFFFFFFFF, 0x0, 0xAAAAAAAA};
  EXPECT_EQ(UnpackBits(words.data(), 30, 4), 0x3u);   // 2 ones then 2 zeros
  EXPECT_EQ(UnpackBits(words.data(), 0, 32), 0xFFFFFFFFu);
  EXPECT_EQ(UnpackBits(words.data(), 64, 8), 0xAAu);
}

}  // namespace
}  // namespace tilecomp::format
