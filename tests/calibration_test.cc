// Calibration regression tests: the performance model is deterministic, so
// the projected headline numbers of the paper's experiments are pinned here
// with generous tolerances. If a model change moves a result outside the
// band the paper's shape no longer holds — these tests are the contract for
// EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/random.h"
#include "kernels/decompress.h"

namespace tilecomp {
namespace {

constexpr size_t kSimN = 8 << 20;

double ProjectTo(double ms, size_t paper_n) {
  return bench::Project(ms, kSimN, paper_n);
}

class CalibrationTest : public ::testing::Test {
 protected:
  static const std::vector<uint32_t>& Data() {
    static const auto* values =
        new std::vector<uint32_t>(GenUniformBits(kSimN, 16, 42));
    return *values;
  }
  static const format::GpuForEncoded& Encoded() {
    static const auto* enc = new format::GpuForEncoded(
        format::GpuForEncode(Data().data(), Data().size()));
    return *enc;
  }
};

TEST_F(CalibrationTest, Section42BaseAlgorithm) {
  // Paper: 18 ms at 500M.
  sim::Device dev;
  kernels::UnpackConfig cfg;
  cfg.opt = kernels::UnpackOpt::kBase;
  const double ms = ProjectTo(
      kernels::DecompressGpuFor(dev, Encoded(), cfg, false).time_ms,
      500'000'000);
  EXPECT_GT(ms, 12.0);
  EXPECT_LT(ms, 27.0);
}

TEST_F(CalibrationTest, Section42SharedMemory) {
  // Paper: 7 ms.
  sim::Device dev;
  kernels::UnpackConfig cfg;
  cfg.opt = kernels::UnpackOpt::kSharedMemory;
  const double ms = ProjectTo(
      kernels::DecompressGpuFor(dev, Encoded(), cfg, false).time_ms,
      500'000'000);
  EXPECT_GT(ms, 4.5);
  EXPECT_LT(ms, 10.5);
}

TEST_F(CalibrationTest, Section42FullOptimizations) {
  // Paper: 2.1 ms, just below the 2.4 ms uncompressed read.
  sim::Device dev;
  const double ms = ProjectTo(
      kernels::DecompressGpuFor(dev, Encoded(), {}, false).time_ms,
      500'000'000);
  EXPECT_GT(ms, 1.4);
  EXPECT_LT(ms, 3.2);
}

TEST_F(CalibrationTest, UncompressedReadMatchesPaperReference) {
  // Paper: reading 500M uncompressed ints takes 2.4 ms (2 GB at 880 GB/s).
  sim::Device dev;
  const double ms = ProjectTo(
      kernels::ReadUncompressed(dev, Data()).time_ms, 500'000'000);
  EXPECT_NEAR(ms, 2.4, 0.5);
}

TEST_F(CalibrationTest, HeadlineDecompressionSpeedupVsCascade) {
  // Abstract/Section 9: tile-based decompression is ~2.2x faster than the
  // best cascaded alternative on the same format family.
  sim::Device dev;
  const double fused =
      kernels::DecompressGpuFor(dev, Encoded()).time_ms;
  const double cascaded =
      kernels::DecompressForBitPackCascaded(dev, Encoded()).time_ms;
  EXPECT_GT(cascaded / fused, 1.6);
  EXPECT_LT(cascaded / fused, 4.0);
}

TEST_F(CalibrationTest, CompressionRatioAtBitwidth16) {
  // 16-bit uniform data: 16.75 bits/int exactly (16 + 3 words/128).
  EXPECT_NEAR(Encoded().bits_per_int(), 16.75, 0.05);
}

}  // namespace
}  // namespace tilecomp
