// Tests for multi-device serving: placement planning (striped range
// sharding, determinism, degenerate shapes), the cluster scheduler's
// bit-exactness against both the standalone Server and the host reference
// executor across policies/links, hash-table prewarm accounting, and the
// determinism of the per-device host threads (run under TSan in CI).
#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "codec/systems.h"
#include "gtest/gtest.h"
#include "serve/cluster_scheduler.h"
#include "serve/placement.h"
#include "serve/server.h"
#include "sim/cluster.h"
#include "sim/device.h"
#include "sim/device_spec.h"
#include "ssb/generator.h"
#include "ssb/layout.h"
#include "ssb/queries.h"

namespace tilecomp::serve {
namespace {

constexpr size_t kTile = 512;
constexpr size_t kChunkRows = placement::kStripeTiles * kTile;  // 32768

// Shared dataset, date-clustered like the benchmarks (5 stripe chunks, so
// 4-way striping gives shard 0 two non-adjacent ranges — the multi-range
// slice path gets exercised). Built once; leaked on purpose.
const ssb::SsbData& TestData() {
  static const ssb::SsbData* data = [] {
    auto* d = new ssb::SsbData(ssb::GenerateSsbSmall(140000));
    ssb::ClusterByOrderdate(&d->lineorder);
    return d;
  }();
  return *data;
}

const ssb::QueryResult& HostReference(ssb::QueryId query) {
  static const auto* results = [] {
    auto* map = new std::vector<ssb::QueryResult>();
    ssb::QueryRunner runner(TestData());
    for (ssb::QueryId q : ssb::AllQueries()) {
      map->push_back(runner.RunHostReference(q));
    }
    return map;
  }();
  return (*results)[static_cast<size_t>(query)];
}

void ExpectSameGroups(const ssb::QueryResult& got, const ssb::QueryResult& want,
                      const char* context) {
  EXPECT_EQ(got.groups, want.groups) << context;
}

// --- Placement planning ---

TEST(PlacementTest, RangeShardIsStripedTileAlignedAndCovering) {
  const size_t rows = 5 * kChunkRows + 1234;  // 6 chunks, last one partial
  const placement::Placement p =
      placement::Plan(placement::PolicyKind::kRangeShard, rows, 4, /*seed=*/7);
  ASSERT_EQ(p.shards.size(), 4u);

  size_t covered = 0;
  std::vector<placement::RowRange> all;
  std::set<int> devices;
  for (const placement::Shard& shard : p.shards) {
    ASSERT_EQ(shard.devices.size(), 1u);
    devices.insert(shard.devices[0]);
    size_t prev_end = 0;
    for (const placement::RowRange& r : shard.ranges) {
      EXPECT_LT(r.begin, r.end);
      EXPECT_EQ(r.begin % kTile, 0u);  // tile-aligned: zone maps survive
      EXPECT_TRUE(r.end % kTile == 0 || r.end == rows);
      EXPECT_GE(r.begin, prev_end);  // ascending within the shard
      prev_end = r.end;
      covered += r.rows();
      all.push_back(r);
    }
  }
  EXPECT_EQ(covered, rows);  // disjointness + coverage => a partition
  EXPECT_EQ(devices.size(), 4u);  // device assignment is a permutation
  // Striping: with 6 chunks over 4 shards, two shards own two ranges, and
  // coalescing means no shard holds two adjacent ranges.
  std::sort(all.begin(), all.end(),
            [](const placement::RowRange& a, const placement::RowRange& b) {
              return a.begin < b.begin;
            });
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_EQ(all[i].begin, all[i - 1].end);
  }
  EXPECT_EQ(all.size(), 6u);
}

TEST(PlacementTest, PlanIsDeterministicAndSeedOnlyPermutesDevices) {
  const size_t rows = 4 * kChunkRows;
  const auto a =
      placement::Plan(placement::PolicyKind::kRangeShard, rows, 4, 42);
  const auto b =
      placement::Plan(placement::PolicyKind::kRangeShard, rows, 4, 42);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].ranges, b.shards[s].ranges);
    EXPECT_EQ(a.shards[s].devices, b.shards[s].devices);
  }
  // A different seed may reassign devices but never reshapes the ranges.
  const auto c =
      placement::Plan(placement::PolicyKind::kRangeShard, rows, 4, 43);
  for (size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].ranges, c.shards[s].ranges);
  }
}

TEST(PlacementTest, ReplicateAndHybridShapes) {
  const size_t rows = 4 * kChunkRows;
  const auto rep =
      placement::Plan(placement::PolicyKind::kReplicate, rows, 4, 1);
  ASSERT_EQ(rep.shards.size(), 1u);
  ASSERT_EQ(rep.shards[0].ranges.size(), 1u);
  EXPECT_EQ(rep.shards[0].ranges[0], (placement::RowRange{0, rows}));
  EXPECT_EQ(rep.shards[0].devices.size(), 4u);

  const auto hyb = placement::Plan(placement::PolicyKind::kHybrid, rows, 4, 1);
  ASSERT_EQ(hyb.shards.size(), 2u);
  size_t covered = 0;
  for (const placement::Shard& shard : hyb.shards) {
    EXPECT_EQ(shard.devices.size(), 2u);  // one spare replica per shard
    covered += shard.rows();
  }
  EXPECT_EQ(covered, rows);
}

TEST(PlacementTest, FewerChunksThanDevicesLeavesTrailingShardsEmpty) {
  // 2 chunks over 4 devices: two shards own data, two are empty.
  const size_t rows = kChunkRows + 100;
  const auto p =
      placement::Plan(placement::PolicyKind::kRangeShard, rows, 4, 1);
  ASSERT_EQ(p.shards.size(), 4u);
  int empty = 0;
  size_t covered = 0;
  for (const placement::Shard& shard : p.shards) {
    if (shard.rows() == 0) ++empty;
    covered += shard.rows();
  }
  EXPECT_EQ(empty, 2);
  EXPECT_EQ(covered, rows);
}

// --- Cluster scheduler ---

TEST(ClusterSchedulerTest, SingleDeviceMatchesStandaloneServer) {
  const ssb::SsbData& data = TestData();
  const std::vector<ssb::QueryId> batch = ssb::AllQueries();

  sim::Device dev(sim::DeviceSpec::V100());
  const ssb::EncodedLineorder enc =
      ssb::EncodeLineorder(data, codec::System::kNone);
  ServeOptions opts;  // reuse off: no prewarm, both clocks start at zero
  Server standalone(dev, data, enc, opts);
  const ServeReport want = standalone.Serve(batch);

  sim::Cluster cluster(1, sim::DeviceSpec::V100(), sim::LinkSpec::NvLink());
  ClusterOptions copts;
  copts.policy = placement::PolicyKind::kRangeShard;
  copts.serve = opts;
  ClusterScheduler sched(cluster, data, codec::System::kNone, copts);
  const ClusterServeReport got = sched.Serve(batch);

  // A one-device cluster is the degenerate case: one shard holding the
  // whole table, no transfers, no merges — everything must be bit- and
  // clock-identical to the standalone server.
  ASSERT_EQ(got.queries.size(), want.queries.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const ClusterServedQuery& cq = got.queries[i];
    EXPECT_EQ(cq.status, QueryStatus::kOk);
    EXPECT_EQ(cq.num_partials, 1);
    EXPECT_EQ(cq.link_bytes, 0u);
    ExpectSameGroups(cq.result, want.queries[i].result,
                     ssb::QueryName(batch[i]));
    EXPECT_DOUBLE_EQ(cq.latency_ms, want.queries[i].latency_ms);
  }
  EXPECT_DOUBLE_EQ(got.makespan_ms, want.makespan_ms);
  EXPECT_EQ(got.link_bytes_total, 0u);
  EXPECT_EQ(got.link_transfers, 0u);
  EXPECT_DOUBLE_EQ(got.merge_ms_total, 0.0);

  // Counters too, not just results: the per-device server is the same code
  // on the same shard, so its cache/pushdown/traffic books must agree.
  const ServeReport& inner = got.device_reports[0];
  EXPECT_EQ(inner.cache.hits, want.cache.hits);
  EXPECT_EQ(inner.cache.misses, want.cache.misses);
  EXPECT_EQ(inner.cache.inserts, want.cache.inserts);
  EXPECT_EQ(inner.cache.evictions, want.cache.evictions);
  EXPECT_EQ(inner.decompress_skips, want.decompress_skips);
  EXPECT_EQ(inner.global_bytes_read, want.global_bytes_read);
  EXPECT_EQ(inner.pushdown.tiles_pruned, want.pushdown.tiles_pruned);
  EXPECT_EQ(inner.pushdown.tiles_decoded, want.pushdown.tiles_decoded);
}

TEST(ClusterSchedulerTest, EmptyShardsServeBitExact) {
  // ~40k rows = 2 stripe chunks over 4 devices: two devices hold no rows
  // and must cleanly contribute empty partials.
  ssb::SsbData small = ssb::GenerateSsbSmall(40000);
  ssb::ClusterByOrderdate(&small.lineorder);
  ASSERT_LT(small.lineorder.size(), 2 * kChunkRows);
  ASSERT_GT(small.lineorder.size(), kChunkRows);

  sim::Cluster cluster(4, sim::DeviceSpec::V100(), sim::LinkSpec::NvLink());
  ClusterOptions copts;
  copts.policy = placement::PolicyKind::kRangeShard;
  copts.serve.reuse_hash_tables = true;
  ClusterScheduler sched(cluster, small, codec::System::kNone, copts);

  int empty_devices = 0;
  for (int d = 0; d < sched.num_devices(); ++d) {
    if (sched.server(d) == nullptr) {
      ++empty_devices;
      EXPECT_EQ(sched.shard_of_device(d), -1);
    }
  }
  EXPECT_EQ(empty_devices, 2);

  ssb::QueryRunner runner(small);
  const std::vector<ssb::QueryId> batch = ssb::AllQueries();
  const ClusterServeReport report = sched.Serve(batch);
  ASSERT_EQ(report.queries.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(report.queries[i].status, QueryStatus::kOk);
    EXPECT_EQ(report.queries[i].num_partials, 4);
    ExpectSameGroups(report.queries[i].result,
                     runner.RunHostReference(batch[i]),
                     ssb::QueryName(batch[i]));
  }
  EXPECT_EQ(report.failed_queries, 0u);
}

TEST(ClusterSchedulerTest, MergeIsBitExactAcrossPoliciesAndDevices) {
  const ssb::SsbData& data = TestData();
  const std::vector<ssb::QueryId> batch = ssb::AllQueries();
  for (placement::PolicyKind policy : {placement::PolicyKind::kReplicate,
                                       placement::PolicyKind::kRangeShard,
                                       placement::PolicyKind::kHybrid}) {
    for (int devices : {2, 4}) {
      sim::Cluster cluster(devices, sim::DeviceSpec::V100(),
                           sim::LinkSpec::NvLink());
      ClusterOptions copts;
      copts.policy = policy;
      copts.serve.reuse_hash_tables = true;
      ClusterScheduler sched(cluster, data, codec::System::kNone, copts);
      const ClusterServeReport report = sched.Serve(batch);
      ASSERT_EQ(report.queries.size(), batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        ExpectSameGroups(report.queries[i].result, HostReference(batch[i]),
                         ssb::QueryName(batch[i]));
        EXPECT_EQ(report.queries[i].status, QueryStatus::kOk);
      }
      EXPECT_GT(report.makespan_ms, 0.0);
      if (sched.placement().shards.size() > 1) {
        // Sharded partials must have crossed the interconnect to merge.
        // (Hybrid on fewer than three devices degenerates to one fully
        // replicated shard, so the gate is the shard count, not the policy.)
        EXPECT_GT(report.link_bytes_total, 0u)
            << placement::PolicyName(policy) << " x" << devices;
        EXPECT_GT(report.merge_ms_total, 0.0);
        ASSERT_FALSE(cluster.link_log().empty());
        EXPECT_EQ(cluster.link_log()[0].label.rfind("merge/", 0), 0u);
      }
    }
  }
}

TEST(ClusterSchedulerTest, CompressedShardsStayBitExact) {
  // The sharded path composes with a real compression system: per-shard
  // encode + inline decode + merge still reproduces the host reference.
  const ssb::SsbData& data = TestData();
  sim::Cluster cluster(4, sim::DeviceSpec::V100(), sim::LinkSpec::Pcie());
  ClusterOptions copts;
  copts.policy = placement::PolicyKind::kRangeShard;
  copts.serve.reuse_hash_tables = true;
  ClusterScheduler sched(cluster, data, codec::System::kGpuStar, copts);
  const std::vector<ssb::QueryId> batch = ssb::AllQueries();
  const ClusterServeReport report = sched.Serve(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameGroups(report.queries[i].result, HostReference(batch[i]),
                     ssb::QueryName(batch[i]));
  }
  // PCIe links are slow enough that the merge traffic shows up as busy
  // time on some engine (the limiter itself depends on the batch mix).
  EXPECT_GT(report.breakdown.interconnect_ms, 0.0);
}

TEST(ClusterSchedulerTest, PrewarmMovesHashBuildsOffTheServingClock) {
  const ssb::SsbData& data = TestData();
  const ssb::EncodedLineorder enc =
      ssb::EncodeLineorder(data, codec::System::kNone);
  // A batch where every query repeats: the build side is identical across
  // repeats, so reuse must shrink the kernel count and never the results.
  std::vector<ssb::QueryId> batch;
  for (int rep = 0; rep < 2; ++rep) {
    for (ssb::QueryId q : ssb::AllQueries()) batch.push_back(q);
  }

  sim::Device plain_dev(sim::DeviceSpec::V100());
  ServeOptions plain_opts;
  Server plain(plain_dev, data, enc, plain_opts);
  const ServeReport plain_report = plain.Serve(batch);
  const size_t plain_launches = plain_dev.launch_log().size();

  sim::Device reuse_dev(sim::DeviceSpec::V100());
  ServeOptions reuse_opts;
  reuse_opts.reuse_hash_tables = true;
  Server reuse(reuse_dev, data, enc, reuse_opts);
  reuse.Prewarm(ssb::AllQueries());
  const size_t prewarm_launches = reuse_dev.launch_log().size();
  EXPECT_GT(prewarm_launches, 0u);  // the builds ran at prewarm time
  const ServeReport reuse_report = reuse.Serve(batch);
  const size_t serve_launches =
      reuse_dev.launch_log().size() - prewarm_launches;

  // Serving skips every hash.build: strictly fewer kernels than the
  // build-per-query server, identical answers.
  EXPECT_LT(serve_launches, plain_launches);
  ASSERT_EQ(reuse_report.queries.size(), plain_report.queries.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameGroups(reuse_report.queries[i].result,
                     plain_report.queries[i].result,
                     ssb::QueryName(batch[i]));
  }
}

TEST(ClusterSchedulerTest, ConcurrentServeIsDeterministic) {
  // Eight host threads serving eight devices, twice over: the modeled
  // report must be bitwise repeatable regardless of host scheduling. This
  // is the TSan stress target — per-device state must never be shared.
  const ssb::SsbData& data = TestData();
  std::vector<ssb::QueryId> batch;
  for (int rep = 0; rep < 3; ++rep) {
    for (ssb::QueryId q : ssb::AllQueries()) batch.push_back(q);
  }

  auto run_once = [&]() {
    sim::Cluster cluster(8, sim::DeviceSpec::V100(), sim::LinkSpec::NvLink());
    ClusterOptions copts;
    copts.policy = placement::PolicyKind::kHybrid;
    copts.serve.reuse_hash_tables = true;
    ClusterScheduler sched(cluster, data, codec::System::kNone, copts);
    return sched.Serve(batch);
  };

  const ClusterServeReport a = run_once();
  const ClusterServeReport b = run_once();
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].root_device, b.queries[i].root_device);
    EXPECT_DOUBLE_EQ(a.queries[i].finish_ms, b.queries[i].finish_ms);
    EXPECT_DOUBLE_EQ(a.queries[i].latency_ms, b.queries[i].latency_ms);
    EXPECT_EQ(a.queries[i].link_bytes, b.queries[i].link_bytes);
    ExpectSameGroups(a.queries[i].result, b.queries[i].result,
                     ssb::QueryName(a.queries[i].query));
  }
  EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_EQ(a.link_bytes_total, b.link_bytes_total);
  EXPECT_DOUBLE_EQ(a.p99_latency_ms, b.p99_latency_ms);
  // And the results are still the right ones.
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameGroups(a.queries[i].result, HostReference(batch[i]),
                     ssb::QueryName(batch[i]));
  }
}

}  // namespace
}  // namespace tilecomp::serve
