// Unit tests for the codec layer: CompressedColumn, statistics, the GPU-*
// chooser, and the nvCOMP-like and Planner baseline encoders.
#include <gtest/gtest.h>

#include "codec/column.h"
#include "codec/nvcomp_like.h"
#include "codec/planner.h"
#include "codec/stats.h"
#include "codec/systems.h"
#include "common/random.h"

namespace tilecomp::codec {
namespace {

TEST(CompressedColumnTest, EverySchemeRoundTrips) {
  auto values = GenUniformBits(10000, 14, 1);
  for (Scheme scheme :
       {Scheme::kNone, Scheme::kGpuFor, Scheme::kGpuDFor, Scheme::kGpuRFor,
        Scheme::kNsf, Scheme::kNsv, Scheme::kRle, Scheme::kGpuBp,
        Scheme::kSimdBp128}) {
    auto col = CompressedColumn::Encode(scheme, values);
    EXPECT_EQ(col.scheme(), scheme);
    EXPECT_EQ(col.size(), values.size());
    EXPECT_EQ(col.DecodeHost(), values) << SchemeName(scheme);
    EXPECT_GT(col.compressed_bytes(), 0u);
  }
}

TEST(CompressedColumnTest, CompressionRatioSane) {
  auto values = GenUniformBits(100000, 8, 2);
  auto col = CompressedColumn::Encode(Scheme::kGpuFor, values);
  EXPECT_GT(col.compression_ratio(), 3.0);  // 8+0.75 bits vs 32
  EXPECT_LT(col.compression_ratio(), 4.0);
}

TEST(CompressedColumnTest, CompressionRatioEdgeCases) {
  // A default-constructed column has neither raw nor compressed bytes:
  // the ratio must be the neutral 1.0, not 0, inf, or NaN.
  CompressedColumn empty;
  EXPECT_DOUBLE_EQ(empty.compression_ratio(), 1.0);

  // An empty encode still carries headers (raw == 0, compressed >= 0):
  // previously this reported 0x; it must also be neutral.
  for (Scheme scheme : {Scheme::kNone, Scheme::kGpuFor, Scheme::kRle}) {
    auto col = CompressedColumn::Encode(scheme, std::vector<uint32_t>{});
    EXPECT_DOUBLE_EQ(col.compression_ratio(), 1.0) << SchemeName(scheme);
  }

  // A single-value column: both sides nonzero, ratio finite and positive.
  auto one = CompressedColumn::Encode(Scheme::kGpuFor,
                                      std::vector<uint32_t>{42});
  EXPECT_GT(one.compression_ratio(), 0.0);
  EXPECT_LT(one.compression_ratio(), 100.0);
}

TEST(ColumnStatsTest, DetectsSortedness) {
  auto sorted = GenSortedGaps(10000, 5, 3);
  auto stats = ComputeStats(sorted);
  EXPECT_TRUE(stats.sorted);
  auto shuffled = GenUniformBits(10000, 20, 4);
  EXPECT_FALSE(ComputeStats(shuffled).sorted);
}

TEST(ColumnStatsTest, RunLengthAndDistinct) {
  auto runs = GenRuns(10000, 10, 8, 5);
  auto stats = ComputeStats(runs);
  EXPECT_GT(stats.avg_run_length, 5.0);
  EXPECT_LE(stats.distinct, 256u);
  EXPECT_EQ(stats.count, 10000u);
}

TEST(ChooseSchemeTest, Section8Rules) {
  // High run length -> GPU-RFOR.
  auto runs = GenRuns(50000, 16, 12, 6);
  EXPECT_EQ(ChooseScheme(ComputeStats(runs)),
            Scheme::kGpuRFor);
  // Sorted, high cardinality -> GPU-DFOR.
  auto sorted = GenSortedGaps(500000, 10, 7);
  EXPECT_EQ(ChooseScheme(ComputeStats(sorted)),
            Scheme::kGpuDFor);
  // Unsorted uniform -> GPU-FOR.
  auto uniform = GenUniformBits(50000, 20, 8);
  EXPECT_EQ(ChooseScheme(ComputeStats(uniform)),
            Scheme::kGpuFor);
}

TEST(ChooseSchemeTest, RuleAgreesWithExhaustiveSearchOnTypicalData) {
  // The Section 8 rule should pick the same scheme the exhaustive
  // smallest-footprint search does on characteristic inputs.
  struct Case {
    std::vector<uint32_t> data;
  };
  std::vector<std::vector<uint32_t>> datasets = {
      GenRuns(100000, 32, 16, 11),     // runs -> RFOR
      GenSortedGaps(100000, 20, 12),   // sorted -> DFOR
      GenUniformBits(100000, 18, 13),  // uniform -> FOR
  };
  for (const auto& ds : datasets) {
    Scheme rule = ChooseScheme(ComputeStats(ds));
    CompressedColumn best = EncodeGpuStar(ds);
    EXPECT_EQ(rule, best.scheme());
  }
}

TEST(EncodeGpuStarTest, PicksSmallest) {
  auto values = GenRuns(100000, 64, 10, 14);
  auto star = EncodeGpuStar(values);
  for (Scheme scheme : {Scheme::kGpuFor, Scheme::kGpuDFor, Scheme::kGpuRFor}) {
    auto other = CompressedColumn::Encode(scheme, values);
    EXPECT_LE(star.compressed_bytes(), other.compressed_bytes());
  }
}

class NvcompConfigTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(NvcompConfigTest, RoundTripsEveryCascade) {
  auto [rle, delta] = GetParam();
  NvcompCascadeConfig config{rle, delta};
  for (auto values :
       {GenUniformBits(20000, 12, 21), GenRuns(20000, 8, 10, 22),
        GenSortedGaps(20000, 100, 23)}) {
    auto enc = NvcompEncodeWith(values.data(), values.size(), config);
    EXPECT_EQ(NvcompDecodeHost(enc), values);
  }
}

INSTANTIATE_TEST_SUITE_P(Cascades, NvcompConfigTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(NvcompTest, AutoSelectionPicksRleForRuns) {
  auto values = GenRuns(100000, 64, 8, 24);
  auto enc = NvcompEncode(values.data(), values.size());
  EXPECT_TRUE(enc.config.use_rle);
  EXPECT_EQ(NvcompDecodeHost(enc), values);
}

TEST(NvcompTest, CompressionCloseToGpuStarButNotBetterOnSkew) {
  // Section 9.4: GPU-* ~2% smaller thanks to per-miniblock bit widths.
  // Inject per-block skew: one large value per 128.
  auto values = GenUniformBits(1 << 20, 8, 25);
  for (size_t i = 0; i < values.size(); i += 128) values[i] = 1 << 20;
  auto star = EncodeGpuStar(values);
  auto nv = NvcompEncode(values.data(), values.size());
  EXPECT_LT(star.compressed_bytes(), nv.compressed_bytes());
}

TEST(PlannerTest, ChoosesByteAlignedPlans) {
  // Small ints: NSF should win.
  auto small = GenUniformBits(100000, 6, 26);
  auto plan_small = PlannerEncode(small.data(), small.size());
  EXPECT_EQ(plan_small.plan.ns, PlannerNs::kNsf);
  EXPECT_LE(plan_small.compressed_bytes(), 100000u + 4096);

  // Large random ints: best byte-aligned choice still needs >= 3 bytes,
  // where bit-packing needs ~26 bits (Section 9.4's lo_extendedprice
  // observation).
  auto big = GenUniformRange(100000, 1 << 24, 1 << 26, 27);
  auto plan_big = PlannerEncode(big.data(), big.size());
  auto star_big = EncodeGpuStar(big);
  EXPECT_GT(static_cast<double>(plan_big.compressed_bytes()),
            1.1 * star_big.compressed_bytes());
}

TEST(PlannerTest, RlePlanForRunsData) {
  auto values = GenRuns(100000, 64, 10, 28);
  auto enc = PlannerEncode(values.data(), values.size());
  EXPECT_TRUE(enc.plan.use_rle);
  EXPECT_LT(enc.compressed_bytes(), 100000u);  // < 1 byte/int
}

TEST(SystemEncodeTest, DecompressMatchesForAllSystems) {
  auto values = GenRuns(200000, 6, 14, 29);
  sim::Device dev;
  for (System system : {System::kNone, System::kGpuStar, System::kNvcomp,
                        System::kPlanner, System::kGpuBp}) {
    auto col = SystemEncode(system, values);
    auto run = SystemDecompress(dev, col);
    EXPECT_EQ(run.output, values) << SystemName(system);
    EXPECT_GT(run.time_ms, 0.0);
  }
}

TEST(SystemEncodeTest, CascadedSystemsLaunchMoreKernels) {
  auto values = GenRuns(500000, 32, 12, 30);
  sim::Device dev;
  auto star = SystemDecompress(
      dev, SystemEncode(System::kGpuStar, values));
  auto nv = SystemDecompress(
      dev, SystemEncode(System::kNvcomp, values));
  EXPECT_EQ(star.kernel_launches(), 1u);
  EXPECT_GT(nv.kernel_launches(), 2u);
  EXPECT_GT(nv.time_ms, star.time_ms);
}

}  // namespace
}  // namespace tilecomp::codec
