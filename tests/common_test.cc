// Unit tests for the common substrate: bit utilities, RNG distributions,
// thread pool, and flag parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bit_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace tilecomp {
namespace {

TEST(BitUtilTest, BitsNeeded) {
  EXPECT_EQ(BitsNeeded(0), 0u);
  EXPECT_EQ(BitsNeeded(1), 1u);
  EXPECT_EQ(BitsNeeded(2), 2u);
  EXPECT_EQ(BitsNeeded(3), 2u);
  EXPECT_EQ(BitsNeeded(255), 8u);
  EXPECT_EQ(BitsNeeded(256), 9u);
  EXPECT_EQ(BitsNeeded(0xFFFFFFFF), 32u);
}

TEST(BitUtilTest, CeilDivRoundUp) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(0, 7), 0);
  EXPECT_EQ(RoundUp(10, 4), 12);
  EXPECT_EQ(RoundUp(12, 4), 12);
  EXPECT_EQ(RoundUp(0, 4), 0);
}

TEST(BitUtilTest, CeilDivNearTypeMaxDoesNotWrap) {
  // Regression: the classic (a + b - 1) / b wraps when a is within b of the
  // type's max — a 64-bit payload size near UINT64_MAX used to round to 0.
  EXPECT_EQ(CeilDiv<uint64_t>(UINT64_MAX, 4096),
            (UINT64_MAX / 4096) + 1);
  EXPECT_EQ(CeilDiv<uint64_t>(UINT64_MAX, 1), UINT64_MAX);
  EXPECT_EQ(CeilDiv<uint64_t>(UINT64_MAX - 1, UINT64_MAX), 1u);
  EXPECT_EQ(CeilDiv<uint32_t>(0xFFFFFFFFu, 2), 0x80000000u);
  EXPECT_EQ(CeilDiv<uint32_t>(0xFFFFFFFFu, 0xFFFFFFFFu), 1u);
  // Exact multiples at the top of the range stay exact.
  EXPECT_EQ(CeilDiv<uint32_t>(0xFFFFFFFEu, 2), 0x7FFFFFFFu);
  EXPECT_EQ(RoundUp<uint64_t>(UINT64_MAX - 4095, 4096),
            UINT64_MAX - 4095);  // already aligned (2^64 - 4096)
  EXPECT_EQ(RoundUp<uint32_t>(0xFFFFFF00u, 256), 0xFFFFFF00u);
}

TEST(BitUtilTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(1), 1u);
  EXPECT_EQ(LowMask(31), 0x7FFFFFFFu);
  EXPECT_EQ(LowMask(32), 0xFFFFFFFFu);
  EXPECT_EQ(LowMask64(33), 0x1FFFFFFFFull);
  EXPECT_EQ(LowMask64(64), ~0ull);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(DistributionTest, UniformBitsExactEffectiveBits) {
  for (uint32_t bits : {1u, 7u, 16u, 31u}) {
    auto v = GenUniformBits(10000, bits, bits);
    uint32_t max_value = *std::max_element(v.begin(), v.end());
    EXPECT_EQ(BitsNeeded(max_value), bits);
  }
}

TEST(DistributionTest, SortedUniqueIsSortedWithRequestedCardinality) {
  auto v = GenSortedUnique(100000, 1000, 3);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  std::set<uint32_t> uniq(v.begin(), v.end());
  EXPECT_NEAR(static_cast<double>(uniq.size()), 1000.0, 20.0);
}

TEST(DistributionTest, NormalHasRequestedMoments) {
  auto v = GenNormal(200000, 1 << 20, 20.0, 5);
  double mean = std::accumulate(v.begin(), v.end(), 0.0) / v.size();
  EXPECT_NEAR(mean, 1 << 20, 1.0);
  double var = 0;
  for (uint32_t x : v) var += (x - mean) * (x - mean);
  var /= v.size();
  EXPECT_NEAR(std::sqrt(var), 20.0, 1.0);
}

TEST(DistributionTest, ZipfIsSkewed) {
  auto v = GenZipf(100000, 1 << 16, 2.0, 7);
  size_t zeros = std::count(v.begin(), v.end(), 0u);
  EXPECT_GT(zeros, v.size() / 2);  // alpha=2: rank 1 holds > 60% of mass
}

TEST(DistributionTest, RunsHaveRequestedAverageLength) {
  auto v = GenRuns(100000, 16, 12, 9);
  uint64_t runs = 1;
  for (size_t i = 1; i < v.size(); ++i) runs += v[i] != v[i - 1];
  const double avg = static_cast<double>(v.size()) / runs;
  EXPECT_NEAR(avg, 16.0, 2.0);
}

TEST(DistributionTest, SortedGapsStrictlyIncreasing) {
  auto v = GenSortedGaps(10000, 100, 11);
  for (size_t i = 1; i < v.size(); ++i) ASSERT_LT(v[i - 1], v[i]);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyParallelForReturns) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, RangesPartitionExactly) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  pool.ParallelForRange(12345, [&](size_t begin, size_t end) {
    total += end - begin;
  });
  EXPECT_EQ(total.load(), 12345u);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesFromWait) {
  ThreadPool pool(4);
  pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is consumed: a subsequent Wait with no failed tasks is clean.
  pool.Submit([] {});
  pool.Wait();
}

TEST(ThreadPoolTest, FirstExceptionWinsAndRemainingTasksStillRun) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&ran, i] {
      ran++;
      if (i % 8 == 0) throw std::runtime_error("boom " + std::to_string(i));
    });
  }
  // No deadlock: Wait drains every task (throwing or not), then rethrows
  // exactly one of the thrown exceptions.
  try {
    pool.Wait();
    FAIL() << "Wait() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u) << e.what();
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForExceptionLeavesPoolUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](size_t i) {
                         if (i == 37) throw std::logic_error("index 37");
                       }),
      std::logic_error);
  // Pool survives: the full index space is still covered afterwards.
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(500, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",   "--n",     "100",  "--ratio=2.5",
                        "--name", "hello",   "--verbose"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("n", 0), 100);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0), 2.5);
  EXPECT_EQ(flags.GetString("name", ""), "hello");
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, ParsesNegativeAndScientific) {
  const char* argv[] = {"prog", "--n=-42", "--ratio=1e-3"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("n", 0), -42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0), 1e-3);
}

TEST(FlagsDeathTest, RejectsNonNumericInt) {
  const char* argv[] = {"prog", "--n=abc"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_DEATH(flags.GetInt("n", 0), "invalid value for --n: 'abc'");
}

TEST(FlagsDeathTest, RejectsTrailingGarbage) {
  const char* argv[] = {"prog", "--n=12abc", "--ratio=3.5x"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_DEATH(flags.GetInt("n", 0), "invalid value for --n: '12abc'");
  EXPECT_DEATH(flags.GetDouble("ratio", 0),
               "invalid value for --ratio: '3.5x'");
}

TEST(FlagsDeathTest, RejectsBareFlagReadAsInt) {
  // A valueless "--n" stores "true"; reading it numerically must die loudly
  // rather than silently become 0.
  const char* argv[] = {"prog", "--n"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_DEATH(flags.GetInt("n", 0), "invalid value for --n: 'true'");
}

TEST(FlagsDeathTest, RejectsEmptyValue) {
  const char* argv[] = {"prog", "--n="};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_DEATH(flags.GetInt("n", 0), "not an integer");
}

TEST(FlagsDeathTest, RejectsOutOfRange) {
  const char* argv[] = {"prog", "--n=99999999999999999999"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_DEATH(flags.GetInt("n", 0), "not an integer");
}

}  // namespace
}  // namespace tilecomp
