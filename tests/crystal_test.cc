// Unit tests for the Crystal query-engine primitives: hash table, block
// scan, group accumulator, and the scheme-dispatching tile loader.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "codec/stats.h"
#include "common/random.h"
#include "crystal/aggregator.h"
#include "crystal/hash_table.h"
#include "crystal/load_column.h"
#include "kernels/block_scan.h"

namespace tilecomp::crystal {
namespace {

TEST(HashTableTest, BuildAndProbe) {
  sim::Device dev;
  std::vector<uint32_t> keys;
  std::vector<uint32_t> payloads;
  for (uint32_t i = 1; i <= 5000; ++i) {
    keys.push_back(i);
    payloads.push_back(i * 7);
  }
  HashTable ht(5000);
  ht.BuildOnDevice(dev, keys, payloads, [](uint32_t) { return true; });
  EXPECT_EQ(ht.entries(), 5000u);
  for (uint32_t i = 1; i <= 5000; ++i) {
    uint32_t payload = 0;
    ASSERT_TRUE(ht.Probe(i, &payload)) << i;
    EXPECT_EQ(payload, i * 7);
  }
  uint32_t payload = 0;
  EXPECT_FALSE(ht.Probe(6001, &payload));
  EXPECT_FALSE(ht.Probe(0xFFFFFFFF, &payload));
}

TEST(HashTableTest, FilterSelectsSubset) {
  sim::Device dev;
  std::vector<uint32_t> keys;
  std::vector<uint32_t> payloads;
  for (uint32_t i = 1; i <= 1000; ++i) {
    keys.push_back(i);
    payloads.push_back(i);
  }
  HashTable ht(1000);
  ht.BuildOnDevice(dev, keys, payloads,
                   [&](uint32_t row) { return keys[row] % 3 == 0; });
  uint32_t payload = 0;
  EXPECT_TRUE(ht.Probe(33, &payload));
  EXPECT_FALSE(ht.Probe(34, &payload));
  EXPECT_EQ(ht.entries(), 333u);
}

TEST(HashTableTest, CapacityIsPowerOfTwoAndRoomy) {
  HashTable ht(100);
  EXPECT_GE(ht.capacity(), 200u);
  EXPECT_EQ(ht.capacity() & (ht.capacity() - 1), 0u);
}

TEST(HashTableTest, ParallelBuildFindsAllKeys) {
  // Build from many blocks concurrently; CAS insertion must not lose keys.
  sim::Device dev;
  const uint32_t n = 100000;
  std::vector<uint32_t> keys(n);
  std::vector<uint32_t> payloads(n);
  for (uint32_t i = 0; i < n; ++i) {
    keys[i] = i + 1;
    payloads[i] = i ^ 0xABCD;
  }
  HashTable ht(n);
  ht.BuildOnDevice(dev, keys, payloads, [](uint32_t) { return true; });
  for (uint32_t i = 0; i < n; i += 997) {
    uint32_t payload = 0;
    ASSERT_TRUE(ht.Probe(keys[i], &payload));
    EXPECT_EQ(payload, payloads[i]);
  }
}

TEST(GroupAccumulatorTest, ThreeDimensionalGroups) {
  GroupAccumulator acc(7, 25, 25);
  acc.Add(0, 1, 2, 100);
  acc.Add(0, 1, 2, -30);
  acc.Add(6, 24, 24, 7);
  auto groups = acc.NonZeroGroups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ((groups[{0, 1, 2}]), 70);
  EXPECT_EQ((groups[{6, 24, 24}]), 7);
  EXPECT_EQ(acc.Total(), 77);
}

TEST(GroupAccumulatorTest, ZeroSumGroupsDisappear) {
  GroupAccumulator acc(4);
  acc.Add(2, 10);
  acc.Add(2, -10);
  EXPECT_TRUE(acc.NonZeroGroups().empty());
}

TEST(BlockScanTest, InclusiveMatchesSequential) {
  sim::BlockContext ctx(128);
  auto values = GenUniformBits(512, 8, 3);
  auto expected = values;
  uint32_t acc = 0;
  for (auto& v : expected) {
    acc += v;
    v = acc;
  }
  kernels::BlockScanInclusive(ctx, values.data(), 512);
  EXPECT_EQ(values, expected);
  EXPECT_GT(ctx.stats().shared_bytes, 0u);
  EXPECT_GT(ctx.stats().barriers, 0u);
}

TEST(BlockScanTest, ExclusiveReturnsTotal) {
  sim::BlockContext ctx(128);
  std::vector<uint32_t> values = {5, 3, 2, 7};
  const uint32_t total =
      kernels::BlockScanExclusive(ctx, values.data(), 4);
  EXPECT_EQ(total, 17u);
  EXPECT_EQ(values, (std::vector<uint32_t>{0, 5, 8, 10}));
}

TEST(BlockScanTest, WrapsModulo32Bits) {
  sim::BlockContext ctx(128);
  std::vector<uint32_t> values = {0xFFFFFFFF, 2};
  kernels::BlockScanInclusive(ctx, values.data(), 2);
  EXPECT_EQ(values[0], 0xFFFFFFFFu);
  EXPECT_EQ(values[1], 1u);  // wrapped
}

class LoadColumnTileTest
    : public ::testing::TestWithParam<codec::Scheme> {};

TEST_P(LoadColumnTileTest, EveryInlineSchemeLoadsCorrectTiles) {
  const codec::Scheme scheme = GetParam();
  const size_t n = 10 * kTileSize + 37;  // partial last tile
  auto values = GenRuns(n, 6, 14, 77);
  auto column = codec::CompressedColumn::Encode(scheme, values);

  sim::BlockContext ctx(128);
  uint32_t tile[kTileSize];
  size_t checked = 0;
  for (int64_t t = 0; t < NumTiles(static_cast<uint32_t>(n)); ++t) {
    ctx.Reset(t);
    const uint32_t got = LoadColumnTile(ctx, column, t, tile);
    const size_t begin = static_cast<size_t>(t) * kTileSize;
    ASSERT_EQ(got, std::min<size_t>(kTileSize, n - begin));
    for (uint32_t i = 0; i < got; ++i) {
      ASSERT_EQ(tile[i], values[begin + i]) << "tile " << t << " idx " << i;
    }
    checked += got;
  }
  EXPECT_EQ(checked, n);
}

INSTANTIATE_TEST_SUITE_P(
    InlineSchemes, LoadColumnTileTest,
    ::testing::Values(codec::Scheme::kNone, codec::Scheme::kGpuFor,
                      codec::Scheme::kGpuDFor, codec::Scheme::kGpuRFor,
                      codec::Scheme::kGpuBp),
    [](const ::testing::TestParamInfo<codec::Scheme>& info) {
      std::string name = codec::SchemeName(info.param);
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

TEST(LoadColumnTileTest, CompressedLoadCostsLessTrafficThanRaw) {
  const size_t n = 100 * kTileSize;
  auto values = GenUniformBits(n, 8, 5);
  auto raw = codec::CompressedColumn::Encode(codec::Scheme::kNone, values);
  auto packed = codec::CompressedColumn::Encode(codec::Scheme::kGpuFor, values);

  sim::BlockContext raw_ctx(128), packed_ctx(128);
  uint32_t tile[kTileSize];
  for (int64_t t = 0; t < 100; ++t) {
    raw_ctx.Reset(t);
    LoadColumnTile(raw_ctx, raw, t, tile);
    packed_ctx.Reset(t);
    LoadColumnTile(packed_ctx, packed, t, tile);
  }
  // 8-bit data: ~4x less global traffic, at the price of on-chip work.
  EXPECT_LT(packed_ctx.stats().global_bytes_read,
            raw_ctx.stats().global_bytes_read / 2);
  EXPECT_GT(packed_ctx.stats().shared_bytes, raw_ctx.stats().shared_bytes);
}

}  // namespace
}  // namespace tilecomp::crystal
