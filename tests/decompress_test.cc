// Integration tests: every simulated decompression path must produce
// bit-exact output, and the modeled timings must reproduce the paper's
// qualitative claims (single-pass beats cascaded, optimization ablation,
// scheme ordering).
#include "kernels/decompress.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "kernels/load_tile.h"

namespace tilecomp::kernels {
namespace {

using format::GpuDForEncode;
using format::GpuForEncode;
using format::GpuForOptions;
using format::GpuRForEncode;
using format::NsfEncode;
using format::NsvEncode;
using format::RleEncode;
using format::SimdBp128Encode;

class DecompressCorrectnessTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DecompressCorrectnessTest, AllPathsBitExact) {
  const size_t n = GetParam();
  auto values = GenUniformBits(n, 16, n);
  sim::Device dev;

  auto ffor = GpuForEncode(values.data(), n);
  EXPECT_EQ(DecompressGpuFor(dev, ffor).output, values);
  EXPECT_EQ(DecompressForBitPackCascaded(dev, ffor).output, values);

  auto dfor = GpuDForEncode(values.data(), n);
  EXPECT_EQ(DecompressGpuDFor(dev, dfor).output, values);
  EXPECT_EQ(DecompressDeltaForBitPackCascaded(dev, dfor).output, values);

  auto rfor = GpuRForEncode(values.data(), n);
  EXPECT_EQ(DecompressGpuRFor(dev, rfor).output, values);
  EXPECT_EQ(DecompressRleForBitPackCascaded(dev, rfor).output, values);

  EXPECT_EQ(DecompressNsf(dev, NsfEncode(values.data(), n)).output, values);
  EXPECT_EQ(DecompressNsv(dev, NsvEncode(values.data(), n)).output, values);
  EXPECT_EQ(DecompressRle(dev, RleEncode(values.data(), n)).output, values);
  EXPECT_EQ(DecompressSimdBp128(dev, SimdBp128Encode(values.data(), n)).output,
            values);

  GpuForOptions bp_opt;
  bp_opt.zero_reference = true;
  bp_opt.miniblock_count = 1;
  auto bp = GpuForEncode(values.data(), n, bp_opt);
  EXPECT_EQ(DecompressGpuBp(dev, bp).output, values);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DecompressCorrectnessTest,
                         ::testing::Values(1, 100, 128, 512, 513, 4096, 65536,
                                           100001));

TEST(DecompressOptLevelTest, EveryOptLevelBitExact) {
  const size_t n = 50000;
  auto values = GenUniformBits(n, 12, 5);
  auto enc = GpuForEncode(values.data(), n);
  sim::Device dev;
  for (UnpackOpt opt : {UnpackOpt::kBase, UnpackOpt::kSharedMemory,
                        UnpackOpt::kMultiBlock, UnpackOpt::kPrecomputeOffsets}) {
    UnpackConfig cfg;
    cfg.opt = opt;
    EXPECT_EQ(DecompressGpuFor(dev, enc, cfg).output, values);
  }
}

TEST(DecompressOptLevelTest, EveryDBitExact) {
  const size_t n = 99999;
  auto values = GenUniformBits(n, 20, 6);
  auto enc = GpuForEncode(values.data(), n);
  sim::Device dev;
  for (int d : {1, 2, 4, 8, 16, 32}) {
    UnpackConfig cfg;
    cfg.d = d;
    EXPECT_EQ(DecompressGpuFor(dev, enc, cfg).output, values) << "d=" << d;
  }
}

// --- Modeled-performance shape tests (the paper's qualitative claims) ---

constexpr size_t kPerfN = 16 << 20;  // large enough to escape fixed overheads

TEST(DecompressPerfTest, KernelLaunchCountsMatchPaper) {
  auto values = GenUniformBits(kPerfN, 16, 7);
  sim::Device dev;
  auto ffor = GpuForEncode(values.data(), kPerfN);
  auto dfor = GpuDForEncode(values.data(), kPerfN);
  auto rfor = GpuRForEncode(values.data(), kPerfN);
  // Tile-based: a single kernel pass each (Section 3).
  EXPECT_EQ(DecompressGpuFor(dev, ffor).kernel_launches(), 1u);
  EXPECT_EQ(DecompressGpuDFor(dev, dfor).kernel_launches(), 1u);
  EXPECT_EQ(DecompressGpuRFor(dev, rfor).kernel_launches(), 1u);
  // Cascaded: 2 / 3 / 8 passes (Section 9.2).
  EXPECT_EQ(DecompressForBitPackCascaded(dev, ffor).kernel_launches(), 2u);
  EXPECT_EQ(DecompressDeltaForBitPackCascaded(dev, dfor).kernel_launches(), 3u);
  EXPECT_EQ(DecompressRleForBitPackCascaded(dev, rfor).kernel_launches(), 8u);
}

TEST(DecompressPerfTest, TileBasedBeatsCascaded) {
  auto values = GenUniformBits(kPerfN, 16, 8);
  sim::Device dev;
  auto ffor = GpuForEncode(values.data(), kPerfN);
  auto dfor = GpuDForEncode(values.data(), kPerfN);
  auto rfor = GpuRForEncode(values.data(), kPerfN);

  const double t_for = DecompressGpuFor(dev, ffor).time_ms;
  const double t_for_casc = DecompressForBitPackCascaded(dev, ffor).time_ms;
  EXPECT_GT(t_for_casc, 1.5 * t_for);  // paper: 2.6x

  const double t_dfor = DecompressGpuDFor(dev, dfor).time_ms;
  const double t_dfor_casc =
      DecompressDeltaForBitPackCascaded(dev, dfor).time_ms;
  EXPECT_GT(t_dfor_casc, 2.0 * t_dfor);  // paper: 4x

  const double t_rfor = DecompressGpuRFor(dev, rfor).time_ms;
  const double t_rfor_casc =
      DecompressRleForBitPackCascaded(dev, rfor).time_ms;
  EXPECT_GT(t_rfor_casc, 3.0 * t_rfor);  // paper: 8x
}

TEST(DecompressPerfTest, OptimizationAblationOrdering) {
  // Section 4.2: base > +smem > +multiblock > +precompute.
  auto values = GenUniformBits(kPerfN, 16, 9);
  auto enc = GpuForEncode(values.data(), kPerfN);
  sim::Device dev;
  auto time_at = [&](UnpackOpt opt, int d) {
    UnpackConfig cfg;
    cfg.opt = opt;
    cfg.d = d;
    // Section 4.2 measures decode-to-registers (no output write).
    return DecompressGpuFor(dev, enc, cfg, /*write_output=*/false).time_ms;
  };
  const double base = time_at(UnpackOpt::kBase, 1);
  const double smem = time_at(UnpackOpt::kSharedMemory, 1);
  const double multi = time_at(UnpackOpt::kMultiBlock, 4);
  const double pre = time_at(UnpackOpt::kPrecomputeOffsets, 4);
  EXPECT_GT(base, 1.5 * smem);
  EXPECT_GT(smem, 1.2 * multi);
  EXPECT_GT(multi, pre);
}

TEST(DecompressPerfTest, DSweepHasSweetSpot) {
  // Figure 5: D=4..16 fast, D=1 slow, D=32 deteriorates.
  auto values = GenUniformBits(kPerfN, 16, 10);
  auto enc = GpuForEncode(values.data(), kPerfN);
  sim::Device dev;
  auto time_at = [&](int d) {
    UnpackConfig cfg;
    cfg.d = d;
    return DecompressGpuFor(dev, enc, cfg, /*write_output=*/false).time_ms;
  };
  const double d1 = time_at(1);
  const double d4 = time_at(4);
  const double d16 = time_at(16);
  const double d32 = time_at(32);
  EXPECT_GT(d1, 1.5 * d4);
  EXPECT_LE(d16, d4 * 1.1);
  EXPECT_GT(d32, 1.3 * d16);
}

TEST(DecompressPerfTest, VerticalLayoutSlowerThanHorizontal) {
  // Section 4.3: GPU-SIMDBP128 is ~2.7x slower than GPU-FOR (decode to
  // registers, D=16, as in the paper's microbenchmark).
  const size_t n = 16 << 20;
  auto values = GenUniformBits(n, 16, 11);
  sim::Device dev;
  UnpackConfig cfg;
  cfg.d = 16;
  const double t_for =
      DecompressGpuFor(dev, GpuForEncode(values.data(), n), cfg,
                       /*write_output=*/false)
          .time_ms;
  const double t_vert =
      DecompressSimdBp128(dev, SimdBp128Encode(values.data(), n),
                          /*write_output=*/false)
          .time_ms;
  EXPECT_GT(t_vert, 1.5 * t_for);
  EXPECT_LT(t_vert, 6.0 * t_for);
}

TEST(DecompressPerfTest, GpuForCloseToUncompressedCopy) {
  // Figure 7a: GPU-FOR decompresses within ~15% of streaming the
  // uncompressed data at moderate bit widths.
  auto values = GenUniformBits(kPerfN, 7, 12);
  sim::Device dev;
  const double t_none = CopyUncompressed(dev, values).time_ms;
  const double t_for =
      DecompressGpuFor(dev, GpuForEncode(values.data(), kPerfN)).time_ms;
  EXPECT_LT(t_for, 1.4 * t_none);
}

TEST(DecompressPerfTest, RforFasterThanPlainRleOnRuns) {
  // Figure 8b: GPU-RFOR ~2.5x faster than RLE.
  auto values = GenRuns(kPerfN, 32, 16, 13);
  sim::Device dev;
  const double t_rfor =
      DecompressGpuRFor(dev, GpuRForEncode(values.data(), kPerfN)).time_ms;
  const double t_rle =
      DecompressRle(dev, RleEncode(values.data(), kPerfN)).time_ms;
  EXPECT_GT(t_rle, 1.7 * t_rfor);
}

}  // namespace
}  // namespace tilecomp::kernels
